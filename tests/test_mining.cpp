// Section 3: frequent itemset discovery with great-divide support counting.

#include <gtest/gtest.h>

#include "algebra/divide.hpp"
#include "algebra/generator.hpp"
#include "algebra/ops.hpp"
#include "mining/apriori.hpp"

namespace quotient {
namespace {

using mining::Apriori;
using mining::FrequentItemset;
using mining::SupportCounting;

Relation TinyBaskets() {
  // 5 transactions over items {1..5}; {1,2} appears in 3, {1,2,3} in 2.
  return Relation::Parse("tid, item",
                         "1,1; 1,2; 1,3;"
                         "2,1; 2,2; 2,3; 2,4;"
                         "3,1; 3,2;"
                         "4,1; 4,5;"
                         "5,2; 5,5");
}

TEST(AprioriCandidates, JoinAndPrune) {
  std::vector<std::vector<int64_t>> l2 = {{1, 2}, {1, 3}, {2, 3}, {2, 4}};
  std::vector<std::vector<int64_t>> c3 = Apriori::GenerateCandidates(l2);
  // {1,2,3} survives (all 2-subsets frequent); {2,3,4} is pruned ({3,4} not
  // frequent); {1,2}+{1,3} -> {1,2,3} only.
  ASSERT_EQ(c3.size(), 1u);
  EXPECT_EQ(c3[0], (std::vector<int64_t>{1, 2, 3}));
}

TEST(AprioriCandidates, EmptyAndSingletons) {
  EXPECT_TRUE(Apriori::GenerateCandidates({}).empty());
  std::vector<std::vector<int64_t>> l1 = {{1}, {2}, {5}};
  std::vector<std::vector<int64_t>> c2 = Apriori::GenerateCandidates(l1);
  EXPECT_EQ(c2.size(), 3u);  // all pairs
}

TEST(AprioriCandidates, VerticalRelationLayout) {
  Relation r = Apriori::CandidatesRelation({{1, 2}, {3}});
  EXPECT_EQ(r, Relation::Parse("item, itemset", "1,0; 2,0; 3,1"));
}

TEST(AprioriSupport, GreatDivideQuotientMatchesDefinition) {
  // §3: the quotient pairs (tid, itemset) with containment; independent of
  // candidate sizes.
  Relation transactions = TinyBaskets();
  std::vector<std::vector<int64_t>> candidates = {{1, 2}, {1, 2, 3}, {5}};
  Relation quotient = GreatDivide(transactions, Apriori::CandidatesRelation(candidates));
  Relation expected = Relation::Parse("tid, itemset",
                                      "1,0; 2,0; 3,0;"   // {1,2} ⊆ t1,t2,t3
                                      "1,1; 2,1;"        // {1,2,3} ⊆ t1,t2
                                      "4,2; 5,2");       // {5} ⊆ t4,t5
  EXPECT_EQ(quotient, expected);
}

class SupportMethodTest : public ::testing::TestWithParam<SupportCounting> {};

TEST_P(SupportMethodTest, TinyBasketsKnownAnswer) {
  Apriori miner(TinyBaskets(), /*min_support=*/2, GetParam());
  std::vector<FrequentItemset> result = miner.Run();
  // Expected: 1:4, 2:4, 3:2, 5:2, {1,2}:3, {1,3}:2, {2,3}:2, {1,2,3}:2.
  std::vector<FrequentItemset> expected = {
      {{1}, 4}, {{2}, 4}, {{3}, 2}, {{5}, 2},
      {{1, 2}, 3}, {{1, 3}, 2}, {{2, 3}, 2},
      {{1, 2, 3}, 2}};
  EXPECT_EQ(result, expected);
}

TEST_P(SupportMethodTest, MinSupportBoundaries) {
  // min_support = 1 keeps everything that occurs; a huge threshold nothing.
  Apriori all(TinyBaskets(), 1, GetParam());
  EXPECT_FALSE(all.Run().empty());
  Apriori none(TinyBaskets(), 100, GetParam());
  EXPECT_TRUE(none.Run().empty());
}

INSTANTIATE_TEST_SUITE_P(Methods, SupportMethodTest,
                         ::testing::Values(SupportCounting::kGreatDivide,
                                           SupportCounting::kHashProbe,
                                           SupportCounting::kSqlDivide),
                         [](const ::testing::TestParamInfo<SupportCounting>& info) {
                           return mining::SupportCountingName(info.param);
                         });

TEST(AprioriCrossCheck, AllMethodsAgreeOnRandomBaskets) {
  DataGen gen(2026);
  for (int round = 0; round < 5; ++round) {
    Relation transactions = gen.Transactions(/*transactions=*/30, /*items=*/12,
                                             /*min_size=*/2, /*max_size=*/6);
    int64_t min_support = 3 + round;
    Apriori divide(transactions, min_support, SupportCounting::kGreatDivide);
    Apriori probe(transactions, min_support, SupportCounting::kHashProbe);
    Apriori via_sql(transactions, min_support, SupportCounting::kSqlDivide);
    std::vector<FrequentItemset> a = divide.Run();
    std::vector<FrequentItemset> b = probe.Run();
    std::vector<FrequentItemset> c = via_sql.Run();
    EXPECT_EQ(a, b) << "round " << round;
    EXPECT_EQ(a, c) << "round " << round;
  }
}

TEST(AprioriCrossCheck, MixedSizeCandidatesInOneDivide) {
  // The paper highlights that ÷* handles candidates of different sizes in a
  // single operation (§3) — verify support counting directly.
  Relation transactions = TinyBaskets();
  Apriori miner(transactions, 2, SupportCounting::kGreatDivide);
  std::vector<std::vector<int64_t>> mixed = {{1}, {1, 2}, {1, 2, 3}, {2, 5}};
  std::vector<int64_t> support = miner.CountSupport(mixed);
  EXPECT_EQ(support, (std::vector<int64_t>{4, 3, 2, 1}));
}

}  // namespace
}  // namespace quotient
