// Batched columnar execution (docs/batched_execution.md) must be
// indistinguishable from tuple-at-a-time execution: these property tests
// run the same physical plans under ExecMode::kBatch and ExecMode::kTuple
// and require identical relations AND identical per-operator row counts,
// across batch sizes that straddle every boundary (1, 1023, 1024, 1025),
// empty inputs, string keys, and keys wide enough to take the SmallByteKey
// spill path.

#include <gtest/gtest.h>

#include <functional>

#include "algebra/generator.hpp"
#include "algebra/ops.hpp"
#include "exec/batch.hpp"
#include "exec/exec_basic.hpp"
#include "exec/exec_divide.hpp"
#include "exec/exec_great_divide.hpp"
#include "opt/planner.hpp"
#include "paper_fixtures.hpp"
#include "plan/evaluate.hpp"

namespace quotient {
namespace {

const size_t kBoundarySizes[] = {1, 3, 1023, 1024, 1025};

/// Runs `plan` in tuple mode (the PR 1 reference) and in batch mode at each
/// boundary batch size; the relation and the plan-wide row accounting must
/// match exactly.
void ExpectModeAgreement(const PlanPtr& plan, const Catalog& catalog,
                         const PlannerOptions& options = {}) {
  Relation reference;
  ExecProfile reference_profile;
  {
    ScopedExecMode tuple_mode(ExecMode::kTuple);
    reference = ExecutePlan(plan, catalog, options, &reference_profile);
  }
  // Tuple mode must agree with the semantics oracle.
  EXPECT_EQ(reference, Evaluate(plan, catalog));

  ScopedExecMode batch_mode(ExecMode::kBatch);
  for (size_t batch_rows : kBoundarySizes) {
    ScopedBatchRows scoped(batch_rows);
    ExecProfile profile;
    Relation result = ExecutePlan(plan, catalog, options, &profile);
    EXPECT_EQ(result, reference) << "batch_rows=" << batch_rows;
    EXPECT_EQ(profile.total_rows, reference_profile.total_rows)
        << "rows_produced accounting diverged at batch_rows=" << batch_rows << "\ntuple:\n"
        << reference_profile.explain << "batch:\n"
        << profile.explain;
    EXPECT_EQ(profile.max_rows, reference_profile.max_rows) << "batch_rows=" << batch_rows;
  }
}

Catalog SuppliersCatalog() {
  Catalog catalog;
  catalog.Put("spj", Relation::Parse("s, p", "1,1; 1,2; 1,3; 2,1; 2,3; 3,2; 3,3; 4,1"));
  catalog.Put("parts", Relation::Parse("p", "1; 3"));
  DataGen gen(0xBA7C4);
  catalog.Put("r1", gen.Dividend(/*groups=*/40, /*domain=*/24, /*density=*/0.4));
  catalog.Put("r2", gen.Divisor(/*size=*/8, /*domain=*/24));
  catalog.Put("gd", gen.GreatDivisor(/*groups=*/6, /*domain=*/24, /*density=*/0.25));
  return catalog;
}

TEST(BatchExecProperty, DivisionAllAlgorithmsAllBatchSizes) {
  Catalog catalog = SuppliersCatalog();
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog, "r1"),
                                   LogicalOp::Scan(catalog, "r2"));
  for (DivisionAlgorithm algorithm :
       {DivisionAlgorithm::kHash, DivisionAlgorithm::kHashTransposed,
        DivisionAlgorithm::kMergeSort, DivisionAlgorithm::kHashCount,
        DivisionAlgorithm::kSortCount, DivisionAlgorithm::kNestedLoop}) {
    PlannerOptions options;
    options.division = algorithm;
    ExpectModeAgreement(plan, catalog, options);
  }
}

TEST(BatchExecProperty, GreatDivideBothAlgorithms) {
  Catalog catalog = SuppliersCatalog();
  PlanPtr plan = LogicalOp::GreatDivide(LogicalOp::Scan(catalog, "r1"),
                                        LogicalOp::Scan(catalog, "gd"));
  for (GreatDivideAlgorithm algorithm :
       {GreatDivideAlgorithm::kHash, GreatDivideAlgorithm::kGroup}) {
    PlannerOptions options;
    options.great_divide = algorithm;
    ExpectModeAgreement(plan, catalog, options);
  }
}

TEST(BatchExecProperty, FilterProjectPipeline) {
  Catalog catalog = SuppliersCatalog();
  // Selection with a dictionary-cacheable conjunct (b < 12) AND a residual
  // multi-column conjunct (a != b), under a deduplicating projection.
  ExprPtr predicate = Expr::And(Expr::ColCmp("b", CmpOp::kLt, V(12)),
                                Expr::Compare(CmpOp::kNe, Expr::Column("a"), Expr::Column("b")));
  PlanPtr plan = LogicalOp::Project(
      LogicalOp::Select(LogicalOp::Scan(catalog, "r1"), predicate), {"a"});
  ExpectModeAgreement(plan, catalog);
}

TEST(BatchExecProperty, FilterKeepsNothingAndEverything) {
  Catalog catalog = SuppliersCatalog();
  ExpectModeAgreement(LogicalOp::Select(LogicalOp::Scan(catalog, "r1"),
                                        Expr::ColCmp("a", CmpOp::kLt, V(-1))),
                      catalog);
  ExpectModeAgreement(LogicalOp::Select(LogicalOp::Scan(catalog, "r1"),
                                        Expr::ColCmp("a", CmpOp::kGe, V(0))),
                      catalog);
}

TEST(BatchExecProperty, JoinsAcrossBatchSizes) {
  Catalog catalog = SuppliersCatalog();
  PlanPtr r1 = LogicalOp::Scan(catalog, "r1");
  PlanPtr spj = LogicalOp::Scan(catalog, "spj");
  // Natural join on the shared attribute names.
  ExpectModeAgreement(
      LogicalOp::NaturalJoin(r1, LogicalOp::Rename(spj, {{"s", "a"}, {"p", "x"}})), catalog);
  // Theta equi-join keeps both key columns.
  ExpectModeAgreement(LogicalOp::ThetaJoin(spj, LogicalOp::Rename(spj, {{"s", "s2"}, {"p", "p2"}}),
                                           Expr::ColEqCol("p", "p2")),
                      catalog);
  // Semi and anti joins.
  ExpectModeAgreement(LogicalOp::SemiJoin(r1, LogicalOp::Scan(catalog, "r2")), catalog);
  ExpectModeAgreement(LogicalOp::AntiJoin(r1, LogicalOp::Scan(catalog, "r2")), catalog);
}

TEST(BatchExecProperty, SetOperationsWithReorderedSchemas) {
  Catalog catalog = SuppliersCatalog();
  DataGen gen(0x5E7);
  catalog.Put("r1b", gen.Dividend(30, 24, 0.3));
  // Swap attribute order on one side so the reorder path is exercised.
  PlanPtr left = LogicalOp::Scan(catalog, "r1");
  PlanPtr right = LogicalOp::Project(
      LogicalOp::Rename(LogicalOp::Scan(catalog, "r1b"), {}), {"b", "a"});
  ExpectModeAgreement(LogicalOp::Union(left, right), catalog);
  ExpectModeAgreement(LogicalOp::Intersect(left, right), catalog);
  ExpectModeAgreement(LogicalOp::Difference(left, right), catalog);
}

TEST(BatchExecProperty, GroupByAggregates) {
  Catalog catalog = SuppliersCatalog();
  PlanPtr plan = LogicalOp::GroupBy(
      LogicalOp::Scan(catalog, "r1"), {"a"},
      {{AggFunc::kCount, "", "n"}, {AggFunc::kMax, "b", "max_b"}, {AggFunc::kAvg, "b", "avg_b"}});
  ExpectModeAgreement(plan, catalog);
  // Global aggregate (no group attributes) over a nonempty and empty input.
  PlanPtr global = LogicalOp::GroupBy(LogicalOp::Scan(catalog, "r1"), {},
                                      {{AggFunc::kCount, "", "n"}});
  ExpectModeAgreement(global, catalog);
}

TEST(BatchExecProperty, EmptyInputsEverywhere) {
  Catalog catalog;
  catalog.Put("empty_ab", Relation(Schema::Parse("a, b")));
  catalog.Put("empty_b", Relation(Schema::Parse("b")));
  catalog.Put("r1", Relation::Parse("a, b", "1,1; 1,2; 2,1"));
  catalog.Put("r2", Relation::Parse("b", "1; 2"));
  PlanPtr empty_ab = LogicalOp::Scan(catalog, "empty_ab");
  PlanPtr empty_b = LogicalOp::Scan(catalog, "empty_b");
  PlanPtr r1 = LogicalOp::Scan(catalog, "r1");
  PlanPtr r2 = LogicalOp::Scan(catalog, "r2");
  ExpectModeAgreement(LogicalOp::Divide(empty_ab, r2), catalog);
  ExpectModeAgreement(LogicalOp::Divide(r1, empty_b), catalog);  // r1 ÷ ∅ = πA(r1)
  ExpectModeAgreement(LogicalOp::NaturalJoin(r1, empty_ab), catalog);
  ExpectModeAgreement(LogicalOp::Union(r1, empty_ab), catalog);
  ExpectModeAgreement(LogicalOp::Difference(empty_ab, r1), catalog);
  ExpectModeAgreement(LogicalOp::GroupBy(empty_ab, {"a"}, {{AggFunc::kCount, "", "n"}}),
                      catalog);
}

TEST(BatchExecProperty, StringKeysAndMixedTypes) {
  DataGen gen(0xABCD);
  Catalog catalog;
  catalog.Put("r1", StringifyAttribute(gen.Dividend(25, 16, 0.4), "b"));
  catalog.Put("r2", StringifyAttribute(gen.Divisor(5, 16), "b"));
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog, "r1"),
                                   LogicalOp::Scan(catalog, "r2"));
  ExpectModeAgreement(plan, catalog);
  // String-valued filter through the verdict cache.
  ExpectModeAgreement(LogicalOp::Select(LogicalOp::Scan(catalog, "r1"),
                                        Expr::ColCmp("b", CmpOp::kEq, V("v3"))),
                      catalog);
}

TEST(BatchExecProperty, WideKeysHitSpillPath) {
  // 18 B columns with large per-column domains force the divisor codec past
  // 64 bits into SmallByteKey spill keys — in both modes, at odd batch sizes.
  DataGen gen(0x5B111);
  constexpr size_t kNumB = 18;
  Relation r1 = gen.DividendWide(/*groups=*/6, /*num_a=*/1, kNumB,
                                 /*domain=*/300, /*density=*/0.2);
  std::vector<size_t> b_idx;
  for (size_t i = 1; i <= kNumB; ++i) b_idx.push_back(i);
  std::vector<Tuple> divisor_rows;
  for (const Tuple& t : r1.tuples()) {
    if (gen.Chance(0.2)) divisor_rows.push_back(ProjectTuple(t, b_idx));
  }
  std::vector<std::string> b_names;
  for (size_t i = 1; i <= kNumB; ++i) b_names.push_back("b" + std::to_string(i));
  Catalog catalog;
  catalog.Put("wide", r1);
  catalog.Put("wide_divisor", Relation(r1.schema().Project(b_names), std::move(divisor_rows)));
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog, "wide"),
                                   LogicalOp::Scan(catalog, "wide_divisor"));
  ExpectModeAgreement(plan, catalog);
  // Wide projection dedup takes the encoder's spill representation too.
  ExpectModeAgreement(LogicalOp::Project(LogicalOp::Scan(catalog, "wide"), b_names), catalog);
}

TEST(BatchExecProperty, RandomizedPlansAgainstOracle) {
  DataGen gen(0xF00D);
  for (int round = 0; round < 25; ++round) {
    Catalog catalog;
    catalog.Put("r1", gen.Dividend(gen.UniformInt(0, 16), gen.UniformInt(1, 10), 0.4));
    catalog.Put("r2", gen.Divisor(gen.UniformInt(0, 6), 10));
    PlanPtr plan = LogicalOp::Divide(
        LogicalOp::Select(LogicalOp::Scan(catalog, "r1"),
                          Expr::ColCmp("a", CmpOp::kGe, V(gen.UniformInt(0, 3)))),
        LogicalOp::Scan(catalog, "r2"));
    ScopedBatchRows scoped(static_cast<size_t>(gen.UniformInt(1, 64)));
    ScopedExecMode batch_mode(ExecMode::kBatch);
    EXPECT_EQ(ExecutePlan(plan, catalog), Evaluate(plan, catalog)) << "round " << round;
  }
}

TEST(BatchExecProperty, HealyExpansionAgreesAcrossModes) {
  // The basic-algebra simulation exercises ×, − and π together.
  Catalog catalog = SuppliersCatalog();
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog, "spj"),
                                   LogicalOp::Scan(catalog, "parts"));
  PlannerOptions options;
  options.expand_divide = true;
  ExpectModeAgreement(plan, catalog, options);
}

// --- batch plumbing unit tests ---------------------------------------------

TEST(BatchUnit, ScanEmitsEncodedBatchesFromCatalogEncoding) {
  Relation r = Relation::Parse("a, b", "1,10; 2,20; 3,30; 4,40; 5,50");
  Catalog catalog;
  catalog.Put("t", r);
  TableEncodingPtr encoding = catalog.Encoding("t");
  ASSERT_NE(encoding, nullptr);
  EXPECT_EQ(encoding->rows, r.size());

  ScopedExecMode batch_mode(ExecMode::kBatch);
  ScopedBatchRows two(2);
  RelationScan scan(BorrowRelation(catalog.Get("t")), encoding);
  scan.Open();
  Batch batch;
  size_t total = 0;
  while (scan.NextBatch(&batch)) {
    EXPECT_FALSE(batch.row_mode());
    ASSERT_EQ(batch.num_columns(), 2u);
    EXPECT_NE(batch.EncodedColumn(0), nullptr);
    EXPECT_LE(batch.ActiveRows(), 2u);
    for (size_t i = 0; i < batch.ActiveRows(); ++i) {
      uint32_t row = batch.RowAt(i);
      EXPECT_EQ(batch.At(row, 0), r.tuples()[total + row][0]);
    }
    total += batch.ActiveRows();
  }
  scan.Close();
  EXPECT_EQ(total, r.size());
  EXPECT_EQ(scan.rows_produced(), r.size());
}

TEST(BatchUnit, CatalogEncodingIsCachedAndInvalidatedByPut) {
  Catalog catalog;
  catalog.Put("t", Relation::Parse("a", "1; 2; 3"));
  TableEncodingPtr first = catalog.Encoding("t");
  EXPECT_EQ(catalog.Encoding("t").get(), first.get()) << "second request must hit the cache";
  catalog.Put("t", Relation::Parse("a", "4; 5"));
  TableEncodingPtr second = catalog.Encoding("t");
  EXPECT_NE(second.get(), first.get()) << "Put must invalidate the cached encoding";
  EXPECT_EQ(second->rows, 2u);
  EXPECT_EQ(first->rows, 3u) << "old encoding stays valid for holders of the shared_ptr";
}

TEST(BatchUnit, AdapterWrapsTupleOnlyIterators) {
  // CrossProductIterator has no batch override; the base adapter must batch
  // its Next() stream without double counting.
  Relation left = Relation::Parse("a", "1; 2; 3");
  Relation right = Relation::Parse("x", "7; 8");
  ScopedExecMode batch_mode(ExecMode::kBatch);
  ScopedBatchRows four(4);
  CrossProductIterator it(std::make_unique<RelationScan>(BorrowRelation(left)),
                          std::make_unique<RelationScan>(BorrowRelation(right)));
  Relation result = ExecuteToRelation(it);
  EXPECT_EQ(result.size(), 6u);
  EXPECT_EQ(it.rows_produced(), 6u);
}

TEST(BatchUnit, SelectionVectorSurvivesPassThroughOperators) {
  // Filter marks survivors via selection; Rename forwards the batch as-is.
  Catalog catalog;
  catalog.Put("t", Relation::Parse("a, b", "1,1; 2,2; 3,3; 4,4"));
  ScopedExecMode batch_mode(ExecMode::kBatch);
  PlanPtr plan = LogicalOp::Rename(
      LogicalOp::Select(LogicalOp::Scan(catalog, "t"), Expr::ColCmp("a", CmpOp::kGt, V(2))),
      {{"a", "a2"}});
  Relation result = ExecutePlan(plan, catalog);
  EXPECT_EQ(result, Relation::Parse("a2, b", "3,3; 4,4"));
}

TEST(BatchUnit, ExplainTreeCountsRowsNotBatches) {
  Catalog catalog = SuppliersCatalog();
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog, "r1"),
                                   LogicalOp::Scan(catalog, "r2"));
  ScopedExecMode batch_mode(ExecMode::kBatch);
  ScopedBatchRows seven(7);
  ExecProfile profile;
  Relation result = ExecutePlan(plan, catalog, {}, &profile);
  size_t scans_total = catalog.Get("r1").size() + catalog.Get("r2").size();
  EXPECT_EQ(profile.total_rows, scans_total + result.size())
      << profile.explain;
}

}  // namespace
}  // namespace quotient
