// Concurrent sessions over one shared Database (api/database.hpp): N
// threads × M sessions run the PR 4 SQL corpus — including Real-typed
// SUM/AVG, whose aggregate sink refuses the parallel merge — against the
// oracle interpreter's answers, while sharing catalog snapshots, the plan
// cache, and the process-wide worker pool. The suite name starts with
// "Session" so the ThreadSanitizer CI job (-R 'Parallel|Session') runs it.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/session.hpp"
#include "exec/pipeline.hpp"
#include "exec/scheduler.hpp"
#include "paper_fixtures.hpp"
#include "sql/interp.hpp"

namespace quotient {
namespace {

std::shared_ptr<Database> MakeSharedDatabase() {
  auto db = std::make_shared<Database>();
  EXPECT_TRUE(db->CreateTable("supplies", paper::SuppliesTable()).ok());
  EXPECT_TRUE(db->CreateTable("parts", paper::PartsTable()).ok());
  EXPECT_TRUE(db->CreateTable("t", Relation::Parse("a, b", "1,10; 2,20; 3,30")).ok());
  EXPECT_TRUE(db->CreateTable("u", Relation::Parse("a, c", "1,100; 3,300")).ok());
  // Real-typed measures: SUM/AVG over r refuse the parallel merge
  // (floating-point addition is not associative), forcing the serial drain
  // discipline inside otherwise-parallel execution.
  EXPECT_TRUE(db->CreateTable(
                    "m", Relation::Parse("g:int, r:real",
                                         "1,1.5; 2,2.25; 3,4.5; 4,0.25; 5,9.0; 6,0.125"))
                  .ok());
  return db;
}

/// The PR 4 differential corpus (tests/test_session_differential.cpp),
/// trimmed to one representative of each lowering shape, plus the
/// Real-typed aggregate and the agreed-error cases.
std::vector<std::string> Corpus() {
  return {
      "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#",
      "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE color = 'blue') "
      "AS p ON s.p# = p.p#",
      "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# "
      "WHERE color = 'red'",
      // The paper's Q3: multi-level correlation, oracle fallback.
      "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 WHERE NOT EXISTS ("
      "SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND NOT EXISTS ("
      "SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s#))",
      "SELECT DISTINCT s# FROM supplies WHERE p# IN (SELECT p# FROM parts WHERE "
      "color = 'blue')",
      "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a)",
      "SELECT a FROM t WHERE b / 10 = a * 1.0",
      "SELECT color, COUNT(p#) AS n FROM parts GROUP BY color HAVING COUNT(p#) >= 2",
      "SELECT COUNT(*) AS n, SUM(r) AS s, AVG(r) AS m FROM m",
      "SELECT g, SUM(r) AS s FROM m GROUP BY g",
      "SELECT * FROM supplies",
      // Errors must agree between sessions and the oracle, too.
      "SELECT x FROM nosuch",
      "SELECT nosuchcol FROM parts",
  };
}

using Expected = std::vector<std::pair<std::string, Result<Relation>>>;

Expected OracleAnswers(const Catalog& catalog) {
  Expected expected;
  for (const std::string& query : Corpus()) {
    expected.emplace_back(query, sql::ExecuteSql(query, catalog));
  }
  return expected;
}

void RunCorpus(const std::shared_ptr<Database>& db, const Expected& expected, int rounds) {
  Session session(db);
  for (int round = 0; round < rounds; ++round) {
    for (const auto& [query, oracle] : expected) {
      Result<QueryResult> got = session.Execute(query);
      EXPECT_EQ(got.ok(), oracle.ok())
          << query << "\nsession: " << (got.ok() ? "ok" : got.error());
      if (got.ok() && oracle.ok()) {
        EXPECT_EQ(got.value().rows, oracle.value()) << query;
      }
    }
  }
}

TEST(SessionConcurrent, DifferentialCorpusAcrossEightSessions) {
  ScopedSerialRowThreshold no_serial(0);  // force the parallel drains
  ScopedExecThreads pool(4);              // one worker pool shared by all
  std::shared_ptr<Database> db = MakeSharedDatabase();
  Expected expected = OracleAnswers(db->snapshot()->catalog());

  constexpr size_t kSessions = 8;
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (size_t i = 0; i < kSessions; ++i) {
    threads.emplace_back([&] { RunCorpus(db, expected, /*rounds=*/2); });
  }
  for (std::thread& t : threads) t.join();
}

TEST(SessionConcurrent, SessionsShareCompiledPlans) {
  std::shared_ptr<Database> db = MakeSharedDatabase();
  Expected expected = OracleAnswers(db->snapshot()->catalog());

  // Warm the shared cache from one session; every statement compiles here.
  RunCorpus(db, expected, /*rounds=*/1);
  size_t compiles_after_warmup = db->plan_cache_stats().compiles;
  EXPECT_GE(compiles_after_warmup, Corpus().size());

  // Eight more sessions re-run the corpus concurrently: nothing recompiles.
  std::vector<std::thread> threads;
  for (size_t i = 0; i < 8; ++i) {
    threads.emplace_back([&] { RunCorpus(db, expected, /*rounds=*/1); });
  }
  for (std::thread& t : threads) t.join();
  PlanCacheStats stats = db->plan_cache_stats();
  EXPECT_EQ(stats.compiles, compiles_after_warmup);
  EXPECT_GE(stats.hits, 8 * Corpus().size());
}

TEST(SessionConcurrent, DdlPublishesSnapshotsWhileReadersRun) {
  std::shared_ptr<Database> db = MakeSharedDatabase();
  const Relation parts_answer =
      sql::ExecuteSql("SELECT color, COUNT(p#) AS n FROM parts GROUP BY color",
                      db->snapshot()->catalog())
          .value();

  constexpr int kInserts = 40;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    Session session(db);
    for (int i = 0; i < kInserts; ++i) {
      EXPECT_TRUE(session.InsertRows("t", {{V(100 + i), V(1000 + i)}}).ok());
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Session session(db);
      int rounds = 0;
      while (rounds++ < 5 || !done.load()) {
        // Table `parts` is untouched by the writer: its result is stable
        // and its cached plan must survive every DDL on `t`.
        Result<QueryResult> stable =
            session.Execute("SELECT color, COUNT(p#) AS n FROM parts GROUP BY color");
        ASSERT_TRUE(stable.ok()) << stable.error();
        EXPECT_EQ(stable.value().rows, parts_answer);
        // Table `t` grows monotonically; each statement pins one snapshot,
        // so the count is some consistent version between start and end.
        Result<QueryResult> counted = session.Execute("SELECT COUNT(*) AS n FROM t");
        ASSERT_TRUE(counted.ok()) << counted.error();
        int64_t n = counted.value().rows.tuples()[0][0].as_int();
        EXPECT_GE(n, 3);
        EXPECT_LE(n, 3 + kInserts);
        if (rounds > 200) break;  // safety valve
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  // The parts plan was never invalidated by the storm of DDL on t.
  Session session(db);
  Result<QueryResult> warm =
      session.Execute("SELECT color, COUNT(p#) AS n FROM parts GROUP BY color");
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().profile.plan_cache_hit);
}

TEST(SessionConcurrent, PreparedBindingStormAcrossSessions) {
  std::shared_ptr<Database> db = MakeSharedDatabase();
  const std::string sql = "SELECT s# FROM supplies WHERE p# = ?";
  const Catalog& catalog = db->snapshot()->catalog();
  std::vector<Relation> answers;
  for (int64_t p = 0; p < 8; ++p) {
    answers.push_back(
        sql::ExecuteSql("SELECT s# FROM supplies WHERE p# = " + std::to_string(p), catalog)
            .value());
  }

  // One compile, from whichever session gets there first.
  {
    Session warm(db);
    Result<PreparedStatement> prepared = warm.Prepare(sql);
    ASSERT_TRUE(prepared.ok()) << prepared.error();
    ASSERT_TRUE(prepared.value().Execute({V(1)}).ok());
  }
  size_t compiles_after_warmup = db->plan_cache_stats().compiles;

  std::vector<std::thread> threads;
  for (size_t i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      Session session(db);
      Result<PreparedStatement> prepared = session.Prepare(sql);
      ASSERT_TRUE(prepared.ok()) << prepared.error();
      for (int64_t round = 0; round < 64; ++round) {
        int64_t p = round % 8;
        Result<QueryResult> got = prepared.value().Execute({V(p)});
        ASSERT_TRUE(got.ok()) << got.error();
        EXPECT_TRUE(got.value().profile.plan_cache_hit);
        EXPECT_EQ(got.value().rows, answers[static_cast<size_t>(p)]) << "p# = " << p;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // 8 sessions × 64 distinct-binding executions later: still one compile.
  EXPECT_EQ(db->plan_cache_stats().compiles, compiles_after_warmup);
}

}  // namespace
}  // namespace quotient
