// The Volcano engine: every physical operator against the reference
// algebra, plus planner lowering, re-open behavior, row accounting, and
// common-subexpression materialization.

#include <gtest/gtest.h>

#include "algebra/generator.hpp"
#include "algebra/ops.hpp"
#include "exec/exec_agg.hpp"
#include "exec/exec_basic.hpp"
#include "exec/exec_join.hpp"
#include "opt/planner.hpp"
#include "plan/evaluate.hpp"

namespace quotient {
namespace {

IterPtr ScanOf(const Relation& r) {
  return std::make_unique<RelationScan>(std::make_shared<const Relation>(r));
}

const Relation kR = Relation::Parse("a, b", "1,1; 1,2; 2,1; 3,5");
const Relation kS = Relation::Parse("a, b", "1,2; 2,1; 9,9");

TEST(ExecBasicTest, ScanProducesAllTuplesInOrder) {
  RelationScan scan(std::make_shared<const Relation>(kR));
  EXPECT_EQ(ExecuteToRelation(scan), kR);
  EXPECT_EQ(scan.rows_produced(), kR.size());
}

TEST(ExecBasicTest, FilterMatchesReference) {
  ExprPtr p = Expr::ColCmp("b", CmpOp::kLe, V(2));
  FilterIterator it(ScanOf(kR), p);
  EXPECT_EQ(ExecuteToRelation(it), Select(kR, p));
}

TEST(ExecBasicTest, ProjectDeduplicates) {
  ProjectIterator it(ScanOf(kR), {"a"});
  EXPECT_EQ(ExecuteToRelation(it), Project(kR, {"a"}));
}

TEST(ExecBasicTest, SetOperators) {
  {
    UnionIterator it(ScanOf(kR), ScanOf(kS));
    EXPECT_EQ(ExecuteToRelation(it), Union(kR, kS));
  }
  {
    IntersectIterator it(ScanOf(kR), ScanOf(kS));
    EXPECT_EQ(ExecuteToRelation(it), Intersect(kR, kS));
  }
  {
    DifferenceIterator it(ScanOf(kR), ScanOf(kS));
    EXPECT_EQ(ExecuteToRelation(it), Difference(kR, kS));
  }
}

TEST(ExecBasicTest, SetOperatorsReorderRightSide) {
  Relation swapped = kS.Reorder({"b", "a"});
  UnionIterator it(ScanOf(kR), ScanOf(swapped));
  EXPECT_EQ(ExecuteToRelation(it), Union(kR, kS));
}

TEST(ExecBasicTest, CrossProductAndRename) {
  Relation t = Relation::Parse("z", "7; 8");
  CrossProductIterator it(ScanOf(kR), ScanOf(t));
  EXPECT_EQ(ExecuteToRelation(it), Product(kR, t));
  RenameIterator rename(ScanOf(t), {{"z", "w"}});
  EXPECT_EQ(ExecuteToRelation(rename).schema().Names(), (std::vector<std::string>{"w"}));
}

TEST(ExecBasicTest, EmptyInputsEverywhere) {
  Relation empty(Schema::Parse("a, b"));
  {
    CrossProductIterator it(ScanOf(kR), ScanOf(Relation(Schema::Parse("z"))));
    EXPECT_TRUE(ExecuteToRelation(it).empty());
  }
  {
    UnionIterator it(ScanOf(empty), ScanOf(empty));
    EXPECT_TRUE(ExecuteToRelation(it).empty());
  }
  {
    HashJoinIterator it(ScanOf(empty), ScanOf(kR));
    EXPECT_TRUE(ExecuteToRelation(it).empty());
  }
}

TEST(ExecJoinTest, HashJoinMatchesReference) {
  Relation t = Relation::Parse("b, c", "1,10; 2,20; 9,90");
  HashJoinIterator it(ScanOf(kR), ScanOf(t));
  EXPECT_EQ(ExecuteToRelation(it), NaturalJoin(kR, t));
}

TEST(ExecJoinTest, NestedLoopThetaJoin) {
  Relation t = Relation::Parse("c", "1; 3");
  ExprPtr theta = Expr::Compare(CmpOp::kLt, Expr::Column("b"), Expr::Column("c"));
  NestedLoopJoinIterator it(ScanOf(kR), ScanOf(t), theta);
  EXPECT_EQ(ExecuteToRelation(it), ThetaJoin(kR, t, theta));
}

TEST(ExecJoinTest, EquiJoinOnExplicitKeys) {
  Relation t = Relation::Parse("x, y", "1,100; 5,500");
  EquiJoinIterator it(ScanOf(kR), ScanOf(t), {"b"}, {"x"});
  ExprPtr theta = Expr::ColEqCol("b", "x");
  EXPECT_EQ(ExecuteToRelation(it), ThetaJoin(kR, t, theta));
}

TEST(ExecJoinTest, SemiAndAntiMatchReference) {
  Relation t = Relation::Parse("b", "1");
  {
    HashSemiJoinIterator it(ScanOf(kR), ScanOf(t), false);
    EXPECT_EQ(ExecuteToRelation(it), SemiJoin(kR, t));
  }
  {
    HashSemiJoinIterator it(ScanOf(kR), ScanOf(t), true);
    EXPECT_EQ(ExecuteToRelation(it), AntiSemiJoin(kR, t));
  }
  // Degenerate guard semantics (no common attributes).
  {
    HashSemiJoinIterator it(ScanOf(kR), ScanOf(Relation::Parse("z", "1")), false);
    EXPECT_EQ(ExecuteToRelation(it), kR);
  }
  {
    HashSemiJoinIterator it(ScanOf(kR), ScanOf(Relation(Schema::Parse("z"))), false);
    EXPECT_TRUE(ExecuteToRelation(it).empty());
  }
}

TEST(ExecAggTest, HashAggregateMatchesReference) {
  Relation r = Relation::Parse("g, x", "1,10; 1,20; 2,5");
  std::vector<AggSpec> aggs = {{AggFunc::kSum, "x", "t"}, {AggFunc::kCount, "x", "n"}};
  HashAggregateIterator it(ScanOf(r), {"g"}, aggs);
  EXPECT_EQ(ExecuteToRelation(it), GroupBy(r, {"g"}, aggs));
}

TEST(ExecTest, IteratorsAreReOpenable) {
  FilterIterator it(ScanOf(kR), Expr::ColCmp("a", CmpOp::kEq, V(1)));
  Relation first = ExecuteToRelation(it);
  Relation second = ExecuteToRelation(it);
  EXPECT_EQ(first, second);
}

TEST(ExecTest, RowAccountingAndExplain) {
  ProjectIterator root(ScanOf(kR), {"a"});
  ExecuteToRelation(root);
  EXPECT_EQ(TotalRowsProduced(root), kR.size() + 3);  // scan rows + distinct a
  EXPECT_EQ(MaxRowsProduced(root), kR.size());
  std::string text = ExplainTree(root);
  EXPECT_NE(text.find("Project"), std::string::npos);
  EXPECT_NE(text.find("Scan"), std::string::npos);
}

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DataGen gen(8);
    catalog_.Put("r1", gen.Dividend(30, 10, 0.5));
    catalog_.Put("r2", gen.Divisor(4, 10));
    catalog_.Put("gd", gen.GreatDivisor(3, 10, 0.4));
  }
  Catalog catalog_;
};

TEST_F(PlannerTest, LoweringMatchesReferenceEvaluatorOnAllNodeKinds) {
  PlanPtr r1 = LogicalOp::Scan(catalog_, "r1");
  PlanPtr r2 = LogicalOp::Scan(catalog_, "r2");
  std::vector<PlanPtr> plans = {
      LogicalOp::Select(r1, Expr::ColCmp("a", CmpOp::kLt, V(20))),
      LogicalOp::Project(r1, {"b"}),
      LogicalOp::Union(r1, r1),
      LogicalOp::Intersect(r1, r1),
      LogicalOp::Difference(r1, LogicalOp::Select(r1, Expr::ColCmp("b", CmpOp::kLt, V(5)))),
      LogicalOp::Product(LogicalOp::Rename(r2, {{"b", "z"}}), r2),
      LogicalOp::ThetaJoin(LogicalOp::Rename(r1, {{"a", "x"}, {"b", "y"}}), r1,
                           Expr::ColEqCol("y", "b")),
      LogicalOp::ThetaJoin(LogicalOp::Rename(r1, {{"a", "x"}, {"b", "y"}}), r1,
                           Expr::Compare(CmpOp::kLt, Expr::Column("y"), Expr::Column("b"))),
      LogicalOp::NaturalJoin(r1, r2),
      LogicalOp::SemiJoin(r1, r2),
      LogicalOp::AntiJoin(r1, r2),
      LogicalOp::Divide(r1, r2),
      LogicalOp::GreatDivide(r1, LogicalOp::Scan(catalog_, "gd")),
      LogicalOp::GroupBy(r1, {"a"}, {{AggFunc::kCount, "b", "n"}}),
  };
  for (size_t i = 0; i < plans.size(); ++i) {
    EXPECT_EQ(ExecutePlan(plans[i], catalog_), Evaluate(plans[i], catalog_))
        << "plan #" << i << ":\n"
        << plans[i]->ToString();
  }
}

TEST_F(PlannerTest, AllDivisionAlgorithmsProduceSameResults) {
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog_, "r1"),
                                   LogicalOp::Scan(catalog_, "r2"));
  Relation expected = Evaluate(plan, catalog_);
  for (DivisionAlgorithm algorithm :
       {DivisionAlgorithm::kHash, DivisionAlgorithm::kHashTransposed,
        DivisionAlgorithm::kMergeSort, DivisionAlgorithm::kHashCount,
        DivisionAlgorithm::kSortCount, DivisionAlgorithm::kNestedLoop}) {
    PlannerOptions options;
    options.division = algorithm;
    EXPECT_EQ(ExecutePlan(plan, catalog_, options), expected)
        << DivisionAlgorithmName(algorithm);
  }
  PlannerOptions expand;
  expand.expand_divide = true;
  EXPECT_EQ(ExecutePlan(plan, catalog_, expand), expected) << "Healy expansion";
}

TEST_F(PlannerTest, HealyExpansionInflatesIntermediateRows) {
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog_, "r1"),
                                   LogicalOp::Scan(catalog_, "r2"));
  ExecProfile first_class, simulated;
  PlannerOptions expand;
  expand.expand_divide = true;
  ExecutePlan(plan, catalog_, {}, &first_class);
  ExecutePlan(plan, catalog_, expand, &simulated);
  EXPECT_GT(simulated.total_rows, first_class.total_rows)
      << "the basic-algebra simulation must touch more tuples ([25], §6)";
}

TEST_F(PlannerTest, SharedSubplansAreMaterializedOnce) {
  // Build Union(expensive, expensive) sharing the subplan by pointer.
  PlanPtr expensive = LogicalOp::GroupBy(LogicalOp::Scan(catalog_, "r1"), {"a"},
                                         {{AggFunc::kCount, "b", "n"}});
  PlanPtr plan = LogicalOp::Union(expensive, expensive);
  ExecProfile profile;
  Relation result = ExecutePlan(plan, catalog_, {}, &profile);
  EXPECT_EQ(result, Evaluate(plan, catalog_));
  // The shared aggregate is evaluated once during materialization; the
  // executed tree reads both occurrences from cached scans, so no
  // HashAggregate appears in it at all.
  EXPECT_EQ(profile.explain.find("HashAggregate"), std::string::npos) << profile.explain;
  ASSERT_EQ(plan->children().size(), 2u);
}

TEST_F(PlannerTest, GreatDivideWithEmptyCFallsBackToSmallDivide) {
  // A GreatDivide node whose divisor has no extra attributes lowers to a
  // plain division operator.
  PlanPtr plan = LogicalOp::GreatDivide(LogicalOp::Scan(catalog_, "r1"),
                                        LogicalOp::Scan(catalog_, "r2"));
  ExecProfile profile;
  Relation result = ExecutePlan(plan, catalog_, {}, &profile);
  EXPECT_EQ(result, Evaluate(plan, catalog_));
  EXPECT_NE(profile.explain.find("HashDivision"), std::string::npos);
}

}  // namespace
}  // namespace quotient
