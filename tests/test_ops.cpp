// Reference algebra (Appendix A): the basic and derived operators.

#include "algebra/ops.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace quotient {
namespace {

const Relation kR = Relation::Parse("a, b", "1,1; 1,2; 2,1");
const Relation kS = Relation::Parse("a, b", "1,2; 2,1; 3,3");

TEST(OpsTest, SetOperations) {
  EXPECT_EQ(Union(kR, kS), Relation::Parse("a, b", "1,1; 1,2; 2,1; 3,3"));
  EXPECT_EQ(Intersect(kR, kS), Relation::Parse("a, b", "1,2; 2,1"));
  EXPECT_EQ(Difference(kR, kS), Relation::Parse("a, b", "1,1"));
  EXPECT_THROW(Union(kR, Relation::Parse("x", "1")), SchemaError);
}

TEST(OpsTest, SetOperationsReorderRightOperand) {
  Relation swapped = Relation::Parse("b, a", "2,1; 1,2; 3,3");  // = kS reordered
  EXPECT_EQ(Union(kR, swapped), Union(kR, kS));
  EXPECT_EQ(Intersect(kR, swapped), Intersect(kR, kS));
  EXPECT_EQ(Difference(kR, swapped), Difference(kR, kS));
}

TEST(OpsTest, ProductAndRename) {
  Relation t = Relation::Parse("c", "7; 8");
  Relation p = Product(kR, t);
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.schema().Names(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_THROW(Product(kR, kS), SchemaError);  // name collision
  Relation renamed = Rename(kS, {{"a", "x"}, {"b", "y"}});
  EXPECT_EQ(renamed.schema().Names(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(Product(kR, renamed).size(), 9u);
}

TEST(OpsTest, ProjectRemovesDuplicates) {
  EXPECT_EQ(Project(kR, {"a"}), Relation::Parse("a", "1; 2"));
  EXPECT_EQ(Project(kR, {"b", "a"}).schema().Names(),
            (std::vector<std::string>{"b", "a"}));
}

TEST(OpsTest, SelectFiltersByPredicate) {
  EXPECT_EQ(Select(kR, Expr::ColCmp("b", CmpOp::kEq, V(1))),
            Relation::Parse("a, b", "1,1; 2,1"));
  EXPECT_TRUE(Select(kR, Expr::Literal(V(0))).empty());
}

TEST(OpsTest, Joins) {
  Relation t = Relation::Parse("b, c", "1,10; 2,20; 9,90");
  // Natural join on b.
  Relation j = NaturalJoin(kR, t);
  EXPECT_EQ(j, Relation::Parse("a, b, c", "1,1,10; 1,2,20; 2,1,10"));
  // Theta join needs disjoint names.
  Relation renamed = Rename(t, {{"b", "b2"}});
  Relation theta = ThetaJoin(kR, renamed, Expr::ColEqCol("b", "b2"));
  EXPECT_EQ(theta.size(), 3u);
  EXPECT_EQ(theta.schema().size(), 4u);
}

TEST(OpsTest, NaturalJoinWithNoCommonNamesIsProduct) {
  Relation t = Relation::Parse("z", "5");
  EXPECT_EQ(NaturalJoin(kR, t).size(), kR.size());
}

TEST(OpsTest, SemiAndAntiJoins) {
  Relation t = Relation::Parse("b", "1");
  EXPECT_EQ(SemiJoin(kR, t), Relation::Parse("a, b", "1,1; 2,1"));
  EXPECT_EQ(AntiSemiJoin(kR, t), Relation::Parse("a, b", "1,2"));
  // Degenerate: no common attributes — keep all iff right side nonempty.
  Relation unrelated = Relation::Parse("z", "1");
  EXPECT_EQ(SemiJoin(kR, unrelated), kR);
  EXPECT_TRUE(SemiJoin(kR, Relation(Schema::Parse("z"))).empty());
}

TEST(OpsTest, LeftOuterJoinPadsWithNulls) {
  Relation t = Relation::Parse("b, c", "1,10");
  Relation j = LeftOuterJoin(kR, t);
  ASSERT_EQ(j.size(), 3u);
  bool found_padded = false;
  for (const Tuple& row : j.tuples()) {
    if (row[1] == V(2)) {
      EXPECT_TRUE(row[2].is_null());
      found_padded = true;
    }
  }
  EXPECT_TRUE(found_padded);
}

TEST(OpsTest, GroupByAllAggregates) {
  Relation r = Relation::Parse("g, x", "1,10; 1,20; 2,5");
  Relation out = GroupBy(r, {"g"},
                         {{AggFunc::kCount, "x", "n"},
                          {AggFunc::kSum, "x", "total"},
                          {AggFunc::kMin, "x", "lo"},
                          {AggFunc::kMax, "x", "hi"},
                          {AggFunc::kAvg, "x", "mean"}});
  ASSERT_EQ(out.size(), 2u);
  const Tuple& g1 = out.tuples()[0];
  EXPECT_EQ(g1, (Tuple{V(1), V(2), V(30), V(10), V(20), V(15.0)}));
  const Tuple& g2 = out.tuples()[1];
  EXPECT_EQ(g2, (Tuple{V(2), V(1), V(5), V(5), V(5), V(5.0)}));
}

TEST(OpsTest, GroupByGlobalGroupOnEmptyInput) {
  Relation empty(Schema::Parse("x"));
  Relation out = GroupBy(empty, {}, {{AggFunc::kCount, "x", "n"}, {AggFunc::kSum, "x", "s"}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.tuples()[0][0], V(0));
  EXPECT_TRUE(out.tuples()[0][1].is_null());  // SUM of nothing is NULL
}

TEST(OpsTest, GroupByOutputSchemaTypes) {
  Relation r = Relation::Parse("g, x:real", "1,1.5");
  Schema s = GroupByOutputSchema(r.schema(), {"g"},
                                 {{AggFunc::kCount, "x", "n"},
                                  {AggFunc::kSum, "x", "t"},
                                  {AggFunc::kAvg, "x", "m"}});
  EXPECT_EQ(s.attribute(1).type, ValueType::kInt);   // count
  EXPECT_EQ(s.attribute(2).type, ValueType::kReal);  // sum of real
  EXPECT_EQ(s.attribute(3).type, ValueType::kReal);  // avg
}

TEST(OpsTest, ParametricUnionIdempotence) {
  EXPECT_EQ(Union(kR, kR), kR);
  EXPECT_EQ(Intersect(kR, kR), kR);
  EXPECT_TRUE(Difference(kR, kR).empty());
}

}  // namespace
}  // namespace quotient
