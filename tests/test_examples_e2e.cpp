// The paper's worked derivations (Examples 1-4) reproduced end to end: each
// rewrite chain is replayed step by step with every intermediate expression
// checked for result equivalence, at the relation level and (where the
// rules exist) through the plan rewrite engine.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/laws.hpp"
#include "opt/planner.hpp"
#include "paper_fixtures.hpp"
#include "plan/evaluate.hpp"

namespace quotient {
namespace {

// ---------------------------------------------------------------------------
// Example 3 (§5.1.6): (r1* ⋈_{b1<b2} r1**) ÷ r2 rewritten join-free.
// The paper derives it in five steps; we replay each line.
// ---------------------------------------------------------------------------
TEST(Example3Derivation, EveryStepPreservesTheResult) {
  Relation star = paper::Fig8R1Star();          // (a, b1)
  Relation star_star = paper::Fig9R1StarStar();  // (b2)
  Relation r2 = paper::Fig9Divisor();            // (b1, b2)
  ExprPtr lt = Expr::Compare(CmpOp::kLt, Expr::Column("b1"), Expr::Column("b2"));
  ExprPtr ge = Expr::Compare(CmpOp::kGe, Expr::Column("b1"), Expr::Column("b2"));

  // Step 0 (the original): (r1* ⋈_{b1<b2} r1**) ÷ r2.
  Relation step0 = Divide(ThetaJoin(star, star_star, lt), r2);

  // Step 1 (definition of theta-join): σ_{b1<b2}(r1* × r1**) ÷ r2.
  Relation step1 = Divide(Select(Product(star, star_star), lt), r2);
  EXPECT_EQ(step1, step0);

  // Step 2 (Example 1): (σp(×) ÷ σp(r2)) − πa(πa(×) × σ¬p(r2)).
  Relation product = Product(star, star_star);
  Relation step2 = Difference(
      Divide(Select(product, lt), Select(r2, lt)),
      Project(Product(Project(product, {"a"}), Select(r2, ge)), {"a"}));
  EXPECT_EQ(step2, step0);

  // Step 3 (Law 4 applied backwards removes the dividend selection):
  //   ((r1* × r1**) ÷ σ_{b1<b2}(r2)) − ...
  Relation step3 = Difference(
      Divide(product, Select(r2, lt)),
      Project(Product(Project(product, {"a"}), Select(r2, ge)), {"a"}));
  EXPECT_EQ(step3, step0);

  // Step 4 (Law 9 eliminates the covered factor):
  //   (r1* ÷ πb1(σ_{b1<b2}(r2))) − ...
  Relation step4 = Difference(
      Divide(star, Project(Select(r2, lt), {"b1"})),
      Project(Product(Project(product, {"a"}), Select(r2, ge)), {"a"}));
  EXPECT_EQ(step4, step0);

  // Step 5 (a ∈ R1* only): the guard shrinks to πa(r1*) × σ_{b1≥b2}(r2).
  Relation step5 = Difference(
      Divide(star, Project(Select(r2, lt), {"b1"})),
      Project(Product(Project(star, {"a"}), Select(r2, ge)), {"a"}));
  EXPECT_EQ(step5, step0);
  EXPECT_EQ(step5, paper::Fig9Quotient());
}

// ---------------------------------------------------------------------------
// Example 4 (§5.2.4): r1* ⋈ (r1** ÷* r2) = (r1* ⋈ r1**) ÷* r2, derived via
// theta-join definition, Law 17, Law 14, and back.
// ---------------------------------------------------------------------------
TEST(Example4Derivation, EveryStepPreservesTheResult) {
  Relation star = Relation::Parse("a1", "1; 2; 3");
  Relation star_star = Rename(paper::Fig1Dividend(), {{"a", "a2"}});
  Relation r2 = paper::Fig2Divisor();
  ExprPtr eq = Expr::ColEqCol("a1", "a2");

  // Step 0: r1* ⋈_{a1=a2} (r1** ÷* r2).
  Relation step0 = ThetaJoin(star, GreatDivide(star_star, r2), eq);

  // Step 1 (def. of theta-join): σ_{a1=a2}(r1* × (r1** ÷* r2)).
  Relation step1 = Select(Product(star, GreatDivide(star_star, r2)), eq);
  EXPECT_EQ(step1, step0);

  // Step 2 (Law 17): σ_{a1=a2}((r1* × r1**) ÷* r2).
  Relation step2 = Select(GreatDivide(Product(star, star_star), r2), eq);
  EXPECT_EQ(step2, step0);

  // Step 3 (Law 14): σ_{a1=a2}(r1* × r1**) ÷* r2.
  Relation step3 = GreatDivide(Select(Product(star, star_star), eq), r2);
  EXPECT_EQ(step3, step0);

  // Step 4 (def. of theta-join): (r1* ⋈_{a1=a2} r1**) ÷* r2.
  Relation step4 = GreatDivide(ThetaJoin(star, star_star, eq), r2);
  EXPECT_EQ(step4, step0);
}

// ---------------------------------------------------------------------------
// Example 2 (§5.1.5): (r1 × s) ÷ (r2 × s) = r1 ÷ r2, the Law 9 corollary,
// following the paper's equation chain.
// ---------------------------------------------------------------------------
TEST(Example2Derivation, FollowsLaw9) {
  Relation r1 = Relation::Parse("a, b1", "1,1; 1,2; 2,1");
  Relation r2 = Relation::Parse("b1", "1; 2");
  Relation s = Relation::Parse("b2", "7; 8");

  // The divisor of the left-hand side is r2 × s; its B2 projection is s
  // itself, so Law 9's precondition πB2(divisor) ⊆ s holds by construction.
  Relation divisor = Product(r2, s);
  EXPECT_TRUE(laws::Law9Precondition(s, divisor));
  // Law 9: (r1 × s) ÷ (r2 × s) = r1 ÷ πb1(r2 × s) = r1 ÷ r2.
  EXPECT_EQ(Divide(Product(r1, s), divisor), Divide(r1, Project(divisor, {"b1"})));
  EXPECT_EQ(Divide(r1, Project(divisor, {"b1"})), Divide(r1, r2));
}

// ---------------------------------------------------------------------------
// The rewrite engine replays the Example 4 chain on plan trees in one step.
// ---------------------------------------------------------------------------
TEST(Example4Derivation, RewriteEngineAppliesTheWholeChain) {
  Catalog catalog;
  catalog.Put("star", Relation::Parse("a1", "1; 2; 3"));
  catalog.Put("ss", Rename(paper::Fig1Dividend(), {{"a", "a2"}}));
  catalog.Put("r2", paper::Fig2Divisor());

  PlanPtr plan = LogicalOp::ThetaJoin(
      LogicalOp::Scan(catalog, "star"),
      LogicalOp::GreatDivide(LogicalOp::Scan(catalog, "ss"), LogicalOp::Scan(catalog, "r2")),
      Expr::ColEqCol("a1", "a2"));

  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog, false};
  std::vector<RewriteStep> trace;
  PlanPtr rewritten = engine.Rewrite(plan, context, &trace);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace[0].rule, "example4-join-push");
  EXPECT_EQ(rewritten->kind(), LogicalOp::Kind::kGreatDivide);
  EXPECT_EQ(Evaluate(rewritten, catalog), Evaluate(plan, catalog));
  EXPECT_EQ(ExecutePlan(rewritten, catalog), ExecutePlan(plan, catalog));
}

// ---------------------------------------------------------------------------
// Example 1's "extreme case" (§5.1.2): when σ¬p(r2) ≠ ∅ the whole quotient
// is forced empty; the Cartesian-product guard implements the on/off switch.
// ---------------------------------------------------------------------------
TEST(Example1Switch, GuardForcesEmptinessExactlyWhenResidueNonEmpty) {
  Relation r1 = paper::Fig4Dividend();
  Relation r2 = paper::Fig4Divisor();
  for (int64_t cut : {0, 1, 3, 4, 5}) {
    ExprPtr p = Expr::ColCmp("b", CmpOp::kLt, V(cut));
    Relation residue = Select(r2, Expr::Not(p));
    Relation lhs = laws::Example1Lhs(r1, r2, p);
    EXPECT_EQ(lhs, laws::Example1Rhs(r1, r2, p)) << "cut " << cut;
    if (!residue.empty()) {
      EXPECT_TRUE(lhs.empty()) << "divisor values outside p force emptiness (cut " << cut
                               << ")";
    }
  }
}

}  // namespace
}  // namespace quotient
