// Every physical division algorithm must agree with the reference algebra
// (Codd's definition) on the paper's examples and on randomized inputs.

#include <gtest/gtest.h>

#include "algebra/divide.hpp"
#include "algebra/generator.hpp"
#include "algebra/ops.hpp"
#include "exec/exec_basic.hpp"
#include "exec/exec_divide.hpp"
#include "exec/exec_great_divide.hpp"
#include "paper_fixtures.hpp"

namespace quotient {
namespace {

class DivisionAlgorithmTest : public ::testing::TestWithParam<DivisionAlgorithm> {};

TEST_P(DivisionAlgorithmTest, Figure1) {
  EXPECT_EQ(ExecDivide(paper::Fig1Dividend(), paper::Fig1Divisor(), GetParam()),
            paper::Fig1Quotient());
}

TEST_P(DivisionAlgorithmTest, Figure4) {
  EXPECT_EQ(ExecDivide(paper::Fig4Dividend(), paper::Fig4Divisor(), GetParam()),
            paper::Fig4Quotient());
}

TEST_P(DivisionAlgorithmTest, EmptyDivisorYieldsAllCandidates) {
  Relation r1 = paper::Fig1Dividend();
  Relation empty(Schema::Parse("b"));
  EXPECT_EQ(ExecDivide(r1, empty, GetParam()), Project(r1, {"a"}));
}

TEST_P(DivisionAlgorithmTest, EmptyDividendYieldsEmptyQuotient) {
  Relation empty(Schema::Parse("a, b"));
  EXPECT_TRUE(ExecDivide(empty, paper::Fig1Divisor(), GetParam()).empty());
}

TEST_P(DivisionAlgorithmTest, DivisorLargerThanEveryGroup) {
  Relation r1 = Relation::Parse("a, b", "1,1; 2,2");
  Relation r2 = Relation::Parse("b", "1; 2; 3");
  EXPECT_TRUE(ExecDivide(r1, r2, GetParam()).empty());
}

TEST_P(DivisionAlgorithmTest, SingleGroupCoversDivisor) {
  Relation r1 = Relation::Parse("a, b", "7,1; 7,2; 7,3");
  Relation r2 = Relation::Parse("b", "1; 3");
  EXPECT_EQ(ExecDivide(r1, r2, GetParam()), Relation::Parse("a", "7"));
}

TEST_P(DivisionAlgorithmTest, MultiAttributeAandB) {
  // A = {a1, a2}, B = {b1, b2}.
  Relation r1 = Relation::Parse("a1, a2, b1, b2",
                                "1,1,10,20; 1,1,11,21;"
                                "1,2,10,20;"
                                "2,1,10,20; 2,1,11,21; 2,1,12,22");
  Relation r2 = Relation::Parse("b1, b2", "10,20; 11,21");
  Relation expected = Relation::Parse("a1, a2", "1,1; 2,1");
  EXPECT_EQ(ExecDivide(r1, r2, GetParam()), expected);
}

TEST_P(DivisionAlgorithmTest, RandomizedAgainstReference) {
  DataGen gen(0xD1Dull + static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 60; ++round) {
    Relation r1 = gen.Dividend(/*groups=*/gen.UniformInt(0, 12),
                               /*domain=*/gen.UniformInt(1, 10), /*density=*/0.4);
    Relation r2 = gen.Divisor(/*size=*/gen.UniformInt(0, 6), /*domain=*/10);
    EXPECT_EQ(ExecDivide(r1, r2, GetParam()), DivideCodd(r1, r2))
        << "round " << round << "\nr1:\n"
        << r1.ToString() << "r2:\n"
        << r2.ToString();
  }
}

TEST_P(DivisionAlgorithmTest, RandomizedStringBAgainstReference) {
  // String-valued B domain: the key dictionaries intern strings instead of
  // ints; every algorithm must still agree with the reference.
  DivisionAlgorithm algorithm = GetParam();
  DataGen gen(0x57Dull + static_cast<uint64_t>(algorithm));
  for (int round = 0; round < 30; ++round) {
    Relation r1 = StringifyAttribute(
        gen.Dividend(gen.UniformInt(0, 10), gen.UniformInt(1, 9), 0.4), "b");
    Relation r2 = StringifyAttribute(gen.Divisor(gen.UniformInt(0, 6), 9), "b");
    EXPECT_EQ(ExecDivide(r1, r2, algorithm), DivideCodd(r1, r2)) << "round " << round;
  }
}

TEST_P(DivisionAlgorithmTest, RandomizedMixedTypeBAgainstReference) {
  // B mixes an int, a real, and a string attribute: dictionary equality must
  // respect strict Value equality (Int(2) != Real(2.0)) per column.
  DivisionAlgorithm algorithm = GetParam();
  DataGen gen(0x317ull + static_cast<uint64_t>(algorithm));
  for (int round = 0; round < 30; ++round) {
    std::vector<Tuple> dividend_rows;
    size_t groups = static_cast<size_t>(gen.UniformInt(0, 8));
    for (size_t g = 0; g < groups; ++g) {
      for (int i = 0, n = static_cast<int>(gen.UniformInt(0, 10)); i < n; ++i) {
        dividend_rows.push_back({V(static_cast<int64_t>(g)), V(gen.UniformInt(0, 3)),
                                 V(0.5 * static_cast<double>(gen.UniformInt(0, 3))),
                                 V("s" + std::to_string(gen.UniformInt(0, 3)))});
      }
    }
    Relation r1(Schema::Parse("a, b1, b2:real, b3:string"), std::move(dividend_rows));
    std::vector<Tuple> divisor_rows;
    for (int i = 0, n = static_cast<int>(gen.UniformInt(0, 4)); i < n; ++i) {
      divisor_rows.push_back({V(gen.UniformInt(0, 3)),
                              V(0.5 * static_cast<double>(gen.UniformInt(0, 3))),
                              V("s" + std::to_string(gen.UniformInt(0, 3)))});
    }
    Relation r2(Schema::Parse("b1, b2:real, b3:string"), std::move(divisor_rows));
    EXPECT_EQ(ExecDivide(r1, r2, algorithm), DivideCodd(r1, r2)) << "round " << round;
  }
}

TEST_P(DivisionAlgorithmTest, WideBKeysExerciseSpillPath) {
  // 17+ B columns over a 10-value domain overflow the 64-bit key layout, so
  // the divisor codec takes the spill (SmallByteKey) representation.
  DivisionAlgorithm algorithm = GetParam();
  DataGen gen(0x5B111ull + static_cast<uint64_t>(algorithm));
  for (int round = 0; round < 3; ++round) {
    constexpr size_t kNumB = 18;
    // 18 B columns, each with hundreds of distinct values (≥9 bits): the
    // packed layout needs far more than 64 bits, guaranteeing a spill.
    Relation r1 = gen.DividendWide(/*groups=*/4, /*num_a=*/1, kNumB,
                                   /*domain=*/300, /*density=*/0.2);
    // Divisor: a sample of the dividend's own B tuples (plus arity check),
    // so quotients are nonempty.
    std::vector<size_t> b_idx;
    for (size_t i = 1; i <= kNumB; ++i) b_idx.push_back(i);
    std::vector<Tuple> divisor_rows;
    for (const Tuple& t : r1.tuples()) {
      if (gen.Chance(0.1)) divisor_rows.push_back(ProjectTuple(t, b_idx));
    }
    std::vector<std::string> b_names;
    for (size_t i = 1; i <= kNumB; ++i) b_names.push_back("b" + std::to_string(i));
    Relation r2(r1.schema().Project(b_names), std::move(divisor_rows));
    EXPECT_EQ(ExecDivide(r1, r2, algorithm), DivideCodd(r1, r2)) << "round " << round;
  }
}

TEST_P(DivisionAlgorithmTest, WideAKeysExerciseSpillPath) {
  // Many A columns: the candidate (quotient) codec spills instead.
  DivisionAlgorithm algorithm = GetParam();
  DataGen gen(0x5A111ull + static_cast<uint64_t>(algorithm));
  for (int round = 0; round < 3; ++round) {
    Relation r1 = gen.DividendWide(/*groups=*/40, /*num_a=*/18, /*num_b=*/1,
                                   /*domain=*/300, /*density=*/0.05);
    Relation r2 = gen.Divisor(/*size=*/3, /*domain=*/300);
    EXPECT_EQ(ExecDivide(r1, r2, algorithm), DivideCodd(r1, r2)) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, DivisionAlgorithmTest,
                         ::testing::Values(DivisionAlgorithm::kHash,
                                           DivisionAlgorithm::kHashTransposed,
                                           DivisionAlgorithm::kMergeSort,
                                           DivisionAlgorithm::kHashCount,
                                           DivisionAlgorithm::kSortCount,
                                           DivisionAlgorithm::kNestedLoop),
                         [](const ::testing::TestParamInfo<DivisionAlgorithm>& info) {
                           return DivisionAlgorithmName(info.param);
                         });

class GreatDivideAlgorithmTest : public ::testing::TestWithParam<GreatDivideAlgorithm> {};

TEST_P(GreatDivideAlgorithmTest, Figure2) {
  EXPECT_EQ(ExecGreatDivide(paper::Fig1Dividend(), paper::Fig2Divisor(), GetParam()),
            paper::Fig2Quotient());
}

TEST_P(GreatDivideAlgorithmTest, EmptyDivisorYieldsEmptyResult) {
  // No divisor rows means no C groups, so the great divide is empty (this
  // regressed once as an out-of-bounds index on the empty count matrix).
  Relation r1 = paper::Fig1Dividend();
  Relation empty(Schema::Parse("b, c"));
  EXPECT_EQ(ExecGreatDivide(r1, empty, GetParam()), GreatDivideSCD(r1, empty));
  EXPECT_TRUE(ExecGreatDivide(r1, empty, GetParam()).empty());
}

TEST_P(GreatDivideAlgorithmTest, RandomizedAgainstReference) {
  DataGen gen(0x6D1Dull + static_cast<uint64_t>(GetParam()));
  for (int round = 0; round < 60; ++round) {
    Relation r1 = gen.Dividend(gen.UniformInt(0, 10), gen.UniformInt(1, 8), 0.45);
    Relation r2 = gen.GreatDivisor(gen.UniformInt(1, 5), 8, 0.3);
    EXPECT_EQ(ExecGreatDivide(r1, r2, GetParam()), GreatDivideSCD(r1, r2))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, GreatDivideAlgorithmTest,
                         ::testing::Values(GreatDivideAlgorithm::kHash,
                                           GreatDivideAlgorithm::kGroup),
                         [](const ::testing::TestParamInfo<GreatDivideAlgorithm>& info) {
                           return GreatDivideAlgorithmName(info.param);
                         });

TEST(GreatDividePartitioned, MatchesReferenceAcrossThreadCounts) {
  DataGen gen(0xAB12ull);
  Relation r1 = gen.Dividend(20, 12, 0.5);
  Relation r2 = gen.GreatDivisor(9, 12, 0.25);
  Relation expected = GreatDivideSCD(r1, r2);
  for (size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    EXPECT_EQ(GreatDividePartitioned(r1, r2, threads), expected) << threads << " threads";
  }
}

TEST(SetContainmentJoinExec, AgreesWithReferenceOnFigure3) {
  Relation r1 = Nest(paper::Fig1Dividend(), "b", "b1");
  Relation r2 = Nest(paper::Fig2Divisor(), "b", "b2");
  SetContainmentJoinIterator it(
      std::make_unique<RelationScan>(std::make_shared<const Relation>(r1)), "b1",
      std::make_unique<RelationScan>(std::make_shared<const Relation>(r2)), "b2");
  EXPECT_EQ(ExecuteToRelation(it), SetContainmentJoin(r1, "b1", r2, "b2"));
}

TEST(SetContainmentJoinExec, RandomizedAgainstReference) {
  DataGen gen(77);
  for (int round = 0; round < 40; ++round) {
    Relation left_flat = gen.Dividend(gen.UniformInt(1, 8), 10, 0.4);
    Relation right_flat = gen.GreatDivisor(gen.UniformInt(1, 5), 10, 0.3);
    Relation r1 = Nest(left_flat, "b", "s1");
    Relation r2 = Rename(Nest(right_flat, "b", "s2"), {{"c", "g"}});
    SetContainmentJoinIterator it(
        std::make_unique<RelationScan>(std::make_shared<const Relation>(r1)), "s1",
        std::make_unique<RelationScan>(std::make_shared<const Relation>(r2)), "s2");
    EXPECT_EQ(ExecuteToRelation(it), SetContainmentJoin(r1, "s1", r2, "s2")) << round;
  }
}

}  // namespace
}  // namespace quotient
