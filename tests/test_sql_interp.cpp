// SQL interpreter semantics beyond the paper's queries: name resolution,
// correlation, derived tables, aggregates, and the DIVIDE BY edge cases.

#include <gtest/gtest.h>

#include "sql/interp.hpp"

namespace quotient {
namespace {

class SqlInterpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.Put("t", Relation::Parse("a, b", "1,10; 2,20; 3,30"));
    catalog_.Put("u", Relation::Parse("a, c", "1,100; 3,300"));
    catalog_.Put("r1", Relation::Parse("a, b", "1,1; 1,2; 2,1"));
    catalog_.Put("r2", Relation::Parse("b", "1; 2"));
  }

  Relation Run(const std::string& query) {
    Result<Relation> result = sql::ExecuteSql(query, catalog_);
    EXPECT_TRUE(result.ok()) << query << "\n" << result.error();
    return result.ok() ? result.value() : Relation();
  }

  Catalog catalog_;
};

TEST_F(SqlInterpTest, SelectStarStripsQualifiersWhenUnique) {
  Relation r = Run("SELECT * FROM t");
  EXPECT_EQ(r.schema().Names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r.size(), 3u);
}

TEST_F(SqlInterpTest, SelectStarKeepsQualifiersOnCollision) {
  Relation r = Run("SELECT * FROM t, u");
  // Both factors expose 'a': those stay qualified, the rest are bare.
  EXPECT_TRUE(r.schema().Contains("t.a"));
  EXPECT_TRUE(r.schema().Contains("u.a"));
  EXPECT_TRUE(r.schema().Contains("b"));
  EXPECT_TRUE(r.schema().Contains("c"));
}

TEST_F(SqlInterpTest, AmbiguousBareColumnIsAnError) {
  Result<Relation> result = sql::ExecuteSql("SELECT a FROM t, u", catalog_);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().find("ambiguous"), std::string::npos);
}

TEST_F(SqlInterpTest, QualifiedColumnsDisambiguate) {
  Relation r = Run("SELECT t.a, u.a AS ua FROM t, u WHERE t.a = u.a");
  EXPECT_EQ(r, Relation::Parse("a, ua", "1,1; 3,3"));
}

TEST_F(SqlInterpTest, WhereWithArithmetic) {
  EXPECT_EQ(Run("SELECT a FROM t WHERE b / 10 = a * 1.0"), Relation::Parse("a", "1; 2; 3"));
  EXPECT_EQ(Run("SELECT a FROM t WHERE b + 5 > 28"), Relation::Parse("a", "3"));
}

TEST_F(SqlInterpTest, SelectExpressionItems) {
  Relation r = Run("SELECT a + 1 AS next FROM t WHERE a = 1");
  EXPECT_EQ(r.schema().Names(), (std::vector<std::string>{"next"}));
  EXPECT_EQ(r.tuples()[0][0], V(2));
}

TEST_F(SqlInterpTest, CorrelatedExistsSeesOuterRow) {
  EXPECT_EQ(Run("SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a)"),
            Relation::Parse("a", "1; 3"));
  EXPECT_EQ(Run("SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.a = t.a)"),
            Relation::Parse("a", "2"));
}

TEST_F(SqlInterpTest, DerivedTablesAreQualifiedByAlias) {
  Relation r = Run(
      "SELECT q.a FROM (SELECT a FROM t WHERE b >= 20) AS q WHERE q.a < 3");
  EXPECT_EQ(r, Relation::Parse("a", "2"));
}

TEST_F(SqlInterpTest, GlobalAggregateWithoutGroupBy) {
  Relation r = Run("SELECT COUNT(*) AS n, SUM(b) AS s, MIN(a) AS lo, MAX(a) AS hi, "
                   "AVG(b) AS m FROM t");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.tuples()[0][0], V(3));
  EXPECT_EQ(r.tuples()[0][1], V(60));
  EXPECT_EQ(r.tuples()[0][2], V(1));
  EXPECT_EQ(r.tuples()[0][3], V(3));
  EXPECT_EQ(r.tuples()[0][4], V(20.0));
}

TEST_F(SqlInterpTest, HavingOverCompositeCondition) {
  catalog_.Put("sales", Relation::Parse("region, amount",
                                        "1,10; 1,20; 2,5; 2,5; 3,100"));
  Relation r = Run(
      "SELECT region, SUM(amount) AS total FROM sales GROUP BY region "
      "HAVING SUM(amount) >= 15 AND COUNT(amount) >= 2");
  // region 1: total 30 over 2 rows (passes); region 2: 10 (fails the sum);
  // region 3: 100 but one row (fails the count). Note set semantics merged
  // region 2's duplicate (2,5) rows into one tuple.
  EXPECT_EQ(r, Relation::Parse("region, total", "1,30"));
}

TEST_F(SqlInterpTest, DivideBySmallWhenOnCoversDivisor) {
  EXPECT_EQ(Run("SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b"), Relation::Parse("a", "1"));
}

TEST_F(SqlInterpTest, DivideByWithDifferentColumnNames) {
  catalog_.Put("d", Relation::Parse("x", "1; 2"));
  // Divisor column x is renamed onto dividend column b via the ON clause.
  EXPECT_EQ(Run("SELECT a FROM r1 DIVIDE BY d ON r1.b = d.x"), Relation::Parse("a", "1"));
}

TEST_F(SqlInterpTest, DivideByRejectsNonEquiAndDisjointOn) {
  EXPECT_FALSE(sql::ExecuteSql("SELECT a FROM r1 DIVIDE BY r2 ON r1.b < r2.b", catalog_).ok());
  EXPECT_FALSE(sql::ExecuteSql("SELECT a FROM r1 DIVIDE BY r2 ON 1 = 1", catalog_).ok());
}

TEST_F(SqlInterpTest, DivideByEmptyDivisorGroupSemantics) {
  // Small divide with empty divisor: vacuous truth keeps all candidates.
  catalog_.Put("empty", Relation(Schema::Parse("b")));
  EXPECT_EQ(Run("SELECT a FROM r1 DIVIDE BY empty ON r1.b = empty.b"),
            Relation::Parse("a", "1; 2"));
}

TEST_F(SqlInterpTest, InSubqueryWithWrongArityFails) {
  EXPECT_FALSE(
      sql::ExecuteSql("SELECT a FROM t WHERE a IN (SELECT a, b FROM t)", catalog_).ok());
}

TEST_F(SqlInterpTest, DuplicateRemovalIsSetSemantics) {
  catalog_.Put("dups", Relation::Parse("a, b", "1,1; 1,2"));
  // Projecting to 'a' merges the rows even without DISTINCT (Appendix A
  // set semantics).
  EXPECT_EQ(Run("SELECT a FROM dups"), Relation::Parse("a", "1"));
}

}  // namespace
}  // namespace quotient
