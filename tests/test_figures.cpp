// Exact reproduction of every figure in the paper (Figures 1-11): same
// inputs, same outputs, including all printed intermediate results.

#include <gtest/gtest.h>

#include "algebra/divide.hpp"
#include "algebra/ops.hpp"
#include "core/laws.hpp"
#include "paper_fixtures.hpp"

namespace quotient {
namespace {

using namespace paper;

TEST(Figure1, SmallDivide) {
  EXPECT_EQ(Divide(Fig1Dividend(), Fig1Divisor()), Fig1Quotient());
}

TEST(Figure1, AllDefinitionsAgree) {
  EXPECT_EQ(DivideCodd(Fig1Dividend(), Fig1Divisor()), Fig1Quotient());
  EXPECT_EQ(DivideHealy(Fig1Dividend(), Fig1Divisor()), Fig1Quotient());
  EXPECT_EQ(DivideMaier(Fig1Dividend(), Fig1Divisor()), Fig1Quotient());
  EXPECT_EQ(DivideCounting(Fig1Dividend(), Fig1Divisor()), Fig1Quotient());
}

TEST(Figure2, GeneralizedDivision) {
  EXPECT_EQ(GreatDivide(Fig1Dividend(), Fig2Divisor()), Fig2Quotient());
}

TEST(Figure2, AllDefinitionsAgree) {
  EXPECT_EQ(GreatDivideSCD(Fig1Dividend(), Fig2Divisor()), Fig2Quotient());
  EXPECT_EQ(GreatDivideDemolombe(Fig1Dividend(), Fig2Divisor()), Fig2Quotient());
  EXPECT_EQ(GreatDivideTodd(Fig1Dividend(), Fig2Divisor()), Fig2Quotient());
}

TEST(Figure3, SetContainmentJoin) {
  // Figure 3's NF² relations are the nested forms of Figure 2's relations.
  Relation r1 = Nest(Fig1Dividend(), "b", "b1");
  Relation r2 = Nest(Fig2Divisor(), "b", "b2");
  ASSERT_EQ(r1.size(), 3u);
  ASSERT_EQ(r2.size(), 2u);

  Relation r3 = SetContainmentJoin(r1, "b1", r2, "b2");

  Relation expected = Relation::FromRows(
      "a:int, b1:set, b2:set, c:int",
      {{V(2), Value::SetOf({V(1), V(2), V(3), V(4)}), Value::SetOf({V(1), V(2), V(4)}), V(1)},
       {V(2), Value::SetOf({V(1), V(2), V(3), V(4)}), Value::SetOf({V(1), V(3)}), V(2)},
       {V(3), Value::SetOf({V(1), V(3), V(4)}), Value::SetOf({V(1), V(3)}), V(2)}});
  EXPECT_EQ(r3, expected);
}

TEST(Figure3, MatchesGreatDivideModuloSetAttributes) {
  // §2.2: SCJ and great divide solve the same problem; projecting the join
  // attributes away from the SCJ result yields the great-divide quotient.
  Relation r1 = Nest(Fig1Dividend(), "b", "b1");
  Relation r2 = Nest(Fig2Divisor(), "b", "b2");
  Relation scj = SetContainmentJoin(r1, "b1", r2, "b2");
  EXPECT_EQ(Project(scj, {"a", "c"}), Fig2Quotient());
}

TEST(Figure4, Law1EveryIntermediate) {
  Relation r1 = Fig4Dividend();
  // (b) = (c) ∪ (d)
  EXPECT_EQ(Union(Fig4DivisorPrime(), Fig4DivisorPrimePrime()), Fig4Divisor());
  // (e) r1 ÷ r2'
  Relation inner = Divide(r1, Fig4DivisorPrime());
  EXPECT_EQ(inner, Fig4InnerQuotient());
  // (f) r1 ⋉ (r1 ÷ r2')
  Relation semi = SemiJoin(r1, inner);
  EXPECT_EQ(semi, Fig4SemiJoin());
  // (g) final quotient both ways
  EXPECT_EQ(Divide(semi, Fig4DivisorPrimePrime()), Fig4Quotient());
  EXPECT_EQ(Divide(r1, Fig4Divisor()), Fig4Quotient());
}

TEST(Figure4, Law1HoldsDespiteOverlappingPartitions) {
  // r2' ∩ r2'' = {3} ≠ ∅ — Law 1 does not need disjointness.
  EXPECT_FALSE(Intersect(Fig4DivisorPrime(), Fig4DivisorPrimePrime()).empty());
  EXPECT_EQ(laws::Law1Lhs(Fig4Dividend(), Fig4DivisorPrime(), Fig4DivisorPrimePrime()),
            laws::Law1Rhs(Fig4Dividend(), Fig4DivisorPrime(), Fig4DivisorPrimePrime()));
}

TEST(Figure5, Law2PreconditionViolated) {
  Relation r1p = Fig5R1Prime();
  Relation r1pp = Fig5R1PrimePrime();
  Relation r2 = Fig5Divisor();

  // The paper: r1' ÷ r2 = ∅ and r1'' ÷ r2 = ∅ but (r1' ∪ r1'') ÷ r2 ≠ ∅.
  EXPECT_TRUE(Divide(r1p, r2).empty());
  EXPECT_TRUE(Divide(r1pp, r2).empty());
  EXPECT_EQ(Divide(Union(r1p, r1pp), r2), Relation::Parse("a", "1"));

  // Hence c1 is false and the two sides of Law 2 differ.
  EXPECT_FALSE(laws::ConditionC1(r1p, r1pp, r2));
  EXPECT_NE(laws::Law2Lhs(r1p, r1pp, r2), laws::Law2Rhs(r1p, r1pp, r2));
}

TEST(Figure6, Example1EveryIntermediate) {
  Relation r1 = Fig4Dividend();
  Relation r2 = Fig4Divisor();
  ExprPtr p = Expr::ColCmp("b", CmpOp::kLt, V(3));

  // (b) σb<3(r1)
  EXPECT_EQ(Select(r1, p), Relation::Parse("a, b", "1,1; 2,1; 2,2; 3,1; 4,1"));
  // (d) σb<3(r2)
  EXPECT_EQ(Select(r2, p), Relation::Parse("b", "1"));
  // (e) σb<3(r1) ÷ r2 = ∅
  EXPECT_TRUE(Divide(Select(r1, p), r2).empty());
  // (f) σb<3(r1) ÷ σb<3(r2)
  EXPECT_EQ(Divide(Select(r1, p), Select(r2, p)), Relation::Parse("a", "1; 2; 3; 4"));
  // (g) πa(r1) × σb>=3(r2)
  ExprPtr not_p = Expr::ColCmp("b", CmpOp::kGe, V(3));
  Relation g = Product(Project(r1, {"a"}), Select(r2, not_p));
  EXPECT_EQ(g, Relation::Parse("a, b", "1,3; 1,4; 2,3; 2,4; 3,3; 3,4; 4,3; 4,4"));
  // (h) πa(g)
  EXPECT_EQ(Project(g, {"a"}), Relation::Parse("a", "1; 2; 3; 4"));
  // (i) (f) − (h) = ∅, matching (e)
  EXPECT_TRUE(Difference(Divide(Select(r1, p), Select(r2, p)), Project(g, {"a"})).empty());
  // The packaged law helper agrees.
  EXPECT_EQ(laws::Example1Lhs(r1, r2, p), laws::Example1Rhs(r1, r2, p));
}

TEST(Figure7, Law8EveryIntermediate) {
  // (d) r1* × r1** has 2 × 7 = 14 tuples
  Relation product = Product(Fig7R1Star(), Fig7R1StarStar());
  EXPECT_EQ(product.size(), 14u);
  // (e) r1** ÷ r2
  EXPECT_EQ(Divide(Fig7R1StarStar(), Fig7Divisor()), Fig7InnerQuotient());
  // (f) both sides equal the printed quotient
  EXPECT_EQ(Divide(product, Fig7Divisor()), Fig7Quotient());
  EXPECT_EQ(Product(Fig7R1Star(), Divide(Fig7R1StarStar(), Fig7Divisor())), Fig7Quotient());
}

TEST(Figure8, Law9EveryIntermediate) {
  // Precondition: πB2(r2) ⊆ r1**.
  EXPECT_TRUE(laws::Law9Precondition(Fig8R1StarStar(), Fig8Divisor()));
  // (d) r1* × r1** has 8 × 2 = 16 tuples.
  EXPECT_EQ(Product(Fig8R1Star(), Fig8R1StarStar()).size(), 16u);
  // (e) πb1(r2)
  EXPECT_EQ(Project(Fig8Divisor(), {"b1"}), Fig8DivisorB1());
  // (g) both sides equal the printed quotient.
  EXPECT_EQ(laws::Law9Lhs(Fig8R1Star(), Fig8R1StarStar(), Fig8Divisor()), Fig8Quotient());
  EXPECT_EQ(laws::Law9Rhs(Fig8R1Star(), Fig8R1StarStar(), Fig8Divisor()), Fig8Quotient());
}

TEST(Figure9, Example3EveryIntermediate) {
  // Precondition (foreign key): πb2(r2) ⊆ r1**.
  EXPECT_TRUE(Project(Fig9Divisor(), {"b2"}).SubsetOf(Fig9R1StarStar()));
  // (d) the theta-join.
  ExprPtr theta = Expr::Compare(CmpOp::kLt, Expr::Column("b1"), Expr::Column("b2"));
  EXPECT_EQ(ThetaJoin(Fig8R1Star(), Fig9R1StarStar(), theta), Fig9Joined());
  // (e) πb1(σb1<b2(r2)).
  EXPECT_EQ(Project(Select(Fig9Divisor(), theta), {"b1"}), Fig9DivisorB1());
  // (f) both sides equal the printed quotient.
  EXPECT_EQ(laws::Example3Lhs(Fig8R1Star(), Fig9R1StarStar(), Fig9Divisor()), Fig9Quotient());
  EXPECT_EQ(laws::Example3Rhs(Fig8R1Star(), Fig9R1StarStar(), Fig9Divisor()), Fig9Quotient());
}

TEST(Figure10, Law11EveryIntermediate) {
  // (b) the grouped dividend.
  Relation r1 = GroupBy(Fig10R0(), {"a"}, {{AggFunc::kSum, "x", "b"}});
  EXPECT_EQ(r1, Fig10R1());
  // (d) r1 ⋉ r2 and (e) its projection.
  EXPECT_EQ(SemiJoin(r1, Fig10Divisor()), Fig10SemiJoin());
  EXPECT_EQ(Project(SemiJoin(r1, Fig10Divisor()), {"a"}), Fig10Quotient());
  // Law 11 (|r2| = 1 case) agrees with the direct division.
  EXPECT_TRUE(laws::Law11Precondition(r1, Fig10Divisor()));
  EXPECT_EQ(laws::Law11Lhs(r1, Fig10Divisor()), Fig10Quotient());
  EXPECT_EQ(laws::Law11Rhs(r1, Fig10Divisor()), Fig10Quotient());
}

TEST(Figure11, Law12EveryIntermediate) {
  // (b) the grouped dividend.
  Relation r1 = GroupBy(Fig11R0(), {"b"}, {{AggFunc::kSum, "x", "a"}});
  EXPECT_EQ(r1, Fig11R1());
  // (d) r1 ⋉ r2 and (e) its projection.
  EXPECT_EQ(SemiJoin(r1, Fig11Divisor()), Fig11SemiJoin());
  EXPECT_EQ(Project(SemiJoin(r1, Fig11Divisor()), {"a"}), Fig11Quotient());
  // Law 12 agrees with the direct division.
  EXPECT_TRUE(laws::Law12Precondition(r1, Fig11Divisor()));
  EXPECT_EQ(laws::Law12Lhs(r1, Fig11Divisor()), Fig11Quotient());
  EXPECT_EQ(laws::Law12Rhs(r1, Fig11Divisor()), Fig11Quotient());
}

}  // namespace
}  // namespace quotient
