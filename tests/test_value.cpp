#include "algebra/value.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace quotient {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::Int(3).type(), ValueType::kInt);
  EXPECT_EQ(Value::Real(2.5).type(), ValueType::kReal);
  EXPECT_EQ(Value::Str("x").type(), ValueType::kString);
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value::Int(3).as_int(), 3);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).as_real(), 2.5);
  EXPECT_EQ(Value::Str("x").as_str(), "x");
}

TEST(ValueTest, IntOrdering) {
  EXPECT_LT(V(1), V(2));
  EXPECT_EQ(V(2), V(2));
  EXPECT_GT(V(3), V(2));
  EXPECT_LE(V(2), V(2));
}

TEST(ValueTest, MixedNumericOrderingIsNumericFirst) {
  EXPECT_LT(V(2), V(2.5));
  EXPECT_LT(V(2.5), V(3));
  // Exact numeric ties are ordered by type tag (int < real) to stay total.
  EXPECT_LT(V(2), V(2.0));
  EXPECT_NE(V(2), V(2.0));
}

TEST(ValueTest, CrossTypeOrderingByTypeRank) {
  EXPECT_LT(Value(), V(0));           // null < numbers
  EXPECT_LT(V(1000), V("a"));         // numbers < strings
  EXPECT_LT(V("zzz"), Value::SetOf({}));  // strings < sets
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(V("abc"), V("abd"));
  EXPECT_EQ(V("abc"), V("abc"));
  EXPECT_GT(V("b"), V("ab"));
}

TEST(ValueTest, SetOfSortsAndDeduplicates) {
  Value s = Value::SetOf({V(3), V(1), V(3), V(2)});
  ASSERT_EQ(s.as_set().size(), 3u);
  EXPECT_EQ(s.as_set()[0], V(1));
  EXPECT_EQ(s.as_set()[2], V(3));
}

TEST(ValueTest, SetOrderingIsLexicographic) {
  EXPECT_LT(Value::SetOf({V(1)}), Value::SetOf({V(2)}));
  EXPECT_LT(Value::SetOf({V(1)}), Value::SetOf({V(1), V(2)}));
  EXPECT_EQ(Value::SetOf({V(1), V(2)}), Value::SetOf({V(2), V(1)}));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(V(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(V("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_EQ(Value::SetOf({V(1), V(2)}).Hash(), Value::SetOf({V(2), V(1)}).Hash());
}

TEST(ValueTest, Numeric) {
  EXPECT_DOUBLE_EQ(V(3).Numeric(), 3.0);
  EXPECT_DOUBLE_EQ(V(2.5).Numeric(), 2.5);
  EXPECT_THROW(V("x").Numeric(), SchemaError);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(V(3).ToString(), "3");
  EXPECT_EQ(V(-7).ToString(), "-7");
  EXPECT_EQ(V(2.5).ToString(), "2.5");
  EXPECT_EQ(V("hi").ToString(), "hi");
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value::SetOf({V(2), V(1)}).ToString(), "{1, 2}");
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(ValueTypeName(ValueType::kInt), "int");
  EXPECT_STREQ(ValueTypeName(ValueType::kReal), "real");
  EXPECT_STREQ(ValueTypeName(ValueType::kString), "string");
  EXPECT_STREQ(ValueTypeName(ValueType::kSet), "set");
  EXPECT_STREQ(ValueTypeName(ValueType::kNull), "null");
}

}  // namespace
}  // namespace quotient
