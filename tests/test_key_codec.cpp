// Unit tests for the key-encoding subsystem: dictionaries, 64-bit packing,
// the spill path, incremental encoding, and key numbering.

#include <gtest/gtest.h>

#include <algorithm>

#include "algebra/relation.hpp"
#include "exec/key_codec.hpp"
#include "util/bitmap.hpp"

namespace quotient {
namespace {

std::vector<size_t> Iota(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  return idx;
}

TEST(ValueDictTest, DenseFirstSeenIds) {
  ValueDict dict;
  EXPECT_EQ(dict.GetOrAdd(V(7)), 0u);
  EXPECT_EQ(dict.GetOrAdd(V("x")), 1u);
  EXPECT_EQ(dict.GetOrAdd(V(7)), 0u);
  EXPECT_EQ(dict.GetOrAdd(V(2.5)), 2u);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.Find(V("x")), 1u);
  EXPECT_EQ(dict.Find(V("y")), ValueDict::kNotFound);
  EXPECT_EQ(dict.At(2), V(2.5));
}

TEST(ValueDictTest, StrictTypeEquality) {
  // Int(2) and Real(2.0) are distinct values and must get distinct ids.
  ValueDict dict;
  uint32_t int_id = dict.GetOrAdd(V(2));
  uint32_t real_id = dict.GetOrAdd(V(2.0));
  EXPECT_NE(int_id, real_id);
}

TEST(ValueDictTest, ManyValuesSurviveGrowth) {
  ValueDict dict;
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(dict.GetOrAdd(V(i)), static_cast<uint32_t>(i));
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(dict.Find(V(i)), static_cast<uint32_t>(i));
  EXPECT_EQ(dict.Find(V(10000)), ValueDict::kNotFound);
}

TEST(SmallByteKeyTest, InlineAndHeap) {
  SmallByteKey a;
  SmallByteKey b;
  // 8 ids fit inline; 20 ids force the heap path.
  for (uint32_t i = 0; i < 20; ++i) {
    a.PushId(i);
    b.PushId(i);
  }
  EXPECT_EQ(a.num_ids(), 20u);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  for (uint32_t i = 0; i < 20; ++i) EXPECT_EQ(a.IdAt(i), i);
  b.PushId(99);
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b);  // proper prefix sorts first

  SmallByteKey copy = a;  // deep copy of the heap buffer
  EXPECT_EQ(copy, a);
  copy.Clear();
  EXPECT_EQ(copy.num_ids(), 0u);
  EXPECT_EQ(a.num_ids(), 20u);
}

TEST(KeyCodecTest, PacksMultiColumnKeysInto64Bits) {
  // 3 columns with small dictionaries: widths sum well under 64.
  Relation r = Relation::Parse("x, y, z",
                               "1,10,100; 1,20,100; 2,10,200; 2,20,100; 1,10,200");
  KeyCodec codec(3);
  for (const Tuple& t : r.tuples()) codec.Add(t, Iota(3));
  codec.Seal();
  ASSERT_FALSE(codec.spilled());
  EXPECT_EQ(codec.rows(), r.size());

  // Distinct rows get distinct keys; Decode is the inverse of packing.
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < codec.rows(); ++i) {
    keys.push_back(codec.PackedKey(i));
    EXPECT_EQ(codec.DecodeTuple(keys.back()), r.tuples()[i]);
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());

  // Probing re-encodes build tuples identically and rejects unseen values.
  uint64_t probe;
  ASSERT_TRUE(codec.TryEncode(r.tuples()[2], Iota(3), &probe));
  EXPECT_EQ(probe, codec.PackedKey(2));
  EXPECT_FALSE(codec.TryEncode({V(1), V(10), V(999)}, Iota(3), &probe));
}

TEST(KeyCodecTest, SpillsWhenWidthsOverflow) {
  // 17 columns × 4-bit dictionaries = 68 bits > 64: must spill.
  constexpr size_t kCols = 17;
  KeyCodec codec(kCols);
  std::vector<Tuple> rows;
  for (int64_t v = 0; v < 10; ++v) {
    Tuple t;
    for (size_t c = 0; c < kCols; ++c) t.push_back(V((v + static_cast<int64_t>(c)) % 10));
    rows.push_back(t);
    codec.Add(rows.back(), Iota(kCols));
  }
  codec.Seal();
  ASSERT_TRUE(codec.spilled());

  std::vector<SmallByteKey> keys;
  for (size_t i = 0; i < codec.rows(); ++i) {
    keys.push_back(codec.SpillKey(i));
    EXPECT_EQ(codec.DecodeTuple(keys.back()), rows[i]);
  }
  SmallByteKey probe;
  ASSERT_TRUE(codec.TryEncodeSpill(rows[3], Iota(kCols), &probe));
  EXPECT_EQ(probe, keys[3]);
  Tuple foreign = rows[3];
  foreign[5] = V(12345);
  EXPECT_FALSE(codec.TryEncodeSpill(foreign, Iota(kCols), &probe));
}

TEST(KeyCodecTest, SingleColumnKeysAreDenseIds) {
  KeyCodec codec(1);
  Relation r = Relation::Parse("b", "5; 9; 2");
  for (const Tuple& t : r.tuples()) codec.Add(t, Iota(1));
  codec.Seal();
  EXPECT_TRUE(codec.keys_are_dense_ids());
  for (size_t i = 0; i < codec.rows(); ++i) EXPECT_EQ(codec.PackedKey(i), i);
}

TEST(KeyCodecTest, ZeroColumnKeysDegenerate) {
  // A zero-column key (degenerate join on no common attributes): every row
  // has the same (empty) key.
  KeyCodec codec(0);
  codec.AddKey({});
  codec.AddKey({});
  codec.Seal();
  EXPECT_EQ(codec.rows(), 2u);
  EXPECT_FALSE(codec.spilled());
  EXPECT_EQ(codec.PackedKey(0), codec.PackedKey(1));
  uint64_t probe;
  EXPECT_TRUE(codec.TryEncode({V(1)}, {}, &probe));
  EXPECT_EQ(probe, codec.PackedKey(0));
}

TEST(KeyNumberingTest, NumbersAndProbes) {
  Relation build = Relation::Parse("x, y", "1,10; 2,10; 1,20; 2,10");
  KeyCodec codec(2);
  for (const Tuple& t : build.tuples()) codec.Add(t, Iota(2));
  codec.Seal();
  KeyNumbering num;
  num.Build(codec);
  EXPECT_EQ(num.count(), 3u);  // canonical storage dedups the build rows
  for (size_t i = 0; i < codec.rows(); ++i) {
    EXPECT_EQ(num.KeyTuple(num.row_ids()[i]), build.tuples()[i]);
    EXPECT_EQ(num.Probe(build.tuples()[i], Iota(2)), num.row_ids()[i]);
  }
  EXPECT_EQ(num.Probe({V(3), V(10)}, Iota(2)), KeyNumbering::kNotFound);
  // Per-column values seen, but the combination never built: probe encodes
  // and then misses in the numbering.
  EXPECT_EQ(num.Probe({V(2), V(20)}, Iota(2)), KeyNumbering::kNotFound);
}

TEST(IncrementalKeyEncoderTest, TwoColumnKeysStayFlat) {
  IncrementalKeyEncoder enc(2);
  ASSERT_TRUE(enc.fits64());
  Tuple t1 = {V("a"), V(1)};
  Tuple t2 = {V("b"), V(1)};
  uint64_t k1 = enc.Encode64(t1, nullptr);
  uint64_t k2 = enc.Encode64(t2, nullptr);
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1, enc.Encode64(t1, nullptr));  // growth keeps keys stable
  Tuple decoded;
  enc.Decode(k2, &decoded);
  EXPECT_EQ(decoded, t2);
}

TEST(IncrementalKeyEncoderTest, WideKeysSpill) {
  IncrementalKeyEncoder enc(4);
  ASSERT_FALSE(enc.fits64());
  Tuple t = {V(1), V(2), V(3), V("four")};
  SmallByteKey k1, k2;
  enc.EncodeSpill(t, nullptr, &k1);
  enc.EncodeSpill(t, nullptr, &k2);
  EXPECT_EQ(k1, k2);
  Tuple decoded;
  enc.Decode(k1, &decoded);
  EXPECT_EQ(decoded, t);
}

TEST(BitmapMatrixTest, RowsAndBits) {
  BitmapMatrix m(70);  // spans two words per row
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.AddRow(), 0u);
  EXPECT_EQ(m.AddRow(), 1u);
  for (size_t bit = 0; bit < 70; ++bit) m.Set(1, bit);
  m.Set(0, 69);
  EXPECT_TRUE(m.Test(0, 69));
  EXPECT_FALSE(m.Test(0, 68));
  EXPECT_EQ(m.RowCount(0), 1u);
  EXPECT_FALSE(m.RowAll(0));
  EXPECT_TRUE(m.RowAll(1));
}

}  // namespace
}  // namespace quotient
