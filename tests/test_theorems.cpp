// Theorems 1-3 in depth: the three generalized-division definitions on
// adversarial edge inputs, non-commutativity across schema shapes, and the
// schema algebra behind non-associativity.

#include <gtest/gtest.h>

#include "algebra/divide.hpp"
#include "core/theorems.hpp"
#include "util/status.hpp"
#include "paper_fixtures.hpp"

namespace quotient {
namespace {

using theorems::Theorem1Holds;
using theorems::Theorem2CommutedIsInvalid;
using theorems::Theorem3LeftSchema;
using theorems::Theorem3RightSchema;
using theorems::Theorem3SchemasAgree;

TEST(Theorem1, PaperExample) {
  EXPECT_TRUE(Theorem1Holds(paper::Fig1Dividend(), paper::Fig2Divisor()));
}

TEST(Theorem1, EmptyDividend) {
  Relation empty(Schema::Parse("a, b"));
  EXPECT_TRUE(Theorem1Holds(empty, paper::Fig2Divisor()));
  EXPECT_TRUE(GreatDivideSCD(empty, paper::Fig2Divisor()).empty());
}

TEST(Theorem1, EmptyDivisor) {
  Relation empty(Schema::Parse("b, c"));
  EXPECT_TRUE(Theorem1Holds(paper::Fig1Dividend(), empty));
  EXPECT_TRUE(GreatDivideSCD(paper::Fig1Dividend(), empty).empty());
}

TEST(Theorem1, DivisorGroupWithNoMatchingBValues) {
  // A group whose B values appear nowhere in the dividend contributes no
  // quotient tuples — in all three definitions.
  Relation r1 = Relation::Parse("a, b", "1,1");
  Relation r2 = Relation::Parse("b, c", "99,5; 1,6");
  EXPECT_TRUE(Theorem1Holds(r1, r2));
  EXPECT_EQ(GreatDivideSCD(r1, r2), Relation::Parse("a, c", "1,6"));
}

TEST(Theorem1, EveryCandidateQualifiesForEveryGroup) {
  Relation r1 = Relation::Parse("a, b", "1,1; 1,2; 2,1; 2,2");
  Relation r2 = Relation::Parse("b, c", "1,10; 2,20");
  EXPECT_TRUE(Theorem1Holds(r1, r2));
  EXPECT_EQ(GreatDivideSCD(r1, r2).size(), 4u);  // 2 candidates × 2 groups
}

TEST(Theorem1, MultiAttributeEverything) {
  // A = {a1,a2}, B = {b1,b2}, C = {c1,c2}.
  Relation r1 = Relation::Parse("a1, a2, b1, b2",
                                "1,1,5,5; 1,1,6,6; 2,2,5,5");
  Relation r2 = Relation::Parse("b1, b2, c1, c2",
                                "5,5,7,8; 6,6,7,8; 5,5,9,9");
  EXPECT_TRUE(Theorem1Holds(r1, r2));
  EXPECT_EQ(GreatDivideSCD(r1, r2),
            Relation::Parse("a1, a2, c1, c2", "1,1,7,8; 1,1,9,9; 2,2,9,9"));
}

TEST(Theorem2, ClassicShape) {
  EXPECT_TRUE(Theorem2CommutedIsInvalid(paper::Fig1Dividend(), paper::Fig1Divisor()));
}

TEST(Theorem2, WideSchemas) {
  Relation r1 = Relation::Parse("a1, a2, a3, b1, b2", "1,1,1,1,1");
  Relation r2 = Relation::Parse("b1, b2", "1,1");
  EXPECT_TRUE(Theorem2CommutedIsInvalid(r1, r2));
}

TEST(Theorem2, InvalidOriginalIsNotClaimed) {
  // If r1 ÷ r2 itself is invalid, the helper reports false (theorem moot).
  Relation r1 = Relation::Parse("a", "1");
  Relation r2 = Relation::Parse("b", "1");
  EXPECT_FALSE(Theorem2CommutedIsInvalid(r1, r2));
}

TEST(Theorem3, PaperValidNestingIsImpossible) {
  // For r1 ÷ (r2 ÷ r3) AND (r1 ÷ r2) ÷ r3 to both be valid divisions, A3
  // would need to be a nonempty subset of both A2 and A1 − A2 — disjoint
  // sets. Demonstrate on concrete schemas: with A3 ⊆ A2 the left nesting
  // is valid but the right one is rejected.
  Relation r1 = Relation::Parse("x, y, z", "1,2,3");
  Relation r2 = Relation::Parse("y, z", "2,3");
  Relation r3 = Relation::Parse("z", "3");
  Relation inner = Divide(r2, r3);                    // (y)
  Relation left = Divide(r1, inner);                  // valid, schema (x, z)
  EXPECT_EQ(left.schema().Names(), (std::vector<std::string>{"x", "z"}));
  // Right association: (r1 ÷ r2) has schema (x); dividing by r3(z) is
  // invalid because B = attrs(x) ∩ attrs(z) = ∅.
  Relation outer = Divide(r1, r2);
  EXPECT_THROW(Divide(outer, r3), SchemaError);
}

TEST(Theorem3, SchemaAlgebraMatchesSetDefinition) {
  std::vector<std::string> a1 = {"p", "q", "r"};
  std::vector<std::string> a2 = {"q", "r"};
  std::vector<std::string> a3 = {"r"};
  // A1 − (A2 − A3) = {p, r}; (A1 − A2) − A3 = {p}.
  EXPECT_EQ(Theorem3LeftSchema(a1, a2, a3), (std::vector<std::string>{"p", "r"}));
  EXPECT_EQ(Theorem3RightSchema(a1, a2, a3), (std::vector<std::string>{"p"}));
  EXPECT_FALSE(Theorem3SchemasAgree(a1, a2, a3));
  // Disjoint A1/A3 ⇒ agreement regardless of A2.
  EXPECT_TRUE(Theorem3SchemasAgree({"p", "q"}, {"q", "z"}, {"z"}));
}

}  // namespace
}  // namespace quotient
