#include "algebra/predicate.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace quotient {
namespace {

const Schema kSchema = Schema::Parse("a, b:real, s:string");
const Tuple kRow = {V(3), V(2.5), V("hi")};

TEST(PredicateTest, ColumnAndLiteral) {
  EXPECT_EQ(Expr::Column("a")->Eval(kSchema, kRow), V(3));
  EXPECT_EQ(Expr::Literal(V(7))->Eval(kSchema, kRow), V(7));
  EXPECT_THROW(Expr::Column("zzz")->Eval(kSchema, kRow), SchemaError);
}

TEST(PredicateTest, AllComparators) {
  auto check = [](CmpOp op, int lhs, int rhs, bool expected) {
    ExprPtr e = Expr::Compare(op, Expr::Literal(V(lhs)), Expr::Literal(V(rhs)));
    EXPECT_EQ(e->EvalBool(kSchema, kRow), expected)
        << lhs << " " << CmpOpName(op) << " " << rhs;
  };
  check(CmpOp::kEq, 1, 1, true);
  check(CmpOp::kEq, 1, 2, false);
  check(CmpOp::kNe, 1, 2, true);
  check(CmpOp::kLt, 1, 2, true);
  check(CmpOp::kLt, 2, 2, false);
  check(CmpOp::kLe, 2, 2, true);
  check(CmpOp::kGt, 3, 2, true);
  check(CmpOp::kGe, 2, 3, false);
}

TEST(PredicateTest, MixedNumericComparison) {
  // int column vs real literal compares numerically.
  EXPECT_TRUE(Expr::ColCmp("a", CmpOp::kGt, V(2.5))->EvalBool(kSchema, kRow));
  EXPECT_TRUE(Expr::ColCmp("b", CmpOp::kLt, V(3))->EvalBool(kSchema, kRow));
}

TEST(PredicateTest, StringComparison) {
  EXPECT_TRUE(Expr::ColCmp("s", CmpOp::kEq, V("hi"))->EvalBool(kSchema, kRow));
  EXPECT_TRUE(Expr::ColCmp("s", CmpOp::kLt, V("hj"))->EvalBool(kSchema, kRow));
  EXPECT_THROW(Expr::ColCmp("s", CmpOp::kLt, V(3))->EvalBool(kSchema, kRow), SchemaError);
}

TEST(PredicateTest, LogicAndArithmetic) {
  ExprPtr a_is_3 = Expr::ColCmp("a", CmpOp::kEq, V(3));
  ExprPtr a_is_4 = Expr::ColCmp("a", CmpOp::kEq, V(4));
  EXPECT_TRUE(Expr::And(a_is_3, Expr::Not(a_is_4))->EvalBool(kSchema, kRow));
  EXPECT_TRUE(Expr::Or(a_is_4, a_is_3)->EvalBool(kSchema, kRow));
  EXPECT_FALSE(Expr::And(a_is_3, a_is_4)->EvalBool(kSchema, kRow));

  ExprPtr sum = Expr::Arith(Expr::Kind::kAdd, Expr::Column("a"), Expr::Literal(V(4)));
  EXPECT_EQ(sum->Eval(kSchema, kRow), V(7));
  ExprPtr mixed = Expr::Arith(Expr::Kind::kMul, Expr::Column("b"), Expr::Literal(V(2)));
  EXPECT_EQ(mixed->Eval(kSchema, kRow), V(5.0));
  ExprPtr division = Expr::Arith(Expr::Kind::kDiv, Expr::Literal(V(7)), Expr::Literal(V(2)));
  EXPECT_EQ(division->Eval(kSchema, kRow), V(3.5));
  ExprPtr by_zero = Expr::Arith(Expr::Kind::kDiv, Expr::Literal(V(7)), Expr::Literal(V(0)));
  EXPECT_THROW(by_zero->Eval(kSchema, kRow), SchemaError);
}

TEST(PredicateTest, ColumnsAndScope) {
  ExprPtr e = Expr::And(Expr::ColCmp("a", CmpOp::kLt, V(5)),
                        Expr::Compare(CmpOp::kEq, Expr::Column("s"), Expr::Column("s")));
  EXPECT_EQ(e->Columns(), (std::set<std::string>{"a", "s"}));
  EXPECT_TRUE(e->RefersOnlyTo({"a", "s", "b"}));
  EXPECT_FALSE(e->RefersOnlyTo({"a"}));
}

TEST(PredicateTest, StructuralEquality) {
  ExprPtr e1 = Expr::ColCmp("a", CmpOp::kLt, V(5));
  ExprPtr e2 = Expr::ColCmp("a", CmpOp::kLt, V(5));
  ExprPtr e3 = Expr::ColCmp("a", CmpOp::kLe, V(5));
  EXPECT_TRUE(e1->Equals(*e2));
  EXPECT_FALSE(e1->Equals(*e3));
  EXPECT_FALSE(e1->Equals(*Expr::ColCmp("b", CmpOp::kLt, V(5))));
}

TEST(PredicateTest, SplitConjunctsFlattensAndChains) {
  ExprPtr e = Expr::AndAll({Expr::ColCmp("a", CmpOp::kEq, V(1)),
                            Expr::ColCmp("a", CmpOp::kEq, V(2)),
                            Expr::ColCmp("a", CmpOp::kEq, V(3))});
  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(e, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
  // An empty AndAll is TRUE.
  EXPECT_TRUE(Expr::AndAll({})->EvalBool(kSchema, kRow));
}

TEST(PredicateTest, NegateCmpRoundTrip) {
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe}) {
    EXPECT_EQ(NegateCmp(NegateCmp(op)), op);
  }
}

TEST(PredicateTest, BoundExprMatchesUnbound) {
  ExprPtr e = Expr::And(Expr::ColCmp("a", CmpOp::kGe, V(2)),
                        Expr::ColCmp("b", CmpOp::kLt, V(9.0)));
  BoundExpr bound(e, kSchema);
  EXPECT_EQ(bound.EvalBool(kRow), e->EvalBool(kSchema, kRow));
  EXPECT_EQ(bound.Eval(kRow), e->Eval(kSchema, kRow));
  EXPECT_THROW(BoundExpr(Expr::Column("zzz"), kSchema), SchemaError);
}

TEST(PredicateTest, ToStringRendering) {
  ExprPtr e = Expr::And(Expr::ColCmp("a", CmpOp::kLt, V(5)), Expr::Not(Expr::Column("a")));
  EXPECT_EQ(e->ToString(), "((a < 5) AND (NOT a))");
}

}  // namespace
}  // namespace quotient
