#include "algebra/relation.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace quotient {
namespace {

TEST(RelationTest, CanonicalizesOnConstruction) {
  Relation r(Schema::Parse("a, b"), {{V(2), V(1)}, {V(1), V(1)}, {V(2), V(1)}});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuples()[0], (Tuple{V(1), V(1)}));
  EXPECT_EQ(r.tuples()[1], (Tuple{V(2), V(1)}));
}

TEST(RelationTest, ParseRoundTrip) {
  Relation r = Relation::Parse("a, b", "1,2; 3,4");
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains({V(1), V(2)}));
  EXPECT_FALSE(r.Contains({V(2), V(1)}));
}

TEST(RelationTest, ParseTypes) {
  Relation r = Relation::Parse("x:real, s:string", "1.5,hello; 2.25,world");
  EXPECT_EQ(r.tuples()[0][0], V(1.5));
  EXPECT_EQ(r.tuples()[0][1], V("hello"));
}

TEST(RelationTest, ParseEmptyAndErrors) {
  EXPECT_TRUE(Relation::Parse("a", "").empty());
  EXPECT_THROW(Relation::Parse("a, b", "1"), SchemaError);        // arity
  EXPECT_THROW(Relation(Schema::Parse("a"), {{V("x")}}), SchemaError);  // type
}

TEST(RelationTest, InsertKeepsCanonicalOrderAndDedupes) {
  Relation r(Schema::Parse("a"));
  r.Insert({V(5)});
  r.Insert({V(1)});
  r.Insert({V(5)});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuples()[0][0], V(1));
}

TEST(RelationTest, EqualityModuloAttributeOrder) {
  Relation r1 = Relation::Parse("a, b", "1,2; 3,4");
  Relation r2 = Relation::Parse("b, a", "2,1; 4,3");
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1, Relation::Parse("a, b", "1,2"));
  EXPECT_NE(r1, Relation::Parse("a, c", "1,2; 3,4"));  // different names
}

TEST(RelationTest, ReorderAndSubset) {
  Relation r = Relation::Parse("a, b", "1,2; 3,4");
  Relation reordered = r.Reorder({"b", "a"});
  EXPECT_EQ(reordered.schema().Names(), (std::vector<std::string>{"b", "a"}));
  EXPECT_TRUE(Relation::Parse("a, b", "1,2").SubsetOf(r));
  EXPECT_TRUE(Relation::Parse("b, a", "2,1").SubsetOf(r));
  EXPECT_FALSE(r.SubsetOf(Relation::Parse("a, b", "1,2")));
  EXPECT_THROW(Relation::Parse("z", "1").SubsetOf(r), SchemaError);
}

TEST(RelationTest, NullsAllowedForOuterJoinPadding) {
  Relation r(Schema::Parse("a, b"), {{V(1), Value()}});
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.tuples()[0][1].is_null());
}

TEST(RelationTest, ToStringAlignsColumns) {
  Relation r = Relation::Parse("a, long_name", "1,2; 100,3");
  std::string text = r.ToString();
  EXPECT_NE(text.find("a   long_name"), std::string::npos);
  EXPECT_NE(text.find("100 3"), std::string::npos);
  EXPECT_NE(Relation(Schema::Parse("a")).ToString().find("(empty)"), std::string::npos);
}

}  // namespace
}  // namespace quotient
