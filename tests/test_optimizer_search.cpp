// Cost-guided rewrite search (opt/memo.hpp, docs/optimizer.md): the
// memoized best-first exploration must never pick a plan the cost model
// scores worse than the original OR the greedy fixpoint, must stay
// bit-identical to the reference evaluator whatever it picks (rewrites are
// equivalences, search only reorders them), and must surface its budget
// truncation instead of silently reading as convergence.

#include <gtest/gtest.h>

#include <vector>

#include "api/session.hpp"
#include "core/engine.hpp"
#include "exec/batch.hpp"
#include "exec/pipeline.hpp"
#include "exec/scheduler.hpp"
#include "opt/memo.hpp"
#include "opt/optimizer.hpp"
#include "paper_fixtures.hpp"
#include "plan/evaluate.hpp"

namespace quotient {
namespace {

class OptimizerSearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.Put("r1", paper::Fig4Dividend());
    catalog_.Put("r2", paper::Fig4Divisor());
    catalog_.Put("gd_divisor", paper::Fig2Divisor());
    catalog_.Put("fig1_r1", paper::Fig1Dividend());
    catalog_.Put("fig1_r2", paper::Fig1Divisor());
  }

  PlanPtr Scan(const std::string& name) { return LogicalOp::Scan(catalog_, name); }

  /// Law-shaped corpus: every plan offers at least one rewrite, several
  /// offer alternatives at more than one site (where greedy commits and
  /// search explores).
  std::vector<PlanPtr> Corpus() {
    std::vector<PlanPtr> corpus;
    // Law 3: selection over a division.
    corpus.push_back(LogicalOp::Select(LogicalOp::Divide(Scan("r1"), Scan("r2")),
                                       Expr::ColCmp("a", CmpOp::kGe, V(2))));
    // Laws 8/9: product dividend.
    corpus.push_back(LogicalOp::Divide(
        LogicalOp::Product(LogicalOp::Values(Relation::Parse("z", "1; 2"), "star"),
                           Scan("r1")),
        Scan("r2")));
    // Law 1 (search-only rule): union divisor.
    corpus.push_back(LogicalOp::Divide(
        Scan("r1"), LogicalOp::Union(LogicalOp::Values(paper::Fig4DivisorPrime()),
                                     LogicalOp::Values(paper::Fig4DivisorPrimePrime()))));
    // Two independent rewrite sites: orders converge on one fixpoint (memo
    // deduplicates the middle states).
    PlanPtr inner = LogicalOp::Select(LogicalOp::Divide(Scan("r1"), Scan("r2")),
                                      Expr::ColCmp("a", CmpOp::kGe, V(2)));
    corpus.push_back(LogicalOp::Union(inner, inner));
    // Law 5 shape: division by an intersection.
    corpus.push_back(LogicalOp::Divide(
        Scan("r1"), LogicalOp::Intersect(Scan("r2"), LogicalOp::Values(paper::Fig4DivisorPrime()))));
    // Stacked opportunities: selection over a product dividend.
    corpus.push_back(LogicalOp::Select(
        LogicalOp::Divide(LogicalOp::Product(LogicalOp::Values(
                                                 Relation::Parse("z", "1; 2"), "star"),
                                             Scan("r1")),
                          Scan("r2")),
        Expr::ColCmp("a", CmpOp::kGe, V(3))));
    return corpus;
  }

  Catalog catalog_;
};

TEST_F(OptimizerSearchTest, SearchedCostNeverWorseThanOriginalOrGreedy) {
  OptimizerOptions search_on;
  OptimizerOptions search_off;
  search_off.search = false;
  Optimizer searched(catalog_, search_on);
  Optimizer greedy(catalog_, search_off);
  for (const PlanPtr& plan : Corpus()) {
    OptimizationReport with = searched.Optimize(plan);
    OptimizationReport without = greedy.Optimize(plan);
    EXPECT_LE(with.chosen_cost, with.original_cost) << plan->ToString();
    EXPECT_LE(with.chosen_cost, with.greedy_cost) << plan->ToString();
    // The greedy path's own chosen plan is also in the searched space.
    EXPECT_LE(with.chosen_cost, without.chosen_cost) << plan->ToString();
  }
}

TEST_F(OptimizerSearchTest, SearchOnOffDifferentialAcrossThreadCounts) {
  OptimizerOptions search_on;
  OptimizerOptions search_off;
  search_off.search = false;
  Optimizer searched(catalog_, search_on);
  Optimizer greedy(catalog_, search_off);
  ScopedExecMode parallel(ExecMode::kParallel);
  ScopedSerialRowThreshold force_pipelines(0);
  ScopedMorselRows morsels(16);
  ScopedBatchRows batches(64);
  for (const PlanPtr& plan : Corpus()) {
    Relation reference = Evaluate(plan, catalog_);
    for (size_t threads : {size_t{1}, size_t{8}}) {
      ScopedExecThreads scoped(threads);
      EXPECT_EQ(searched.Run(plan), reference)
          << "search=on diverged at threads=" << threads << "\n" << plan->ToString();
      EXPECT_EQ(greedy.Run(plan), reference)
          << "search=off diverged at threads=" << threads << "\n" << plan->ToString();
    }
  }
}

TEST_F(OptimizerSearchTest, MemoDeduplicatesConvergingRewriteOrders) {
  // Two independent Law 3 sites: applying them in either order reaches the
  // same plan, which the memo must recognize instead of re-exploring.
  PlanPtr inner = LogicalOp::Select(LogicalOp::Divide(Scan("r1"), Scan("r2")),
                                    Expr::ColCmp("a", CmpOp::kGe, V(2)));
  PlanPtr plan = LogicalOp::Union(inner->WithChildren({inner->child(0)}), inner);
  Optimizer optimizer(catalog_);
  OptimizationReport report = optimizer.Optimize(plan);
  EXPECT_GT(report.search_candidates, 1u);
  EXPECT_GT(report.memo_hits, 0u) << "converging orders were not deduplicated";
}

TEST_F(OptimizerSearchTest, ExhaustedRewriteBudgetIsSurfacedNotSilent) {
  OptimizerOptions options;
  options.search = false;
  options.max_rewrite_steps = 0;
  Optimizer optimizer(catalog_, options);
  PlanPtr plan = LogicalOp::Select(LogicalOp::Divide(Scan("r1"), Scan("r2")),
                                   Expr::ColCmp("a", CmpOp::kGe, V(2)));
  OptimizationReport report = optimizer.Optimize(plan);
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_NE(report.Explain().find("budget exhausted"), std::string::npos);
}

TEST_F(OptimizerSearchTest, ExhaustedCandidateBudgetIsSurfaced) {
  OptimizerOptions options;
  options.max_search_candidates = 2;  // original + one alternative
  Optimizer optimizer(catalog_, options);
  PlanPtr plan = LogicalOp::Select(LogicalOp::Divide(Scan("r1"), Scan("r2")),
                                   Expr::ColCmp("a", CmpOp::kGe, V(2)));
  OptimizationReport report = optimizer.Optimize(plan);
  EXPECT_TRUE(report.budget_exhausted);
  EXPECT_LE(report.search_candidates, 2u);
  // Budget or not, the chosen plan still computes the right answer.
  EXPECT_EQ(Evaluate(report.chosen, catalog_), Evaluate(plan, catalog_));
}

TEST_F(OptimizerSearchTest, ExplainReportsPerStepCostDeltas) {
  Optimizer optimizer(catalog_);
  PlanPtr plan = LogicalOp::Select(LogicalOp::Divide(Scan("r1"), Scan("r2")),
                                   Expr::ColCmp("a", CmpOp::kGe, V(2)));
  OptimizationReport report = optimizer.Optimize(plan);
  ASSERT_FALSE(report.steps.empty());
  std::string text = report.Explain();
  EXPECT_NE(text.find("original cost:"), std::string::npos);
  EXPECT_NE(text.find("greedy cost:"), std::string::npos);
  EXPECT_NE(text.find("chosen cost:"), std::string::npos);
  EXPECT_NE(text.find("candidates"), std::string::npos);
  EXPECT_NE(text.find(" -> "), std::string::npos) << "no per-step cost delta:\n" << text;
  for (const RewriteStep& step : report.steps) {
    if (step.rule == kRewriteBudgetExhausted) continue;
    EXPECT_NE(text.find(step.rule), std::string::npos);
  }
}

TEST_F(OptimizerSearchTest, SearchFindsRewriteGreedyCannotReach) {
  // Law 1 lives only in the search rule set (its semi-join form lost the
  // default-set bake-off), so a union-divisor plan is invisible to the
  // greedy fixpoint. The search may only adopt it when the model scores it
  // cheaper — and whatever it picks must stay correct.
  PlanPtr plan = LogicalOp::Divide(
      Scan("r1"), LogicalOp::Union(LogicalOp::Values(paper::Fig4DivisorPrime()),
                                   LogicalOp::Values(paper::Fig4DivisorPrimePrime())));
  OptimizerOptions search_off;
  search_off.search = false;
  OptimizationReport greedy = Optimizer(catalog_, search_off).Optimize(plan);
  EXPECT_TRUE(greedy.steps.empty()) << "greedy unexpectedly rewrote the union divisor";
  OptimizationReport searched = Optimizer(catalog_).Optimize(plan);
  EXPECT_GT(searched.search_candidates, 1u) << "search never explored the Law 1 rewrite";
  EXPECT_LE(searched.chosen_cost, greedy.chosen_cost);
  EXPECT_EQ(Evaluate(searched.chosen, catalog_), Evaluate(plan, catalog_));
}

// ------------------------------------------------- database observability

TEST(OptimizerStatsTest, LawFiresAndSearchTalliesAggregateAcrossCompiles) {
  Session session;
  ASSERT_TRUE(session.CreateTable("supplies", paper::SuppliesTable()).ok());
  ASSERT_TRUE(session.CreateTable("parts", paper::PartsTable()).ok());
  // σ over a great divide: Laws 14/15 push the selection through, so the
  // chosen plan's trace is non-empty.
  const char* divide_sql =
      "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# "
      "WHERE color = 'red'";
  ASSERT_TRUE(session.Execute(divide_sql).ok());
  ASSERT_TRUE(session.Execute(divide_sql).ok());  // cache hit: no re-count
  DatabaseStats stats = session.database()->Stats();
  uint64_t total_fires = 0;
  for (const auto& [rule, fires] : stats.optimizer.law_fires) {
    EXPECT_FALSE(rule.empty());
    EXPECT_NE(rule.front(), '(') << "trace markers must not be counted as laws";
    total_fires += fires;
  }
  EXPECT_GT(total_fires, 0u);
  EXPECT_GE(stats.optimizer.searched_compiles, 1u);
  // One compile, one cache hit: the tallies measure optimizer work, so the
  // second execution must not have doubled them.
  uint64_t after_first = total_fires;
  ASSERT_TRUE(session.Execute(divide_sql).ok());
  DatabaseStats again = session.database()->Stats();
  uint64_t total_again = 0;
  for (const auto& [rule, fires] : again.optimizer.law_fires) total_again += fires;
  EXPECT_EQ(total_again, after_first);
}

TEST(OptimizerStatsTest, FallbackExecutionsTallyByReason) {
  Session session;
  ASSERT_TRUE(session.CreateTable("supplies", paper::SuppliesTable()).ok());
  ASSERT_TRUE(session.CreateTable("parts", paper::PartsTable()).ok());
  // Correlated NOT EXISTS has no plan lowering; the oracle interpreter runs.
  const char* oracle_sql =
      "SELECT DISTINCT s#, color "
      "FROM supplies AS s1, parts AS p1 "
      "WHERE NOT EXISTS ("
      "  SELECT * FROM parts AS p2 "
      "  WHERE p2.color = p1.color AND NOT EXISTS ("
      "    SELECT * FROM supplies AS s2 "
      "    WHERE s2.p# = p2.p# AND s2.s# = s1.s#))";
  ASSERT_TRUE(session.Execute(oracle_sql).ok());
  ASSERT_TRUE(session.Execute(oracle_sql).ok());
  DatabaseStats stats = session.database()->Stats();
  uint64_t fallback_runs = 0;
  for (const auto& [reason, runs] : stats.optimizer.fallback_reasons) {
    EXPECT_FALSE(reason.empty());
    fallback_runs += runs;
  }
  // Unlike compile tallies these count EXECUTIONS: both runs tally even
  // though the second was a plan-cache hit.
  EXPECT_EQ(fallback_runs, 2u);
}

TEST(OptimizerStatsTest, ProfileReportsSearchWorkOnlyOnCompileMiss) {
  Session session;
  ASSERT_TRUE(session.CreateTable("supplies", paper::SuppliesTable()).ok());
  ASSERT_TRUE(session.CreateTable("parts", paper::PartsTable()).ok());
  const char* divide_sql =
      "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#";
  Result<QueryResult> first = session.Execute(divide_sql);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first.value().profile.search_candidates, 0u);
  EXPECT_EQ(first.value().compile.search_candidates,
            first.value().profile.search_candidates);
  Result<QueryResult> second = session.Execute(divide_sql);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().profile.plan_cache_hit);
  EXPECT_EQ(second.value().profile.search_candidates, 0u)
      << "a cache hit performed no search, its profile must not claim one";
}

}  // namespace
}  // namespace quotient
