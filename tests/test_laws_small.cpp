// Laws 1-12 (small divide) on the paper's examples and targeted edge cases.

#include <gtest/gtest.h>

#include "algebra/generator.hpp"
#include "core/laws.hpp"
#include "paper_fixtures.hpp"

namespace quotient {
namespace {

using namespace laws;

// ---------------------------------------------------------------- Law 1 ----

TEST(Law1, PaperExample) {
  EXPECT_EQ(Law1Lhs(paper::Fig4Dividend(), paper::Fig4DivisorPrime(),
                    paper::Fig4DivisorPrimePrime()),
            paper::Fig4Quotient());
  EXPECT_EQ(Law1Rhs(paper::Fig4Dividend(), paper::Fig4DivisorPrime(),
                    paper::Fig4DivisorPrimePrime()),
            paper::Fig4Quotient());
}

TEST(Law1, EmptyPartitions) {
  Relation r1 = paper::Fig1Dividend();
  Relation empty(Schema::Parse("b"));
  // ∅ ∪ r2 on either side.
  EXPECT_EQ(Law1Lhs(r1, empty, paper::Fig1Divisor()), Law1Rhs(r1, empty, paper::Fig1Divisor()));
  EXPECT_EQ(Law1Lhs(r1, paper::Fig1Divisor(), empty), Law1Rhs(r1, paper::Fig1Divisor(), empty));
  EXPECT_EQ(Law1Lhs(r1, empty, empty), Law1Rhs(r1, empty, empty));
}

TEST(Law1, IdenticalPartitions) {
  Relation r1 = paper::Fig1Dividend();
  Relation r2 = paper::Fig1Divisor();
  EXPECT_EQ(Law1Lhs(r1, r2, r2), Law1Rhs(r1, r2, r2));
}

// ---------------------------------------------------------------- Law 2 ----

TEST(Law2, HoldsUnderC2) {
  // Split the Fig. 4 dividend by quotient-candidate ranges: c2 holds.
  std::vector<Relation> parts = SplitByAttributeRange(paper::Fig4Dividend(), "a", 2);
  ASSERT_TRUE(ConditionC2(parts[0], parts[1], paper::Fig4Divisor()));
  EXPECT_EQ(Law2Lhs(parts[0], parts[1], paper::Fig4Divisor()),
            Law2Rhs(parts[0], parts[1], paper::Fig4Divisor()));
}

TEST(Law2, C2ImpliesC1) {
  DataGen gen(42);
  for (int round = 0; round < 50; ++round) {
    Relation r1 = gen.Dividend(6, 6, 0.5);
    Relation r2 = gen.Divisor(3, 6);
    std::vector<Relation> parts = SplitByAttributeRange(r1, "a", 2);
    if (ConditionC2(parts[0], parts[1], r2)) {
      EXPECT_TRUE(ConditionC1(parts[0], parts[1], r2)) << "c2 must imply c1 (Section 5.1.1)";
    }
  }
}

TEST(Law2, Figure5ViolatesC1AndLawFails) {
  EXPECT_FALSE(ConditionC1(paper::Fig5R1Prime(), paper::Fig5R1PrimePrime(),
                           paper::Fig5Divisor()));
  EXPECT_NE(Law2Lhs(paper::Fig5R1Prime(), paper::Fig5R1PrimePrime(), paper::Fig5Divisor()),
            Law2Rhs(paper::Fig5R1Prime(), paper::Fig5R1PrimePrime(), paper::Fig5Divisor()));
}

TEST(Law2, HoldsUnderC1EvenWhenC2Fails) {
  // Both partitions contain candidate a=1, but the first alone covers r2:
  // c1 holds while c2 does not.
  Relation r1p = Relation::Parse("a, b", "1,1; 1,2");
  Relation r1pp = Relation::Parse("a, b", "1,1; 2,1; 2,2");
  Relation r2 = Relation::Parse("b", "1; 2");
  ASSERT_FALSE(ConditionC2(r1p, r1pp, r2));
  ASSERT_TRUE(ConditionC1(r1p, r1pp, r2));
  EXPECT_EQ(Law2Lhs(r1p, r1pp, r2), Law2Rhs(r1p, r1pp, r2));
}

// ---------------------------------------------------------------- Law 3 ----

TEST(Law3, SelectionPushdown) {
  ExprPtr p = Expr::ColCmp("a", CmpOp::kGe, V(3));
  EXPECT_EQ(Law3Lhs(paper::Fig1Dividend(), paper::Fig1Divisor(), p),
            Law3Rhs(paper::Fig1Dividend(), paper::Fig1Divisor(), p));
  EXPECT_EQ(Law3Lhs(paper::Fig1Dividend(), paper::Fig1Divisor(), p),
            Relation::Parse("a", "3"));
}

TEST(Law3, FalsePredicate) {
  ExprPtr p = Expr::Literal(V(0));
  EXPECT_EQ(Law3Lhs(paper::Fig1Dividend(), paper::Fig1Divisor(), p),
            Law3Rhs(paper::Fig1Dividend(), paper::Fig1Divisor(), p));
  EXPECT_TRUE(Law3Lhs(paper::Fig1Dividend(), paper::Fig1Divisor(), p).empty());
}

// ---------------------------------------------------------------- Law 4 ----

TEST(Law4, ReplicateSelection) {
  ExprPtr p = Expr::ColCmp("b", CmpOp::kLe, V(3));
  EXPECT_EQ(Law4Lhs(paper::Fig4Dividend(), paper::Fig4Divisor(), p),
            Law4Rhs(paper::Fig4Dividend(), paper::Fig4Divisor(), p));
}

TEST(Law4, ErratumEmptyFilteredDivisor) {
  // Reproduction erratum (see core/laws.hpp): with σp(r2) = ∅ the two sides
  // differ — LHS divides by the empty set (vacuously πA(r1)) while the RHS
  // also filters the dividend. The paper's proof assumes σp(r2) ≠ ∅.
  ExprPtr p = Expr::ColCmp("b", CmpOp::kGt, V(100));
  ASSERT_FALSE(Law4Precondition(paper::Fig1Divisor(), p));
  EXPECT_EQ(Law4Lhs(paper::Fig1Dividend(), paper::Fig1Divisor(), p),
            Relation::Parse("a", "1; 2; 3"));  // = πA(r1)
  EXPECT_TRUE(Law4Rhs(paper::Fig1Dividend(), paper::Fig1Divisor(), p).empty());
}

TEST(Law4, HoldsWheneverFilteredDivisorNonEmpty) {
  for (int64_t cut = 1; cut <= 4; ++cut) {
    ExprPtr p = Expr::ColCmp("b", CmpOp::kLe, V(cut));
    if (!Law4Precondition(paper::Fig4Divisor(), p)) continue;
    EXPECT_EQ(Law4Lhs(paper::Fig4Dividend(), paper::Fig4Divisor(), p),
              Law4Rhs(paper::Fig4Dividend(), paper::Fig4Divisor(), p))
        << "cut " << cut;
  }
}

// ------------------------------------------------------------ Example 1 ----

TEST(Example1, PaperFigure6) {
  ExprPtr p = Expr::ColCmp("b", CmpOp::kLt, V(3));
  EXPECT_EQ(Example1Lhs(paper::Fig4Dividend(), paper::Fig4Divisor(), p),
            Example1Rhs(paper::Fig4Dividend(), paper::Fig4Divisor(), p));
}

TEST(Example1, PredicateKeepsWholeDivisor) {
  // σ¬p(r2) = ∅ — the blocker term vanishes and the law degenerates to Law 4.
  ExprPtr p = Expr::ColCmp("b", CmpOp::kLe, V(100));
  EXPECT_EQ(Example1Lhs(paper::Fig4Dividend(), paper::Fig4Divisor(), p),
            Example1Rhs(paper::Fig4Dividend(), paper::Fig4Divisor(), p));
  EXPECT_FALSE(Example1Lhs(paper::Fig4Dividend(), paper::Fig4Divisor(), p).empty());
}

// ---------------------------------------------------------------- Law 5 ----

TEST(Law5, Intersection) {
  Relation r1p = paper::Fig4Dividend();
  Relation r1pp = Relation::Parse("a, b", "2,1; 2,2; 2,3; 2,4; 3,1; 9,9");
  EXPECT_EQ(Law5Lhs(r1p, r1pp, paper::Fig4Divisor()),
            Law5Rhs(r1p, r1pp, paper::Fig4Divisor()));
}

TEST(Law5, DisjointDividends) {
  Relation r1p = Relation::Parse("a, b", "1,1; 1,3");
  Relation r1pp = Relation::Parse("a, b", "2,1; 2,3");
  EXPECT_EQ(Law5Lhs(r1p, r1pp, paper::Fig1Divisor()),
            Law5Rhs(r1p, r1pp, paper::Fig1Divisor()));
  EXPECT_TRUE(Law5Lhs(r1p, r1pp, paper::Fig1Divisor()).empty());
}

TEST(Law5, ErratumEmptyDivisor) {
  // Reproduction erratum (see core/laws.hpp): with r2 = ∅ the sides differ
  // when the dividends share a candidate but no tuple.
  Relation r1p = Relation::Parse("a, b", "1,1");
  Relation r1pp = Relation::Parse("a, b", "1,2");
  Relation empty(Schema::Parse("b"));
  EXPECT_TRUE(Law5Lhs(r1p, r1pp, empty).empty());                      // πA(∅)
  EXPECT_EQ(Law5Rhs(r1p, r1pp, empty), Relation::Parse("a", "1"));     // πA ∩ πA
}

// ---------------------------------------------------------------- Law 6 ----

TEST(Law6, NestedRangeSelections) {
  // r1' = σa<=3(r1) ⊇ σa<=2(r1) = r1'' — the paper's a>10 / a>20 shape.
  ExprPtr p_prime = Expr::ColCmp("a", CmpOp::kLe, V(3));
  ExprPtr p_pp = Expr::ColCmp("a", CmpOp::kLe, V(2));
  ASSERT_TRUE(Law6Precondition(paper::Fig4Dividend(), p_prime, p_pp));
  EXPECT_EQ(Law6Lhs(paper::Fig4Dividend(), p_prime, p_pp, paper::Fig4Divisor()),
            Law6Rhs(paper::Fig4Dividend(), p_prime, p_pp, paper::Fig4Divisor()));
}

TEST(Law6, EqualPredicates) {
  ExprPtr p = Expr::ColCmp("a", CmpOp::kLe, V(3));
  EXPECT_EQ(Law6Lhs(paper::Fig4Dividend(), p, p, paper::Fig4Divisor()),
            Law6Rhs(paper::Fig4Dividend(), p, p, paper::Fig4Divisor()));
  EXPECT_TRUE(Law6Lhs(paper::Fig4Dividend(), p, p, paper::Fig4Divisor()).empty());
}

// ---------------------------------------------------------------- Law 7 ----

TEST(Law7, DisjointCandidateSets) {
  Relation r1p = Relation::Parse("a, b", "1,1; 1,3; 2,1");
  Relation r1pp = Relation::Parse("a, b", "3,1; 3,3; 4,1");
  Relation r2 = paper::Fig1Divisor();
  EXPECT_EQ(Law7Lhs(r1p, r1pp, r2), Law7Rhs(r1p, r1pp, r2));
}

TEST(Law7, FailsWithoutDisjointness) {
  // Same candidate on both sides: the subtrahend removes a = 1, so the
  // sides differ — showing the precondition is necessary.
  Relation r1p = Relation::Parse("a, b", "1,1; 1,3");
  Relation r1pp = Relation::Parse("a, b", "1,1; 1,3");
  EXPECT_NE(Law7Lhs(r1p, r1pp, paper::Fig1Divisor()),
            Law7Rhs(r1p, r1pp, paper::Fig1Divisor()));
}

// ---------------------------------------------------------------- Law 8 ----

TEST(Law8, PaperFigure7) {
  EXPECT_EQ(Law8Lhs(paper::Fig7R1Star(), paper::Fig7R1StarStar(), paper::Fig7Divisor()),
            paper::Fig7Quotient());
  EXPECT_EQ(Law8Rhs(paper::Fig7R1Star(), paper::Fig7R1StarStar(), paper::Fig7Divisor()),
            paper::Fig7Quotient());
}

TEST(Law8, EmptyStarSide) {
  Relation empty(Schema::Parse("a1"));
  EXPECT_EQ(Law8Lhs(empty, paper::Fig7R1StarStar(), paper::Fig7Divisor()),
            Law8Rhs(empty, paper::Fig7R1StarStar(), paper::Fig7Divisor()));
}

// ---------------------------------------------------------------- Law 9 ----

TEST(Law9, PaperFigure8) {
  ASSERT_TRUE(Law9Precondition(paper::Fig8R1StarStar(), paper::Fig8Divisor()));
  EXPECT_EQ(Law9Lhs(paper::Fig8R1Star(), paper::Fig8R1StarStar(), paper::Fig8Divisor()),
            Law9Rhs(paper::Fig8R1Star(), paper::Fig8R1StarStar(), paper::Fig8Divisor()));
}

TEST(Law9, PreconditionViolatedMayDiverge) {
  // r2 contains a b2 value missing from r1**: precondition false.
  Relation star_star = Relation::Parse("b2", "1");
  Relation r2 = Relation::Parse("b1, b2", "1,1; 1,2");
  EXPECT_FALSE(Law9Precondition(star_star, r2));
  // LHS: no dividend tuple has b2=2, so the quotient is empty; RHS divides
  // by πb1(r2)={1} and keeps candidates — the law genuinely needs its guard.
  Relation star = Relation::Parse("a, b1", "7,1");
  EXPECT_NE(Law9Lhs(star, star_star, r2), Law9Rhs(star, star_star, r2));
}

// ------------------------------------------------------------ Example 2 ----

TEST(Example2, CancelCommonFactor) {
  Relation r1 = paper::Fig8R1Star();   // (a, b1)
  Relation r2 = paper::Fig8DivisorB1();  // (b1)
  Relation s = Relation::Parse("b2", "10; 20");
  EXPECT_EQ(Example2Lhs(r1, r2, s), Example2Rhs(r1, r2, s));
}

// --------------------------------------------------------------- Law 10 ----

TEST(Law10, SemiJoinCommutes) {
  Relation r3 = Relation::Parse("a", "2; 9");
  EXPECT_EQ(Law10Lhs(paper::Fig1Dividend(), paper::Fig1Divisor(), r3),
            Law10Rhs(paper::Fig1Dividend(), paper::Fig1Divisor(), r3));
  EXPECT_EQ(Law10Lhs(paper::Fig1Dividend(), paper::Fig1Divisor(), r3),
            Relation::Parse("a", "2"));
}

TEST(Law10, EmptyRestrictor) {
  Relation r3(Schema::Parse("a"));
  EXPECT_EQ(Law10Lhs(paper::Fig1Dividend(), paper::Fig1Divisor(), r3),
            Law10Rhs(paper::Fig1Dividend(), paper::Fig1Divisor(), r3));
}

// --------------------------------------------------------------- Law 11 ----

TEST(Law11, PaperFigure10AllCases) {
  Relation r1 = paper::Fig10R1();
  ASSERT_TRUE(laws::Law11Precondition(r1, paper::Fig10Divisor()));
  // |r2| = 1 (the figure's case).
  EXPECT_EQ(Law11Lhs(r1, paper::Fig10Divisor()), Law11Rhs(r1, paper::Fig10Divisor()));
  // r2 = ∅.
  Relation empty(Schema::Parse("b"));
  EXPECT_EQ(Law11Lhs(r1, empty), Law11Rhs(r1, empty));
  // |r2| > 1: quotient is empty because every A-group has one tuple.
  Relation big = Relation::Parse("b", "4; 6");
  EXPECT_EQ(Law11Lhs(r1, big), Law11Rhs(r1, big));
  EXPECT_TRUE(Law11Lhs(r1, big).empty());
}

// --------------------------------------------------------------- Law 12 ----

TEST(Law12, PaperFigure11) {
  Relation r1 = paper::Fig11R1();
  ASSERT_TRUE(Law12Precondition(r1, paper::Fig11Divisor()));
  EXPECT_EQ(Law12Lhs(r1, paper::Fig11Divisor()), Law12Rhs(r1, paper::Fig11Divisor()));
}

TEST(Law12, NoQuotientWhenAValuesDiffer) {
  // b-groups have size one but map to different a values: quotient empty.
  Relation r1 = Relation::Parse("a, b", "5,1; 6,3");
  Relation r2 = Relation::Parse("b", "1; 3");
  ASSERT_TRUE(Law12Precondition(r1, r2));
  EXPECT_EQ(Law12Lhs(r1, r2), Law12Rhs(r1, r2));
  EXPECT_TRUE(Law12Lhs(r1, r2).empty());
}

TEST(Law12, SingleDivisorTuple) {
  Relation r1 = Relation::Parse("a, b", "5,1; 6,3");
  Relation r2 = Relation::Parse("b", "3");
  ASSERT_TRUE(Law12Precondition(r1, r2));
  EXPECT_EQ(Law12Lhs(r1, r2), Law12Rhs(r1, r2));
  EXPECT_EQ(Law12Lhs(r1, r2), Relation::Parse("a", "6"));
}

// ------------------------------------------------------------ Example 3 ----

TEST(Example3, PaperFigure9) {
  EXPECT_EQ(Example3Lhs(paper::Fig8R1Star(), paper::Fig9R1StarStar(), paper::Fig9Divisor()),
            Example3Rhs(paper::Fig8R1Star(), paper::Fig9R1StarStar(), paper::Fig9Divisor()));
}

TEST(Example3, NonEmptyGeResidue) {
  // A divisor tuple with b1 >= b2 forces an empty result on both sides.
  Relation r2 = Relation::Parse("b1, b2", "1,4; 4,1");
  Relation star_star = Relation::Parse("b2", "1; 2; 4");
  EXPECT_EQ(Example3Lhs(paper::Fig8R1Star(), star_star, r2),
            Example3Rhs(paper::Fig8R1Star(), star_star, r2));
  EXPECT_TRUE(Example3Lhs(paper::Fig8R1Star(), star_star, r2).empty());
}

}  // namespace
}  // namespace quotient
