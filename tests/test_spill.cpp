// Spill-to-disk and admission-control tests (docs/robustness.md): the
// SpilledU32Store unit contract, a differential corpus with spilling forced
// in every blocking build (results must be bit-identical to the in-memory
// path at threads 1 and 8), fault injection at the four spill.* sites,
// cancellation mid-spill, QUOTIENT_FAULT spec validation, and the
// database-wide admission controller's queue/timeout/rejection behavior.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "algebra/generator.hpp"
#include "api/database.hpp"
#include "api/session.hpp"
#include "exec/batch.hpp"
#include "exec/exec_great_divide.hpp"
#include "exec/pipeline.hpp"
#include "exec/query_context.hpp"
#include "exec/scheduler.hpp"
#include "exec/spill.hpp"
#include "util/status.hpp"

namespace quotient {
namespace {

constexpr const char* kDivideSql =
    "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b";

/// Spill options that force a flush on (almost) every append: any
/// outstanding charge beyond one byte crosses the watermark, so every
/// blocking build that stores id columns goes through the spill file.
SessionOptions ForcedSpillOptions() {
  SessionOptions options;
  options.spill_watermark_bytes = 1;
  return options;
}

Session MakeDivisionSession(SessionOptions options, size_t groups,
                            size_t divisor_size) {
  DataGen gen(7);
  Relation divisor = gen.Divisor(divisor_size, /*domain=*/64);
  Relation dividend = gen.DividendWithHits(groups, groups / 8 + 1, divisor,
                                           /*domain=*/64, /*density=*/0.5);
  Session session(options);
  EXPECT_TRUE(session.CreateTable("r1", std::move(dividend)).ok());
  EXPECT_TRUE(session.CreateTable("r2", std::move(divisor)).ok());
  return session;
}

struct ScopedDisarm {
  explicit ScopedDisarm(FaultInjector* injector) : injector_(injector) {}
  ~ScopedDisarm() { injector_->Disarm(); }
  FaultInjector* injector_;
};

// ---------------------------------------------------------------------------
// SpillTest: the store contract and end-to-end spilled execution.
// ---------------------------------------------------------------------------

TEST(SpillTest, StoreRoundTripsRowsAcrossPartitions) {
  QueryContext ctx;
  ctx.EnableSpill(/*watermark_bytes=*/256, /*dir=*/"");
  ScopedQueryContext scope(&ctx);

  SpilledU32Store store(/*stride=*/2);
  for (uint32_t i = 0; i < 10000; ++i) {
    uint32_t row[2] = {i, i * 3 + 1};
    store.Append(row, 1);
  }
  ASSERT_EQ(store.rows(), 10000u);
  // The watermark is far below 10000 rows * 16 bytes: the store must have
  // flushed runs to the spill file.
  EXPECT_GT(ctx.spill_partitions(), 0u);
  EXPECT_GT(ctx.spill_bytes_written(), 0u);

  // Every row reads back exactly, in order and via random access.
  for (uint32_t i = 0; i < 10000; ++i) {
    const uint32_t* row = store.Row(i);
    ASSERT_EQ(row[0], i);
    ASSERT_EQ(row[1], i * 3 + 1);
  }
  const uint32_t* last = store.Row(9999);
  EXPECT_EQ(last[0], 9999u);
  const uint32_t* first = store.Row(0);  // backward seek re-reads a cold page
  EXPECT_EQ(first[0], 0u);

  // Spilled bytes were released: the outstanding account holds only the
  // in-memory suffix (possibly zero), never the full 160000 bytes.
  EXPECT_LT(ctx.outstanding_bytes(), 10000u * 2 * 8);
}

TEST(SpillTest, StoreWithoutContextStaysInMemory) {
  SpilledU32Store store(/*stride=*/1);
  for (uint32_t i = 0; i < 1000; ++i) store.PushBack(i * 7);
  for (uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(store.At(i), i * 7);
}

TEST(SpillTest, ForcedSpillDivisionMatchesInMemoryResult) {
  ScopedSerialRowThreshold no_serial(0);
  ScopedMorselRows morsels(32);
  ScopedBatchRows batches(32);

  DataGen gen(7);
  Relation divisor = gen.Divisor(48, /*domain=*/64);
  Relation dividend =
      gen.DividendWithHits(2000, 251, divisor, /*domain=*/64, /*density=*/0.5);

  Relation expected;
  {
    ScopedExecThreads threads(1);
    Session plain;
    ASSERT_TRUE(plain.CreateTable("r1", dividend).ok());
    ASSERT_TRUE(plain.CreateTable("r2", divisor).ok());
    Result<QueryResult> baseline = plain.Execute(kDivideSql);
    ASSERT_TRUE(baseline.ok()) << baseline.error();
    expected = baseline.value().rows;
    // (Unless the CI spill-forced job armed QUOTIENT_SPILL_WATERMARK, in
    // which case even the "plain" baseline spills — still bit-identical.)
    if (std::getenv("QUOTIENT_SPILL_WATERMARK") == nullptr) {
      EXPECT_EQ(baseline.value().profile.spill_partitions, 0u);
    }
  }

  for (size_t threads : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ScopedExecThreads scoped_threads(threads);
    Session spilled(ForcedSpillOptions());
    ASSERT_TRUE(spilled.CreateTable("r1", dividend).ok());
    ASSERT_TRUE(spilled.CreateTable("r2", divisor).ok());
    Result<QueryResult> result = spilled.Execute(kDivideSql);
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_EQ(result.value().rows, expected);
    EXPECT_GT(result.value().profile.spill_partitions, 0u)
        << "watermark=1 never spilled: the forced-spill path was not taken";
    EXPECT_GT(result.value().profile.spill_bytes_written, 0u);
  }
}

TEST(SpillTest, ExplainAnalyzeReportsSpillCounters) {
  ScopedSerialRowThreshold no_serial(0);
  Session session =
      MakeDivisionSession(ForcedSpillOptions(), /*groups=*/512, /*divisor=*/16);
  Result<QueryResult> analyzed =
      session.Execute(std::string("EXPLAIN ANALYZE ") + kDivideSql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.error();
  bool found = false;
  for (const Tuple& row : analyzed.value().rows.tuples()) {
    for (const Value& value : row) {
      if (value.type() == ValueType::kString &&
          value.as_str().find("spill=") != std::string::npos) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << "EXPLAIN ANALYZE output lacks spill counters";
}

TEST(SpillTest, CancelMidSpillDeliversCancelledAndPoolSurvives) {
  ScopedExecThreads threads(8);
  ScopedSerialRowThreshold no_serial(0);
  ScopedMorselRows morsels(64);
  ScopedBatchRows batches(64);
  Session session = MakeDivisionSession(ForcedSpillOptions(), /*groups=*/4000,
                                        /*divisor=*/48);

  // Spin Cancel() from another thread: with watermark=1 every append path
  // is a spill path, so the trip lands inside the spill loops' polls.
  std::atomic<bool> done{false};
  std::thread canceller([&] {
    while (!done.load(std::memory_order_relaxed)) session.Cancel();
  });
  Result<QueryResult> cancelled = session.Execute(kDivideSql);
  done.store(true);
  canceller.join();

  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  // The pool and the session survive: the same statement, uncancelled and
  // still spill-forced, runs to completion.
  Result<QueryResult> again = session.Execute(kDivideSql);
  ASSERT_TRUE(again.ok()) << again.error();
  EXPECT_GT(again.value().rows.size(), 0u);
}

// ---------------------------------------------------------------------------
// SpillDifferentialTest: the session corpus with spilling forced everywhere.
// ---------------------------------------------------------------------------

/// Runs `query` with spilling forced at threads {1, 8} and asserts results
/// (and error status) identical to an unspilled single-threaded baseline.
void ExpectSpilledMatchesInMemory(const Catalog& catalog, const std::string& query) {
  auto make_session = [&](SessionOptions options) {
    Session session(options);
    for (const std::string& name : catalog.Names()) {
      EXPECT_TRUE(session.CreateTable(name, catalog.Get(name)).ok());
    }
    return session;
  };
  Result<QueryResult> baseline = [&] {
    ScopedExecThreads threads(1);
    ScopedSerialRowThreshold no_serial(0);
    Session plain = make_session({});
    return plain.Execute(query);
  }();
  for (size_t threads : {size_t{1}, size_t{8}}) {
    ScopedExecThreads scoped_threads(threads);
    ScopedSerialRowThreshold no_serial(0);
    Session spilled = make_session(ForcedSpillOptions());
    Result<QueryResult> result = spilled.Execute(query);
    ASSERT_EQ(result.ok(), baseline.ok())
        << query << "\nbaseline: " << (baseline.ok() ? "ok" : baseline.error())
        << "\nspilled: " << (result.ok() ? "ok" : result.error());
    if (baseline.ok() && result.ok()) {
      EXPECT_EQ(result.value().rows, baseline.value().rows)
          << query << "\nthreads " << threads << " with spill forced";
    }
  }
}

TEST(SpillDifferentialTest, CorpusBitIdenticalWithSpillForced) {
  DataGen gen(17);
  Relation divisor = gen.Divisor(32, /*domain=*/64);
  Relation dividend =
      gen.DividendWithHits(800, 101, divisor, /*domain=*/64, /*density=*/0.5);
  Catalog catalog;
  catalog.Put("r1", std::move(dividend));
  catalog.Put("r2", std::move(divisor));
  const char* queries[] = {
      // Small divide: every DivisionIterator build (codec sinks + row_b).
      "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b",
      // Selection pushed across the division (law rewrites still fire).
      "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b WHERE a > 100",
      // Hash join build (JoinBuildSink).
      "SELECT x.a, y.b FROM r1 AS x, r2 AS y WHERE x.b = y.b",
      // Semi/anti joins (CodecAppendSink builds).
      "SELECT DISTINCT a FROM r1 WHERE b IN (SELECT b FROM r2)",
      "SELECT DISTINCT a FROM r1 WHERE b NOT IN (SELECT b FROM r2)",
      // Grouped aggregation (AggregateSink growth-delta charges).
      "SELECT a, COUNT(b) AS n FROM r1 GROUP BY a HAVING COUNT(b) >= 2",
      "SELECT COUNT(*) AS n, MIN(a) AS lo, MAX(a) AS hi FROM r1",
      // Distinct projection.
      "SELECT DISTINCT b FROM r1",
      // Errors must agree too.
      "SELECT nosuchcol FROM r1",
  };
  for (const char* query : queries) {
    SCOPED_TRACE(query);
    ExpectSpilledMatchesInMemory(catalog, query);
  }
}

TEST(SpillDifferentialTest, GreatDivideBitIdenticalWithSpillForced) {
  // ÷* runs through its own encoded build (Encoded::row_b and the
  // ProbeAppendSink); cover both physical algorithms at the exec layer,
  // where a governed context with a tiny watermark forces every flush.
  DataGen gen(23);
  Relation dividend = gen.Dividend(200, /*domain=*/24, /*density=*/0.4);
  Relation divisor = gen.GreatDivisor(6, /*domain=*/24, /*density=*/0.3);
  ScopedExecMode parallel_mode(ExecMode::kParallel);
  ScopedSerialRowThreshold no_serial(0);
  for (GreatDivideAlgorithm algorithm :
       {GreatDivideAlgorithm::kHash, GreatDivideAlgorithm::kGroup}) {
    Relation reference = ExecGreatDivide(dividend, divisor, algorithm);
    for (size_t threads : {size_t{1}, size_t{8}}) {
      SCOPED_TRACE(std::string(GreatDivideAlgorithmName(algorithm)) +
                   " threads=" + std::to_string(threads));
      ScopedExecThreads scoped_threads(threads);
      QueryContext ctx;
      ctx.EnableSpill(/*watermark_bytes=*/1, /*dir=*/"");
      ScopedQueryContext scope(&ctx);
      EXPECT_EQ(ExecGreatDivide(dividend, divisor, algorithm), reference);
      EXPECT_GT(ctx.spill_partitions(), 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// SpillFaultTest: the four spill.* sites and QUOTIENT_FAULT validation.
// ---------------------------------------------------------------------------

TEST(SpillFaultTest, SpillSitesUnwindIdenticallyAcrossThreadCounts) {
  ScopedSerialRowThreshold no_serial(0);
  ScopedMorselRows morsels(32);
  ScopedBatchRows batches(32);

  DataGen gen(11);
  Relation divisor = gen.Divisor(48, /*domain=*/64);
  Relation dividend =
      gen.DividendWithHits(512, 65, divisor, /*domain=*/64, /*density=*/0.5);

  const std::vector<std::string> spill_sites = {"spill.open", "spill.write",
                                                "spill.disk_full", "spill.read"};
  for (const std::string& site : spill_sites) {
    const std::string expected = "injected fault at " + site;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE(site + " at threads=" + std::to_string(threads));
      ScopedExecThreads scoped_threads(threads);

      FaultInjector injector;
      ScopedDisarm disarm(&injector);
      SessionOptions options = ForcedSpillOptions();
      options.fault_injector = &injector;
      Session session(options);
      ASSERT_TRUE(session.CreateTable("r1", dividend).ok());
      ASSERT_TRUE(session.CreateTable("r2", divisor).ok());

      injector.Arm(site, 1);
      Result<QueryResult> result = session.Execute(kDivideSql);
      ASSERT_FALSE(result.ok()) << site << " never consulted with spill forced";
      EXPECT_EQ(result.status().message(), expected);

      // No leaked store, file, or pool state: disarmed, the same
      // spill-forced statement runs to completion.
      injector.Disarm();
      Result<QueryResult> again = session.Execute(kDivideSql);
      ASSERT_TRUE(again.ok()) << again.error();
      EXPECT_GT(again.value().rows.size(), 0u);
    }
  }
}

TEST(SpillFaultTest, ArmFromSpecValidatesSiteAndNth) {
  FaultInjector injector;
  ScopedDisarm disarm(&injector);

  // Valid specs arm (with and without an explicit nth).
  EXPECT_TRUE(FaultInjector::ArmFromSpec(&injector, "spill.write:2"));
  EXPECT_FALSE(injector.Hit("spill.write"));
  EXPECT_TRUE(injector.Hit("spill.write"));
  injector.Disarm();
  EXPECT_TRUE(FaultInjector::ArmFromSpec(&injector, "spill.open"));
  EXPECT_TRUE(injector.Hit("spill.open"));
  injector.Disarm();

  // Malformed specs are refused — and, crucially, do NOT arm (a silently
  // dropped spec would make a fault test pass vacuously).
  const char* bad[] = {
      "",                    // empty site
      ":3",                  // empty site with an nth
      "nosuch.site",         // unknown site
      "nosuch.site:1",       // unknown site with an nth
      "spill.write:",        // empty nth
      "spill.write:zero",    // non-numeric nth
      "spill.write:3junk",   // trailing garbage
      "spill.write:0",       // nth must be >= 1
      "spill.write:-2",      // negative
  };
  for (const char* spec : bad) {
    SCOPED_TRACE(std::string("spec='") + spec + "'");
    EXPECT_FALSE(FaultInjector::ArmFromSpec(&injector, spec));
    EXPECT_FALSE(injector.Hit("spill.write"));
    EXPECT_FALSE(injector.Hit("spill.open"));
  }
}

TEST(SpillFaultTest, AllSpillSitesAreRegistered) {
  const std::vector<std::string>& sites = FaultInjector::KnownSites();
  for (const char* site : {"spill.open", "spill.write", "spill.disk_full", "spill.read"}) {
    bool found = false;
    for (const std::string& known : sites) found = found || known == site;
    EXPECT_TRUE(found) << site << " missing from FaultInjector::KnownSites()";
  }
}

// ---------------------------------------------------------------------------
// SpillAdmissionTest: the database-wide admission controller.
// ---------------------------------------------------------------------------

/// A database admitting exactly one `budget`-sized statement at a time.
std::shared_ptr<Database> MakeAdmittingDatabase(size_t budget, size_t max_queue = 16) {
  DatabaseOptions options;
  options.admission_memory_bytes = budget;
  options.admission_max_queue = max_queue;
  auto database = std::make_shared<Database>(options);
  EXPECT_TRUE(database->CreateTable("t", Relation::Parse("a", "1; 2; 3")).ok());
  return database;
}

SessionOptions BudgetedOptions(size_t bytes) {
  SessionOptions options;
  options.memory_budget_bytes = bytes;
  return options;
}

TEST(SpillAdmissionTest, StatementsWithoutBudgetsBypassAdmission) {
  auto database = MakeAdmittingDatabase(1 << 20);
  Session session(database);  // no memory budget: invisible to admission
  ASSERT_TRUE(session.Execute("SELECT a FROM t").ok());
  EXPECT_EQ(database->admission_stats().admitted, 0u);
}

TEST(SpillAdmissionTest, OversizedGrantRejectedImmediately) {
  auto database = MakeAdmittingDatabase(1024);
  Session session(database, BudgetedOptions(4096));
  Result<QueryResult> result = session.Execute("SELECT a FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("exceeds the database admission budget"),
            std::string::npos)
      << result.status().message();
  EXPECT_EQ(database->admission_stats().rejected, 1u);
}

TEST(SpillAdmissionTest, QueuedStatementRunsOnceTheGrantReleases) {
  auto database = MakeAdmittingDatabase(1 << 20);
  Session holder(database, BudgetedOptions(1 << 20));

  // An open cursor holds its governor — and with it the whole admission
  // budget — until Close().
  Result<ResultCursor> opened = holder.Query("SELECT a FROM t");
  ASSERT_TRUE(opened.ok()) << opened.error();
  ResultCursor cursor = std::move(opened).value();
  EXPECT_EQ(database->admission_stats().in_use_bytes, size_t{1} << 20);

  std::atomic<bool> finished{false};
  Result<QueryResult> queued_result = Result<QueryResult>::Error("never ran");
  std::thread waiter([&] {
    Session queued(database, BudgetedOptions(1 << 20));
    queued_result = queued.Execute("SELECT a FROM t");
    finished.store(true);
  });

  // The waiter cannot be admitted while the cursor holds the grant.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(finished.load());
  EXPECT_GE(database->admission_stats().queued, 1u);

  cursor.Close();  // releases the grant; the waiter proceeds
  waiter.join();
  ASSERT_TRUE(queued_result.ok()) << queued_result.error();
  EXPECT_EQ(queued_result.value().rows.size(), 3u);
  EXPECT_EQ(database->admission_stats().in_use_bytes, 0u);
}

TEST(SpillAdmissionTest, QueuedStatementTimesOutAtItsDeadline) {
  auto database = MakeAdmittingDatabase(1 << 20);
  Session holder(database, BudgetedOptions(1 << 20));
  Result<ResultCursor> opened = holder.Query("SELECT a FROM t");
  ASSERT_TRUE(opened.ok()) << opened.error();
  ResultCursor cursor = std::move(opened).value();

  SessionOptions options = BudgetedOptions(1 << 20);
  options.deadline = std::chrono::milliseconds(30);
  Session queued(database, options);
  Result<QueryResult> result = queued.Execute("SELECT a FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("queued, timed out"), std::string::npos)
      << result.status().message();
  EXPECT_GE(database->admission_stats().timed_out, 1u);

  // The abandoned ticket does not wedge the queue: once the holder closes,
  // a fresh statement is admitted immediately.
  cursor.Close();
  Result<QueryResult> fresh = queued.Execute("SELECT a FROM t");
  ASSERT_TRUE(fresh.ok()) << fresh.error();
}

TEST(SpillAdmissionTest, FullQueueRejectsInsteadOfWaiting) {
  auto database = MakeAdmittingDatabase(1 << 20, /*max_queue=*/0);
  Session holder(database, BudgetedOptions(1 << 20));
  Result<ResultCursor> opened = holder.Query("SELECT a FROM t");
  ASSERT_TRUE(opened.ok()) << opened.error();
  ResultCursor cursor = std::move(opened).value();

  Session rejected(database, BudgetedOptions(1 << 20));
  Result<QueryResult> result = rejected.Execute("SELECT a FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("admission queue full"), std::string::npos)
      << result.status().message();
}

TEST(SpillAdmissionTest, CancelReachesAStatementWaitingInTheQueue) {
  auto database = MakeAdmittingDatabase(1 << 20);
  Session holder(database, BudgetedOptions(1 << 20));
  Result<ResultCursor> opened = holder.Query("SELECT a FROM t");
  ASSERT_TRUE(opened.ok()) << opened.error();
  ResultCursor cursor = std::move(opened).value();

  Session queued(database, BudgetedOptions(1 << 20));
  std::atomic<bool> done{false};
  std::thread canceller([&] {
    while (!done.load(std::memory_order_relaxed)) {
      queued.Cancel();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  Result<QueryResult> result = queued.Execute("SELECT a FROM t");
  done.store(true);
  canceller.join();

  // The statement registered with the cancel registry BEFORE queuing for
  // admission, so Cancel() unwound it while it waited.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(database->admission_stats().in_use_bytes, size_t{1} << 20)
      << "the cancelled waiter must not have taken a grant";
}

TEST(SpillAdmissionTest, AdmissionComposesWithForcedSpill) {
  // The intended degradation story end to end: a database-wide budget, a
  // per-statement budget, and a spill watermark below it — the statement
  // queues politely, spills instead of tripping, and still answers exactly.
  DataGen gen(29);
  Relation divisor = gen.Divisor(32, /*domain=*/64);
  Relation dividend =
      gen.DividendWithHits(800, 101, divisor, /*domain=*/64, /*density=*/0.5);

  Relation expected;
  {
    Session plain;
    ASSERT_TRUE(plain.CreateTable("r1", dividend).ok());
    ASSERT_TRUE(plain.CreateTable("r2", divisor).ok());
    Result<QueryResult> baseline = plain.Execute(kDivideSql);
    ASSERT_TRUE(baseline.ok()) << baseline.error();
    expected = baseline.value().rows;
  }

  DatabaseOptions db_options;
  db_options.admission_memory_bytes = 64 << 20;
  auto database = std::make_shared<Database>(db_options);
  SessionOptions options;
  options.memory_budget_bytes = 32 << 20;
  options.spill_watermark_bytes = 4096;
  Session session(database, options);
  ASSERT_TRUE(session.CreateTable("r1", dividend).ok());
  ASSERT_TRUE(session.CreateTable("r2", divisor).ok());
  Result<QueryResult> result = session.Execute(kDivideSql);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().rows, expected);
  EXPECT_GT(result.value().profile.spill_partitions, 0u);
  EXPECT_EQ(database->admission_stats().admitted, 1u);
  EXPECT_EQ(database->admission_stats().in_use_bytes, 0u);
}

}  // namespace
}  // namespace quotient
