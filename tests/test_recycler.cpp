// Cross-query artifact recycler (exec/recycler.hpp, docs/recycler.md):
// recycling on/off differential (bit-identical at 1 and 8 threads), DDL
// invalidation, build-once under concurrent sessions, LRU eviction under a
// byte budget, EXPLAIN ANALYZE surfacing, and the recycler.* fault sites
// proving a faulted publish never poisons the cache.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algebra/generator.hpp"
#include "api/database.hpp"
#include "api/session.hpp"
#include "exec/batch.hpp"
#include "exec/pipeline.hpp"
#include "exec/query_context.hpp"
#include "exec/scheduler.hpp"
#include "opt/planner.hpp"

namespace quotient {
namespace {

constexpr const char* kDivideSql =
    "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b";

/// The statement corpus the differential sweeps: the operator families the
/// planner attaches RecycleSpecs to that SQL can reach — division, grouping,
/// and the semi join an IN subquery lowers to. (Comma joins stay a Select
/// over Product and carry no build state; hash-join recycling is covered at
/// the plan level by JoinBuildSidesRecycleAcrossPlanExecutions below.)
const std::vector<const char*> kCorpus = {
    kDivideSql,
    "SELECT a, COUNT(b) AS n FROM r1 GROUP BY a",
    "SELECT DISTINCT a FROM r1 WHERE b IN (SELECT b FROM r2)",
};

std::shared_ptr<Database> MakeDatabase(size_t recycler_bytes) {
  DatabaseOptions options;
  options.recycler_memory_bytes = recycler_bytes;
  auto db = std::make_shared<Database>(options);
  DataGen gen(23);
  Relation divisor = gen.Divisor(24, /*domain=*/48);
  Relation dividend =
      gen.DividendWithHits(160, 17, divisor, /*domain=*/48, /*density=*/0.4);
  Relation lookup = gen.RandomRelation(Schema::Parse("b:int, c:int"), 96, 48);
  EXPECT_TRUE(db->CreateTable("r1", std::move(dividend)).ok());
  EXPECT_TRUE(db->CreateTable("r2", std::move(divisor)).ok());
  EXPECT_TRUE(db->CreateTable("r3", std::move(lookup)).ok());
  return db;
}

TEST(RecyclerTest, OnOffDifferentialBitIdenticalAcrossThreadCounts) {
  ScopedSerialRowThreshold no_serial(0);  // exercise the pipelined sinks
  ScopedMorselRows morsels(32);
  ScopedBatchRows batches(32);
  for (size_t threads : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ScopedExecThreads scoped_threads(threads);
    std::shared_ptr<Database> off = MakeDatabase(0);
    std::shared_ptr<Database> on = MakeDatabase(64ull << 20);
    ASSERT_EQ(off->recycler(), nullptr);
    ASSERT_NE(on->recycler(), nullptr);
    Session plain(off);
    Session recycled(on);
    for (const char* sql : kCorpus) {
      SCOPED_TRACE(sql);
      Result<QueryResult> baseline = plain.Execute(sql);
      ASSERT_TRUE(baseline.ok()) << baseline.error();
      EXPECT_EQ(baseline.value().profile.recycler_hits, 0u);
      EXPECT_EQ(baseline.value().profile.recycler_misses, 0u);
      Result<QueryResult> cold = recycled.Execute(sql);
      ASSERT_TRUE(cold.ok()) << cold.error();
      Result<QueryResult> warm = recycled.Execute(sql);
      ASSERT_TRUE(warm.ok()) << warm.error();
      // Bit-identical: same rows in the same order, cold, warm, and with
      // recycling disabled.
      EXPECT_TRUE(cold.value().rows.tuples() == baseline.value().rows.tuples());
      EXPECT_TRUE(warm.value().rows.tuples() == baseline.value().rows.tuples());
      EXPECT_GT(cold.value().profile.recycler_misses, 0u);
      EXPECT_GT(warm.value().profile.recycler_hits, 0u);
      EXPECT_EQ(warm.value().profile.recycler_misses, 0u);
    }
    EXPECT_GT(on->recycler_stats().published, 0u);
    EXPECT_EQ(off->recycler_stats().published, 0u);
  }
}

TEST(RecyclerTest, JoinBuildSidesRecycleAcrossPlanExecutions) {
  // SQL never reaches kThetaJoin/kNaturalJoin directly (comma joins lower to
  // Select over Product), so exercise the hash-join build-side recycling at
  // the plan level: the same catalog + recycler across ExecutePlan calls.
  Catalog catalog;
  DataGen gen(23);
  catalog.Put("r1", gen.DividendWithHits(160, 17, gen.Divisor(24, 48), 48, 0.4));
  catalog.Put("r3", gen.RandomRelation(Schema::Parse("b:int, c:int"), 96, 48));
  PlannerOptions off;
  PlannerOptions on;
  on.recycler = std::make_shared<ArtifactRecycler>(64ull << 20);
  const std::vector<PlanPtr> plans = {
      // Equi theta join -> EquiJoinIterator ("join.equi" build key).
      LogicalOp::ThetaJoin(LogicalOp::Scan(catalog, "r1"),
                           LogicalOp::Rename(LogicalOp::Scan(catalog, "r3"),
                                             {{"b", "b2"}, {"c", "c2"}}),
                           Expr::ColEqCol("b", "b2")),
      // Natural join on the shared attribute -> HashJoinIterator
      // ("join.natural" build key).
      LogicalOp::NaturalJoin(LogicalOp::Scan(catalog, "r1"),
                             LogicalOp::Scan(catalog, "r3")),
  };
  // Plan-level executions carry no QueryContext, so the per-query profile
  // counters stay zero; assert through the recycler's own stats deltas.
  for (const PlanPtr& plan : plans) {
    RecyclerStats before = on.recycler->stats();
    Relation baseline = ExecutePlan(plan, catalog, off);
    Relation cold = ExecutePlan(plan, catalog, on);
    RecyclerStats after_cold = on.recycler->stats();
    Relation warm = ExecutePlan(plan, catalog, on);
    RecyclerStats after_warm = on.recycler->stats();
    EXPECT_GT(after_cold.misses, before.misses);
    EXPECT_GT(after_warm.hits, after_cold.hits);
    EXPECT_EQ(after_warm.misses, after_cold.misses);  // warm run missed nothing
    EXPECT_TRUE(cold.tuples() == baseline.tuples());
    EXPECT_TRUE(warm.tuples() == baseline.tuples());
  }
  EXPECT_EQ(on.recycler->stats().published, plans.size());
}

TEST(RecyclerTest, DdlInvalidatesCachedArtifacts) {
  std::shared_ptr<Database> db = MakeDatabase(64ull << 20);
  Session session(db);
  ASSERT_TRUE(session.Execute(kDivideSql).ok());
  Result<QueryResult> warm = session.Execute(kDivideSql);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm.value().profile.recycler_hits, 0u);

  // Growing the divisor changes the quotient; the old artifacts must not
  // serve the new statement (their keys carry the old data version, and
  // the DDL reclaims their memory eagerly).
  size_t invalidated_before = db->recycler_stats().invalidated;
  ASSERT_TRUE(db->InsertRows("r2", {{Value::Int(47)}}).ok());
  EXPECT_GT(db->recycler_stats().invalidated, invalidated_before);

  Result<QueryResult> after = session.Execute(kDivideSql);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().profile.recycler_hits, 0u);  // cold again
  EXPECT_GT(after.value().profile.recycler_misses, 0u);
  // And the fresh artifacts match a recycling-free execution exactly.
  std::shared_ptr<Database> off = MakeDatabase(0);
  ASSERT_TRUE(off->InsertRows("r2", {{Value::Int(47)}}).ok());
  Session plain(off);
  Result<QueryResult> baseline = plain.Execute(kDivideSql);
  ASSERT_TRUE(baseline.ok());
  EXPECT_TRUE(after.value().rows.tuples() == baseline.value().rows.tuples());
}

TEST(RecyclerTest, ConcurrentSessionsBuildOnce) {
  // Eight sessions race the same grouping statement; the aggregation
  // artifact must be built exactly once (one miss), with every other
  // session adopting it (seven hits) — the promise/shared_future discipline
  // under real concurrency.
  std::shared_ptr<Database> db = MakeDatabase(64ull << 20);
  const char* sql = "SELECT a, COUNT(b) AS n FROM r1 GROUP BY a";
  constexpr size_t kSessions = 8;
  std::vector<Relation> results(kSessions);
  std::vector<Status> statuses(kSessions, Status::Ok());
  {
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kSessions; ++i) {
      threads.emplace_back([&, i] {
        Session session(db);
        Result<QueryResult> result = session.Execute(sql);
        if (!result.ok()) {
          statuses[i] = result.status();
          return;
        }
        results[i] = std::move(result.value().rows);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (size_t i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(statuses[i].ok()) << statuses[i].message();
    EXPECT_TRUE(results[i].tuples() == results[0].tuples());
  }
  RecyclerStats stats = db->recycler_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kSessions - 1);
  EXPECT_EQ(stats.published, 1u);
}

TEST(RecyclerTest, EvictionKeepsResidentBytesUnderBudget) {
  // A budget big enough for a few grouping artifacts but not for all eight
  // tables' worth: the LRU must evict, the byte account must stay under
  // budget, and every query must stay correct while it happens.
  DatabaseOptions options;
  options.recycler_memory_bytes = 48 * 1024;
  auto db = std::make_shared<Database>(options);
  DataGen gen(31);
  Schema schema = Schema::Parse("a:int, b:int");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db->CreateTable("t" + std::to_string(i),
                                gen.RandomRelation(schema, 400, 200))
                    .ok());
  }
  Session session(db);
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 8; ++i) {
      std::string sql =
          "SELECT a, COUNT(b) AS n FROM t" + std::to_string(i) + " GROUP BY a";
      Result<QueryResult> result = session.Execute(sql);
      ASSERT_TRUE(result.ok()) << result.error();
      RecyclerStats stats = db->recycler_stats();
      EXPECT_LE(stats.bytes, options.recycler_memory_bytes);
    }
  }
  RecyclerStats stats = db->recycler_stats();
  EXPECT_GT(stats.published, 0u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LT(stats.entries, 8u);
  // Spot-check correctness against a recycling-free run after the churn.
  DatabaseOptions off_options;
  off_options.recycler_memory_bytes = 0;
  auto off = std::make_shared<Database>(off_options);
  DataGen gen2(31);
  ASSERT_TRUE(off->CreateTable("t0", gen2.RandomRelation(schema, 400, 200)).ok());
  Session plain(off);
  Result<QueryResult> expect = plain.Execute("SELECT a, COUNT(b) AS n FROM t0 GROUP BY a");
  Result<QueryResult> got = session.Execute("SELECT a, COUNT(b) AS n FROM t0 GROUP BY a");
  ASSERT_TRUE(expect.ok() && got.ok());
  EXPECT_TRUE(got.value().rows.tuples() == expect.value().rows.tuples());
}

TEST(RecyclerTest, ExplainAnalyzeSurfacesRecyclerCounters) {
  std::shared_ptr<Database> db = MakeDatabase(64ull << 20);
  Session session(db);
  ASSERT_TRUE(session.Execute(kDivideSql).ok());
  Result<QueryResult> analyzed =
      session.Execute(std::string("EXPLAIN ANALYZE ") + kDivideSql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.error();
  std::string text;
  for (const Tuple& t : analyzed.value().rows.tuples()) text += t[1].ToString() + "\n";
  EXPECT_NE(text.find("recycler="), std::string::npos) << text;
  EXPECT_NE(text.find("hits"), std::string::npos) << text;
}

struct ScopedDisarm {
  explicit ScopedDisarm(FaultInjector* injector) : injector_(injector) {}
  ~ScopedDisarm() { injector_->Disarm(); }
  FaultInjector* injector_;
};

// A fault at either recycler site must unwind with the deterministic
// message, leave the cache unpoisoned (the next execution succeeds, builds
// fresh, and publishes), and behave identically at 1, 2, and 8 workers.
TEST(RecyclerFaultTest, FaultedPublishNeverPoisonsTheCache) {
  ScopedSerialRowThreshold no_serial(0);
  ScopedMorselRows morsels(32);
  ScopedBatchRows batches(32);
  for (const char* site : {"recycler.lookup", "recycler.publish"}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE(std::string(site) + " at threads=" + std::to_string(threads));
      ScopedExecThreads scoped_threads(threads);
      std::shared_ptr<Database> db = MakeDatabase(64ull << 20);
      FaultInjector injector;
      ScopedDisarm disarm(&injector);
      SessionOptions options;
      options.fault_injector = &injector;
      Session session(db, options);

      injector.Arm(site, 1);
      Result<QueryResult> faulted = session.Execute(kDivideSql);
      ASSERT_FALSE(faulted.ok());
      EXPECT_EQ(faulted.status().message(), std::string("injected fault at ") + site);
      // Nothing half-built may be visible.
      EXPECT_EQ(db->recycler_stats().entries, 0u);
      EXPECT_EQ(db->recycler_stats().published, 0u);

      // Disarmed, the same statement rebuilds and publishes...
      injector.Disarm();
      Result<QueryResult> rebuilt = session.Execute(kDivideSql);
      ASSERT_TRUE(rebuilt.ok()) << rebuilt.error();
      EXPECT_GT(db->recycler_stats().published, 0u);
      // ...and the published artifacts serve the next execution.
      Result<QueryResult> warm = session.Execute(kDivideSql);
      ASSERT_TRUE(warm.ok());
      EXPECT_GT(warm.value().profile.recycler_hits, 0u);
      EXPECT_TRUE(warm.value().rows.tuples() == rebuilt.value().rows.tuples());
    }
  }
}

}  // namespace
}  // namespace quotient
