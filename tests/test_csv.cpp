#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace quotient {
namespace {

TEST(CsvTest, RoundTripIntReal) {
  Relation r = Relation::Parse("a, x:real", "1,1.5; 2,2.25");
  Result<Relation> back = RelationFromCsv(RelationToCsv(r));
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value(), r);
}

TEST(CsvTest, RoundTripStringsWithQuoting) {
  Relation r = Relation::FromRows(
      "id:int, s:string",
      {{V(1), V("plain")}, {V(2), V("has,comma")}, {V(3), V("has\"quote")}});
  std::string csv = RelationToCsv(r);
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  Result<Relation> back = RelationFromCsv(csv);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value(), r);
}

TEST(CsvTest, HeaderCarriesTypes) {
  std::string csv = RelationToCsv(Relation::Parse("a, s:string", ""));
  EXPECT_EQ(csv, "a:int,s:string\n");
}

TEST(CsvTest, Errors) {
  EXPECT_FALSE(RelationFromCsv("").ok());
  EXPECT_FALSE(RelationFromCsv("a:int\nx\n").ok());          // not an int
  EXPECT_FALSE(RelationFromCsv("a:int,b:int\n1\n").ok());    // arity
  EXPECT_FALSE(RelationFromCsv("a:set\n").ok());             // unsupported type
  EXPECT_FALSE(RelationFromCsv("s:string\n\"open\n").ok());  // unterminated quote
}

TEST(CsvTest, EmptyRelationAndBlankLines) {
  Result<Relation> r = RelationFromCsv("a:int,b:int\n\n1,2\n\n");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value(), Relation::Parse("a, b", "1,2"));
}

TEST(CsvTest, FileRoundTrip) {
  Relation r = Relation::Parse("a, b", "1,2; 3,4");
  std::string path = ::testing::TempDir() + "/quotient_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(r, path).ok());
  Result<Relation> back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back.value(), r);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsvFile("/nonexistent/dir/file.csv").ok());
}

}  // namespace
}  // namespace quotient
