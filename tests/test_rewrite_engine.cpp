// Plan-level rewrite rules: each law's rule must fire on its pattern,
// respect its preconditions, and preserve the query result (checked against
// the reference evaluator). Also exercises the engine driver and the
// cost-guarded optimizer.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "opt/optimizer.hpp"
#include "paper_fixtures.hpp"
#include "plan/evaluate.hpp"

namespace quotient {
namespace {

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.Put("r1", paper::Fig4Dividend());
    catalog_.Put("r2", paper::Fig4Divisor());
    catalog_.Put("gd_divisor", paper::Fig2Divisor());
  }

  PlanPtr Scan(const std::string& name) { return LogicalOp::Scan(catalog_, name); }

  /// Applies `rule` once at the root and checks result preservation.
  PlanPtr ApplyAndCheck(const RulePtr& rule, const PlanPtr& plan, bool runtime_checks = false) {
    RewriteContext context{&catalog_, runtime_checks};
    PlanPtr rewritten = rule->Apply(plan, context);
    EXPECT_NE(rewritten, nullptr) << rule->name() << " did not fire";
    if (rewritten != nullptr) {
      EXPECT_EQ(Evaluate(rewritten, catalog_), Evaluate(plan, catalog_))
          << rule->name() << " changed the result";
    }
    return rewritten;
  }

  Catalog catalog_;
};

TEST_F(RewriteTest, Law1FiresOnUnionDivisor) {
  PlanPtr plan = LogicalOp::Divide(
      Scan("r1"), LogicalOp::Union(LogicalOp::Values(paper::Fig4DivisorPrime()),
                                   LogicalOp::Values(paper::Fig4DivisorPrimePrime())));
  PlanPtr rewritten = ApplyAndCheck(MakeLaw1DivisorUnionRule(), plan);
  EXPECT_NE(rewritten->ToString().find("SemiJoin"), std::string::npos);
}

TEST_F(RewriteTest, Law2NeedsDisjointnessEvidence) {
  catalog_.Put("left", Relation::Parse("a, b", "1,1; 1,3; 1,4"));
  catalog_.Put("right", Relation::Parse("a, b", "2,1; 2,3; 2,4"));
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Union(Scan("left"), Scan("right")), Scan("r2"));
  RewriteContext no_evidence{&catalog_, false};
  EXPECT_EQ(MakeLaw2DividendUnionRule()->Apply(plan, no_evidence), nullptr)
      << "without catalog metadata or runtime checks the rule must not fire";
  // Declaring disjointness (or allowing a runtime check) lets it fire.
  catalog_.DeclareDisjoint("left", "right", {"a"});
  ApplyAndCheck(MakeLaw2DividendUnionRule(), plan);
}

TEST_F(RewriteTest, Law2RuntimeCheckPath) {
  catalog_.Put("left", Relation::Parse("a, b", "1,1; 1,3; 1,4"));
  catalog_.Put("right", Relation::Parse("a, b", "2,1; 2,3; 2,4"));
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Union(Scan("left"), Scan("right")), Scan("r2"));
  ApplyAndCheck(MakeLaw2DividendUnionRule(), plan, /*runtime_checks=*/true);
}

TEST_F(RewriteTest, Law3PushesQuotientSelection) {
  PlanPtr plan = LogicalOp::Select(LogicalOp::Divide(Scan("r1"), Scan("r2")),
                                   Expr::ColCmp("a", CmpOp::kGe, V(3)));
  PlanPtr rewritten = ApplyAndCheck(MakeLaw3SelectionPushdownRule(), plan);
  // Root must now be the division, with the selection inside.
  EXPECT_EQ(rewritten->kind(), LogicalOp::Kind::kDivide);
}

TEST_F(RewriteTest, Law4GuardedByErratumNonEmptiness) {
  PlanPtr plan = LogicalOp::Divide(
      Scan("r1"), LogicalOp::Select(Scan("r2"), Expr::ColCmp("b", CmpOp::kLe, V(3))));
  ApplyAndCheck(MakeLaw4ReplicateSelectionRule(), plan, /*runtime_checks=*/true);

  // With a never-true divisor selection the rule must refuse (erratum).
  PlanPtr empty_divisor = LogicalOp::Divide(
      Scan("r1"), LogicalOp::Select(Scan("r2"), Expr::ColCmp("b", CmpOp::kGt, V(100))));
  RewriteContext context{&catalog_, true};
  EXPECT_EQ(MakeLaw4ReplicateSelectionRule()->Apply(empty_divisor, context), nullptr);
}

TEST_F(RewriteTest, Example1RuleFiresOnBSelection) {
  PlanPtr plan = LogicalOp::Divide(
      LogicalOp::Select(Scan("r1"), Expr::ColCmp("b", CmpOp::kLt, V(3))), Scan("r2"));
  PlanPtr rewritten = ApplyAndCheck(MakeExample1DividendSelectionRule(), plan);
  EXPECT_EQ(rewritten->kind(), LogicalOp::Kind::kDifference);
}

TEST_F(RewriteTest, Law5NeedsNonEmptyDivisor) {
  catalog_.Put("other", Relation::Parse("a, b", "2,1; 2,3; 2,4; 9,9"));
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Intersect(Scan("r1"), Scan("other")), Scan("r2"));
  ApplyAndCheck(MakeLaw5IntersectRule(), plan, /*runtime_checks=*/true);

  catalog_.Put("empty", Relation(Schema::Parse("b")));
  PlanPtr with_empty =
      LogicalOp::Divide(LogicalOp::Intersect(Scan("r1"), Scan("other")), Scan("empty"));
  RewriteContext context{&catalog_, true};
  EXPECT_EQ(MakeLaw5IntersectRule()->Apply(with_empty, context), nullptr)
      << "erratum guard: Law 5 needs r2 != empty";
}

TEST_F(RewriteTest, Law6MatchesNestedSelections) {
  PlanPtr base = Scan("r1");
  PlanPtr plan = LogicalOp::Divide(
      LogicalOp::Difference(LogicalOp::Select(base, Expr::ColCmp("a", CmpOp::kLe, V(3))),
                            LogicalOp::Select(base, Expr::ColCmp("a", CmpOp::kLe, V(2)))),
      Scan("r2"));
  ApplyAndCheck(MakeLaw6DifferenceRule(), plan, /*runtime_checks=*/true);
}

TEST_F(RewriteTest, Law7PrunesSubtrahend) {
  catalog_.Put("lo", Relation::Parse("a, b", "1,1; 1,3; 1,4"));
  catalog_.Put("hi", Relation::Parse("a, b", "7,1; 7,3; 8,1"));
  catalog_.DeclareDisjoint("lo", "hi", {"a"});
  PlanPtr plan = LogicalOp::Difference(LogicalOp::Divide(Scan("lo"), Scan("r2")),
                                       LogicalOp::Divide(Scan("hi"), Scan("r2")));
  PlanPtr rewritten = ApplyAndCheck(MakeLaw7DifferencePruneRule(), plan);
  EXPECT_EQ(rewritten->TreeSize(), 3u);  // just Divide(lo, r2)
}

TEST_F(RewriteTest, Law8PushesDivideIntoProduct) {
  catalog_.Put("star", Relation::Parse("z", "10; 20"));
  PlanPtr plan =
      LogicalOp::Divide(LogicalOp::Product(Scan("star"), Scan("r1")), Scan("r2"));
  PlanPtr rewritten = ApplyAndCheck(MakeLaw8ProductRule(), plan);
  EXPECT_EQ(rewritten->kind(), LogicalOp::Kind::kProduct);
}

TEST_F(RewriteTest, Law9EliminatesCoveredFactor) {
  catalog_.Put("star9", Rename(paper::Fig8R1Star(), {}));
  catalog_.Put("ss9", paper::Fig8R1StarStar());
  catalog_.Put("r29", paper::Fig8Divisor());
  catalog_.DeclareForeignKey("r29", {"b2"}, "ss9");
  PlanPtr plan =
      LogicalOp::Divide(LogicalOp::Product(Scan("star9"), Scan("ss9")), Scan("r29"));
  PlanPtr rewritten = ApplyAndCheck(MakeLaw9ProductRule(), plan, /*runtime_checks=*/true);
  EXPECT_EQ(rewritten->ToString().find("Product"), std::string::npos)
      << "the covered factor (and the product) must be gone";
}

TEST_F(RewriteTest, Law10PushesSemiJoinBelowDivide) {
  catalog_.Put("r3", Relation::Parse("a", "2; 9"));
  PlanPtr plan = LogicalOp::SemiJoin(LogicalOp::Divide(Scan("r1"), Scan("r2")), Scan("r3"));
  PlanPtr rewritten = ApplyAndCheck(MakeLaw10SemiJoinRule(), plan);
  EXPECT_EQ(rewritten->kind(), LogicalOp::Kind::kDivide);
}

TEST_F(RewriteTest, Law11CompilesDivisionToGuardedSemiJoins) {
  catalog_.Put("r0", paper::Fig10R0());
  for (const char* divisor : {"", "4", "4; 6"}) {
    catalog_.Put("d", Relation::Parse("b", divisor));
    PlanPtr plan = LogicalOp::Divide(
        LogicalOp::GroupBy(Scan("r0"), {"a"}, {{AggFunc::kSum, "x", "b"}}), Scan("d"));
    PlanPtr rewritten = ApplyAndCheck(MakeLaw11GroupedDividendRule(), plan);
    EXPECT_EQ(rewritten->kind(), LogicalOp::Kind::kUnion);
  }
}

TEST_F(RewriteTest, Law12CompilesDivisionToGuardedSemiJoin) {
  catalog_.Put("r0", paper::Fig11R0());
  catalog_.Put("d", paper::Fig11Divisor());
  PlanPtr plan = LogicalOp::Divide(
      LogicalOp::GroupBy(Scan("r0"), {"b"}, {{AggFunc::kSum, "x", "a"}}), Scan("d"));
  PlanPtr rewritten = ApplyAndCheck(MakeLaw12GroupedDividendRule(), plan,
                                    /*runtime_checks=*/true);
  EXPECT_EQ(rewritten->kind(), LogicalOp::Kind::kSemiJoin);

  // Without the FK established the rule must not fire.
  catalog_.Put("bad", Relation::Parse("b", "1; 99"));
  PlanPtr bad_plan = LogicalOp::Divide(
      LogicalOp::GroupBy(Scan("r0"), {"b"}, {{AggFunc::kSum, "x", "a"}}), Scan("bad"));
  RewriteContext context{&catalog_, true};
  EXPECT_EQ(MakeLaw12GroupedDividendRule()->Apply(bad_plan, context), nullptr);
}

TEST_F(RewriteTest, Law13SplitsCDisjointUnion) {
  catalog_.Put("g1", Relation::Parse("b, c", "1,1; 2,1; 4,1"));
  catalog_.Put("g2", Relation::Parse("b, c", "1,2; 3,2"));
  catalog_.DeclareDisjoint("g1", "g2", {"c"});
  PlanPtr plan =
      LogicalOp::GreatDivide(Scan("r1"), LogicalOp::Union(Scan("g1"), Scan("g2")));
  PlanPtr rewritten = ApplyAndCheck(MakeLaw13GreatDivisorUnionRule(), plan);
  EXPECT_EQ(rewritten->kind(), LogicalOp::Kind::kUnion);
}

TEST_F(RewriteTest, Laws14And15RouteByPredicateAttributes) {
  PlanPtr gd = LogicalOp::GreatDivide(Scan("r1"), Scan("gd_divisor"));
  PlanPtr select_a = LogicalOp::Select(gd, Expr::ColCmp("a", CmpOp::kGe, V(2)));
  PlanPtr select_c = LogicalOp::Select(gd, Expr::ColCmp("c", CmpOp::kEq, V(2)));
  // Law 14 fires on p(A) but not p(C); Law 15 vice versa.
  RewriteContext context{&catalog_, false};
  EXPECT_NE(MakeLaw14SelectionPushdownRule()->Apply(select_a, context), nullptr);
  EXPECT_EQ(MakeLaw14SelectionPushdownRule()->Apply(select_c, context), nullptr);
  EXPECT_EQ(MakeLaw15DivisorSelectionRule()->Apply(select_a, context), nullptr);
  EXPECT_NE(MakeLaw15DivisorSelectionRule()->Apply(select_c, context), nullptr);
  ApplyAndCheck(MakeLaw14SelectionPushdownRule(), select_a);
  ApplyAndCheck(MakeLaw15DivisorSelectionRule(), select_c);
}

TEST_F(RewriteTest, Law16ReplicatesDivisorBSelection) {
  PlanPtr plan = LogicalOp::GreatDivide(
      Scan("r1"),
      LogicalOp::Select(Scan("gd_divisor"), Expr::ColCmp("b", CmpOp::kLe, V(3))));
  ApplyAndCheck(MakeLaw16ReplicateSelectionRule(), plan);
}

TEST_F(RewriteTest, Law17PushesGreatDivideIntoProduct) {
  catalog_.Put("star", Relation::Parse("z", "10; 20"));
  PlanPtr plan = LogicalOp::GreatDivide(LogicalOp::Product(Scan("star"), Scan("r1")),
                                        Scan("gd_divisor"));
  PlanPtr rewritten = ApplyAndCheck(MakeLaw17ProductRule(), plan);
  EXPECT_EQ(rewritten->kind(), LogicalOp::Kind::kProduct);
}

TEST_F(RewriteTest, Example4PushesJoinBelowGreatDivide) {
  catalog_.Put("outer", Relation::Parse("a1", "1; 3; 9"));
  catalog_.Put("inner", Rename(paper::Fig1Dividend(), {{"a", "a2"}}));
  PlanPtr plan = LogicalOp::ThetaJoin(
      Scan("outer"), LogicalOp::GreatDivide(Scan("inner"), Scan("gd_divisor")),
      Expr::ColEqCol("a1", "a2"));
  PlanPtr rewritten = ApplyAndCheck(MakeExample4JoinPushRule(), plan);
  EXPECT_EQ(rewritten->kind(), LogicalOp::Kind::kGreatDivide);

  // A condition touching C must block the rule.
  PlanPtr blocked = LogicalOp::ThetaJoin(
      Scan("outer"), LogicalOp::GreatDivide(Scan("inner"), Scan("gd_divisor")),
      Expr::And(Expr::ColEqCol("a1", "a2"), Expr::ColCmp("c", CmpOp::kEq, V(1))));
  RewriteContext context{&catalog_, false};
  EXPECT_EQ(MakeExample4JoinPushRule()->Apply(blocked, context), nullptr);
}

TEST_F(RewriteTest, HealyExpansionEliminatesDivide) {
  PlanPtr plan = LogicalOp::Divide(Scan("r1"), Scan("r2"));
  PlanPtr rewritten = ApplyAndCheck(MakeDivideToHealyExpansionRule(), plan);
  EXPECT_EQ(rewritten->ToString().find("Divide "), std::string::npos);
}

TEST_F(RewriteTest, EngineReachesFixpointAndPreservesResults) {
  // A plan with several rewrite opportunities stacked.
  PlanPtr plan = LogicalOp::Select(
      LogicalOp::Divide(
          LogicalOp::Product(LogicalOp::Values(Relation::Parse("z", "1; 2"), "star"),
                             Scan("r1")),
          Scan("r2")),
      Expr::ColCmp("a", CmpOp::kLe, V(3)));
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog_, false};
  std::vector<RewriteStep> trace;
  PlanPtr rewritten = engine.Rewrite(plan, context, &trace);
  EXPECT_FALSE(trace.empty());
  EXPECT_EQ(Evaluate(rewritten, catalog_), Evaluate(plan, catalog_));
  // Fixpoint: a second pass changes nothing.
  EXPECT_EQ(engine.RewriteOnce(rewritten, context), nullptr);
}

TEST_F(RewriteTest, EngineRespectsStepBudget) {
  PlanPtr plan = LogicalOp::Select(LogicalOp::Divide(Scan("r1"), Scan("r2")),
                                   Expr::ColCmp("a", CmpOp::kGe, V(2)));
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog_, false};
  std::vector<RewriteStep> trace;
  bool exhausted = false;
  PlanPtr rewritten = engine.Rewrite(plan, context, &trace, /*max_steps=*/0, &exhausted);
  // No law applied, and the truncation is surfaced: the flag is set and the
  // trace carries the marker instead of silently reading as "converged".
  EXPECT_EQ(rewritten->ToString(), plan->ToString());
  EXPECT_TRUE(exhausted);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].rule, kRewriteBudgetExhausted);
}

TEST_F(RewriteTest, ConvergedRewriteDoesNotReportExhaustion) {
  PlanPtr plan = LogicalOp::Select(LogicalOp::Divide(Scan("r1"), Scan("r2")),
                                   Expr::ColCmp("a", CmpOp::kGe, V(2)));
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog_, false};
  std::vector<RewriteStep> trace;
  bool exhausted = false;
  engine.Rewrite(plan, context, &trace, /*max_steps=*/64, &exhausted);
  EXPECT_FALSE(exhausted);
  for (const RewriteStep& step : trace) EXPECT_NE(step.rule, kRewriteBudgetExhausted);
}

TEST_F(RewriteTest, OptimizerKeepsCheaperPlanAndRuns) {
  Optimizer optimizer(catalog_);
  PlanPtr plan = LogicalOp::Select(LogicalOp::Divide(Scan("r1"), Scan("r2")),
                                   Expr::ColCmp("a", CmpOp::kGe, V(3)));
  OptimizationReport report;
  Relation result = optimizer.Run(plan, nullptr, &report);
  EXPECT_EQ(result, Evaluate(plan, catalog_));
  EXPECT_FALSE(report.steps.empty());
  EXPECT_LE(report.chosen_cost, report.original_cost * 1.05);
  EXPECT_FALSE(report.Explain().empty());
}

TEST_F(RewriteTest, RewritesComposeDeepInTree) {
  // The rule must also fire on non-root nodes via the engine's traversal.
  PlanPtr inner = LogicalOp::Select(LogicalOp::Divide(Scan("r1"), Scan("r2")),
                                    Expr::ColCmp("a", CmpOp::kGe, V(2)));
  PlanPtr plan = LogicalOp::Union(inner, inner);
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog_, false};
  PlanPtr rewritten = engine.Rewrite(plan, context);
  EXPECT_EQ(Evaluate(rewritten, catalog_), Evaluate(plan, catalog_));
  // Both branches' selections must have been pushed below their divisions.
  ASSERT_EQ(rewritten->kind(), LogicalOp::Kind::kUnion);
  EXPECT_EQ(rewritten->left()->kind(), LogicalOp::Kind::kDivide);
  EXPECT_EQ(rewritten->right()->kind(), LogicalOp::Kind::kDivide);
}

}  // namespace
}  // namespace quotient
