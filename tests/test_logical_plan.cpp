// Logical plan nodes: schema inference, validation, equality, WithChildren,
// the catalog's constraint registry, the reference evaluator's statistics,
// and the cost model's monotonicity properties.

#include <gtest/gtest.h>

#include "opt/cost.hpp"
#include "plan/evaluate.hpp"
#include "plan/logical.hpp"
#include "util/status.hpp"

namespace quotient {
namespace {

class LogicalPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.Put("r1", Relation::Parse("a, b", "1,1; 1,2; 2,1"));
    catalog_.Put("r2", Relation::Parse("b", "1; 2"));
    catalog_.Put("gd", Relation::Parse("b, c", "1,5; 2,5; 1,6"));
  }
  Catalog catalog_;
};

TEST_F(LogicalPlanTest, SchemaInference) {
  PlanPtr r1 = LogicalOp::Scan(catalog_, "r1");
  EXPECT_EQ(r1->schema().Names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(LogicalOp::Divide(r1, LogicalOp::Scan(catalog_, "r2"))->schema().Names(),
            (std::vector<std::string>{"a"}));
  EXPECT_EQ(LogicalOp::GreatDivide(r1, LogicalOp::Scan(catalog_, "gd"))->schema().Names(),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(LogicalOp::GroupBy(r1, {"a"}, {{AggFunc::kCount, "b", "n"}})->schema().Names(),
            (std::vector<std::string>{"a", "n"}));
}

TEST_F(LogicalPlanTest, ValidationErrors) {
  PlanPtr r1 = LogicalOp::Scan(catalog_, "r1");
  PlanPtr r2 = LogicalOp::Scan(catalog_, "r2");
  EXPECT_THROW(LogicalOp::Scan(catalog_, "nosuch"), SchemaError);
  EXPECT_THROW(LogicalOp::Select(r1, Expr::Column("zzz")), SchemaError);
  EXPECT_THROW(LogicalOp::Project(r1, {"zzz"}), SchemaError);
  EXPECT_THROW(LogicalOp::Union(r1, r2), SchemaError);
  EXPECT_THROW(LogicalOp::Product(r1, r1), SchemaError);       // duplicate names
  EXPECT_THROW(LogicalOp::Divide(r2, r1), SchemaError);        // Theorem 2 shape
  EXPECT_THROW(LogicalOp::Divide(r1, LogicalOp::Scan(catalog_, "gd")), SchemaError);
}

TEST_F(LogicalPlanTest, EqualityAndWithChildren) {
  PlanPtr a = LogicalOp::Select(LogicalOp::Scan(catalog_, "r1"),
                                Expr::ColCmp("a", CmpOp::kEq, V(1)));
  PlanPtr b = LogicalOp::Select(LogicalOp::Scan(catalog_, "r1"),
                                Expr::ColCmp("a", CmpOp::kEq, V(1)));
  PlanPtr c = LogicalOp::Select(LogicalOp::Scan(catalog_, "r1"),
                                Expr::ColCmp("a", CmpOp::kEq, V(2)));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_EQ(a->TreeSize(), 2u);

  PlanPtr swapped = a->WithChildren({LogicalOp::Scan(catalog_, "r1")});
  EXPECT_TRUE(swapped->Equals(*a));
  EXPECT_THROW(a->WithChildren({}), SchemaError);
}

TEST_F(LogicalPlanTest, RenderingShowsOperatorsAndSchemas) {
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog_, "r1"),
                                   LogicalOp::Scan(catalog_, "r2"));
  std::string text = plan->ToString();
  EXPECT_NE(text.find("Divide"), std::string::npos);
  EXPECT_NE(text.find("Scan r1"), std::string::npos);
  EXPECT_NE(text.find("(a:int)"), std::string::npos);
}

TEST_F(LogicalPlanTest, EvaluateStatsTrackIntermediates) {
  PlanPtr plan = LogicalOp::Project(
      LogicalOp::Product(LogicalOp::Scan(catalog_, "r1"),
                         LogicalOp::Rename(LogicalOp::Scan(catalog_, "r2"), {{"b", "z"}})),
      {"a"});
  EvalStats stats;
  Relation result = Evaluate(plan, catalog_, &stats);
  EXPECT_EQ(result, Relation::Parse("a", "1; 2"));
  EXPECT_EQ(stats.nodes_evaluated, 5u);
  EXPECT_EQ(stats.max_intermediate, 6u);  // the product
}

TEST_F(LogicalPlanTest, CatalogConstraints) {
  catalog_.DeclareKey("r2", {"b"});
  EXPECT_TRUE(catalog_.ImpliesKey("r2", {"b"}));
  EXPECT_TRUE(catalog_.ImpliesKey("r2", {"b", "x"}));  // superset of a key
  EXPECT_FALSE(catalog_.ImpliesKey("r1", {"a"}));

  catalog_.DeclareForeignKey("r2", {"b"}, "r1");
  EXPECT_TRUE(catalog_.HasForeignKey("r2", {"b"}, "r1"));
  EXPECT_FALSE(catalog_.HasForeignKey("r1", {"b"}, "r2"));

  catalog_.DeclareDisjoint("r1", "r2", {"b"});
  EXPECT_TRUE(catalog_.AreDisjoint("r1", "r2", {"b"}));
  EXPECT_TRUE(catalog_.AreDisjoint("r2", "r1", {"b"}));  // symmetric
  EXPECT_FALSE(catalog_.AreDisjoint("r1", "r2", {"a"}));
}

TEST_F(LogicalPlanTest, CatalogDataChecks) {
  EXPECT_TRUE(Catalog::CheckKey(catalog_.Get("r2"), {"b"}));
  EXPECT_FALSE(Catalog::CheckKey(catalog_.Get("r1"), {"a"}));
  EXPECT_TRUE(Catalog::CheckForeignKey(catalog_.Get("r2"), catalog_.Get("r1"), {"b"}));
  EXPECT_FALSE(Catalog::CheckDisjoint(catalog_.Get("r1"), catalog_.Get("r2"), {"b"}));
  EXPECT_THROW(catalog_.Get("nosuch"), SchemaError);
}

TEST_F(LogicalPlanTest, CostModelBasicMonotonicity) {
  PlanPtr r1 = LogicalOp::Scan(catalog_, "r1");
  PlanPtr r2 = LogicalOp::Scan(catalog_, "r2");
  PlanPtr divide = LogicalOp::Divide(r1, r2);
  // A plan strictly containing another costs at least as much.
  EXPECT_GE(EstimateCost(divide, catalog_), EstimateCost(r1, catalog_));
  // Selection reduces estimated cardinality.
  PlanPtr filtered = LogicalOp::Select(r1, Expr::ColCmp("a", CmpOp::kEq, V(1)));
  EXPECT_LT(EstimatePlan(filtered, catalog_).cardinality,
            EstimatePlan(r1, catalog_).cardinality);
  // Pushing the selection below the divide must not increase the estimate
  // (this is what lets the optimizer accept Law 3).
  PlanPtr above = LogicalOp::Select(divide, Expr::ColCmp("a", CmpOp::kEq, V(1)));
  PlanPtr below = LogicalOp::Divide(filtered, r2);
  EXPECT_LE(EstimateCost(below, catalog_), EstimateCost(above, catalog_) * 1.05);
}

TEST_F(LogicalPlanTest, ValuesNodesEvaluateInline) {
  PlanPtr values = LogicalOp::Values(Relation::Parse("q", "1; 2"), "inline");
  EXPECT_EQ(Evaluate(values, catalog_), Relation::Parse("q", "1; 2"));
  EXPECT_NE(values->ToString().find("inline"), std::string::npos);
}

}  // namespace
}  // namespace quotient
