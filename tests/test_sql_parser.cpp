// SQL front end units: lexer tokens, the §4 grammar, AST shape, and
// round-trip rendering.

#include <gtest/gtest.h>

#include "sql/lexer.hpp"
#include "sql/parser.hpp"

namespace quotient {
namespace sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT s#, 'blue' FROM t WHERE x >= 1.5");
  ASSERT_TRUE(tokens.ok()) << tokens.error();
  const std::vector<Token>& t = tokens.value();
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_EQ(t[1].kind, TokenKind::kIdent);
  EXPECT_EQ(t[1].text, "s#");  // '#' is an identifier character (s#, p#)
  EXPECT_TRUE(t[2].IsSymbol(","));
  EXPECT_EQ(t[3].kind, TokenKind::kString);
  EXPECT_EQ(t[3].text, "blue");
  EXPECT_TRUE(t[4].IsKeyword("FROM"));
  EXPECT_TRUE(t[8].IsSymbol(">="));
  EXPECT_EQ(t[9].text, "1.5");
  EXPECT_EQ(t.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select Distinct FROM");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE(tokens.value()[0].IsKeyword("SELECT"));
  EXPECT_TRUE(tokens.value()[1].IsKeyword("DISTINCT"));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ; b").ok());  // ';' is not in the dialect
}

TEST(ParserTest, MinimalSelect) {
  auto q = ParseQuery("SELECT a, b FROM t");
  ASSERT_TRUE(q.ok()) << q.error();
  EXPECT_EQ(q.value()->items.size(), 2u);
  EXPECT_EQ(q.value()->from.size(), 1u);
  EXPECT_EQ(q.value()->from[0].table, "t");
  EXPECT_EQ(q.value()->from[0].alias, "t");
}

TEST(ParserTest, AliasesBothForms) {
  auto q = ParseQuery("SELECT x FROM t AS u, v w");
  ASSERT_TRUE(q.ok()) << q.error();
  EXPECT_EQ(q.value()->from[0].alias, "u");
  EXPECT_EQ(q.value()->from[1].table, "v");
  EXPECT_EQ(q.value()->from[1].alias, "w");
}

TEST(ParserTest, DivideByProduction) {
  auto q = ParseQuery(
      "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#");
  ASSERT_TRUE(q.ok()) << q.error();
  const TableRef& ref = q.value()->from[0];
  ASSERT_NE(ref.divisor, nullptr);
  EXPECT_EQ(ref.divisor->table, "parts");
  EXPECT_EQ(ref.divisor->alias, "p");
  ASSERT_NE(ref.on_condition, nullptr);
  EXPECT_EQ(ref.on_condition->kind, SqlExpr::Kind::kCompare);
}

TEST(ParserTest, DerivedTableDivisor) {
  auto q = ParseQuery(
      "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE color = 'blue') "
      "AS p ON s.p# = p.p#");
  ASSERT_TRUE(q.ok()) << q.error();
  ASSERT_NE(q.value()->from[0].divisor, nullptr);
  EXPECT_NE(q.value()->from[0].divisor->subquery, nullptr);
}

TEST(ParserTest, NotExistsNesting) {
  auto q = ParseQuery(
      "SELECT DISTINCT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.a = t.a AND NOT "
      "EXISTS (SELECT * FROM v WHERE v.b = u.b))");
  ASSERT_TRUE(q.ok()) << q.error();
  const SqlExprPtr& where = q.value()->where;
  ASSERT_EQ(where->kind, SqlExpr::Kind::kExists);
  EXPECT_TRUE(where->negated);
  // The inner query's WHERE holds another negated EXISTS.
  const SqlExprPtr& inner = where->subquery->where;
  ASSERT_EQ(inner->kind, SqlExpr::Kind::kAnd);
  EXPECT_EQ(inner->right->kind, SqlExpr::Kind::kExists);
  EXPECT_TRUE(inner->right->negated);
}

TEST(ParserTest, InAndNotIn) {
  auto q = ParseQuery("SELECT a FROM t WHERE a IN (SELECT x FROM u) AND b NOT IN "
                      "(SELECT y FROM v)");
  ASSERT_TRUE(q.ok()) << q.error();
  const SqlExprPtr& where = q.value()->where;
  EXPECT_EQ(where->left->kind, SqlExpr::Kind::kInSubquery);
  EXPECT_FALSE(where->left->negated);
  EXPECT_EQ(where->right->kind, SqlExpr::Kind::kInSubquery);
  EXPECT_TRUE(where->right->negated);
}

TEST(ParserTest, GroupByHavingAggregates) {
  auto q = ParseQuery(
      "SELECT g, COUNT(x) AS n, SUM(x) AS s FROM t GROUP BY g HAVING COUNT(x) >= 2");
  ASSERT_TRUE(q.ok()) << q.error();
  EXPECT_EQ(q.value()->group_by.size(), 1u);
  EXPECT_EQ(q.value()->items[1].expr->kind, SqlExpr::Kind::kAggregate);
  EXPECT_EQ(q.value()->items[1].alias, "n");
  ASSERT_NE(q.value()->having, nullptr);
}

TEST(ParserTest, CountStar) {
  auto q = ParseQuery("SELECT COUNT(*) AS n FROM t GROUP BY g");
  ASSERT_TRUE(q.ok()) << q.error();
  EXPECT_TRUE(q.value()->items[0].expr->count_star);
}

TEST(ParserTest, OperatorPrecedence) {
  auto q = ParseQuery("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(q.ok()) << q.error();
  // AND binds tighter than OR: OR(a=1, AND(b=2, c=3)).
  EXPECT_EQ(q.value()->where->kind, SqlExpr::Kind::kOr);
  EXPECT_EQ(q.value()->where->right->kind, SqlExpr::Kind::kAnd);
}

TEST(ParserTest, ParenthesizedConditions) {
  auto q = ParseQuery("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  ASSERT_TRUE(q.ok()) << q.error();
  EXPECT_EQ(q.value()->where->kind, SqlExpr::Kind::kAnd);
  EXPECT_EQ(q.value()->where->left->kind, SqlExpr::Kind::kOr);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto q = ParseQuery("SELECT a FROM t WHERE a + b * 2 = 7");
  ASSERT_TRUE(q.ok()) << q.error();
  const SqlExprPtr& lhs = q.value()->where->left;
  ASSERT_EQ(lhs->kind, SqlExpr::Kind::kArith);
  EXPECT_EQ(lhs->op, "+");
  EXPECT_EQ(lhs->right->op, "*");
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseQuery("SELECT").ok());
  EXPECT_FALSE(ParseQuery("SELECT a").ok());                       // missing FROM
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE").ok());          // dangling WHERE
  EXPECT_FALSE(ParseQuery("SELECT a FROM t DIVIDE parts").ok());   // missing BY
  EXPECT_FALSE(ParseQuery("SELECT a FROM t DIVIDE BY p").ok());    // missing ON
  EXPECT_FALSE(ParseQuery("SELECT a FROM t extra garbage !").ok());
  EXPECT_FALSE(ParseQuery("").ok());
}

TEST(ParserTest, ToStringRoundTripParses) {
  const char* queries[] = {
      "SELECT a, b FROM t WHERE a = 1",
      "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#",
      "SELECT g, COUNT(x) AS n FROM t GROUP BY g HAVING COUNT(x) >= 2",
      "SELECT DISTINCT a FROM t, u WHERE NOT EXISTS (SELECT * FROM v WHERE v.a = t.a)",
  };
  for (const char* query : queries) {
    auto first = ParseQuery(query);
    ASSERT_TRUE(first.ok()) << query << ": " << first.error();
    std::string rendered = first.value()->ToString();
    auto second = ParseQuery(rendered);
    ASSERT_TRUE(second.ok()) << rendered << ": " << second.error();
    EXPECT_EQ(second.value()->ToString(), rendered);
  }
}

}  // namespace
}  // namespace sql
}  // namespace quotient
