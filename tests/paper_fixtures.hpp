#pragma once

// The example relations printed in the paper's figures, transcribed exactly.
// Shared by the figure-reproduction tests, the law tests, and bench_figures.

#include "algebra/relation.hpp"

namespace quotient {
namespace paper {

/// Figure 1(a) / 2(a): the nine-tuple dividend r1(a, b).
inline Relation Fig1Dividend() {
  return Relation::Parse("a, b", "1,1; 1,4; 2,1; 2,2; 2,3; 2,4; 3,1; 3,3; 3,4");
}

/// Figure 1(b): divisor r2(b) = {1, 3}.
inline Relation Fig1Divisor() { return Relation::Parse("b", "1; 3"); }

/// Figure 1(c): quotient r3(a) = {2, 3}.
inline Relation Fig1Quotient() { return Relation::Parse("a", "2; 3"); }

/// Figure 2(b): great-divide divisor r2(b, c).
inline Relation Fig2Divisor() { return Relation::Parse("b, c", "1,1; 2,1; 4,1; 1,2; 3,2"); }

/// Figure 2(c): great-divide quotient r3(a, c).
inline Relation Fig2Quotient() { return Relation::Parse("a, c", "2,1; 2,2; 3,2"); }

/// Figure 4(a) / 6(a): the eleven-tuple dividend (Fig. 1's plus a = 4 group).
inline Relation Fig4Dividend() {
  return Relation::Parse("a, b", "1,1; 1,4; 2,1; 2,2; 2,3; 2,4; 3,1; 3,3; 3,4; 4,1; 4,3");
}

/// Figure 4(b) / 6(c): divisor r2(b) = {1, 3, 4}.
inline Relation Fig4Divisor() { return Relation::Parse("b", "1; 3; 4"); }

/// Figure 4(c): divisor partition r2' = {1, 3}.
inline Relation Fig4DivisorPrime() { return Relation::Parse("b", "1; 3"); }

/// Figure 4(d): divisor partition r2'' = {3, 4} (overlaps r2' on b = 3).
inline Relation Fig4DivisorPrimePrime() { return Relation::Parse("b", "3; 4"); }

/// Figure 4(e): r1 ÷ r2' = {2, 3, 4}.
inline Relation Fig4InnerQuotient() { return Relation::Parse("a", "2; 3; 4"); }

/// Figure 4(f): r1 ⋉ (r1 ÷ r2').
inline Relation Fig4SemiJoin() {
  return Relation::Parse("a, b", "2,1; 2,2; 2,3; 2,4; 3,1; 3,3; 3,4; 4,1; 4,3");
}

/// Figure 4(g): the final quotient r3 = {2, 3}.
inline Relation Fig4Quotient() { return Relation::Parse("a", "2; 3"); }

/// Figure 5(a): dividend partition r1' (Law 2 counterexample).
inline Relation Fig5R1Prime() { return Relation::Parse("a, b", "1,1; 1,2; 1,3"); }
/// Figure 5(b): dividend partition r1''.
inline Relation Fig5R1PrimePrime() { return Relation::Parse("a, b", "1,2; 1,4"); }
/// Figure 5(c): divisor r2 = {1, 4}.
inline Relation Fig5Divisor() { return Relation::Parse("b", "1; 4"); }

/// Figure 7(a): r1*(a1) = {1, 2} (Law 8).
inline Relation Fig7R1Star() { return Relation::Parse("a1", "1; 2"); }
/// Figure 7(b): r1**(a2, b).
inline Relation Fig7R1StarStar() {
  return Relation::Parse("a2, b", "1,1; 1,2; 1,3; 2,1; 2,3; 3,2; 3,3");
}
/// Figure 7(c): r2(b) = {2, 3}.
inline Relation Fig7Divisor() { return Relation::Parse("b", "2; 3"); }
/// Figure 7(e): r1** ÷ r2 = {1, 3}.
inline Relation Fig7InnerQuotient() { return Relation::Parse("a2", "1; 3"); }
/// Figure 7(f): r3(a1, a2).
inline Relation Fig7Quotient() { return Relation::Parse("a1, a2", "1,1; 1,3; 2,1; 2,3"); }

/// Figure 8(a) / 9(a): r1*(a, b1) (Law 9 / Example 3).
inline Relation Fig8R1Star() {
  return Relation::Parse("a, b1", "1,1; 1,2; 1,3; 2,2; 2,3; 3,1; 3,3; 3,4");
}
/// Figure 8(b): r1**(b2) = {1, 2}.
inline Relation Fig8R1StarStar() { return Relation::Parse("b2", "1; 2"); }
/// Figure 8(c): r2(b1, b2).
inline Relation Fig8Divisor() { return Relation::Parse("b1, b2", "1,2; 3,1; 3,2"); }
/// Figure 8(e): πb1(r2) = {1, 3}.
inline Relation Fig8DivisorB1() { return Relation::Parse("b1", "1; 3"); }
/// Figure 8(g): r3(a) = {1, 3}.
inline Relation Fig8Quotient() { return Relation::Parse("a", "1; 3"); }

/// Figure 9(b): r1**(b2) = {1, 2, 4} (Example 3).
inline Relation Fig9R1StarStar() { return Relation::Parse("b2", "1; 2; 4"); }
/// Figure 9(c): r2(b1, b2) = {(1,4), (3,4)}.
inline Relation Fig9Divisor() { return Relation::Parse("b1, b2", "1,4; 3,4"); }
/// Figure 9(d): r1* ⋈_{b1<b2} r1**.
inline Relation Fig9Joined() {
  return Relation::Parse("a, b1, b2",
                         "1,1,2; 1,1,4; 1,2,4; 1,3,4; 2,2,4; 2,3,4; 3,1,2; 3,1,4; 3,3,4");
}
/// Figure 9(e): πb1(σb1<b2(r2)) = {1, 3}.
inline Relation Fig9DivisorB1() { return Relation::Parse("b1", "1; 3"); }
/// Figure 9(f): r3(a) = {1, 3}.
inline Relation Fig9Quotient() { return Relation::Parse("a", "1; 3"); }

/// Figure 10(a): r0(a, x) (Law 11).
inline Relation Fig10R0() {
  return Relation::Parse("a, x", "1,1; 1,2; 1,3; 2,1; 2,3; 3,1; 3,3; 3,4");
}
/// Figure 10(b): r1 = aγsum(x)→b(r0) = {(1,6), (2,4), (3,8)}.
inline Relation Fig10R1() { return Relation::Parse("a, b", "1,6; 2,4; 3,8"); }
/// Figure 10(c): r2(b) = {4}.
inline Relation Fig10Divisor() { return Relation::Parse("b", "4"); }
/// Figure 10(d): r1 ⋉ r2 = {(2, 4)}.
inline Relation Fig10SemiJoin() { return Relation::Parse("a, b", "2,4"); }
/// Figure 10(e): πA(r1 ⋉ r2) = {2}.
inline Relation Fig10Quotient() { return Relation::Parse("a", "2"); }

/// Figure 11(a): r0(x, b) (Law 12).
inline Relation Fig11R0() {
  return Relation::Parse("x, b", "1,1; 1,2; 1,3; 2,1; 2,3; 3,1; 3,3; 3,4");
}
/// Figure 11(b): r1 = bγsum(x)→a(r0) = {(6,1), (1,2), (6,3), (3,4)}.
inline Relation Fig11R1() { return Relation::Parse("a, b", "6,1; 1,2; 6,3; 3,4"); }
/// Figure 11(c): r2(b) = {1, 3}.
inline Relation Fig11Divisor() { return Relation::Parse("b", "1; 3"); }
/// Figure 11(d): r1 ⋉ r2 = {(6,1), (6,3)}.
inline Relation Fig11SemiJoin() { return Relation::Parse("a, b", "6,1; 6,3"); }
/// Figure 11(e): πA(r1 ⋉ r2) = {6}.
inline Relation Fig11Quotient() { return Relation::Parse("a", "6"); }

/// The suppliers-and-parts database of Section 4 (queries Q1–Q3). The data
/// is not printed in the paper; this instance is constructed so that Q1/Q3
/// produce a nonempty, discriminating answer.
inline Relation SuppliesTable() {
  return Relation::Parse("s#, p#",
                         "1,1; 1,2; 1,3; 1,4;"   // supplier 1 supplies everything
                         "2,1; 2,3;"             // supplier 2: all blue parts
                         "3,2; 3,4;"             // supplier 3: all red parts
                         "4,1; 4,2");            // supplier 4: one of each
}

inline Relation PartsTable() {
  return Relation::FromRows("p#:int, color:string", {{V(1), V("blue")},
                                                     {V(2), V("red")},
                                                     {V(3), V("blue")},
                                                     {V(4), V("red")}});
}

/// Expected answer of Q1: each (supplier, color) where the supplier supplies
/// every part of that color.
inline Relation Q1Answer() {
  return Relation::FromRows("s#:int, color:string", {{V(1), V("blue")},
                                                     {V(1), V("red")},
                                                     {V(2), V("blue")},
                                                     {V(3), V("red")}});
}

/// Expected answer of Q2 ("suppliers that supply all blue parts").
inline Relation Q2Answer() { return Relation::Parse("s#", "1; 2"); }

}  // namespace paper
}  // namespace quotient
