// Utility layer: strings, bitmap, Status/Result, data generators.

#include <gtest/gtest.h>

#include <map>

#include "algebra/divide.hpp"
#include "algebra/generator.hpp"
#include "algebra/ops.hpp"
#include "util/bitmap.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace quotient {
namespace {

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringsTest, SplitTrim) {
  EXPECT_EQ(SplitTrim("a, b ,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitTrim("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitTrim("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, JoinAndCase) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(ToUpper("Select"), "SELECT");
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(StartsWithIgnoreCase("Select * from", "sElEcT"));
  EXPECT_FALSE(StartsWithIgnoreCase("Sel", "select"));
}

TEST(BitmapTest, SetTestCountAll) {
  Bitmap b(130);  // spans three words
  EXPECT_TRUE(b.None());
  EXPECT_FALSE(b.All());
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  for (size_t i = 0; i < 130; ++i) b.Set(i);
  EXPECT_TRUE(b.All());
  EXPECT_FALSE(b.None());
}

TEST(BitmapTest, EmptyBitmapIsVacuouslyAll) {
  Bitmap b(0);
  EXPECT_TRUE(b.All());  // matches r1 ÷ ∅ semantics in hash-division
  EXPECT_TRUE(b.None());
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  Status error = Status::Error("boom");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.message(), "boom");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  Result<int> bad = Result<int>::Error("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
  EXPECT_THROW(bad.value(), std::logic_error);
}

TEST(DataGenTest, Deterministic) {
  DataGen a(42), b(42);
  Relation r1 = a.Dividend(5, 8, 0.5);
  Relation r2 = b.Dividend(5, 8, 0.5);
  EXPECT_EQ(r1, r2);
}

TEST(DataGenTest, DividendShape) {
  DataGen gen(1);
  Relation r = gen.Dividend(10, 8, 0.5);
  EXPECT_EQ(r.schema().Names(), (std::vector<std::string>{"a", "b"}));
  for (const Tuple& t : r.tuples()) {
    EXPECT_GE(t[0].as_int(), 0);
    EXPECT_LT(t[0].as_int(), 10);
    EXPECT_LT(t[1].as_int(), 8);
  }
}

TEST(DataGenTest, DivisorSizeRespected) {
  DataGen gen(2);
  Relation r = gen.Divisor(5, 100);
  EXPECT_EQ(r.size(), 5u);
  // Domain smaller than requested size saturates.
  EXPECT_EQ(gen.Divisor(50, 3).size(), 3u);
}

TEST(DataGenTest, DividendWithHitsGuaranteesQuotients) {
  DataGen gen(3);
  Relation divisor = gen.Divisor(6, 20);
  Relation dividend = gen.DividendWithHits(20, 5, divisor, 20, 0.1);
  Relation quotient = Divide(dividend, divisor);
  EXPECT_GE(quotient.size(), 5u);
}

TEST(DataGenTest, TransactionsShape) {
  DataGen gen(4);
  Relation t = gen.Transactions(10, 6, 2, 4);
  EXPECT_EQ(t.schema().Names(), (std::vector<std::string>{"tid", "item"}));
  // Every tid has between 2 and 4 distinct items.
  std::map<int64_t, int> sizes;
  for (const Tuple& row : t.tuples()) sizes[row[0].as_int()] += 1;
  EXPECT_EQ(sizes.size(), 10u);
  for (const auto& [tid, n] : sizes) {
    EXPECT_GE(n, 2);
    EXPECT_LE(n, 4);
  }
}

TEST(SplitTest, HorizontalPartitionsCoverInput) {
  DataGen gen(5);
  Relation r = gen.Dividend(8, 8, 0.6);
  std::vector<Relation> parts = SplitHorizontal(r, 3);
  ASSERT_EQ(parts.size(), 3u);
  Relation merged = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) merged = Union(merged, parts[i]);
  EXPECT_EQ(merged, r);
}

TEST(SplitTest, ByAttributeRangeIsDisjointOnAttribute) {
  DataGen gen(6);
  Relation r = gen.Dividend(9, 8, 0.6);
  std::vector<Relation> parts = SplitByAttributeRange(r, "a", 3);
  ASSERT_EQ(parts.size(), 3u);
  for (size_t i = 0; i < parts.size(); ++i) {
    for (size_t j = i + 1; j < parts.size(); ++j) {
      if (parts[i].empty() || parts[j].empty()) continue;
      EXPECT_TRUE(
          Intersect(Project(parts[i], {"a"}), Project(parts[j], {"a"})).empty())
          << i << " vs " << j;
    }
  }
  Relation merged = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) merged = Union(merged, parts[i]);
  EXPECT_EQ(merged, r);
}

}  // namespace
}  // namespace quotient
