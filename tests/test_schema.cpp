#include "algebra/schema.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace quotient {
namespace {

TEST(SchemaTest, ParseWithTypesAndDefaults) {
  Schema s = Schema::Parse("a, b:real, name:string, tags:set");
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.attribute(0).type, ValueType::kInt);  // default
  EXPECT_EQ(s.attribute(1).type, ValueType::kReal);
  EXPECT_EQ(s.attribute(2).type, ValueType::kString);
  EXPECT_EQ(s.attribute(3).type, ValueType::kSet);
}

TEST(SchemaTest, ParseEmpty) {
  EXPECT_EQ(Schema::Parse("").size(), 0u);
  EXPECT_TRUE(Schema::Parse("  ").empty());
}

TEST(SchemaTest, RejectsDuplicatesAndBadTypes) {
  EXPECT_THROW(Schema::Parse("a, a"), SchemaError);
  EXPECT_THROW(Schema::Parse("a:frob"), SchemaError);
}

TEST(SchemaTest, IndexLookups) {
  Schema s = Schema::Parse("a, b, c");
  EXPECT_EQ(s.IndexOf("b"), std::optional<size_t>(1));
  EXPECT_FALSE(s.IndexOf("z").has_value());
  EXPECT_EQ(s.IndexOfOrThrow("c"), 2u);
  EXPECT_THROW(s.IndexOfOrThrow("z"), SchemaError);
  EXPECT_TRUE(s.Contains("a"));
  EXPECT_FALSE(s.Contains("A"));  // names are case-sensitive
}

TEST(SchemaTest, ProjectPreservesOrderOfRequest) {
  Schema s = Schema::Parse("a, b, c");
  Schema p = s.Project({"c", "a"});
  EXPECT_EQ(p.Names(), (std::vector<std::string>{"c", "a"}));
  EXPECT_THROW(s.Project({"nope"}), SchemaError);
}

TEST(SchemaTest, ConcatRejectsCollisions) {
  Schema s1 = Schema::Parse("a, b");
  Schema s2 = Schema::Parse("c");
  EXPECT_EQ(s1.Concat(s2).Names(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_THROW(s1.Concat(Schema::Parse("b")), SchemaError);
}

TEST(SchemaTest, SetOperationsOnNames) {
  Schema s1 = Schema::Parse("a, b, c");
  Schema s2 = Schema::Parse("b, c, d");
  EXPECT_EQ(s1.CommonNames(s2), (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(s1.NamesMinus(s2), (std::vector<std::string>{"a"}));
  EXPECT_EQ(s2.NamesMinus(s1), (std::vector<std::string>{"d"}));
}

TEST(SchemaTest, SameAttributeSetIsOrderFree) {
  Schema s1 = Schema::Parse("a, b");
  Schema s2 = Schema::Parse("b, a");
  EXPECT_TRUE(s1.SameAttributeSet(s2));
  EXPECT_FALSE(s1 == s2);  // ordered equality differs
  EXPECT_FALSE(s1.SameAttributeSet(Schema::Parse("a, b:real")));  // type mismatch
  EXPECT_FALSE(s1.SameAttributeSet(Schema::Parse("a, b, c")));
}

TEST(SchemaTest, ContainsAllRequiresMatchingTypes) {
  Schema s = Schema::Parse("a, b:real, c:string");
  EXPECT_TRUE(s.ContainsAll(Schema::Parse("b:real")));
  EXPECT_FALSE(s.ContainsAll(Schema::Parse("b:int")));
  EXPECT_TRUE(s.ContainsAll(Schema()));
}

TEST(SchemaTest, ToStringRendering) {
  EXPECT_EQ(Schema::Parse("a, s:string").ToString(), "(a:int, s:string)");
}

}  // namespace
}  // namespace quotient
