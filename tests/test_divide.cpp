// The division operators at the algebra level: schema rules, edge cases,
// definitional cross-checks, nest/unnest, set containment join.

#include "algebra/divide.hpp"

#include <gtest/gtest.h>

#include "util/status.hpp"

namespace quotient {
namespace {

TEST(DivisionAttributesTest, DerivesABC) {
  DivisionAttributes attrs = DivisionAttributeSets(Schema::Parse("a1, a2, b1, b2"),
                                                   Schema::Parse("b1, b2, c"), /*allow_c=*/true);
  EXPECT_EQ(attrs.a, (std::vector<std::string>{"a1", "a2"}));
  EXPECT_EQ(attrs.b, (std::vector<std::string>{"b1", "b2"}));
  EXPECT_EQ(attrs.c, (std::vector<std::string>{"c"}));
}

TEST(DivisionAttributesTest, SchemaRules) {
  // B must be nonempty.
  EXPECT_THROW(DivisionAttributeSets(Schema::Parse("a"), Schema::Parse("b"), false),
               SchemaError);
  // A must be nonempty.
  EXPECT_THROW(DivisionAttributeSets(Schema::Parse("b"), Schema::Parse("b"), false),
               SchemaError);
  // Small divide forbids extra divisor attributes.
  EXPECT_THROW(DivisionAttributeSets(Schema::Parse("a, b"), Schema::Parse("b, c"), false),
               SchemaError);
  // Shared attributes must agree on type.
  EXPECT_THROW(
      DivisionAttributeSets(Schema::Parse("a, b:int"), Schema::Parse("b:real"), false),
      SchemaError);
}

TEST(DivideTest, SingleTupleCases) {
  Relation r1 = Relation::Parse("a, b", "1,1");
  EXPECT_EQ(Divide(r1, Relation::Parse("b", "1")), Relation::Parse("a", "1"));
  EXPECT_TRUE(Divide(r1, Relation::Parse("b", "2")).empty());
}

TEST(DivideTest, EmptyDivisorIsVacuouslyTrueInAllDefinitions) {
  Relation r1 = Relation::Parse("a, b", "1,1; 2,5");
  Relation empty(Schema::Parse("b"));
  Relation all_candidates = Relation::Parse("a", "1; 2");
  EXPECT_EQ(DivideCodd(r1, empty), all_candidates);
  EXPECT_EQ(DivideHealy(r1, empty), all_candidates);
  EXPECT_EQ(DivideMaier(r1, empty), all_candidates);
  EXPECT_EQ(DivideCounting(r1, empty), all_candidates);
}

TEST(DivideTest, DividendAttributeOrderIrrelevant) {
  // Division is by attribute name; (b, a) dividend works the same.
  Relation r1 = Relation::Parse("b, a", "1,2; 3,2; 1,9");
  Relation r2 = Relation::Parse("b", "1; 3");
  EXPECT_EQ(Divide(r1, r2), Relation::Parse("a", "2"));
}

TEST(DivideTest, MultiAttributeBRequiresExactTuples) {
  Relation r1 = Relation::Parse("a, b1, b2", "1,1,10; 1,2,20; 2,1,20; 2,2,10");
  Relation r2 = Relation::Parse("b1, b2", "1,10; 2,20");
  // Group 1 has exactly (1,10) and (2,20); group 2 has the cross-matched
  // pairs (1,20), (2,10) which do NOT satisfy the divisor.
  EXPECT_EQ(Divide(r1, r2), Relation::Parse("a", "1"));
}

TEST(GreatDivideTest, DivisorGroupsAreIndependent) {
  Relation r1 = Relation::Parse("a, b", "1,1; 1,2; 2,1");
  Relation r2 = Relation::Parse("b, c", "1,100; 1,200; 2,200");
  // Group c=100 needs {1}: both groups qualify. Group c=200 needs {1,2}.
  EXPECT_EQ(GreatDivide(r1, r2), Relation::Parse("a, c", "1,100; 2,100; 1,200"));
}

TEST(GreatDivideTest, MultiAttributeC) {
  Relation r1 = Relation::Parse("a, b", "1,1; 1,2");
  Relation r2 = Relation::Parse("b, c1, c2", "1,7,8; 2,7,8; 1,9,9");
  EXPECT_EQ(GreatDivide(r1, r2), Relation::Parse("a, c1, c2", "1,7,8; 1,9,9"));
}

TEST(GreatDivideTest, QuotientAttributeOrderIsAThenC) {
  Relation r1 = Relation::Parse("a, b", "1,1");
  Relation r2 = Relation::Parse("c, b", "5,1");  // C attribute listed first
  Relation q = GreatDivide(r1, r2);
  EXPECT_EQ(q.schema().Names(), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(q, Relation::Parse("a, c", "1,5"));
}

TEST(NestUnnestTest, RoundTrip) {
  Relation flat = Relation::Parse("a, b", "1,1; 1,2; 2,3");
  Relation nested = Nest(flat, "b", "bs");
  ASSERT_EQ(nested.size(), 2u);
  EXPECT_EQ(nested.schema().attribute(1).type, ValueType::kSet);
  Relation unnested = Unnest(nested, "bs", "b");
  EXPECT_EQ(unnested, flat);
}

TEST(NestUnnestTest, UnnestDropsEmptySets) {
  Relation r = Relation::FromRows("a:int, s:set",
                                  {{V(1), Value::SetOf({})}, {V(2), Value::SetOf({V(9)})}});
  Relation flat = Unnest(r, "s", "b");
  EXPECT_EQ(flat, Relation::Parse("a, b", "2,9"));
  EXPECT_THROW(Unnest(Relation::Parse("a, b", "1,1"), "b", "x"), SchemaError);
}

TEST(SetContainmentJoinTest, BasicContainment) {
  Relation r1 = Relation::FromRows(
      "a:int, s1:set", {{V(1), Value::SetOf({V(1), V(2), V(3)})},
                        {V(2), Value::SetOf({V(1)})}});
  Relation r2 = Relation::FromRows(
      "s2:set, c:int", {{Value::SetOf({V(1), V(2)}), V(10)},
                        {Value::SetOf({}), V(20)}});  // the empty set ⊆ everything
  Relation j = SetContainmentJoin(r1, "s1", r2, "s2");
  EXPECT_EQ(j.size(), 3u);  // (1 ⊇ {1,2}), (1 ⊇ ∅), (2 ⊇ ∅)
  EXPECT_THROW(SetContainmentJoin(Relation::Parse("a, b", "1,1"), "b", r2, "s2"),
               SchemaError);
}

}  // namespace
}  // namespace quotient
