// The Session front door (api/session.hpp): catalog management, compiled
// execution through the rewrite laws onto the parallel executor, prepared
// statements with '?' binding, the LRU plan cache, pull-based cursors, the
// oracle fallback, and EXPLAIN / EXPLAIN ANALYZE.

#include <gtest/gtest.h>

#include "api/session.hpp"
#include "exec/pipeline.hpp"
#include "exec/scheduler.hpp"
#include "paper_fixtures.hpp"
#include "sql/interp.hpp"

namespace quotient {
namespace {

const char* kQ1 =
    "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#";
const char* kQ2 =
    "SELECT s# FROM supplies AS s DIVIDE BY ("
    "SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";
const char* kQ3 =
    "SELECT DISTINCT s#, color "
    "FROM supplies AS s1, parts AS p1 "
    "WHERE NOT EXISTS ("
    "  SELECT * FROM parts AS p2 "
    "  WHERE p2.color = p1.color AND NOT EXISTS ("
    "    SELECT * FROM supplies AS s2 "
    "    WHERE s2.p# = p2.p# AND s2.s# = s1.s#))";

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(session_.CreateTable("supplies", paper::SuppliesTable()).ok());
    ASSERT_TRUE(session_.CreateTable("parts", paper::PartsTable()).ok());
  }

  std::string ExplainText(const Relation& rows) {
    std::string out;
    for (const Tuple& t : rows.tuples()) out += t[1].ToString() + "\n";
    return out;
  }

  Session session_;
};

TEST_F(SessionTest, DivideByCompilesThroughRewriteEngineAndExecutor) {
  Result<QueryResult> result = session_.Execute(kQ1);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().rows, paper::Q1Answer());
  EXPECT_TRUE(result.value().compile.compiled);
  EXPECT_TRUE(result.value().compile.fallback_reason.empty());
  // The lowered plan carries a first-class GreatDivide operator.
  EXPECT_NE(result.value().compile.lowered->ToString().find("GreatDivide"),
            std::string::npos);
  // And the physical engine (not the interpreter) produced the rows.
  EXPECT_NE(result.value().profile.explain.find("Scan"), std::string::npos);
}

TEST_F(SessionTest, SmallDivideWithDerivedDivisor) {
  Result<QueryResult> result = session_.Execute(kQ2);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().rows, paper::Q2Answer());
  EXPECT_TRUE(result.value().compile.compiled);
  EXPECT_NE(result.value().compile.lowered->ToString().find("Divide"), std::string::npos);
}

TEST_F(SessionTest, Q3FallsBackToOracleWithRecordedReason) {
  Result<QueryResult> result = session_.Execute(kQ3);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().rows, paper::Q1Answer());
  EXPECT_FALSE(result.value().compile.compiled);
  EXPECT_FALSE(result.value().compile.fallback_reason.empty());
  EXPECT_EQ(result.value().profile.fallback_reason,
            result.value().compile.fallback_reason);
}

TEST_F(SessionTest, PlanCacheHitsOnNormalizedSql) {
  Result<QueryResult> first = session_.Execute(kQ1);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().profile.plan_cache_hit);
  // Same query, different whitespace and keyword case.
  std::string variant =
      "select   s#, color\nFROM supplies as s divide by parts AS p ON s.p# = p.p#";
  Result<QueryResult> second = session_.Execute(variant);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_TRUE(second.value().profile.plan_cache_hit);
  EXPECT_EQ(second.value().rows, paper::Q1Answer());
  EXPECT_EQ(session_.plan_cache_size(), 1u);
}

TEST_F(SessionTest, DdlInvalidatesThePlanCache) {
  ASSERT_TRUE(session_.Execute(kQ1).ok());
  EXPECT_EQ(session_.plan_cache_size(), 1u);
  // New data must be visible to the "same" statement.
  ASSERT_TRUE(session_.InsertRows("supplies", {{V(9), V(1)}, {V(9), V(3)}}).ok());
  EXPECT_EQ(session_.plan_cache_size(), 0u);
  Result<QueryResult> result = session_.Execute(kQ1);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().profile.plan_cache_hit);
  // Supplier 9 now supplies all blue parts {1, 3}.
  EXPECT_TRUE(result.value().rows.Contains({V(9), V("blue")}));
}

TEST_F(SessionTest, LruEvictsOldestBeyondCapacity) {
  SessionOptions options;
  options.plan_cache_capacity = 2;
  Session session(options);
  ASSERT_TRUE(session.CreateTable("t", Relation::Parse("a, b", "1,10; 2,20")).ok());
  ASSERT_TRUE(session.Execute("SELECT a FROM t").ok());
  ASSERT_TRUE(session.Execute("SELECT b FROM t").ok());
  ASSERT_TRUE(session.Execute("SELECT a, b FROM t").ok());
  EXPECT_EQ(session.plan_cache_size(), 2u);
  // The first statement was evicted; re-running misses.
  Result<QueryResult> again = session.Execute("SELECT a FROM t");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value().profile.plan_cache_hit);
}

TEST_F(SessionTest, PreparedStatementCompilesOnceAcrossDistinctBindings) {
  // The regression this guards: the plan cache used to key on (normalized
  // SQL + parameter values), so every distinct binding re-ran parse →
  // lower → RewriteEngine and flooded the LRU. The statement must compile
  // exactly once, with every binding a cache hit on that one entry.
  ASSERT_TRUE(session_.Execute(kQ1).ok());  // an unrelated hot plan
  size_t baseline_compiles = session_.plan_cache_stats().compiles;

  Result<PreparedStatement> prepared =
      session_.Prepare("SELECT s# FROM supplies WHERE p# = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.error();
  size_t cache_size = session_.plan_cache_size();
  for (int64_t i = 0; i < 10000; ++i) {
    Result<QueryResult> result = prepared.value().Execute({V(i)});
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_TRUE(result.value().profile.plan_cache_hit) << "binding " << i;
    EXPECT_TRUE(result.value().compile.compiled);
  }
  // 10k distinct bindings: one compile (at Prepare), no LRU flooding.
  EXPECT_EQ(session_.plan_cache_stats().compiles, baseline_compiles + 1);
  EXPECT_EQ(session_.plan_cache_size(), cache_size);

  // ... and the binding storm did not evict the unrelated hot plan.
  Result<QueryResult> hot = session_.Execute(kQ1);
  ASSERT_TRUE(hot.ok());
  EXPECT_TRUE(hot.value().profile.plan_cache_hit);
}

TEST_F(SessionTest, PreparedBindingsProduceBindingSpecificResults) {
  // Sharing one cached plan across bindings must not leak one binding's
  // values into another's results (the plan carries '?' slots; each
  // execution binds its own).
  Result<PreparedStatement> prepared =
      session_.Prepare("SELECT s# FROM supplies WHERE p# = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.error();
  for (int round = 0; round < 2; ++round) {
    for (int64_t p = 1; p <= 4; ++p) {
      Result<QueryResult> got = prepared.value().Execute({V(p)});
      ASSERT_TRUE(got.ok()) << got.error();
      Result<Relation> oracle = sql::ExecuteSql(
          "SELECT s# FROM supplies WHERE p# = " + std::to_string(p), session_.catalog());
      ASSERT_TRUE(oracle.ok());
      EXPECT_EQ(got.value().rows, oracle.value()) << "p# = " << p;
      // The cached plans carry the statement's '?' as a first-class
      // parameter slot (this is what makes compile-once possible); the
      // executed plan is fully bound.
      EXPECT_EQ(CountPlanParameters(got.value().compile.lowered), 1u);
      EXPECT_EQ(CountPlanParameters(got.value().compile.optimized), 1u);
    }
  }
}

TEST_F(SessionTest, PreparedStatementSurvivesDdl) {
  Result<PreparedStatement> prepared =
      session_.Prepare("SELECT s# FROM supplies WHERE p# = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.error();
  Result<QueryResult> before = prepared.value().Execute({V(9)});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().rows.size(), 0u);
  // DDL on the referenced table: the next execution recompiles against the
  // new snapshot (once) instead of serving the stale plan or failing.
  ASSERT_TRUE(session_.InsertRows("supplies", {{V(7), V(9)}}).ok());
  Result<QueryResult> after = prepared.value().Execute({V(9)});
  ASSERT_TRUE(after.ok()) << after.error();
  EXPECT_EQ(after.value().rows, Relation::FromRows("s#", {{V(7)}}));
  EXPECT_FALSE(after.value().profile.plan_cache_hit);  // recompiled once
  Result<QueryResult> again = prepared.value().Execute({V(9)});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().profile.plan_cache_hit);
}

TEST_F(SessionTest, DdlInvalidatesOnlyPlansTouchingTheTable) {
  ASSERT_TRUE(session_.CreateTable("other", Relation::Parse("a, b", "1,10; 2,20")).ok());
  ASSERT_TRUE(session_.Execute(kQ1).ok());                    // supplies + parts
  ASSERT_TRUE(session_.Execute("SELECT a FROM other").ok());  // other only
  EXPECT_EQ(session_.plan_cache_size(), 2u);

  // DDL on `supplies` must evict the division plan but keep `other`'s.
  ASSERT_TRUE(session_.InsertRows("supplies", {{V(9), V(1)}}).ok());
  Result<QueryResult> unrelated = session_.Execute("SELECT a FROM other");
  ASSERT_TRUE(unrelated.ok());
  EXPECT_TRUE(unrelated.value().profile.plan_cache_hit);
  Result<QueryResult> touched = session_.Execute(kQ1);
  ASSERT_TRUE(touched.ok());
  EXPECT_FALSE(touched.value().profile.plan_cache_hit);

  // Metadata DDL invalidates the declared tables' plans, too: key/FK
  // declarations feed Laws 11/12, so plans over those tables must recompile.
  ASSERT_TRUE(session_.Execute(kQ1).ok());
  ASSERT_TRUE(session_.DeclareKey("parts", {"p#"}).ok());
  Result<QueryResult> redeclared = session_.Execute(kQ1);
  ASSERT_TRUE(redeclared.ok());
  EXPECT_FALSE(redeclared.value().profile.plan_cache_hit);
  Result<QueryResult> still_cached = session_.Execute("SELECT a FROM other");
  ASSERT_TRUE(still_cached.ok());
  EXPECT_TRUE(still_cached.value().profile.plan_cache_hit);
}

TEST_F(SessionTest, CursorPinsItsSnapshotAcrossDdl) {
  ScopedBatchRows batch_rows(2);
  Result<ResultCursor> cursor = session_.Query("SELECT * FROM supplies");
  ASSERT_TRUE(cursor.ok()) << cursor.error();
  Tuple first;
  ASSERT_TRUE(cursor.value().Next(&first));
  // Replace the table mid-stream: the cursor pinned its snapshot and keeps
  // streaming the data as of its open; the next statement sees the new data.
  ASSERT_TRUE(session_.CreateTable("supplies", Relation::Parse("s#, p#", "77,1")).ok());
  std::vector<Tuple> rows = {first};
  Tuple t;
  while (cursor.value().Next(&t)) rows.push_back(t);
  EXPECT_TRUE(cursor.value().status().ok()) << cursor.value().status().message();
  EXPECT_EQ(Relation(cursor.value().schema(), rows), paper::SuppliesTable());
  Result<QueryResult> fresh = session_.Execute("SELECT * FROM supplies");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().rows, Relation::Parse("s#, p#", "77,1"));
}

TEST_F(SessionTest, CursorMidStreamErrorSetsStatusAndClosesDeterministically) {
  // Fault injection: the predicate divides by zero on the row a=3, after
  // two rows have already streamed out. The error must surface through
  // status() — never an exception — and the cursor must close for good.
  ASSERT_TRUE(session_.CreateTable("f", Relation::Parse("a, b", "1,10; 2,20; 3,30")).ok());
  ScopedBatchRows batch_rows(1);  // one row per batch: the failure is mid-stream
  Result<ResultCursor> cursor = session_.Query("SELECT a, b FROM f WHERE b / (a - 3) <= 0");
  ASSERT_TRUE(cursor.ok()) << cursor.error();
  EXPECT_TRUE(cursor.value().compile().compiled);

  Tuple t;
  size_t produced = 0;
  while (cursor.value().Next(&t)) ++produced;
  EXPECT_EQ(produced, 2u);  // a=1 and a=2 stream before the poison row
  EXPECT_FALSE(cursor.value().status().ok());
  EXPECT_NE(cursor.value().status().message().find("division by zero"), std::string::npos)
      << cursor.value().status().message();
  EXPECT_TRUE(cursor.value().done());
  // The cursor is closed: every further pull reports end of stream and the
  // first error sticks.
  EXPECT_FALSE(cursor.value().Next(&t));
  EXPECT_EQ(cursor.value().NextBatch(), nullptr);
  EXPECT_NE(cursor.value().status().message().find("division by zero"), std::string::npos);

  // Drain() on a failing cursor returns the rows before the failure and
  // reports the error through status().
  Result<ResultCursor> draining =
      session_.Query("SELECT a, b FROM f WHERE b / (a - 3) <= 0");
  ASSERT_TRUE(draining.ok());
  Relation partial = draining.value().Drain();
  EXPECT_EQ(partial.size(), 2u);
  EXPECT_FALSE(draining.value().status().ok());
}

TEST_F(SessionTest, SessionsOverOneDatabaseShareCacheAndSnapshots) {
  auto db = std::make_shared<Database>();
  Session first(db);
  Session second(db);
  ASSERT_TRUE(first.CreateTable("nums", Relation::Parse("a, b", "1,10; 2,20")).ok());
  // DDL from one session is visible to the other at its next statement.
  Result<QueryResult> seen = second.Execute("SELECT a FROM nums");
  ASSERT_TRUE(seen.ok()) << seen.error();
  EXPECT_FALSE(seen.value().profile.plan_cache_hit);
  // ... and the compiled plan is shared: the first session hits on it.
  Result<QueryResult> shared = first.Execute("SELECT a FROM nums");
  ASSERT_TRUE(shared.ok());
  EXPECT_TRUE(shared.value().profile.plan_cache_hit);
  EXPECT_EQ(db->plan_cache_size(), 1u);
  EXPECT_EQ(db->version(), 1u);
}

TEST_F(SessionTest, PreparedStatementBindsParameters) {
  Result<PreparedStatement> prepared = session_.Prepare(
      "SELECT s# FROM supplies AS s DIVIDE BY ("
      "SELECT p# FROM parts WHERE color = ?) AS p ON s.p# = p.p#");
  ASSERT_TRUE(prepared.ok()) << prepared.error();
  EXPECT_EQ(prepared.value().parameter_count(), 1u);

  Result<QueryResult> blue = prepared.value().Execute({Value::Str("blue")});
  ASSERT_TRUE(blue.ok()) << blue.error();
  EXPECT_EQ(blue.value().rows, paper::Q2Answer());
  EXPECT_TRUE(blue.value().compile.compiled);

  Result<QueryResult> red = prepared.value().Execute({Value::Str("red")});
  ASSERT_TRUE(red.ok()) << red.error();
  EXPECT_NE(red.value().rows, blue.value().rows);

  // Same binding again: served from the plan cache.
  Result<QueryResult> blue_again = prepared.value().Execute({Value::Str("blue")});
  ASSERT_TRUE(blue_again.ok());
  EXPECT_TRUE(blue_again.value().profile.plan_cache_hit);
}

TEST_F(SessionTest, ParameterCountMismatchIsAnError) {
  Result<PreparedStatement> prepared =
      session_.Prepare("SELECT s# FROM supplies WHERE p# = ?");
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(prepared.value().Execute({}).ok());
  EXPECT_FALSE(prepared.value().Execute({V(1), V(2)}).ok());
  EXPECT_TRUE(prepared.value().Execute({V(1)}).ok());
}

TEST_F(SessionTest, UnboundParameterInExecuteIsAnError) {
  Result<QueryResult> result = session_.Execute("SELECT s# FROM supplies WHERE p# = ?");
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error().find("Prepare"), std::string::npos);
}

TEST_F(SessionTest, BadInputNeverThrows) {
  EXPECT_FALSE(session_.Execute("").ok());
  EXPECT_FALSE(session_.Execute("SELEKT 1").ok());
  EXPECT_FALSE(session_.Execute("SELECT FROM parts").ok());
  EXPECT_FALSE(session_.Execute("SELECT x FROM nosuch").ok());
  EXPECT_FALSE(session_.Execute("SELECT nosuchcol FROM parts").ok());
  EXPECT_FALSE(session_.Execute(
      "SELECT s# FROM supplies AS s DIVIDE BY parts AS p ON s.p# < p.p#").ok());
  EXPECT_FALSE(session_.Query("SELECT (").ok());
  EXPECT_FALSE(session_.Prepare("EXPLAIN").ok());
}

TEST_F(SessionTest, CursorRowGranularity) {
  Result<ResultCursor> cursor = session_.Query(kQ1);
  ASSERT_TRUE(cursor.ok()) << cursor.error();
  std::vector<Tuple> rows;
  Tuple t;
  while (cursor.value().Next(&t)) rows.push_back(t);
  EXPECT_TRUE(cursor.value().status().ok()) << cursor.value().status().message();
  EXPECT_TRUE(cursor.value().done());
  EXPECT_EQ(Relation(cursor.value().schema(), rows), paper::Q1Answer());
}

TEST_F(SessionTest, CursorBatchGranularityAndMixedPulls) {
  ScopedBatchRows batch_rows(2);  // force several batches
  Result<ResultCursor> cursor = session_.Query("SELECT * FROM supplies");
  ASSERT_TRUE(cursor.ok()) << cursor.error();
  // One row first, then batches: no row is lost or duplicated.
  Tuple first;
  ASSERT_TRUE(cursor.value().Next(&first));
  std::vector<Tuple> rows = {first};
  while (const Batch* batch = cursor.value().NextBatch()) {
    for (size_t i = 0; i < batch->ActiveRows(); ++i) {
      Tuple t;
      batch->ToTuple(batch->RowAt(i), &t);
      rows.push_back(std::move(t));
    }
  }
  EXPECT_EQ(Relation(cursor.value().schema(), rows), paper::SuppliesTable());
}

TEST_F(SessionTest, CursorDrainMatchesExecute) {
  Result<QueryResult> executed = session_.Execute(kQ2);
  ASSERT_TRUE(executed.ok());
  Result<ResultCursor> cursor = session_.Query(kQ2);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor.value().Drain(), executed.value().rows);
}

TEST_F(SessionTest, CursorWorksOnOracleFallback) {
  Result<ResultCursor> cursor = session_.Query(kQ3);
  ASSERT_TRUE(cursor.ok()) << cursor.error();
  EXPECT_FALSE(cursor.value().compile().compiled);
  EXPECT_EQ(cursor.value().Drain(), paper::Q1Answer());
}

TEST_F(SessionTest, ExplainShowsAppliedLaws) {
  // σ over a great divide: Laws 14/15 push the selection through.
  std::string query = std::string(kQ1) + " WHERE color = 'red'";
  Result<QueryResult> result = session_.Execute("EXPLAIN " + query);
  ASSERT_TRUE(result.ok()) << result.error();
  std::string text = ExplainText(result.value().rows);
  EXPECT_NE(text.find("path: compiled"), std::string::npos) << text;
  EXPECT_NE(text.find("rewrites applied:"), std::string::npos) << text;
  EXPECT_NE(text.find("law"), std::string::npos) << text;
  EXPECT_NE(text.find("logical plan"), std::string::npos) << text;
  // EXPLAIN does not execute: no operator profile section.
  EXPECT_EQ(text.find("operator profile:"), std::string::npos) << text;
}

TEST_F(SessionTest, ExplainAnalyzeShowsTheFullCompileAndRunStory) {
  ScopedSerialRowThreshold no_serial(0);
  ScopedExecThreads threads(4);
  std::string query = std::string(kQ1) + " WHERE color = 'red'";
  ASSERT_TRUE(session_.Execute(query).ok());  // warm the cache
  Result<QueryResult> result = session_.Execute("EXPLAIN ANALYZE " + query);
  ASSERT_TRUE(result.ok()) << result.error();
  std::string text = ExplainText(result.value().rows);
  EXPECT_NE(text.find("plan cache: hit"), std::string::npos) << text;
  EXPECT_NE(text.find("law"), std::string::npos) << text;
  EXPECT_NE(text.find("dop="), std::string::npos) << text;
  EXPECT_NE(text.find("operator profile:"), std::string::npos) << text;
  EXPECT_NE(text.find("pipelines:"), std::string::npos) << text;
  EXPECT_GT(result.value().profile.rewrite_steps, 0u);
  EXPECT_TRUE(result.value().profile.plan_cache_hit);
}

TEST_F(SessionTest, ExplainAnalyzeOnFallbackNamesTheOracle) {
  Result<QueryResult> result = session_.Execute(std::string("EXPLAIN ANALYZE ") + kQ3);
  ASSERT_TRUE(result.ok()) << result.error();
  std::string text = ExplainText(result.value().rows);
  EXPECT_NE(text.find("oracle interpreter"), std::string::npos) << text;
  EXPECT_NE(text.find("fallback"), std::string::npos) << text;
}

TEST_F(SessionTest, CsvRoundTripThroughTheCatalog) {
  Status status = session_.LoadCsv("colors", "name:string,code:int\nblue,1\nred,2\n");
  ASSERT_TRUE(status.ok()) << status.message();
  Result<QueryResult> result = session_.Execute("SELECT name FROM colors WHERE code = 2");
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().rows, Relation::FromRows("name:string", {{V("red")}}));
}

TEST_F(SessionTest, InsertRowsRejectsUnknownTableAndBadTypes) {
  EXPECT_FALSE(session_.InsertRows("nosuch", {{V(1)}}).ok());
  EXPECT_FALSE(session_.InsertRows("parts", {{V(1), V(2)}}).ok());  // color must be string
  EXPECT_FALSE(session_.CreateTable("bad", "a:int, a:int").ok());
}

TEST_F(SessionTest, DeclaredMetadataReachesTheRewriteRules) {
  // Law 12 needs a foreign key; just prove the declaration round-trips.
  ASSERT_TRUE(session_.DeclareKey("parts", {"p#"}).ok());
  ASSERT_TRUE(session_.DeclareForeignKey("supplies", {"p#"}, "parts").ok());
  EXPECT_TRUE(session_.catalog().ImpliesKey("parts", {"p#"}));
  EXPECT_TRUE(session_.catalog().HasForeignKey("supplies", {"p#"}, "parts"));
}

TEST_F(SessionTest, CompiledMatchesOracleAcrossThreadCounts) {
  for (size_t threads : {1u, 8u}) {
    ScopedExecThreads scoped(threads);
    ScopedSerialRowThreshold no_serial(0);
    Result<QueryResult> result = session_.Execute(kQ1);
    ASSERT_TRUE(result.ok()) << result.error();
    EXPECT_EQ(result.value().rows, paper::Q1Answer()) << "threads " << threads;
  }
}

TEST_F(SessionTest, GroupByHavingThroughTheCompiledPath) {
  Result<QueryResult> result = session_.Execute(
      "SELECT color, COUNT(p#) AS n FROM parts GROUP BY color HAVING COUNT(p#) >= 2");
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().compile.compiled) << result.value().compile.fallback_reason;
  EXPECT_EQ(result.value().rows,
            Relation::FromRows("color:string, n:int", {{V("blue"), V(2)}, {V("red"), V(2)}}));
}

TEST_F(SessionTest, HavingOnlyAggregateCompiles) {
  // The HAVING aggregate does not appear in the select list; the lowering
  // adds a hidden agg$ column and projects it away.
  Result<QueryResult> result = session_.Execute(
      "SELECT color FROM parts GROUP BY color HAVING COUNT(p#) >= 2");
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().compile.compiled) << result.value().compile.fallback_reason;
  EXPECT_EQ(result.value().rows,
            Relation::FromRows("color:string", {{V("blue")}, {V("red")}}));
}

TEST_F(SessionTest, InSubqueryCompilesToSemiJoin) {
  Result<QueryResult> result = session_.Execute(
      "SELECT DISTINCT s# FROM supplies WHERE p# IN ("
      "SELECT p# FROM parts WHERE color = 'blue')");
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().compile.compiled) << result.value().compile.fallback_reason;
  EXPECT_NE(result.value().compile.lowered->ToString().find("SemiJoin"), std::string::npos);
  EXPECT_EQ(result.value().rows, Relation::Parse("s#", "1; 2; 4"));
}

TEST_F(SessionTest, CorrelatedExistsCompilesToSemiJoin) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", Relation::Parse("a, b", "1,10; 2,20; 3,30")).ok());
  ASSERT_TRUE(session.CreateTable("u", Relation::Parse("a, c", "1,100; 3,300")).ok());
  Result<QueryResult> result = session.Execute(
      "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a)");
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_TRUE(result.value().compile.compiled) << result.value().compile.fallback_reason;
  EXPECT_NE(result.value().compile.lowered->ToString().find("SemiJoin"), std::string::npos);
  EXPECT_EQ(result.value().rows, Relation::Parse("a", "1; 3"));

  Result<QueryResult> anti = session.Execute(
      "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.a = t.a)");
  ASSERT_TRUE(anti.ok()) << anti.error();
  EXPECT_TRUE(anti.value().compile.compiled) << anti.value().compile.fallback_reason;
  EXPECT_NE(anti.value().compile.lowered->ToString().find("AntiJoin"), std::string::npos);
  EXPECT_EQ(anti.value().rows, Relation::Parse("a", "2"));
}

}  // namespace
}  // namespace quotient
