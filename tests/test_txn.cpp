// Multi-statement transaction tests (docs/transactions.md): BEGIN/COMMIT/
// ROLLBACK through SQL and the Session API, snapshot-pinned reads with
// read-your-own-writes overlays, first-committer-wins validation (including
// the multi-session contention acceptance scenario run at 1 and 8 threads),
// fault injection at the commit sites, DML autocommit, and the ORDER BY /
// LIMIT result shaping that rides the same statement layer.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algebra/generator.hpp"
#include "api/database.hpp"
#include "api/session.hpp"
#include "exec/pipeline.hpp"
#include "exec/query_context.hpp"
#include "exec/scheduler.hpp"
#include "util/status.hpp"

namespace quotient {
namespace {

Value V(int64_t v) { return Value::Int(v); }

constexpr const char* kDivideSql =
    "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b";

/// Disarms an injector on scope exit, so a failing assertion can't leak an
/// armed site into later tests.
struct ScopedDisarm {
  explicit ScopedDisarm(FaultInjector* injector) : injector_(injector) {}
  ~ScopedDisarm() { injector_->Disarm(); }
  FaultInjector* injector_;
};

/// A shared database with table t(a) = {1,2,3}.
std::shared_ptr<Database> MakeDb() {
  auto db = std::make_shared<Database>();
  Session setup(db);
  EXPECT_TRUE(setup.CreateTable("t", Relation::Parse("a", "1; 2; 3")).ok());
  return db;
}

// ---------------------------------------------------------------------------
// TxnBasics: statement plumbing, lifecycle errors, read-your-own-writes.
// ---------------------------------------------------------------------------

TEST(TxnBasicsTest, SqlControlStatementsAcknowledge) {
  Session session(MakeDb());
  Result<QueryResult> begin = session.Execute("BEGIN");
  ASSERT_TRUE(begin.ok()) << begin.error();
  EXPECT_EQ(begin.value().rows, Relation::FromRows("status:string", {{Value::Str("BEGIN")}}));
  EXPECT_TRUE(session.in_transaction());

  Result<QueryResult> commit = session.Execute("COMMIT");
  ASSERT_TRUE(commit.ok()) << commit.error();
  EXPECT_EQ(commit.value().rows,
            Relation::FromRows("status:string", {{Value::Str("COMMIT")}}));
  EXPECT_FALSE(session.in_transaction());

  // The noise words parse too, and a read-only transaction always commits.
  ASSERT_TRUE(session.Execute("BEGIN TRANSACTION").ok());
  ASSERT_TRUE(session.Execute("SELECT a FROM t").ok());
  ASSERT_TRUE(session.Execute("COMMIT WORK").ok());

  ASSERT_TRUE(session.Execute("begin work").ok());
  Result<QueryResult> rollback = session.Execute("ROLLBACK");
  ASSERT_TRUE(rollback.ok()) << rollback.error();
  EXPECT_EQ(rollback.value().rows,
            Relation::FromRows("status:string", {{Value::Str("ROLLBACK")}}));
}

TEST(TxnBasicsTest, LifecycleErrors) {
  Session session(MakeDb());
  EXPECT_FALSE(session.Execute("COMMIT").ok());
  EXPECT_FALSE(session.Execute("ROLLBACK").ok());
  EXPECT_FALSE(session.Commit().ok());
  EXPECT_FALSE(session.Rollback().ok());

  ASSERT_TRUE(session.Begin().ok());
  Result<QueryResult> nested = session.Execute("BEGIN");
  ASSERT_FALSE(nested.ok());
  EXPECT_NE(nested.error().find("already in a transaction"), std::string::npos);
  ASSERT_TRUE(session.Rollback().ok());
}

TEST(TxnBasicsTest, ReadYourOwnWritesInvisibleToOthersUntilCommit) {
  auto db = MakeDb();
  Session writer(db);
  Session other(db);

  ASSERT_TRUE(writer.Execute("BEGIN").ok());
  Result<QueryResult> insert = writer.Execute("INSERT INTO t VALUES (10), (11)");
  ASSERT_TRUE(insert.ok()) << insert.error();
  EXPECT_EQ(insert.value().rows, Relation::FromRows("rows_affected:int", {{V(2)}}));

  // The writer reads through its overlay; the other session reads committed
  // state only.
  Result<QueryResult> mine = writer.Execute("SELECT a FROM t");
  ASSERT_TRUE(mine.ok()) << mine.error();
  EXPECT_EQ(mine.value().rows, Relation::Parse("a", "1; 2; 3; 10; 11"));
  Result<QueryResult> theirs = other.Execute("SELECT a FROM t");
  ASSERT_TRUE(theirs.ok()) << theirs.error();
  EXPECT_EQ(theirs.value().rows, Relation::Parse("a", "1; 2; 3"));

  ASSERT_TRUE(writer.Execute("COMMIT").ok());
  theirs = other.Execute("SELECT a FROM t");
  ASSERT_TRUE(theirs.ok()) << theirs.error();
  EXPECT_EQ(theirs.value().rows, Relation::Parse("a", "1; 2; 3; 10; 11"));
}

TEST(TxnBasicsTest, RollbackDiscardsBufferedWrites) {
  Session session(MakeDb());
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (42)").ok());
  ASSERT_TRUE(session.Execute("DELETE FROM t WHERE a = 1").ok());
  ASSERT_TRUE(session.Execute("ROLLBACK").ok());
  Result<QueryResult> after = session.Execute("SELECT a FROM t");
  ASSERT_TRUE(after.ok()) << after.error();
  EXPECT_EQ(after.value().rows, Relation::Parse("a", "1; 2; 3"));
}

TEST(TxnBasicsTest, DdlAndPrepareAreRejectedInsideOrForTransactions) {
  Session session(MakeDb());
  ASSERT_TRUE(session.Begin().ok());
  Status ddl = session.CreateTable("u", "x:int");
  ASSERT_FALSE(ddl.ok());
  EXPECT_NE(ddl.message().find("DDL is not allowed inside a transaction"), std::string::npos);
  EXPECT_FALSE(session.LoadCsv("u", "x\n1\n").ok());
  EXPECT_FALSE(session.DeclareKey("t", {"a"}).ok());

  // InsertRows routes into the transaction instead of erroring.
  ASSERT_TRUE(session.InsertRows("t", {{V(50)}}).ok());
  Result<QueryResult> mine = session.Execute("SELECT a FROM t");
  ASSERT_TRUE(mine.ok());
  EXPECT_EQ(mine.value().rows.size(), 4u);
  ASSERT_TRUE(session.Rollback().ok());
  EXPECT_EQ(session.Execute("SELECT a FROM t").value().rows.size(), 3u);

  EXPECT_FALSE(session.Prepare("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(session.Prepare("BEGIN").ok());
  Result<QueryResult> explain = session.Execute("EXPLAIN INSERT INTO t VALUES (1)");
  ASSERT_FALSE(explain.ok());
  EXPECT_NE(explain.error().find("EXPLAIN supports SELECT"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TxnDml: INSERT / DELETE semantics, in and out of transactions.
// ---------------------------------------------------------------------------

TEST(TxnDmlTest, AutocommitInsertAndDelete) {
  Session session(MakeDb());
  Result<QueryResult> insert = session.Execute("INSERT INTO t VALUES (4), (5)");
  ASSERT_TRUE(insert.ok()) << insert.error();
  EXPECT_EQ(insert.value().rows, Relation::FromRows("rows_affected:int", {{V(2)}}));

  // Set semantics: re-inserting existing rows adds nothing.
  insert = session.Execute("INSERT INTO t VALUES (4)");
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert.value().rows, Relation::FromRows("rows_affected:int", {{V(0)}}));

  Result<QueryResult> del = session.Execute("DELETE FROM t WHERE a > 3");
  ASSERT_TRUE(del.ok()) << del.error();
  EXPECT_EQ(del.value().rows, Relation::FromRows("rows_affected:int", {{V(2)}}));
  EXPECT_EQ(session.Execute("SELECT a FROM t").value().rows, Relation::Parse("a", "1; 2; 3"));

  del = session.Execute("DELETE FROM t");  // unconditional: empties the table
  ASSERT_TRUE(del.ok()) << del.error();
  EXPECT_EQ(del.value().rows, Relation::FromRows("rows_affected:int", {{V(3)}}));
  EXPECT_EQ(session.Execute("SELECT a FROM t").value().rows.size(), 0u);

  // Another session observes the committed autocommit writes.
  Session other(session.database());
  EXPECT_EQ(other.Execute("SELECT a FROM t").value().rows.size(), 0u);
}

TEST(TxnDmlTest, InsertValidatesArityAndTypes) {
  Session session;
  ASSERT_TRUE(session.CreateTable("p", "a:int, name:string").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO p VALUES (1, 'red')").ok());

  Result<QueryResult> bad = session.Execute("INSERT INTO p VALUES (1)");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("has 1 value(s)"), std::string::npos);

  bad = session.Execute("INSERT INTO p VALUES ('red', 1)");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("expected int"), std::string::npos);

  bad = session.Execute("INSERT INTO nope VALUES (1)");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("unknown table 'nope'"), std::string::npos);

  bad = session.Execute("DELETE FROM nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("unknown table 'nope'"), std::string::npos);

  // Ints coerce into real columns.
  ASSERT_TRUE(session.CreateTable("r", "x:real").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO r VALUES (2)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO r VALUES (-1.5)").ok());
  EXPECT_EQ(session.Execute("SELECT x FROM r").value().rows.size(), 2u);
}

TEST(TxnDmlTest, DeleteInsideTransactionSeesOwnInserts) {
  Session session(MakeDb());
  ASSERT_TRUE(session.Begin().ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (7), (8)").ok());
  Result<QueryResult> del = session.Execute("DELETE FROM t WHERE a >= 7");
  ASSERT_TRUE(del.ok()) << del.error();
  // The overlay rows it just wrote are deletable — read-your-own-writes.
  EXPECT_EQ(del.value().rows, Relation::FromRows("rows_affected:int", {{V(2)}}));
  ASSERT_TRUE(session.Commit().ok());
  EXPECT_EQ(session.Execute("SELECT a FROM t").value().rows, Relation::Parse("a", "1; 2; 3"));
}

// ---------------------------------------------------------------------------
// TxnIsolation: snapshot pinning across concurrent commits.
// ---------------------------------------------------------------------------

TEST(TxnIsolationTest, StatementsPinTheBeginSnapshot) {
  auto db = MakeDb();
  Session reader(db);
  Session writer(db);

  ASSERT_TRUE(reader.Execute("BEGIN").ok());
  EXPECT_EQ(reader.Execute("SELECT a FROM t").value().rows.size(), 3u);

  ASSERT_TRUE(writer.Execute("INSERT INTO t VALUES (100)").ok());

  // Still the BEGIN-time view, even after the other session's commit.
  EXPECT_EQ(reader.Execute("SELECT a FROM t").value().rows.size(), 3u);
  ASSERT_TRUE(reader.Execute("COMMIT").ok());  // read-only: always succeeds
  EXPECT_EQ(reader.Execute("SELECT a FROM t").value().rows.size(), 4u);
}

TEST(TxnIsolationTest, CursorPinsItsSnapshotAcrossAConcurrentCommit) {
  ScopedBatchRows batches(1);  // stream row-at-a-time so the commit interleaves
  auto db = MakeDb();
  Session reader(db);
  Session writer(db);

  Result<ResultCursor> opened = reader.Query("SELECT a FROM t");
  ASSERT_TRUE(opened.ok()) << opened.error();
  ResultCursor cursor = std::move(opened).value();
  Tuple row;
  ASSERT_TRUE(cursor.Next(&row));  // the stream is live

  // A whole transaction commits into t mid-stream.
  ASSERT_TRUE(writer.Execute("BEGIN").ok());
  ASSERT_TRUE(writer.Execute("INSERT INTO t VALUES (100), (101)").ok());
  ASSERT_TRUE(writer.Execute("COMMIT").ok());

  // The cursor still streams the data as of its open: exactly the 3 old
  // rows, no torn reads, no new rows.
  std::vector<Tuple> rest;
  while (cursor.Next(&row)) rest.push_back(row);
  EXPECT_TRUE(cursor.status().ok()) << cursor.status().message();
  EXPECT_EQ(rest.size(), 2u);

  // A fresh statement sees the committed state.
  EXPECT_EQ(reader.Execute("SELECT a FROM t").value().rows.size(), 5u);
}

TEST(TxnIsolationTest, FirstCommitterWinsSecondGetsConflict) {
  auto db = MakeDb();
  Session a(db);
  Session b(db);

  ASSERT_TRUE(a.Execute("BEGIN").ok());
  ASSERT_TRUE(b.Execute("BEGIN").ok());
  ASSERT_TRUE(a.Execute("INSERT INTO t VALUES (10)").ok());
  ASSERT_TRUE(b.Execute("INSERT INTO t VALUES (20)").ok());

  ASSERT_TRUE(a.Execute("COMMIT").ok());  // first committer wins
  Result<QueryResult> lost = b.Execute("COMMIT");
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kConflict);
  EXPECT_NE(lost.error().find("write-write conflict on table 't'"), std::string::npos);
  EXPECT_FALSE(b.in_transaction());  // the failed commit rolled back cleanly

  // The loser's retry converges: re-read, re-apply, commit.
  ASSERT_TRUE(b.Execute("BEGIN").ok());
  ASSERT_TRUE(b.Execute("INSERT INTO t VALUES (20)").ok());
  ASSERT_TRUE(b.Execute("COMMIT").ok());
  EXPECT_EQ(b.Execute("SELECT a FROM t").value().rows,
            Relation::Parse("a", "1; 2; 3; 10; 20"));

  TransactionStats stats = db->transaction_stats();
  EXPECT_EQ(stats.conflicts, 1u);
}

TEST(TxnIsolationTest, DdlOnAWrittenTableConflictsTheCommit) {
  auto db = MakeDb();
  Session txn(db);
  Session ddl(db);

  ASSERT_TRUE(txn.Execute("BEGIN").ok());
  ASSERT_TRUE(txn.Execute("INSERT INTO t VALUES (10)").ok());
  // DDL replaces t wholesale — the transaction's base version is gone.
  ASSERT_TRUE(ddl.CreateTable("t", Relation::Parse("a", "7")).ok());

  Result<QueryResult> lost = txn.Execute("COMMIT");
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.status().code(), StatusCode::kConflict);
  EXPECT_EQ(txn.Execute("SELECT a FROM t").value().rows, Relation::Parse("a", "7"));
}

TEST(TxnIsolationTest, DisjointWriteSetsBothCommit) {
  auto db = std::make_shared<Database>();
  Session setup(db);
  ASSERT_TRUE(setup.CreateTable("t1", Relation::Parse("a", "1")).ok());
  ASSERT_TRUE(setup.CreateTable("t2", Relation::Parse("a", "1")).ok());

  Session a(db);
  Session b(db);
  ASSERT_TRUE(a.Execute("BEGIN").ok());
  ASSERT_TRUE(b.Execute("BEGIN").ok());
  ASSERT_TRUE(a.Execute("INSERT INTO t1 VALUES (2)").ok());
  ASSERT_TRUE(b.Execute("INSERT INTO t2 VALUES (2)").ok());
  EXPECT_TRUE(a.Execute("COMMIT").ok());
  EXPECT_TRUE(b.Execute("COMMIT").ok());  // no overlap, no conflict
  EXPECT_EQ(setup.Execute("SELECT a FROM t1").value().rows.size(), 2u);
  EXPECT_EQ(setup.Execute("SELECT a FROM t2").value().rows.size(), 2u);
}

// ---------------------------------------------------------------------------
// TxnConflict: the multi-session contention acceptance scenario. N writer
// sessions run BEGIN → read → INSERT → COMMIT rounds with retry-on-conflict
// while reader sessions stream DIVIDE BY results from pinned snapshots. The
// whole scenario runs at 1 and at 8 execution threads and must land in the
// same final state: the serial union of every writer's rows.
// ---------------------------------------------------------------------------

struct ScenarioOutcome {
  Relation final_table{Schema::Parse("w:int, v:int")};
  Relation divide_result{Schema::Parse("a:int")};
  size_t reader_iterations = 0;
  std::vector<std::string> errors;
  uint64_t begun = 0, committed = 0, conflicts = 0;
  uint64_t versions_published = 0;
};

ScenarioOutcome RunConflictScenario(size_t writer_count, size_t rounds) {
  ScenarioOutcome out;
  auto db = std::make_shared<Database>();
  Session setup(db);
  EXPECT_TRUE(setup.CreateTable("t", "w:int, v:int").ok());
  DataGen gen(7);
  Relation divisor = gen.Divisor(8, /*domain=*/64);
  Relation dividend =
      gen.DividendWithHits(64, 9, divisor, /*domain=*/64, /*density=*/0.5);
  EXPECT_TRUE(setup.CreateTable("r1", std::move(dividend)).ok());
  EXPECT_TRUE(setup.CreateTable("r2", std::move(divisor)).ok());
  const uint64_t version_base = db->version();
  Result<QueryResult> expected = setup.Execute(kDivideSql);
  EXPECT_TRUE(expected.ok()) << expected.error();
  out.divide_result = expected.value().rows;

  std::mutex error_mutex;
  auto report = [&](const std::string& message) {
    std::lock_guard<std::mutex> lock(error_mutex);
    out.errors.push_back(message);
  };

  std::atomic<bool> stop{false};
  std::atomic<size_t> reader_iterations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      Session session(db);
      while (!stop.load(std::memory_order_relaxed)) {
        Result<QueryResult> result = session.Execute(kDivideSql);
        if (!result.ok()) {
          report("reader failed: " + result.error());
          return;
        }
        if (result.value().rows != out.divide_result) {
          report("reader saw a different divide result");
          return;
        }
        reader_iterations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  for (size_t w = 0; w < writer_count; ++w) {
    writers.emplace_back([&, w] {
      Session session(db);
      for (size_t k = 0; k < rounds; ++k) {
        bool committed = false;
        for (int attempt = 0; attempt < 200 && !committed; ++attempt) {
          Result<QueryResult> begin = session.Execute("BEGIN");
          if (!begin.ok()) {
            report("BEGIN failed: " + begin.error());
            return;
          }
          // Read inside the transaction (pins the BEGIN snapshot).
          Result<QueryResult> read = session.Execute("SELECT w FROM t");
          if (!read.ok()) {
            report("in-txn read failed: " + read.error());
            return;
          }
          std::string insert = "INSERT INTO t VALUES (" + std::to_string(w) + ", " +
                               std::to_string(k) + ")";
          Result<QueryResult> written = session.Execute(insert);
          if (!written.ok()) {
            report("INSERT failed: " + written.error());
            return;
          }
          Result<QueryResult> commit = session.Execute("COMMIT");
          if (commit.ok()) {
            committed = true;
          } else if (commit.status().code() != StatusCode::kConflict) {
            report("COMMIT failed with non-conflict: " + commit.error());
            return;
          }
          // kConflict: first committer won this round; re-run the whole
          // transaction against a fresh snapshot.
        }
        if (!committed) {
          report("writer retry loop did not converge");
          return;
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true);
  for (std::thread& t : readers) t.join();

  Result<QueryResult> final_rows = setup.Execute("SELECT w, v FROM t");
  EXPECT_TRUE(final_rows.ok()) << final_rows.error();
  out.final_table = final_rows.value().rows;
  out.reader_iterations = reader_iterations.load();
  TransactionStats stats = db->transaction_stats();
  out.begun = stats.begun;
  out.committed = stats.committed;
  out.conflicts = stats.conflicts;
  out.versions_published = db->version() - version_base;
  return out;
}

TEST(TxnConflictTest, ContendedCommitsSerializeIdenticallyAtOneAndEightThreads) {
  constexpr size_t kWriters = 4;
  constexpr size_t kRounds = 6;

  // The serial answer: every (w, k) pair exactly once.
  std::vector<Tuple> expected_rows;
  for (size_t w = 0; w < kWriters; ++w) {
    for (size_t k = 0; k < kRounds; ++k) {
      expected_rows.push_back({V(static_cast<int64_t>(w)), V(static_cast<int64_t>(k))});
    }
  }
  Relation expected(Schema::Parse("w:int, v:int"), expected_rows);

  ScenarioOutcome serial, parallel;
  {
    ScopedExecThreads threads(1);
    serial = RunConflictScenario(kWriters, kRounds);
  }
  {
    ScopedExecThreads threads(8);
    parallel = RunConflictScenario(kWriters, kRounds);
  }

  for (const ScenarioOutcome* outcome : {&serial, &parallel}) {
    for (const std::string& error : outcome->errors) ADD_FAILURE() << error;
    // Final state is the serial union — every round's write landed exactly
    // once, regardless of how the commits raced.
    EXPECT_EQ(outcome->final_table, expected);
    // Exactly the first committer per version won: every successful commit
    // published exactly one snapshot version, and every BEGIN ended in
    // either a successful commit or a counted conflict.
    EXPECT_EQ(outcome->committed, kWriters * kRounds);
    EXPECT_EQ(outcome->versions_published, outcome->committed);
    EXPECT_EQ(outcome->begun, outcome->committed + outcome->conflicts);
    // Concurrent DIVIDE BY readers on pinned snapshots never blocked and
    // never saw a torn result.
    EXPECT_GT(outcome->reader_iterations, 0u);
  }
  // Bit-identical across thread counts.
  EXPECT_EQ(serial.final_table, parallel.final_table);
  EXPECT_EQ(serial.divide_result, parallel.divide_result);
}

// ---------------------------------------------------------------------------
// TxnFaultSites: deterministic injection at the commit sites, swept at 1, 2,
// and 8 workers. A fault at either site must roll the transaction back
// cleanly (typed error, nothing published, session reusable) and a disarmed
// retry must succeed.
// ---------------------------------------------------------------------------

TEST(TxnFaultSitesTest, CommitSitesUnwindCleanlyAtEveryWorkerCount) {
  for (const char* site : {"txn.validate", "txn.publish"}) {
    const std::string expected = std::string("injected fault at ") + site;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE(std::string(site) + " at threads=" + std::to_string(threads));
      ScopedExecThreads scoped_threads(threads);

      FaultInjector injector;
      ScopedDisarm disarm(&injector);
      SessionOptions options;
      options.fault_injector = &injector;
      auto db = MakeDb();
      Session session(db, options);

      ASSERT_TRUE(session.Execute("BEGIN").ok());
      ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (99)").ok());
      injector.Arm(site, 1);
      Result<QueryResult> commit = session.Execute("COMMIT");
      ASSERT_FALSE(commit.ok());
      EXPECT_EQ(commit.status().message(), expected);
      EXPECT_FALSE(session.in_transaction());  // rolled back, session usable
      EXPECT_EQ(session.Execute("SELECT a FROM t").value().rows,
                Relation::Parse("a", "1; 2; 3"));  // nothing published

      // Disarmed retry of the whole transaction converges.
      injector.Disarm();
      ASSERT_TRUE(session.Execute("BEGIN").ok());
      ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (99)").ok());
      ASSERT_TRUE(session.Execute("COMMIT").ok());
      EXPECT_EQ(session.Execute("SELECT a FROM t").value().rows,
                Relation::Parse("a", "1; 2; 3; 99"));
    }
  }
}

// ---------------------------------------------------------------------------
// TxnStats: the Database::Stats() aggregate.
// ---------------------------------------------------------------------------

TEST(TxnStatsTest, StatsAggregatesEverySubsystem) {
  auto db = MakeDb();
  Session session(db);

  ASSERT_TRUE(session.Execute("SELECT a FROM t").ok());
  ASSERT_TRUE(session.Execute("SELECT a FROM t").ok());  // plan-cache hit

  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (4)").ok());
  ASSERT_TRUE(session.Execute("COMMIT").ok());
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("ROLLBACK").ok());

  DatabaseStats stats = db->Stats();
  EXPECT_EQ(stats.snapshot_version, db->version());
  EXPECT_GE(stats.plan_cache.hits, 1u);
  EXPECT_GE(stats.plan_cache.compiles, 1u);
  EXPECT_EQ(stats.transactions.begun, 2u);
  EXPECT_EQ(stats.transactions.committed, 1u);
  EXPECT_EQ(stats.transactions.conflicts, 0u);
  EXPECT_EQ(stats.transactions.rolled_back, 1u);
}

// ---------------------------------------------------------------------------
// TxnOrderLimit: ORDER BY / LIMIT statement shaping (the satellite riding
// the same statement layer: parse → post-pass sort/truncate, cursor-side
// cut on the streaming path).
// ---------------------------------------------------------------------------

TEST(TxnOrderLimitTest, OrderByWithLimitShapesTheResult) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", Relation::Parse("a, b", "1,10; 2,20; 3,30; 4,40")).ok());

  Result<QueryResult> top = session.Execute("SELECT a, b FROM t ORDER BY b DESC LIMIT 2");
  ASSERT_TRUE(top.ok()) << top.error();
  ASSERT_EQ(top.value().rows.size(), 2u);
  // ApplyOrderLimit keeps the sorted order inside the canonical relation:
  // the kept SET is {(4,40), (3,30)}.
  EXPECT_EQ(top.value().rows, Relation::Parse("a, b", "3,30; 4,40"));

  Result<QueryResult> asc = session.Execute("SELECT a FROM t ORDER BY a ASC LIMIT 1");
  ASSERT_TRUE(asc.ok()) << asc.error();
  EXPECT_EQ(asc.value().rows, Relation::Parse("a", "1"));

  // LIMIT 0 and over-large LIMIT.
  EXPECT_EQ(session.Execute("SELECT a FROM t LIMIT 0").value().rows.size(), 0u);
  EXPECT_EQ(session.Execute("SELECT a FROM t LIMIT 99").value().rows.size(), 4u);

  // LIMIT without ORDER BY truncates the canonical (sorted, duplicate-free)
  // result deterministically.
  EXPECT_EQ(session.Execute("SELECT a FROM t LIMIT 2").value().rows,
            Relation::Parse("a", "1; 2"));
}

TEST(TxnOrderLimitTest, CursorsApplyTheLimitCut) {
  ScopedBatchRows batches(1);  // many small batches: the cut spans pulls
  Session session;
  ASSERT_TRUE(session.CreateTable("t", Relation::Parse("a", "1; 2; 3; 4; 5")).ok());

  Result<ResultCursor> opened = session.Query("SELECT a FROM t LIMIT 3");
  ASSERT_TRUE(opened.ok()) << opened.error();
  Relation drained = std::move(opened).value().Drain();
  EXPECT_EQ(drained.size(), 3u);

  // ORDER BY through the cursor API materializes first: the sort picks
  // WHICH rows survive the LIMIT (the top 2 by a DESC), and the result
  // then streams in the engine's canonical set order like every relation.
  opened = session.Query("SELECT a FROM t ORDER BY a DESC LIMIT 2");
  ASSERT_TRUE(opened.ok()) << opened.error();
  ResultCursor cursor = std::move(opened).value();
  EXPECT_EQ(cursor.Drain(), Relation::Parse("a", "4; 5"));
  EXPECT_TRUE(cursor.status().ok());

  // LIMIT 0 closes without ever opening the plan.
  opened = session.Query("SELECT a FROM t LIMIT 0");
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_EQ(std::move(opened).value().Drain().size(), 0u);
}

TEST(TxnOrderLimitTest, OrderLimitErrorsAndParams) {
  Session session;
  ASSERT_TRUE(session.CreateTable("t", Relation::Parse("a", "1; 2; 3")).ok());

  Result<QueryResult> bad = session.Execute("SELECT a FROM t ORDER BY nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("is not in the result"), std::string::npos);

  EXPECT_FALSE(session.Execute("SELECT a FROM t LIMIT -1").ok());
  EXPECT_FALSE(session.Execute("SELECT a FROM t LIMIT x").ok());

  // Prepared statements carry the shaping through every binding.
  Result<PreparedStatement> prepared =
      session.Prepare("SELECT a FROM t WHERE a >= ? ORDER BY a DESC LIMIT 2");
  ASSERT_TRUE(prepared.ok()) << prepared.error();
  Result<QueryResult> bound = prepared.value().Execute({V(1)});
  ASSERT_TRUE(bound.ok()) << bound.error();
  EXPECT_EQ(bound.value().rows, Relation::Parse("a", "2; 3"));
  bound = prepared.value().Execute({V(3)});
  ASSERT_TRUE(bound.ok()) << bound.error();
  EXPECT_EQ(bound.value().rows, Relation::Parse("a", "3"));
}

TEST(TxnOrderLimitTest, OrderLimitInsideATransactionSeesTheOverlay) {
  Session session(MakeDb());
  ASSERT_TRUE(session.Execute("BEGIN").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (10)").ok());
  Result<QueryResult> top = session.Execute("SELECT a FROM t ORDER BY a DESC LIMIT 1");
  ASSERT_TRUE(top.ok()) << top.error();
  EXPECT_EQ(top.value().rows, Relation::Parse("a", "10"));
  ASSERT_TRUE(session.Execute("ROLLBACK").ok());
  top = session.Execute("SELECT a FROM t ORDER BY a DESC LIMIT 1");
  ASSERT_TRUE(top.ok()) << top.error();
  EXPECT_EQ(top.value().rows, Relation::Parse("a", "3"));
}

}  // namespace
}  // namespace quotient
