// Query lifecycle governor tests (docs/robustness.md): cross-thread
// cancellation, deadlines, memory budgets, scoped-knob unwinding, and the
// deterministic fault-injection sweep over every registered site.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "algebra/generator.hpp"
#include "api/session.hpp"
#include "exec/batch.hpp"
#include "exec/pipeline.hpp"
#include "exec/query_context.hpp"
#include "exec/scheduler.hpp"
#include "util/status.hpp"

namespace quotient {
namespace {

constexpr const char* kDivideSql =
    "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b";

/// A session loaded with a division workload big enough that its execution
/// spans many morsel batches (so polls actually interleave with work).
Session MakeDivisionSession(SessionOptions options, size_t groups,
                            size_t divisor_size) {
  DataGen gen(7);
  Relation divisor = gen.Divisor(divisor_size, /*domain=*/64);
  Relation dividend = gen.DividendWithHits(groups, groups / 8 + 1, divisor,
                                           /*domain=*/64, /*density=*/0.5);
  Session session(options);
  EXPECT_TRUE(session.CreateTable("r1", std::move(dividend)).ok());
  EXPECT_TRUE(session.CreateTable("r2", std::move(divisor)).ok());
  return session;
}

/// Disarms an injector on scope exit, so a failing assertion can't leak an
/// armed site into later tests.
struct ScopedDisarm {
  explicit ScopedDisarm(FaultInjector* injector) : injector_(injector) {}
  ~ScopedDisarm() { injector_->Disarm(); }
  FaultInjector* injector_;
};

// ---------------------------------------------------------------------------
// GovernorTest: cancellation, deadlines, budgets, reporting, guards.
// ---------------------------------------------------------------------------

TEST(GovernorTest, CancelFromAnotherThreadDeliversCancelledAndPoolSurvives) {
  ScopedExecThreads threads(8);
  ScopedSerialRowThreshold no_serial(0);  // force the parallel morsel path
  ScopedMorselRows morsels(64);
  ScopedBatchRows batches(64);
  Session session = MakeDivisionSession({}, /*groups=*/4000, /*divisor=*/48);

  // Spin Cancel() from another thread: the statement's context registers
  // before execution starts, so some Cancel() call lands while the 8-thread
  // drain is in flight and the next batch-granularity poll unwinds it.
  std::atomic<bool> done{false};
  std::thread canceller([&] {
    while (!done.load(std::memory_order_relaxed)) session.Cancel();
  });
  Result<QueryResult> cancelled = session.Execute(kDivideSql);
  done.store(true);
  canceller.join();

  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled);

  // The pool stopped admitting the cancelled region's morsels but stayed
  // reusable: the same statement, uncancelled, runs to completion.
  Result<QueryResult> again = session.Execute(kDivideSql);
  ASSERT_TRUE(again.ok()) << again.error();
  EXPECT_GT(again.value().rows.size(), 0u);
}

TEST(GovernorTest, CancelUnwindsAnOpenCursorToTerminalState) {
  ScopedBatchRows batches(1);
  Session session = MakeDivisionSession({}, /*groups=*/64, /*divisor=*/8);

  Result<ResultCursor> opened = session.Query(kDivideSql);
  ASSERT_TRUE(opened.ok()) << opened.error();
  ResultCursor cursor = std::move(opened).value();

  Tuple row;
  ASSERT_TRUE(cursor.Next(&row));  // stream is live
  session.Cancel();

  // The next pull observes the trip: end-of-stream, typed status, and the
  // cursor is terminally closed (further pulls stay at end-of-stream).
  EXPECT_FALSE(cursor.Next(&row));
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(cursor.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(cursor.Next(&row));
  EXPECT_EQ(cursor.NextBatch(), nullptr);
  EXPECT_TRUE(cursor.Profile().cancelled);

  // Cancel() only targets in-flight statements: a new one is unaffected.
  Result<QueryResult> fresh = session.Execute(kDivideSql);
  ASSERT_TRUE(fresh.ok()) << fresh.error();
}

TEST(GovernorTest, DeadlineTripsAsDeadlineExceeded) {
  ScopedBatchRows batches(16);
  SessionOptions options;
  options.deadline = std::chrono::milliseconds(1);
  Session session =
      MakeDivisionSession(options, /*groups=*/20000, /*divisor=*/48);

  Result<QueryResult> result = session.Execute(kDivideSql);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(GovernorTest, MemoryBudgetTripsAsResourceExhausted) {
  SessionOptions options;
  options.memory_budget_bytes = 4096;  // far below the build-state footprint
  Session session =
      MakeDivisionSession(options, /*groups=*/4000, /*divisor=*/48);

  Result<QueryResult> result = session.Execute(kDivideSql);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorTest, ProfileAndExplainAnalyzeReportGovernorAccounting) {
  Session session = MakeDivisionSession({}, /*groups=*/512, /*divisor=*/16);

  Result<QueryResult> result = session.Execute(kDivideSql);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_GT(result.value().profile.rows_charged_bytes, 0u);
  EXPECT_FALSE(result.value().profile.cancelled);
  EXPECT_TRUE(result.value().profile.fault_site.empty());

  Result<QueryResult> analyzed =
      session.Execute(std::string("EXPLAIN ANALYZE ") + kDivideSql);
  ASSERT_TRUE(analyzed.ok()) << analyzed.error();
  bool found = false;
  for (const Tuple& row : analyzed.value().rows.tuples()) {
    for (const Value& value : row) {
      if (value.type() == ValueType::kString &&
          value.as_str().find("governor: charged=") != std::string::npos) {
        found = true;
      }
    }
  }
  EXPECT_TRUE(found) << "EXPLAIN ANALYZE output lacks a governor line";
}

TEST(GovernorTest, ScopedKnobGuardsRestoreOnUnwind) {
  const size_t threads0 = GetExecThreads();
  const size_t morsel0 = GetMorselRows();
  const size_t serial0 = GetSerialRowThreshold();
  try {
    ScopedExecThreads threads(threads0 + 3);
    ScopedMorselRows morsels(morsel0 + 7);
    ScopedSerialRowThreshold serial(serial0 + 11);
    EXPECT_EQ(GetExecThreads(), threads0 + 3);
    EXPECT_EQ(GetMorselRows(), morsel0 + 7);
    EXPECT_EQ(GetSerialRowThreshold(), serial0 + 11);
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(GetExecThreads(), threads0);
  EXPECT_EQ(GetMorselRows(), morsel0);
  EXPECT_EQ(GetSerialRowThreshold(), serial0);
}

TEST(GovernorTest, LoadCsvFileFailureNamesPathAndReason) {
  Session session;
  const std::string path = "/nonexistent-quotient-dir/missing.csv";
  Status status = session.LoadCsvFile("t", path);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find(path), std::string::npos) << status.message();
  EXPECT_NE(status.message().find("No such file"), std::string::npos)
      << status.message();
}

// ---------------------------------------------------------------------------
// FaultInjectionTest: deterministic injection at every registered site.
// ---------------------------------------------------------------------------

TEST(FaultInjectionTest, NthHitSemantics) {
  FaultInjector injector;
  injector.Arm("pipeline.drain", 3);
  EXPECT_FALSE(injector.Hit("pipeline.drain"));
  EXPECT_FALSE(injector.Hit("pipeline.drain"));
  EXPECT_TRUE(injector.Hit("pipeline.drain"));   // the armed nth hit
  EXPECT_FALSE(injector.Hit("pipeline.drain"));  // fires once, not forever
  EXPECT_FALSE(injector.Hit("pipeline.merge"));  // other sites unaffected

  injector.Arm("pipeline.drain", 1);  // re-arming resets the hit counter
  EXPECT_TRUE(injector.Hit("pipeline.drain"));

  injector.Arm("pipeline.drain", 1);
  injector.Disarm();
  EXPECT_FALSE(injector.Hit("pipeline.drain"));
}

// Sweep every registered site at 1, 2, and 8 workers: an injected fault must
// unwind to the exact deterministic message (never a crash, hang, or partial
// result), and after disarming, the same session and pool must run the same
// statements to completion — proof that no trip point leaks pool or session
// state. Sites off this workload's path simply never fire (the statement
// succeeds), which the assertions below allow.
TEST(FaultInjectionTest, SweepAllSitesUnwindsCleanAcrossThreadCounts) {
  ScopedSerialRowThreshold no_serial(0);  // exercise the parallel sinks
  ScopedMorselRows morsels(32);
  ScopedBatchRows batches(32);

  DataGen gen(11);
  Relation divisor = gen.Divisor(48, /*domain=*/64);
  Relation dividend = gen.DividendWithHits(512, 65, divisor, /*domain=*/64,
                                           /*density=*/0.5);
  // Sites guaranteed on this statement's path at EVERY thread count; the
  // sweep additionally asserts these fire with statuses identical across
  // thread counts (determinism is what makes fault reproductions portable).
  const std::vector<std::string> always_fires = {
      "divide.bitmap_fill", "sink.codec_append", "sink.probe_append",
      "cursor.pull", "catalog.encoding"};

  for (const std::string& site : FaultInjector::KnownSites()) {
    const std::string expected = "injected fault at " + site;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE(site + " at threads=" + std::to_string(threads));
      ScopedExecThreads scoped_threads(threads);

      FaultInjector injector;
      ScopedDisarm disarm(&injector);
      SessionOptions options;
      options.fault_injector = &injector;
      Session session(options);
      ASSERT_TRUE(session.CreateTable("r1", dividend).ok());
      ASSERT_TRUE(session.CreateTable("r2", divisor).ok());

      injector.Arm(site, 1);
      Result<QueryResult> result = session.Execute(kDivideSql);
      if (!result.ok()) {
        EXPECT_EQ(result.status().message(), expected);
      }
      bool fired = !result.ok();

      // The cursor path must unwind just as cleanly.
      injector.Arm(site, 1);
      Result<ResultCursor> opened = session.Query(kDivideSql);
      if (opened.ok()) {
        ResultCursor cursor = std::move(opened).value();
        Relation drained = cursor.Drain();
        if (!cursor.status().ok()) {
          EXPECT_EQ(cursor.status().message(), expected);
          fired = true;
        }
      } else {
        EXPECT_EQ(opened.status().message(), expected);
        fired = true;
      }

      bool must_fire = false;
      for (const std::string& required : always_fires) {
        must_fire = must_fire || required == site;
      }
      if (must_fire) EXPECT_TRUE(fired) << "armed site never consulted";

      // No leaked pool or session state: disarmed, everything succeeds.
      injector.Disarm();
      Result<QueryResult> again = session.Execute(kDivideSql);
      ASSERT_TRUE(again.ok()) << again.error();
      EXPECT_GT(again.value().rows.size(), 0u);
    }
  }
}

TEST(FaultInjectionTest, CursorPullFaultDrainsPreFailureRows) {
  ScopedBatchRows batches(1);  // one row per pull, so the 3rd pull = 3rd row
  FaultInjector injector;
  ScopedDisarm disarm(&injector);
  SessionOptions options;
  options.fault_injector = &injector;
  Session session(options);
  ASSERT_TRUE(
      session.CreateTable("t", Relation::Parse("a", "1; 2; 3; 4; 5")).ok());

  injector.Arm("cursor.pull", 3);
  Result<ResultCursor> opened = session.Query("SELECT a FROM t");
  ASSERT_TRUE(opened.ok()) << opened.error();
  ResultCursor cursor = std::move(opened).value();
  Relation partial = cursor.Drain();
  EXPECT_EQ(partial.size(), 2u);  // rows produced before the failing pull
  EXPECT_TRUE(cursor.done());
  EXPECT_EQ(cursor.status().message(), "injected fault at cursor.pull");
  EXPECT_EQ(cursor.Profile().fault_site, "cursor.pull");

  injector.Disarm();
  Result<ResultCursor> retry = session.Query("SELECT a FROM t");
  ASSERT_TRUE(retry.ok()) << retry.error();
  ResultCursor cursor2 = std::move(retry).value();
  EXPECT_EQ(cursor2.Drain().size(), 5u);
  EXPECT_TRUE(cursor2.status().ok()) << cursor2.status().message();
}

TEST(FaultInjectionTest, SnapshotPublishFaultLeavesPreviousCatalogLive) {
  // DDL runs outside a governed statement, so the publish site is consulted
  // through the process-global injector.
  FaultInjector* global = FaultInjector::Global();
  ScopedDisarm disarm(global);

  Session session;
  ASSERT_TRUE(session.CreateTable("t", Relation::Parse("a", "1; 2")).ok());

  global->Arm("snapshot.publish", 1);
  Status ddl = session.CreateTable("u", Relation::Parse("a", "3"));
  global->Disarm();
  ASSERT_FALSE(ddl.ok());
  EXPECT_EQ(ddl.message(), "injected fault at snapshot.publish");

  // Publication is atomic: the failed DDL left the previous snapshot live —
  // 't' still answers, 'u' was never published.
  Result<QueryResult> t = session.Execute("SELECT a FROM t");
  ASSERT_TRUE(t.ok()) << t.error();
  EXPECT_EQ(t.value().rows.size(), 2u);
  EXPECT_FALSE(session.Execute("SELECT a FROM u").ok());

  // And the same DDL succeeds once disarmed.
  ASSERT_TRUE(session.CreateTable("u", Relation::Parse("a", "3")).ok());
  EXPECT_TRUE(session.Execute("SELECT a FROM u").ok());
}

TEST(FaultInjectionTest, AggregateSinkSiteFiresOnGroupByStatements) {
  ScopedSerialRowThreshold no_serial(0);
  ScopedMorselRows morsels(32);
  ScopedBatchRows batches(32);
  for (size_t threads : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ScopedExecThreads scoped_threads(threads);
    FaultInjector injector;
    ScopedDisarm disarm(&injector);
    SessionOptions options;
    options.fault_injector = &injector;
    Session session = [&] {
      DataGen gen(13);
      Relation rows = gen.Dividend(256, /*domain=*/64, /*density=*/0.5);
      Session s(options);
      EXPECT_TRUE(s.CreateTable("r", std::move(rows)).ok());
      return s;
    }();

    injector.Arm("sink.aggregate", 1);
    Result<QueryResult> result =
        session.Execute("SELECT a, COUNT(*) FROM r GROUP BY a");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().message(), "injected fault at sink.aggregate");

    injector.Disarm();
    Result<QueryResult> again =
        session.Execute("SELECT a, COUNT(*) FROM r GROUP BY a");
    ASSERT_TRUE(again.ok()) << again.error();
  }
}

}  // namespace
}  // namespace quotient
