// Differential suite: every statement runs through Session (compiled onto
// the batched/parallel executor, threads {1, 8}) AND through the oracle
// interpreter (sql::ExecuteQueryOracle via ExecuteSql); results and
// error/ok status must agree exactly. Division queries additionally must
// compile (no oracle fallback) and, when a selection sits on the division,
// show Law rewrites in the trace.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebra/generator.hpp"
#include "api/session.hpp"
#include "exec/pipeline.hpp"
#include "exec/scheduler.hpp"
#include "paper_fixtures.hpp"
#include "sql/interp.hpp"

namespace quotient {
namespace {

/// Builds a Session whose catalog mirrors `catalog`.
Session MakeSession(const Catalog& catalog) {
  Session session;
  for (const std::string& name : catalog.Names()) {
    EXPECT_TRUE(session.CreateTable(name, catalog.Get(name)).ok());
  }
  return session;
}

/// Runs `query` on the oracle and through the Session at threads {1, 8};
/// asserts identical ok/error status and identical relations. Returns the
/// session's compile story (from the threads=1 run) for extra assertions.
CompileInfo ExpectSessionMatchesOracle(const Catalog& catalog, const std::string& query) {
  Result<Relation> oracle = sql::ExecuteSql(query, catalog);
  CompileInfo info;
  for (size_t threads : {1u, 8u}) {
    ScopedExecThreads scoped_threads(threads);
    ScopedSerialRowThreshold no_serial(0);  // force the parallel drains
    Session session = MakeSession(catalog);
    Result<QueryResult> compiled = session.Execute(query);
    EXPECT_EQ(compiled.ok(), oracle.ok())
        << query << "\noracle: " << (oracle.ok() ? "ok" : oracle.error())
        << "\nsession: " << (compiled.ok() ? "ok" : compiled.error());
    if (oracle.ok() && compiled.ok()) {
      EXPECT_EQ(compiled.value().rows, oracle.value())
          << query << "\nthreads " << threads
          << (compiled.value().compile.compiled
                  ? "\n(compiled)"
                  : "\n(fallback: " + compiled.value().compile.fallback_reason + ")");
      if (threads == 1) info = compiled.value().compile;
    }
  }
  return info;
}

// ---------------------------------------------------------------------------
// The full fixed corpus: every query exercised by the SQL tests, plus the
// lowering's new territory (EXISTS/IN as semi-joins, HAVING-only
// aggregates, SELECT * naming).
// ---------------------------------------------------------------------------

TEST(SessionDifferential, PaperCorpus) {
  Catalog catalog;
  catalog.Put("supplies", paper::SuppliesTable());
  catalog.Put("parts", paper::PartsTable());
  const char* queries[] = {
      "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#",
      "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE color = 'blue') "
      "AS p ON s.p# = p.p#",
      "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 WHERE NOT EXISTS ("
      "SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND NOT EXISTS ("
      "SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s#))",
      "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# "
      "WHERE color = 'red'",
      "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE color = 'blue') "
      "AS p ON s.p# = p.p# WHERE s# > 1",
      "SELECT color, COUNT(p#) AS n FROM parts GROUP BY color HAVING COUNT(p#) >= 2",
      "SELECT color FROM parts GROUP BY color HAVING COUNT(p#) >= 2",
      "SELECT DISTINCT s# FROM supplies WHERE p# IN (SELECT p# FROM parts WHERE "
      "color = 'blue')",
      "SELECT DISTINCT s# FROM supplies WHERE p# NOT IN (SELECT p# FROM parts WHERE "
      "color = 'blue')",
      "SELECT * FROM supplies",
      "SELECT * FROM supplies AS s, parts AS p",
      "SELECT s.s#, p.color FROM supplies AS s, parts AS p WHERE s.p# = p.p#",
      "SELECT COUNT(*) AS n, MIN(p#) AS lo, MAX(p#) AS hi FROM supplies",
      "SELECT COUNT(*) AS n FROM supplies WHERE s# > 99",  // empty input, global agg
      // Errors must agree too.
      "SELECT s# FROM supplies AS s DIVIDE BY parts AS p ON s.p# < p.p#",
      "SELECT x FROM nosuch",
      "SELECT nosuchcol FROM parts",
      "SELECT a FROM supplies, parts",  // no such bare column anywhere
  };
  for (const char* query : queries) ExpectSessionMatchesOracle(catalog, query);
}

TEST(SessionDifferential, InterpCorpus) {
  Catalog catalog;
  catalog.Put("t", Relation::Parse("a, b", "1,10; 2,20; 3,30"));
  catalog.Put("u", Relation::Parse("a, c", "1,100; 3,300"));
  catalog.Put("r1", Relation::Parse("a, b", "1,1; 1,2; 2,1"));
  catalog.Put("r2", Relation::Parse("b", "1; 2"));
  catalog.Put("dups", Relation::Parse("a, b", "1,1; 1,2"));
  catalog.Put("empty", Relation(Schema::Parse("b")));
  const char* queries[] = {
      "SELECT * FROM t",
      "SELECT * FROM t, u",
      "SELECT a FROM t, u",  // ambiguous: both error
      "SELECT t.a, u.a AS ua FROM t, u WHERE t.a = u.a",
      "SELECT a FROM t WHERE b / 10 = a * 1.0",      // computed WHERE compiles
      "SELECT a + 1 AS next FROM t WHERE a = 1",     // computed item: oracle fallback
      "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a)",
      "SELECT a FROM t WHERE NOT EXISTS (SELECT * FROM u WHERE u.a = t.a)",
      "SELECT a FROM t WHERE EXISTS (SELECT * FROM u WHERE u.a = t.a AND u.c > 150)",
      "SELECT q.a FROM (SELECT a FROM t WHERE b >= 20) AS q WHERE q.a < 3",
      "SELECT COUNT(*) AS n, SUM(b) AS s, MIN(a) AS lo, MAX(a) AS hi, AVG(b) AS m FROM t",
      "SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b",
      "SELECT a FROM r1 DIVIDE BY empty ON r1.b = empty.b",
      "SELECT a FROM dups",
      "SELECT a FROM t WHERE a IN (SELECT a, b FROM t)",  // both error
      "SELECT a FROM t WHERE a IN (SELECT a FROM u WHERE c > 150)",
      "SELECT a FROM t WHERE a NOT IN (SELECT a FROM u)",
      "SELECT b, COUNT(a) AS n FROM r1 GROUP BY b",
      "SELECT a, b FROM t WHERE a = 2 OR b = 30",
  };
  for (const char* query : queries) ExpectSessionMatchesOracle(catalog, query);
}

// ---------------------------------------------------------------------------
// Division queries must compile (never fall back) and, with a selection on
// the division, must show Law rewrites in the trace — the acceptance
// criterion that DIVIDE BY through the Session reaches the rewrite engine.
// ---------------------------------------------------------------------------

TEST(SessionDifferential, DivisionQueriesCompileAndRewrite) {
  Catalog catalog;
  catalog.Put("supplies", paper::SuppliesTable());
  catalog.Put("parts", paper::PartsTable());

  CompileInfo plain = ExpectSessionMatchesOracle(
      catalog, "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#");
  EXPECT_TRUE(plain.compiled) << plain.fallback_reason;
  EXPECT_NE(plain.lowered->ToString().find("GreatDivide"), std::string::npos);

  // σ on the divisor-group attribute: Law 15 (or 14) must fire.
  CompileInfo filtered = ExpectSessionMatchesOracle(
      catalog,
      "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# "
      "WHERE color = 'red'");
  EXPECT_TRUE(filtered.compiled) << filtered.fallback_reason;
  ASSERT_FALSE(filtered.rewrites.empty());
  bool saw_law = false;
  for (const RewriteStep& step : filtered.rewrites) {
    if (step.rule.find("law") == 0) saw_law = true;
  }
  EXPECT_TRUE(saw_law) << "no Law rewrite in the trace";

  // σ on the quotient attribute of a small divide: Law 3.
  CompileInfo small = ExpectSessionMatchesOracle(
      catalog,
      "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE "
      "color = 'blue') AS p ON s.p# = p.p# WHERE s# > 1");
  EXPECT_TRUE(small.compiled) << small.fallback_reason;
  ASSERT_FALSE(small.rewrites.empty());
  EXPECT_EQ(small.rewrites[0].rule.find("law"), 0u) << small.rewrites[0].rule;
}

// ---------------------------------------------------------------------------
// Randomized: generated databases × generated statements, so the lowering's
// equivalence with the oracle does not depend on the fixtures.
// ---------------------------------------------------------------------------

TEST(SessionDifferential, RandomizedDatabasesAndQueries) {
  DataGen gen(4242);
  for (int round = 0; round < 8; ++round) {
    Catalog catalog;
    std::vector<Tuple> supplies;
    for (int64_t s = 1; s <= 5; ++s) {
      for (int64_t p = 1; p <= 6; ++p) {
        if (gen.Chance(0.45)) supplies.push_back({V(s), V(p)});
      }
    }
    if (supplies.empty()) supplies.push_back({V(1), V(1)});
    std::vector<Tuple> parts;
    for (int64_t p = 1; p <= 6; ++p) {
      parts.push_back({V(p), gen.Chance(0.5) ? V("blue") : V("red")});
    }
    catalog.Put("supplies", Relation(Schema::Parse("s#, p#"), supplies));
    catalog.Put("parts", Relation(Schema::Parse("p#:int, color:string"), parts));

    int64_t cut = gen.UniformInt(0, 6);
    std::string color = gen.Chance(0.5) ? "blue" : "red";
    std::string queries[] = {
        "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#",
        "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE color = '" +
            color + "') AS p ON s.p# = p.p#",
        "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# "
        "WHERE color = '" + color + "'",
        "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# "
        "WHERE s# > " + std::to_string(cut),
        "SELECT DISTINCT s# FROM supplies WHERE p# IN (SELECT p# FROM parts WHERE "
        "color = '" + color + "')",
        "SELECT DISTINCT s# FROM supplies WHERE p# NOT IN (SELECT p# FROM parts WHERE "
        "color = '" + color + "')",
        "SELECT DISTINCT s1.s# FROM supplies AS s1 WHERE EXISTS ("
        "SELECT * FROM supplies AS s2 WHERE s2.p# = s1.p# AND s2.s# > " +
            std::to_string(cut) + ")",
        "SELECT color, COUNT(p#) AS n FROM parts GROUP BY color HAVING COUNT(p#) >= " +
            std::to_string(gen.UniformInt(1, 4)),
        "SELECT s.s#, p.color FROM supplies AS s, parts AS p WHERE s.p# = p.p# AND "
        "s.s# <= " + std::to_string(cut),
        // The paper's Q3 (oracle fallback) against the same random data.
        "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 WHERE NOT EXISTS ("
        "SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND NOT EXISTS ("
        "SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s#))",
    };
    for (const std::string& query : queries) {
      ExpectSessionMatchesOracle(catalog, query);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// The compiled path must agree with itself through a warm plan cache and
// across prepared-statement bindings.
// ---------------------------------------------------------------------------

TEST(SessionDifferential, PlanCacheAndPreparedBindingsStayConsistent) {
  Catalog catalog;
  catalog.Put("supplies", paper::SuppliesTable());
  catalog.Put("parts", paper::PartsTable());
  Session session = MakeSession(catalog);
  Result<PreparedStatement> prepared = session.Prepare(
      "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE color = ?) "
      "AS p ON s.p# = p.p#");
  ASSERT_TRUE(prepared.ok()) << prepared.error();
  for (const char* color : {"blue", "red", "blue", "green", "red"}) {
    std::string literal = std::string("'") + color + "'";
    Result<Relation> oracle = sql::ExecuteSql(
        "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE color = " +
            literal + ") AS p ON s.p# = p.p#",
        catalog);
    Result<QueryResult> bound = prepared.value().Execute({Value::Str(color)});
    ASSERT_EQ(bound.ok(), oracle.ok());
    if (oracle.ok()) EXPECT_EQ(bound.value().rows, oracle.value()) << color;
  }
}

}  // namespace
}  // namespace quotient
