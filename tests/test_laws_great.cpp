// Laws 13-17 (great divide) and Example 4 on paper-shaped and edge inputs.

#include <gtest/gtest.h>

#include "algebra/generator.hpp"
#include "core/laws.hpp"
#include "paper_fixtures.hpp"

namespace quotient {
namespace {

using namespace laws;

// --------------------------------------------------------------- Law 13 ----

TEST(Law13, SplitFigure2DivisorByGroup) {
  // Partition Figure 2's divisor by c: {c=1} and {c=2} are C-disjoint.
  Relation r2p = Relation::Parse("b, c", "1,1; 2,1; 4,1");
  Relation r2pp = Relation::Parse("b, c", "1,2; 3,2");
  ASSERT_TRUE(Law13Precondition(paper::Fig1Dividend(), r2p, r2pp));
  EXPECT_EQ(Law13Lhs(paper::Fig1Dividend(), r2p, r2pp),
            Law13Rhs(paper::Fig1Dividend(), r2p, r2pp));
  EXPECT_EQ(Law13Lhs(paper::Fig1Dividend(), r2p, r2pp), paper::Fig2Quotient());
}

TEST(Law13, FailsWhenGroupIsSplitAcrossPartitions) {
  // Split group c=1 itself: πC overlaps, and the two sides differ because
  // each partition sees only half of the group's B set.
  Relation r2p = Relation::Parse("b, c", "1,1; 1,2");
  Relation r2pp = Relation::Parse("b, c", "2,1; 3,2");
  ASSERT_FALSE(Law13Precondition(paper::Fig1Dividend(), r2p, r2pp));
  EXPECT_NE(Law13Lhs(paper::Fig1Dividend(), r2p, r2pp),
            Law13Rhs(paper::Fig1Dividend(), r2p, r2pp));
}

TEST(Law13, ManyPartitionsViaPairwiseSplit) {
  DataGen gen(7);
  Relation r1 = gen.Dividend(8, 8, 0.5);
  Relation r2 = gen.GreatDivisor(6, 8, 0.4);
  // Split into per-group partitions and fold the law pairwise.
  ExprPtr even = Expr::ColCmp("c", CmpOp::kLt, V(3));
  Relation r2p = Select(r2, even);
  Relation r2pp = Select(r2, Expr::Not(even));
  ASSERT_TRUE(Law13Precondition(r1, r2p, r2pp));
  EXPECT_EQ(Law13Lhs(r1, r2p, r2pp), Law13Rhs(r1, r2p, r2pp));
}

// --------------------------------------------------------------- Law 14 ----

TEST(Law14, QuotientSelectionPushdown) {
  ExprPtr p = Expr::ColCmp("a", CmpOp::kGe, V(3));
  EXPECT_EQ(Law14Lhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p),
            Law14Rhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p));
  EXPECT_EQ(Law14Lhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p),
            Relation::Parse("a, c", "3,2"));
}

// --------------------------------------------------------------- Law 15 ----

TEST(Law15, DivisorGroupSelectionPushdown) {
  ExprPtr p = Expr::ColCmp("c", CmpOp::kEq, V(2));
  EXPECT_EQ(Law15Lhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p),
            Law15Rhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p));
  EXPECT_EQ(Law15Lhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p),
            Relation::Parse("a, c", "2,2; 3,2"));
}

TEST(Law15, SelectionRemovesAllGroups) {
  ExprPtr p = Expr::ColCmp("c", CmpOp::kGt, V(99));
  EXPECT_EQ(Law15Lhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p),
            Law15Rhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p));
  EXPECT_TRUE(Law15Lhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p).empty());
}

// --------------------------------------------------------------- Law 16 ----

TEST(Law16, ReplicateBSelection) {
  ExprPtr p = Expr::ColCmp("b", CmpOp::kLe, V(3));
  EXPECT_EQ(Law16Lhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p),
            Law16Rhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p));
}

TEST(Law16, SelectionEmptiesDivisor) {
  ExprPtr p = Expr::ColCmp("b", CmpOp::kGt, V(99));
  EXPECT_EQ(Law16Lhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p),
            Law16Rhs(paper::Fig1Dividend(), paper::Fig2Divisor(), p));
}

// --------------------------------------------------------------- Law 17 ----

TEST(Law17, ProductThroughGreatDivide) {
  Relation star = Relation::Parse("z", "10; 20");
  EXPECT_EQ(Law17Lhs(star, paper::Fig1Dividend(), paper::Fig2Divisor()),
            Law17Rhs(star, paper::Fig1Dividend(), paper::Fig2Divisor()));
}

TEST(Law17, EmptyStarFactor) {
  Relation star(Schema::Parse("z"));
  EXPECT_EQ(Law17Lhs(star, paper::Fig1Dividend(), paper::Fig2Divisor()),
            Law17Rhs(star, paper::Fig1Dividend(), paper::Fig2Divisor()));
}

// ------------------------------------------------------------ Example 4 ----

TEST(Example4, JoinCommutesWithGreatDivide) {
  Relation star = Relation::Parse("a1", "1; 3; 9");
  Relation star_star = Rename(paper::Fig1Dividend(), {{"a", "a2"}});
  EXPECT_EQ(Example4Lhs(star, star_star, paper::Fig2Divisor()),
            Example4Rhs(star, star_star, paper::Fig2Divisor()));
}

TEST(Example4, HighlySelectiveJoin) {
  Relation star = Relation::Parse("a1", "2");
  Relation star_star = Rename(paper::Fig1Dividend(), {{"a", "a2"}});
  Relation lhs = Example4Lhs(star, star_star, paper::Fig2Divisor());
  EXPECT_EQ(lhs, Example4Rhs(star, star_star, paper::Fig2Divisor()));
  EXPECT_EQ(lhs.size(), 2u);  // supplier 2 qualifies for both groups
}

// ------------------------------------------- degenerate great divides ----

TEST(GreatDivide, DegeneratesToSmallDivideWhenCEmpty) {
  // Darwen/Date (§2.2): with C = ∅ the great divide is the small divide.
  EXPECT_EQ(GreatDivide(paper::Fig1Dividend(), paper::Fig1Divisor()),
            Divide(paper::Fig1Dividend(), paper::Fig1Divisor()));
  EXPECT_EQ(GreatDivideDemolombe(paper::Fig1Dividend(), paper::Fig1Divisor()),
            Divide(paper::Fig1Dividend(), paper::Fig1Divisor()));
  EXPECT_EQ(GreatDivideTodd(paper::Fig1Dividend(), paper::Fig1Divisor()),
            Divide(paper::Fig1Dividend(), paper::Fig1Divisor()));
}

TEST(GreatDivide, EmptyDivisorYieldsEmptyQuotient) {
  // No divisor groups means no (a, c) pairs — unlike the small divide's
  // vacuous-truth case, which is keyed by B only.
  Relation empty(Schema::Parse("b, c"));
  EXPECT_TRUE(GreatDivide(paper::Fig1Dividend(), empty).empty());
}

TEST(GreatDivide, EmptyDividend) {
  Relation empty(Schema::Parse("a, b"));
  EXPECT_TRUE(GreatDivide(empty, paper::Fig2Divisor()).empty());
}

}  // namespace
}  // namespace quotient
