// Morsel-driven parallel execution (docs/parallel_execution.md) must be
// indistinguishable from the serial disciplines: these property tests run
// the same physical plans under ExecMode::kParallel at threads ∈ {1, 2, 3,
// 8} — with the serial-row-threshold heuristic disabled and morsels shrunk
// so even the paper's fixtures split into many chunks — and require
// relations AND per-operator row accounting identical to both serial batch
// (ExecMode::kBatch) and tuple-at-a-time (ExecMode::kTuple) execution.
// The chunk-ordered merge makes this exact, not just set-equal: Relation
// equality is tuple-order-sensitive.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "algebra/generator.hpp"
#include "algebra/ops.hpp"
#include "exec/batch.hpp"
#include "exec/exec_basic.hpp"
#include "exec/exec_divide.hpp"
#include "exec/exec_great_divide.hpp"
#include "exec/pipeline.hpp"
#include "exec/scheduler.hpp"
#include "opt/planner.hpp"
#include "paper_fixtures.hpp"
#include "plan/evaluate.hpp"

namespace quotient {
namespace {

const size_t kThreadCounts[] = {1, 2, 3, 8};

/// Runs `plan` under kTuple (the semantics reference) and kBatch (the
/// serial batch reference), then under kParallel at every thread count with
/// the pipeline path forced on (threshold 0, small morsels). Relations and
/// plan-wide row accounting must match exactly everywhere.
void ExpectParallelAgreement(const PlanPtr& plan, const Catalog& catalog,
                             const PlannerOptions& options = {}, size_t batch_rows = 128,
                             size_t morsel_rows = 16) {
  Relation reference;
  ExecProfile reference_profile;
  {
    ScopedExecMode tuple_mode(ExecMode::kTuple);
    reference = ExecutePlan(plan, catalog, options, &reference_profile);
  }
  {
    ScopedExecMode batch_mode(ExecMode::kBatch);
    ExecProfile profile;
    Relation result = ExecutePlan(plan, catalog, options, &profile);
    EXPECT_EQ(result, reference) << "serial batch diverged from tuple";
    EXPECT_EQ(profile.total_rows, reference_profile.total_rows);
  }

  ScopedExecMode parallel_mode(ExecMode::kParallel);
  ScopedSerialRowThreshold force_pipelines(0);
  ScopedMorselRows morsels(morsel_rows);
  ScopedBatchRows batches(batch_rows);
  for (size_t threads : kThreadCounts) {
    ScopedExecThreads scoped(threads);
    ExecProfile profile;
    Relation result = ExecutePlan(plan, catalog, options, &profile);
    EXPECT_EQ(result, reference) << "threads=" << threads;
    EXPECT_EQ(profile.total_rows, reference_profile.total_rows)
        << "rows_produced accounting diverged at threads=" << threads << "\ntuple:\n"
        << reference_profile.explain << "parallel:\n"
        << profile.explain;
    EXPECT_EQ(profile.max_rows, reference_profile.max_rows) << "threads=" << threads;
  }
}

Catalog WorkloadCatalog() {
  Catalog catalog;
  // Paper fixtures (Laws 1-16 operate over these shapes).
  catalog.Put("fig1_r1", paper::Fig1Dividend());
  catalog.Put("fig1_r2", paper::Fig1Divisor());
  catalog.Put("fig4_r1", paper::Fig4Dividend());
  catalog.Put("fig4_r2", paper::Fig4Divisor());
  catalog.Put("fig2_r2", paper::Fig2Divisor());
  // Generated workloads large enough to split into many morsels.
  DataGen gen(0x9A7A11E1);
  catalog.Put("r1", gen.Dividend(/*groups=*/60, /*domain=*/32, /*density=*/0.4));
  catalog.Put("r2", gen.Divisor(/*size=*/10, /*domain=*/32));
  catalog.Put("gd", gen.GreatDivisor(/*groups=*/7, /*domain=*/32, /*density=*/0.25));
  catalog.Put("spj", Relation::Parse("s, p", "1,1; 1,2; 1,3; 2,1; 2,3; 3,2; 3,3; 4,1"));
  return catalog;
}

TEST(ParallelExecProperty, DivisionAllAlgorithmsAllThreadCounts) {
  Catalog catalog = WorkloadCatalog();
  for (const char* dividend : {"fig1_r1", "r1"}) {
    for (const char* divisor : {"fig1_r2", "r2"}) {
      PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog, dividend),
                                       LogicalOp::Scan(catalog, divisor));
      for (DivisionAlgorithm algorithm :
           {DivisionAlgorithm::kHash, DivisionAlgorithm::kHashTransposed,
            DivisionAlgorithm::kMergeSort, DivisionAlgorithm::kHashCount,
            DivisionAlgorithm::kSortCount, DivisionAlgorithm::kNestedLoop}) {
        PlannerOptions options;
        options.division = algorithm;
        ExpectParallelAgreement(plan, catalog, options, /*batch_rows=*/3, /*morsel_rows=*/4);
      }
    }
  }
}

TEST(ParallelExecProperty, GreatDivideBothAlgorithms) {
  Catalog catalog = WorkloadCatalog();
  PlanPtr plan = LogicalOp::GreatDivide(LogicalOp::Scan(catalog, "r1"),
                                        LogicalOp::Scan(catalog, "gd"));
  for (GreatDivideAlgorithm algorithm :
       {GreatDivideAlgorithm::kHash, GreatDivideAlgorithm::kGroup}) {
    PlannerOptions options;
    options.great_divide = algorithm;
    ExpectParallelAgreement(plan, catalog, options, /*batch_rows=*/7, /*morsel_rows=*/8);
  }
}

TEST(ParallelExecProperty, FilterFeedsBufferedParallelPipeline) {
  // A filter between scan and division makes the pipeline source
  // non-splittable: the executor buffers the filtered batches and
  // parallelizes the sink kernels over chunk groups of them.
  Catalog catalog = WorkloadCatalog();
  ExprPtr predicate = Expr::And(Expr::ColCmp("b", CmpOp::kLt, V(24)),
                                Expr::Compare(CmpOp::kNe, Expr::Column("a"), Expr::Column("b")));
  PlanPtr plan = LogicalOp::Divide(
      LogicalOp::Select(LogicalOp::Scan(catalog, "r1"), predicate),
      LogicalOp::Scan(catalog, "r2"));
  ExpectParallelAgreement(plan, catalog, {}, /*batch_rows=*/5, /*morsel_rows=*/8);
}

TEST(ParallelExecProperty, RenameChainStaysSplittable) {
  // ρ over a scan is morsel-splittable; the bypassed chain must still be
  // credited with exact row counts.
  Catalog catalog = WorkloadCatalog();
  PlanPtr plan = LogicalOp::NaturalJoin(
      LogicalOp::Scan(catalog, "r1"),
      LogicalOp::Rename(LogicalOp::Scan(catalog, "spj"), {{"s", "a"}, {"p", "x"}}));
  ExpectParallelAgreement(plan, catalog, {}, /*batch_rows=*/3, /*morsel_rows=*/4);
}

TEST(ParallelExecProperty, JoinsAllThreadCounts) {
  Catalog catalog = WorkloadCatalog();
  PlanPtr r1 = LogicalOp::Scan(catalog, "r1");
  PlanPtr spj = LogicalOp::Scan(catalog, "spj");
  ExpectParallelAgreement(
      LogicalOp::ThetaJoin(spj, LogicalOp::Rename(spj, {{"s", "s2"}, {"p", "p2"}}),
                           Expr::ColEqCol("p", "p2")),
      catalog, {}, /*batch_rows=*/3, /*morsel_rows=*/4);
  ExpectParallelAgreement(LogicalOp::SemiJoin(r1, LogicalOp::Scan(catalog, "r2")), catalog, {},
                          /*batch_rows=*/16, /*morsel_rows=*/8);
  ExpectParallelAgreement(LogicalOp::AntiJoin(r1, LogicalOp::Scan(catalog, "r2")), catalog, {},
                          /*batch_rows=*/16, /*morsel_rows=*/8);
}

TEST(ParallelExecProperty, GroupByAggregates) {
  Catalog catalog = WorkloadCatalog();
  PlanPtr plan = LogicalOp::GroupBy(
      LogicalOp::Scan(catalog, "r1"), {"a"},
      {{AggFunc::kCount, "", "n"},
       {AggFunc::kSum, "b", "sum_b"},
       {AggFunc::kMin, "b", "min_b"},
       {AggFunc::kMax, "b", "max_b"},
       {AggFunc::kAvg, "b", "avg_b"}});
  ExpectParallelAgreement(plan, catalog, {}, /*batch_rows=*/9, /*morsel_rows=*/8);
  // Global aggregate: one output row regardless of chunking.
  ExpectParallelAgreement(
      LogicalOp::GroupBy(LogicalOp::Scan(catalog, "r1"), {}, {{AggFunc::kCount, "", "n"}}),
      catalog, {}, /*batch_rows=*/9, /*morsel_rows=*/8);
}

TEST(ParallelExecProperty, SetOperationsAndHealyExpansion) {
  Catalog catalog = WorkloadCatalog();
  DataGen gen(0x5E7);
  catalog.Put("r1b", gen.Dividend(30, 32, 0.3));
  PlanPtr left = LogicalOp::Scan(catalog, "r1");
  PlanPtr right = LogicalOp::Project(LogicalOp::Scan(catalog, "r1b"), {"b", "a"});
  ExpectParallelAgreement(LogicalOp::Union(left, right), catalog);
  ExpectParallelAgreement(LogicalOp::Intersect(left, right), catalog);
  ExpectParallelAgreement(LogicalOp::Difference(left, right), catalog);
  // Healy's basic-algebra expansion stacks ×, − and π over the pipelines.
  PlannerOptions options;
  options.expand_divide = true;
  ExpectParallelAgreement(LogicalOp::Divide(LogicalOp::Scan(catalog, "fig1_r1"),
                                            LogicalOp::Scan(catalog, "fig1_r2")),
                          catalog, options, /*batch_rows=*/3, /*morsel_rows=*/4);
}

TEST(ParallelExecProperty, EmptyInputsEverywhere) {
  Catalog catalog;
  catalog.Put("empty_ab", Relation(Schema::Parse("a, b")));
  catalog.Put("empty_b", Relation(Schema::Parse("b")));
  catalog.Put("r1", Relation::Parse("a, b", "1,1; 1,2; 2,1"));
  catalog.Put("r2", Relation::Parse("b", "1; 2"));
  PlanPtr empty_ab = LogicalOp::Scan(catalog, "empty_ab");
  PlanPtr empty_b = LogicalOp::Scan(catalog, "empty_b");
  PlanPtr r1 = LogicalOp::Scan(catalog, "r1");
  PlanPtr r2 = LogicalOp::Scan(catalog, "r2");
  ExpectParallelAgreement(LogicalOp::Divide(empty_ab, r2), catalog, {}, 2, 2);
  ExpectParallelAgreement(LogicalOp::Divide(r1, empty_b), catalog, {}, 2, 2);
  ExpectParallelAgreement(LogicalOp::NaturalJoin(r1, empty_ab), catalog, {}, 2, 2);
  ExpectParallelAgreement(LogicalOp::GroupBy(empty_ab, {"a"}, {{AggFunc::kCount, "", "n"}}),
                          catalog, {}, 2, 2);
}

TEST(ParallelExecProperty, StringKeysAndSpillPath) {
  DataGen gen(0xABCD);
  Catalog catalog;
  catalog.Put("r1s", StringifyAttribute(gen.Dividend(40, 16, 0.4), "b"));
  catalog.Put("r2s", StringifyAttribute(gen.Divisor(5, 16), "b"));
  ExpectParallelAgreement(LogicalOp::Divide(LogicalOp::Scan(catalog, "r1s"),
                                            LogicalOp::Scan(catalog, "r2s")),
                          catalog, {}, /*batch_rows=*/7, /*morsel_rows=*/8);

  // 18 wide B columns force the divisor codec past 64 bits into
  // SmallByteKey spill keys; the chunk merges must translate those too.
  DataGen wide_gen(0x5B111);
  constexpr size_t kNumB = 18;
  Relation wide = wide_gen.DividendWide(/*groups=*/8, /*num_a=*/1, kNumB,
                                        /*domain=*/300, /*density=*/0.2);
  std::vector<size_t> b_idx;
  for (size_t i = 1; i <= kNumB; ++i) b_idx.push_back(i);
  std::vector<Tuple> divisor_rows;
  for (const Tuple& t : wide.tuples()) {
    if (wide_gen.Chance(0.2)) divisor_rows.push_back(ProjectTuple(t, b_idx));
  }
  std::vector<std::string> b_names;
  for (size_t i = 1; i <= kNumB; ++i) b_names.push_back("b" + std::to_string(i));
  catalog.Put("wide", wide);
  catalog.Put("wide_divisor", Relation(wide.schema().Project(b_names), std::move(divisor_rows)));
  ExpectParallelAgreement(LogicalOp::Divide(LogicalOp::Scan(catalog, "wide"),
                                            LogicalOp::Scan(catalog, "wide_divisor")),
                          catalog, {}, /*batch_rows=*/7, /*morsel_rows=*/8);
}

TEST(ParallelExecProperty, RandomizedPlansAgainstOracle) {
  DataGen gen(0xF00D);
  ScopedExecMode parallel_mode(ExecMode::kParallel);
  ScopedSerialRowThreshold force_pipelines(0);
  for (int round = 0; round < 12; ++round) {
    Catalog catalog;
    catalog.Put("r1", gen.Dividend(gen.UniformInt(0, 16), gen.UniformInt(1, 10), 0.4));
    catalog.Put("r2", gen.Divisor(gen.UniformInt(0, 6), 10));
    PlanPtr plan = LogicalOp::Divide(
        LogicalOp::Select(LogicalOp::Scan(catalog, "r1"),
                          Expr::ColCmp("a", CmpOp::kGe, V(gen.UniformInt(0, 3)))),
        LogicalOp::Scan(catalog, "r2"));
    ScopedBatchRows batches(static_cast<size_t>(gen.UniformInt(1, 32)));
    ScopedMorselRows morsels(static_cast<size_t>(gen.UniformInt(2, 32)));
    ScopedExecThreads threads(kThreadCounts[round % 4]);
    EXPECT_EQ(ExecutePlan(plan, catalog), Evaluate(plan, catalog)) << "round " << round;
  }
}

TEST(ParallelExecProperty, PartitionedGreatDivideMatchesSingleThread) {
  // Law 13 as a strategy, now scheduled on the shared worker pool: the
  // partition count and the pool's thread count vary independently and the
  // result never changes.
  DataGen gen(0x1A13);
  Relation dividend = gen.Dividend(50, 24, 0.4);
  Relation divisor = gen.GreatDivisor(6, 24, 0.3);
  ScopedExecMode parallel_mode(ExecMode::kParallel);
  Relation reference = ExecGreatDivide(dividend, divisor, GreatDivideAlgorithm::kHash);
  for (size_t partitions : {1, 2, 3, 5}) {
    for (size_t threads : kThreadCounts) {
      ScopedExecThreads scoped(threads);
      EXPECT_EQ(GreatDividePartitioned(dividend, divisor, partitions), reference)
          << "partitions=" << partitions << " threads=" << threads;
    }
  }
}

// --- executor unit tests ----------------------------------------------------

TEST(ParallelExecUnit, ExplainReportsDegreeOfParallelism) {
  Catalog catalog = WorkloadCatalog();
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog, "r1"),
                                   LogicalOp::Scan(catalog, "r2"));
  ScopedExecMode parallel_mode(ExecMode::kParallel);
  ScopedSerialRowThreshold force_pipelines(0);
  ScopedMorselRows morsels(8);
  ScopedBatchRows batches(8);
  ScopedExecThreads threads(4);
  ExecProfile profile;
  ExecutePlan(plan, catalog, {}, &profile);
  EXPECT_GE(profile.max_dop, 2u) << profile.explain;
  EXPECT_NE(profile.explain.find("dop="), std::string::npos) << profile.explain;
  EXPECT_NE(profile.pipelines.find("pipeline 0"), std::string::npos) << profile.pipelines;
  EXPECT_NE(profile.pipelines.find("dop="), std::string::npos) << profile.pipelines;
}

TEST(ParallelExecUnit, SerialRowThresholdFallsBackToTupleDrains) {
  // Tiny inputs under the threshold drain tuple-at-a-time: no pipeline dop
  // is recorded anywhere in the plan.
  Catalog catalog = WorkloadCatalog();
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog, "fig1_r1"),
                                   LogicalOp::Scan(catalog, "fig1_r2"));
  ScopedExecMode parallel_mode(ExecMode::kParallel);
  ScopedSerialRowThreshold threshold(1024);
  ScopedExecThreads threads(4);
  ExecProfile profile;
  Relation result = ExecutePlan(plan, catalog, {}, &profile);
  EXPECT_EQ(result, paper::Fig1Quotient());
  EXPECT_EQ(profile.max_dop, 0u) << profile.explain;
}

TEST(ParallelExecUnit, PipelineDecompositionSplitsAtBreakers) {
  Catalog catalog = WorkloadCatalog();
  PlanPtr plan = LogicalOp::Divide(
      LogicalOp::Select(LogicalOp::Scan(catalog, "r1"), Expr::ColCmp("b", CmpOp::kLt, V(20))),
      LogicalOp::Scan(catalog, "r2"));
  IterPtr root = BuildPhysicalPlan(plan, catalog);
  std::vector<PipelineDesc> pipelines = DecomposePipelines(*root);
  // Dividend drain, divisor drain, and the root's own output pipeline.
  ASSERT_EQ(pipelines.size(), 3u);
  EXPECT_EQ(pipelines[0].sink, root.get());
  EXPECT_EQ(pipelines[1].sink, root.get());
  EXPECT_EQ(pipelines[2].sink, root.get());
  EXPECT_EQ(pipelines[2].ops.back(), root.get());  // output pipeline contains the root
}

TEST(ParallelExecUnit, AppendTranslatedReproducesSerialIdAssignment) {
  // Two chunk-local codecs over disjoint-ish value ranges merge into the
  // exact row/id layout a serial scan would have produced.
  std::vector<size_t> indices = {0, 1};
  Relation rows = Relation::Parse("a, b", "10,1; 20,1; 10,2; 30,1; 20,2; 40,3");
  KeyCodec serial(2);
  for (const Tuple& t : rows.tuples()) serial.Add(t, indices);

  KeyCodec merged(2);
  KeyCodec part1(2), part2(2);
  for (size_t i = 0; i < 3; ++i) part1.Add(rows.tuples()[i], indices);
  for (size_t i = 3; i < 6; ++i) part2.Add(rows.tuples()[i], indices);
  merged.AppendTranslated(part1);
  merged.AppendTranslated(part2);

  ASSERT_EQ(merged.rows(), serial.rows());
  serial.Seal();
  merged.Seal();
  for (size_t i = 0; i < serial.rows(); ++i) {
    EXPECT_EQ(merged.PackedKey(i), serial.PackedKey(i)) << "row " << i;
  }
}

TEST(ParallelExecUnit, CatalogEncodingSharedUnderConcurrentRequests) {
  Catalog catalog;
  DataGen gen(0xCAFE);
  catalog.Put("t", gen.Dividend(200, 64, 0.3));
  constexpr size_t kRequesters = 8;
  std::vector<TableEncodingPtr> seen(kRequesters);
  std::vector<std::thread> threads;
  threads.reserve(kRequesters);
  for (size_t i = 0; i < kRequesters; ++i) {
    threads.emplace_back([&, i] { seen[i] = catalog.Encoding("t"); });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 1; i < kRequesters; ++i) {
    EXPECT_EQ(seen[i].get(), seen[0].get()) << "request " << i << " built a duplicate encoding";
  }
  EXPECT_EQ(seen[0]->rows, catalog.Get("t").size());
}

TEST(ParallelExecUnit, NestedParallelForRunsInline) {
  // A task may itself start a parallel region (GreatDividePartitioned's
  // partitions contain divisions with their own pipelines). Nested regions
  // must run inline — both on pool workers and on the draining owner
  // thread, where re-acquiring the region mutex would deadlock.
  ScopedExecThreads threads(4);
  std::atomic<size_t> inner_runs{0};
  ParallelFor(8, [&](size_t) {
    ParallelFor(8, [&](size_t) { inner_runs.fetch_add(1); });
  });
  EXPECT_EQ(inner_runs.load(), 64u);
}

TEST(ParallelExecProperty, PartitionedGreatDivideWithNestedParallelDrains) {
  // Large dividend + tiny morsels: the per-partition divisions want
  // parallel drains while the partitions themselves occupy the pool.
  DataGen gen(0xD1B);
  Relation dividend = gen.Dividend(120, 24, 0.4);
  Relation divisor = gen.GreatDivisor(5, 24, 0.3);
  ScopedExecMode parallel_mode(ExecMode::kParallel);
  ScopedSerialRowThreshold force_pipelines(0);
  ScopedMorselRows morsels(8);
  ScopedBatchRows batches(16);
  Relation reference;
  {
    ScopedExecThreads one(1);
    reference = GreatDividePartitioned(dividend, divisor, /*threads=*/3);
  }
  for (size_t threads : kThreadCounts) {
    ScopedExecThreads scoped(threads);
    EXPECT_EQ(GreatDividePartitioned(dividend, divisor, /*threads=*/3), reference)
        << "threads=" << threads;
  }
}

TEST(ParallelExecUnit, SchedulerRunsEveryTaskExactlyOnceAndPropagatesErrors) {
  for (size_t threads : kThreadCounts) {
    ScopedExecThreads scoped(threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
  ScopedExecThreads scoped(4);
  EXPECT_THROW(
      ParallelFor(64, [](size_t i) { if (i == 13) throw std::runtime_error("boom"); }),
      std::runtime_error);
  // The pool survives a throwing region.
  std::atomic<size_t> ran{0};
  ParallelFor(32, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32u);
}

TEST(ParallelExecUnit, BackToBackRegionsNeverLeakTasksAcrossRegions) {
  // Rapid consecutive regions: a worker waking late off an old region's
  // generation bump must find an invalidated job slot, never a dangling
  // function or the next region's counters.
  ScopedExecThreads threads(8);
  for (int round = 0; round < 200; ++round) {
    std::atomic<size_t> hits{0};
    size_t tasks = 2 + static_cast<size_t>(round % 7);
    ParallelFor(tasks, [&](size_t) { hits.fetch_add(1); });
    ASSERT_EQ(hits.load(), tasks) << "round " << round;
  }
}

}  // namespace
}  // namespace quotient
