// Section 4 end to end: the DIVIDE BY syntax (Q1, Q2), its equivalence with
// the double-NOT-EXISTS formulation (Q3), and the plannable path through the
// binder + rewrite engine + physical planner.

#include <gtest/gtest.h>

#include "algebra/generator.hpp"
#include "core/engine.hpp"
#include "opt/planner.hpp"
#include "paper_fixtures.hpp"
#include "plan/evaluate.hpp"
#include "sql/binder.hpp"
#include "sql/interp.hpp"

namespace quotient {
namespace {

class SqlQueriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.Put("supplies", paper::SuppliesTable());
    catalog_.Put("parts", paper::PartsTable());
  }
  Catalog catalog_;
};

const char* kQ1 =
    "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#";

const char* kQ2 =
    "SELECT s# FROM supplies AS s DIVIDE BY ("
    "SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";

const char* kQ3 =
    "SELECT DISTINCT s#, color "
    "FROM supplies AS s1, parts AS p1 "
    "WHERE NOT EXISTS ("
    "  SELECT * FROM parts AS p2 "
    "  WHERE p2.color = p1.color AND NOT EXISTS ("
    "    SELECT * FROM supplies AS s2 "
    "    WHERE s2.p# = p2.p# AND s2.s# = s1.s#))";

TEST_F(SqlQueriesTest, Q1GreatDivide) {
  Result<Relation> result = sql::ExecuteSql(kQ1, catalog_);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value(), paper::Q1Answer());
}

TEST_F(SqlQueriesTest, Q2SmallDivideWithDerivedDivisor) {
  Result<Relation> result = sql::ExecuteSql(kQ2, catalog_);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value(), paper::Q2Answer());
}

TEST_F(SqlQueriesTest, Q3DoubleNotExistsEqualsQ1) {
  Result<Relation> q3 = sql::ExecuteSql(kQ3, catalog_);
  ASSERT_TRUE(q3.ok()) << q3.error();
  EXPECT_EQ(q3.value(), paper::Q1Answer());
}

TEST_F(SqlQueriesTest, Q1AndQ3AgreeOnRandomDatabases) {
  // The equivalence must hold for every database, not just the fixture.
  DataGen gen(99);
  for (int round = 0; round < 10; ++round) {
    Catalog catalog;
    std::vector<Tuple> supplies;
    for (int64_t s = 1; s <= 4; ++s) {
      for (int64_t p = 1; p <= 5; ++p) {
        if (gen.Chance(0.5)) supplies.push_back({V(s), V(p)});
      }
    }
    std::vector<Tuple> parts;
    for (int64_t p = 1; p <= 5; ++p) {
      parts.push_back({V(p), gen.Chance(0.5) ? V("blue") : V("red")});
    }
    catalog.Put("supplies", Relation(Schema::Parse("s#, p#"), supplies));
    catalog.Put("parts",
                Relation(Schema::Parse("p#:int, color:string"), parts));
    Result<Relation> q1 = sql::ExecuteSql(kQ1, catalog);
    Result<Relation> q3 = sql::ExecuteSql(kQ3, catalog);
    ASSERT_TRUE(q1.ok()) << q1.error();
    ASSERT_TRUE(q3.ok()) << q3.error();
    EXPECT_EQ(q1.value(), q3.value()) << "round " << round;
  }
}

TEST_F(SqlQueriesTest, Q1PlansToGreatDivideNode) {
  Result<PlanPtr> plan = sql::PlanSql(kQ1, catalog_);
  ASSERT_TRUE(plan.ok()) << plan.error();
  // The plan must contain a first-class GreatDivide operator.
  std::string rendered = plan.value()->ToString();
  EXPECT_NE(rendered.find("GreatDivide"), std::string::npos) << rendered;
  // And it evaluates (reference evaluator + physical engine) to the answer.
  EXPECT_EQ(Evaluate(plan.value(), catalog_), paper::Q1Answer());
  EXPECT_EQ(ExecutePlan(plan.value(), catalog_), paper::Q1Answer());
}

TEST_F(SqlQueriesTest, Q2PlansToSmallDivideNode) {
  Result<PlanPtr> plan = sql::PlanSql(kQ2, catalog_);
  ASSERT_TRUE(plan.ok()) << plan.error();
  std::string rendered = plan.value()->ToString();
  EXPECT_NE(rendered.find("Divide"), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find("GreatDivide"), std::string::npos)
      << "Q2's ON clause covers all divisor attributes: small divide";
  EXPECT_EQ(Evaluate(plan.value(), catalog_), paper::Q2Answer());
  EXPECT_EQ(ExecutePlan(plan.value(), catalog_), paper::Q2Answer());
}

TEST_F(SqlQueriesTest, Q3IsNotPlannable) {
  // The binder refuses correlated EXISTS — the paper's observation that
  // detecting division inside NOT EXISTS is hard for an optimizer.
  Result<PlanPtr> plan = sql::PlanSql(kQ3, catalog_);
  EXPECT_FALSE(plan.ok());
}

TEST_F(SqlQueriesTest, RewriteEngineOnPlannedQuery) {
  // σcolor='red'(Q1) — Law 15 pushes the C-selection into the divisor.
  Result<PlanPtr> plan = sql::PlanSql(kQ1, catalog_);
  ASSERT_TRUE(plan.ok());
  PlanPtr filtered = LogicalOp::Select(
      plan.value(), Expr::ColCmp("color", CmpOp::kEq, Value::Str("red")));
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog_, /*allow_runtime_checks=*/false};
  std::vector<RewriteStep> trace;
  PlanPtr rewritten = engine.Rewrite(filtered, context, &trace);
  EXPECT_EQ(Evaluate(rewritten, catalog_), Evaluate(filtered, catalog_));
}

TEST_F(SqlQueriesTest, NonEquiOnClauseRejected) {
  Result<Relation> result = sql::ExecuteSql(
      "SELECT s# FROM supplies AS s DIVIDE BY parts AS p ON s.p# < p.p#", catalog_);
  EXPECT_FALSE(result.ok()) << "§4: non-equi ON conditions are disallowed";
}

TEST_F(SqlQueriesTest, UnknownTableAndColumnErrors) {
  EXPECT_FALSE(sql::ExecuteSql("SELECT x FROM nosuch", catalog_).ok());
  EXPECT_FALSE(sql::ExecuteSql("SELECT nosuchcol FROM parts", catalog_).ok());
  EXPECT_FALSE(sql::ExecuteSql("SELECT FROM parts", catalog_).ok());
}

TEST_F(SqlQueriesTest, GroupByHavingAggregates) {
  Result<Relation> result = sql::ExecuteSql(
      "SELECT color, COUNT(p#) AS n FROM parts GROUP BY color HAVING COUNT(p#) >= 2",
      catalog_);
  ASSERT_TRUE(result.ok()) << result.error();
  Relation expected = Relation::FromRows("color:string, n:int",
                                         {{V("blue"), V(2)}, {V("red"), V(2)}});
  EXPECT_EQ(result.value(), expected);
}

TEST_F(SqlQueriesTest, InSubquery) {
  Result<Relation> result = sql::ExecuteSql(
      "SELECT DISTINCT s# FROM supplies WHERE p# IN (SELECT p# FROM parts WHERE color = "
      "'blue')",
      catalog_);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value(), Relation::Parse("s#", "1; 2; 4"));
}

TEST_F(SqlQueriesTest, MultiAttributeDivideOn) {
  // Footnote 5's shape: R1(a, b, c) ÷ R2(b, c) with a two-column ON clause.
  Catalog catalog;
  catalog.Put("r1", Relation::Parse("a, b, c", "1,1,1; 1,2,2; 2,1,1; 3,1,1; 3,2,2"));
  catalog.Put("r2", Relation::Parse("b, c", "1,1; 2,2"));
  Result<Relation> result = sql::ExecuteSql(
      "SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b AND r1.c = r2.c", catalog);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value(), Relation::Parse("a", "1; 3"));
}

}  // namespace
}  // namespace quotient
