// Law 2 claim (§5.1.1): under condition c2 the dividend can be partitioned
// on A and divided in parallel ("parallelize a query execution with degree
// 2 ... higher degrees by partitioning r1 into n > 2 partitions").
// Expected shape: wall-clock time drops toward 1/n with n worker threads,
// flattening at the host's core count (this container exposes 2 cores, so
// the ideal curve saturates at n = 2).

#include <thread>

#include "bench_common.hpp"
#include "exec/exec_divide.hpp"

namespace quotient {
namespace {

void BM_Law2Parallel(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  auto workload = bench::MakeDivisionWorkload(/*groups=*/8192, /*domain=*/64,
                                              /*divisor_size=*/24, /*density=*/0.4);
  // Range-partition the dividend on A: c2 holds by construction.
  std::vector<Relation> parts = SplitByAttributeRange(workload.dividend, "a", threads);

  for (auto _ : state) {
    std::vector<Relation> partial(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers.emplace_back([&, i] {
        partial[i] = ExecDivide(parts[i], workload.divisor, DivisionAlgorithm::kHash);
      });
    }
    for (std::thread& w : workers) w.join();
    // Law 2: the union of the partial quotients is the answer.
    size_t total = 0;
    for (const Relation& r : partial) total += r.size();
    benchmark::DoNotOptimize(total);
  }
  state.counters["threads"] = static_cast<double>(threads);
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  benchmark::RegisterBenchmark("Law2/parallel_divide", BM_Law2Parallel)
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
