// Graefe's division-algorithm catalogue [14] plus the §6 claim of
// Leinders/Van den Bussche [25]: simulating the small divide with basic
// algebra (Healy's expansion) forces quadratic intermediate results, while
// the first-class operators stay (n log n)-ish.
//
// Expected shape: hash/counting divisions are the fastest and scale near-
// linearly in |dividend|; merge-sort division pays the sort; nested-loop
// division scales with |dividend| x |divisor|; the Healy expansion is
// orders of magnitude slower and its max intermediate result grows with
// |candidates| x |divisor| (quadratic in the input scale), which the
// "MaxIntermediateRows" counter makes visible.

#include "bench_common.hpp"
#include "exec/exec_divide.hpp"
#include "opt/planner.hpp"

namespace quotient {
namespace {

using bench::MakeDivisionWorkload;

void BM_DivisionAlgorithm(benchmark::State& state, DivisionAlgorithm algorithm) {
  size_t groups = static_cast<size_t>(state.range(0));
  size_t divisor_size = static_cast<size_t>(state.range(1));
  auto workload = MakeDivisionWorkload(groups, /*domain=*/64, divisor_size);
  // The encodings model base tables whose dictionaries are already cached by
  // the catalog (built once above, outside the timed loop). kTuple runs take
  // the PR 1 paths and never touch them.
  for (auto _ : state) {
    Relation q = ExecDivide(workload.dividend, workload.divisor, algorithm,
                            workload.dividend_enc, workload.divisor_enc);
    benchmark::DoNotOptimize(q);
  }
  state.counters["dividend"] = static_cast<double>(workload.dividend.size());
  state.counters["divisor"] = static_cast<double>(workload.divisor.size());
}

void RegisterAlgorithm(const char* name, DivisionAlgorithm algorithm) {
  benchmark::RegisterBenchmark(name, [algorithm](benchmark::State& state) {
    BM_DivisionAlgorithm(state, algorithm);
  })
      ->ArgsProduct({{64, 256, 1024}, {4, 16, 48}})
      ->Unit(benchmark::kMicrosecond);
}

/// First-class hash division vs. Healy's basic-algebra simulation, with the
/// per-plan row accounting that exhibits the quadratic intermediate result.
void BM_FirstClassVsSimulation(benchmark::State& state, bool expand) {
  size_t groups = static_cast<size_t>(state.range(0));
  size_t divisor_size = static_cast<size_t>(state.range(1));
  auto workload = MakeDivisionWorkload(groups, /*domain=*/64, divisor_size);
  Catalog catalog;
  catalog.Put("r1", workload.dividend);
  catalog.Put("r2", workload.divisor);
  PlanPtr plan = LogicalOp::Divide(LogicalOp::Scan(catalog, "r1"),
                                   LogicalOp::Scan(catalog, "r2"));
  PlannerOptions options;
  options.expand_divide = expand;
  ExecProfile profile;
  for (auto _ : state) {
    Relation q = ExecutePlan(plan, catalog, options, &profile);
    benchmark::DoNotOptimize(q);
  }
  state.counters["MaxIntermediateRows"] = static_cast<double>(profile.max_rows);
  state.counters["TotalRows"] = static_cast<double>(profile.total_rows);
  state.counters["InputRows"] =
      static_cast<double>(workload.dividend.size() + workload.divisor.size());
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  RegisterAlgorithm("HashDivision", DivisionAlgorithm::kHash);
  RegisterAlgorithm("TransposedHashDivision", DivisionAlgorithm::kHashTransposed);
  RegisterAlgorithm("MergeSortDivision", DivisionAlgorithm::kMergeSort);
  RegisterAlgorithm("HashCountDivision", DivisionAlgorithm::kHashCount);
  RegisterAlgorithm("SortCountDivision", DivisionAlgorithm::kSortCount);
  RegisterAlgorithm("NestedLoopDivision", DivisionAlgorithm::kNestedLoop);
  benchmark::RegisterBenchmark("FirstClassDivide",
                               [](benchmark::State& s) { BM_FirstClassVsSimulation(s, false); })
      ->ArgsProduct({{64, 256, 1024}, {8, 32}})
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("HealySimulation",
                               [](benchmark::State& s) { BM_FirstClassVsSimulation(s, true); })
      ->ArgsProduct({{64, 256, 1024}, {8, 32}})
      ->Unit(benchmark::kMicrosecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
