// Multi-session throughput over one shared Database (docs/api.md): each
// google-benchmark thread runs its OWN Session against one Database, so
// ->ThreadRange(1, 8) is the concurrent-sessions axis. All sessions share
// the catalog snapshots, the plan cache, and the process-wide worker pool;
// scripts/run_benchmarks.sh sweeps QUOTIENT_THREADS (the pool size) across
// runs and merges the results into bench-results/BENCH_concurrency.json.
//
// Three workloads:
//   * CachedDivide    — the PR 4 division query served warm from the
//                       shared plan cache (compile amortized to zero);
//   * PreparedPointQuery — a prepared statement with a DISTINCT binding per
//                       iteration: the plan-slot binding path, the workload
//                       that used to recompile per binding;
//   * DdlChurn        — thread 0 interleaves InsertRows on a side table
//                       while the rest query an untouched one: the cost of
//                       snapshot publication under readers.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "api/session.hpp"
#include "bench_common.hpp"

namespace quotient {
namespace {

constexpr int64_t kSuppliers = 512;
constexpr int64_t kParts = 32;

std::shared_ptr<Database> BuildDatabase() {
  auto db = std::make_shared<Database>();
  DataGen gen(17);
  std::vector<Tuple> supply_rows;
  for (int64_t s = 1; s <= kSuppliers; ++s) {
    bool full = s % 10 == 0;  // every 10th supplier covers everything
    for (int64_t p = 1; p <= kParts; ++p) {
      if (full || gen.Chance(0.3)) supply_rows.push_back({V(s), V(p)});
    }
  }
  static const char* kColors[] = {"blue", "red", "green", "white"};
  std::vector<Tuple> part_rows;
  for (int64_t p = 1; p <= kParts; ++p) {
    part_rows.push_back({V(p), V(kColors[p % 4])});
  }
  db->CreateTable("supplies", Relation(Schema::Parse("s#, p#"), std::move(supply_rows)));
  db->CreateTable("parts", Relation(Schema::Parse("p#:int, color:string"),
                                    std::move(part_rows)));
  db->CreateTable("side", Relation::Parse("a, b", "1,1"));
  return db;
}

/// One process-wide database per benchmark binary run: the threads of one
/// benchmark all connect to it, exactly like concurrent serving.
const std::shared_ptr<Database>& SharedDatabase() {
  static const std::shared_ptr<Database> db = BuildDatabase();
  return db;
}

const char* kDivideSql =
    "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# "
    "WHERE color = 'blue'";

void BM_ConcurrentSessions_CachedDivide(benchmark::State& state) {
  Session session(SharedDatabase());
  (void)session.Execute(kDivideSql);  // warm the shared cache
  for (auto _ : state) {
    Result<QueryResult> result = session.Execute(kDivideSql);
    if (!result.ok()) {
      state.SkipWithError(result.error().c_str());
      break;
    }
    benchmark::DoNotOptimize(result.value().rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentSessions_CachedDivide)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ConcurrentSessions_PreparedPointQuery(benchmark::State& state) {
  Session session(SharedDatabase());
  Result<PreparedStatement> prepared =
      session.Prepare("SELECT s# FROM supplies WHERE p# = ?");
  if (!prepared.ok()) {
    state.SkipWithError(prepared.error().c_str());
    return;
  }
  int64_t binding = state.thread_index();  // distinct value per iteration
  for (auto _ : state) {
    Result<QueryResult> result = prepared.value().Execute({V(binding++ % 10000)});
    if (!result.ok()) {
      state.SkipWithError(result.error().c_str());
      break;
    }
    benchmark::DoNotOptimize(result.value().rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentSessions_PreparedPointQuery)
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ConcurrentSessions_DdlChurn(benchmark::State& state) {
  Session session(SharedDatabase());
  (void)session.Execute("SELECT color FROM parts GROUP BY color");
  int64_t i = 0;
  for (auto _ : state) {
    if (state.thread_index() == 0 && state.threads() > 1) {
      // Writer: copy-on-write snapshot publication under live readers.
      // Recreate periodically so the side table stays small — the subject
      // is publication cost, not insert cost on a growing relation.
      Status status = (++i % 256 == 0)
                          ? session.CreateTable("side", Relation::Parse("a, b", "1,1"))
                          : session.InsertRows("side", {{V(i), V(i)}});
      if (!status.ok()) {
        state.SkipWithError(status.message().c_str());
        break;
      }
    } else {
      // Readers: a cached plan over tables the writer never touches.
      Result<QueryResult> result = session.Execute("SELECT color FROM parts GROUP BY color");
      if (!result.ok()) {
        state.SkipWithError(result.error().c_str());
        break;
      }
      benchmark::DoNotOptimize(result.value().rows);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentSessions_DdlChurn)
    ->ThreadRange(2, 8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ConcurrentSessions_MixedFleet(benchmark::State& state) {
  // The sharded-plan-cache stress: up to 64 sessions mixing DDL churn,
  // cached divides, and prepared point queries against one Database. Every
  // statement goes through the plan-cache index, so this is the workload
  // the single cache mutex used to serialize; the shard/contention counters
  // land in the output so runs can compare lock pressure directly.
  Session session(SharedDatabase());
  Result<PreparedStatement> prepared =
      session.Prepare("SELECT s# FROM supplies WHERE p# = ?");
  if (!prepared.ok()) {
    state.SkipWithError(prepared.error().c_str());
    return;
  }
  (void)session.Execute(kDivideSql);
  int64_t i = state.thread_index();
  for (auto _ : state) {
    ++i;
    Status status = Status::Ok();
    if (state.thread_index() % 8 == 0 && state.threads() > 1) {
      status = (i % 256 == 0)
                   ? session.CreateTable("side", Relation::Parse("a, b", "1,1"))
                   : session.InsertRows("side", {{V(i), V(i)}});
    } else if (state.thread_index() % 2 == 0) {
      Result<QueryResult> result = session.Execute(kDivideSql);
      if (result.ok()) benchmark::DoNotOptimize(result.value().rows);
      status = result.status();
    } else {
      Result<QueryResult> result = prepared.value().Execute({V(i % 10000)});
      if (result.ok()) benchmark::DoNotOptimize(result.value().rows);
      status = result.status();
    }
    if (!status.ok()) {
      state.SkipWithError(status.message().c_str());
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  PlanCacheStats stats = SharedDatabase()->plan_cache_stats();
  // Every thread reads the same database-wide totals; average (not sum)
  // across threads so the reported numbers are the real counters.
  state.counters["cache_shards"] = benchmark::Counter(
      static_cast<double>(stats.shards), benchmark::Counter::kAvgThreads);
  state.counters["cache_contended"] = benchmark::Counter(
      static_cast<double>(stats.contended), benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_ConcurrentSessions_MixedFleet)
    ->ThreadRange(8, 64)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace quotient

BENCHMARK_MAIN();
