#pragma once

// Shared workload builders for the benchmark suite. Every bench binary
// regenerates one figure/claim of the paper (see DESIGN.md §3); workloads
// are deterministic (fixed seeds) so runs are comparable.

#include <benchmark/benchmark.h>

#include "algebra/generator.hpp"
#include "plan/catalog.hpp"

namespace quotient {
namespace bench {

/// A dividend r1(a, b) with `groups` quotient candidates over a B-domain of
/// `domain` values at the given density, plus a divisor r2(b) of size
/// `divisor_size` drawn from the same domain. A fixed fraction of groups is
/// forced to contain the whole divisor so quotients are nonempty.
struct DivisionWorkload {
  Relation dividend;
  Relation divisor;
};

inline DivisionWorkload MakeDivisionWorkload(size_t groups, int64_t domain,
                                             size_t divisor_size, double density = 0.3,
                                             uint64_t seed = 42) {
  DataGen gen(seed);
  Relation divisor = gen.Divisor(divisor_size, domain);
  Relation dividend = gen.DividendWithHits(groups, groups / 10 + 1, divisor, domain, density);
  return {std::move(dividend), std::move(divisor)};
}

/// A great-divide workload: dividend r1(a, b) plus divisor r2(b, c) with
/// `divisor_groups` C-groups.
struct GreatDivideWorkload {
  Relation dividend;
  Relation divisor;
};

inline GreatDivideWorkload MakeGreatDivideWorkload(size_t groups, int64_t domain,
                                                   size_t divisor_groups,
                                                   double dividend_density = 0.4,
                                                   double divisor_density = 0.2,
                                                   uint64_t seed = 7) {
  DataGen gen(seed);
  return {gen.Dividend(groups, domain, dividend_density),
          gen.GreatDivisor(divisor_groups, domain, divisor_density)};
}

}  // namespace bench
}  // namespace quotient
