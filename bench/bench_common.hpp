#pragma once

// Shared workload builders for the benchmark suite. Every bench binary
// regenerates one figure/claim of the paper (see DESIGN.md §3); workloads
// are deterministic (fixed seeds) so runs are comparable.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "algebra/generator.hpp"
#include "exec/batch.hpp"
#include "plan/catalog.hpp"

namespace quotient {
namespace bench {

/// Applies QUOTIENT_EXEC_MODE ("parallel" | "batch" | "tuple") before
/// main() runs, so scripts/run_benchmarks.sh can A/B the execution
/// disciplines with the same binaries (every bench includes this header, so
/// the initializer runs in each of them). The worker count for "parallel"
/// comes from QUOTIENT_THREADS (exec/scheduler.hpp).
inline const bool kExecModeFromEnv = [] {
  if (const char* mode = std::getenv("QUOTIENT_EXEC_MODE")) {
    if (std::string_view(mode) == "tuple") {
      SetExecMode(ExecMode::kTuple);
    } else if (std::string_view(mode) == "batch") {
      SetExecMode(ExecMode::kBatch);
    } else if (std::string_view(mode) == "parallel") {
      SetExecMode(ExecMode::kParallel);
    } else {
      // A typo here would silently record default-mode numbers under the
      // wrong label in an A/B comparison — refuse to run instead.
      std::fprintf(stderr,
                   "QUOTIENT_EXEC_MODE must be 'parallel', 'batch' or 'tuple', got '%s'\n",
                   mode);
      std::exit(1);
    }
  }
  return true;
}();

/// A dividend r1(a, b) with `groups` quotient candidates over a B-domain of
/// `domain` values at the given density, plus a divisor r2(b) of size
/// `divisor_size` drawn from the same domain. A fixed fraction of groups is
/// forced to contain the whole divisor so quotients are nonempty.
///
/// The table encodings model the catalog's per-base-table dictionary cache:
/// they are built once per workload (outside the timed loop), exactly like
/// a production query hitting already-encoded base tables, and are ignored
/// by ExecMode::kTuple runs.
struct DivisionWorkload {
  Relation dividend;
  Relation divisor;
  TableEncodingPtr dividend_enc;
  TableEncodingPtr divisor_enc;
};

inline DivisionWorkload MakeDivisionWorkload(size_t groups, int64_t domain,
                                             size_t divisor_size, double density = 0.3,
                                             uint64_t seed = 42) {
  DataGen gen(seed);
  Relation divisor = gen.Divisor(divisor_size, domain);
  Relation dividend = gen.DividendWithHits(groups, groups / 10 + 1, divisor, domain, density);
  TableEncodingPtr dividend_enc = TableEncoding::Build(dividend);
  TableEncodingPtr divisor_enc = TableEncoding::Build(divisor);
  return {std::move(dividend), std::move(divisor), std::move(dividend_enc),
          std::move(divisor_enc)};
}

/// A great-divide workload: dividend r1(a, b) plus divisor r2(b, c) with
/// `divisor_groups` C-groups. Encodings as in DivisionWorkload.
struct GreatDivideWorkload {
  Relation dividend;
  Relation divisor;
  TableEncodingPtr dividend_enc;
  TableEncodingPtr divisor_enc;
};

inline GreatDivideWorkload MakeGreatDivideWorkload(size_t groups, int64_t domain,
                                                   size_t divisor_groups,
                                                   double dividend_density = 0.4,
                                                   double divisor_density = 0.2,
                                                   uint64_t seed = 7) {
  DataGen gen(seed);
  Relation dividend = gen.Dividend(groups, domain, dividend_density);
  Relation divisor = gen.GreatDivisor(divisor_groups, domain, divisor_density);
  TableEncodingPtr dividend_enc = TableEncoding::Build(dividend);
  TableEncodingPtr divisor_enc = TableEncoding::Build(divisor);
  return {std::move(dividend), std::move(divisor), std::move(dividend_enc),
          std::move(divisor_enc)};
}

}  // namespace bench
}  // namespace quotient
