// Regenerates every figure of the paper (Figures 1-11) and the Section 4
// queries Q1-Q3, printing each computed table in the paper's layout. This is
// the visual "does the reproduction match the paper" artifact; the same
// tables are locked by tests/test_figures.cpp.
//
// (This binary prints tables rather than timing loops; the performance-claim
// benches are the other binaries in this directory.)

#include <cstdio>
#include <string>

#include "algebra/divide.hpp"
#include "algebra/ops.hpp"
#include "core/laws.hpp"
#include "plan/catalog.hpp"
#include "sql/interp.hpp"

// The paper fixtures live with the tests; reuse them verbatim.
#include "../tests/paper_fixtures.hpp"

namespace quotient {
namespace {

void Show(const std::string& title, const Relation& r) {
  std::printf("--- %s\n%s\n", title.c_str(), r.ToString().c_str());
}

void Figure1() {
  std::printf("=============== Figure 1: r1 %s r2 = r3 (small divide)\n", "\xC3\xB7");
  Show("(a) r1 (dividend)", paper::Fig1Dividend());
  Show("(b) r2 (divisor)", paper::Fig1Divisor());
  Show("(c) r3 (quotient), computed", Divide(paper::Fig1Dividend(), paper::Fig1Divisor()));
}

void Figure2() {
  std::printf("=============== Figure 2: generalized division r1 %s* r2 = r3\n", "\xC3\xB7");
  Show("(a) r1 (dividend)", paper::Fig1Dividend());
  Show("(b) r2 (divisor)", paper::Fig2Divisor());
  Show("(c) r3 (quotient), computed", GreatDivide(paper::Fig1Dividend(), paper::Fig2Divisor()));
}

void Figure3() {
  std::printf("=============== Figure 3: set containment join r1 |X|b1>=b2 r2\n");
  Relation r1 = Nest(paper::Fig1Dividend(), "b", "b1");
  Relation r2 = Nest(paper::Fig2Divisor(), "b", "b2");
  Show("(a) r1 (nested)", r1);
  Show("(b) r2 (nested)", r2);
  Show("(c) r3, computed", SetContainmentJoin(r1, "b1", r2, "b2"));
}

void Figure4() {
  std::printf("=============== Figure 4: Law 1 example\n");
  Relation r1 = paper::Fig4Dividend();
  Show("(a) r1", r1);
  Show("(b) r2", paper::Fig4Divisor());
  Show("(c) r2'", paper::Fig4DivisorPrime());
  Show("(d) r2''", paper::Fig4DivisorPrimePrime());
  Relation inner = Divide(r1, paper::Fig4DivisorPrime());
  Show("(e) r1 / r2', computed", inner);
  Relation semi = SemiJoin(r1, inner);
  Show("(f) r1 lsemi (r1 / r2'), computed", semi);
  Show("(g) r3, computed", Divide(semi, paper::Fig4DivisorPrimePrime()));
}

void Figure5() {
  std::printf("=============== Figure 5: Law 2 precondition c1 violated\n");
  Show("(a) r1'", paper::Fig5R1Prime());
  Show("(b) r1''", paper::Fig5R1PrimePrime());
  Show("(c) r2", paper::Fig5Divisor());
  Show("r1' / r2 (empty)", Divide(paper::Fig5R1Prime(), paper::Fig5Divisor()));
  Show("r1'' / r2 (empty)", Divide(paper::Fig5R1PrimePrime(), paper::Fig5Divisor()));
  Show("(r1' u r1'') / r2 (NOT empty)",
       Divide(Union(paper::Fig5R1Prime(), paper::Fig5R1PrimePrime()), paper::Fig5Divisor()));
}

void Figure6() {
  std::printf("=============== Figure 6: Example 1 (predicate b < 3)\n");
  Relation r1 = paper::Fig4Dividend();
  Relation r2 = paper::Fig4Divisor();
  ExprPtr p = Expr::ColCmp("b", CmpOp::kLt, V(3));
  Show("(a) r1", r1);
  Show("(b) sigma_b<3(r1)", Select(r1, p));
  Show("(c) r2", r2);
  Show("(d) sigma_b<3(r2)", Select(r2, p));
  Show("(e) sigma_b<3(r1) / r2", Divide(Select(r1, p), r2));
  Show("(f) sigma_b<3(r1) / sigma_b<3(r2)", Divide(Select(r1, p), Select(r2, p)));
  Relation g = Product(Project(r1, {"a"}), Select(r2, Expr::Not(p)));
  Show("(g) pi_a(r1) x sigma_b>=3(r2)", g);
  Show("(h) pi_a of (g)", Project(g, {"a"}));
  Show("(i) (f) - (h)", Difference(Divide(Select(r1, p), Select(r2, p)), Project(g, {"a"})));
}

void Figure7() {
  std::printf("=============== Figure 7: Law 8 example\n");
  Show("(a) r1*", paper::Fig7R1Star());
  Show("(b) r1**", paper::Fig7R1StarStar());
  Show("(c) r2", paper::Fig7Divisor());
  Show("(d) r1* x r1**", Product(paper::Fig7R1Star(), paper::Fig7R1StarStar()));
  Show("(e) r1** / r2", Divide(paper::Fig7R1StarStar(), paper::Fig7Divisor()));
  Show("(f) r3", laws::Law8Rhs(paper::Fig7R1Star(), paper::Fig7R1StarStar(),
                               paper::Fig7Divisor()));
}

void Figure8() {
  std::printf("=============== Figure 8: Law 9 example\n");
  Show("(a) r1*", paper::Fig8R1Star());
  Show("(b) r1**", paper::Fig8R1StarStar());
  Show("(c) r2", paper::Fig8Divisor());
  Show("(d) r1* x r1**", Product(paper::Fig8R1Star(), paper::Fig8R1StarStar()));
  Show("(e) pi_b1(r2)", Project(paper::Fig8Divisor(), {"b1"}));
  Show("(f) pi_b2(r2)", Project(paper::Fig8Divisor(), {"b2"}));
  Show("(g) r3", laws::Law9Rhs(paper::Fig8R1Star(), paper::Fig8R1StarStar(),
                               paper::Fig8Divisor()));
}

void Figure9() {
  std::printf("=============== Figure 9: Example 3 (theta = b1 < b2)\n");
  ExprPtr theta = Expr::Compare(CmpOp::kLt, Expr::Column("b1"), Expr::Column("b2"));
  Show("(a) r1*", paper::Fig8R1Star());
  Show("(b) r1**", paper::Fig9R1StarStar());
  Show("(c) r2", paper::Fig9Divisor());
  Show("(d) r1* theta-join r1**", ThetaJoin(paper::Fig8R1Star(), paper::Fig9R1StarStar(), theta));
  Show("(e) pi_b1(sigma_b1<b2(r2))", Project(Select(paper::Fig9Divisor(), theta), {"b1"}));
  Show("(f) r3", laws::Example3Rhs(paper::Fig8R1Star(), paper::Fig9R1StarStar(),
                                   paper::Fig9Divisor()));
}

void Figure10() {
  std::printf("=============== Figure 10: Law 11 example\n");
  Show("(a) r0", paper::Fig10R0());
  Relation r1 = GroupBy(paper::Fig10R0(), {"a"}, {{AggFunc::kSum, "x", "b"}});
  Show("(b) r1 = a-gamma-sum(x)->b (r0)", r1);
  Show("(c) r2", paper::Fig10Divisor());
  Show("(d) r1 lsemi r2", SemiJoin(r1, paper::Fig10Divisor()));
  Show("(e) pi_a(r1 lsemi r2)", Project(SemiJoin(r1, paper::Fig10Divisor()), {"a"}));
}

void Figure11() {
  std::printf("=============== Figure 11: Law 12 example\n");
  Show("(a) r0", paper::Fig11R0());
  Relation r1 = GroupBy(paper::Fig11R0(), {"b"}, {{AggFunc::kSum, "x", "a"}});
  Show("(b) r1 = b-gamma-sum(x)->a (r0)", r1);
  Show("(c) r2", paper::Fig11Divisor());
  Show("(d) r1 lsemi r2", SemiJoin(r1, paper::Fig11Divisor()));
  Show("(e) pi_a(r1 lsemi r2)", Project(SemiJoin(r1, paper::Fig11Divisor()), {"a"}));
}

void Queries() {
  std::printf("=============== Section 4: queries Q1-Q3 on suppliers/parts\n");
  Catalog catalog;
  catalog.Put("supplies", paper::SuppliesTable());
  catalog.Put("parts", paper::PartsTable());
  Show("supplies", paper::SuppliesTable());
  Show("parts", paper::PartsTable());

  auto q1 = sql::ExecuteSql(
      "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#", catalog);
  Show("Q1 (DIVIDE BY, great divide)", q1.value());
  auto q2 = sql::ExecuteSql(
      "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE color = 'blue') AS "
      "p ON s.p# = p.p#",
      catalog);
  Show("Q2 (DIVIDE BY, small divide)", q2.value());
  auto q3 = sql::ExecuteSql(
      "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 WHERE NOT EXISTS ("
      "SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND NOT EXISTS ("
      "SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s#))",
      catalog);
  Show("Q3 (double NOT EXISTS) == Q1", q3.value());
  std::printf("Q1 == Q3: %s\n\n", q1.value() == q3.value() ? "yes" : "NO (MISMATCH)");
}

}  // namespace
}  // namespace quotient

int main() {
  using namespace quotient;
  Figure1();
  Figure2();
  Figure3();
  Figure4();
  Figure5();
  Figure6();
  Figure7();
  Figure8();
  Figure9();
  Figure10();
  Figure11();
  Queries();
  std::printf("All figures regenerated.\n");
  return 0;
}
