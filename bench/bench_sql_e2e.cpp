// End-to-end SQL through the Session front door: parse -> lower -> law
// rewrites -> physical planning -> (parallel) pipeline execution, against a
// generated suppliers-and-parts database. The cache-miss fixtures price the
// whole compile+run path; the cache-hit fixtures isolate what the LRU plan
// cache saves; the oracle fixture is the tuple-at-a-time interpreter
// baseline the Session replaced as the default path.
//
// scripts/run_benchmarks.sh runs this binary into
// bench-results/BENCH_sql.json.

#include <benchmark/benchmark.h>

#include "api/session.hpp"
#include "bench_common.hpp"
#include "sql/interp.hpp"

namespace quotient {
namespace {

/// supplies(s#, p#) with `suppliers` suppliers over `parts` parts (full
/// coverage for a fixed fraction so quotients are nonempty), and
/// parts(p#, color) cycling through four colors.
void FillTables(int64_t suppliers, int64_t parts, Session* session, Catalog* catalog) {
  DataGen gen(17);
  std::vector<Tuple> supply_rows;
  for (int64_t s = 1; s <= suppliers; ++s) {
    bool full = s % 10 == 0;  // every 10th supplier covers everything
    for (int64_t p = 1; p <= parts; ++p) {
      if (full || gen.Chance(0.3)) supply_rows.push_back({V(s), V(p)});
    }
  }
  static const char* kColors[] = {"blue", "red", "green", "white"};
  std::vector<Tuple> part_rows;
  for (int64_t p = 1; p <= parts; ++p) {
    part_rows.push_back({V(p), V(kColors[p % 4])});
  }
  Relation supplies(Schema::Parse("s#, p#"), std::move(supply_rows));
  Relation part_rel(Schema::Parse("p#:int, color:string"), std::move(part_rows));
  if (session != nullptr) {
    session->CreateTable("supplies", supplies);
    session->CreateTable("parts", part_rel);
  }
  if (catalog != nullptr) {
    catalog->Put("supplies", std::move(supplies));
    catalog->Put("parts", std::move(part_rel));
  }
}

const char* kDivideSql =
    "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# "
    "WHERE color = 'blue'";

void BM_SessionDivide_CacheMiss(benchmark::State& state) {
  SessionOptions options;
  options.plan_cache_capacity = 0;  // full parse+rewrite+plan every time
  Session session(options);
  FillTables(state.range(0), state.range(1), &session, nullptr);
  for (auto _ : state) {
    Result<QueryResult> result = session.Execute(kDivideSql);
    if (!result.ok()) {
      state.SkipWithError(result.error().c_str());
      break;
    }
    benchmark::DoNotOptimize(result.value().rows);
  }
}
BENCHMARK(BM_SessionDivide_CacheMiss)
    ->ArgNames({"suppliers", "parts"})
    ->Args({64, 16})
    ->Args({512, 32})
    ->Args({2048, 64})
    ->Unit(benchmark::kMicrosecond);

void BM_SessionDivide_CacheHit(benchmark::State& state) {
  Session session;
  FillTables(state.range(0), state.range(1), &session, nullptr);
  (void)session.Execute(kDivideSql);  // warm the plan cache
  for (auto _ : state) {
    Result<QueryResult> result = session.Execute(kDivideSql);
    if (!result.ok()) {
      state.SkipWithError(result.error().c_str());
      break;
    }
    benchmark::DoNotOptimize(result.value().rows);
  }
}
BENCHMARK(BM_SessionDivide_CacheHit)
    ->ArgNames({"suppliers", "parts"})
    ->Args({64, 16})
    ->Args({512, 32})
    ->Args({2048, 64})
    ->Unit(benchmark::kMicrosecond);

void BM_OracleInterpreter_Divide(benchmark::State& state) {
  Catalog catalog;
  FillTables(state.range(0), state.range(1), nullptr, &catalog);
  for (auto _ : state) {
    Result<Relation> result = sql::ExecuteSql(kDivideSql, catalog);
    if (!result.ok()) {
      state.SkipWithError(result.error().c_str());
      break;
    }
    benchmark::DoNotOptimize(result.value());
  }
}
BENCHMARK(BM_OracleInterpreter_Divide)
    ->ArgNames({"suppliers", "parts"})
    ->Args({64, 16})
    ->Args({512, 32})
    ->Args({2048, 64})
    ->Unit(benchmark::kMicrosecond);

// Compile-only cost (EXPLAIN does not execute): what Prepare()+cache avoid.
void BM_SessionCompileOnly(benchmark::State& state) {
  SessionOptions options;
  options.plan_cache_capacity = 0;
  Session session(options);
  FillTables(64, 16, &session, nullptr);
  std::string explain = std::string("EXPLAIN ") + kDivideSql;
  for (auto _ : state) {
    Result<QueryResult> result = session.Execute(explain);
    if (!result.ok()) {
      state.SkipWithError(result.error().c_str());
      break;
    }
    benchmark::DoNotOptimize(result.value().rows);
  }
}
BENCHMARK(BM_SessionCompileOnly)->Unit(benchmark::kMicrosecond);

void BM_SessionPrepared_InSubquery(benchmark::State& state) {
  Session session;
  FillTables(state.range(0), state.range(1), &session, nullptr);
  Result<PreparedStatement> prepared = session.Prepare(
      "SELECT DISTINCT s# FROM supplies WHERE p# IN ("
      "SELECT p# FROM parts WHERE color = ?)");
  if (!prepared.ok()) {
    state.SkipWithError(prepared.error().c_str());
    return;
  }
  (void)prepared.value().Execute({Value::Str("red")});  // warm
  for (auto _ : state) {
    Result<QueryResult> result = prepared.value().Execute({Value::Str("red")});
    if (!result.ok()) {
      state.SkipWithError(result.error().c_str());
      break;
    }
    benchmark::DoNotOptimize(result.value().rows);
  }
}
BENCHMARK(BM_SessionPrepared_InSubquery)
    ->ArgNames({"suppliers", "parts"})
    ->Args({512, 32})
    ->Args({2048, 64})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace quotient

BENCHMARK_MAIN();
