// Law 7 claim (§5.1.4): when πA(r1') ∩ πA(r1'') = ∅, the whole subtrahend
// division (r1'' ÷ r2) can be skipped — "computing only the first part of
// the difference is inexpensive". Expected shape: the pruned plan's cost is
// independent of |r1''| while the original grows linearly with it.

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "opt/planner.hpp"

namespace quotient {
namespace {

void BM_Law7(benchmark::State& state, bool pruned) {
  size_t small_groups = 16;                                   // σa<=16 side
  size_t big_groups = static_cast<size_t>(state.range(0));    // σa>16 side
  DataGen gen(11);
  Relation divisor = gen.Divisor(16, 64);
  Relation small_part =
      gen.DividendWithHits(small_groups, 4, divisor, /*domain=*/64, /*density=*/0.3);
  DataGen gen2(12);
  Relation big_part =
      gen2.DividendWithHits(big_groups, big_groups / 8 + 1, divisor, 64, 0.3);
  // Shift the big part's candidates so the two πA sets are disjoint.
  std::vector<Tuple> shifted;
  for (const Tuple& t : big_part.tuples()) {
    shifted.push_back({V(t[0].as_int() + static_cast<int64_t>(small_groups) + 1), t[1]});
  }
  Catalog catalog;
  catalog.Put("r1p", small_part);
  catalog.Put("r1pp", Relation(big_part.schema(), shifted));
  catalog.Put("r2", divisor);
  catalog.DeclareDisjoint("r1p", "r1pp", {"a"});

  PlanPtr original = LogicalOp::Difference(
      LogicalOp::Divide(LogicalOp::Scan(catalog, "r1p"), LogicalOp::Scan(catalog, "r2")),
      LogicalOp::Divide(LogicalOp::Scan(catalog, "r1pp"), LogicalOp::Scan(catalog, "r2")));
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog, false};  // disjointness comes from the catalog
  PlanPtr plan = pruned ? engine.Rewrite(original, context) : original;

  for (auto _ : state) {
    Relation q = ExecutePlan(plan, catalog);
    benchmark::DoNotOptimize(q);
  }
  state.counters["plan_nodes"] = static_cast<double>(plan->TreeSize());
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  for (bool pruned : {false, true}) {
    benchmark::RegisterBenchmark(pruned ? "Law7/pruned" : "Law7/original",
                                 [pruned](benchmark::State& s) { BM_Law7(s, pruned); })
        ->Arg(256)
        ->Arg(2048)
        ->Arg(8192)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
