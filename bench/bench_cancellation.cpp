// Query lifecycle governor microbenchmarks (docs/robustness.md):
//
//   * GOVERNOR OVERHEAD — the same HashDivision/1024/16 workload as
//     bench_division_algorithms, once ungoverned (the PR 5 baseline shape:
//     polls are one thread-local load finding no context) and once with a
//     QueryContext installed (polls check the trip word and deadline). The
//     acceptance bar is governed within 3% of ungoverned.
//
//   * CANCEL LATENCY — time from Session::Cancel() on one thread to the
//     in-flight statement unwinding on another: the promised "within one
//     morsel batch of poll latency".

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "bench_common.hpp"
#include "api/session.hpp"
#include "exec/exec_divide.hpp"
#include "exec/pipeline.hpp"
#include "exec/query_context.hpp"
#include "exec/scheduler.hpp"

namespace quotient {
namespace {

using bench::MakeDivisionWorkload;

void BM_HashDivision(benchmark::State& state, bool governed) {
  size_t groups = static_cast<size_t>(state.range(0));
  size_t divisor_size = static_cast<size_t>(state.range(1));
  auto workload = MakeDivisionWorkload(groups, /*domain=*/64, divisor_size);
  // An uncancelled governor with no deadline and no budget: every poll takes
  // the cheap path, every charge is one relaxed fetch_add.
  QueryContext context;
  for (auto _ : state) {
    std::optional<ScopedQueryContext> scope;
    if (governed) scope.emplace(&context);
    Relation q = ExecDivide(workload.dividend, workload.divisor, DivisionAlgorithm::kHash,
                            workload.dividend_enc, workload.divisor_enc);
    benchmark::DoNotOptimize(q);
  }
  state.counters["dividend"] = static_cast<double>(workload.dividend.size());
}

void BM_CancelLatency(benchmark::State& state) {
  // A statement long enough that Cancel() always lands mid-flight; small
  // morsels so poll granularity, not work size, bounds the unwind.
  DataGen gen(42);
  Relation divisor = gen.Divisor(48, /*domain=*/64);
  Relation dividend = gen.DividendWithHits(20000, 2001, divisor, /*domain=*/64,
                                           /*density=*/0.5);
  Session session;
  if (!session.CreateTable("r1", std::move(dividend)).ok() ||
      !session.CreateTable("r2", std::move(divisor)).ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  const std::string sql = "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b";

  size_t cancelled = 0;
  size_t completed = 0;
  for (auto _ : state) {
    std::optional<Result<QueryResult>> result;
    std::atomic<bool> running{false};
    std::thread runner([&] {
      running.store(true, std::memory_order_release);
      result.emplace(session.Execute(sql));
    });
    while (!running.load(std::memory_order_acquire)) std::this_thread::yield();
    // Let the drain get into its morsel loop before pulling the trigger.
    std::this_thread::sleep_for(std::chrono::microseconds(300));
    auto start = std::chrono::steady_clock::now();
    session.Cancel();
    runner.join();
    auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    if (!result->ok() && result->status().code() == StatusCode::kCancelled) {
      ++cancelled;
    } else {
      ++completed;  // statement finished before the cancel landed
    }
  }
  state.counters["cancelled"] = static_cast<double>(cancelled);
  state.counters["completed_before_cancel"] = static_cast<double>(completed);
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  benchmark::RegisterBenchmark("BM_HashDivision/ungoverned",
                               [](benchmark::State& s) { BM_HashDivision(s, false); })
      ->Args({1024, 16})
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BM_HashDivision/governed",
                               [](benchmark::State& s) { BM_HashDivision(s, true); })
      ->Args({1024, 16})
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BM_CancelLatency", BM_CancelLatency)
      ->UseManualTime()
      ->Unit(benchmark::kMicrosecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
