// Section 3: frequent itemset discovery. Compares the three support-
// counting strategies — great divide on the vertical layout (the paper's
// proposal), direct hash probing (classic Apriori), and the literal SQL
// DIVIDE BY query. Expected shape: great divide is competitive with hash
// probing and both crush the interpreted SQL path; support counting via ÷*
// scales with |transactions| + matches rather than |transactions| x
// |candidates|.

#include "bench_common.hpp"
#include "mining/apriori.hpp"

namespace quotient {
namespace {

void BM_Mining(benchmark::State& state, mining::SupportCounting method) {
  size_t transactions = static_cast<size_t>(state.range(0));
  int64_t min_support = static_cast<int64_t>(transactions / 8);
  DataGen gen(2026);
  Relation table = gen.Transactions(transactions, /*items=*/24, /*min_size=*/3,
                                    /*max_size=*/8);
  for (auto _ : state) {
    mining::Apriori miner(table, min_support, method);
    std::vector<mining::FrequentItemset> result = miner.Run();
    benchmark::DoNotOptimize(result);
    state.counters["frequent_itemsets"] = static_cast<double>(result.size());
  }
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  for (auto method : {mining::SupportCounting::kGreatDivide,
                      mining::SupportCounting::kHashProbe,
                      mining::SupportCounting::kSqlDivide}) {
    std::string name = std::string("Apriori/") + mining::SupportCountingName(method);
    benchmark::RegisterBenchmark(
        name.c_str(), [method](benchmark::State& s) { BM_Mining(s, method); })
        ->Arg(128)
        ->Arg(512)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
