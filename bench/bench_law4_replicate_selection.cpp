// Law 4 claim: replicating a divisor selection σp(B) onto the dividend
// removes dividend tuples that can never match any divisor tuple. Expected
// shape: the replicated plan wins when p is selective on B, because the
// division sees a much smaller dividend.

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "opt/planner.hpp"

namespace quotient {
namespace {

void BM_Law4(benchmark::State& state, bool replicated) {
  int64_t b_cut = state.range(0);  // divisor restricted to b < b_cut
  auto workload = bench::MakeDivisionWorkload(/*groups=*/1024, /*domain=*/128,
                                              /*divisor_size=*/64, /*density=*/0.5);
  Catalog catalog;
  catalog.Put("r1", workload.dividend);
  catalog.Put("r2", workload.divisor);
  ExprPtr p = Expr::ColCmp("b", CmpOp::kLt, V(b_cut));

  PlanPtr original = LogicalOp::Divide(
      LogicalOp::Scan(catalog, "r1"),
      LogicalOp::Select(LogicalOp::Scan(catalog, "r2"), p));
  // Law 4's rewrite needs the runtime nonemptiness guard (erratum).
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog, /*allow_runtime_checks=*/true};
  PlanPtr plan = replicated ? engine.Rewrite(original, context) : original;

  for (auto _ : state) {
    Relation q = ExecutePlan(plan, catalog);
    benchmark::DoNotOptimize(q);
  }
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  for (bool replicated : {false, true}) {
    benchmark::RegisterBenchmark(replicated ? "Law4/replicated" : "Law4/original",
                                 [replicated](benchmark::State& s) { BM_Law4(s, replicated); })
        ->Arg(8)
        ->Arg(32)
        ->Arg(128)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
