// Laws 11/12 claim (§5.1.7): when the dividend is freshly grouped (A or B
// is a key), the division collapses to a single semi-join plus projection —
// "can improve the query execution time considerably because the small
// divide operation is replaced by a single join operation and a projection
// on the join result". The grouping itself is common to both plans, so this
// bench isolates the stage the law rewrites: division vs. semi-join over the
// already-grouped dividend r1. Expected shape: the semi-join form wins and
// the gap grows with the divisor size (Law 11) / FK-divisor size (Law 12).

#include "bench_common.hpp"
#include "core/laws.hpp"

namespace quotient {
namespace {

/// Law 11 workload: r1(a, b) with a unique (it came out of aγsum(x)→b).
Relation GroupedOnA(size_t groups) {
  DataGen gen(31);
  std::vector<Tuple> rows;
  for (size_t g = 0; g < groups; ++g) {
    rows.push_back({V(static_cast<int64_t>(g)), V(gen.UniformInt(0, 63))});
  }
  return Relation(Schema::Parse("a, b"), rows);
}

void BM_Law11(benchmark::State& state, bool rewritten) {
  size_t groups = static_cast<size_t>(state.range(0));
  size_t divisor_size = static_cast<size_t>(state.range(1));
  Relation r1 = GroupedOnA(groups);
  std::vector<Tuple> r2_rows;
  for (size_t v = 0; v < divisor_size; ++v) r2_rows.push_back({V(static_cast<int64_t>(v))});
  Relation r2(Schema::Parse("b"), r2_rows);
  for (auto _ : state) {
    Relation q = rewritten ? laws::Law11Rhs(r1, r2) : laws::Law11Lhs(r1, r2);
    benchmark::DoNotOptimize(q);
  }
}

/// Law 12 workload: r1(a, b) with b unique (from bγsum(x)→a) and an FK
/// divisor covering a fraction of the groups.
void BM_Law12(benchmark::State& state, bool rewritten) {
  size_t groups = static_cast<size_t>(state.range(0));
  size_t divisor_size = static_cast<size_t>(state.range(1));
  DataGen gen(32);
  std::vector<Tuple> r1_rows;
  for (size_t g = 0; g < groups; ++g) {
    r1_rows.push_back({V(gen.UniformInt(0, 9)), V(static_cast<int64_t>(g))});
  }
  Relation r1(Schema::Parse("a, b"), r1_rows);
  std::vector<Tuple> r2_rows;
  for (size_t i = 0; i < divisor_size; ++i) {
    r2_rows.push_back({V(static_cast<int64_t>(i * (groups / divisor_size)))});
  }
  Relation r2(Schema::Parse("b"), r2_rows);
  for (auto _ : state) {
    Relation q = rewritten ? laws::Law12Rhs(r1, r2) : laws::Law12Lhs(r1, r2);
    benchmark::DoNotOptimize(q);
  }
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  for (bool rewritten : {false, true}) {
    benchmark::RegisterBenchmark(rewritten ? "Law11/semijoin" : "Law11/divide",
                                 [rewritten](benchmark::State& s) { BM_Law11(s, rewritten); })
        ->ArgsProduct({{4096, 32768}, {1, 64}})
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(rewritten ? "Law12/semijoin" : "Law12/divide",
                                 [rewritten](benchmark::State& s) { BM_Law12(s, rewritten); })
        ->ArgsProduct({{4096, 32768}, {64, 2048}})
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
