// Cost-guided rewrite search (opt/memo.hpp, docs/optimizer.md): what the
// memoized exploration costs at compile time, and what it buys at run time.
//
//   Optimize/greedy vs Optimize/search  — compile-time overhead of the
//       best-first exploration over the greedy fixpoint, on a law-rich plan
//       (the search visits every alternative the greedy path skips).
//   LawChoice/greedy vs LawChoice/search — execution of the plan each mode
//       picks for a union-divisor query. Law 1 lives only in the search
//       rule set, so greedy runs the original r1 ÷ (r2' ∪ r2'') while the
//       search may adopt the semi-join form when the model scores it
//       cheaper: the gap is what cost-driven choice is worth end to end.

#include "bench_common.hpp"
#include "opt/optimizer.hpp"

namespace quotient {
namespace {

/// σ over ÷ over ×: selection pushdown, product laws, and their orderings
/// all compete — a dense search space from a small plan.
PlanPtr LawRichPlan(const Catalog& catalog) {
  PlanPtr divide = LogicalOp::Divide(
      LogicalOp::Product(LogicalOp::Values(Relation::Parse("z", "1; 2"), "star"),
                         LogicalOp::Scan(catalog, "r1")),
      LogicalOp::Scan(catalog, "r2"));
  return LogicalOp::Select(divide, Expr::ColCmp("a", CmpOp::kLt, V(64)));
}

void BM_Optimize(benchmark::State& state, bool search) {
  auto workload = bench::MakeDivisionWorkload(/*groups=*/2048, /*domain=*/64,
                                              /*divisor_size=*/16);
  Catalog catalog;
  catalog.Put("r1", workload.dividend);
  catalog.Put("r2", workload.divisor);
  OptimizerOptions options;
  options.search = search;
  // One long-lived stats cache, like a snapshot's: harvests are warm, the
  // loop measures pure exploration + costing.
  StatsCache stats;
  Optimizer optimizer(catalog, options, &stats);
  PlanPtr plan = LawRichPlan(catalog);
  (void)optimizer.Optimize(plan);  // warm the stats harvests
  size_t candidates = 0;
  for (auto _ : state) {
    OptimizationReport report = optimizer.Optimize(plan);
    candidates = report.search_candidates;
    benchmark::DoNotOptimize(report.chosen_cost);
  }
  state.counters["candidates"] = static_cast<double>(candidates);
}

void BM_LawChoice(benchmark::State& state, bool search) {
  // Union divisor: only the search rule set carries Law 1, so the two
  // modes can genuinely pick different plans for the same query. The shape
  // is tuned so Law 1 wins the cost race: many near-singleton groups make
  // the divide's per-group bitmap work dominate the scans, and the thin
  // first divisor slice prunes nearly every candidate before the wide
  // second slice ever gets checked.
  DataGen gen(42);
  Relation full_divisor = gen.Divisor(/*size=*/4096, /*domain=*/8192);
  Relation dividend = gen.DividendWithHits(/*groups=*/16384, /*hit_groups=*/4,
                                           full_divisor, /*domain=*/8192,
                                           /*density=*/0.001);
  Catalog catalog;
  catalog.Put("r1", dividend);
  // Split the divisor into a thin prefix and a wide tail united in the plan.
  std::vector<Tuple> first(full_divisor.tuples().begin(),
                           full_divisor.tuples().begin() + 64);
  std::vector<Tuple> second(full_divisor.tuples().begin() + 64,
                            full_divisor.tuples().end());
  catalog.Put("r2a", Relation(full_divisor.schema(), std::move(first)));
  catalog.Put("r2b", Relation(full_divisor.schema(), std::move(second)));

  OptimizerOptions options;
  options.search = search;
  StatsCache stats;
  Optimizer optimizer(catalog, options, &stats);
  PlanPtr plan = LogicalOp::Divide(
      LogicalOp::Scan(catalog, "r1"),
      LogicalOp::Union(LogicalOp::Scan(catalog, "r2a"), LogicalOp::Scan(catalog, "r2b")));
  OptimizationReport report = optimizer.Optimize(plan);
  for (auto _ : state) {
    Relation q = ExecutePlan(report.chosen, catalog, {}, nullptr, nullptr, &stats);
    benchmark::DoNotOptimize(q);
  }
  state.counters["chosen_cost"] = report.chosen_cost;
  state.counters["rewrites"] = static_cast<double>(report.steps.size());
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  for (bool search : {false, true}) {
    benchmark::RegisterBenchmark(search ? "Optimize/search" : "Optimize/greedy",
                                 [search](benchmark::State& s) { BM_Optimize(s, search); })
        ->Unit(benchmark::kMicrosecond);
    benchmark::RegisterBenchmark(search ? "LawChoice/search" : "LawChoice/greedy",
                                 [search](benchmark::State& s) { BM_LawChoice(s, search); })
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
