// Spill-to-disk and admission-control microbenchmarks (docs/robustness.md):
//
//   * SPILL OVERHEAD — the same HashDivision/1024/16 workload as
//     bench_cancellation, once fully in memory and once with a tiny spill
//     watermark so every id-column store runs through the temp file. The
//     gap is the cost of graceful degradation: what a statement pays to
//     keep answering instead of tripping kResourceExhausted.
//
//   * ADMISSION LATENCY — time for a statement to clear the admission
//     controller when the budget is free (the uncontended fast path every
//     governed statement now pays) and when it must wait for a running
//     statement's grant to release.

#include <chrono>
#include <optional>
#include <thread>

#include "bench_common.hpp"
#include "api/database.hpp"
#include "api/session.hpp"
#include "exec/exec_divide.hpp"
#include "exec/pipeline.hpp"
#include "exec/query_context.hpp"
#include "exec/scheduler.hpp"

namespace quotient {
namespace {

using bench::MakeDivisionWorkload;

void BM_HashDivision(benchmark::State& state, size_t spill_watermark) {
  size_t groups = static_cast<size_t>(state.range(0));
  size_t divisor_size = static_cast<size_t>(state.range(1));
  auto workload = MakeDivisionWorkload(groups, /*domain=*/64, divisor_size);
  size_t partitions = 0;
  for (auto _ : state) {
    QueryContext context;
    if (spill_watermark > 0) context.EnableSpill(spill_watermark, /*dir=*/"");
    ScopedQueryContext scope(&context);
    Relation q = ExecDivide(workload.dividend, workload.divisor, DivisionAlgorithm::kHash,
                            workload.dividend_enc, workload.divisor_enc);
    benchmark::DoNotOptimize(q);
    partitions = context.spill_partitions();
  }
  state.counters["dividend"] = static_cast<double>(workload.dividend.size());
  state.counters["spill_partitions"] = static_cast<double>(partitions);
}

void BM_AdmissionUncontended(benchmark::State& state) {
  DatabaseOptions db_options;
  db_options.admission_memory_bytes = 64ull << 20;
  auto database = std::make_shared<Database>(db_options);
  if (!database->CreateTable("t", Relation::Parse("a", "1; 2; 3")).ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  SessionOptions options;
  options.memory_budget_bytes = 1 << 20;
  Session session(database, options);
  for (auto _ : state) {
    Result<QueryResult> result = session.Execute("SELECT a FROM t");
    benchmark::DoNotOptimize(result);
  }
  state.counters["admitted"] = static_cast<double>(database->admission_stats().admitted);
}

void BM_AdmissionQueuedHandoff(benchmark::State& state) {
  // Time from a grant releasing to a queued statement completing: one
  // statement holds the whole budget via an open cursor, another waits;
  // closing the cursor hands the budget over.
  DatabaseOptions db_options;
  db_options.admission_memory_bytes = 1 << 20;
  auto database = std::make_shared<Database>(db_options);
  if (!database->CreateTable("t", Relation::Parse("a", "1; 2; 3")).ok()) {
    state.SkipWithError("workload setup failed");
    return;
  }
  SessionOptions options;
  options.memory_budget_bytes = 1 << 20;
  for (auto _ : state) {
    Session holder(database, options);
    Result<ResultCursor> opened = holder.Query("SELECT a FROM t");
    if (!opened.ok()) {
      state.SkipWithError("holder failed to open");
      return;
    }
    ResultCursor cursor = std::move(opened).value();
    std::optional<Result<QueryResult>> queued_result;
    std::thread waiter([&] {
      Session queued(database, options);
      queued_result.emplace(queued.Execute("SELECT a FROM t"));
    });
    // Give the waiter time to join the admission queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto start = std::chrono::steady_clock::now();
    cursor.Close();
    waiter.join();
    auto stop = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(stop - start).count());
    if (!queued_result->ok()) {
      state.SkipWithError("queued statement failed");
      return;
    }
  }
  state.counters["queued"] = static_cast<double>(database->admission_stats().queued);
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  benchmark::RegisterBenchmark("BM_HashDivision/in_memory",
                               [](benchmark::State& s) { BM_HashDivision(s, 0); })
      ->Args({1024, 16})
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BM_HashDivision/spill_forced",
                               [](benchmark::State& s) { BM_HashDivision(s, 1); })
      ->Args({1024, 16})
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BM_AdmissionUncontended", BM_AdmissionUncontended)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("BM_AdmissionQueuedHandoff", BM_AdmissionQueuedHandoff)
      ->UseManualTime()
      ->Unit(benchmark::kMicrosecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
