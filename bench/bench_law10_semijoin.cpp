// Law 10 claim (§5.1.6): (r1 ÷ r2) ⋉ r3 = (r1 ⋉ r3) ÷ r2 — "it may be
// cheaper to keep r3 in memory and compute the semi-join in one scan over
// r1, especially if the join is highly selective". Expected shape: the
// semi-join-first plan wins when |r3| keeps few candidates, and the gap
// narrows as r3 grows toward all of πA(r1).

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "opt/planner.hpp"

namespace quotient {
namespace {

void BM_Law10(benchmark::State& state, bool semijoin_first) {
  size_t groups = 4096;
  size_t r3_size = static_cast<size_t>(state.range(0));
  auto workload = bench::MakeDivisionWorkload(groups, /*domain=*/64, /*divisor_size=*/16,
                                              /*density=*/0.4);
  std::vector<Tuple> r3_rows;
  for (size_t i = 0; i < r3_size; ++i) {
    r3_rows.push_back({V(static_cast<int64_t>(i * (groups / r3_size)))});
  }
  Catalog catalog;
  catalog.Put("r1", workload.dividend);
  catalog.Put("r2", workload.divisor);
  catalog.Put("r3", Relation(Schema::Parse("a"), r3_rows));

  PlanPtr original = LogicalOp::SemiJoin(
      LogicalOp::Divide(LogicalOp::Scan(catalog, "r1"), LogicalOp::Scan(catalog, "r2")),
      LogicalOp::Scan(catalog, "r3"));
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog, false};
  PlanPtr plan = semijoin_first ? engine.Rewrite(original, context) : original;

  for (auto _ : state) {
    Relation q = ExecutePlan(plan, catalog);
    benchmark::DoNotOptimize(q);
  }
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  for (bool first : {false, true}) {
    benchmark::RegisterBenchmark(first ? "Law10/semijoin_first" : "Law10/divide_first",
                                 [first](benchmark::State& s) { BM_Law10(s, first); })
        ->Arg(16)
        ->Arg(256)
        ->Arg(4096)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
