// Example 4 claim (§5.2.4): pushing a selective equi-join below ÷* means
// "much fewer dividend groups ... have to be tested against r2". Expected
// shape: join-below wins when the join keeps few groups; with an
// unselective join the two orders converge.

#include "bench_common.hpp"
#include "core/laws.hpp"
#include "opt/planner.hpp"

namespace quotient {
namespace {

void BM_Example4(benchmark::State& state, bool join_below) {
  size_t keep = static_cast<size_t>(state.range(0));  // |r1*|: join selectivity knob
  auto workload = bench::MakeGreatDivideWorkload(/*groups=*/2048, /*domain=*/48,
                                                 /*divisor_groups=*/32);
  Relation star_star = Rename(workload.dividend, {{"a", "a2"}});
  std::vector<Tuple> star_rows;
  for (size_t i = 0; i < keep; ++i) {
    star_rows.push_back({V(static_cast<int64_t>(i * (2048 / keep)))});
  }
  Relation star(Schema::Parse("a1"), star_rows);

  Catalog catalog;
  catalog.Put("star", star);
  catalog.Put("ss", star_star);
  catalog.Put("r2", workload.divisor);

  ExprPtr theta = Expr::ColEqCol("a1", "a2");
  PlanPtr plan;
  if (join_below) {
    plan = LogicalOp::GreatDivide(
        LogicalOp::ThetaJoin(LogicalOp::Scan(catalog, "star"), LogicalOp::Scan(catalog, "ss"),
                             theta),
        LogicalOp::Scan(catalog, "r2"));
  } else {
    plan = LogicalOp::ThetaJoin(
        LogicalOp::Scan(catalog, "star"),
        LogicalOp::GreatDivide(LogicalOp::Scan(catalog, "ss"), LogicalOp::Scan(catalog, "r2")),
        theta);
  }
  for (auto _ : state) {
    Relation q = ExecutePlan(plan, catalog);
    benchmark::DoNotOptimize(q);
  }
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  for (bool below : {false, true}) {
    benchmark::RegisterBenchmark(below ? "Example4/join_below" : "Example4/join_above",
                                 [below](benchmark::State& s) { BM_Example4(s, below); })
        ->Arg(16)
        ->Arg(128)
        ->Arg(1024)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
