// Encode cost vs. probe savings of the key codec, on int-keyed and
// string-keyed division workloads.
//
// "TupleKeyed" benchmarks measure the pre-codec discipline — hash tables
// keyed by materialized Tuples (a ProjectTuple allocation per probe plus
// variant-walking hash/equality). "Encoded" benchmarks measure the codec
// discipline: dictionary-encode once, then probe flat uint32/uint64 keys.
// EncodeOnly isolates the build cost the codec adds up front; DivisionE2E
// shows the end-to-end effect on the hash division itself.

#include <unordered_map>
#include <unordered_set>

#include "bench_common.hpp"
#include "exec/exec_divide.hpp"
#include "exec/key_codec.hpp"

namespace quotient {
namespace {

using bench::MakeDivisionWorkload;

/// An (int-B) division workload, optionally remapped to a string B domain.
bench::DivisionWorkload MakeWorkload(size_t groups, bool string_b) {
  auto workload = MakeDivisionWorkload(groups, /*domain=*/64, /*divisor_size=*/16);
  if (string_b) {
    workload.dividend = StringifyAttribute(workload.dividend, "b", "item_");
    workload.divisor = StringifyAttribute(workload.divisor, "b", "item_");
  }
  return workload;
}

/// Encode cost alone: dictionary-build + seal over the dividend's (a, b).
void BM_EncodeOnly(benchmark::State& state, bool string_b) {
  auto workload = MakeWorkload(static_cast<size_t>(state.range(0)), string_b);
  const std::vector<size_t> a_idx = {0};
  const std::vector<size_t> b_idx = {1};
  for (auto _ : state) {
    KeyCodec a_codec(1);
    KeyCodec b_codec(1);
    a_codec.Reserve(workload.dividend.size());
    b_codec.Reserve(workload.dividend.size());
    for (const Tuple& t : workload.dividend.tuples()) {
      a_codec.Add(t, a_idx);
      b_codec.Add(t, b_idx);
    }
    a_codec.Seal();
    b_codec.Seal();
    benchmark::DoNotOptimize(a_codec);
    benchmark::DoNotOptimize(b_codec);
  }
  state.counters["rows"] = static_cast<double>(workload.dividend.size());
}

/// The old discipline: build an unordered_set of projected key Tuples over
/// the divisor, then probe it with a projected Tuple per dividend row.
void BM_TupleKeyedProbes(benchmark::State& state, bool string_b) {
  auto workload = MakeWorkload(static_cast<size_t>(state.range(0)), string_b);
  const std::vector<size_t> b_idx = {1};
  for (auto _ : state) {
    std::unordered_set<Tuple, TupleHash, TupleEq> divisor_set;
    for (const Tuple& t : workload.divisor.tuples()) divisor_set.insert(t);
    size_t hits = 0;
    for (const Tuple& t : workload.dividend.tuples()) {
      hits += divisor_set.count(ProjectTuple(t, b_idx));
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["rows"] = static_cast<double>(workload.dividend.size());
}

/// The codec discipline for the same membership test: encode the divisor
/// once, then probe the dictionary per dividend row.
void BM_EncodedProbes(benchmark::State& state, bool string_b) {
  auto workload = MakeWorkload(static_cast<size_t>(state.range(0)), string_b);
  const std::vector<size_t> divisor_idx = {0};
  const std::vector<size_t> b_idx = {1};
  for (auto _ : state) {
    KeyCodec codec(1);
    codec.Reserve(workload.divisor.size());
    for (const Tuple& t : workload.divisor.tuples()) codec.Add(t, divisor_idx);
    codec.Seal();
    KeyNumbering numbering;
    numbering.Build(codec);
    size_t hits = 0;
    for (const Tuple& t : workload.dividend.tuples()) {
      hits += numbering.Probe(t, b_idx) != KeyNumbering::kNotFound;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.counters["rows"] = static_cast<double>(workload.dividend.size());
}

/// End to end: the key-encoded hash division on the same workloads.
void BM_DivisionE2E(benchmark::State& state, bool string_b) {
  auto workload = MakeWorkload(static_cast<size_t>(state.range(0)), string_b);
  for (auto _ : state) {
    Relation q = ExecDivide(workload.dividend, workload.divisor, DivisionAlgorithm::kHash);
    benchmark::DoNotOptimize(q);
  }
  state.counters["rows"] = static_cast<double>(workload.dividend.size());
}

void Register(const char* name, void (*fn)(benchmark::State&, bool), bool string_b) {
  benchmark::RegisterBenchmark(name, [fn, string_b](benchmark::State& state) {
    fn(state, string_b);
  })
      ->Arg(256)
      ->Arg(1024)
      ->Unit(benchmark::kMicrosecond);
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  Register("EncodeOnly/int", BM_EncodeOnly, false);
  Register("EncodeOnly/string", BM_EncodeOnly, true);
  Register("TupleKeyedProbes/int", BM_TupleKeyedProbes, false);
  Register("TupleKeyedProbes/string", BM_TupleKeyedProbes, true);
  Register("EncodedProbes/int", BM_EncodedProbes, false);
  Register("EncodedProbes/string", BM_EncodedProbes, true);
  Register("DivisionE2E/int", BM_DivisionE2E, false);
  Register("DivisionE2E/string", BM_DivisionE2E, true);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
