// Cross-query artifact recycler (exec/recycler.hpp, docs/recycler.md):
// the cost of re-executing a statement whose blocking build state is
// served from the database-wide recycler, against the same statement
// rebuilding that state from scratch every time.
//
// Three database configurations per workload:
//   * off   — recycler_memory_bytes = 0: every execution rebuilds (the
//             pre-recycler engine; plan cache warm in all variants, so
//             compile cost is out of the picture).
//   * warm  — recycler on and pre-populated: every execution adopts the
//             published artifacts; the measured work is probe/output only.
//   * cold  — recycler on but cleared before each timed execution: the
//             build-and-publish path, i.e. the overhead a first execution
//             pays to make every later one warm.
//
// scripts/run_benchmarks.sh merges off/warm into BENCH_recycler.json with
// the speedup per workload; the acceptance bar is >= 2x warm-vs-off on the
// build-dominated workloads (division, grouping).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "api/session.hpp"
#include "bench_common.hpp"

namespace quotient {
namespace {

// Build-heavy workloads: a division whose probe state covers the whole
// dividend drain, and a grouping whose artifact is the finished aggregate.
constexpr const char* kDivideSql =
    "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b";
constexpr const char* kGroupBySql =
    "SELECT a, COUNT(b) AS n FROM r1 GROUP BY a";
constexpr const char* kSemiJoinSql =
    "SELECT DISTINCT a FROM r1 WHERE b IN (SELECT b FROM r2)";

std::shared_ptr<Database> BuildDatabase(size_t recycler_bytes) {
  DatabaseOptions options;
  options.recycler_memory_bytes = recycler_bytes;
  auto db = std::make_shared<Database>(options);
  DataGen gen(42);
  Relation divisor = gen.Divisor(48, /*domain=*/64);
  Relation dividend =
      gen.DividendWithHits(4096, 409, divisor, /*domain=*/64, /*density=*/0.5);
  db->CreateTable("r1", std::move(dividend));
  db->CreateTable("r2", std::move(divisor));
  return db;
}

/// One shared database per configuration for the whole binary run, exactly
/// like a long-lived server process. The plan cache is warmed by the first
/// execution; the recycler state is what each variant controls.
const std::shared_ptr<Database>& OffDatabase() {
  static const std::shared_ptr<Database> db = BuildDatabase(0);
  return db;
}

const std::shared_ptr<Database>& OnDatabase() {
  static const std::shared_ptr<Database> db = BuildDatabase(64ull << 20);
  return db;
}

void RunStatement(benchmark::State& state, const std::shared_ptr<Database>& db,
                  const char* sql, bool clear_each_iteration) {
  Session session(db);
  Result<QueryResult> warmup = session.Execute(sql);  // plan cache + recycler
  if (!warmup.ok()) {
    state.SkipWithError(warmup.error().c_str());
    return;
  }
  for (auto _ : state) {
    if (clear_each_iteration) {
      state.PauseTiming();
      db->ClearRecycler();
      state.ResumeTiming();
    }
    Result<QueryResult> result = session.Execute(sql);
    if (!result.ok()) {
      state.SkipWithError(result.error().c_str());
      break;
    }
    benchmark::DoNotOptimize(result.value().rows);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Recycler_Divide_off(benchmark::State& state) {
  RunStatement(state, OffDatabase(), kDivideSql, false);
}
void BM_Recycler_Divide_warm(benchmark::State& state) {
  RunStatement(state, OnDatabase(), kDivideSql, false);
}
void BM_Recycler_Divide_cold(benchmark::State& state) {
  RunStatement(state, OnDatabase(), kDivideSql, true);
}

void BM_Recycler_GroupBy_off(benchmark::State& state) {
  RunStatement(state, OffDatabase(), kGroupBySql, false);
}
void BM_Recycler_GroupBy_warm(benchmark::State& state) {
  RunStatement(state, OnDatabase(), kGroupBySql, false);
}
void BM_Recycler_GroupBy_cold(benchmark::State& state) {
  RunStatement(state, OnDatabase(), kGroupBySql, true);
}

void BM_Recycler_SemiJoin_off(benchmark::State& state) {
  RunStatement(state, OffDatabase(), kSemiJoinSql, false);
}
void BM_Recycler_SemiJoin_warm(benchmark::State& state) {
  RunStatement(state, OnDatabase(), kSemiJoinSql, false);
}

BENCHMARK(BM_Recycler_Divide_off)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Recycler_Divide_warm)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Recycler_Divide_cold)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Recycler_GroupBy_off)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Recycler_GroupBy_warm)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Recycler_GroupBy_cold)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Recycler_SemiJoin_off)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Recycler_SemiJoin_warm)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace quotient

BENCHMARK_MAIN();
