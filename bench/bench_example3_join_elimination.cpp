// Example 3 claim (§5.1.6): the chain Law 4 → Law 9 → Example 1 turns
// (r1* ⋈_{b1<b2} r1**) ÷ r2 into r1* ÷ πb1(σb1<b2(r2)) minus a cheap guard —
// "no join between r1* and r1** is required". Expected shape: the rewritten
// form's cost is independent of |r1**| and avoids the join blow-up, so it
// wins by a growing factor as r1* × r1** gets larger.

#include "bench_common.hpp"
#include "core/laws.hpp"

namespace quotient {
namespace {

struct Workload {
  Relation star;       // (a, b1)
  Relation star_star;  // (b2)
  Relation r2;         // (b1, b2), πb2(r2) ⊆ r1**
};

Workload MakeWorkload(size_t groups, size_t star_star_size) {
  DataGen gen(17);
  Relation star = Rename(gen.Dividend(groups, 32, 0.4), {{"b", "b1"}});
  std::vector<Tuple> ss_rows;
  for (size_t i = 0; i < star_star_size; ++i) {
    ss_rows.push_back({V(static_cast<int64_t>(i + 100))});  // b2 values > all b1
  }
  Relation star_star(Schema::Parse("b2"), ss_rows);
  std::vector<Tuple> r2_rows;
  for (int64_t b1 = 0; b1 < 10; ++b1) {
    r2_rows.push_back({V(b1), V(static_cast<int64_t>(
                                 100 + gen.UniformInt(0, static_cast<int64_t>(star_star_size) -
                                                             1)))});
  }
  return {std::move(star), std::move(star_star),
          Relation(Schema::Parse("b1, b2"), r2_rows)};
}

void BM_Example3(benchmark::State& state, bool rewritten) {
  Workload w = MakeWorkload(static_cast<size_t>(state.range(0)),
                            static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    Relation q = rewritten ? laws::Example3Rhs(w.star, w.star_star, w.r2)
                           : laws::Example3Lhs(w.star, w.star_star, w.r2);
    benchmark::DoNotOptimize(q);
  }
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  for (bool rewritten : {false, true}) {
    benchmark::RegisterBenchmark(rewritten ? "Example3/join_free" : "Example3/with_join",
                                 [rewritten](benchmark::State& s) { BM_Example3(s, rewritten); })
        ->ArgsProduct({{128, 512}, {16, 128}})
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
