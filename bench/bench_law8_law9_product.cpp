// Laws 8/9 claim (§5.1.5): a division whose dividend is a Cartesian product
// need not materialize the product. Law 8 pushes ÷ to the B-carrying factor
// (r1* × r1**) ÷ r2 = r1* × (r1** ÷ r2); Law 9 eliminates the covered
// factor entirely, (r1* × r1**) ÷ r2 = r1* ÷ πB1(r2). Expected shape: the
// rewritten plans avoid the |r1*| × |r1**| blow-up, so the gap grows with
// the size of the eliminated factor.

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "opt/planner.hpp"

namespace quotient {
namespace {

void BM_Law8(benchmark::State& state, bool pushed) {
  size_t star_size = static_cast<size_t>(state.range(0));
  DataGen gen(21);
  std::vector<Tuple> star_rows;
  for (size_t i = 0; i < star_size; ++i) star_rows.push_back({V(static_cast<int64_t>(i))});
  Relation star(Schema::Parse("z"), star_rows);
  auto workload = bench::MakeDivisionWorkload(/*groups=*/128, /*domain=*/32,
                                              /*divisor_size=*/8);
  Catalog catalog;
  catalog.Put("star", star);
  catalog.Put("ss", workload.dividend);
  catalog.Put("r2", workload.divisor);

  PlanPtr original = LogicalOp::Divide(
      LogicalOp::Product(LogicalOp::Scan(catalog, "star"), LogicalOp::Scan(catalog, "ss")),
      LogicalOp::Scan(catalog, "r2"));
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog, false};
  PlanPtr plan = pushed ? engine.Rewrite(original, context) : original;

  for (auto _ : state) {
    Relation q = ExecutePlan(plan, catalog);
    benchmark::DoNotOptimize(q);
  }
}

void BM_Law9(benchmark::State& state, bool eliminated) {
  size_t covered_size = static_cast<size_t>(state.range(0));
  DataGen gen(22);
  // r1**(b2) = the covered factor; r2(b1, b2) references it completely.
  std::vector<Tuple> ss_rows;
  for (size_t i = 0; i < covered_size; ++i) ss_rows.push_back({V(static_cast<int64_t>(i))});
  Relation star_star(Schema::Parse("b2"), ss_rows);
  Relation star = Rename(
      gen.DividendWithHits(512, 64, gen.Divisor(12, 32), /*domain=*/32, 0.3), {{"b", "b1"}});
  std::vector<Tuple> divisor_rows;
  for (int64_t b1 = 0; b1 < 12; ++b1) {
    divisor_rows.push_back({V(b1), V(static_cast<int64_t>(gen.UniformInt(
                                       0, static_cast<int64_t>(covered_size) - 1)))});
  }
  Relation r2(Schema::Parse("b1, b2"), divisor_rows);

  Catalog catalog;
  catalog.Put("star", star);
  catalog.Put("ss", star_star);
  catalog.Put("r2", r2);
  catalog.DeclareForeignKey("r2", {"b2"}, "ss");

  PlanPtr original = LogicalOp::Divide(
      LogicalOp::Product(LogicalOp::Scan(catalog, "star"), LogicalOp::Scan(catalog, "ss")),
      LogicalOp::Scan(catalog, "r2"));
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog, /*allow_runtime_checks=*/true};
  PlanPtr plan = eliminated ? engine.Rewrite(original, context) : original;

  for (auto _ : state) {
    Relation q = ExecutePlan(plan, catalog);
    benchmark::DoNotOptimize(q);
  }
  state.counters["plan_nodes"] = static_cast<double>(plan->TreeSize());
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  for (bool pushed : {false, true}) {
    benchmark::RegisterBenchmark(pushed ? "Law8/pushed" : "Law8/original",
                                 [pushed](benchmark::State& s) { BM_Law8(s, pushed); })
        ->Arg(4)
        ->Arg(32)
        ->Arg(128)
        ->Unit(benchmark::kMicrosecond);
  }
  for (bool eliminated : {false, true}) {
    benchmark::RegisterBenchmark(eliminated ? "Law9/eliminated" : "Law9/original",
                                 [eliminated](benchmark::State& s) { BM_Law9(s, eliminated); })
        ->Arg(4)
        ->Arg(32)
        ->Arg(128)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
