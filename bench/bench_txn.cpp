// Transaction subsystem (api/txn.hpp, docs/transactions.md): the cost of
// the BEGIN/COMMIT statement machinery, of a write-set commit's validate +
// publish under the DDL writer mutex, of the autocommit DML retry loop, and
// of reading through a dirty transaction's private overlay (which bypasses
// the shared plan cache and the artifact recycler by design).
//
// scripts/run_benchmarks.sh writes these as BENCH_txn.json.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "api/session.hpp"
#include "bench_common.hpp"

namespace quotient {
namespace {

std::shared_ptr<Database> MakeDb() {
  auto db = std::make_shared<Database>();
  db->CreateTable("t", "a:int");
  return db;
}

/// Keeps table growth bounded so per-iteration cost stays comparable:
/// resets t every `kResetEvery` committed rows, outside the timed region.
constexpr int64_t kResetEvery = 4096;

void ResetIfDue(benchmark::State& state, Session& session, int64_t count) {
  if (count % kResetEvery != 0) return;
  state.PauseTiming();
  Result<QueryResult> cleared = session.Execute("DELETE FROM t");
  if (!cleared.ok()) state.SkipWithError(cleared.error().c_str());
  state.ResumeTiming();
}

/// Control-statement machinery alone: a read-only transaction commits
/// without taking the DDL writer mutex (empty write set).
void BM_TxnBeginCommitReadOnly(benchmark::State& state) {
  Session session(MakeDb());
  for (auto _ : state) {
    Result<QueryResult> begin = session.Execute("BEGIN");
    Result<QueryResult> commit = session.Execute("COMMIT");
    if (!begin.ok() || !commit.ok()) state.SkipWithError("control statement failed");
  }
}
BENCHMARK(BM_TxnBeginCommitReadOnly);

/// The full write path: BEGIN, one buffered INSERT (overlay creation +
/// canonicalizing merge), COMMIT (validate + snapshot publish + plan-cache /
/// recycler invalidation).
void BM_TxnInsertCommit(benchmark::State& state) {
  Session session(MakeDb());
  int64_t next = 0;
  for (auto _ : state) {
    session.Execute("BEGIN");
    session.Execute("INSERT INTO t VALUES (" + std::to_string(next++) + ")");
    Result<QueryResult> commit = session.Execute("COMMIT");
    if (!commit.ok()) state.SkipWithError(commit.error().c_str());
    ResetIfDue(state, session, next);
  }
}
BENCHMARK(BM_TxnInsertCommit);

/// The same write as a single autocommit statement (the bounded
/// first-committer-wins retry loop, uncontended: one attempt).
void BM_AutocommitInsert(benchmark::State& state) {
  Session session(MakeDb());
  int64_t next = 0;
  for (auto _ : state) {
    Result<QueryResult> insert =
        session.Execute("INSERT INTO t VALUES (" + std::to_string(next++) + ")");
    if (!insert.ok()) state.SkipWithError(insert.error().c_str());
    ResetIfDue(state, session, next);
  }
}
BENCHMARK(BM_AutocommitInsert);

/// A commit that loses the first-committer-wins race every time: another
/// session autocommits into the written table between BEGIN and COMMIT, so
/// validation fails and rolls back. Measures the abort path end to end.
void BM_TxnConflictAbort(benchmark::State& state) {
  auto db = MakeDb();
  Session loser(db);
  Session winner(db);
  int64_t next = 0;
  for (auto _ : state) {
    loser.Execute("BEGIN");
    loser.Execute("INSERT INTO t VALUES (-1)");
    winner.Execute("INSERT INTO t VALUES (" + std::to_string(next++) + ")");
    Result<QueryResult> commit = loser.Execute("COMMIT");
    if (commit.ok() || commit.status().code() != StatusCode::kConflict) {
      state.SkipWithError("expected a conflict");
    }
    ResetIfDue(state, winner, next);
  }
}
BENCHMARK(BM_TxnConflictAbort);

/// SELECT against a dirty transaction's overlay: compiles privately (no
/// shared plan cache, no recycler) against snapshot + buffered writes.
/// Paired with the same SELECT outside a transaction (cache-hit path) to
/// show the isolation premium.
void BM_TxnOverlayRead(benchmark::State& state) {
  bench::DivisionWorkload workload = bench::MakeDivisionWorkload(1024, 64, 16);
  auto db = std::make_shared<Database>();
  db->CreateTable("r1", workload.dividend);
  db->CreateTable("r2", workload.divisor);
  Session session(db);
  const char* sql = "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b";
  session.Execute("BEGIN");
  session.Execute("INSERT INTO r1 VALUES (0, 0)");  // dirty: overlay active
  for (auto _ : state) {
    Result<QueryResult> result = session.Execute(sql);
    if (!result.ok()) state.SkipWithError(result.error().c_str());
  }
  session.Execute("ROLLBACK");
}
BENCHMARK(BM_TxnOverlayRead);

void BM_SnapshotRead(benchmark::State& state) {
  bench::DivisionWorkload workload = bench::MakeDivisionWorkload(1024, 64, 16);
  auto db = std::make_shared<Database>();
  db->CreateTable("r1", workload.dividend);
  db->CreateTable("r2", workload.divisor);
  Session session(db);
  const char* sql = "SELECT a FROM r1 AS x DIVIDE BY r2 AS y ON x.b = y.b";
  for (auto _ : state) {
    Result<QueryResult> result = session.Execute(sql);
    if (!result.ok()) state.SkipWithError(result.error().c_str());
  }
}
BENCHMARK(BM_SnapshotRead);

}  // namespace
}  // namespace quotient

BENCHMARK_MAIN();
