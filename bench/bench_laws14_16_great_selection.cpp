// Laws 14/15/16 claim (§5.2.2): selections commute with ÷* — σp(A) into the
// dividend, σp(C) into the divisor's groups, σp(B) replicated. Expected
// shape: each pushdown wins by roughly the selectivity factor, because the
// great divide then processes a fraction of its input.

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "opt/planner.hpp"

namespace quotient {
namespace {

PlanPtr BuildGreatDividePlan(const Catalog& catalog) {
  return LogicalOp::GreatDivide(LogicalOp::Scan(catalog, "r1"),
                                LogicalOp::Scan(catalog, "r2"));
}

void Run(benchmark::State& state, const Catalog& catalog, const PlanPtr& plan) {
  for (auto _ : state) {
    Relation q = ExecutePlan(plan, catalog);
    benchmark::DoNotOptimize(q);
  }
}

void BM_Law(benchmark::State& state, int law, bool pushed) {
  auto workload = bench::MakeGreatDivideWorkload(/*groups=*/2048, /*domain=*/48,
                                                 /*divisor_groups=*/48);
  Catalog catalog;
  catalog.Put("r1", workload.dividend);
  catalog.Put("r2", workload.divisor);

  int64_t cut = state.range(0);
  PlanPtr original;
  if (law == 14) {  // σ over A on top of ÷*
    original = LogicalOp::Select(BuildGreatDividePlan(catalog),
                                 Expr::ColCmp("a", CmpOp::kLt, V(cut)));
  } else if (law == 15) {  // σ over C on top of ÷*
    original = LogicalOp::Select(BuildGreatDividePlan(catalog),
                                 Expr::ColCmp("c", CmpOp::kLt, V(cut)));
  } else {  // Law 16: ÷* with a σ(B)-filtered divisor
    original = LogicalOp::GreatDivide(
        LogicalOp::Scan(catalog, "r1"),
        LogicalOp::Select(LogicalOp::Scan(catalog, "r2"),
                          Expr::ColCmp("b", CmpOp::kLt, V(cut))));
  }
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog, false};
  PlanPtr plan = pushed ? engine.Rewrite(original, context) : original;
  Run(state, catalog, plan);
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  struct Config {
    int law;
    int64_t cuts[2];
  };
  for (const Config& config : {Config{14, {64, 1024}}, Config{15, {4, 24}},
                               Config{16, {8, 32}}}) {
    for (bool pushed : {false, true}) {
      std::string name = "Law" + std::to_string(config.law) +
                         (pushed ? "/pushed" : "/original");
      benchmark::RegisterBenchmark(
          name.c_str(),
          [config, pushed](benchmark::State& s) { BM_Law(s, config.law, pushed); })
          ->Arg(config.cuts[0])
          ->Arg(config.cuts[1])
          ->Unit(benchmark::kMicrosecond);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
