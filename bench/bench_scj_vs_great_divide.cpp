// Section 2.2: set containment join vs. great divide solve the same
// problem on different layouts (NF² nested vs. 1NF vertical). This bench
// runs both on the same logical workload, stored vertically (§3's layout):
// the SCJ must first nest the input into NF² sets. Expected shape: both
// scale linearly in the number of sets here (the divisor side is small and
// the SCJ's signature filter kills most pairs); the great divide avoids the
// conversion, the SCJ's per-pair test is cheaper after it — the two trade
// places depending on how much of the cost the conversion is.

#include "bench_common.hpp"
#include "exec/exec_basic.hpp"
#include "exec/exec_great_divide.hpp"

namespace quotient {
namespace {

void BM_GreatDivideVertical(benchmark::State& state) {
  auto workload = bench::MakeGreatDivideWorkload(
      /*groups=*/static_cast<size_t>(state.range(0)), /*domain=*/40,
      /*divisor_groups=*/24);
  for (auto _ : state) {
    Relation q = ExecGreatDivide(workload.dividend, workload.divisor,
                                 GreatDivideAlgorithm::kHash);
    benchmark::DoNotOptimize(q);
  }
}

void BM_SetContainmentJoinNested(benchmark::State& state) {
  auto workload = bench::MakeGreatDivideWorkload(
      /*groups=*/static_cast<size_t>(state.range(0)), /*domain=*/40,
      /*divisor_groups=*/24);
  for (auto _ : state) {
    // The stored layout is the vertical one (§3); the SCJ pays the NF²
    // nesting conversion before it can join.
    Relation r1 = Nest(workload.dividend, "b", "s1");
    Relation r2 = Rename(Nest(workload.divisor, "b", "s2"), {{"c", "g"}});
    SetContainmentJoinIterator it(
        std::make_unique<RelationScan>(std::make_shared<const Relation>(r1)), "s1",
        std::make_unique<RelationScan>(std::make_shared<const Relation>(r2)), "s2");
    Relation q = ExecuteToRelation(it);
    benchmark::DoNotOptimize(q);
  }
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  benchmark::RegisterBenchmark("GreatDivide/vertical", BM_GreatDivideVertical)
      ->Arg(256)
      ->Arg(1024)
      ->Arg(4096)
      ->Unit(benchmark::kMicrosecond);
  benchmark::RegisterBenchmark("SetContainmentJoin/nested", BM_SetContainmentJoinNested)
      ->Arg(256)
      ->Arg(1024)
      ->Arg(4096)
      ->Unit(benchmark::kMicrosecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
