// Law 13 claim (§5.2.1): a C-disjoint divisor partition parallelizes the
// great divide — "possible to reduce the execution time to 1/n of the
// original time provided that the great divide execution is considerably
// more expensive than the final union/merge". Expected shape: near-linear
// speed-up in the number of workers while groups per worker stay large.

#include "bench_common.hpp"
#include "exec/exec_great_divide.hpp"

namespace quotient {
namespace {

void BM_Law13(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  // Counting-dominated workload (many dense divisor groups): the paper's
  // 1/n claim assumes "the great divide execution is considerably more
  // expensive than the final union/merge plus data shipping" — with few
  // groups the duplicated dividend scan wins instead.
  auto workload = bench::MakeGreatDivideWorkload(/*groups=*/512, /*domain=*/48,
                                                 /*divisor_groups=*/512,
                                                 /*dividend_density=*/0.5,
                                                 /*divisor_density=*/0.4);
  // The dividend encoding is catalog-cached in production; build it once
  // outside the timed loop and share it with every partition worker.
  for (auto _ : state) {
    Relation q = GreatDividePartitioned(workload.dividend, workload.divisor, threads,
                                        workload.dividend_enc);
    benchmark::DoNotOptimize(q);
  }
  state.counters["threads"] = static_cast<double>(threads);
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  benchmark::RegisterBenchmark("Law13/partitioned_great_divide", BM_Law13)
      ->Arg(1)
      ->Arg(2)
      ->Arg(4)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
