// Law 3 claim: pushing σp(A) below ÷ shrinks the dividend before the
// expensive division. Expected shape: the pushed-down plan wins, with the
// gap growing as the selection gets more selective (smaller keep-fraction).

#include "bench_common.hpp"
#include "core/engine.hpp"
#include "opt/planner.hpp"

namespace quotient {
namespace {

void BM_Law3(benchmark::State& state, bool pushed) {
  size_t groups = 2048;
  int64_t keep_upto = state.range(0);  // candidates kept: a < keep_upto
  auto workload = bench::MakeDivisionWorkload(groups, /*domain=*/64, /*divisor_size=*/16);
  Catalog catalog;
  catalog.Put("r1", workload.dividend);
  catalog.Put("r2", workload.divisor);
  ExprPtr p = Expr::ColCmp("a", CmpOp::kLt, V(keep_upto));

  PlanPtr original = LogicalOp::Select(
      LogicalOp::Divide(LogicalOp::Scan(catalog, "r1"), LogicalOp::Scan(catalog, "r2")), p);
  RewriteEngine engine = RewriteEngine::Default();
  RewriteContext context{&catalog, false};
  PlanPtr plan = pushed ? engine.Rewrite(original, context) : original;

  for (auto _ : state) {
    Relation q = ExecutePlan(plan, catalog);
    benchmark::DoNotOptimize(q);
  }
  state.counters["keep_fraction"] =
      static_cast<double>(keep_upto) / static_cast<double>(groups);
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  for (bool pushed : {false, true}) {
    benchmark::RegisterBenchmark(pushed ? "Law3/pushed" : "Law3/original",
                                 [pushed](benchmark::State& s) { BM_Law3(s, pushed); })
        ->Arg(32)
        ->Arg(256)
        ->Arg(2048)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
