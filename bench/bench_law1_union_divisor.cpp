// Law 1 claim (§5.1.1): r1 ÷ (r2' ∪ r2'') = (r1 ⋉ (r1 ÷ r2')) ÷ r2''.
// The rewrite lets a group-preserving pipeline divide by one divisor
// partition, semi-join to drop disqualified groups, then divide the (much
// smaller) remainder by the other partition. Expected shape: the pipelined
// form wins when r2' is selective (few groups survive the first divide);
// with an unselective r2' the two forms are comparable.

#include "bench_common.hpp"
#include "core/rules.hpp"
#include "core/engine.hpp"
#include "opt/planner.hpp"

namespace quotient {
namespace {

void BM_Law1(benchmark::State& state, bool pipelined) {
  size_t groups = 2048;
  size_t prime_size = static_cast<size_t>(state.range(0));  // |r2'|: selectivity knob
  DataGen gen(5);
  Relation r2 = gen.Divisor(32, 64);
  // Split r2 into r2' (first prime_size values) and r2'' (the rest).
  std::vector<Tuple> prime(r2.tuples().begin(),
                           r2.tuples().begin() + static_cast<long>(prime_size));
  std::vector<Tuple> rest(r2.tuples().begin() + static_cast<long>(prime_size),
                          r2.tuples().end());
  Relation r2p(r2.schema(), prime);
  Relation r2pp(r2.schema(), rest);
  Relation r1 = gen.DividendWithHits(groups, groups / 20 + 1, r2, /*domain=*/64, 0.25);

  Catalog catalog;
  catalog.Put("r1", r1);
  catalog.Put("r2p", r2p);
  catalog.Put("r2pp", r2pp);

  PlanPtr original = LogicalOp::Divide(
      LogicalOp::Scan(catalog, "r1"),
      LogicalOp::Union(LogicalOp::Scan(catalog, "r2p"), LogicalOp::Scan(catalog, "r2pp")));
  RewriteEngine engine;
  engine.Add(MakeLaw1DivisorUnionRule());
  RewriteContext context{&catalog, false};
  PlanPtr plan = pipelined ? engine.Rewrite(original, context) : original;

  for (auto _ : state) {
    Relation q = ExecutePlan(plan, catalog);
    benchmark::DoNotOptimize(q);
  }
}

}  // namespace
}  // namespace quotient

int main(int argc, char** argv) {
  using namespace quotient;
  for (bool pipelined : {false, true}) {
    benchmark::RegisterBenchmark(pipelined ? "Law1/pipelined" : "Law1/original",
                                 [pipelined](benchmark::State& s) { BM_Law1(s, pipelined); })
        ->Arg(4)
        ->Arg(16)
        ->Arg(28)
        ->Unit(benchmark::kMicrosecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
