#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.hpp"
#include "sql/lexer.hpp"
#include "util/status.hpp"

namespace quotient {
namespace sql {

/// Parses a SELECT query in the dialect of Section 4:
///
///   SELECT [DISTINCT] items FROM table_ref (',' table_ref)*
///     [WHERE condition] [GROUP BY columns [HAVING condition]]
///
///   table_ref := table_factor [DIVIDE BY table_factor ON condition]
///   table_factor := name [[AS] alias] | '(' query ')' [AS] alias
///
/// Conditions support AND/OR/NOT, the six comparators, (NOT) EXISTS
/// (subquery), expr (NOT) IN (subquery), and arithmetic with the aggregate
/// functions COUNT/SUM/MIN/MAX/AVG. '?' parses as a parameter placeholder
/// (ordinals assigned left to right) for prepared statements
/// (api/session.hpp); bind values with sql::BindParameters.
Result<std::shared_ptr<SqlQuery>> ParseQuery(const std::string& text);

/// Parses an already-tokenized statement (the stream must end with a kEnd
/// token, as Tokenize produces). Lets callers that also need the token
/// stream — e.g. the Session's SQL normalization — lex only once.
Result<std::shared_ptr<SqlQuery>> ParseTokens(std::vector<Token> tokens);

/// Parses one top-level statement: a SELECT (with the statement-level
/// ORDER BY / LIMIT tail), INSERT INTO ... VALUES, DELETE FROM ... [WHERE],
/// or transaction control (BEGIN/COMMIT/ROLLBACK [TRANSACTION|WORK]).
Result<std::shared_ptr<SqlStatement>> ParseStatement(const std::string& text);
Result<std::shared_ptr<SqlStatement>> ParseStatementTokens(std::vector<Token> tokens);

}  // namespace sql
}  // namespace quotient
