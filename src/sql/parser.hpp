#pragma once

#include <memory>
#include <string>

#include "sql/ast.hpp"
#include "util/status.hpp"

namespace quotient {
namespace sql {

/// Parses a SELECT query in the dialect of Section 4:
///
///   SELECT [DISTINCT] items FROM table_ref (',' table_ref)*
///     [WHERE condition] [GROUP BY columns [HAVING condition]]
///
///   table_ref := table_factor [DIVIDE BY table_factor ON condition]
///   table_factor := name [[AS] alias] | '(' query ')' [AS] alias
///
/// Conditions support AND/OR/NOT, the six comparators, (NOT) EXISTS
/// (subquery), expr (NOT) IN (subquery), and arithmetic with the aggregate
/// functions COUNT/SUM/MIN/MAX/AVG.
Result<std::shared_ptr<SqlQuery>> ParseQuery(const std::string& text);

}  // namespace sql
}  // namespace quotient
