#pragma once

#include <string>
#include <vector>

#include "util/status.hpp"

namespace quotient {
namespace sql {

enum class TokenKind {
  kIdent,    // table/column names; may contain '#' (s#, p#) and '_'
  kNumber,   // integer or decimal literal
  kString,   // '...' literal
  kSymbol,   // ( ) , . * = <> < <= > >= + - / ?
  kKeyword,  // upper-cased SQL keyword
  kEnd
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // keyword text is upper-cased; idents keep their case
  size_t position = 0;  // byte offset, for error messages

  bool IsKeyword(const char* word) const {
    return kind == TokenKind::kKeyword && text == word;
  }
  bool IsSymbol(const char* symbol) const {
    return kind == TokenKind::kSymbol && text == symbol;
  }
};

/// Tokenizes `text`; returns an error with position info on bad input.
/// Keywords are recognized case-insensitively and normalized to upper case.
Result<std::vector<Token>> Tokenize(const std::string& text);

}  // namespace sql
}  // namespace quotient
