#pragma once

#include "plan/logical.hpp"
#include "sql/ast.hpp"
#include "util/status.hpp"

namespace quotient {
namespace sql {

/// Compiles a parsed query into a logical plan whose execution through the
/// rewrite engine + physical planner reproduces the oracle interpreter
/// (sql::ExecuteQueryOracle) bit for bit — schemas, output names, and set
/// semantics included. This is the Session front door's compiler; the older
/// BindQuery (sql/binder.hpp) is its conservative ancestor and is kept for
/// the plannable-§4-subset tests.
///
/// Coverage beyond the binder:
///   * SELECT * (qualifiers stripped exactly like the interpreter),
///   * uncorrelated IN / NOT IN subqueries as semi-/anti-joins,
///   * equality-correlated EXISTS / NOT EXISTS as semi-/anti-joins,
///   * HAVING aggregates that do not appear in the select list.
///
/// Anything it cannot express — correlated subqueries beyond one level of
/// equality correlation (the paper's Q3), computed select items, grouped
/// EXISTS, non-column GROUP BY — returns an error whose message the Session
/// records as the oracle-fallback reason.
Result<PlanPtr> LowerQuery(const SqlQuery& query, const Catalog& catalog);

/// Parse + lower.
Result<PlanPtr> LowerSql(const std::string& text, const Catalog& catalog);

// ---- statement-level DML lowering and result shaping ----

/// Validates an INSERT's literal rows against the table's schema and
/// converts them to tuples (arity and types must match; integer literals
/// coerce into real columns). Errors mention the table and row.
Result<std::vector<Tuple>> LowerInsert(const SqlInsert& insert, const Catalog& catalog);

/// The survivor query of a DELETE: SELECT * FROM t WHERE NOT (pred).
/// Evaluating it yields exactly the rows that remain after the delete
/// (the engine stores relations as immutable sets, so DELETE is "replace
/// the table with its survivors"). Null `where` deletes everything; the
/// caller short-circuits that case instead of calling this.
std::shared_ptr<SqlQuery> DeleteSurvivorQuery(const SqlDelete& del);

/// True when `query` carries a statement-level ORDER BY or LIMIT tail.
inline bool HasOrderLimit(const SqlQuery& query) {
  return !query.order_by.empty() || query.limit >= 0;
}

/// Applies the statement-level ORDER BY / LIMIT tail to a materialized
/// result: stable-sorts by the order keys (each must name a result column),
/// truncates to `limit` rows, and re-canonicalizes into a Relation. With no
/// ORDER BY, LIMIT keeps the first rows in canonical order — deterministic
/// at every thread count. A no-op when the query has neither.
Result<Relation> ApplyOrderLimit(const SqlQuery& query, Relation rows);

}  // namespace sql
}  // namespace quotient
