#pragma once

#include "plan/logical.hpp"
#include "sql/ast.hpp"
#include "util/status.hpp"

namespace quotient {
namespace sql {

/// Compiles a parsed query into a logical plan whose execution through the
/// rewrite engine + physical planner reproduces the oracle interpreter
/// (sql::ExecuteQueryOracle) bit for bit — schemas, output names, and set
/// semantics included. This is the Session front door's compiler; the older
/// BindQuery (sql/binder.hpp) is its conservative ancestor and is kept for
/// the plannable-§4-subset tests.
///
/// Coverage beyond the binder:
///   * SELECT * (qualifiers stripped exactly like the interpreter),
///   * uncorrelated IN / NOT IN subqueries as semi-/anti-joins,
///   * equality-correlated EXISTS / NOT EXISTS as semi-/anti-joins,
///   * HAVING aggregates that do not appear in the select list.
///
/// Anything it cannot express — correlated subqueries beyond one level of
/// equality correlation (the paper's Q3), computed select items, grouped
/// EXISTS, non-column GROUP BY — returns an error whose message the Session
/// records as the oracle-fallback reason.
Result<PlanPtr> LowerQuery(const SqlQuery& query, const Catalog& catalog);

/// Parse + lower.
Result<PlanPtr> LowerSql(const std::string& text, const Catalog& catalog);

}  // namespace sql
}  // namespace quotient
