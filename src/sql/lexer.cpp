#include "sql/lexer.hpp"

#include <cctype>
#include <unordered_set>

#include "util/strings.hpp"

namespace quotient {
namespace sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "DISTINCT", "FROM",  "WHERE", "GROUP", "BY",    "HAVING", "AS",
      "DIVIDE", "ON",       "AND",   "OR",    "NOT",   "EXISTS", "IN",    "ORDER",
      "COUNT",  "SUM",      "MIN",   "MAX",   "AVG",   "UNION",  "ALL",
      // Statement-level keywords (transactions + DML + result shaping).
      "BEGIN",  "COMMIT",   "ROLLBACK", "TRANSACTION", "WORK", "INSERT",
      "INTO",   "VALUES",   "DELETE",   "LIMIT", "ASC", "DESC"};
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < text.size() && IsIdentChar(text[i])) ++i;
      token.text = text.substr(start, i - start);
      std::string upper = ToUpper(token.text);
      if (Keywords().count(upper)) {
        token.kind = TokenKind::kKeyword;
        token.text = upper;
      } else {
        token.kind = TokenKind::kIdent;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool has_dot = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              (text[i] == '.' && !has_dot))) {
        if (text[i] == '.') has_dot = true;
        ++i;
      }
      token.kind = TokenKind::kNumber;
      token.text = text.substr(start, i - start);
    } else if (c == '\'') {
      size_t start = ++i;
      while (i < text.size() && text[i] != '\'') ++i;
      if (i >= text.size()) {
        return Result<std::vector<Token>>::Error("unterminated string literal at position " +
                                                 std::to_string(start - 1));
      }
      token.kind = TokenKind::kString;
      token.text = text.substr(start, i - start);
      ++i;  // closing quote
    } else {
      token.kind = TokenKind::kSymbol;
      // Two-character comparators first.
      if (i + 1 < text.size()) {
        std::string two = text.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          token.text = two == "!=" ? "<>" : two;
          i += 2;
          tokens.push_back(token);
          continue;
        }
      }
      static const std::string kSingles = "(),.*=<>+-/?";
      if (kSingles.find(c) == std::string::npos) {
        return Result<std::vector<Token>>::Error(std::string("unexpected character '") + c +
                                                 "' at position " + std::to_string(i));
      }
      token.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = text.size();
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace quotient
