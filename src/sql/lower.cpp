#include "sql/lower.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>

#include "algebra/divide.hpp"
#include "sql/interp.hpp"
#include "sql/parser.hpp"

namespace quotient {
namespace sql {

namespace {

/// All lowering rejections are SqlError throws converted to Result at the
/// boundary; the Session uses the message as the oracle-fallback reason.
///
/// The resolution/translation helpers below deliberately mirror (rather
/// than share) sql/binder.cpp: the binder is the frozen §4-plannable-subset
/// front end with its own tested error surface, while this compiler evolves
/// toward the oracle interpreter's exact naming and coverage. Keep the
/// suffix-match rule in TryResolve in sync with both if it ever changes.
[[noreturn]] void Unsupported(const std::string& what) { throw SqlError(what); }

/// Finds the unique qualified attribute matching a (possibly qualified)
/// column reference; nullopt when absent, SqlError when ambiguous.
std::optional<std::string> TryResolve(const Schema& schema, const SqlExpr& column) {
  std::optional<std::string> found;
  for (size_t i = 0; i < schema.size(); ++i) {
    const std::string& attr = schema.attribute(i).name;
    bool match;
    if (!column.qualifier.empty()) {
      match = attr == column.qualifier + "." + column.name;
    } else {
      match = attr == column.name ||
              (attr.size() > column.name.size() &&
               attr.compare(attr.size() - column.name.size(), column.name.size(),
                            column.name) == 0 &&
               attr[attr.size() - column.name.size() - 1] == '.');
    }
    if (match) {
      if (found) throw SqlError("ambiguous column '" + column.ToString() + "'");
      found = attr;
    }
  }
  return found;
}

std::string ResolveAgainst(const Schema& schema, const SqlExpr& column) {
  std::optional<std::string> found = TryResolve(schema, column);
  if (!found) throw SqlError("unknown column '" + column.ToString() + "'");
  return *found;
}

ValueType TypeOfAttr(const Schema& schema, const std::string& attr) {
  return schema.attribute(schema.IndexOfOrThrow(attr)).type;
}

bool ContainsSubquery(const SqlExpr& expr) {
  if (expr.kind == SqlExpr::Kind::kExists || expr.kind == SqlExpr::Kind::kInSubquery) {
    return true;
  }
  if (expr.left != nullptr && ContainsSubquery(*expr.left)) return true;
  if (expr.right != nullptr && ContainsSubquery(*expr.right)) return true;
  return false;
}

bool ContainsAggregateExpr(const SqlExpr& expr) {
  if (expr.kind == SqlExpr::Kind::kAggregate) return true;
  if (expr.left != nullptr && ContainsAggregateExpr(*expr.left)) return true;
  if (expr.right != nullptr && ContainsAggregateExpr(*expr.right)) return true;
  return false;
}

/// Translates a subquery-free, aggregate-free condition into a predicate
/// Expr over the qualified schema.
ExprPtr TranslateScalar(const SqlExpr& cond, const Schema& schema) {
  switch (cond.kind) {
    case SqlExpr::Kind::kAnd:
      return Expr::And(TranslateScalar(*cond.left, schema),
                       TranslateScalar(*cond.right, schema));
    case SqlExpr::Kind::kOr:
      return Expr::Or(TranslateScalar(*cond.left, schema),
                      TranslateScalar(*cond.right, schema));
    case SqlExpr::Kind::kNot: return Expr::Not(TranslateScalar(*cond.left, schema));
    case SqlExpr::Kind::kCompare: {
      CmpOp op;
      if (cond.op == "=") op = CmpOp::kEq;
      else if (cond.op == "<>") op = CmpOp::kNe;
      else if (cond.op == "<") op = CmpOp::kLt;
      else if (cond.op == "<=") op = CmpOp::kLe;
      else if (cond.op == ">") op = CmpOp::kGt;
      else op = CmpOp::kGe;
      return Expr::Compare(op, TranslateScalar(*cond.left, schema),
                           TranslateScalar(*cond.right, schema));
    }
    case SqlExpr::Kind::kArith: {
      Expr::Kind kind;
      if (cond.op == "+") kind = Expr::Kind::kAdd;
      else if (cond.op == "-") kind = Expr::Kind::kSub;
      else if (cond.op == "*") kind = Expr::Kind::kMul;
      else kind = Expr::Kind::kDiv;
      return Expr::Arith(kind, TranslateScalar(*cond.left, schema),
                         TranslateScalar(*cond.right, schema));
    }
    case SqlExpr::Kind::kColumn: return Expr::Column(ResolveAgainst(schema, cond));
    case SqlExpr::Kind::kLiteral: return Expr::Literal(cond.literal);
    case SqlExpr::Kind::kParam:
      // Prepared-statement placeholder: lowers to a plan-level parameter
      // slot so the statement compiles once and binds values per execution
      // (plan/logical.hpp BindPlanParameters).
      return Expr::Param(cond.param_index);
    case SqlExpr::Kind::kExists:
    case SqlExpr::Kind::kInSubquery:
      Unsupported("subquery nested under OR/NOT/arithmetic in WHERE");
    case SqlExpr::Kind::kAggregate:
      Unsupported("aggregate outside the GROUP BY select list / HAVING");
  }
  Unsupported("bad condition");
}

PlanPtr LowerSelect(const SqlQuery& query, const Catalog& catalog);

PlanPtr QualifyPlan(PlanPtr plan, const std::string& alias) {
  std::vector<std::pair<std::string, std::string>> renames;
  for (const Attribute& a : plan->schema().attributes()) {
    size_t dot = a.name.rfind('.');
    std::string bare = dot == std::string::npos ? a.name : a.name.substr(dot + 1);
    renames.emplace_back(a.name, alias + "." + bare);
  }
  return LogicalOp::Rename(std::move(plan), std::move(renames));
}

PlanPtr LowerTableFactor(const TableRef& ref, const Catalog& catalog) {
  if (ref.subquery != nullptr) {
    return QualifyPlan(LowerSelect(*ref.subquery, catalog), ref.alias);
  }
  if (!catalog.Has(ref.table)) throw SqlError("unknown table '" + ref.table + "'");
  return QualifyPlan(LogicalOp::Scan(catalog, ref.table), ref.alias);
}

/// DIVIDE BY ... ON: a conjunction of dividend-column = divisor-column
/// equalities (§4); divisor join columns are renamed onto the dividend's
/// names, then small divide iff the ON clause covers every divisor column.
void CollectOnPairs(const SqlExpr& cond, const Schema& dividend, const Schema& divisor,
                    std::vector<std::pair<std::string, std::string>>* pairs) {
  if (cond.kind == SqlExpr::Kind::kAnd) {
    CollectOnPairs(*cond.left, dividend, divisor, pairs);
    CollectOnPairs(*cond.right, dividend, divisor, pairs);
    return;
  }
  if (cond.kind != SqlExpr::Kind::kCompare || cond.op != "=" ||
      cond.left->kind != SqlExpr::Kind::kColumn ||
      cond.right->kind != SqlExpr::Kind::kColumn) {
    throw SqlError("DIVIDE BY ON must be a conjunction of column equalities");
  }
  auto l_dvd = TryResolve(dividend, *cond.left);
  auto r_dsr = TryResolve(divisor, *cond.right);
  if (l_dvd && r_dsr) {
    pairs->emplace_back(*l_dvd, *r_dsr);
    return;
  }
  auto l_dsr = TryResolve(divisor, *cond.left);
  auto r_dvd = TryResolve(dividend, *cond.right);
  if (l_dsr && r_dvd) {
    pairs->emplace_back(*r_dvd, *l_dsr);
    return;
  }
  throw SqlError("ON clause must relate a dividend column to a divisor column");
}

PlanPtr LowerTableRef(const TableRef& ref, const Catalog& catalog) {
  PlanPtr base = LowerTableFactor(ref, catalog);
  if (ref.divisor == nullptr) return base;
  PlanPtr divisor = LowerTableFactor(*ref.divisor, catalog);

  std::vector<std::pair<std::string, std::string>> pairs;
  CollectOnPairs(*ref.on_condition, base->schema(), divisor->schema(), &pairs);
  if (pairs.empty()) throw SqlError("DIVIDE BY needs at least one ON equality");
  std::vector<std::pair<std::string, std::string>> renames;
  for (const auto& [dividend_attr, divisor_attr] : pairs) {
    if (dividend_attr != divisor_attr) renames.emplace_back(divisor_attr, dividend_attr);
  }
  if (!renames.empty()) divisor = LogicalOp::Rename(divisor, renames);
  DivisionAttributes attrs =
      DivisionAttributeSets(base->schema(), divisor->schema(), /*allow_c=*/true);
  if (attrs.c.empty()) return LogicalOp::Divide(base, divisor);
  return LogicalOp::GreatDivide(base, divisor);
}

/// One (possibly negated) EXISTS / IN conjunct to be applied as a
/// semi-/anti-join after the plain WHERE conjuncts.
struct SemiConjunct {
  const SqlExpr* expr;
  bool negated;
};

/// expr IN (subquery) → outer ⋉ ρ[outer_attr](subplan); NOT IN → anti-join.
/// The subquery must lower standalone (no correlation).
PlanPtr ApplyInConjunct(PlanPtr outer, const SemiConjunct& conjunct, const Catalog& catalog) {
  const SqlExpr& e = *conjunct.expr;
  if (e.left->kind != SqlExpr::Kind::kColumn) {
    Unsupported("IN over a computed expression is not compilable");
  }
  std::string outer_attr = ResolveAgainst(outer->schema(), *e.left);
  PlanPtr sub = LowerSelect(*e.subquery, catalog);
  if (sub->schema().size() != 1) {
    Unsupported("IN subquery must produce exactly one column");
  }
  const Attribute& sub_attr = sub->schema().attribute(0);
  // The interpreter compares IN values with type-sensitive Value equality;
  // the semi-join reproduces that only when the declared types agree.
  if (sub_attr.type != TypeOfAttr(outer->schema(), outer_attr)) {
    Unsupported("IN subquery column type differs from the probe column");
  }
  if (sub_attr.name != outer_attr) {
    sub = LogicalOp::Rename(sub, {{sub_attr.name, outer_attr}});
  }
  return conjunct.negated ? LogicalOp::AntiJoin(std::move(outer), std::move(sub))
                          : LogicalOp::SemiJoin(std::move(outer), std::move(sub));
}

/// EXISTS (SELECT ... FROM f WHERE plain ∧ inner_col = outer_col ...) →
/// outer ⋉ ρ[outer cols](π[inner cols](σ[plain](f))); NOT EXISTS → anti-join.
PlanPtr ApplyExistsConjunct(PlanPtr outer, const SemiConjunct& conjunct,
                            const Catalog& catalog) {
  const SqlQuery& sub = *conjunct.expr->subquery;
  if (!sub.group_by.empty() || sub.having != nullptr) {
    Unsupported("EXISTS over a grouped subquery is not compilable");
  }
  for (const SelectItem& item : sub.items) {
    if (!item.star && ContainsAggregateExpr(*item.expr)) {
      Unsupported("EXISTS over an aggregating subquery is not compilable");
    }
  }
  if (sub.from.empty()) Unsupported("FROM clause is required");
  PlanPtr inner = LowerTableRef(sub.from[0], catalog);
  for (size_t i = 1; i < sub.from.size(); ++i) {
    inner = LogicalOp::Product(inner, LowerTableRef(sub.from[i], catalog));
  }

  // Split the subquery's WHERE: conjuncts that translate wholly against the
  // inner schema stay inside; inner_col = outer_col equalities become the
  // semi-join's key pairs; anything else is beyond this lowering.
  std::vector<ExprPtr> inner_plain;
  std::vector<std::pair<std::string, std::string>> corr;  // (inner, outer)
  std::vector<SqlExprPtr> conjuncts;
  if (sub.where != nullptr) {
    std::vector<const SqlExpr*> stack = {sub.where.get()};
    while (!stack.empty()) {
      const SqlExpr* c = stack.back();
      stack.pop_back();
      if (c->kind == SqlExpr::Kind::kAnd) {
        stack.push_back(c->right.get());
        stack.push_back(c->left.get());
        continue;
      }
      if (ContainsSubquery(*c)) {
        Unsupported("nested subquery inside EXISTS is not compilable");
      }
      bool inner_only = true;
      try {
        ExprPtr translated = TranslateScalar(*c, inner->schema());
        inner_plain.push_back(std::move(translated));
      } catch (const SqlError&) {
        inner_only = false;
      }
      if (inner_only) continue;
      if (c->kind != SqlExpr::Kind::kCompare || c->op != "=" ||
          c->left->kind != SqlExpr::Kind::kColumn ||
          c->right->kind != SqlExpr::Kind::kColumn) {
        Unsupported("EXISTS correlation must be a conjunction of column equalities");
      }
      // Inner scope wins when a name resolves in both (SQL shadowing); here
      // the conjunct failed to translate, so exactly one side is outer.
      auto li = TryResolve(inner->schema(), *c->left);
      auto ri = TryResolve(inner->schema(), *c->right);
      auto lo = TryResolve(outer->schema(), *c->left);
      auto ro = TryResolve(outer->schema(), *c->right);
      if (li && !ri && ro) {
        corr.emplace_back(*li, *ro);
      } else if (ri && !li && lo) {
        corr.emplace_back(*ri, *lo);
      } else {
        Unsupported("EXISTS correlation reaches beyond the enclosing query");
      }
    }
  }
  if (corr.empty()) Unsupported("uncorrelated EXISTS is not compilable");

  // The interpreter would still resolve the subquery's select items (against
  // inner-then-outer scope); reject what it would reject.
  for (const SelectItem& item : sub.items) {
    if (item.star) continue;
    if (item.expr->kind == SqlExpr::Kind::kLiteral) continue;
    if (item.expr->kind == SqlExpr::Kind::kColumn &&
        (TryResolve(inner->schema(), *item.expr) || TryResolve(outer->schema(), *item.expr))) {
      continue;
    }
    Unsupported("EXISTS subquery select item is not compilable");
  }

  if (!inner_plain.empty()) inner = LogicalOp::Select(inner, Expr::AndAll(inner_plain));
  std::vector<std::string> inner_cols;
  std::vector<std::pair<std::string, std::string>> renames;
  std::set<std::string> seen_inner, seen_outer;
  for (const auto& [inner_attr, outer_attr] : corr) {
    if (!seen_inner.insert(inner_attr).second || !seen_outer.insert(outer_attr).second) {
      Unsupported("EXISTS correlation repeats a column");
    }
    if (TypeOfAttr(inner->schema(), inner_attr) != TypeOfAttr(outer->schema(), outer_attr)) {
      Unsupported("EXISTS correlation column types differ");
    }
    inner_cols.push_back(inner_attr);
    if (inner_attr != outer_attr) renames.emplace_back(inner_attr, outer_attr);
  }
  inner = LogicalOp::Project(inner, inner_cols);
  if (!renames.empty()) inner = LogicalOp::Rename(inner, renames);
  // A renamed correlation column must not collide with a surviving one.
  for (const Attribute& a : inner->schema().attributes()) {
    if (!seen_outer.count(a.name)) Unsupported("EXISTS correlation renames collide");
  }
  return conjunct.negated ? LogicalOp::AntiJoin(std::move(outer), std::move(inner))
                          : LogicalOp::SemiJoin(std::move(outer), std::move(inner));
}

PlanPtr LowerSelect(const SqlQuery& query, const Catalog& catalog) {
  if (query.from.empty()) throw SqlError("FROM clause is required");
  PlanPtr plan = LowerTableRef(query.from[0], catalog);
  for (size_t i = 1; i < query.from.size(); ++i) {
    plan = LogicalOp::Product(plan, LowerTableRef(query.from[i], catalog));
  }

  if (query.where != nullptr) {
    std::vector<ExprPtr> plain;
    std::vector<SemiConjunct> semis;
    std::vector<const SqlExpr*> stack = {query.where.get()};
    while (!stack.empty()) {
      const SqlExpr* c = stack.back();
      stack.pop_back();
      if (c->kind == SqlExpr::Kind::kAnd) {
        stack.push_back(c->right.get());
        stack.push_back(c->left.get());
        continue;
      }
      bool negate = false;
      if (c->kind == SqlExpr::Kind::kNot && c->left != nullptr &&
          (c->left->kind == SqlExpr::Kind::kExists ||
           c->left->kind == SqlExpr::Kind::kInSubquery)) {
        negate = true;
        c = c->left.get();
      }
      if (c->kind == SqlExpr::Kind::kExists || c->kind == SqlExpr::Kind::kInSubquery) {
        semis.push_back({c, c->negated != negate});
        continue;
      }
      plain.push_back(TranslateScalar(*c, plan->schema()));
    }
    if (!plain.empty()) plan = LogicalOp::Select(plan, Expr::AndAll(plain));
    for (const SemiConjunct& conjunct : semis) {
      plan = conjunct.expr->kind == SqlExpr::Kind::kInSubquery
                 ? ApplyInConjunct(std::move(plan), conjunct, catalog)
                 : ApplyExistsConjunct(std::move(plan), conjunct, catalog);
    }
  }

  bool any_aggregate = query.having != nullptr || !query.group_by.empty();
  for (const SelectItem& item : query.items) {
    if (!item.star && ContainsAggregateExpr(*item.expr)) any_aggregate = true;
  }

  // SELECT *: strip qualifiers exactly like the interpreter (bare names when
  // unambiguous, qualified otherwise).
  if (query.items.size() == 1 && query.items[0].star) {
    if (!query.group_by.empty() || any_aggregate) {
      Unsupported("SELECT * cannot be combined with GROUP BY");
    }
    std::map<std::string, int> bare_counts;
    for (const Attribute& a : plan->schema().attributes()) {
      size_t dot = a.name.rfind('.');
      bare_counts[dot == std::string::npos ? a.name : a.name.substr(dot + 1)] += 1;
    }
    std::vector<std::pair<std::string, std::string>> renames;
    for (const Attribute& a : plan->schema().attributes()) {
      size_t dot = a.name.rfind('.');
      std::string bare = dot == std::string::npos ? a.name : a.name.substr(dot + 1);
      if (bare_counts[bare] == 1 && bare != a.name) renames.emplace_back(a.name, bare);
    }
    if (!renames.empty()) plan = LogicalOp::Rename(plan, renames);
    return plan;
  }

  if (any_aggregate) {
    std::vector<std::string> group_names;
    for (const SqlExprPtr& g : query.group_by) {
      if (g->kind != SqlExpr::Kind::kColumn) {
        Unsupported("GROUP BY supports plain columns only");
      }
      group_names.push_back(ResolveAgainst(plan->schema(), *g));
    }
    std::set<std::string> grouped(group_names.begin(), group_names.end());

    auto make_spec = [&](const SqlExpr& agg, size_t index) {
      AggSpec spec;
      if (agg.name == "COUNT") spec.fn = AggFunc::kCount;
      else if (agg.name == "SUM") spec.fn = AggFunc::kSum;
      else if (agg.name == "MIN") spec.fn = AggFunc::kMin;
      else if (agg.name == "MAX") spec.fn = AggFunc::kMax;
      else spec.fn = AggFunc::kAvg;
      if (agg.count_star) {
        spec.fn = AggFunc::kCount;
        spec.arg = plan->schema().attribute(0).name;
      } else {
        if (agg.left->kind != SqlExpr::Kind::kColumn) {
          Unsupported("aggregate arguments must be plain columns");
        }
        spec.arg = ResolveAgainst(plan->schema(), *agg.left);
      }
      spec.out = "agg$" + std::to_string(index);
      return spec;
    };

    std::vector<AggSpec> aggs;
    std::vector<std::pair<std::string, std::string>> final_renames;
    std::vector<std::string> final_columns;
    // ToString-keyed reuse so HAVING can reference select-list aggregates.
    std::map<std::string, std::string> agg_outputs;  // rendered agg -> agg$ name
    for (size_t i = 0; i < query.items.size(); ++i) {
      const SelectItem& item = query.items[i];
      if (item.star) Unsupported("'*' must be the only select item");
      std::string out_name = item.alias.empty() ? "col" + std::to_string(i + 1) : item.alias;
      if (item.expr->kind == SqlExpr::Kind::kColumn) {
        std::string qualified = ResolveAgainst(plan->schema(), *item.expr);
        if (!grouped.count(qualified)) {
          Unsupported("select column '" + qualified + "' is not in the GROUP BY list");
        }
        final_columns.push_back(qualified);
        final_renames.emplace_back(qualified, out_name);
      } else if (item.expr->kind == SqlExpr::Kind::kAggregate) {
        AggSpec spec = make_spec(*item.expr, aggs.size());
        agg_outputs.emplace(item.expr->ToString(), spec.out);
        final_columns.push_back(spec.out);
        final_renames.emplace_back(spec.out, out_name);
        aggs.push_back(std::move(spec));
      } else {
        Unsupported("grouped select items must be columns or aggregates");
      }
    }

    SqlExpr having_rewritten;
    if (query.having != nullptr) {
      // Replace every aggregate in HAVING by its agg$ output column, adding
      // specs for aggregates that are not in the select list.
      struct HavingRewriter {
        std::map<std::string, std::string>& outputs;
        std::vector<AggSpec>& aggs;
        const std::function<AggSpec(const SqlExpr&, size_t)>& make;

        SqlExpr Rewrite(const SqlExpr& e) const {
          if (e.kind == SqlExpr::Kind::kAggregate) {
            std::string key = e.ToString();
            auto it = outputs.find(key);
            if (it == outputs.end()) {
              AggSpec spec = make(e, aggs.size());
              it = outputs.emplace(key, spec.out).first;
              aggs.push_back(std::move(spec));
            }
            SqlExpr column;
            column.kind = SqlExpr::Kind::kColumn;
            column.name = it->second;
            return column;
          }
          SqlExpr out = e;
          if (e.left != nullptr) out.left = std::make_shared<SqlExpr>(Rewrite(*e.left));
          if (e.right != nullptr) out.right = std::make_shared<SqlExpr>(Rewrite(*e.right));
          return out;
        }
      };
      std::function<AggSpec(const SqlExpr&, size_t)> make = make_spec;
      HavingRewriter rewriter{agg_outputs, aggs, make};
      having_rewritten = rewriter.Rewrite(*query.having);
    }

    plan = LogicalOp::GroupBy(plan, group_names, aggs);
    if (query.having != nullptr) {
      plan = LogicalOp::Select(plan, TranslateScalar(having_rewritten, plan->schema()));
    }
    plan = LogicalOp::Project(plan, final_columns);
    plan = LogicalOp::Rename(plan, final_renames);
    return plan;
  }

  // Plain column projection.
  std::vector<std::string> columns;
  std::vector<std::pair<std::string, std::string>> renames;
  for (size_t i = 0; i < query.items.size(); ++i) {
    const SelectItem& item = query.items[i];
    if (item.star) Unsupported("'*' must be the only select item");
    if (item.expr->kind != SqlExpr::Kind::kColumn) {
      Unsupported("computed select items are not compilable");
    }
    std::string qualified = ResolveAgainst(plan->schema(), *item.expr);
    std::string out_name = item.alias.empty() ? "col" + std::to_string(i + 1) : item.alias;
    columns.push_back(qualified);
    renames.emplace_back(qualified, out_name);
  }
  plan = LogicalOp::Project(plan, columns);
  plan = LogicalOp::Rename(plan, renames);
  return plan;
}

}  // namespace

Result<PlanPtr> LowerQuery(const SqlQuery& query, const Catalog& catalog) {
  try {
    return LowerSelect(query, catalog);
  } catch (const SqlError& error) {
    return Result<PlanPtr>::Error(error.what());
  } catch (const SchemaError& error) {
    return Result<PlanPtr>::Error(error.what());
  }
}

Result<PlanPtr> LowerSql(const std::string& text, const Catalog& catalog) {
  Result<std::shared_ptr<SqlQuery>> parsed = ParseQuery(text);
  if (!parsed.ok()) return Result<PlanPtr>::Error(parsed.error());
  return LowerQuery(*parsed.value(), catalog);
}

Result<std::vector<Tuple>> LowerInsert(const SqlInsert& insert, const Catalog& catalog) {
  using R = Result<std::vector<Tuple>>;
  if (!catalog.Has(insert.table)) {
    return R::Error("unknown table '" + insert.table + "' (CreateTable first)");
  }
  const Schema& schema = catalog.Get(insert.table).schema();
  std::vector<Tuple> tuples;
  tuples.reserve(insert.rows.size());
  for (size_t r = 0; r < insert.rows.size(); ++r) {
    const std::vector<Value>& row = insert.rows[r];
    if (row.size() != schema.size()) {
      return R::Error("INSERT row " + std::to_string(r + 1) + " has " +
                      std::to_string(row.size()) + " value(s); table '" + insert.table +
                      "' has " + std::to_string(schema.size()) + " column(s)");
    }
    Tuple tuple;
    tuple.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      const Attribute& attr = schema.attribute(c);
      Value value = row[c];
      if (attr.type == ValueType::kReal && value.type() == ValueType::kInt) {
        value = Value::Real(static_cast<double>(value.as_int()));
      }
      if (value.type() != attr.type) {
        return R::Error("INSERT row " + std::to_string(r + 1) + ", column '" + attr.name +
                        "': expected " + ValueTypeName(attr.type) + ", got " +
                        ValueTypeName(value.type()));
      }
      tuple.push_back(std::move(value));
    }
    tuples.push_back(std::move(tuple));
  }
  return tuples;
}

std::shared_ptr<SqlQuery> DeleteSurvivorQuery(const SqlDelete& del) {
  auto query = std::make_shared<SqlQuery>();
  SelectItem star;
  star.star = true;
  query->items.push_back(std::move(star));
  TableRef ref;
  ref.table = del.table;
  ref.alias = del.table;
  query->from.push_back(std::move(ref));
  if (del.where != nullptr) {
    auto negated = std::make_shared<SqlExpr>();
    negated->kind = SqlExpr::Kind::kNot;
    negated->left = del.where;
    query->where = std::move(negated);
  }
  return query;
}

Result<Relation> ApplyOrderLimit(const SqlQuery& query, Relation rows) {
  if (!HasOrderLimit(query)) return rows;
  // Resolve each ORDER BY key against the result schema (output names:
  // aliases or bare column names).
  std::vector<std::pair<size_t, bool>> keys;  // (column index, descending)
  for (const OrderItem& item : query.order_by) {
    if (item.expr == nullptr || item.expr->kind != SqlExpr::Kind::kColumn) {
      return Result<Relation>::Error("ORDER BY supports result columns only");
    }
    std::optional<size_t> index = rows.schema().IndexOf(item.expr->name);
    if (!index.has_value() && !item.expr->qualifier.empty()) {
      index = rows.schema().IndexOf(item.expr->qualifier + "." + item.expr->name);
    }
    if (!index.has_value()) {
      return Result<Relation>::Error("ORDER BY column '" + item.expr->ToString() +
                                     "' is not in the result");
    }
    keys.emplace_back(*index, item.descending);
  }
  std::vector<Tuple> tuples = rows.tuples();
  if (!keys.empty()) {
    std::stable_sort(tuples.begin(), tuples.end(), [&](const Tuple& a, const Tuple& b) {
      for (const auto& [column, descending] : keys) {
        int cmp = a[column].Compare(b[column]);
        if (cmp != 0) return descending ? cmp > 0 : cmp < 0;
      }
      // Deterministic tie-break: full-tuple canonical order, so LIMIT keeps
      // the same rows at every thread count.
      return CompareTuples(a, b) < 0;
    });
  }
  if (query.limit >= 0 && tuples.size() > static_cast<size_t>(query.limit)) {
    tuples.resize(static_cast<size_t>(query.limit));
  }
  return Relation(rows.schema(), std::move(tuples));
}

}  // namespace sql
}  // namespace quotient
