#pragma once

#include "plan/logical.hpp"
#include "sql/ast.hpp"
#include "util/status.hpp"

namespace quotient {
namespace sql {

/// Binds a parsed query to a logical plan (the optimizer path). This covers
/// the plannable §4 subset:
///   * FROM with base tables, derived tables, and DIVIDE BY ... ON,
///   * WHERE without subqueries (use the interpreter for correlated
///     EXISTS — that is precisely the paper's point about Q3 being hard to
///     rewrite into division automatically),
///   * GROUP BY plain columns with COUNT/SUM/MIN/MAX/AVG select items and
///     an optional HAVING over those outputs.
///
/// The resulting plan uses qualified attribute names internally and ends
/// with a Rename/Project producing the select-item aliases.
Result<PlanPtr> BindQuery(const SqlQuery& query, const Catalog& catalog);

/// Parse + bind.
Result<PlanPtr> PlanSql(const std::string& text, const Catalog& catalog);

}  // namespace sql
}  // namespace quotient
