#include "sql/binder.hpp"

#include <optional>

#include "sql/interp.hpp"
#include "sql/parser.hpp"

namespace quotient {
namespace sql {

namespace {

/// Finds the unique qualified attribute matching a (possibly qualified)
/// column reference.
std::string ResolveAgainst(const Schema& schema, const SqlExpr& column) {
  std::optional<std::string> found;
  for (size_t i = 0; i < schema.size(); ++i) {
    const std::string& attr = schema.attribute(i).name;
    bool match;
    if (!column.qualifier.empty()) {
      match = attr == column.qualifier + "." + column.name;
    } else {
      match = attr == column.name ||
              (attr.size() > column.name.size() &&
               attr.compare(attr.size() - column.name.size(), column.name.size(),
                            column.name) == 0 &&
               attr[attr.size() - column.name.size() - 1] == '.');
    }
    if (match) {
      if (found) throw SqlError("ambiguous column '" + column.ToString() + "'");
      found = attr;
    }
  }
  if (!found) throw SqlError("unknown column '" + column.ToString() + "'");
  return *found;
}

/// Translates a subquery-free SQL condition into a predicate Expr over the
/// qualified schema.
ExprPtr TranslateCondition(const SqlExpr& cond, const Schema& schema) {
  switch (cond.kind) {
    case SqlExpr::Kind::kAnd:
      return Expr::And(TranslateCondition(*cond.left, schema),
                       TranslateCondition(*cond.right, schema));
    case SqlExpr::Kind::kOr:
      return Expr::Or(TranslateCondition(*cond.left, schema),
                      TranslateCondition(*cond.right, schema));
    case SqlExpr::Kind::kNot: return Expr::Not(TranslateCondition(*cond.left, schema));
    case SqlExpr::Kind::kCompare: {
      CmpOp op;
      if (cond.op == "=") op = CmpOp::kEq;
      else if (cond.op == "<>") op = CmpOp::kNe;
      else if (cond.op == "<") op = CmpOp::kLt;
      else if (cond.op == "<=") op = CmpOp::kLe;
      else if (cond.op == ">") op = CmpOp::kGt;
      else op = CmpOp::kGe;
      return Expr::Compare(op, TranslateCondition(*cond.left, schema),
                           TranslateCondition(*cond.right, schema));
    }
    case SqlExpr::Kind::kArith: {
      Expr::Kind kind;
      if (cond.op == "+") kind = Expr::Kind::kAdd;
      else if (cond.op == "-") kind = Expr::Kind::kSub;
      else if (cond.op == "*") kind = Expr::Kind::kMul;
      else kind = Expr::Kind::kDiv;
      return Expr::Arith(kind, TranslateCondition(*cond.left, schema),
                         TranslateCondition(*cond.right, schema));
    }
    case SqlExpr::Kind::kColumn: return Expr::Column(ResolveAgainst(schema, cond));
    case SqlExpr::Kind::kLiteral: return Expr::Literal(cond.literal);
    case SqlExpr::Kind::kParam:
      throw SqlError("unbound parameter '?' (bind values via a prepared statement)");
    case SqlExpr::Kind::kExists:
    case SqlExpr::Kind::kInSubquery:
      throw SqlError(
          "subqueries in WHERE are not plannable; use sql::ExecuteQueryOracle (the paper makes "
          "the same point about detecting division in NOT EXISTS queries, §4)");
    case SqlExpr::Kind::kAggregate:
      throw SqlError("aggregates are only allowed in the GROUP BY select list / HAVING");
  }
  throw SqlError("bad condition");
}

PlanPtr BindTableFactor(const TableRef& ref, const Catalog& catalog);

PlanPtr QualifyPlan(PlanPtr plan, const std::string& alias) {
  std::vector<std::pair<std::string, std::string>> renames;
  for (const Attribute& a : plan->schema().attributes()) {
    size_t dot = a.name.rfind('.');
    std::string bare = dot == std::string::npos ? a.name : a.name.substr(dot + 1);
    renames.emplace_back(a.name, alias + "." + bare);
  }
  return LogicalOp::Rename(std::move(plan), std::move(renames));
}

PlanPtr BindTableFactor(const TableRef& ref, const Catalog& catalog) {
  if (ref.subquery != nullptr) {
    Result<PlanPtr> bound = BindQuery(*ref.subquery, catalog);
    if (!bound.ok()) throw SqlError(bound.error());
    return QualifyPlan(bound.value(), ref.alias);
  }
  if (!catalog.Has(ref.table)) throw SqlError("unknown table '" + ref.table + "'");
  return QualifyPlan(LogicalOp::Scan(catalog, ref.table), ref.alias);
}

PlanPtr BindTableRef(const TableRef& ref, const Catalog& catalog) {
  PlanPtr base = BindTableFactor(ref, catalog);
  if (ref.divisor == nullptr) return base;
  PlanPtr divisor = BindTableFactor(*ref.divisor, catalog);

  // Analyze the ON clause exactly as the interpreter does: a conjunction of
  // dividend-column = divisor-column equalities.
  struct PairCollector {
    const Schema& dividend;
    const Schema& divisor;
    std::vector<std::pair<std::string, std::string>> pairs;

    void Collect(const SqlExpr& cond) {
      if (cond.kind == SqlExpr::Kind::kAnd) {
        Collect(*cond.left);
        Collect(*cond.right);
        return;
      }
      if (cond.kind != SqlExpr::Kind::kCompare || cond.op != "=" ||
          cond.left->kind != SqlExpr::Kind::kColumn ||
          cond.right->kind != SqlExpr::Kind::kColumn) {
        throw SqlError("DIVIDE BY ON must be a conjunction of column equalities");
      }
      auto try_resolve = [](const Schema& schema, const SqlExpr& column)
          -> std::optional<std::string> {
        try {
          return ResolveAgainst(schema, column);
        } catch (const SqlError&) {
          return std::nullopt;
        }
      };
      auto l_dvd = try_resolve(dividend, *cond.left);
      auto r_dsr = try_resolve(divisor, *cond.right);
      if (l_dvd && r_dsr) {
        pairs.emplace_back(*l_dvd, *r_dsr);
        return;
      }
      auto l_dsr = try_resolve(divisor, *cond.left);
      auto r_dvd = try_resolve(dividend, *cond.right);
      if (l_dsr && r_dvd) {
        pairs.emplace_back(*r_dvd, *l_dsr);
        return;
      }
      throw SqlError("ON clause must relate a dividend column to a divisor column");
    }
  };
  PairCollector collector{base->schema(), divisor->schema(), {}};
  collector.Collect(*ref.on_condition);
  if (collector.pairs.empty()) throw SqlError("DIVIDE BY needs at least one ON equality");

  std::vector<std::pair<std::string, std::string>> renames;
  for (const auto& [dividend_attr, divisor_attr] : collector.pairs) {
    if (dividend_attr != divisor_attr) renames.emplace_back(divisor_attr, dividend_attr);
  }
  if (!renames.empty()) divisor = LogicalOp::Rename(divisor, renames);
  // Small divide iff every divisor attribute is covered by the ON clause.
  DivisionAttributes attrs =
      DivisionAttributeSets(base->schema(), divisor->schema(), /*allow_c=*/true);
  if (attrs.c.empty()) return LogicalOp::Divide(base, divisor);
  return LogicalOp::GreatDivide(base, divisor);
}

}  // namespace

Result<PlanPtr> BindQuery(const SqlQuery& query, const Catalog& catalog) {
  try {
    if (query.from.empty()) throw SqlError("FROM clause is required");
    PlanPtr plan = BindTableRef(query.from[0], catalog);
    for (size_t i = 1; i < query.from.size(); ++i) {
      plan = LogicalOp::Product(plan, BindTableRef(query.from[i], catalog));
    }
    if (query.where != nullptr) {
      plan = LogicalOp::Select(plan, TranslateCondition(*query.where, plan->schema()));
    }

    bool any_aggregate = query.having != nullptr || !query.group_by.empty();
    for (const SelectItem& item : query.items) {
      if (!item.star && item.expr->kind == SqlExpr::Kind::kAggregate) any_aggregate = true;
    }

    if (query.items.size() == 1 && query.items[0].star) {
      return plan;  // keep qualified names
    }

    if (any_aggregate) {
      std::vector<std::string> group_names;
      for (const SqlExprPtr& g : query.group_by) {
        if (g->kind != SqlExpr::Kind::kColumn) {
          throw SqlError("GROUP BY supports plain columns only");
        }
        group_names.push_back(ResolveAgainst(plan->schema(), *g));
      }
      std::vector<AggSpec> aggs;
      std::vector<std::pair<std::string, std::string>> final_renames;
      std::vector<std::string> final_columns;
      size_t agg_index = 0;
      for (size_t i = 0; i < query.items.size(); ++i) {
        const SelectItem& item = query.items[i];
        std::string out_name = item.alias.empty() ? "col" + std::to_string(i + 1) : item.alias;
        if (item.expr->kind == SqlExpr::Kind::kColumn) {
          std::string qualified = ResolveAgainst(plan->schema(), *item.expr);
          final_columns.push_back(qualified);
          final_renames.emplace_back(qualified, out_name);
        } else if (item.expr->kind == SqlExpr::Kind::kAggregate) {
          AggSpec spec;
          if (item.expr->name == "COUNT") spec.fn = AggFunc::kCount;
          else if (item.expr->name == "SUM") spec.fn = AggFunc::kSum;
          else if (item.expr->name == "MIN") spec.fn = AggFunc::kMin;
          else if (item.expr->name == "MAX") spec.fn = AggFunc::kMax;
          else spec.fn = AggFunc::kAvg;
          if (!item.expr->count_star) {
            if (item.expr->left->kind != SqlExpr::Kind::kColumn) {
              throw SqlError("aggregate arguments must be plain columns");
            }
            spec.arg = ResolveAgainst(plan->schema(), *item.expr->left);
          } else {
            spec.arg = plan->schema().attribute(0).name;
            spec.fn = AggFunc::kCount;
          }
          spec.out = "agg$" + std::to_string(agg_index++);
          final_columns.push_back(spec.out);
          final_renames.emplace_back(spec.out, out_name);
          aggs.push_back(std::move(spec));
        } else {
          throw SqlError("grouped select items must be columns or aggregates");
        }
      }
      plan = LogicalOp::GroupBy(plan, group_names, aggs);
      if (query.having != nullptr) {
        // HAVING may reference aggregate outputs by their select alias; we
        // translate aggregates by matching shape against the select list.
        struct HavingRewriter {
          const std::vector<SelectItem>& items;
          const std::vector<std::pair<std::string, std::string>>& renames;

          SqlExpr Rewrite(const SqlExpr& e) const {
            if (e.kind == SqlExpr::Kind::kAggregate) {
              for (size_t i = 0; i < items.size(); ++i) {
                if (!items[i].star && items[i].expr->ToString() == e.ToString()) {
                  SqlExpr column;
                  column.kind = SqlExpr::Kind::kColumn;
                  column.name = renames[i].first;  // the agg$ output
                  return column;
                }
              }
              throw SqlError("HAVING aggregate must also appear in the select list");
            }
            SqlExpr out = e;
            if (e.left != nullptr) out.left = std::make_shared<SqlExpr>(Rewrite(*e.left));
            if (e.right != nullptr) out.right = std::make_shared<SqlExpr>(Rewrite(*e.right));
            return out;
          }
        };
        HavingRewriter rewriter{query.items, final_renames};
        SqlExpr rewritten = rewriter.Rewrite(*query.having);
        plan = LogicalOp::Select(plan, TranslateCondition(rewritten, plan->schema()));
      }
      plan = LogicalOp::Project(plan, final_columns);
      plan = LogicalOp::Rename(plan, final_renames);
      return plan;
    }

    // Plain column projection.
    std::vector<std::string> columns;
    std::vector<std::pair<std::string, std::string>> renames;
    for (size_t i = 0; i < query.items.size(); ++i) {
      const SelectItem& item = query.items[i];
      if (item.star) throw SqlError("'*' must be the only select item");
      if (item.expr->kind != SqlExpr::Kind::kColumn) {
        throw SqlError("computed select items are not plannable; use sql::ExecuteQueryOracle");
      }
      std::string qualified = ResolveAgainst(plan->schema(), *item.expr);
      std::string out_name = item.alias.empty() ? "col" + std::to_string(i + 1) : item.alias;
      columns.push_back(qualified);
      renames.emplace_back(qualified, out_name);
    }
    plan = LogicalOp::Project(plan, columns);
    plan = LogicalOp::Rename(plan, renames);
    return plan;
  } catch (const SqlError& error) {
    return Result<PlanPtr>::Error(error.what());
  } catch (const SchemaError& error) {
    return Result<PlanPtr>::Error(error.what());
  }
}

Result<PlanPtr> PlanSql(const std::string& text, const Catalog& catalog) {
  Result<std::shared_ptr<SqlQuery>> parsed = ParseQuery(text);
  if (!parsed.ok()) return Result<PlanPtr>::Error(parsed.error());
  return BindQuery(*parsed.value(), catalog);
}

}  // namespace sql
}  // namespace quotient
