#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algebra/value.hpp"
#include "util/status.hpp"

namespace quotient {
namespace sql {

struct SqlQuery;

/// SQL scalar / boolean expression AST.
struct SqlExpr {
  enum class Kind {
    kColumn,     // possibly qualified: "s", "s1.p#"
    kLiteral,    // number or string
    kParam,      // '?' placeholder, bound via BindParameters
    kCompare,    // = <> < <= > >=
    kAnd, kOr, kNot,
    kArith,      // + - * /
    kExists,     // EXISTS (subquery); `negated` for NOT EXISTS
    kInSubquery, // expr IN (subquery); `negated` for NOT IN
    kAggregate   // COUNT/SUM/MIN/MAX/AVG (in SELECT or HAVING)
  };

  Kind kind;
  std::string qualifier;  // kColumn: table alias, may be empty
  std::string name;       // kColumn: column; kAggregate: function name (upper)
  Value literal;          // kLiteral
  std::string op;         // kCompare: "=", "<>", ...; kArith: "+", ...
  std::shared_ptr<SqlExpr> left;
  std::shared_ptr<SqlExpr> right;
  std::shared_ptr<SqlQuery> subquery;  // kExists / kInSubquery
  bool negated = false;
  bool count_star = false;  // COUNT(*)
  size_t param_index = 0;   // kParam: 0-based ordinal of the '?'

  std::string ToString() const;
};

using SqlExprPtr = std::shared_ptr<SqlExpr>;

/// A FROM-clause table reference, optionally a paper-§4 quotient:
///   <table reference> DIVIDE BY <table reference> ON <search condition>
struct TableRef {
  std::string table;                   // base table name (empty for subquery)
  std::string alias;                   // defaults to the table name
  std::shared_ptr<SqlQuery> subquery;  // derived table

  // DIVIDE BY extension.
  std::shared_ptr<TableRef> divisor;
  SqlExprPtr on_condition;
};

/// One SELECT-list entry.
struct SelectItem {
  bool star = false;
  SqlExprPtr expr;
  std::string alias;  // output column name (defaults to the column name)
};

/// One ORDER BY key: a result-schema column, ascending by default. Results
/// are canonical relations (sets), so ordering alone does not change the
/// output; its job is deciding which rows a LIMIT keeps.
struct OrderItem {
  SqlExprPtr expr;  // must resolve to a result column
  bool descending = false;
};

/// A parsed SELECT query.
struct SqlQuery {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  SqlExprPtr where;
  std::vector<SqlExprPtr> group_by;  // column expressions
  SqlExprPtr having;
  // Top-statement-level result shaping (rejected in subqueries): sort the
  // result by `order_by`, then keep the first `limit` rows (-1 = no limit).
  std::vector<OrderItem> order_by;
  int64_t limit = -1;

  std::string ToString() const;
};

/// One INSERT statement: literal rows buffered into `table`.
struct SqlInsert {
  std::string table;
  std::vector<std::vector<Value>> rows;  // literal VALUES tuples
};

/// One DELETE statement: remove the rows of `table` matching `where`
/// (all rows when `where` is null).
struct SqlDelete {
  std::string table;
  SqlExprPtr where;
};

/// A top-level SQL statement: a query, a DML statement, or transaction
/// control. Only kSelect statements flow through the plan cache and the
/// rewrite engine; the rest are handled by the Session's control path.
struct SqlStatement {
  enum class Kind { kSelect, kInsert, kDelete, kBegin, kCommit, kRollback };

  Kind kind = Kind::kSelect;
  std::shared_ptr<SqlQuery> select;  // kSelect
  SqlInsert insert;                  // kInsert
  SqlDelete del;                     // kDelete
};

/// Number of '?' placeholders in the query (subqueries included). Parameter
/// ordinals are assigned left to right by the parser.
size_t CountParameters(const SqlQuery& query);

/// Deep-copies `query` with every '?' replaced by the matching literal from
/// `params`. Errors when params.size() != CountParameters(query).
Result<std::shared_ptr<SqlQuery>> BindParameters(const SqlQuery& query,
                                                 const std::vector<Value>& params);

/// Inserts every base-table name the query references (FROM clauses,
/// DIVIDE BY divisors, and all subqueries) into `out`. This is the
/// invalidation domain of a cached statement that runs on the oracle
/// interpreter (api/database.hpp), where no lowered plan exists to walk.
void CollectTables(const SqlQuery& query, std::set<std::string>* out);

}  // namespace sql
}  // namespace quotient
