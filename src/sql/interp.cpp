#include "sql/interp.hpp"

#include <map>
#include <optional>

#include "algebra/divide.hpp"
#include "algebra/ops.hpp"
#include "sql/parser.hpp"

namespace quotient {
namespace sql {

namespace {

/// One name-resolution frame: a schema with "alias.column" attribute names
/// plus the current tuple.
struct Frame {
  const Schema* schema;
  const Tuple* tuple;
};

/// Innermost-frame-last stack; column lookups search backwards (correlated
/// subqueries see their outer rows).
using Scope = std::vector<Frame>;

struct Resolved {
  size_t frame;
  size_t index;
};

std::optional<Resolved> ResolveColumn(const Scope& scope, const std::string& qualifier,
                                      const std::string& name) {
  for (size_t f = scope.size(); f-- > 0;) {
    const Schema& schema = *scope[f].schema;
    std::optional<size_t> found;
    for (size_t i = 0; i < schema.size(); ++i) {
      const std::string& attr = schema.attribute(i).name;
      bool match;
      if (!qualifier.empty()) {
        match = attr == qualifier + "." + name;
      } else {
        match = attr == name || (attr.size() > name.size() &&
                                 attr.compare(attr.size() - name.size(), name.size(), name) == 0 &&
                                 attr[attr.size() - name.size() - 1] == '.');
      }
      if (match) {
        if (found.has_value()) {
          throw SqlError("ambiguous column reference '" +
                         (qualifier.empty() ? name : qualifier + "." + name) + "'");
        }
        found = i;
      }
    }
    if (found.has_value()) return Resolved{f, *found};
  }
  return std::nullopt;
}

Value EvalScalar(const SqlExpr& expr, const Scope& scope, const Catalog& catalog);
Relation ExecuteQueryScoped(const SqlQuery& query, const Catalog& catalog, const Scope& outer);

bool EvalBool(const SqlExpr& expr, const Scope& scope, const Catalog& catalog) {
  switch (expr.kind) {
    case SqlExpr::Kind::kAnd:
      return EvalBool(*expr.left, scope, catalog) && EvalBool(*expr.right, scope, catalog);
    case SqlExpr::Kind::kOr:
      return EvalBool(*expr.left, scope, catalog) || EvalBool(*expr.right, scope, catalog);
    case SqlExpr::Kind::kNot: return !EvalBool(*expr.left, scope, catalog);
    case SqlExpr::Kind::kCompare: {
      Value l = EvalScalar(*expr.left, scope, catalog);
      Value r = EvalScalar(*expr.right, scope, catalog);
      bool numeric = (l.type() == ValueType::kInt || l.type() == ValueType::kReal) &&
                     (r.type() == ValueType::kInt || r.type() == ValueType::kReal);
      int c;
      if (numeric) {
        double x = l.Numeric(), y = r.Numeric();
        c = x < y ? -1 : (x > y ? 1 : 0);
      } else if (l.type() == r.type()) {
        c = l.Compare(r);
      } else {
        throw SqlError("type mismatch comparing " + l.ToString() + " and " + r.ToString());
      }
      if (expr.op == "=") return c == 0;
      if (expr.op == "<>") return c != 0;
      if (expr.op == "<") return c < 0;
      if (expr.op == "<=") return c <= 0;
      if (expr.op == ">") return c > 0;
      if (expr.op == ">=") return c >= 0;
      throw SqlError("bad comparator " + expr.op);
    }
    case SqlExpr::Kind::kExists: {
      Relation result = ExecuteQueryScoped(*expr.subquery, catalog, scope);
      return expr.negated ? result.empty() : !result.empty();
    }
    case SqlExpr::Kind::kInSubquery: {
      Value needle = EvalScalar(*expr.left, scope, catalog);
      Relation result = ExecuteQueryScoped(*expr.subquery, catalog, scope);
      if (result.schema().size() != 1) {
        throw SqlError("IN subquery must produce exactly one column");
      }
      bool found = false;
      for (const Tuple& t : result.tuples()) {
        if (t[0] == needle) {
          found = true;
          break;
        }
      }
      return expr.negated ? !found : found;
    }
    default: {
      Value v = EvalScalar(expr, scope, catalog);
      if (v.type() == ValueType::kInt) return v.as_int() != 0;
      throw SqlError("expression used as condition is not boolean: " + expr.ToString());
    }
  }
}

Value EvalScalar(const SqlExpr& expr, const Scope& scope, const Catalog& catalog) {
  switch (expr.kind) {
    case SqlExpr::Kind::kColumn: {
      std::optional<Resolved> r = ResolveColumn(scope, expr.qualifier, expr.name);
      if (!r) throw SqlError("unknown column '" + expr.ToString() + "'");
      return (*scope[r->frame].tuple)[r->index];
    }
    case SqlExpr::Kind::kLiteral: return expr.literal;
    case SqlExpr::Kind::kParam:
      throw SqlError("unbound parameter '?' (bind values via a prepared statement)");
    case SqlExpr::Kind::kArith: {
      Value l = EvalScalar(*expr.left, scope, catalog);
      Value r = EvalScalar(*expr.right, scope, catalog);
      bool both_int = l.type() == ValueType::kInt && r.type() == ValueType::kInt;
      double x = l.Numeric(), y = r.Numeric();
      if (expr.op == "+") return both_int ? Value::Int(l.as_int() + r.as_int()) : Value::Real(x + y);
      if (expr.op == "-") return both_int ? Value::Int(l.as_int() - r.as_int()) : Value::Real(x - y);
      if (expr.op == "*") return both_int ? Value::Int(l.as_int() * r.as_int()) : Value::Real(x * y);
      if (expr.op == "/") {
        if (y == 0) throw SqlError("division by zero");
        return Value::Real(x / y);
      }
      throw SqlError("bad arithmetic operator " + expr.op);
    }
    case SqlExpr::Kind::kCompare:
    case SqlExpr::Kind::kAnd:
    case SqlExpr::Kind::kOr:
    case SqlExpr::Kind::kNot:
    case SqlExpr::Kind::kExists:
    case SqlExpr::Kind::kInSubquery:
      return Value::Int(EvalBool(expr, scope, catalog) ? 1 : 0);
    case SqlExpr::Kind::kAggregate:
      throw SqlError("aggregate " + expr.name + " outside GROUP BY context");
  }
  throw SqlError("bad expression");
}

bool ContainsAggregate(const SqlExpr& expr) {
  if (expr.kind == SqlExpr::Kind::kAggregate) return true;
  if (expr.left != nullptr && ContainsAggregate(*expr.left)) return true;
  if (expr.right != nullptr && ContainsAggregate(*expr.right)) return true;
  return false;
}

/// Evaluates an expression in a grouped context: aggregates are computed
/// over `rows`; everything else is evaluated against the group's
/// representative row (valid for group-by columns).
Value EvalGrouped(const SqlExpr& expr, const std::vector<Tuple>& rows, const Schema& schema,
                  const Scope& outer, const Catalog& catalog) {
  if (expr.kind == SqlExpr::Kind::kAggregate) {
    int64_t count = 0;
    double sum = 0;
    bool sum_int = true;
    int64_t sum_i = 0;
    std::optional<Value> min_v, max_v;
    for (const Tuple& row : rows) {
      Scope scope = outer;
      scope.push_back({&schema, &row});
      if (expr.count_star) {
        ++count;
        continue;
      }
      Value v = EvalScalar(*expr.left, scope, catalog);
      ++count;
      if (v.type() == ValueType::kInt) {
        sum_i += v.as_int();
        sum += static_cast<double>(v.as_int());
      } else if (v.type() == ValueType::kReal) {
        sum_int = false;
        sum += v.as_real();
      }
      if (!min_v || v < *min_v) min_v = v;
      if (!max_v || v > *max_v) max_v = v;
    }
    if (expr.name == "COUNT") return Value::Int(count);
    if (count == 0) return Value();
    if (expr.name == "SUM") return sum_int ? Value::Int(sum_i) : Value::Real(sum);
    if (expr.name == "AVG") return Value::Real(sum / static_cast<double>(count));
    if (expr.name == "MIN") return *min_v;
    if (expr.name == "MAX") return *max_v;
    throw SqlError("bad aggregate " + expr.name);
  }
  if (expr.kind == SqlExpr::Kind::kAnd || expr.kind == SqlExpr::Kind::kOr ||
      expr.kind == SqlExpr::Kind::kNot || expr.kind == SqlExpr::Kind::kCompare ||
      expr.kind == SqlExpr::Kind::kArith) {
    SqlExpr shallow = expr;  // evaluate children in grouped context
    if (ContainsAggregate(expr)) {
      auto eval_child = [&](const SqlExprPtr& child) {
        auto lit = std::make_shared<SqlExpr>();
        lit->kind = SqlExpr::Kind::kLiteral;
        lit->literal = EvalGrouped(*child, rows, schema, outer, catalog);
        return lit;
      };
      if (shallow.left != nullptr) shallow.left = eval_child(expr.left);
      if (shallow.right != nullptr) shallow.right = eval_child(expr.right);
      Scope scope = outer;
      if (!rows.empty()) scope.push_back({&schema, &rows.front()});
      return EvalScalar(shallow, scope, catalog);
    }
  }
  Scope scope = outer;
  if (rows.empty()) throw SqlError("empty group");
  scope.push_back({&schema, &rows.front()});
  return EvalScalar(expr, scope, catalog);
}

ValueType TypeOfValue(const Value& v) { return v.type(); }

/// Infers an output type for a select item by probing (used only when the
/// result is empty; defaults to int).
ValueType InferType(const SqlExpr& expr, const Schema& schema) {
  switch (expr.kind) {
    case SqlExpr::Kind::kColumn: {
      Scope scope;
      Tuple dummy;
      (void)dummy;
      for (size_t i = 0; i < schema.size(); ++i) {
        const std::string& attr = schema.attribute(i).name;
        std::string qualified =
            expr.qualifier.empty() ? expr.name : expr.qualifier + "." + expr.name;
        if (attr == qualified || (attr.size() > expr.name.size() &&
                                  attr.compare(attr.size() - expr.name.size(), expr.name.size(),
                                               expr.name) == 0)) {
          return schema.attribute(i).type;
        }
      }
      return ValueType::kInt;
    }
    case SqlExpr::Kind::kLiteral: return TypeOfValue(expr.literal);
    case SqlExpr::Kind::kAggregate:
      if (expr.name == "COUNT") return ValueType::kInt;
      if (expr.name == "AVG") return ValueType::kReal;
      return expr.left != nullptr ? InferType(*expr.left, schema) : ValueType::kInt;
    case SqlExpr::Kind::kArith: return ValueType::kInt;
    default: return ValueType::kInt;
  }
}

/// Renames every attribute of `r` to "alias.name".
Relation Qualify(const Relation& r, const std::string& alias) {
  std::vector<Attribute> attributes = r.schema().attributes();
  for (Attribute& a : attributes) {
    // Derived tables may already carry qualified names; strip them first.
    size_t dot = a.name.rfind('.');
    std::string bare = dot == std::string::npos ? a.name : a.name.substr(dot + 1);
    a.name = alias + "." + bare;
  }
  return Relation(Schema(std::move(attributes)), r.tuples());
}

Relation EvalTableFactor(const TableRef& ref, const Catalog& catalog, const Scope& outer) {
  if (ref.subquery != nullptr) {
    return Qualify(ExecuteQueryScoped(*ref.subquery, catalog, outer), ref.alias);
  }
  if (!catalog.Has(ref.table)) throw SqlError("unknown table '" + ref.table + "'");
  return Qualify(catalog.Get(ref.table), ref.alias);
}

/// Analyzes the §4 ON clause: it must be a conjunction of equi-comparisons
/// between one dividend column and one divisor column. Returns pairs of
/// qualified (dividend attr, divisor attr).
void CollectOnPairs(const SqlExpr& cond, const Relation& dividend, const Relation& divisor,
                    std::vector<std::pair<std::string, std::string>>* pairs) {
  if (cond.kind == SqlExpr::Kind::kAnd) {
    CollectOnPairs(*cond.left, dividend, divisor, pairs);
    CollectOnPairs(*cond.right, dividend, divisor, pairs);
    return;
  }
  if (cond.kind != SqlExpr::Kind::kCompare || cond.op != "=" ||
      cond.left->kind != SqlExpr::Kind::kColumn || cond.right->kind != SqlExpr::Kind::kColumn) {
    // "We suggest to disallow this case." (§4)
    throw SqlError(
        "DIVIDE BY requires the ON clause to be a conjunction of column equalities; got " +
        cond.ToString());
  }
  auto find_in = [](const Relation& r, const SqlExpr& column) -> std::optional<std::string> {
    Scope scope;
    Tuple dummy(r.schema().size());
    scope.push_back({&r.schema(), &dummy});
    std::optional<Resolved> resolved = ResolveColumn(scope, column.qualifier, column.name);
    if (!resolved) return std::nullopt;
    return r.schema().attribute(resolved->index).name;
  };
  std::optional<std::string> l_div = find_in(dividend, *cond.left);
  std::optional<std::string> r_div = find_in(divisor, *cond.right);
  if (l_div && r_div) {
    pairs->emplace_back(*l_div, *r_div);
    return;
  }
  std::optional<std::string> l_dsr = find_in(divisor, *cond.left);
  std::optional<std::string> r_dvd = find_in(dividend, *cond.right);
  if (l_dsr && r_dvd) {
    pairs->emplace_back(*r_dvd, *l_dsr);
    return;
  }
  throw SqlError("ON clause must relate a dividend column to a divisor column: " +
                 cond.ToString());
}

Relation EvalTableRef(const TableRef& ref, const Catalog& catalog, const Scope& outer) {
  Relation base = EvalTableFactor(ref, catalog, outer);
  if (ref.divisor == nullptr) return base;

  Relation divisor = EvalTableFactor(*ref.divisor, catalog, outer);
  std::vector<std::pair<std::string, std::string>> pairs;
  CollectOnPairs(*ref.on_condition, base, divisor, &pairs);
  if (pairs.empty()) throw SqlError("DIVIDE BY needs at least one ON equality");
  // Rename divisor join attributes to the dividend's names so the division's
  // B attribute sets align; remaining divisor attributes form C (great
  // divide). If C is empty the operation is the small divide — the paper's
  // "small iff all divisor attributes appear in the ON clause".
  std::vector<std::pair<std::string, std::string>> renames;
  for (const auto& [dividend_attr, divisor_attr] : pairs) {
    if (dividend_attr == divisor_attr) continue;
    renames.emplace_back(divisor_attr, dividend_attr);
  }
  Relation aligned = renames.empty() ? divisor : Rename(divisor, renames);
  return GreatDivide(base, aligned);
}

Relation ExecuteQueryScoped(const SqlQuery& query, const Catalog& catalog, const Scope& outer) {
  if (query.from.empty()) throw SqlError("FROM clause is required");
  // FROM: product of table references (aliases must be distinct).
  Relation input = EvalTableRef(query.from[0], catalog, outer);
  for (size_t i = 1; i < query.from.size(); ++i) {
    input = Product(input, EvalTableRef(query.from[i], catalog, outer));
  }

  // WHERE, evaluated tuple-at-a-time with the outer scope visible.
  std::vector<Tuple> filtered;
  for (const Tuple& t : input.tuples()) {
    Scope scope = outer;
    scope.push_back({&input.schema(), &t});
    if (query.where == nullptr || EvalBool(*query.where, scope, catalog)) {
      filtered.push_back(t);
    }
  }
  Relation rows(input.schema(), std::move(filtered));

  bool any_aggregate = query.having != nullptr;
  for (const SelectItem& item : query.items) {
    if (!item.star && ContainsAggregate(*item.expr)) any_aggregate = true;
  }

  // SELECT *: strip qualifiers when unambiguous.
  if (query.items.size() == 1 && query.items[0].star) {
    if (!query.group_by.empty() || any_aggregate) {
      throw SqlError("SELECT * cannot be combined with GROUP BY");
    }
    std::vector<Attribute> attributes = rows.schema().attributes();
    std::map<std::string, int> bare_counts;
    for (const Attribute& a : attributes) {
      size_t dot = a.name.rfind('.');
      bare_counts[dot == std::string::npos ? a.name : a.name.substr(dot + 1)] += 1;
    }
    for (Attribute& a : attributes) {
      size_t dot = a.name.rfind('.');
      std::string bare = dot == std::string::npos ? a.name : a.name.substr(dot + 1);
      if (bare_counts[bare] == 1) a.name = bare;
    }
    return Relation(Schema(std::move(attributes)), rows.tuples());
  }

  // Output schema.
  std::vector<Attribute> out_attrs;
  for (size_t i = 0; i < query.items.size(); ++i) {
    const SelectItem& item = query.items[i];
    if (item.star) throw SqlError("'*' must be the only select item");
    std::string name = item.alias.empty() ? "col" + std::to_string(i + 1) : item.alias;
    out_attrs.push_back({name, InferType(*item.expr, rows.schema())});
  }

  std::vector<Tuple> out_rows;
  if (!query.group_by.empty() || any_aggregate) {
    // Group rows by the GROUP BY column values (empty list = one group).
    std::map<Tuple, std::vector<Tuple>, TupleLess> groups;
    for (const Tuple& t : rows.tuples()) {
      Scope scope = outer;
      scope.push_back({&rows.schema(), &t});
      Tuple key;
      key.reserve(query.group_by.size());
      for (const SqlExprPtr& g : query.group_by) key.push_back(EvalScalar(*g, scope, catalog));
      groups[std::move(key)].push_back(t);
    }
    // Global aggregates over empty input still produce one row (count = 0,
    // sum/min/max/avg NULL) — the SQL semantics, matching algebra::GroupBy.
    if (query.group_by.empty() && groups.empty()) groups[Tuple()] = {};
    for (const auto& [key, group_rows] : groups) {
      if (query.having != nullptr) {
        Value keep = EvalGrouped(*query.having, group_rows, rows.schema(), outer, catalog);
        if (!(keep.type() == ValueType::kInt && keep.as_int() != 0)) continue;
      }
      Tuple out;
      out.reserve(query.items.size());
      for (const SelectItem& item : query.items) {
        out.push_back(EvalGrouped(*item.expr, group_rows, rows.schema(), outer, catalog));
      }
      out_rows.push_back(std::move(out));
    }
  } else {
    for (const Tuple& t : rows.tuples()) {
      Scope scope = outer;
      scope.push_back({&rows.schema(), &t});
      Tuple out;
      out.reserve(query.items.size());
      for (const SelectItem& item : query.items) {
        out.push_back(EvalScalar(*item.expr, scope, catalog));
      }
      out_rows.push_back(std::move(out));
    }
  }
  // Set semantics: duplicates are always removed (DISTINCT is the default
  // in this algebra, as in Appendix A).
  return Relation(Schema(std::move(out_attrs)), std::move(out_rows));
}

}  // namespace

Relation ExecuteQueryOracle(const SqlQuery& query, const Catalog& catalog) {
  return ExecuteQueryScoped(query, catalog, {});
}

Result<Relation> ExecuteSql(const std::string& text, const Catalog& catalog) {
  Result<std::shared_ptr<SqlQuery>> parsed = ParseQuery(text);
  if (!parsed.ok()) return Result<Relation>::Error(parsed.error());
  try {
    return ExecuteQueryOracle(*parsed.value(), catalog);
  } catch (const SqlError& error) {
    return Result<Relation>::Error(error.what());
  } catch (const SchemaError& error) {
    return Result<Relation>::Error(error.what());
  }
}

}  // namespace sql
}  // namespace quotient
