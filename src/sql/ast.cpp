#include "sql/ast.hpp"

namespace quotient {
namespace sql {

std::string SqlExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn: return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kLiteral:
      return literal.type() == ValueType::kString ? "'" + literal.ToString() + "'"
                                                  : literal.ToString();
    case Kind::kCompare:
    case Kind::kArith: return "(" + left->ToString() + " " + op + " " + right->ToString() + ")";
    case Kind::kAnd: return "(" + left->ToString() + " AND " + right->ToString() + ")";
    case Kind::kOr: return "(" + left->ToString() + " OR " + right->ToString() + ")";
    case Kind::kNot: return "(NOT " + left->ToString() + ")";
    case Kind::kExists:
      return std::string(negated ? "NOT " : "") + "EXISTS (" + subquery->ToString() + ")";
    case Kind::kInSubquery:
      return left->ToString() + (negated ? " NOT IN (" : " IN (") + subquery->ToString() + ")";
    case Kind::kAggregate:
      return name + "(" + (count_star ? "*" : left->ToString()) + ")";
  }
  return "?";
}

std::string SqlQuery::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    if (items[i].star) {
      out += "*";
    } else {
      out += items[i].expr->ToString();
      if (!items[i].alias.empty()) out += " AS " + items[i].alias;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    const TableRef& ref = from[i];
    auto render_factor = [](const TableRef& factor) {
      std::string text = factor.table.empty() ? "(" + factor.subquery->ToString() + ")"
                                              : factor.table;
      if (!factor.alias.empty() && factor.alias != factor.table) text += " AS " + factor.alias;
      return text;
    };
    out += render_factor(ref);
    if (ref.divisor != nullptr) {
      out += " DIVIDE BY " + render_factor(*ref.divisor) + " ON " + ref.on_condition->ToString();
    }
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  return out;
}

}  // namespace sql
}  // namespace quotient
