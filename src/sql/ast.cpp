#include "sql/ast.hpp"

namespace quotient {
namespace sql {

std::string SqlExpr::ToString() const {
  switch (kind) {
    case Kind::kColumn: return qualifier.empty() ? name : qualifier + "." + name;
    case Kind::kLiteral:
      return literal.type() == ValueType::kString ? "'" + literal.ToString() + "'"
                                                  : literal.ToString();
    case Kind::kParam: return "?";
    case Kind::kCompare:
    case Kind::kArith: return "(" + left->ToString() + " " + op + " " + right->ToString() + ")";
    case Kind::kAnd: return "(" + left->ToString() + " AND " + right->ToString() + ")";
    case Kind::kOr: return "(" + left->ToString() + " OR " + right->ToString() + ")";
    case Kind::kNot: return "(NOT " + left->ToString() + ")";
    case Kind::kExists:
      return std::string(negated ? "NOT " : "") + "EXISTS (" + subquery->ToString() + ")";
    case Kind::kInSubquery:
      return left->ToString() + (negated ? " NOT IN (" : " IN (") + subquery->ToString() + ")";
    case Kind::kAggregate:
      return name + "(" + (count_star ? "*" : left->ToString()) + ")";
  }
  return "?";
}

std::string SqlQuery::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    if (items[i].star) {
      out += "*";
    } else {
      out += items[i].expr->ToString();
      if (!items[i].alias.empty()) out += " AS " + items[i].alias;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    const TableRef& ref = from[i];
    auto render_factor = [](const TableRef& factor) {
      std::string text = factor.table.empty() ? "(" + factor.subquery->ToString() + ")"
                                              : factor.table;
      if (!factor.alias.empty() && factor.alias != factor.table) text += " AS " + factor.alias;
      return text;
    };
    out += render_factor(ref);
    if (ref.divisor != nullptr) {
      out += " DIVIDE BY " + render_factor(*ref.divisor) + " ON " + ref.on_condition->ToString();
    }
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having != nullptr) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

namespace {

void CountExprParams(const SqlExpr& expr, size_t* count);
void CountQueryParams(const SqlQuery& query, size_t* count);

void CountExprParams(const SqlExpr& expr, size_t* count) {
  if (expr.kind == SqlExpr::Kind::kParam) ++*count;
  if (expr.left != nullptr) CountExprParams(*expr.left, count);
  if (expr.right != nullptr) CountExprParams(*expr.right, count);
  if (expr.subquery != nullptr) CountQueryParams(*expr.subquery, count);
}

void CountTableRefParams(const TableRef& ref, size_t* count) {
  if (ref.subquery != nullptr) CountQueryParams(*ref.subquery, count);
  if (ref.divisor != nullptr) CountTableRefParams(*ref.divisor, count);
  if (ref.on_condition != nullptr) CountExprParams(*ref.on_condition, count);
}

void CountQueryParams(const SqlQuery& query, size_t* count) {
  for (const SelectItem& item : query.items) {
    if (item.expr != nullptr) CountExprParams(*item.expr, count);
  }
  for (const TableRef& ref : query.from) CountTableRefParams(ref, count);
  if (query.where != nullptr) CountExprParams(*query.where, count);
  for (const SqlExprPtr& g : query.group_by) CountExprParams(*g, count);
  if (query.having != nullptr) CountExprParams(*query.having, count);
  for (const OrderItem& item : query.order_by) CountExprParams(*item.expr, count);
}

std::shared_ptr<SqlQuery> BindQueryParams(const SqlQuery& query,
                                          const std::vector<Value>& params);

SqlExprPtr BindExprParams(const SqlExpr& expr, const std::vector<Value>& params) {
  auto out = std::make_shared<SqlExpr>(expr);
  if (expr.kind == SqlExpr::Kind::kParam) {
    out->kind = SqlExpr::Kind::kLiteral;
    out->literal = params[expr.param_index];
    return out;
  }
  if (expr.left != nullptr) out->left = BindExprParams(*expr.left, params);
  if (expr.right != nullptr) out->right = BindExprParams(*expr.right, params);
  if (expr.subquery != nullptr) out->subquery = BindQueryParams(*expr.subquery, params);
  return out;
}

TableRef BindTableRefParams(const TableRef& ref, const std::vector<Value>& params) {
  TableRef out = ref;
  if (ref.subquery != nullptr) out.subquery = BindQueryParams(*ref.subquery, params);
  if (ref.divisor != nullptr) {
    out.divisor = std::make_shared<TableRef>(BindTableRefParams(*ref.divisor, params));
  }
  if (ref.on_condition != nullptr) out.on_condition = BindExprParams(*ref.on_condition, params);
  return out;
}

std::shared_ptr<SqlQuery> BindQueryParams(const SqlQuery& query,
                                          const std::vector<Value>& params) {
  auto out = std::make_shared<SqlQuery>(query);
  for (SelectItem& item : out->items) {
    if (item.expr != nullptr) item.expr = BindExprParams(*item.expr, params);
  }
  out->from.clear();
  for (const TableRef& ref : query.from) out->from.push_back(BindTableRefParams(ref, params));
  if (query.where != nullptr) out->where = BindExprParams(*query.where, params);
  out->group_by.clear();
  for (const SqlExprPtr& g : query.group_by) out->group_by.push_back(BindExprParams(*g, params));
  if (query.having != nullptr) out->having = BindExprParams(*query.having, params);
  for (OrderItem& item : out->order_by) item.expr = BindExprParams(*item.expr, params);
  return out;
}

}  // namespace

size_t CountParameters(const SqlQuery& query) {
  size_t count = 0;
  CountQueryParams(query, &count);
  return count;
}

namespace {

void CollectExprTables(const SqlExpr& expr, std::set<std::string>* out) {
  if (expr.subquery != nullptr) CollectTables(*expr.subquery, out);
  if (expr.left != nullptr) CollectExprTables(*expr.left, out);
  if (expr.right != nullptr) CollectExprTables(*expr.right, out);
}

void CollectTableRefTables(const TableRef& ref, std::set<std::string>* out) {
  if (!ref.table.empty()) out->insert(ref.table);
  if (ref.subquery != nullptr) CollectTables(*ref.subquery, out);
  if (ref.divisor != nullptr) CollectTableRefTables(*ref.divisor, out);
}

}  // namespace

void CollectTables(const SqlQuery& query, std::set<std::string>* out) {
  for (const SelectItem& item : query.items) {
    if (item.expr != nullptr) CollectExprTables(*item.expr, out);
  }
  for (const TableRef& ref : query.from) CollectTableRefTables(ref, out);
  if (query.where != nullptr) CollectExprTables(*query.where, out);
  for (const SqlExprPtr& g : query.group_by) CollectExprTables(*g, out);
  if (query.having != nullptr) CollectExprTables(*query.having, out);
  for (const OrderItem& item : query.order_by) CollectExprTables(*item.expr, out);
}

Result<std::shared_ptr<SqlQuery>> BindParameters(const SqlQuery& query,
                                                 const std::vector<Value>& params) {
  size_t expected = CountParameters(query);
  if (params.size() != expected) {
    return Result<std::shared_ptr<SqlQuery>>::Error(
        "statement takes " + std::to_string(expected) + " parameter(s), got " +
        std::to_string(params.size()));
  }
  return BindQueryParams(query, params);
}

}  // namespace sql
}  // namespace quotient
