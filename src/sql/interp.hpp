#pragma once

#include <stdexcept>
#include <string>

#include "plan/catalog.hpp"
#include "sql/ast.hpp"
#include "util/status.hpp"

namespace quotient {
namespace sql {

/// Raised for semantic errors (unknown columns, ambiguous names, invalid
/// DIVIDE BY conditions per the §4 restriction, ...).
class SqlError : public std::runtime_error {
 public:
  explicit SqlError(const std::string& message) : std::runtime_error(message) {}
};

/// Evaluates a parsed query against the catalog with full generality:
/// correlated (NOT) EXISTS and IN subqueries are evaluated tuple-at-a-time
/// (the tuple-calculus reading of Q3), DIVIDE BY becomes a great divide
/// (small divide when the ON clause covers every divisor attribute, §4),
/// GROUP BY/HAVING/aggregates are supported.
///
/// Output columns are named by the select-item aliases; '*' keeps source
/// columns (unqualified when unambiguous).
Relation ExecuteQuery(const SqlQuery& query, const Catalog& catalog);

/// Parse + execute; returns parse/semantic errors as Result.
Result<Relation> ExecuteSql(const std::string& text, const Catalog& catalog);

}  // namespace sql
}  // namespace quotient
