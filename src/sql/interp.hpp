#pragma once

#include <stdexcept>
#include <string>

#include "plan/catalog.hpp"
#include "sql/ast.hpp"
#include "util/status.hpp"

namespace quotient {
namespace sql {

/// Raised for semantic errors (unknown columns, ambiguous names, invalid
/// DIVIDE BY conditions per the §4 restriction, ...).
class SqlError : public std::runtime_error {
 public:
  explicit SqlError(const std::string& message) : std::runtime_error(message) {}
};

/// The reference tuple-at-a-time interpreter, kept as the differential
/// testing ORACLE for the compiled path (api/session.hpp): it evaluates a
/// parsed query with full generality — correlated (NOT) EXISTS and IN
/// subqueries tuple-at-a-time (the tuple-calculus reading of Q3), DIVIDE BY
/// as a great divide (small divide when the ON clause covers every divisor
/// attribute, §4), GROUP BY/HAVING/aggregates — but never touches the
/// rewrite engine or the batched/parallel executor. `quotient::Session`
/// compiles queries onto that fast path and falls back here only for
/// constructs the lowering (sql/lower.hpp) cannot express.
///
/// Output columns are named by the select-item aliases; '*' keeps source
/// columns (unqualified when unambiguous).
Relation ExecuteQueryOracle(const SqlQuery& query, const Catalog& catalog);

/// Parse + execute on the oracle interpreter; returns parse/semantic errors
/// as Result.
Result<Relation> ExecuteSql(const std::string& text, const Catalog& catalog);

}  // namespace sql
}  // namespace quotient
