#include "sql/parser.hpp"

#include "sql/lexer.hpp"

namespace quotient {
namespace sql {

namespace {

/// Recursive-descent parser over the token stream. Errors are thrown as
/// ParseError internally and converted to Result at the boundary.
struct ParseError {
  std::string message;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  std::shared_ptr<SqlQuery> ParseQueryToEnd() {
    auto query = ParseSelect();
    ParseOrderLimitTail(query.get());
    Expect(TokenKind::kEnd, "end of input");
    return query;
  }

  std::shared_ptr<SqlStatement> ParseStatementToEnd() {
    auto statement = std::make_shared<SqlStatement>();
    if (Peek().IsKeyword("BEGIN")) {
      Advance();
      AcceptTransactionNoise();
      statement->kind = SqlStatement::Kind::kBegin;
    } else if (Peek().IsKeyword("COMMIT")) {
      Advance();
      AcceptTransactionNoise();
      statement->kind = SqlStatement::Kind::kCommit;
    } else if (Peek().IsKeyword("ROLLBACK")) {
      Advance();
      AcceptTransactionNoise();
      statement->kind = SqlStatement::Kind::kRollback;
    } else if (Peek().IsKeyword("INSERT")) {
      statement->kind = SqlStatement::Kind::kInsert;
      statement->insert = ParseInsert();
    } else if (Peek().IsKeyword("DELETE")) {
      statement->kind = SqlStatement::Kind::kDelete;
      statement->del = ParseDelete();
    } else {
      statement->kind = SqlStatement::Kind::kSelect;
      statement->select = ParseSelect();
      ParseOrderLimitTail(statement->select.get());
    }
    Expect(TokenKind::kEnd, "end of input");
    return statement;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = position_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[position_++]; }
  bool AcceptKeyword(const char* word) {
    if (Peek().IsKeyword(word)) {
      ++position_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* symbol) {
    if (Peek().IsSymbol(symbol)) {
      ++position_;
      return true;
    }
    return false;
  }
  void ExpectKeyword(const char* word) {
    if (!AcceptKeyword(word)) Fail(std::string("expected ") + word);
  }
  void ExpectSymbol(const char* symbol) {
    if (!AcceptSymbol(symbol)) Fail(std::string("expected '") + symbol + "'");
  }
  void Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) Fail(std::string("expected ") + what);
    ++position_;
  }
  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError{message + " at position " + std::to_string(Peek().position) + " (near '" +
                     Peek().text + "')"};
  }

  std::string ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) Fail("expected identifier");
    return Advance().text;
  }

  std::shared_ptr<SqlQuery> ParseSelect() {
    ExpectKeyword("SELECT");
    auto query = std::make_shared<SqlQuery>();
    query->distinct = AcceptKeyword("DISTINCT");
    // Select list.
    if (AcceptSymbol("*")) {
      SelectItem item;
      item.star = true;
      query->items.push_back(std::move(item));
    } else {
      do {
        SelectItem item;
        item.expr = ParseExpr();
        if (AcceptKeyword("AS")) {
          item.alias = ExpectIdent();
        } else if (item.expr->kind == SqlExpr::Kind::kColumn) {
          item.alias = item.expr->name;
        }
        query->items.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    ExpectKeyword("FROM");
    do {
      query->from.push_back(ParseTableRef());
    } while (AcceptSymbol(","));
    if (AcceptKeyword("WHERE")) query->where = ParseCondition();
    if (AcceptKeyword("GROUP")) {
      ExpectKeyword("BY");
      do {
        query->group_by.push_back(ParseExpr());
      } while (AcceptSymbol(","));
      if (AcceptKeyword("HAVING")) query->having = ParseCondition();
    }
    return query;
  }

  /// The optional TRANSACTION/WORK noise word after BEGIN/COMMIT/ROLLBACK.
  void AcceptTransactionNoise() {
    if (!AcceptKeyword("TRANSACTION")) AcceptKeyword("WORK");
  }

  /// INSERT INTO table VALUES (literal, ...) [, (literal, ...)]*
  /// Values must be literals (optionally sign-prefixed numbers): DML does
  /// not flow through the plan cache, so '?' slots are not supported.
  SqlInsert ParseInsert() {
    ExpectKeyword("INSERT");
    ExpectKeyword("INTO");
    SqlInsert insert;
    insert.table = ExpectIdent();
    ExpectKeyword("VALUES");
    do {
      ExpectSymbol("(");
      std::vector<Value> row;
      do {
        row.push_back(ParseLiteralValue());
      } while (AcceptSymbol(","));
      ExpectSymbol(")");
      insert.rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    return insert;
  }

  /// DELETE FROM table [WHERE condition]
  SqlDelete ParseDelete() {
    ExpectKeyword("DELETE");
    ExpectKeyword("FROM");
    SqlDelete del;
    del.table = ExpectIdent();
    if (AcceptKeyword("WHERE")) del.where = ParseCondition();
    return del;
  }

  Value ParseLiteralValue() {
    bool negative = AcceptSymbol("-");
    const Token& token = Peek();
    if (token.kind == TokenKind::kNumber) {
      Advance();
      if (token.text.find('.') == std::string::npos) {
        int64_t v = std::stoll(token.text);
        return Value::Int(negative ? -v : v);
      }
      double v = std::stod(token.text);
      return Value::Real(negative ? -v : v);
    }
    if (token.kind == TokenKind::kString && !negative) {
      Advance();
      return Value::Str(token.text);
    }
    Fail("expected literal value");
  }

  /// [ORDER BY expr [ASC|DESC] (',' ...)*] [LIMIT n] — top statement level
  /// only; subqueries reject both (their callers expect ')' next).
  void ParseOrderLimitTail(SqlQuery* query) {
    if (AcceptKeyword("ORDER")) {
      ExpectKeyword("BY");
      do {
        OrderItem item;
        item.expr = ParseExpr();
        if (!AcceptKeyword("ASC")) item.descending = AcceptKeyword("DESC");
        query->order_by.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      const Token& token = Peek();
      if (token.kind != TokenKind::kNumber || token.text.find('.') != std::string::npos) {
        Fail("expected row count after LIMIT");
      }
      Advance();
      query->limit = std::stoll(token.text);
    }
  }

  TableRef ParseTableFactor() {
    TableRef ref;
    if (AcceptSymbol("(")) {
      ref.subquery = ParseSelect();
      ExpectSymbol(")");
      AcceptKeyword("AS");
      ref.alias = ExpectIdent();
    } else {
      ref.table = ExpectIdent();
      ref.alias = ref.table;
      if (AcceptKeyword("AS")) {
        ref.alias = ExpectIdent();
      } else if (Peek().kind == TokenKind::kIdent) {
        ref.alias = Advance().text;  // bare alias
      }
    }
    return ref;
  }

  TableRef ParseTableRef() {
    TableRef ref = ParseTableFactor();
    if (AcceptKeyword("DIVIDE")) {
      ExpectKeyword("BY");
      ref.divisor = std::make_shared<TableRef>(ParseTableFactor());
      ExpectKeyword("ON");
      ref.on_condition = ParseCondition();
    }
    return ref;
  }

  // condition := or_term; or_term := and_term (OR and_term)*
  SqlExprPtr ParseCondition() {
    SqlExprPtr left = ParseAnd();
    while (AcceptKeyword("OR")) {
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExpr::Kind::kOr;
      node->left = left;
      node->right = ParseAnd();
      left = node;
    }
    return left;
  }

  SqlExprPtr ParseAnd() {
    SqlExprPtr left = ParseCondUnary();
    while (AcceptKeyword("AND")) {
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExpr::Kind::kAnd;
      node->left = left;
      node->right = ParseCondUnary();
      left = node;
    }
    return left;
  }

  SqlExprPtr ParseCondUnary() {
    if (AcceptKeyword("NOT")) {
      // NOT EXISTS is folded into the EXISTS node.
      if (Peek().IsKeyword("EXISTS")) {
        SqlExprPtr exists = ParseCondUnary();
        exists->negated = true;
        return exists;
      }
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExpr::Kind::kNot;
      node->left = ParseCondUnary();
      return node;
    }
    if (AcceptKeyword("EXISTS")) {
      ExpectSymbol("(");
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExpr::Kind::kExists;
      node->subquery = ParseSelect();
      ExpectSymbol(")");
      return node;
    }
    if (Peek().IsSymbol("(")) {
      // Parenthesized condition.
      ExpectSymbol("(");
      SqlExprPtr inner = ParseCondition();
      ExpectSymbol(")");
      return inner;
    }
    // expr [cmp expr | (NOT) IN (subquery)]
    SqlExprPtr left = ParseExpr();
    for (const char* op : {"=", "<>", "<=", ">=", "<", ">"}) {
      if (AcceptSymbol(op)) {
        auto node = std::make_shared<SqlExpr>();
        node->kind = SqlExpr::Kind::kCompare;
        node->op = op;
        node->left = left;
        node->right = ParseExpr();
        return node;
      }
    }
    bool negated_in = false;
    if (Peek().IsKeyword("NOT") && Peek(1).IsKeyword("IN")) {
      Advance();
      negated_in = true;
    }
    if (AcceptKeyword("IN")) {
      ExpectSymbol("(");
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExpr::Kind::kInSubquery;
      node->left = left;
      node->negated = negated_in;
      node->subquery = ParseSelect();
      ExpectSymbol(")");
      return node;
    }
    return left;  // bare boolean expression
  }

  SqlExprPtr ParseExpr() {  // additive
    SqlExprPtr left = ParseTerm();
    while (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
      std::string op = Advance().text;
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExpr::Kind::kArith;
      node->op = op;
      node->left = left;
      node->right = ParseTerm();
      left = node;
    }
    return left;
  }

  SqlExprPtr ParseTerm() {
    SqlExprPtr left = ParsePrimary();
    while (Peek().IsSymbol("*") || Peek().IsSymbol("/")) {
      std::string op = Advance().text;
      auto node = std::make_shared<SqlExpr>();
      node->kind = SqlExpr::Kind::kArith;
      node->op = op;
      node->left = left;
      node->right = ParsePrimary();
      left = node;
    }
    return left;
  }

  SqlExprPtr ParsePrimary() {
    auto node = std::make_shared<SqlExpr>();
    const Token& token = Peek();
    // Aggregate functions.
    for (const char* fn : {"COUNT", "SUM", "MIN", "MAX", "AVG"}) {
      if (token.IsKeyword(fn)) {
        Advance();
        ExpectSymbol("(");
        node->kind = SqlExpr::Kind::kAggregate;
        node->name = fn;
        if (AcceptSymbol("*")) {
          node->count_star = true;
        } else {
          node->left = ParseExpr();
        }
        ExpectSymbol(")");
        return node;
      }
    }
    if (token.IsSymbol("?")) {
      Advance();
      node->kind = SqlExpr::Kind::kParam;
      node->param_index = next_param_++;
      return node;
    }
    if (token.kind == TokenKind::kNumber) {
      Advance();
      node->kind = SqlExpr::Kind::kLiteral;
      node->literal = token.text.find('.') == std::string::npos
                          ? Value::Int(std::stoll(token.text))
                          : Value::Real(std::stod(token.text));
      return node;
    }
    if (token.kind == TokenKind::kString) {
      Advance();
      node->kind = SqlExpr::Kind::kLiteral;
      node->literal = Value::Str(token.text);
      return node;
    }
    if (token.kind == TokenKind::kIdent) {
      Advance();
      node->kind = SqlExpr::Kind::kColumn;
      node->name = token.text;
      if (AcceptSymbol(".")) {
        node->qualifier = node->name;
        node->name = ExpectIdent();
      }
      return node;
    }
    if (AcceptSymbol("(")) {
      SqlExprPtr inner = ParseExpr();
      ExpectSymbol(")");
      return inner;
    }
    Fail("expected expression");
  }

  std::vector<Token> tokens_;
  size_t position_ = 0;
  size_t next_param_ = 0;  // '?' ordinals, assigned left to right
};

}  // namespace

Result<std::shared_ptr<SqlQuery>> ParseQuery(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return Result<std::shared_ptr<SqlQuery>>::Error(tokens.error());
  return ParseTokens(std::move(tokens).value());
}

Result<std::shared_ptr<SqlQuery>> ParseTokens(std::vector<Token> tokens) {
  try {
    Parser parser(std::move(tokens));
    return parser.ParseQueryToEnd();
  } catch (const ParseError& error) {
    return Result<std::shared_ptr<SqlQuery>>::Error(error.message);
  }
}

Result<std::shared_ptr<SqlStatement>> ParseStatement(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return Result<std::shared_ptr<SqlStatement>>::Error(tokens.error());
  return ParseStatementTokens(std::move(tokens).value());
}

Result<std::shared_ptr<SqlStatement>> ParseStatementTokens(std::vector<Token> tokens) {
  try {
    Parser parser(std::move(tokens));
    return parser.ParseStatementToEnd();
  } catch (const ParseError& error) {
    return Result<std::shared_ptr<SqlStatement>>::Error(error.message);
  }
}

}  // namespace sql
}  // namespace quotient
