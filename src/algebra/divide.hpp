#pragma once

#include <string>
#include <vector>

#include "algebra/ops.hpp"
#include "algebra/relation.hpp"

namespace quotient {

/// The attribute partition induced by a division (Section 2):
///   A — quotient attributes (dividend only)
///   B — "join" attributes (in both dividend and divisor)
///   C — divisor group attributes (divisor only; empty for small divide)
struct DivisionAttributes {
  std::vector<std::string> a;
  std::vector<std::string> b;
  std::vector<std::string> c;
};

/// Derives (A, B, C) from the dividend/divisor schemas and validates the
/// paper's schema requirements: B nonempty, A nonempty, matching types.
/// For the small divide, additionally requires C = ∅.
DivisionAttributes DivisionAttributeSets(const Schema& dividend, const Schema& divisor,
                                         bool allow_c);

/// Small divide r1 ÷ r2 per Definition 1 (Codd): quotient candidates whose
/// image set under r1 contains r2. This is the canonical implementation.
///
/// Edge case (all definitions agree): r1 ÷ ∅ = πA(r1), because universal
/// quantification over the empty divisor is vacuously true.
Relation DivideCodd(const Relation& r1, const Relation& r2);

/// Small divide per Definition 2 (Healy):
///   πA(r1) − πA((πA(r1) × r2) − r1)
Relation DivideHealy(const Relation& r1, const Relation& r2);

/// Small divide per Definition 3 (Maier): ∩_{t∈r2} πA(σB=t(r1)); the empty
/// intersection (r2 = ∅) is πA(r1).
Relation DivideMaier(const Relation& r1, const Relation& r2);

/// Small divide via the counting approach of Graefe/Cole [16] (footnote 1):
///   πA( γ[A]count(B)→c(r1 ⋉ r2) ⋈ γcount(B)→c(r2) )
Relation DivideCounting(const Relation& r1, const Relation& r2);

/// The canonical small divide (Codd's definition).
inline Relation Divide(const Relation& r1, const Relation& r2) { return DivideCodd(r1, r2); }

/// Great divide per Definition 4 (set containment division, ÷*1):
///   ∪_{t∈πC(r2)} (r1 ÷ πB(σC=t(r2))) × (t)
/// Degenerates to the small divide when C = ∅ (Darwen/Date, §2.2).
Relation GreatDivideSCD(const Relation& r1, const Relation& r2);

/// Great divide per Definition 5 (Demolombe's generalized division, ÷*2):
///   (πA(r1) × πC(r2)) − πA∪C((πA(r1) × r2) − (r1 × πC(r2)))
Relation GreatDivideDemolombe(const Relation& r1, const Relation& r2);

/// Great divide per Definition 6 (Todd's great divide, ÷*3):
///   (πA(r1) × πC(r2)) − πA∪C((πA(r1) × r2) − (r1 ⋈ r2))
Relation GreatDivideTodd(const Relation& r1, const Relation& r2);

/// The canonical great divide (set containment division).
inline Relation GreatDivide(const Relation& r1, const Relation& r2) {
  return GreatDivideSCD(r1, r2);
}

/// Set containment join r1 ⋈_{b1⊇b2} r2 (Section 2.2, Figure 3): r1 and r2
/// have set-valued attributes `b1` / `b2`; emits t1 ◦ t2 whenever t1.b1 is a
/// superset of t2.b2. Attribute names of r1 and r2 must be disjoint.
Relation SetContainmentJoin(const Relation& r1, const std::string& b1, const Relation& r2,
                            const std::string& b2);

/// Nests attribute `attr` into a set-valued attribute `out_name`, grouping
/// by all other attributes: the 1NF → NF² conversion between Figures 2/3.
Relation Nest(const Relation& r, const std::string& attr, const std::string& out_name);

/// Unnests the set-valued attribute `attr` into one row per element, named
/// `out_name`; the NF² → 1NF conversion. Tuples with empty sets vanish.
Relation Unnest(const Relation& r, const std::string& attr, const std::string& out_name);

}  // namespace quotient
