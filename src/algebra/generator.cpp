#include "algebra/generator.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/status.hpp"

namespace quotient {

int64_t DataGen::UniformInt(int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(rng_);
}

bool DataGen::Chance(double p) { return std::uniform_real_distribution<double>(0, 1)(rng_) < p; }

Relation DataGen::RandomRelation(const Schema& schema, size_t max_tuples, int64_t domain) {
  std::vector<Tuple> tuples;
  size_t n = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(max_tuples)));
  tuples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t;
    t.reserve(schema.size());
    for (size_t j = 0; j < schema.size(); ++j) t.push_back(Value::Int(UniformInt(0, domain - 1)));
    tuples.push_back(std::move(t));
  }
  return Relation(schema, std::move(tuples));
}

Relation DataGen::Dividend(size_t groups, int64_t domain, double density) {
  return DividendWide(groups, 1, 1, domain, density);
}

Relation DataGen::DividendWide(size_t groups, size_t num_a, size_t num_b, int64_t domain,
                               double density) {
  std::vector<Attribute> attributes;
  for (size_t i = 0; i < num_a; ++i) attributes.push_back({"a" + std::to_string(i + 1)});
  for (size_t i = 0; i < num_b; ++i) attributes.push_back({"b" + std::to_string(i + 1)});
  if (num_a == 1) attributes[0].name = "a";
  if (num_b == 1) attributes[num_a].name = "b";

  std::vector<Tuple> tuples;
  for (size_t g = 0; g < groups; ++g) {
    Tuple a_part;
    a_part.push_back(Value::Int(static_cast<int64_t>(g)));
    for (size_t i = 1; i < num_a; ++i) a_part.push_back(Value::Int(UniformInt(0, domain - 1)));
    for (int64_t v = 0; v < domain; ++v) {
      if (!Chance(density)) continue;
      Tuple t = a_part;
      t.push_back(Value::Int(v));
      for (size_t i = 1; i < num_b; ++i) t.push_back(Value::Int(UniformInt(0, domain - 1)));
      tuples.push_back(std::move(t));
    }
  }
  return Relation(Schema(std::move(attributes)), std::move(tuples));
}

Relation DataGen::Divisor(size_t size, int64_t domain) {
  std::unordered_set<int64_t> chosen;
  while (chosen.size() < size && chosen.size() < static_cast<size_t>(domain)) {
    chosen.insert(UniformInt(0, domain - 1));
  }
  std::vector<Tuple> tuples;
  for (int64_t v : chosen) tuples.push_back({Value::Int(v)});
  return Relation(Schema::Parse("b"), std::move(tuples));
}

Relation DataGen::GreatDivisor(size_t groups, int64_t domain, double density) {
  std::vector<Tuple> tuples;
  for (size_t g = 0; g < groups; ++g) {
    bool any = false;
    for (int64_t v = 0; v < domain; ++v) {
      if (Chance(density)) {
        tuples.push_back({Value::Int(v), Value::Int(static_cast<int64_t>(g))});
        any = true;
      }
    }
    if (!any) {
      // Keep every C-group nonempty so group counts are exact in benches.
      tuples.push_back({Value::Int(UniformInt(0, domain - 1)), Value::Int(static_cast<int64_t>(g))});
    }
  }
  return Relation(Schema::Parse("b, c"), std::move(tuples));
}

Relation DataGen::DividendWithHits(size_t groups, size_t hit_groups, const Relation& divisor,
                                   int64_t domain, double density) {
  if (divisor.schema().size() != 1) {
    throw SchemaError("DividendWithHits expects a single-attribute divisor");
  }
  std::vector<Tuple> tuples;
  for (size_t g = 0; g < groups; ++g) {
    Value a = Value::Int(static_cast<int64_t>(g));
    if (g < hit_groups) {
      for (const Tuple& d : divisor.tuples()) tuples.push_back({a, d[0]});
    }
    for (int64_t v = 0; v < domain; ++v) {
      if (Chance(density)) tuples.push_back({a, Value::Int(v)});
    }
  }
  return Relation(Schema::Parse("a, b"), std::move(tuples));
}

Relation DataGen::Transactions(size_t transactions, int64_t items, size_t min_size,
                               size_t max_size) {
  std::vector<Tuple> tuples;
  // Zipf-ish skew: item popularity weight ~ 1/(rank+1).
  std::vector<double> weights(static_cast<size_t>(items));
  for (size_t i = 0; i < weights.size(); ++i) weights[i] = 1.0 / static_cast<double>(i + 1);
  std::discrete_distribution<int64_t> pick(weights.begin(), weights.end());
  for (size_t tid = 0; tid < transactions; ++tid) {
    size_t size = static_cast<size_t>(UniformInt(static_cast<int64_t>(min_size),
                                                 static_cast<int64_t>(max_size)));
    std::unordered_set<int64_t> basket;
    while (basket.size() < size) basket.insert(pick(rng_));
    for (int64_t item : basket) {
      tuples.push_back({Value::Int(static_cast<int64_t>(tid)), Value::Int(item)});
    }
  }
  return Relation(Schema::Parse("tid, item"), std::move(tuples));
}

Relation StringifyAttribute(const Relation& r, const std::string& attr,
                            const std::string& prefix) {
  size_t idx = r.schema().IndexOfOrThrow(attr);
  if (r.schema().attribute(idx).type != ValueType::kInt) {
    throw SchemaError("StringifyAttribute requires an int attribute, got '" + attr + "'");
  }
  std::vector<Attribute> attributes = r.schema().attributes();
  attributes[idx].type = ValueType::kString;
  std::vector<Tuple> tuples;
  tuples.reserve(r.size());
  for (const Tuple& t : r.tuples()) {
    Tuple row = t;
    row[idx] = Value::Str(prefix + std::to_string(t[idx].as_int()));
    tuples.push_back(std::move(row));
  }
  return Relation(Schema(std::move(attributes)), std::move(tuples));
}

std::vector<Relation> SplitHorizontal(const Relation& r, size_t parts) {
  std::vector<std::vector<Tuple>> buckets(parts);
  size_t i = 0;
  for (const Tuple& t : r.tuples()) buckets[i++ % parts].push_back(t);
  std::vector<Relation> out;
  out.reserve(parts);
  for (auto& bucket : buckets) out.emplace_back(r.schema(), std::move(bucket));
  return out;
}

std::vector<Relation> SplitByAttributeRange(const Relation& r, const std::string& attr,
                                            size_t parts) {
  size_t idx = r.schema().IndexOfOrThrow(attr);
  std::vector<Value> keys;
  keys.reserve(r.size());
  for (const Tuple& t : r.tuples()) keys.push_back(t[idx]);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<std::vector<Tuple>> buckets(parts);
  if (!keys.empty()) {
    for (const Tuple& t : r.tuples()) {
      size_t rank = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), t[idx]) - keys.begin());
      size_t bucket = rank * parts / keys.size();
      if (bucket >= parts) bucket = parts - 1;
      buckets[bucket].push_back(t);
    }
  }
  std::vector<Relation> out;
  out.reserve(parts);
  for (auto& bucket : buckets) out.emplace_back(r.schema(), std::move(bucket));
  return out;
}

}  // namespace quotient
