#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "algebra/schema.hpp"
#include "algebra/tuple.hpp"

namespace quotient {

/// Comparison operators for predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);
/// The negated comparison (kLt -> kGe etc.), used to build σ¬p (Example 1).
CmpOp NegateCmp(CmpOp op);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Scalar expression AST used by selections, theta joins, and the SQL front
/// end. Expressions are immutable and shared.
///
/// Boolean results are represented as Int(0)/Int(1). Numeric comparisons
/// across int/real compare numerically; comparing a string to a number
/// throws SchemaError.
///
/// kParam is a prepared-statement placeholder ('?', 0-based ordinal): it
/// lets a parameterized statement lower, rewrite, and cost ONCE, with the
/// values substituted per execution via BindParams. Evaluating an unbound
/// parameter throws.
class Expr {
 public:
  enum class Kind {
    kColumn, kLiteral, kParam, kCompare, kAnd, kOr, kNot, kAdd, kSub, kMul, kDiv
  };

  static ExprPtr Column(std::string name);
  static ExprPtr Literal(Value value);
  static ExprPtr Param(size_t index);
  static ExprPtr Compare(CmpOp op, ExprPtr left, ExprPtr right);
  static ExprPtr And(ExprPtr left, ExprPtr right);
  static ExprPtr Or(ExprPtr left, ExprPtr right);
  static ExprPtr Not(ExprPtr child);
  static ExprPtr Arith(Kind kind, ExprPtr left, ExprPtr right);

  /// Convenience: column `name` <op> literal `value`.
  static ExprPtr ColCmp(std::string name, CmpOp op, Value value);
  /// Convenience: column = column (equi-join conditions).
  static ExprPtr ColEqCol(std::string left, std::string right);
  /// Conjunction of a list (empty list means TRUE, represented as Literal(1)).
  static ExprPtr AndAll(std::vector<ExprPtr> conjuncts);

  Kind kind() const { return kind_; }
  const std::string& column_name() const { return name_; }
  const Value& literal() const { return value_; }
  size_t param_index() const { return param_index_; }
  CmpOp cmp_op() const { return cmp_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  /// Substitutes every kParam by the matching literal from `params`,
  /// sharing unchanged subtrees. Throws SchemaError when a placeholder's
  /// ordinal is out of range.
  static ExprPtr BindParams(const ExprPtr& expr, const std::vector<Value>& params);

  /// Evaluates against a tuple; column names are resolved via `schema`.
  Value Eval(const Schema& schema, const Tuple& tuple) const;
  bool EvalBool(const Schema& schema, const Tuple& tuple) const;

  /// The set of column names referenced by this expression.
  std::set<std::string> Columns() const;
  /// True iff every referenced column is one of `names`. This is the
  /// "predicate p(X) involves only attributes in X" side condition used by
  /// Laws 3, 4, 14, 15, 16.
  bool RefersOnlyTo(const std::vector<std::string>& names) const;

  /// Structural equality.
  bool Equals(const Expr& other) const;

  /// Splits a conjunction tree into its conjuncts ("a AND b AND c" -> 3).
  static void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

  std::string ToString() const;

 private:
  Expr() = default;
  void CollectColumns(std::set<std::string>* out) const;

  Kind kind_ = Kind::kLiteral;
  std::string name_;        // kColumn
  Value value_;             // kLiteral
  size_t param_index_ = 0;  // kParam
  CmpOp cmp_ = CmpOp::kEq;  // kCompare
  ExprPtr left_;
  ExprPtr right_;
};

/// An expression with column references resolved to tuple positions against
/// a fixed schema: the fast path used inside physical operators.
class BoundExpr {
 public:
  BoundExpr(const ExprPtr& expr, const Schema& schema);

  Value Eval(const Tuple& tuple) const { return EvalNode(0, tuple); }
  bool EvalBool(const Tuple& tuple) const;

 private:
  struct Node {
    Expr::Kind kind;
    size_t column = 0;
    Value value;
    CmpOp cmp = CmpOp::kEq;
    int left = -1;
    int right = -1;
  };
  int Build(const Expr& expr, const Schema& schema);
  Value EvalNode(int index, const Tuple& tuple) const;

  std::vector<Node> nodes_;
};

}  // namespace quotient
