#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "algebra/relation.hpp"

namespace quotient {

/// Deterministic synthetic-data generators shared by the property tests and
/// the benchmark workloads. All generators take an explicit RNG so sweeps
/// are reproducible.
class DataGen {
 public:
  explicit DataGen(uint64_t seed) : rng_(seed) {}

  std::mt19937_64& rng() { return rng_; }

  /// Uniform integer in [lo, hi].
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Bernoulli with probability p.
  bool Chance(double p);

  /// A random relation over `schema` (int attributes only) with up to
  /// `max_tuples` tuples whose values are drawn from [0, domain).
  Relation RandomRelation(const Schema& schema, size_t max_tuples, int64_t domain);

  /// A dividend r1(a, b): `groups` quotient candidates; group i contains a
  /// random subset of [0, domain) of expected size `density * domain`.
  Relation Dividend(size_t groups, int64_t domain, double density);

  /// A dividend with several quotient attributes / several divisor
  /// attributes: schema (a1..a_na, b1..b_nb), `groups` A-combinations.
  Relation DividendWide(size_t groups, size_t num_a, size_t num_b, int64_t domain,
                        double density);

  /// A divisor r2(b): a random subset of [0, domain) of size `size`.
  Relation Divisor(size_t size, int64_t domain);

  /// A great-divide divisor r2(b, c): `groups` C-groups, each a random
  /// B-subset of [0, domain) of expected size `density * domain`.
  Relation GreatDivisor(size_t groups, int64_t domain, double density);

  /// A dividend guaranteed to contain some quotients for `divisor`: for
  /// `hit_groups` of the `groups` candidates the full divisor image is
  /// inserted, the rest get random subsets.
  Relation DividendWithHits(size_t groups, size_t hit_groups, const Relation& divisor,
                            int64_t domain, double density);

  /// Market-basket style transactions table (tid, item): `transactions`
  /// baskets over `items` distinct items; basket sizes are uniform in
  /// [min_size, max_size]; item popularity is skewed (Zipf-ish) so some
  /// itemsets are frequent — the §3 workload.
  Relation Transactions(size_t transactions, int64_t items, size_t min_size, size_t max_size);

 private:
  std::mt19937_64 rng_;
};

/// The same relation with the integer attribute `attr` remapped to strings
/// "<prefix><value>". Lets every integer workload generator double as a
/// string-keyed workload (the key-codec benchmarks and the mixed-type
/// division property tests use this for string-valued B domains).
Relation StringifyAttribute(const Relation& r, const std::string& attr,
                            const std::string& prefix = "v");

/// Splits `r` into `parts` horizontal partitions round-robin (overlap-free;
/// projections of a key attribute may still overlap).
std::vector<Relation> SplitHorizontal(const Relation& r, size_t parts);

/// Splits a dividend r(a,...) into `parts` partitions by ranges of the
/// attribute `attr`, so that the πA projections are disjoint — this is
/// exactly condition c2 of Law 2.
std::vector<Relation> SplitByAttributeRange(const Relation& r, const std::string& attr,
                                            size_t parts);

}  // namespace quotient
