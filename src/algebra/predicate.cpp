#include "algebra/predicate.hpp"

#include "util/status.hpp"

namespace quotient {

namespace {

bool IsNumeric(const Value& v) {
  return v.type() == ValueType::kInt || v.type() == ValueType::kReal;
}

/// Three-way comparison with numeric coercion; throws on incomparable types.
int ComparePredicateValues(const Value& a, const Value& b) {
  if (IsNumeric(a) && IsNumeric(b)) {
    double x = a.Numeric();
    double y = b.Numeric();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.type() != b.type()) {
    throw SchemaError("cannot compare " + a.ToString() + " (" + ValueTypeName(a.type()) +
                      ") with " + b.ToString() + " (" + ValueTypeName(b.type()) + ")");
  }
  return a.Compare(b);
}

bool ApplyCmp(CmpOp op, int c) {
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

Value ApplyArith(Expr::Kind kind, const Value& a, const Value& b) {
  if (!IsNumeric(a) || !IsNumeric(b)) {
    throw SchemaError("arithmetic on non-numeric values");
  }
  bool both_int = a.type() == ValueType::kInt && b.type() == ValueType::kInt;
  if (both_int && kind != Expr::Kind::kDiv) {
    int64_t x = a.as_int(), y = b.as_int();
    switch (kind) {
      case Expr::Kind::kAdd: return Value::Int(x + y);
      case Expr::Kind::kSub: return Value::Int(x - y);
      case Expr::Kind::kMul: return Value::Int(x * y);
      default: break;
    }
  }
  double x = a.Numeric(), y = b.Numeric();
  switch (kind) {
    case Expr::Kind::kAdd: return Value::Real(x + y);
    case Expr::Kind::kSub: return Value::Real(x - y);
    case Expr::Kind::kMul: return Value::Real(x * y);
    case Expr::Kind::kDiv:
      if (y == 0) throw SchemaError("division by zero in predicate");
      return Value::Real(x / y);
    default: break;
  }
  throw SchemaError("bad arithmetic kind");
}

bool ToBool(const Value& v) {
  if (v.type() == ValueType::kInt) return v.as_int() != 0;
  throw SchemaError("expression used as boolean does not evaluate to int 0/1");
}

}  // namespace

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "<>";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

CmpOp NegateCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return CmpOp::kNe;
    case CmpOp::kNe: return CmpOp::kEq;
    case CmpOp::kLt: return CmpOp::kGe;
    case CmpOp::kLe: return CmpOp::kGt;
    case CmpOp::kGt: return CmpOp::kLe;
    case CmpOp::kGe: return CmpOp::kLt;
  }
  return CmpOp::kEq;
}

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kColumn;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Value value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kLiteral;
  e->value_ = std::move(value);
  return e;
}

ExprPtr Expr::Param(size_t index) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kParam;
  e->param_index_ = index;
  return e;
}

ExprPtr Expr::Compare(CmpOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kCompare;
  e->cmp_ = op;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::And(ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kAnd;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Or(ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kOr;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::Not(ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kNot;
  e->left_ = std::move(child);
  return e;
}

ExprPtr Expr::Arith(Kind kind, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = kind;
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

ExprPtr Expr::ColCmp(std::string name, CmpOp op, Value value) {
  return Compare(op, Column(std::move(name)), Literal(std::move(value)));
}

ExprPtr Expr::ColEqCol(std::string left, std::string right) {
  return Compare(CmpOp::kEq, Column(std::move(left)), Column(std::move(right)));
}

ExprPtr Expr::AndAll(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return Literal(Value::Int(1));
  ExprPtr out = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) out = And(out, conjuncts[i]);
  return out;
}

Value Expr::Eval(const Schema& schema, const Tuple& tuple) const {
  switch (kind_) {
    case Kind::kColumn: return tuple[schema.IndexOfOrThrow(name_)];
    case Kind::kLiteral: return value_;
    case Kind::kParam:
      throw SchemaError("unbound query parameter ?" + std::to_string(param_index_ + 1) +
                        " (bind values before evaluating)");
    case Kind::kCompare: {
      int c = ComparePredicateValues(left_->Eval(schema, tuple), right_->Eval(schema, tuple));
      return Value::Int(ApplyCmp(cmp_, c) ? 1 : 0);
    }
    case Kind::kAnd:
      return Value::Int(ToBool(left_->Eval(schema, tuple)) && ToBool(right_->Eval(schema, tuple))
                            ? 1
                            : 0);
    case Kind::kOr:
      return Value::Int(ToBool(left_->Eval(schema, tuple)) || ToBool(right_->Eval(schema, tuple))
                            ? 1
                            : 0);
    case Kind::kNot: return Value::Int(ToBool(left_->Eval(schema, tuple)) ? 0 : 1);
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
    case Kind::kDiv:
      return ApplyArith(kind_, left_->Eval(schema, tuple), right_->Eval(schema, tuple));
  }
  throw SchemaError("bad expression kind");
}

bool Expr::EvalBool(const Schema& schema, const Tuple& tuple) const {
  return ToBool(Eval(schema, tuple));
}

void Expr::CollectColumns(std::set<std::string>* out) const {
  if (kind_ == Kind::kColumn) {
    out->insert(name_);
    return;
  }
  if (left_) left_->CollectColumns(out);
  if (right_) right_->CollectColumns(out);
}

std::set<std::string> Expr::Columns() const {
  std::set<std::string> out;
  CollectColumns(&out);
  return out;
}

bool Expr::RefersOnlyTo(const std::vector<std::string>& names) const {
  for (const std::string& column : Columns()) {
    bool found = false;
    for (const std::string& name : names) {
      if (name == column) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kColumn: return name_ == other.name_;
    case Kind::kLiteral: return value_ == other.value_;
    case Kind::kParam: return param_index_ == other.param_index_;
    case Kind::kCompare:
      if (cmp_ != other.cmp_) return false;
      break;
    default: break;
  }
  if ((left_ == nullptr) != (other.left_ == nullptr)) return false;
  if ((right_ == nullptr) != (other.right_ == nullptr)) return false;
  if (left_ && !left_->Equals(*other.left_)) return false;
  if (right_ && !right_->Equals(*other.right_)) return false;
  return true;
}

ExprPtr Expr::BindParams(const ExprPtr& expr, const std::vector<Value>& params) {
  if (expr->kind_ == Kind::kParam) {
    if (expr->param_index_ >= params.size()) {
      throw SchemaError("parameter ?" + std::to_string(expr->param_index_ + 1) +
                        " has no bound value");
    }
    return Literal(params[expr->param_index_]);
  }
  ExprPtr left = expr->left_ ? BindParams(expr->left_, params) : nullptr;
  ExprPtr right = expr->right_ ? BindParams(expr->right_, params) : nullptr;
  if (left == expr->left_ && right == expr->right_) return expr;  // unchanged subtree
  auto e = std::shared_ptr<Expr>(new Expr(*expr));
  e->left_ = std::move(left);
  e->right_ = std::move(right);
  return e;
}

void Expr::SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == Kind::kAnd) {
    SplitConjuncts(expr->left(), out);
    SplitConjuncts(expr->right(), out);
  } else {
    out->push_back(expr);
  }
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn: return name_;
    case Kind::kLiteral: return value_.ToString();
    case Kind::kParam: return "?" + std::to_string(param_index_ + 1);
    case Kind::kCompare:
      return "(" + left_->ToString() + " " + CmpOpName(cmp_) + " " + right_->ToString() + ")";
    case Kind::kAnd: return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
    case Kind::kOr: return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
    case Kind::kNot: return "(NOT " + left_->ToString() + ")";
    case Kind::kAdd: return "(" + left_->ToString() + " + " + right_->ToString() + ")";
    case Kind::kSub: return "(" + left_->ToString() + " - " + right_->ToString() + ")";
    case Kind::kMul: return "(" + left_->ToString() + " * " + right_->ToString() + ")";
    case Kind::kDiv: return "(" + left_->ToString() + " / " + right_->ToString() + ")";
  }
  return "?";
}

BoundExpr::BoundExpr(const ExprPtr& expr, const Schema& schema) { Build(*expr, schema); }

int BoundExpr::Build(const Expr& expr, const Schema& schema) {
  int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[index].kind = expr.kind();
  switch (expr.kind()) {
    case Expr::Kind::kColumn:
      nodes_[index].column = schema.IndexOfOrThrow(expr.column_name());
      break;
    case Expr::Kind::kLiteral: nodes_[index].value = expr.literal(); break;
    case Expr::Kind::kParam:
      // A plan carrying parameter slots must be bound (Expr::BindParams)
      // before physical compilation; fail at bind time, not per tuple.
      throw SchemaError("cannot execute a plan with unbound '?' parameters");
    case Expr::Kind::kCompare: nodes_[index].cmp = expr.cmp_op(); break;
    default: break;
  }
  if (expr.left()) {
    int left = Build(*expr.left(), schema);
    nodes_[index].left = left;
  }
  if (expr.right()) {
    int right = Build(*expr.right(), schema);
    nodes_[index].right = right;
  }
  return index;
}

Value BoundExpr::EvalNode(int index, const Tuple& tuple) const {
  const Node& node = nodes_[index];
  switch (node.kind) {
    case Expr::Kind::kColumn: return tuple[node.column];
    case Expr::Kind::kLiteral: return node.value;
    case Expr::Kind::kParam: break;  // unreachable: Build rejects params
    case Expr::Kind::kCompare: {
      int c = ComparePredicateValues(EvalNode(node.left, tuple), EvalNode(node.right, tuple));
      return Value::Int(ApplyCmp(node.cmp, c) ? 1 : 0);
    }
    case Expr::Kind::kAnd:
      return Value::Int(
          ToBool(EvalNode(node.left, tuple)) && ToBool(EvalNode(node.right, tuple)) ? 1 : 0);
    case Expr::Kind::kOr:
      return Value::Int(
          ToBool(EvalNode(node.left, tuple)) || ToBool(EvalNode(node.right, tuple)) ? 1 : 0);
    case Expr::Kind::kNot: return Value::Int(ToBool(EvalNode(node.left, tuple)) ? 0 : 1);
    case Expr::Kind::kAdd:
    case Expr::Kind::kSub:
    case Expr::Kind::kMul:
    case Expr::Kind::kDiv:
      return ApplyArith(node.kind, EvalNode(node.left, tuple), EvalNode(node.right, tuple));
  }
  throw SchemaError("bad bound expression node");
}

bool BoundExpr::EvalBool(const Tuple& tuple) const { return ToBool(Eval(tuple)); }

}  // namespace quotient
