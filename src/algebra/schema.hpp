#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/value.hpp"

namespace quotient {

/// A named, typed attribute.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kInt;

  bool operator==(const Attribute& other) const = default;
};

/// An ordered list of uniquely named attributes.
///
/// Attribute identity is by name (Section 2 of the paper reasons entirely in
/// attribute sets A, B, C); Schema provides the set operations the laws need.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Parses "a:int, b:real, s:string, m:set". A missing ":type" defaults to
  /// int, so "a,b" is a two-int-attribute schema. Throws SchemaError on
  /// duplicates or unknown type names.
  static Schema Parse(std::string_view spec);

  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, if present.
  std::optional<size_t> IndexOf(std::string_view name) const;
  /// Index of `name`; throws SchemaError if absent.
  size_t IndexOfOrThrow(std::string_view name) const;
  bool Contains(std::string_view name) const { return IndexOf(name).has_value(); }

  /// All attribute names, in schema order.
  std::vector<std::string> Names() const;

  /// This schema restricted to `names`, in the order given by `names`.
  /// Throws SchemaError if any name is absent.
  Schema Project(const std::vector<std::string>& names) const;

  /// Concatenation; throws SchemaError on duplicate names (use Rename first).
  Schema Concat(const Schema& other) const;

  /// Names present in both schemas, in this schema's order.
  std::vector<std::string> CommonNames(const Schema& other) const;
  /// Names of this schema absent from `other`, in this schema's order.
  std::vector<std::string> NamesMinus(const Schema& other) const;

  /// True iff both schemas have the same name→type mapping (order-free).
  /// This is the compatibility requirement for ∪, ∩, −.
  bool SameAttributeSet(const Schema& other) const;

  /// True iff all of `other`'s attributes appear here with matching types.
  bool ContainsAll(const Schema& other) const;

  /// Exact (ordered) equality.
  bool operator==(const Schema& other) const { return attributes_ == other.attributes_; }

  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace quotient
