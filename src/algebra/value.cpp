#include "algebra/value.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>

#include "util/status.hpp"

namespace quotient {

namespace {

/// Rank used to order values of different (non-numeric-comparable) types.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull: return 0;
    case ValueType::kInt: return 1;
    case ValueType::kReal: return 2;
    case ValueType::kString: return 3;
    case ValueType::kSet: return 4;
  }
  return 5;
}

int Sign(int64_t v) { return v < 0 ? -1 : (v > 0 ? 1 : 0); }

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kReal: return "real";
    case ValueType::kString: return "string";
    case ValueType::kSet: return "set";
  }
  return "?";
}

Value Value::SetOf(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()), elements.end());
  return Value(Rep(std::make_shared<const std::vector<Value>>(std::move(elements))));
}

ValueType Value::type() const {
  switch (rep_.index()) {
    case 0: return ValueType::kNull;
    case 1: return ValueType::kInt;
    case 2: return ValueType::kReal;
    case 3: return ValueType::kString;
    case 4: return ValueType::kSet;
  }
  return ValueType::kNull;
}

double Value::Numeric() const {
  switch (type()) {
    case ValueType::kInt: return static_cast<double>(as_int());
    case ValueType::kReal: return as_real();
    default:
      throw SchemaError(std::string("Numeric() on non-numeric value of type ") +
                        ValueTypeName(type()));
  }
}

int Value::Compare(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  bool a_num = a == ValueType::kInt || a == ValueType::kReal;
  bool b_num = b == ValueType::kInt || b == ValueType::kReal;
  if (a_num && b_num) {
    // Numeric comparison first so that mixed int/real columns still sort
    // sensibly; exact ties between Int(x) and Real(x) break by type tag so
    // the order stays total and consistent with strict equality.
    if (a == ValueType::kInt && b == ValueType::kInt) {
      int64_t x = as_int(), y = other.as_int();
      if (x != y) return x < y ? -1 : 1;
      return 0;
    }
    double x = Numeric(), y = other.Numeric();
    if (x < y) return -1;
    if (x > y) return 1;
    return TypeRank(a) - TypeRank(b);
  }
  if (a != b) return TypeRank(a) - TypeRank(b);
  switch (a) {
    case ValueType::kNull: return 0;
    case ValueType::kString: {
      int c = as_str().compare(other.as_str());
      return Sign(c);
    }
    case ValueType::kSet: {
      const auto& xs = as_set();
      const auto& ys = other.as_set();
      size_t n = std::min(xs.size(), ys.size());
      for (size_t i = 0; i < n; ++i) {
        int c = xs[i].Compare(ys[i]);
        if (c != 0) return c;
      }
      if (xs.size() != ys.size()) return xs.size() < ys.size() ? -1 : 1;
      return 0;
    }
    default: return 0;  // unreachable: numeric handled above
  }
}

size_t Value::Hash() const {
  auto mix = [](size_t seed, size_t v) {
    return seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2));
  };
  switch (type()) {
    case ValueType::kNull: return 0x6b5f;
    case ValueType::kInt: return mix(1, std::hash<int64_t>{}(as_int()));
    case ValueType::kReal: {
      // Hash reals by bit pattern; numeric==type equality means Int(2) and
      // Real(2.0) may hash differently, which is fine: they are not equal.
      double d = as_real();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      return mix(2, std::hash<uint64_t>{}(bits));
    }
    case ValueType::kString: return mix(3, std::hash<std::string>{}(as_str()));
    case ValueType::kSet: {
      size_t h = 4;
      for (const Value& v : as_set()) h = mix(h, v.Hash());
      return h;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kReal: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", as_real());
      return buf;
    }
    case ValueType::kString: return as_str();
    case ValueType::kSet: {
      std::string out = "{";
      const auto& elems = as_set();
      for (size_t i = 0; i < elems.size(); ++i) {
        if (i > 0) out += ", ";
        out += elems[i].ToString();
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

}  // namespace quotient
