#include "algebra/divide.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/status.hpp"

namespace quotient {

namespace {

std::vector<size_t> IndicesOf(const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) indices.push_back(schema.IndexOfOrThrow(name));
  return indices;
}

}  // namespace

DivisionAttributes DivisionAttributeSets(const Schema& dividend, const Schema& divisor,
                                         bool allow_c) {
  DivisionAttributes out;
  out.b = dividend.CommonNames(divisor);
  out.a = dividend.NamesMinus(divisor);
  out.c = divisor.NamesMinus(dividend);
  if (out.b.empty()) {
    throw SchemaError("division requires a nonempty set B of shared attributes; dividend " +
                      dividend.ToString() + ", divisor " + divisor.ToString());
  }
  if (out.a.empty()) {
    throw SchemaError("division requires nonempty quotient attributes A; dividend " +
                      dividend.ToString() + ", divisor " + divisor.ToString());
  }
  if (!allow_c && !out.c.empty()) {
    throw SchemaError("small divide requires divisor attributes ⊆ dividend attributes; " +
                      divisor.ToString() + " has extra attributes");
  }
  for (const std::string& name : out.b) {
    ValueType t1 = dividend.attribute(dividend.IndexOfOrThrow(name)).type;
    ValueType t2 = divisor.attribute(divisor.IndexOfOrThrow(name)).type;
    if (t1 != t2) {
      throw SchemaError("division attribute '" + name + "' has mismatched types " +
                        ValueTypeName(t1) + " vs " + ValueTypeName(t2));
    }
  }
  return out;
}

Relation DivideCodd(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  std::vector<size_t> a_idx = IndicesOf(r1.schema(), attrs.a);
  std::vector<size_t> b_idx = IndicesOf(r1.schema(), attrs.b);
  std::vector<size_t> divisor_idx = IndicesOf(r2.schema(), attrs.b);

  // Group the dividend by A, collecting each group's image set over B.
  std::unordered_map<Tuple, std::unordered_set<Tuple, TupleHash, TupleEq>, TupleHash, TupleEq>
      images;
  for (const Tuple& t : r1.tuples()) {
    images[ProjectTuple(t, a_idx)].insert(ProjectTuple(t, b_idx));
  }

  std::vector<Tuple> divisor;
  divisor.reserve(r2.size());
  for (const Tuple& t : r2.tuples()) divisor.push_back(ProjectTuple(t, divisor_idx));

  std::vector<Tuple> quotient;
  for (const auto& [a, image] : images) {
    bool contains_all = true;
    for (const Tuple& d : divisor) {
      if (!image.count(d)) {
        contains_all = false;
        break;
      }
    }
    if (contains_all) quotient.push_back(a);
  }
  return Relation(r1.schema().Project(attrs.a), std::move(quotient));
}

Relation DivideHealy(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  Relation pa = Project(r1, attrs.a);
  // πA(r1) − πA((πA(r1) × r2) − r1)
  return Difference(pa, Project(Difference(Product(pa, r2), r1), attrs.a));
}

Relation DivideMaier(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  Relation result = Project(r1, attrs.a);  // empty intersection = πA(r1)
  std::vector<size_t> divisor_idx = IndicesOf(r2.schema(), attrs.b);
  for (const Tuple& t : r2.tuples()) {
    // σB=t(r1) then πA.
    std::vector<ExprPtr> conjuncts;
    for (size_t i = 0; i < attrs.b.size(); ++i) {
      conjuncts.push_back(Expr::ColCmp(attrs.b[i], CmpOp::kEq, t[divisor_idx[i]]));
    }
    result = Intersect(result, Project(Select(r1, Expr::AndAll(conjuncts)), attrs.a));
  }
  return result;
}

Relation DivideCounting(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  // The literal counting formula of footnote 1 yields ∅ for an empty divisor;
  // we guard that case so all divide implementations agree with Codd's
  // semantics (r1 ÷ ∅ = πA(r1)).
  if (r2.empty()) return Project(r1, attrs.a);
  // Count distinct B per quotient candidate among tuples that match some
  // divisor tuple, and compare against |r2| (distinct over B). Relations are
  // sets, so plain counts are distinct counts.
  Relation matched = SemiJoin(r1, r2);
  Relation per_group = GroupBy(matched, attrs.a, {{AggFunc::kCount, attrs.b[0], "c$"}});
  Relation selected = Select(
      per_group, Expr::ColCmp("c$", CmpOp::kEq, Value::Int(static_cast<int64_t>(r2.size()))));
  return Project(selected, attrs.a);
}

Relation GreatDivideSCD(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/true);
  if (attrs.c.empty()) return DivideCodd(r1, r2);  // degenerates (Darwen/Date)

  std::vector<size_t> c_idx = IndicesOf(r2.schema(), attrs.c);
  Schema b_schema = r2.schema().Project(attrs.b);
  std::vector<size_t> b_idx = IndicesOf(r2.schema(), attrs.b);

  // Partition the divisor into groups by C.
  std::map<Tuple, std::vector<Tuple>, TupleLess> groups;
  for (const Tuple& t : r2.tuples()) {
    groups[ProjectTuple(t, c_idx)].push_back(ProjectTuple(t, b_idx));
  }

  Schema out_schema = r1.schema().Project(attrs.a).Concat(r2.schema().Project(attrs.c));
  std::vector<Tuple> tuples;
  for (const auto& [c_value, b_tuples] : groups) {
    Relation divisor_group(b_schema, b_tuples);
    Relation quotient = DivideCodd(r1, divisor_group);
    for (const Tuple& q : quotient.tuples()) tuples.push_back(ConcatTuples(q, c_value));
  }
  return Relation(std::move(out_schema), std::move(tuples));
}

Relation GreatDivideDemolombe(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/true);
  if (attrs.c.empty()) return DivideHealy(r1, r2);
  Relation pa = Project(r1, attrs.a);
  Relation pc = Project(r2, attrs.c);
  Relation candidates = Product(pa, pc);
  std::vector<std::string> ac = attrs.a;
  ac.insert(ac.end(), attrs.c.begin(), attrs.c.end());
  // (πA(r1) × r2) − (r1 × πC(r2)), both with attribute set A ∪ B ∪ C.
  Relation violations = Difference(Product(pa, r2), Product(r1, pc));
  return Difference(candidates, Project(violations, ac));
}

Relation GreatDivideTodd(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/true);
  if (attrs.c.empty()) return DivideHealy(r1, r2);
  Relation pa = Project(r1, attrs.a);
  Relation pc = Project(r2, attrs.c);
  Relation candidates = Product(pa, pc);
  std::vector<std::string> ac = attrs.a;
  ac.insert(ac.end(), attrs.c.begin(), attrs.c.end());
  // (πA(r1) × r2) − (r1 ⋈ r2), the join being the natural join on B.
  Relation violations = Difference(Product(pa, r2), NaturalJoin(r1, r2));
  return Difference(candidates, Project(violations, ac));
}

Relation SetContainmentJoin(const Relation& r1, const std::string& b1, const Relation& r2,
                            const std::string& b2) {
  size_t i1 = r1.schema().IndexOfOrThrow(b1);
  size_t i2 = r2.schema().IndexOfOrThrow(b2);
  if (r1.schema().attribute(i1).type != ValueType::kSet ||
      r2.schema().attribute(i2).type != ValueType::kSet) {
    throw SchemaError("set containment join requires set-valued attributes");
  }
  Schema schema = r1.schema().Concat(r2.schema());
  std::vector<Tuple> tuples;
  for (const Tuple& t1 : r1.tuples()) {
    const std::vector<Value>& s1 = t1[i1].as_set();
    for (const Tuple& t2 : r2.tuples()) {
      const std::vector<Value>& s2 = t2[i2].as_set();
      // s1 ⊇ s2; both are sorted and deduplicated by construction.
      if (std::includes(s1.begin(), s1.end(), s2.begin(), s2.end())) {
        tuples.push_back(ConcatTuples(t1, t2));
      }
    }
  }
  return Relation(std::move(schema), std::move(tuples));
}

Relation Nest(const Relation& r, const std::string& attr, const std::string& out_name) {
  size_t nest_idx = r.schema().IndexOfOrThrow(attr);
  std::vector<std::string> rest;
  std::vector<size_t> rest_idx;
  for (size_t i = 0; i < r.schema().size(); ++i) {
    if (i != nest_idx) {
      rest.push_back(r.schema().attribute(i).name);
      rest_idx.push_back(i);
    }
  }
  std::map<Tuple, std::vector<Value>, TupleLess> groups;
  for (const Tuple& t : r.tuples()) {
    groups[ProjectTuple(t, rest_idx)].push_back(t[nest_idx]);
  }
  std::vector<Attribute> attributes;
  for (size_t i : rest_idx) attributes.push_back(r.schema().attribute(i));
  attributes.push_back({out_name, ValueType::kSet});
  std::vector<Tuple> tuples;
  for (auto& [key, values] : groups) {
    Tuple t = key;
    t.push_back(Value::SetOf(std::move(values)));
    tuples.push_back(std::move(t));
  }
  return Relation(Schema(std::move(attributes)), std::move(tuples));
}

Relation Unnest(const Relation& r, const std::string& attr, const std::string& out_name) {
  size_t set_idx = r.schema().IndexOfOrThrow(attr);
  if (r.schema().attribute(set_idx).type != ValueType::kSet) {
    throw SchemaError("Unnest requires a set-valued attribute");
  }
  std::vector<Attribute> attributes;
  std::vector<size_t> rest_idx;
  for (size_t i = 0; i < r.schema().size(); ++i) {
    if (i != set_idx) {
      attributes.push_back(r.schema().attribute(i));
      rest_idx.push_back(i);
    }
  }
  // The element type is inferred from the data; default int for all-empty.
  ValueType element_type = ValueType::kInt;
  for (const Tuple& t : r.tuples()) {
    if (!t[set_idx].as_set().empty()) {
      element_type = t[set_idx].as_set().front().type();
      break;
    }
  }
  attributes.push_back({out_name, element_type});
  std::vector<Tuple> tuples;
  for (const Tuple& t : r.tuples()) {
    for (const Value& element : t[set_idx].as_set()) {
      Tuple row = ProjectTuple(t, rest_idx);
      row.push_back(element);
      tuples.push_back(std::move(row));
    }
  }
  return Relation(Schema(std::move(attributes)), std::move(tuples));
}

}  // namespace quotient
