#include "algebra/divide.hpp"

#include <algorithm>
#include <map>

#include "exec/key_codec.hpp"
#include "util/bitmap.hpp"
#include "util/status.hpp"

namespace quotient {

namespace {

std::vector<size_t> IndicesOf(const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) indices.push_back(schema.IndexOfOrThrow(name));
  return indices;
}

}  // namespace

DivisionAttributes DivisionAttributeSets(const Schema& dividend, const Schema& divisor,
                                         bool allow_c) {
  DivisionAttributes out;
  out.b = dividend.CommonNames(divisor);
  out.a = dividend.NamesMinus(divisor);
  out.c = divisor.NamesMinus(dividend);
  if (out.b.empty()) {
    throw SchemaError("division requires a nonempty set B of shared attributes; dividend " +
                      dividend.ToString() + ", divisor " + divisor.ToString());
  }
  if (out.a.empty()) {
    throw SchemaError("division requires nonempty quotient attributes A; dividend " +
                      dividend.ToString() + ", divisor " + divisor.ToString());
  }
  if (!allow_c && !out.c.empty()) {
    throw SchemaError("small divide requires divisor attributes ⊆ dividend attributes; " +
                      divisor.ToString() + " has extra attributes");
  }
  for (const std::string& name : out.b) {
    ValueType t1 = dividend.attribute(dividend.IndexOfOrThrow(name)).type;
    ValueType t2 = divisor.attribute(divisor.IndexOfOrThrow(name)).type;
    if (t1 != t2) {
      throw SchemaError("division attribute '" + name + "' has mismatched types " +
                        ValueTypeName(t1) + " vs " + ValueTypeName(t2));
    }
  }
  return out;
}

Relation DivideCodd(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  std::vector<size_t> a_idx = IndicesOf(r1.schema(), attrs.a);
  std::vector<size_t> b_idx = IndicesOf(r1.schema(), attrs.b);
  std::vector<size_t> divisor_idx = IndicesOf(r2.schema(), attrs.b);

  // Key-encode the dividend's A and B columns and number both key spaces.
  KeyCodec a_codec(a_idx.size());
  KeyCodec b_codec(b_idx.size());
  a_codec.Reserve(r1.size());
  b_codec.Reserve(r1.size());
  for (const Tuple& t : r1.tuples()) {
    a_codec.Add(t, a_idx);
    b_codec.Add(t, b_idx);
  }
  a_codec.Seal();
  b_codec.Seal();
  KeyNumbering a_num;
  KeyNumbering b_num;
  a_num.Build(a_codec);
  b_num.Build(b_codec);

  // Each A-group's image set over B, as one bitmap row per candidate.
  BitmapMatrix images(b_num.count(), a_num.count());
  for (size_t i = 0; i < r1.size(); ++i) {
    images.Set(a_num.row_ids()[i], b_num.row_ids()[i]);
  }

  // Resolve the divisor to dividend B numbers. A divisor tuple absent from
  // every image empties the quotient.
  std::vector<uint32_t> divisor;
  divisor.reserve(r2.size());
  for (const Tuple& t : r2.tuples()) {
    uint32_t id = b_num.Probe(t, divisor_idx);
    if (id == KeyNumbering::kNotFound) {
      return Relation(r1.schema().Project(attrs.a));
    }
    divisor.push_back(id);
  }

  std::vector<Tuple> quotient;
  for (uint32_t cand = 0; cand < a_num.count(); ++cand) {
    bool contains_all = true;
    for (uint32_t d : divisor) {
      if (!images.Test(cand, d)) {
        contains_all = false;
        break;
      }
    }
    if (contains_all) quotient.push_back(a_num.KeyTuple(cand));
  }
  return Relation(r1.schema().Project(attrs.a), std::move(quotient));
}

Relation DivideHealy(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  Relation pa = Project(r1, attrs.a);
  // πA(r1) − πA((πA(r1) × r2) − r1)
  return Difference(pa, Project(Difference(Product(pa, r2), r1), attrs.a));
}

Relation DivideMaier(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  Relation result = Project(r1, attrs.a);  // empty intersection = πA(r1)
  std::vector<size_t> divisor_idx = IndicesOf(r2.schema(), attrs.b);
  for (const Tuple& t : r2.tuples()) {
    // σB=t(r1) then πA.
    std::vector<ExprPtr> conjuncts;
    for (size_t i = 0; i < attrs.b.size(); ++i) {
      conjuncts.push_back(Expr::ColCmp(attrs.b[i], CmpOp::kEq, t[divisor_idx[i]]));
    }
    result = Intersect(result, Project(Select(r1, Expr::AndAll(conjuncts)), attrs.a));
  }
  return result;
}

Relation DivideCounting(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  // The literal counting formula of footnote 1 yields ∅ for an empty divisor;
  // we guard that case so all divide implementations agree with Codd's
  // semantics (r1 ÷ ∅ = πA(r1)).
  if (r2.empty()) return Project(r1, attrs.a);
  std::vector<size_t> a_idx = IndicesOf(r1.schema(), attrs.a);
  std::vector<size_t> b_idx = IndicesOf(r1.schema(), attrs.b);
  std::vector<size_t> divisor_idx = IndicesOf(r2.schema(), attrs.b);

  // Count matching divisor tuples per quotient candidate and compare against
  // |r2| (footnote 1's σcount=|r2|(GγF(r1 ⋉ r2))), on encoded keys: the
  // divisor's B tuples are the dictionary build side, candidates are
  // numbered densely, and the per-candidate counts live in a flat array.
  // Relations are sets, so plain counts are distinct counts.
  KeyCodec b_codec(divisor_idx.size());
  b_codec.Reserve(r2.size());
  for (const Tuple& t : r2.tuples()) b_codec.Add(t, divisor_idx);
  b_codec.Seal();
  KeyNumbering b_num;
  b_num.Build(b_codec);

  KeyCodec a_codec(a_idx.size());
  a_codec.Reserve(r1.size());
  std::vector<bool> row_matched;
  row_matched.reserve(r1.size());
  for (const Tuple& t : r1.tuples()) {
    a_codec.Add(t, a_idx);
    row_matched.push_back(b_num.Probe(t, b_idx) != KeyNumbering::kNotFound);
  }
  a_codec.Seal();
  KeyNumbering a_num;
  a_num.Build(a_codec);

  std::vector<uint32_t> counts(a_num.count(), 0);
  for (size_t i = 0; i < row_matched.size(); ++i) {
    if (row_matched[i]) counts[a_num.row_ids()[i]] += 1;
  }
  std::vector<Tuple> quotient;
  for (uint32_t cand = 0; cand < a_num.count(); ++cand) {
    if (counts[cand] == b_num.count()) quotient.push_back(a_num.KeyTuple(cand));
  }
  return Relation(r1.schema().Project(attrs.a), std::move(quotient));
}

Relation GreatDivideSCD(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/true);
  if (attrs.c.empty()) return DivideCodd(r1, r2);  // degenerates (Darwen/Date)

  std::vector<size_t> c_idx = IndicesOf(r2.schema(), attrs.c);
  Schema b_schema = r2.schema().Project(attrs.b);
  std::vector<size_t> b_idx = IndicesOf(r2.schema(), attrs.b);

  // Partition the divisor into groups by C.
  std::map<Tuple, std::vector<Tuple>, TupleLess> groups;
  for (const Tuple& t : r2.tuples()) {
    groups[ProjectTuple(t, c_idx)].push_back(ProjectTuple(t, b_idx));
  }

  Schema out_schema = r1.schema().Project(attrs.a).Concat(r2.schema().Project(attrs.c));
  std::vector<Tuple> tuples;
  for (const auto& [c_value, b_tuples] : groups) {
    Relation divisor_group(b_schema, b_tuples);
    Relation quotient = DivideCodd(r1, divisor_group);
    for (const Tuple& q : quotient.tuples()) tuples.push_back(ConcatTuples(q, c_value));
  }
  return Relation(std::move(out_schema), std::move(tuples));
}

Relation GreatDivideDemolombe(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/true);
  if (attrs.c.empty()) return DivideHealy(r1, r2);
  Relation pa = Project(r1, attrs.a);
  Relation pc = Project(r2, attrs.c);
  Relation candidates = Product(pa, pc);
  std::vector<std::string> ac = attrs.a;
  ac.insert(ac.end(), attrs.c.begin(), attrs.c.end());
  // (πA(r1) × r2) − (r1 × πC(r2)), both with attribute set A ∪ B ∪ C.
  Relation violations = Difference(Product(pa, r2), Product(r1, pc));
  return Difference(candidates, Project(violations, ac));
}

Relation GreatDivideTodd(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/true);
  if (attrs.c.empty()) return DivideHealy(r1, r2);
  Relation pa = Project(r1, attrs.a);
  Relation pc = Project(r2, attrs.c);
  Relation candidates = Product(pa, pc);
  std::vector<std::string> ac = attrs.a;
  ac.insert(ac.end(), attrs.c.begin(), attrs.c.end());
  // (πA(r1) × r2) − (r1 ⋈ r2), the join being the natural join on B.
  Relation violations = Difference(Product(pa, r2), NaturalJoin(r1, r2));
  return Difference(candidates, Project(violations, ac));
}

Relation SetContainmentJoin(const Relation& r1, const std::string& b1, const Relation& r2,
                            const std::string& b2) {
  size_t i1 = r1.schema().IndexOfOrThrow(b1);
  size_t i2 = r2.schema().IndexOfOrThrow(b2);
  if (r1.schema().attribute(i1).type != ValueType::kSet ||
      r2.schema().attribute(i2).type != ValueType::kSet) {
    throw SchemaError("set containment join requires set-valued attributes");
  }
  Schema schema = r1.schema().Concat(r2.schema());
  std::vector<Tuple> tuples;
  for (const Tuple& t1 : r1.tuples()) {
    const std::vector<Value>& s1 = t1[i1].as_set();
    for (const Tuple& t2 : r2.tuples()) {
      const std::vector<Value>& s2 = t2[i2].as_set();
      // s1 ⊇ s2; both are sorted and deduplicated by construction.
      if (std::includes(s1.begin(), s1.end(), s2.begin(), s2.end())) {
        tuples.push_back(ConcatTuples(t1, t2));
      }
    }
  }
  return Relation(std::move(schema), std::move(tuples));
}

Relation Nest(const Relation& r, const std::string& attr, const std::string& out_name) {
  size_t nest_idx = r.schema().IndexOfOrThrow(attr);
  std::vector<std::string> rest;
  std::vector<size_t> rest_idx;
  for (size_t i = 0; i < r.schema().size(); ++i) {
    if (i != nest_idx) {
      rest.push_back(r.schema().attribute(i).name);
      rest_idx.push_back(i);
    }
  }
  std::map<Tuple, std::vector<Value>, TupleLess> groups;
  for (const Tuple& t : r.tuples()) {
    groups[ProjectTuple(t, rest_idx)].push_back(t[nest_idx]);
  }
  std::vector<Attribute> attributes;
  for (size_t i : rest_idx) attributes.push_back(r.schema().attribute(i));
  attributes.push_back({out_name, ValueType::kSet});
  std::vector<Tuple> tuples;
  for (auto& [key, values] : groups) {
    Tuple t = key;
    t.push_back(Value::SetOf(std::move(values)));
    tuples.push_back(std::move(t));
  }
  return Relation(Schema(std::move(attributes)), std::move(tuples));
}

Relation Unnest(const Relation& r, const std::string& attr, const std::string& out_name) {
  size_t set_idx = r.schema().IndexOfOrThrow(attr);
  if (r.schema().attribute(set_idx).type != ValueType::kSet) {
    throw SchemaError("Unnest requires a set-valued attribute");
  }
  std::vector<Attribute> attributes;
  std::vector<size_t> rest_idx;
  for (size_t i = 0; i < r.schema().size(); ++i) {
    if (i != set_idx) {
      attributes.push_back(r.schema().attribute(i));
      rest_idx.push_back(i);
    }
  }
  // The element type is inferred from the data; default int for all-empty.
  ValueType element_type = ValueType::kInt;
  for (const Tuple& t : r.tuples()) {
    if (!t[set_idx].as_set().empty()) {
      element_type = t[set_idx].as_set().front().type();
      break;
    }
  }
  attributes.push_back({out_name, element_type});
  std::vector<Tuple> tuples;
  for (const Tuple& t : r.tuples()) {
    for (const Value& element : t[set_idx].as_set()) {
      Tuple row = ProjectTuple(t, rest_idx);
      row.push_back(element);
      tuples.push_back(std::move(row));
    }
  }
  return Relation(Schema(std::move(attributes)), std::move(tuples));
}

}  // namespace quotient
