#pragma once

#include <cstddef>
#include <vector>

#include "algebra/value.hpp"

namespace quotient {

/// A tuple is simply a vector of values; its meaning comes from the Schema of
/// the relation holding it.
using Tuple = std::vector<Value>;

/// Lexicographic three-way comparison.
int CompareTuples(const Tuple& a, const Tuple& b);

/// Lexicographic less-than, for sorted storage.
struct TupleLess {
  bool operator()(const Tuple& a, const Tuple& b) const { return CompareTuples(a, b) < 0; }
};

/// Hash/equality functors for unordered containers keyed by tuples.
struct TupleHash {
  size_t operator()(const Tuple& t) const;
};
struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const { return CompareTuples(a, b) == 0; }
};

/// The tuple restricted to positions `indices`, in that order.
Tuple ProjectTuple(const Tuple& tuple, const std::vector<size_t>& indices);

/// Concatenation a ◦ b (Appendix A, Cartesian product).
Tuple ConcatTuples(const Tuple& a, const Tuple& b);

}  // namespace quotient
