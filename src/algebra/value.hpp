#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace quotient {

class Value;

/// The type of a value / attribute.
///
/// kSet exists for the set containment join of Section 2.2 (Figure 3), whose
/// inputs are not in first normal form: an attribute value may itself be a
/// set of values.
enum class ValueType { kNull, kInt, kReal, kString, kSet };

/// Human-readable type name ("int", "real", "string", "set", "null").
const char* ValueTypeName(ValueType type);

/// A single attribute value with set semantics: Values are totally ordered
/// and hashable so relations can be stored canonically sorted.
///
/// Ordering across numeric types compares by numeric value first (so that
/// Int(2) < Real(2.5)), breaking exact numeric ties by type tag; all other
/// cross-type comparisons order by type tag. Equality is strict: Int(2) and
/// Real(2.0) are distinct values (they never collide in a relation), but
/// predicate comparisons (Expr) compare numerically.
class Value {
 public:
  /// Null value (used only by the outer join's padding, Appendix A).
  Value() : rep_(std::monostate{}) {}

  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Real(double v) { return Value(Rep(v)); }
  static Value Str(std::string v) { return Value(Rep(std::move(v))); }
  /// Builds a set value; elements are sorted and deduplicated.
  static Value SetOf(std::vector<Value> elements);

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_real() const { return std::get<double>(rep_); }
  const std::string& as_str() const { return std::get<std::string>(rep_); }
  const std::vector<Value>& as_set() const { return *std::get<SetRep>(rep_); }

  /// Numeric view: as_int or as_real widened to double. Throws SchemaError
  /// for non-numeric values.
  double Numeric() const;

  /// Three-way comparison implementing the total order described above.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Hash consistent with operator==.
  size_t Hash() const;

  /// Rendering used by the paper-style table printer: ints/reals plainly,
  /// strings verbatim, sets as "{e1, e2, ...}", null as "NULL".
  std::string ToString() const;

 private:
  using SetRep = std::shared_ptr<const std::vector<Value>>;
  using Rep = std::variant<std::monostate, int64_t, double, std::string, SetRep>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}
  Rep rep_;
};

/// Hash functor for unordered containers of Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Shorthand literal constructors used pervasively by tests and examples.
inline Value V(int v) { return Value::Int(v); }
inline Value V(int64_t v) { return Value::Int(v); }
inline Value V(double v) { return Value::Real(v); }
inline Value V(const char* v) { return Value::Str(v); }
inline Value V(std::string v) { return Value::Str(std::move(v)); }

}  // namespace quotient
