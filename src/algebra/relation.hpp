#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/schema.hpp"
#include "algebra/tuple.hpp"

namespace quotient {

/// A relation with set semantics (Appendix A): a schema plus a canonically
/// sorted, duplicate-free vector of tuples. Canonical storage makes relation
/// equality structural equality, which the law checkers rely on.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  /// Canonicalizes (sorts, deduplicates) and type-checks `tuples`.
  Relation(Schema schema, std::vector<Tuple> tuples);

  /// Builds a relation from a schema spec (see Schema::Parse) and rows, e.g.
  ///   Relation::FromRows("a, b", {{V(1), V(1)}, {V(1), V(4)}});
  static Relation FromRows(std::string_view schema_spec,
                           std::initializer_list<std::initializer_list<Value>> rows);
  static Relation FromRows(Schema schema, std::vector<Tuple> rows);

  /// Parses a compact textual form used heavily in tests: rows separated by
  /// ';', values by ','. Integer literals become Int, literals with '.' or
  /// 'e' become Real, everything else String (must match the schema types).
  ///   Relation::Parse("a, b", "1,1; 1,4; 2,1")
  static Relation Parse(std::string_view schema_spec, std::string_view rows);

  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Membership test by binary search.
  bool Contains(const Tuple& tuple) const;

  /// Sorted insert of ONE tuple; no-op if the tuple is already present.
  ///
  /// This is O(n) per call (it shifts the sorted tail), so inserting k
  /// tuples in a loop is O(n·k). Bulk builds must go through the
  /// canonicalizing `Relation(Schema, std::vector<Tuple>)` constructor
  /// (or FromRows/Parse), which sorts once: O((n+k) log (n+k)).
  void Insert(Tuple tuple);

  /// True iff this relation is a subset of `other` (schemas must have the
  /// same attribute set; `other` is reordered if needed).
  bool SubsetOf(const Relation& other) const;

  /// The same relation with attributes reordered to `names` order.
  Relation Reorder(const std::vector<std::string>& names) const;

  /// Structural equality modulo attribute order: schemas must have the same
  /// attribute set and the tuple sets must match after reordering.
  bool operator==(const Relation& other) const;
  bool operator!=(const Relation& other) const { return !(*this == other); }

  /// Paper-style rendering:
  ///   a b
  ///   1 1
  ///   1 4
  std::string ToString() const;

 private:
  void CheckTuple(const Tuple& tuple) const;

  Schema schema_;
  std::vector<Tuple> tuples_;  // sorted by TupleLess, unique
};

}  // namespace quotient
