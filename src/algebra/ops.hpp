#pragma once

#include <string>
#include <utility>
#include <vector>

#include "algebra/predicate.hpp"
#include "algebra/relation.hpp"

namespace quotient {

/// The basic and derived operators of Appendix A, with set semantics, used
/// as the reference ("ground truth") evaluator. These are deliberately
/// simple and obviously correct; the fast implementations live in src/exec.

/// r1 ∪ r2. Requires the same attribute set; reorders r2 if needed.
Relation Union(const Relation& r1, const Relation& r2);
/// r1 ∩ r2. Requires the same attribute set.
Relation Intersect(const Relation& r1, const Relation& r2);
/// r1 − r2. Requires the same attribute set.
Relation Difference(const Relation& r1, const Relation& r2);

/// r1 × r2. Requires disjoint attribute names (use Rename otherwise).
Relation Product(const Relation& r1, const Relation& r2);

/// π_names(r); duplicates are removed (set semantics).
Relation Project(const Relation& r, const std::vector<std::string>& names);

/// σ_pred(r).
Relation Select(const Relation& r, const ExprPtr& predicate);

/// r1 ⋈θ r2 = σθ(r1 × r2). Attribute names must be disjoint.
Relation ThetaJoin(const Relation& r1, const Relation& r2, const ExprPtr& condition);

/// Natural join on the common attribute names; degenerates to × when no
/// names are shared. Output schema: attrs(r1) then attrs(r2) − common.
Relation NaturalJoin(const Relation& r1, const Relation& r2);

/// Left semi-join r1 ⋉ r2 = π[r1](r1 ⋈ r2).
Relation SemiJoin(const Relation& r1, const Relation& r2);

/// Left anti-semi-join: r1 minus the tuples that join with r2.
Relation AntiSemiJoin(const Relation& r1, const Relation& r2);

/// Left outer join: natural join plus unmatched r1 tuples padded with NULLs
/// on r2's non-common attributes.
Relation LeftOuterJoin(const Relation& r1, const Relation& r2);

/// Renames attributes; `renames` maps old name -> new name.
Relation Rename(const Relation& r,
                const std::vector<std::pair<std::string, std::string>>& renames);

/// Aggregation functions supported by the grouping operator GγF.
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

/// One aggregation: `fn` applied to attribute `arg` (ignored for kCount),
/// producing output attribute `out`.
struct AggSpec {
  AggFunc fn;
  std::string arg;
  std::string out;

  bool operator==(const AggSpec& other) const = default;
};

/// The output schema of GroupBy(r, group_names, aggs) without evaluating it;
/// shared by the logical plan layer for schema inference.
Schema GroupByOutputSchema(const Schema& input, const std::vector<std::string>& group_names,
                           const std::vector<AggSpec>& aggs);

/// Incremental aggregation state for one (group, AggSpec) pair; shared by
/// the reference GroupBy and the key-encoded HashAggregateIterator so both
/// compute identical results.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t sum_int = 0;
  bool has_minmax = false;
  Value min;
  Value max;
};

/// Per-spec argument column positions (position 0 for a bare COUNT with no
/// argument); shared by GroupBy and HashAggregateIterator so both resolve
/// aggregate arguments identically.
std::vector<size_t> AggArgIndices(const Schema& input, const std::vector<AggSpec>& aggs);

/// Folds one input value into `state` (`v` is ignored for kCount).
void AggAccumulate(const AggSpec& spec, const Value& v, AggState* state);

/// Folds a partial state into `dst` (the merge phase of parallel grouping
/// pipelines). Count/min/max and integer sums merge exactly; floating-point
/// sums may associate differently than the serial fold, so the executor
/// only parallelizes aggregations whose sum/avg arguments are integer.
void AggMerge(const AggState& src, AggState* dst);

/// The final output value for `spec` over `state`.
Value AggFinish(const AggSpec& spec, const AggState& state);

/// GγF(r) (Appendix A): groups `r` by `group_names` and computes the
/// aggregates. Output schema: group attributes (in the given order) followed
/// by aggregate outputs. With empty `group_names`, produces one global row
/// (even for empty input, where count = 0 and sum/min/max/avg are NULL).
Relation GroupBy(const Relation& r, const std::vector<std::string>& group_names,
                 const std::vector<AggSpec>& aggs);

}  // namespace quotient
