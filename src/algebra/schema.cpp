#include "algebra/schema.hpp"

#include <unordered_set>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace quotient {

namespace {

void CheckUniqueNames(const std::vector<Attribute>& attributes) {
  std::unordered_set<std::string> seen;
  for (const Attribute& a : attributes) {
    if (!seen.insert(a.name).second) {
      throw SchemaError("duplicate attribute name '" + a.name + "' in schema");
    }
  }
}

ValueType ParseType(std::string_view name) {
  if (name == "int") return ValueType::kInt;
  if (name == "real") return ValueType::kReal;
  if (name == "string" || name == "str") return ValueType::kString;
  if (name == "set") return ValueType::kSet;
  throw SchemaError("unknown attribute type '" + std::string(name) + "'");
}

}  // namespace

Schema::Schema(std::vector<Attribute> attributes) : attributes_(std::move(attributes)) {
  CheckUniqueNames(attributes_);
}

Schema Schema::Parse(std::string_view spec) {
  std::vector<Attribute> attributes;
  if (Trim(spec).empty()) return Schema();
  for (const std::string& piece : SplitTrim(spec, ',')) {
    size_t colon = piece.find(':');
    if (colon == std::string::npos) {
      attributes.push_back({piece, ValueType::kInt});
    } else {
      std::string name(Trim(std::string_view(piece).substr(0, colon)));
      std::string type(Trim(std::string_view(piece).substr(colon + 1)));
      attributes.push_back({std::move(name), ParseType(type)});
    }
  }
  return Schema(std::move(attributes));
}

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

size_t Schema::IndexOfOrThrow(std::string_view name) const {
  if (auto i = IndexOf(name)) return *i;
  throw SchemaError("attribute '" + std::string(name) + "' not in schema " + ToString());
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> names;
  names.reserve(attributes_.size());
  for (const Attribute& a : attributes_) names.push_back(a.name);
  return names;
}

Schema Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Attribute> attributes;
  attributes.reserve(names.size());
  for (const std::string& name : names) attributes.push_back(attributes_[IndexOfOrThrow(name)]);
  return Schema(std::move(attributes));
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Attribute> attributes = attributes_;
  attributes.insert(attributes.end(), other.attributes_.begin(), other.attributes_.end());
  return Schema(std::move(attributes));
}

std::vector<std::string> Schema::CommonNames(const Schema& other) const {
  std::vector<std::string> names;
  for (const Attribute& a : attributes_) {
    if (other.Contains(a.name)) names.push_back(a.name);
  }
  return names;
}

std::vector<std::string> Schema::NamesMinus(const Schema& other) const {
  std::vector<std::string> names;
  for (const Attribute& a : attributes_) {
    if (!other.Contains(a.name)) names.push_back(a.name);
  }
  return names;
}

bool Schema::SameAttributeSet(const Schema& other) const {
  return size() == other.size() && ContainsAll(other);
}

bool Schema::ContainsAll(const Schema& other) const {
  for (const Attribute& a : other.attributes_) {
    auto i = IndexOf(a.name);
    if (!i || attributes_[*i].type != a.type) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += ValueTypeName(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace quotient
