#include "algebra/relation.hpp"

#include <algorithm>
#include <sstream>

#include "util/status.hpp"
#include "util/strings.hpp"

namespace quotient {

namespace {

void Canonicalize(std::vector<Tuple>* tuples) {
  std::sort(tuples->begin(), tuples->end(), TupleLess{});
  tuples->erase(std::unique(tuples->begin(), tuples->end(),
                            [](const Tuple& a, const Tuple& b) {
                              return CompareTuples(a, b) == 0;
                            }),
                tuples->end());
}

Value ParseLiteral(std::string_view text, ValueType type) {
  std::string s(Trim(text));
  switch (type) {
    case ValueType::kInt: return Value::Int(std::stoll(s));
    case ValueType::kReal: return Value::Real(std::stod(s));
    case ValueType::kString: return Value::Str(s);
    default: throw SchemaError("Relation::Parse cannot parse values of type set/null");
  }
}

}  // namespace

Relation::Relation(Schema schema, std::vector<Tuple> tuples)
    : schema_(std::move(schema)), tuples_(std::move(tuples)) {
  for (const Tuple& t : tuples_) CheckTuple(t);
  Canonicalize(&tuples_);
}

Relation Relation::FromRows(std::string_view schema_spec,
                            std::initializer_list<std::initializer_list<Value>> rows) {
  std::vector<Tuple> tuples;
  tuples.reserve(rows.size());
  for (const auto& row : rows) tuples.emplace_back(row);
  return Relation(Schema::Parse(schema_spec), std::move(tuples));
}

Relation Relation::FromRows(Schema schema, std::vector<Tuple> rows) {
  return Relation(std::move(schema), std::move(rows));
}

Relation Relation::Parse(std::string_view schema_spec, std::string_view rows) {
  Schema schema = Schema::Parse(schema_spec);
  std::vector<Tuple> tuples;
  if (!Trim(rows).empty()) {
    for (const std::string& row : SplitTrim(rows, ';')) {
      if (row.empty()) continue;
      std::vector<std::string> cells = SplitTrim(row, ',');
      if (cells.size() != schema.size()) {
        throw SchemaError("row '" + row + "' has " + std::to_string(cells.size()) +
                          " values, schema " + schema.ToString() + " expects " +
                          std::to_string(schema.size()));
      }
      Tuple t;
      t.reserve(cells.size());
      for (size_t i = 0; i < cells.size(); ++i) {
        t.push_back(ParseLiteral(cells[i], schema.attribute(i).type));
      }
      tuples.push_back(std::move(t));
    }
  }
  return Relation(std::move(schema), std::move(tuples));
}

void Relation::CheckTuple(const Tuple& tuple) const {
  if (tuple.size() != schema_.size()) {
    throw SchemaError("tuple arity " + std::to_string(tuple.size()) + " does not match schema " +
                      schema_.ToString());
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple[i].is_null()) continue;  // NULL is allowed in any attribute (outer join padding)
    if (tuple[i].type() != schema_.attribute(i).type) {
      throw SchemaError("value " + tuple[i].ToString() + " has type " +
                        ValueTypeName(tuple[i].type()) + ", attribute '" +
                        schema_.attribute(i).name + "' expects " +
                        ValueTypeName(schema_.attribute(i).type));
    }
  }
}

bool Relation::Contains(const Tuple& tuple) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), tuple, TupleLess{});
}

void Relation::Insert(Tuple tuple) {
  CheckTuple(tuple);
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), tuple, TupleLess{});
  if (it != tuples_.end() && CompareTuples(*it, tuple) == 0) return;
  tuples_.insert(it, std::move(tuple));
}

Relation Relation::Reorder(const std::vector<std::string>& names) const {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) indices.push_back(schema_.IndexOfOrThrow(name));
  std::vector<Tuple> tuples;
  tuples.reserve(tuples_.size());
  for (const Tuple& t : tuples_) tuples.push_back(ProjectTuple(t, indices));
  return Relation(schema_.Project(names), std::move(tuples));
}

bool Relation::SubsetOf(const Relation& other) const {
  if (!schema_.SameAttributeSet(other.schema())) {
    throw SchemaError("SubsetOf between incompatible schemas " + schema_.ToString() + " and " +
                      other.schema().ToString());
  }
  const Relation& aligned =
      schema_ == other.schema() ? other : other.Reorder(schema_.Names());
  for (const Tuple& t : tuples_) {
    if (!aligned.Contains(t)) return false;
  }
  return true;
}

bool Relation::operator==(const Relation& other) const {
  if (!schema_.SameAttributeSet(other.schema())) return false;
  if (size() != other.size()) return false;
  if (schema_ == other.schema()) return tuples_ == other.tuples_;
  Relation aligned = other.Reorder(schema_.Names());
  return tuples_ == aligned.tuples_;
}

std::string Relation::ToString() const {
  std::vector<size_t> widths(schema_.size());
  std::vector<std::vector<std::string>> cells;
  cells.reserve(tuples_.size());
  for (size_t i = 0; i < schema_.size(); ++i) widths[i] = schema_.attribute(i).name.size();
  for (const Tuple& t : tuples_) {
    std::vector<std::string> row;
    row.reserve(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      row.push_back(t[i].ToString());
      widths[i] = std::max(widths[i], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ' ';
      out << row[i];
      for (size_t pad = row[i].size(); pad < widths[i]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(schema_.Names());
  for (const auto& row : cells) emit_row(row);
  if (tuples_.empty()) out << "(empty)\n";
  return out.str();
}

}  // namespace quotient
