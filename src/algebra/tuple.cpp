#include "algebra/tuple.hpp"

#include <algorithm>

namespace quotient {

int CompareTuples(const Tuple& a, const Tuple& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  return 0;
}

size_t TupleHash::operator()(const Tuple& t) const {
  size_t h = 0x51ab2e;
  for (const Value& v : t) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

Tuple ProjectTuple(const Tuple& tuple, const std::vector<size_t>& indices) {
  Tuple out;
  out.reserve(indices.size());
  for (size_t i : indices) out.push_back(tuple[i]);
  return out;
}

Tuple ConcatTuples(const Tuple& a, const Tuple& b) {
  Tuple out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace quotient
