#include "algebra/ops.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/status.hpp"

namespace quotient {

namespace {

void RequireSameAttributeSet(const Relation& r1, const Relation& r2, const char* op) {
  if (!r1.schema().SameAttributeSet(r2.schema())) {
    throw SchemaError(std::string(op) + " requires union-compatible schemas, got " +
                      r1.schema().ToString() + " and " + r2.schema().ToString());
  }
}

std::vector<size_t> IndicesOf(const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) indices.push_back(schema.IndexOfOrThrow(name));
  return indices;
}

}  // namespace

Relation Union(const Relation& r1, const Relation& r2) {
  RequireSameAttributeSet(r1, r2, "Union");
  Relation aligned = r2.schema() == r1.schema() ? r2 : r2.Reorder(r1.schema().Names());
  std::vector<Tuple> tuples = r1.tuples();
  tuples.insert(tuples.end(), aligned.tuples().begin(), aligned.tuples().end());
  return Relation(r1.schema(), std::move(tuples));
}

Relation Intersect(const Relation& r1, const Relation& r2) {
  RequireSameAttributeSet(r1, r2, "Intersect");
  Relation aligned = r2.schema() == r1.schema() ? r2 : r2.Reorder(r1.schema().Names());
  std::vector<Tuple> tuples;
  for (const Tuple& t : r1.tuples()) {
    if (aligned.Contains(t)) tuples.push_back(t);
  }
  return Relation(r1.schema(), std::move(tuples));
}

Relation Difference(const Relation& r1, const Relation& r2) {
  RequireSameAttributeSet(r1, r2, "Difference");
  Relation aligned = r2.schema() == r1.schema() ? r2 : r2.Reorder(r1.schema().Names());
  std::vector<Tuple> tuples;
  for (const Tuple& t : r1.tuples()) {
    if (!aligned.Contains(t)) tuples.push_back(t);
  }
  return Relation(r1.schema(), std::move(tuples));
}

Relation Product(const Relation& r1, const Relation& r2) {
  Schema schema = r1.schema().Concat(r2.schema());  // throws on duplicate names
  std::vector<Tuple> tuples;
  tuples.reserve(r1.size() * r2.size());
  for (const Tuple& a : r1.tuples()) {
    for (const Tuple& b : r2.tuples()) {
      tuples.push_back(ConcatTuples(a, b));
    }
  }
  return Relation(std::move(schema), std::move(tuples));
}

Relation Project(const Relation& r, const std::vector<std::string>& names) {
  std::vector<size_t> indices = IndicesOf(r.schema(), names);
  std::vector<Tuple> tuples;
  tuples.reserve(r.size());
  for (const Tuple& t : r.tuples()) tuples.push_back(ProjectTuple(t, indices));
  return Relation(r.schema().Project(names), std::move(tuples));
}

Relation Select(const Relation& r, const ExprPtr& predicate) {
  BoundExpr bound(predicate, r.schema());
  std::vector<Tuple> tuples;
  for (const Tuple& t : r.tuples()) {
    if (bound.EvalBool(t)) tuples.push_back(t);
  }
  return Relation(r.schema(), std::move(tuples));
}

Relation ThetaJoin(const Relation& r1, const Relation& r2, const ExprPtr& condition) {
  return Select(Product(r1, r2), condition);
}

Relation NaturalJoin(const Relation& r1, const Relation& r2) {
  std::vector<std::string> common = r1.schema().CommonNames(r2.schema());
  std::vector<std::string> right_only = r2.schema().NamesMinus(r1.schema());

  Schema schema = r1.schema().Concat(r2.schema().Project(right_only));
  std::vector<size_t> left_common = IndicesOf(r1.schema(), common);
  std::vector<size_t> right_common = IndicesOf(r2.schema(), common);
  std::vector<size_t> right_rest = IndicesOf(r2.schema(), right_only);

  // Hash r2 on the common attributes.
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash, TupleEq> index;
  for (const Tuple& t : r2.tuples()) {
    index[ProjectTuple(t, right_common)].push_back(&t);
  }
  std::vector<Tuple> tuples;
  for (const Tuple& t : r1.tuples()) {
    auto it = index.find(ProjectTuple(t, left_common));
    if (it == index.end()) continue;
    for (const Tuple* match : it->second) {
      tuples.push_back(ConcatTuples(t, ProjectTuple(*match, right_rest)));
    }
  }
  return Relation(std::move(schema), std::move(tuples));
}

Relation SemiJoin(const Relation& r1, const Relation& r2) {
  std::vector<std::string> common = r1.schema().CommonNames(r2.schema());
  if (common.empty()) {
    // Degenerate: ⋉ over no common attributes keeps everything iff r2 != ∅.
    return r2.empty() ? Relation(r1.schema()) : r1;
  }
  std::vector<size_t> left_common = IndicesOf(r1.schema(), common);
  std::vector<size_t> right_common = IndicesOf(r2.schema(), common);
  std::unordered_map<Tuple, bool, TupleHash, TupleEq> keys;
  for (const Tuple& t : r2.tuples()) keys.emplace(ProjectTuple(t, right_common), true);
  std::vector<Tuple> tuples;
  for (const Tuple& t : r1.tuples()) {
    if (keys.count(ProjectTuple(t, left_common))) tuples.push_back(t);
  }
  return Relation(r1.schema(), std::move(tuples));
}

Relation AntiSemiJoin(const Relation& r1, const Relation& r2) {
  return Difference(r1, SemiJoin(r1, r2));
}

Relation LeftOuterJoin(const Relation& r1, const Relation& r2) {
  Relation joined = NaturalJoin(r1, r2);
  Relation dangling = AntiSemiJoin(r1, r2);
  std::vector<std::string> right_only = r2.schema().NamesMinus(r1.schema());
  std::vector<Tuple> tuples = joined.tuples();
  for (const Tuple& t : dangling.tuples()) {
    Tuple padded = t;
    padded.resize(t.size() + right_only.size());  // default Value() is NULL
    tuples.push_back(std::move(padded));
  }
  return Relation(joined.schema(), std::move(tuples));
}

Relation Rename(const Relation& r,
                const std::vector<std::pair<std::string, std::string>>& renames) {
  std::vector<Attribute> attributes = r.schema().attributes();
  for (const auto& [from, to] : renames) {
    attributes[r.schema().IndexOfOrThrow(from)].name = to;
  }
  return Relation(Schema(std::move(attributes)), r.tuples());
}

std::vector<size_t> AggArgIndices(const Schema& input, const std::vector<AggSpec>& aggs) {
  std::vector<size_t> indices;
  indices.reserve(aggs.size());
  for (const AggSpec& spec : aggs) {
    indices.push_back(spec.fn == AggFunc::kCount && spec.arg.empty()
                          ? size_t{0}
                          : input.IndexOfOrThrow(spec.arg.empty() ? "?" : spec.arg));
  }
  return indices;
}

void AggAccumulate(const AggSpec& spec, const Value& v, AggState* state) {
  AggState& s = *state;
  s.count += 1;
  if (spec.fn == AggFunc::kCount) return;
  if (v.type() == ValueType::kInt) {
    s.sum_int += v.as_int();
    s.sum += static_cast<double>(v.as_int());
  } else if (v.type() == ValueType::kReal) {
    s.sum_is_int = false;
    s.sum += v.as_real();
  }
  if (!s.has_minmax || v < s.min) s.min = v;
  if (!s.has_minmax || v > s.max) s.max = v;
  s.has_minmax = true;
}

void AggMerge(const AggState& src, AggState* dst) {
  dst->count += src.count;
  dst->sum += src.sum;
  dst->sum_int += src.sum_int;
  dst->sum_is_int = dst->sum_is_int && src.sum_is_int;
  if (src.has_minmax) {
    if (!dst->has_minmax || src.min < dst->min) dst->min = src.min;
    if (!dst->has_minmax || src.max > dst->max) dst->max = src.max;
    dst->has_minmax = true;
  }
}

Value AggFinish(const AggSpec& spec, const AggState& s) {
  switch (spec.fn) {
    case AggFunc::kCount: return Value::Int(s.count);
    case AggFunc::kSum:
      if (s.count == 0) return Value();
      return s.sum_is_int ? Value::Int(s.sum_int) : Value::Real(s.sum);
    case AggFunc::kMin: return s.has_minmax ? s.min : Value();
    case AggFunc::kMax: return s.has_minmax ? s.max : Value();
    case AggFunc::kAvg:
      if (s.count == 0) return Value();
      return Value::Real((s.sum_is_int ? static_cast<double>(s.sum_int) : s.sum) /
                         static_cast<double>(s.count));
  }
  return Value();
}

namespace {

ValueType OutputType(const AggSpec& spec, const Schema& input) {
  switch (spec.fn) {
    case AggFunc::kCount: return ValueType::kInt;
    case AggFunc::kAvg: return ValueType::kReal;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax: return input.attribute(input.IndexOfOrThrow(spec.arg)).type;
  }
  return ValueType::kInt;
}

}  // namespace

Schema GroupByOutputSchema(const Schema& input, const std::vector<std::string>& group_names,
                           const std::vector<AggSpec>& aggs) {
  std::vector<Attribute> out_attrs;
  for (const std::string& name : group_names) {
    out_attrs.push_back(input.attribute(input.IndexOfOrThrow(name)));
  }
  for (const AggSpec& spec : aggs) out_attrs.push_back({spec.out, OutputType(spec, input)});
  return Schema(std::move(out_attrs));
}

Relation GroupBy(const Relation& r, const std::vector<std::string>& group_names,
                 const std::vector<AggSpec>& aggs) {
  std::vector<size_t> group_indices = IndicesOf(r.schema(), group_names);
  std::vector<size_t> arg_indices = AggArgIndices(r.schema(), aggs);

  std::map<Tuple, std::vector<AggState>, TupleLess> groups;
  if (group_names.empty()) groups.emplace(Tuple{}, std::vector<AggState>(aggs.size()));
  for (const Tuple& t : r.tuples()) {
    Tuple key = ProjectTuple(t, group_indices);
    auto [it, inserted] = groups.try_emplace(std::move(key), std::vector<AggState>(aggs.size()));
    for (size_t i = 0; i < aggs.size(); ++i) {
      AggAccumulate(aggs[i], t[arg_indices[i]], &it->second[i]);
    }
  }

  std::vector<Tuple> tuples;
  tuples.reserve(groups.size());
  for (auto& [key, states] : groups) {
    Tuple t = key;
    for (size_t i = 0; i < aggs.size(); ++i) t.push_back(AggFinish(aggs[i], states[i]));
    tuples.push_back(std::move(t));
  }
  return Relation(GroupByOutputSchema(r.schema(), group_names, aggs), std::move(tuples));
}

}  // namespace quotient
