#pragma once

// Shared database state for concurrent sessions (docs/api.md).
//
// A Database owns what N sessions must agree on:
//
//   * an immutable, versioned catalog SNAPSHOT, republished copy-on-write
//     by DDL — readers pin the current snapshot per statement and are never
//     blocked by (or exposed to a torn view of) a writer. Snapshots share
//     table storage and cached dictionary encodings (plan/catalog.hpp), so
//     publication is O(#tables) regardless of data size;
//   * a shared LRU PLAN CACHE keyed on normalized SQL, so sessions reuse
//     each other's compiled-and-rewritten plans. The cache is sharded by
//     key hash — each shard has its own mutex, list, and index, so 64
//     sessions hitting distinct statements do not serialize on one lock —
//     while capacity and eviction order stay GLOBAL via a logical-clock
//     stamp per entry (the globally least-recently-used entry is evicted,
//     whichever shard holds it). Entries record the snapshot version they
//     were compiled against and the base tables they reference; DDL
//     invalidates by bumping the touched tables' versions instead of
//     clearing caches other sessions are reading, so a statement over
//     table B survives DDL on table A;
//   * an ARTIFACT RECYCLER (exec/recycler.hpp) caching immutable build
//     state — divisor tables, join build sides, grouping results — keyed
//     on plan-fragment fingerprints plus table data versions, so repeated
//     executions skip the dominant build cost, not just compilation;
//   * an ADMISSION CONTROLLER metering the sum of per-statement memory
//     budgets: when admission_memory_bytes is set, a statement whose
//     budget does not fit next to the running ones waits in a bounded
//     FIFO queue (still honoring its cancel/deadline) instead of pushing
//     the process past the configured memory.
//
// Sessions (api/session.hpp) are cheap single-threaded handles onto one
// Database; the Database itself is fully thread-safe. All sessions share
// the process-wide worker pool (exec/scheduler.hpp), which admits one
// parallel region at a time — concurrent drains queue rather than
// oversubscribe.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "exec/recycler.hpp"
#include "opt/stats.hpp"
#include "plan/catalog.hpp"
#include "plan/logical.hpp"
#include "sql/ast.hpp"
#include "util/status.hpp"

namespace quotient {

class QueryContext;

struct DatabaseOptions {
  /// Capacity of the shared plan cache (entries). 0 disables caching.
  size_t plan_cache_capacity = 64;
  /// Database-wide admission budget: the sum of per-statement memory
  /// budgets (SessionOptions::memory_budget_bytes) running at once. An
  /// over-budget statement WAITS in a bounded FIFO queue until running
  /// statements release their grants, instead of failing outright.
  /// 0 disables admission control. Statements without a memory budget
  /// bypass the controller (they are invisible to it).
  size_t admission_memory_bytes = 0;
  /// Statements allowed to wait for admission at once; one more is
  /// rejected with kResourceExhausted ("admission queue full").
  size_t admission_max_queue = 16;
  /// Byte budget of the cross-query artifact recycler (exec/recycler.hpp):
  /// cached divisor/join/grouping build state shared across executions and
  /// sessions. 0 disables recycling entirely (no recycler is created).
  /// Overridable at construction by the QUOTIENT_RECYCLER environment
  /// variable (a byte count; "0" disables).
  size_t recycler_memory_bytes = 64ull << 20;
};

/// Counters of the transaction subsystem (docs/transactions.md).
struct TransactionStats {
  uint64_t begun = 0;        // BEGINs (Session::Begin / SQL BEGIN)
  uint64_t committed = 0;    // write sets published (autocommit DML included)
  uint64_t conflicts = 0;    // commits lost to first-committer-wins
  uint64_t rolled_back = 0;  // explicit ROLLBACKs
};

/// Counters of the database-wide admission controller.
struct AdmissionStats {
  size_t admitted = 0;      // grants handed out (immediate or after a wait)
  size_t queued = 0;        // statements that had to wait
  size_t rejected = 0;      // queue full, or a grant larger than the budget
  size_t timed_out = 0;     // deadline expired / cancelled while waiting
  size_t in_use_bytes = 0;  // currently granted bytes
  size_t waiting = 0;       // statements waiting right now
};

/// The compile story of one statement, attached to results and cursors and
/// rendered by EXPLAIN.
struct CompileInfo {
  bool compiled = false;   // false: the oracle interpreter ran / would run
  bool cache_hit = false;  // served from the plan cache
  std::string fallback_reason;  // why the lowering refused (when !compiled)
  std::string normalized_sql;   // the plan-cache key (minus options prefix)
  PlanPtr lowered;              // straight from sql::LowerQuery
  PlanPtr optimized;            // after the law rewrites (cost guarded)
  std::vector<RewriteStep> rewrites;  // applied laws, in order
  double lowered_cost = 0;
  double optimized_cost = 0;
  /// Cost of the greedy fixpoint plan, the search's A/B reference
  /// (== lowered_cost when no rule fired).
  double greedy_cost = 0;
  /// Cost-guided search accounting (opt/memo.hpp); zero when search is off.
  size_t search_candidates = 0;
  size_t memo_hits = 0;
  /// A rewrite or candidate budget truncated exploration.
  bool rewrite_budget_exhausted = false;
};

/// A compiled statement as the shared plan cache stores it: either a
/// rewritten plan (info.compiled, possibly carrying '?' parameter slots
/// bound per execution via BindPlanParameters) or the parsed AST plus the
/// reason the oracle interpreter must run it. Immutable once published;
/// any number of sessions execute one entry concurrently.
struct CompiledStatement {
  CompileInfo info;
  std::shared_ptr<const sql::SqlQuery> ast;  // unbound statement template
  size_t param_count = 0;                    // '?' slots in the statement
};

/// An immutable catalog state at one version. Sessions pin a snapshot per
/// statement (and cursors pin it for their lifetime), so DDL publishing a
/// newer version never pulls storage out from under a running query.
class CatalogSnapshot {
 public:
  const Catalog& catalog() const { return catalog_; }
  uint64_t version() const { return version_; }
  /// Lazily-harvested per-table statistics feeding the optimizer's cost
  /// model (opt/stats.hpp), shared by every compile pinned to this
  /// snapshot. Versions with the data: DDL publishes a new snapshot with
  /// a fresh, empty cache, so estimates never reflect replaced contents.
  const StatsCache& stats() const { return *stats_; }

 private:
  friend class Database;
  Catalog catalog_;
  uint64_t version_ = 0;
  std::shared_ptr<StatsCache> stats_ = std::make_shared<StatsCache>();
};

using SnapshotPtr = std::shared_ptr<const CatalogSnapshot>;

struct PlanCacheStats {
  size_t hits = 0;         // lookups served from the cache
  size_t misses = 0;       // lookups that found nothing usable
  size_t compiles = 0;     // entries built (one full lower→rewrite each)
  size_t invalidated = 0;  // entries dropped by DDL or staleness checks
  size_t entries = 0;      // current cache size
  size_t shards = 0;       // shard count the cache is split across
  size_t contended = 0;    // shard-lock acquisitions that had to block
};

/// Counters of the cost-guided optimizer (docs/optimizer.md), aggregated
/// over cache-miss compiles and oracle-fallback executions.
struct OptimizerStats {
  /// Rewrite applications per rule name, over every compiled statement
  /// (budget markers are not rules and are not counted here).
  std::map<std::string, uint64_t> law_fires;
  /// Oracle-interpreter executions per lowering refusal reason.
  std::map<std::string, uint64_t> fallback_reasons;
  uint64_t searched_compiles = 0;  // compiles that ran the memo search
  uint64_t budget_exhausted = 0;   // compiles a budget truncated
};

/// One aggregate observability call (Database::Stats()): every subsystem's
/// counters in one consistent-enough snapshot (each group is internally
/// consistent; groups are read one after another without a global lock).
struct DatabaseStats {
  uint64_t snapshot_version = 0;  // current published catalog version
  PlanCacheStats plan_cache;
  AdmissionStats admission;
  RecyclerStats recycler;         // all zero when recycling is disabled
  TransactionStats transactions;
  OptimizerStats optimizer;
};

/// One table's worth of a transaction's private write set, as handed to
/// Database::CommitWriteSet: the table's full new contents plus the data
/// version (Catalog::DataVersion) the transaction's pinned snapshot held
/// for it. Commit publishes `rows` only if the live catalog still agrees
/// with `base_version` — first committer wins.
struct WriteSetEntry {
  std::string table;
  uint64_t base_version = 0;
  std::shared_ptr<const Relation> rows;
};

class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const DatabaseOptions& options() const { return options_; }

  // ---- DDL: copy-on-write snapshot publication (thread-safe) ----
  // Writers serialize on a DDL mutex, build the next snapshot from the
  // current one, and publish it atomically; concurrent readers keep the
  // snapshot they pinned. Each returns an error Status instead of throwing.
  Status CreateTable(const std::string& name, Relation rows);
  Status CreateTable(const std::string& name, const std::string& schema_spec);
  Status InsertRows(const std::string& name, const std::vector<Tuple>& rows);
  Status LoadCsv(const std::string& name, const std::string& csv_text);
  Status LoadCsvFile(const std::string& name, const std::string& path);
  Status DeclareKey(const std::string& table, const std::vector<std::string>& attrs);
  Status DeclareForeignKey(const std::string& from_table,
                           const std::vector<std::string>& attrs,
                           const std::string& to_table);
  Status DeclareDisjoint(const std::string& table1, const std::string& table2,
                         const std::vector<std::string>& attrs);

  /// The current published snapshot; never null.
  SnapshotPtr snapshot() const;
  /// Version of the current snapshot (0 = freshly constructed, empty).
  uint64_t version() const { return snapshot()->version(); }

  // ---- transactions (api/txn.hpp drives this; docs/transactions.md) ----
  /// Validates and publishes a transaction's write set under the DDL writer
  /// mutex, first-committer-wins: if any entry's table has a newer data
  /// version than `base_version` (another commit or DDL landed after the
  /// transaction pinned its snapshot), nothing publishes and the call
  /// returns StatusCode::kConflict. On success the write set publishes
  /// through the same atomic snapshot path as DDL — per-table versions
  /// bump, stale plan-cache entries sweep, and recycler artifacts over the
  /// written tables invalidate. Fault sites: "txn.validate" before the
  /// version check, "txn.publish" after it (plus the shared
  /// "snapshot.publish" inside publication).
  Status CommitWriteSet(const std::vector<WriteSetEntry>& writes);
  /// Transaction lifecycle tallies for Stats(); Sessions report BEGIN and
  /// explicit ROLLBACK, CommitWriteSet counts commits and conflicts itself.
  void NoteTransactionBegin() { txn_begun_.fetch_add(1, std::memory_order_relaxed); }
  void NoteTransactionRollback() {
    txn_rolled_back_.fetch_add(1, std::memory_order_relaxed);
  }
  TransactionStats transaction_stats() const;

  // ---- optimizer observability (docs/optimizer.md) ----
  /// Tallies one cache-miss compile: per-law fire counts from the applied
  /// rewrite trace, search participation, and budget truncation. Cache
  /// hits do not re-count — the tallies measure optimizer work performed,
  /// not statement executions.
  void NoteCompile(const CompileInfo& info);
  /// Tallies one execution the oracle interpreter ran instead of the
  /// compiled engine, keyed by the lowering's refusal reason.
  void NoteFallbackExecution(const std::string& reason);
  OptimizerStats optimizer_stats() const;

  /// Every subsystem's counters in one call (docs/api.md example).
  DatabaseStats Stats() const;

  // ---- shared plan cache ----
  /// Returns the cached entry for `key` as seen from a statement pinned at
  /// `pinned_version`, or nullptr. An entry is served only while every
  /// base table it references is unchanged since the snapshot it was
  /// compiled against (stale entries are dropped here), and never to a
  /// statement pinned BEFORE the entry's compile snapshot — a plan
  /// compiled against a newer catalog must not run on an older one.
  std::shared_ptr<const CompiledStatement> CacheLookup(const std::string& key,
                                                       uint64_t pinned_version);
  /// Publishes a compiled statement. `version` is the snapshot version the
  /// entry was compiled against and `tables` its invalidation domain; an
  /// entry already stale at insert time (DDL raced the compile) is
  /// discarded rather than published.
  void CacheInsert(const std::string& key,
                   std::shared_ptr<const CompiledStatement> compiled, uint64_t version,
                   std::vector<std::string> tables);

  size_t plan_cache_size() const;
  PlanCacheStats plan_cache_stats() const;
  void ClearPlanCache();

  // ---- artifact recycler ----
  /// The shared build-state cache; null when recycler_memory_bytes is 0.
  /// The planner threads this into PlannerOptions so blocking sinks can
  /// adopt cached builds (exec/recycler.hpp).
  const std::shared_ptr<ArtifactRecycler>& recycler() const { return recycler_; }
  /// Aggregate recycler counters (all zero when recycling is disabled).
  RecyclerStats recycler_stats() const;
  /// Drops every cached artifact (benchmarks' cold-start reset).
  void ClearRecycler();

  // ---- admission control ----
  /// Claims `bytes` of the database-wide admission budget for one
  /// statement. Returns immediately when the budget is disabled, `bytes`
  /// is zero, or the grant fits; otherwise waits in FIFO ticket order,
  /// polling `ctx` so a queued statement still honors Cancel() and its
  /// deadline. Errors (never partial grants): kResourceExhausted when
  /// `bytes` exceeds the whole budget, when the wait queue is full, or
  /// when the deadline expires while queued ("queued, timed out");
  /// the context's own trip status when cancelled while queued.
  Status AdmitQuery(size_t bytes, QueryContext* ctx);
  /// Returns a grant taken by AdmitQuery and wakes waiters. Called by the
  /// statement's QueryContext destructor via SetAdmissionRelease.
  void ReleaseAdmission(size_t bytes);
  AdmissionStats admission_stats() const;

 private:
  struct CacheSlot {
    std::string key;
    std::shared_ptr<const CompiledStatement> compiled;
    uint64_t version;                  // snapshot version compiled against
    std::vector<std::string> tables;   // referenced base tables
    uint64_t stamp = 0;                // global LRU clock at last use
  };
  using CacheList = std::list<CacheSlot>;
  /// One lock's worth of the plan cache. Keys hash-partition across
  /// shards; each shard keeps its own recency list (front = most recent),
  /// and the global eviction order falls out of the per-slot stamps.
  struct CacheShard {
    mutable std::mutex mutex;
    CacheList lru;
    std::unordered_map<std::string, CacheList::iterator> index;
    // Per-shard tallies, summed by plan_cache_stats(). The entries /
    // shards / contended fields of this embedded struct are unused.
    PlanCacheStats stats;
  };
  static constexpr size_t kCacheShards = 8;

  /// Copy-on-write DDL driver: copies the current catalog, applies
  /// `mutate`, publishes the result as version+1, and invalidates cached
  /// plans referencing `touched`.
  Status Ddl(const std::vector<std::string>& touched,
             const std::function<void(Catalog&)>& mutate);
  /// The shared publish tail of Ddl and CommitWriteSet: copy-mutate-publish
  /// with cache/recycler invalidation. Caller must hold ddl_mutex_.
  Status PublishLocked(const std::vector<std::string>& touched,
                       const std::function<void(Catalog&)>& mutate);
  /// True when a referenced table changed after the slot was compiled.
  /// Takes versions_mutex_ internally; callers may hold a shard mutex
  /// (lock order: shard before versions, never the reverse).
  bool SlotIsStale(const CacheSlot& slot) const;
  CacheShard& ShardFor(const std::string& key) const {
    return cache_shards_[std::hash<std::string>{}(key) % kCacheShards];
  }
  /// Locks a shard, counting the acquisition as contended when it blocks.
  std::unique_lock<std::mutex> LockShard(CacheShard& shard) const;
  /// Evicts globally least-recently-used slots (by stamp, across shards,
  /// one lock at a time) until the entry total fits the capacity.
  void EnforceCacheCapacity();

  DatabaseOptions options_;
  std::mutex ddl_mutex_;            // serializes writers
  mutable std::mutex state_mutex_;  // guards snapshot_ publication
  SnapshotPtr snapshot_;

  mutable std::array<CacheShard, kCacheShards> cache_shards_;
  std::atomic<uint64_t> cache_clock_{0};     // global LRU recency stamps
  std::atomic<size_t> cache_entries_{0};     // slots across all shards
  mutable std::atomic<size_t> cache_contended_{0};

  mutable std::mutex versions_mutex_;  // guards table_versions_
  // Last DDL version per table. Never pruned, but bounded: there is no
  // Drop API, so every name ever DDL'd is a live catalog table and this
  // map stays ⊆ the catalog's name set. Shared by all cache shards.
  std::unordered_map<std::string, uint64_t> table_versions_;

  std::shared_ptr<ArtifactRecycler> recycler_;  // null = disabled

  // Transaction tallies (TransactionStats). Plain counters: hot paths touch
  // them once per transaction, not per row.
  std::atomic<uint64_t> txn_begun_{0};
  std::atomic<uint64_t> txn_committed_{0};
  std::atomic<uint64_t> txn_conflicts_{0};
  std::atomic<uint64_t> txn_rolled_back_{0};

  mutable std::mutex optimizer_mutex_;  // guards optimizer_stats_
  OptimizerStats optimizer_stats_;

  mutable std::mutex admission_mutex_;  // guards everything below
  std::condition_variable admission_cv_;
  size_t admission_in_use_ = 0;         // granted bytes
  uint64_t admission_next_ticket_ = 1;  // FIFO order of waiters
  // Waiting tickets, ordered; the smallest ticket has the next turn. A
  // waiter that gives up (cancel/deadline/queue rejection) erases its
  // ticket, so an abandoned turn can never wedge the queue.
  std::set<uint64_t> admission_queue_;
  AdmissionStats admission_stats_;
};

}  // namespace quotient
