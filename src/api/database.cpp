#include "api/database.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <string>
#include <utility>

#include "exec/query_context.hpp"
#include "util/csv.hpp"

namespace quotient {

namespace {

/// CI/bench override: QUOTIENT_RECYCLER=<bytes> replaces the configured
/// recycler budget for every Database constructed in the process ("0"
/// disables recycling), mirroring QUOTIENT_SPILL_WATERMARK (session.cpp).
size_t RecyclerBudget(size_t configured) {
  static const char* env = std::getenv("QUOTIENT_RECYCLER");
  if (env == nullptr) return configured;
  return static_cast<size_t>(std::strtoull(env, nullptr, 10));
}

std::vector<std::string> TablesOf(const std::vector<WriteSetEntry>& writes) {
  std::vector<std::string> tables;
  tables.reserve(writes.size());
  for (const WriteSetEntry& write : writes) tables.push_back(write.table);
  return tables;
}

}  // namespace

Database::Database(DatabaseOptions options) : options_(options) {
  snapshot_ = std::make_shared<CatalogSnapshot>();
  options_.recycler_memory_bytes = RecyclerBudget(options_.recycler_memory_bytes);
  if (options_.recycler_memory_bytes > 0) {
    recycler_ = std::make_shared<ArtifactRecycler>(options_.recycler_memory_bytes);
  }
}

SnapshotPtr Database::snapshot() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return snapshot_;
}

Status Database::Ddl(const std::vector<std::string>& touched,
                     const std::function<void(Catalog&)>& mutate) {
  std::lock_guard<std::mutex> ddl(ddl_mutex_);
  return PublishLocked(touched, mutate);
}

Status Database::PublishLocked(const std::vector<std::string>& touched,
                               const std::function<void(Catalog&)>& mutate) {
  auto next = std::make_shared<CatalogSnapshot>();
  try {
    SnapshotPtr current = snapshot();
    next->catalog_ = current->catalog();  // O(#tables): storage is shared
    next->version_ = current->version() + 1;
    mutate(next->catalog_);
    // Fault site: a DDL failing here leaves the previous snapshot published
    // and the cache untouched — the sweep test proves publication is atomic.
    GovernorFaultPoint("snapshot.publish");
  } catch (const QueryAbort& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
  uint64_t version = next->version();
  // Invalidate by touched table, not by clearing: bump the tables' versions
  // and sweep their entries eagerly so plans over unrelated tables keep
  // hitting. This happens BEFORE the snapshot publishes: a statement that
  // pins the new version can never find an entry over a touched table that
  // is not yet marked stale (the compile-vs-DDL race the slot versions
  // close; a compile racing this bump is caught by the staleness re-check
  // in CacheInsert).
  {
    std::lock_guard<std::mutex> versions(versions_mutex_);
    for (const std::string& table : touched) table_versions_[table] = version;
  }
  for (CacheShard& shard : cache_shards_) {
    std::unique_lock<std::mutex> lock = LockShard(shard);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (SlotIsStale(*it)) {
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++shard.stats.invalidated;
        cache_entries_.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
  // Recycler entries key on table data versions, so stale artifacts stop
  // being addressable the moment the new snapshot publishes; this sweep
  // just reclaims their memory promptly.
  if (recycler_) recycler_->InvalidateTables(touched);
  std::lock_guard<std::mutex> state(state_mutex_);
  snapshot_ = std::move(next);
  return Status::Ok();
}

Status Database::CommitWriteSet(const std::vector<WriteSetEntry>& writes) {
  if (writes.empty()) {
    // An empty write set has nothing to validate or publish: a read-only
    // transaction always commits.
    txn_committed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  std::lock_guard<std::mutex> ddl(ddl_mutex_);
  try {
    // Fault site: a trip here models losing the commit before validation —
    // nothing published, nothing counted as a conflict.
    GovernorFaultPoint("txn.validate");
    // First-committer-wins validation under the writer mutex: the pinned
    // data version of every written table must still be the live one.
    SnapshotPtr current = snapshot();
    for (const WriteSetEntry& write : writes) {
      uint64_t live = current->catalog().DataVersion(write.table);
      if (live != write.base_version) {
        txn_conflicts_.fetch_add(1, std::memory_order_relaxed);
        return Status::Conflict(
            "write-write conflict on table '" + write.table +
            "': committed by another transaction after this one began "
            "(pinned data version " + std::to_string(write.base_version) +
            ", live " + std::to_string(live) + ")");
      }
    }
    // Fault site: a trip here models losing the commit after validation
    // won but before publication — still atomic, still nothing published.
    GovernorFaultPoint("txn.publish");
  } catch (const QueryAbort& e) {
    return e.status();
  }
  Status status = PublishLocked(TablesOf(writes), [&](Catalog& catalog) {
    for (const WriteSetEntry& write : writes) catalog.Put(write.table, write.rows);
  });
  if (status.ok()) txn_committed_.fetch_add(1, std::memory_order_relaxed);
  return status;
}

TransactionStats Database::transaction_stats() const {
  TransactionStats stats;
  stats.begun = txn_begun_.load(std::memory_order_relaxed);
  stats.committed = txn_committed_.load(std::memory_order_relaxed);
  stats.conflicts = txn_conflicts_.load(std::memory_order_relaxed);
  stats.rolled_back = txn_rolled_back_.load(std::memory_order_relaxed);
  return stats;
}

void Database::NoteCompile(const CompileInfo& info) {
  std::lock_guard<std::mutex> lock(optimizer_mutex_);
  for (const RewriteStep& step : info.rewrites) {
    // Trace markers (e.g. the budget-exhausted sentinel) are parenthesized
    // so they are distinguishable from rule names here.
    if (!step.rule.empty() && step.rule.front() == '(') continue;
    ++optimizer_stats_.law_fires[step.rule];
  }
  if (info.search_candidates > 0) ++optimizer_stats_.searched_compiles;
  if (info.rewrite_budget_exhausted) ++optimizer_stats_.budget_exhausted;
}

void Database::NoteFallbackExecution(const std::string& reason) {
  std::lock_guard<std::mutex> lock(optimizer_mutex_);
  ++optimizer_stats_.fallback_reasons[reason.empty() ? "(unspecified)" : reason];
}

OptimizerStats Database::optimizer_stats() const {
  std::lock_guard<std::mutex> lock(optimizer_mutex_);
  return optimizer_stats_;
}

DatabaseStats Database::Stats() const {
  DatabaseStats stats;
  stats.snapshot_version = version();
  stats.plan_cache = plan_cache_stats();
  stats.admission = admission_stats();
  stats.recycler = recycler_stats();
  stats.transactions = transaction_stats();
  stats.optimizer = optimizer_stats();
  return stats;
}

Status Database::CreateTable(const std::string& name, Relation rows) {
  return Ddl({name}, [&](Catalog& catalog) { catalog.Put(name, std::move(rows)); });
}

Status Database::CreateTable(const std::string& name, const std::string& schema_spec) {
  try {
    return CreateTable(name, Relation(Schema::Parse(schema_spec)));
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
}

Status Database::InsertRows(const std::string& name, const std::vector<Tuple>& rows) {
  return Ddl({name}, [&](Catalog& catalog) {
    if (!catalog.Has(name)) {
      throw SchemaError("unknown table '" + name + "' (CreateTable first)");
    }
    Relation updated = catalog.Get(name);  // copy of this one table only
    for (const Tuple& tuple : rows) updated.Insert(tuple);
    catalog.Put(name, std::move(updated));
  });
}

Status Database::LoadCsv(const std::string& name, const std::string& csv_text) {
  Result<Relation> parsed = RelationFromCsv(csv_text);
  if (!parsed.ok()) return parsed.status();
  return CreateTable(name, std::move(parsed).value());
}

Status Database::LoadCsvFile(const std::string& name, const std::string& path) {
  Result<Relation> parsed = ReadCsvFile(path);
  if (!parsed.ok()) return parsed.status();
  return CreateTable(name, std::move(parsed).value());
}

Status Database::DeclareKey(const std::string& table, const std::vector<std::string>& attrs) {
  return Ddl({table}, [&](Catalog& catalog) { catalog.DeclareKey(table, attrs); });
}

Status Database::DeclareForeignKey(const std::string& from_table,
                                   const std::vector<std::string>& attrs,
                                   const std::string& to_table) {
  return Ddl({from_table, to_table}, [&](Catalog& catalog) {
    catalog.DeclareForeignKey(from_table, attrs, to_table);
  });
}

Status Database::DeclareDisjoint(const std::string& table1, const std::string& table2,
                                 const std::vector<std::string>& attrs) {
  return Ddl({table1, table2}, [&](Catalog& catalog) {
    catalog.DeclareDisjoint(table1, table2, attrs);
  });
}

bool Database::SlotIsStale(const CacheSlot& slot) const {
  std::lock_guard<std::mutex> lock(versions_mutex_);
  for (const std::string& table : slot.tables) {
    auto it = table_versions_.find(table);
    if (it != table_versions_.end() && it->second > slot.version) return true;
  }
  return false;
}

std::unique_lock<std::mutex> Database::LockShard(CacheShard& shard) const {
  std::unique_lock<std::mutex> lock(shard.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    cache_contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

std::shared_ptr<const CompiledStatement> Database::CacheLookup(const std::string& key,
                                                               uint64_t pinned_version) {
  CacheShard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock = LockShard(shard);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  if (SlotIsStale(*it->second)) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.stats.invalidated;
    ++shard.stats.misses;
    cache_entries_.fetch_sub(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second->version > pinned_version) {
    // Compiled against a snapshot this statement has not pinned yet (a
    // racing DDL + recompile published it between our Pin and this
    // lookup). The entry is valid for everyone at the newer version, so
    // keep it; this statement compiles privately against its own snapshot.
    ++shard.stats.misses;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  shard.lru.front().stamp = cache_clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  ++shard.stats.hits;
  return shard.lru.front().compiled;
}

void Database::CacheInsert(const std::string& key,
                           std::shared_ptr<const CompiledStatement> compiled,
                           uint64_t version, std::vector<std::string> tables) {
  CacheShard& shard = ShardFor(key);
  bool inserted = false;
  {
    std::unique_lock<std::mutex> lock = LockShard(shard);
    ++shard.stats.compiles;
    if (options_.plan_cache_capacity == 0) return;
    CacheSlot slot{key, std::move(compiled), version, std::move(tables),
                   cache_clock_.fetch_add(1, std::memory_order_relaxed) + 1};
    // A DDL that raced this compile already bumped its tables' versions;
    // don't publish an entry that is stale on arrival.
    if (SlotIsStale(slot)) return;
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // A racing session compiled the same statement; keep the fresher
      // entry.
      if (it->second->version >= version) return;
      shard.lru.erase(it->second);
      shard.index.erase(it);
      cache_entries_.fetch_sub(1, std::memory_order_relaxed);
    }
    shard.lru.push_front(std::move(slot));
    shard.index[key] = shard.lru.begin();
    cache_entries_.fetch_add(1, std::memory_order_relaxed);
    inserted = true;
  }
  // Enforce the GLOBAL capacity outside the shard lock: the victim may
  // live in any shard, and eviction locks shards one at a time.
  if (inserted) EnforceCacheCapacity();
}

void Database::EnforceCacheCapacity() {
  const size_t capacity = options_.plan_cache_capacity;
  while (cache_entries_.load(std::memory_order_relaxed) > capacity) {
    // Pass 1: find the globally oldest stamp. Each shard's list is in
    // recency order, so its back is that shard's candidate.
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    size_t victim = kCacheShards;
    for (size_t i = 0; i < kCacheShards; ++i) {
      std::lock_guard<std::mutex> lock(cache_shards_[i].mutex);
      if (!cache_shards_[i].lru.empty() && cache_shards_[i].lru.back().stamp < oldest) {
        oldest = cache_shards_[i].lru.back().stamp;
        victim = i;
      }
    }
    if (victim == kCacheShards) return;  // raced to empty
    // Pass 2: re-lock the victim shard and evict its back if it is still
    // the slot we found (a racing hit may have promoted it — then retry).
    CacheShard& shard = cache_shards_[victim];
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.lru.empty() || shard.lru.back().stamp != oldest) continue;
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    cache_entries_.fetch_sub(1, std::memory_order_relaxed);
  }
}

size_t Database::plan_cache_size() const {
  return cache_entries_.load(std::memory_order_relaxed);
}

PlanCacheStats Database::plan_cache_stats() const {
  PlanCacheStats stats;
  for (CacheShard& shard : cache_shards_) {
    std::unique_lock<std::mutex> lock = LockShard(shard);
    stats.hits += shard.stats.hits;
    stats.misses += shard.stats.misses;
    stats.compiles += shard.stats.compiles;
    stats.invalidated += shard.stats.invalidated;
  }
  stats.entries = cache_entries_.load(std::memory_order_relaxed);
  stats.shards = kCacheShards;
  stats.contended = cache_contended_.load(std::memory_order_relaxed);
  return stats;
}

void Database::ClearPlanCache() {
  for (CacheShard& shard : cache_shards_) {
    std::unique_lock<std::mutex> lock = LockShard(shard);
    cache_entries_.fetch_sub(shard.lru.size(), std::memory_order_relaxed);
    shard.lru.clear();
    shard.index.clear();
  }
}

RecyclerStats Database::recycler_stats() const {
  if (!recycler_) return RecyclerStats{};
  return recycler_->stats();
}

void Database::ClearRecycler() {
  if (recycler_) recycler_->Clear();
}

Status Database::AdmitQuery(size_t bytes, QueryContext* ctx) {
  const size_t total = options_.admission_memory_bytes;
  if (total == 0 || bytes == 0) return Status::Ok();
  if (bytes > total) {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    ++admission_stats_.rejected;
    return Status::ResourceExhausted(
        "statement memory budget (" + std::to_string(bytes) +
        " bytes) exceeds the database admission budget (" + std::to_string(total) +
        " bytes)");
  }
  std::unique_lock<std::mutex> lock(admission_mutex_);
  // Fast path: fits and nobody queued ahead of us.
  if (admission_queue_.empty() && admission_in_use_ + bytes <= total) {
    admission_in_use_ += bytes;
    ++admission_stats_.admitted;
    admission_stats_.in_use_bytes = admission_in_use_;
    return Status::Ok();
  }
  if (admission_queue_.size() >= options_.admission_max_queue) {
    ++admission_stats_.rejected;
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(options_.admission_max_queue) +
        " statements waiting)");
  }
  const uint64_t ticket = admission_next_ticket_++;
  admission_queue_.insert(ticket);
  ++admission_stats_.queued;
  admission_stats_.waiting = admission_queue_.size();
  // Wait in ticket order, polling so a queued statement still honors its
  // governor: Cancel() and the deadline must reach a statement that has
  // not started executing yet. The erase-on-exit discipline (every path
  // below removes `ticket`) keeps an abandoned turn from wedging later
  // waiters.
  while (true) {
    const bool my_turn = *admission_queue_.begin() == ticket;
    if (my_turn && admission_in_use_ + bytes <= total) {
      admission_queue_.erase(ticket);
      admission_in_use_ += bytes;
      ++admission_stats_.admitted;
      admission_stats_.in_use_bytes = admission_in_use_;
      admission_stats_.waiting = admission_queue_.size();
      admission_cv_.notify_all();  // the next ticket may also fit
      return Status::Ok();
    }
    if (ctx != nullptr && ctx->Aborted()) {
      admission_queue_.erase(ticket);
      ++admission_stats_.timed_out;
      admission_stats_.waiting = admission_queue_.size();
      admission_cv_.notify_all();
      return ctx->TripStatus();
    }
    if (ctx != nullptr && ctx->has_deadline() &&
        std::chrono::steady_clock::now() >= ctx->deadline()) {
      admission_queue_.erase(ticket);
      ++admission_stats_.timed_out;
      admission_stats_.waiting = admission_queue_.size();
      admission_cv_.notify_all();
      return Status::ResourceExhausted("admission queued, timed out waiting for " +
                                       std::to_string(bytes) + " bytes");
    }
    // Bounded wait: cancellation has no hook into this condvar, so poll.
    admission_cv_.wait_for(lock, std::chrono::milliseconds(5));
  }
}

void Database::ReleaseAdmission(size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    admission_in_use_ -= std::min(bytes, admission_in_use_);
    admission_stats_.in_use_bytes = admission_in_use_;
  }
  admission_cv_.notify_all();
}

AdmissionStats Database::admission_stats() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  return admission_stats_;
}

}  // namespace quotient
