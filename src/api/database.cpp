#include "api/database.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "exec/query_context.hpp"
#include "util/csv.hpp"

namespace quotient {

Database::Database(DatabaseOptions options) : options_(options) {
  snapshot_ = std::make_shared<CatalogSnapshot>();
}

SnapshotPtr Database::snapshot() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return snapshot_;
}

Status Database::Ddl(const std::vector<std::string>& touched,
                     const std::function<void(Catalog&)>& mutate) {
  std::lock_guard<std::mutex> ddl(ddl_mutex_);
  auto next = std::make_shared<CatalogSnapshot>();
  try {
    SnapshotPtr current = snapshot();
    next->catalog_ = current->catalog();  // O(#tables): storage is shared
    next->version_ = current->version() + 1;
    mutate(next->catalog_);
    // Fault site: a DDL failing here leaves the previous snapshot published
    // and the cache untouched — the sweep test proves publication is atomic.
    GovernorFaultPoint("snapshot.publish");
  } catch (const QueryAbort& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
  uint64_t version = next->version();
  // Invalidate by touched table, not by clearing: bump the tables' versions
  // and sweep their entries eagerly so plans over unrelated tables keep
  // hitting. This happens BEFORE the snapshot publishes: a statement that
  // pins the new version can never find an entry over a touched table that
  // is not yet marked stale (the compile-vs-DDL race the slot versions
  // close; a compile racing this bump is caught by the staleness re-check
  // in CacheInsert).
  {
    std::lock_guard<std::mutex> cache(cache_mutex_);
    for (const std::string& table : touched) table_versions_[table] = version;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (SlotIsStale(*it)) {
        index_.erase(it->key);
        it = lru_.erase(it);
        ++stats_.invalidated;
      } else {
        ++it;
      }
    }
  }
  std::lock_guard<std::mutex> state(state_mutex_);
  snapshot_ = std::move(next);
  return Status::Ok();
}

Status Database::CreateTable(const std::string& name, Relation rows) {
  return Ddl({name}, [&](Catalog& catalog) { catalog.Put(name, std::move(rows)); });
}

Status Database::CreateTable(const std::string& name, const std::string& schema_spec) {
  try {
    return CreateTable(name, Relation(Schema::Parse(schema_spec)));
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
}

Status Database::InsertRows(const std::string& name, const std::vector<Tuple>& rows) {
  return Ddl({name}, [&](Catalog& catalog) {
    if (!catalog.Has(name)) {
      throw SchemaError("unknown table '" + name + "' (CreateTable first)");
    }
    Relation updated = catalog.Get(name);  // copy of this one table only
    for (const Tuple& tuple : rows) updated.Insert(tuple);
    catalog.Put(name, std::move(updated));
  });
}

Status Database::LoadCsv(const std::string& name, const std::string& csv_text) {
  Result<Relation> parsed = RelationFromCsv(csv_text);
  if (!parsed.ok()) return parsed.status();
  return CreateTable(name, std::move(parsed).value());
}

Status Database::LoadCsvFile(const std::string& name, const std::string& path) {
  Result<Relation> parsed = ReadCsvFile(path);
  if (!parsed.ok()) return parsed.status();
  return CreateTable(name, std::move(parsed).value());
}

Status Database::DeclareKey(const std::string& table, const std::vector<std::string>& attrs) {
  return Ddl({table}, [&](Catalog& catalog) { catalog.DeclareKey(table, attrs); });
}

Status Database::DeclareForeignKey(const std::string& from_table,
                                   const std::vector<std::string>& attrs,
                                   const std::string& to_table) {
  return Ddl({from_table, to_table}, [&](Catalog& catalog) {
    catalog.DeclareForeignKey(from_table, attrs, to_table);
  });
}

Status Database::DeclareDisjoint(const std::string& table1, const std::string& table2,
                                 const std::vector<std::string>& attrs) {
  return Ddl({table1, table2}, [&](Catalog& catalog) {
    catalog.DeclareDisjoint(table1, table2, attrs);
  });
}

bool Database::SlotIsStale(const CacheSlot& slot) const {
  for (const std::string& table : slot.tables) {
    auto it = table_versions_.find(table);
    if (it != table_versions_.end() && it->second > slot.version) return true;
  }
  return false;
}

std::shared_ptr<const CompiledStatement> Database::CacheLookup(const std::string& key,
                                                               uint64_t pinned_version) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (SlotIsStale(*it->second)) {
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidated;
    ++stats_.misses;
    return nullptr;
  }
  if (it->second->version > pinned_version) {
    // Compiled against a snapshot this statement has not pinned yet (a
    // racing DDL + recompile published it between our Pin and this
    // lookup). The entry is valid for everyone at the newer version, so
    // keep it; this statement compiles privately against its own snapshot.
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return lru_.front().compiled;
}

void Database::CacheInsert(const std::string& key,
                           std::shared_ptr<const CompiledStatement> compiled,
                           uint64_t version, std::vector<std::string> tables) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++stats_.compiles;
  if (options_.plan_cache_capacity == 0) return;
  CacheSlot slot{key, std::move(compiled), version, std::move(tables)};
  // A DDL that raced this compile already bumped its tables' versions;
  // don't publish an entry that is stale on arrival.
  if (SlotIsStale(slot)) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A racing session compiled the same statement; keep the fresher entry.
    if (it->second->version >= version) return;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(std::move(slot));
  index_[key] = lru_.begin();
  while (lru_.size() > options_.plan_cache_capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

size_t Database::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return lru_.size();
}

PlanCacheStats Database::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  PlanCacheStats stats = stats_;
  stats.entries = lru_.size();
  return stats;
}

void Database::ClearPlanCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  lru_.clear();
  index_.clear();
}

Status Database::AdmitQuery(size_t bytes, QueryContext* ctx) {
  const size_t total = options_.admission_memory_bytes;
  if (total == 0 || bytes == 0) return Status::Ok();
  if (bytes > total) {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    ++admission_stats_.rejected;
    return Status::ResourceExhausted(
        "statement memory budget (" + std::to_string(bytes) +
        " bytes) exceeds the database admission budget (" + std::to_string(total) +
        " bytes)");
  }
  std::unique_lock<std::mutex> lock(admission_mutex_);
  // Fast path: fits and nobody queued ahead of us.
  if (admission_queue_.empty() && admission_in_use_ + bytes <= total) {
    admission_in_use_ += bytes;
    ++admission_stats_.admitted;
    admission_stats_.in_use_bytes = admission_in_use_;
    return Status::Ok();
  }
  if (admission_queue_.size() >= options_.admission_max_queue) {
    ++admission_stats_.rejected;
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(options_.admission_max_queue) +
        " statements waiting)");
  }
  const uint64_t ticket = admission_next_ticket_++;
  admission_queue_.insert(ticket);
  ++admission_stats_.queued;
  admission_stats_.waiting = admission_queue_.size();
  // Wait in ticket order, polling so a queued statement still honors its
  // governor: Cancel() and the deadline must reach a statement that has
  // not started executing yet. The erase-on-exit discipline (every path
  // below removes `ticket`) keeps an abandoned turn from wedging later
  // waiters.
  while (true) {
    const bool my_turn = *admission_queue_.begin() == ticket;
    if (my_turn && admission_in_use_ + bytes <= total) {
      admission_queue_.erase(ticket);
      admission_in_use_ += bytes;
      ++admission_stats_.admitted;
      admission_stats_.in_use_bytes = admission_in_use_;
      admission_stats_.waiting = admission_queue_.size();
      admission_cv_.notify_all();  // the next ticket may also fit
      return Status::Ok();
    }
    if (ctx != nullptr && ctx->Aborted()) {
      admission_queue_.erase(ticket);
      ++admission_stats_.timed_out;
      admission_stats_.waiting = admission_queue_.size();
      admission_cv_.notify_all();
      return ctx->TripStatus();
    }
    if (ctx != nullptr && ctx->has_deadline() &&
        std::chrono::steady_clock::now() >= ctx->deadline()) {
      admission_queue_.erase(ticket);
      ++admission_stats_.timed_out;
      admission_stats_.waiting = admission_queue_.size();
      admission_cv_.notify_all();
      return Status::ResourceExhausted("admission queued, timed out waiting for " +
                                       std::to_string(bytes) + " bytes");
    }
    // Bounded wait: cancellation has no hook into this condvar, so poll.
    admission_cv_.wait_for(lock, std::chrono::milliseconds(5));
  }
}

void Database::ReleaseAdmission(size_t bytes) {
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    admission_in_use_ -= std::min(bytes, admission_in_use_);
    admission_stats_.in_use_bytes = admission_in_use_;
  }
  admission_cv_.notify_all();
}

AdmissionStats Database::admission_stats() const {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  return admission_stats_;
}

}  // namespace quotient
