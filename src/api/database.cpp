#include "api/database.hpp"

#include <utility>

#include "exec/query_context.hpp"
#include "util/csv.hpp"

namespace quotient {

Database::Database(DatabaseOptions options) : options_(options) {
  snapshot_ = std::make_shared<CatalogSnapshot>();
}

SnapshotPtr Database::snapshot() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return snapshot_;
}

Status Database::Ddl(const std::vector<std::string>& touched,
                     const std::function<void(Catalog&)>& mutate) {
  std::lock_guard<std::mutex> ddl(ddl_mutex_);
  auto next = std::make_shared<CatalogSnapshot>();
  try {
    SnapshotPtr current = snapshot();
    next->catalog_ = current->catalog();  // O(#tables): storage is shared
    next->version_ = current->version() + 1;
    mutate(next->catalog_);
    // Fault site: a DDL failing here leaves the previous snapshot published
    // and the cache untouched — the sweep test proves publication is atomic.
    GovernorFaultPoint("snapshot.publish");
  } catch (const QueryAbort& e) {
    return e.status();
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
  uint64_t version = next->version();
  // Invalidate by touched table, not by clearing: bump the tables' versions
  // and sweep their entries eagerly so plans over unrelated tables keep
  // hitting. This happens BEFORE the snapshot publishes: a statement that
  // pins the new version can never find an entry over a touched table that
  // is not yet marked stale (the compile-vs-DDL race the slot versions
  // close; a compile racing this bump is caught by the staleness re-check
  // in CacheInsert).
  {
    std::lock_guard<std::mutex> cache(cache_mutex_);
    for (const std::string& table : touched) table_versions_[table] = version;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (SlotIsStale(*it)) {
        index_.erase(it->key);
        it = lru_.erase(it);
        ++stats_.invalidated;
      } else {
        ++it;
      }
    }
  }
  std::lock_guard<std::mutex> state(state_mutex_);
  snapshot_ = std::move(next);
  return Status::Ok();
}

Status Database::CreateTable(const std::string& name, Relation rows) {
  return Ddl({name}, [&](Catalog& catalog) { catalog.Put(name, std::move(rows)); });
}

Status Database::CreateTable(const std::string& name, const std::string& schema_spec) {
  try {
    return CreateTable(name, Relation(Schema::Parse(schema_spec)));
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
}

Status Database::InsertRows(const std::string& name, const std::vector<Tuple>& rows) {
  return Ddl({name}, [&](Catalog& catalog) {
    if (!catalog.Has(name)) {
      throw SchemaError("unknown table '" + name + "' (CreateTable first)");
    }
    Relation updated = catalog.Get(name);  // copy of this one table only
    for (const Tuple& tuple : rows) updated.Insert(tuple);
    catalog.Put(name, std::move(updated));
  });
}

Status Database::LoadCsv(const std::string& name, const std::string& csv_text) {
  Result<Relation> parsed = RelationFromCsv(csv_text);
  if (!parsed.ok()) return parsed.status();
  return CreateTable(name, std::move(parsed).value());
}

Status Database::LoadCsvFile(const std::string& name, const std::string& path) {
  Result<Relation> parsed = ReadCsvFile(path);
  if (!parsed.ok()) return parsed.status();
  return CreateTable(name, std::move(parsed).value());
}

Status Database::DeclareKey(const std::string& table, const std::vector<std::string>& attrs) {
  return Ddl({table}, [&](Catalog& catalog) { catalog.DeclareKey(table, attrs); });
}

Status Database::DeclareForeignKey(const std::string& from_table,
                                   const std::vector<std::string>& attrs,
                                   const std::string& to_table) {
  return Ddl({from_table, to_table}, [&](Catalog& catalog) {
    catalog.DeclareForeignKey(from_table, attrs, to_table);
  });
}

Status Database::DeclareDisjoint(const std::string& table1, const std::string& table2,
                                 const std::vector<std::string>& attrs) {
  return Ddl({table1, table2}, [&](Catalog& catalog) {
    catalog.DeclareDisjoint(table1, table2, attrs);
  });
}

bool Database::SlotIsStale(const CacheSlot& slot) const {
  for (const std::string& table : slot.tables) {
    auto it = table_versions_.find(table);
    if (it != table_versions_.end() && it->second > slot.version) return true;
  }
  return false;
}

std::shared_ptr<const CompiledStatement> Database::CacheLookup(const std::string& key,
                                                               uint64_t pinned_version) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (SlotIsStale(*it->second)) {
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidated;
    ++stats_.misses;
    return nullptr;
  }
  if (it->second->version > pinned_version) {
    // Compiled against a snapshot this statement has not pinned yet (a
    // racing DDL + recompile published it between our Pin and this
    // lookup). The entry is valid for everyone at the newer version, so
    // keep it; this statement compiles privately against its own snapshot.
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return lru_.front().compiled;
}

void Database::CacheInsert(const std::string& key,
                           std::shared_ptr<const CompiledStatement> compiled,
                           uint64_t version, std::vector<std::string> tables) {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++stats_.compiles;
  if (options_.plan_cache_capacity == 0) return;
  CacheSlot slot{key, std::move(compiled), version, std::move(tables)};
  // A DDL that raced this compile already bumped its tables' versions;
  // don't publish an entry that is stale on arrival.
  if (SlotIsStale(slot)) return;
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A racing session compiled the same statement; keep the fresher entry.
    if (it->second->version >= version) return;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(std::move(slot));
  index_[key] = lru_.begin();
  while (lru_.size() > options_.plan_cache_capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

size_t Database::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return lru_.size();
}

PlanCacheStats Database::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  PlanCacheStats stats = stats_;
  stats.entries = lru_.size();
  return stats;
}

void Database::ClearPlanCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace quotient
