#include "api/txn.hpp"

#include <utility>

namespace quotient {

Transaction::Transaction(SnapshotPtr snapshot) : snapshot_(std::move(snapshot)) {}

std::shared_ptr<const Catalog> Transaction::read_catalog() const {
  if (overlay_ != nullptr) return overlay_;
  // Aliasing handle: points at the snapshot's catalog, owns the snapshot.
  return std::shared_ptr<const Catalog>(snapshot_, &snapshot_->catalog());
}

const Catalog& Transaction::catalog() const {
  return overlay_ != nullptr ? *overlay_ : snapshot_->catalog();
}

Status Transaction::TouchTable(const std::string& table) {
  if (!snapshot_->catalog().Has(table)) {
    return Status::Error("unknown table '" + table + "' (CreateTable first)");
  }
  if (overlay_ == nullptr) {
    // O(#tables): relations and cached encodings stay shared until a Put
    // replaces them table by table.
    overlay_ = std::make_shared<Catalog>(snapshot_->catalog());
  }
  base_versions_.emplace(table, snapshot_->catalog().DataVersion(table));
  return Status::Ok();
}

Result<size_t> Transaction::Insert(const std::string& table, std::vector<Tuple> rows) {
  if (!snapshot_->catalog().Has(table)) {
    return Result<size_t>::Error("unknown table '" + table + "' (CreateTable first)");
  }
  const Relation& current = catalog().Get(table);
  // Bulk merge through the canonicalizing constructor (sort once) instead
  // of O(n) sorted inserts per row; it also type-checks the new rows.
  std::vector<Tuple> merged = current.tuples();
  merged.reserve(merged.size() + rows.size());
  for (Tuple& row : rows) merged.push_back(std::move(row));
  Relation updated;
  try {
    updated = Relation(current.schema(), std::move(merged));
  } catch (const std::exception& e) {
    return Result<size_t>::Error(e.what());
  }
  size_t added = updated.size() - current.size();
  Status touched = TouchTable(table);
  if (!touched.ok()) return Result<size_t>::Error(touched);
  overlay_->Put(table, std::move(updated));
  return added;
}

Result<size_t> Transaction::Replace(const std::string& table, Relation survivors) {
  if (!snapshot_->catalog().Has(table)) {
    return Result<size_t>::Error("unknown table '" + table + "' (CreateTable first)");
  }
  const Relation& current = catalog().Get(table);
  if (!(survivors.schema() == current.schema())) {
    try {
      survivors = survivors.Reorder(current.schema().Names());
    } catch (const std::exception& e) {
      return Result<size_t>::Error(std::string("DELETE survivors do not match table '") +
                                   table + "': " + e.what());
    }
  }
  size_t removed = current.size() - survivors.size();
  Status touched = TouchTable(table);
  if (!touched.ok()) return Result<size_t>::Error(touched);
  overlay_->Put(table, std::move(survivors));
  return removed;
}

std::vector<WriteSetEntry> Transaction::WriteSet() const {
  std::vector<WriteSetEntry> writes;
  writes.reserve(base_versions_.size());
  for (const auto& [table, base_version] : base_versions_) {
    writes.push_back(WriteSetEntry{table, base_version, overlay_->GetShared(table)});
  }
  return writes;
}

}  // namespace quotient
