#pragma once

// The engine's front door (docs/api.md): one Session object owns a catalog
// and compiles every SQL statement through the full stack the paper argues
// for — parse, lower to a logical plan with first-class division operators
// (sql/lower.hpp), rewrite by the law-based engine (core/engine.hpp, cost
// guarded by opt/optimizer.hpp), and execute on the batched/morsel-parallel
// pipeline executor (exec/pipeline.hpp). Statements the lowering cannot
// express fall back to the tuple-at-a-time oracle interpreter
// (sql::ExecuteQueryOracle) with the reason recorded in the profile, so
// semantics never regress while the fast path grows.
//
// The API never throws on bad input: every entry point returns Status or
// Result<>.

#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "exec/batch.hpp"
#include "exec/iterator.hpp"
#include "opt/optimizer.hpp"
#include "plan/catalog.hpp"
#include "sql/ast.hpp"
#include "util/status.hpp"

namespace quotient {

struct SessionOptions {
  /// Rule set, cost guard, and physical-algorithm choices.
  OptimizerOptions optimizer;
  /// Compiled statements cached by normalized SQL (LRU). 0 disables.
  size_t plan_cache_capacity = 64;
  /// When the lowering cannot express a statement, run it on the oracle
  /// interpreter instead of failing. Disable to surface lowering errors
  /// (the differential tests do, to prove coverage).
  bool allow_oracle_fallback = true;
};

/// The compile story of one statement, attached to results and cursors and
/// rendered by EXPLAIN.
struct CompileInfo {
  bool compiled = false;   // false: the oracle interpreter ran / would run
  bool cache_hit = false;  // served from the plan cache
  std::string fallback_reason;  // why the lowering refused (when !compiled)
  std::string normalized_sql;   // the plan-cache key
  PlanPtr lowered;              // straight from sql::LowerQuery
  PlanPtr optimized;            // after the law rewrites (cost guarded)
  std::vector<RewriteStep> rewrites;  // applied laws, in order
  double lowered_cost = 0;
  double optimized_cost = 0;
};

/// A fully materialized statement result.
struct QueryResult {
  Relation rows;
  ExecProfile profile;  // includes rewrite_steps / plan_cache_hit / fallback
  CompileInfo compile;
};

class Session;

/// A pull-based result stream: rows (Next) or whole batches (NextBatch)
/// without materializing the full relation. Cursors borrow the Session's
/// catalog — drain or Close() them before the next DDL on the session, and
/// never outlive the Session. Execution errors surface through status():
/// Next/NextBatch return false/nullptr and status() carries the message.
class ResultCursor {
 public:
  ResultCursor(ResultCursor&&) noexcept = default;
  ResultCursor& operator=(ResultCursor&&) noexcept = default;
  ~ResultCursor();

  const Schema& schema() const;
  /// Copies the next row into `out`; false at end of stream or on error.
  bool Next(Tuple* out);
  /// The next batch of rows (valid until the following NextBatch/Next
  /// call); nullptr at end of stream or on error. Mixing granularities is
  /// fine: after some Next() calls, NextBatch() serves the not-yet-returned
  /// remainder of the current batch via its selection vector.
  const Batch* NextBatch();
  /// Drains the remaining rows into a relation and closes the cursor.
  Relation Drain();
  /// Releases the underlying plan; idempotent.
  void Close();

  bool done() const { return exhausted_; }
  const Status& status() const { return status_; }
  const CompileInfo& compile() const { return compile_; }
  /// Row-count/dop profile of what ran so far (complete once done()).
  ExecProfile Profile() const;

 private:
  friend class Session;
  ResultCursor(IterPtr root, std::shared_ptr<const Relation> owned, CompileInfo compile);
  bool PullBatch();

  IterPtr root_;
  std::shared_ptr<const Relation> owned_;  // backing rows for oracle results
  CompileInfo compile_;
  Batch batch_;
  size_t next_active_ = 0;  // batch_ rows already served through Next()
  bool batch_valid_ = false;
  bool opened_ = false;
  bool exhausted_ = false;
  Status status_;
};

/// A parsed statement with '?' placeholders, compiled per distinct binding
/// and served from the session's plan cache. Borrow of the Session: must
/// not outlive it.
class PreparedStatement {
 public:
  size_t parameter_count() const { return param_count_; }
  const std::string& normalized_sql() const { return normalized_; }

  /// Binds `params` (one Value per '?', left to right) and executes.
  Result<QueryResult> Execute(const std::vector<Value>& params = {});
  /// Binds and opens a cursor instead of materializing.
  Result<ResultCursor> Query(const std::vector<Value>& params = {});

 private:
  friend class Session;
  Session* session_ = nullptr;
  std::shared_ptr<const sql::SqlQuery> ast_;  // unbound template
  std::string normalized_;
  size_t param_count_ = 0;
  bool explain_ = false;
  bool analyze_ = false;
};

class Session {
 public:
  explicit Session(SessionOptions options = {});
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  // Movable; outstanding PreparedStatements/cursors point at the old
  // address, so move only before handing any out.
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  // ---- catalog management (DDL clears the plan cache) ----
  /// Registers (or replaces) a table with the given rows.
  Status CreateTable(const std::string& name, Relation rows);
  /// Registers (or replaces) an empty table ("a:int, color:string").
  Status CreateTable(const std::string& name, const std::string& schema_spec);
  /// Appends rows to an existing table (set semantics: duplicates merge).
  Status InsertRows(const std::string& name, const std::vector<Tuple>& rows);
  /// Registers a table from CSV text / a CSV file (util/csv.hpp format).
  Status LoadCsv(const std::string& name, const std::string& csv_text);
  Status LoadCsvFile(const std::string& name, const std::string& path);
  /// Integrity metadata consulted by the rewrite laws (Laws 2/7/11/12/13).
  Status DeclareKey(const std::string& table, const std::vector<std::string>& attrs);
  Status DeclareForeignKey(const std::string& from_table,
                           const std::vector<std::string>& attrs,
                           const std::string& to_table);
  Status DeclareDisjoint(const std::string& table1, const std::string& table2,
                         const std::vector<std::string>& attrs);
  const Catalog& catalog() const { return catalog_; }

  // ---- statements ----
  /// Executes one statement: a SELECT (with DIVIDE BY, subqueries, GROUP
  /// BY/HAVING), or EXPLAIN [ANALYZE] <select> returning the compile+run
  /// story as a (line, detail) relation. Never throws.
  Result<QueryResult> Execute(const std::string& sql);
  /// Like Execute but returns a pull-based cursor over the result.
  Result<ResultCursor> Query(const std::string& sql);
  /// Parses once; execute many times with different '?' bindings.
  Result<PreparedStatement> Prepare(const std::string& sql);

  // ---- plan cache ----
  size_t plan_cache_size() const { return cache_entries_.size(); }
  void ClearPlanCache();

 private:
  friend class PreparedStatement;

  struct Statement {
    bool explain = false;
    bool analyze = false;
    std::shared_ptr<const sql::SqlQuery> ast;
    std::string normalized;  // of the SELECT, without the EXPLAIN prefix
  };
  /// A compiled statement as cached: either a rewritten plan or the parsed
  /// AST plus the reason the oracle must run it.
  struct Compiled {
    CompileInfo info;
    std::shared_ptr<const sql::SqlQuery> ast;
  };

  /// A cache lookup/compile outcome: the shared immutable entry plus
  /// whether it came from the cache (entries are shared, not copied, on
  /// the hit path).
  struct CompiledRef {
    std::shared_ptr<const Compiled> entry;
    bool cache_hit = false;
  };
  struct BoundStatement {
    Statement statement;
    CompiledRef compiled;
  };

  Result<Statement> ParseStatement(const std::string& sql) const;
  Result<CompiledRef> Compile(std::shared_ptr<const sql::SqlQuery> ast, const std::string& key);
  /// Shared parse → unbound-'?' check → compile front half of
  /// Execute/Query.
  Result<BoundStatement> ParseAndCompile(const std::string& sql);
  /// Shared '?'-binding front half of PreparedStatement::Execute/Query.
  Result<BoundStatement> BindPrepared(const PreparedStatement& prepared,
                                      const std::vector<Value>& params);
  Result<QueryResult> Run(const Statement& statement, const CompiledRef& compiled);
  Result<ResultCursor> Open(const Statement& statement, const CompiledRef& compiled);
  Relation RenderExplain(const CompileInfo& info, bool analyze, const ExecProfile& profile,
                         size_t result_rows) const;
  void InvalidatePlans() { ClearPlanCache(); }

  SessionOptions options_;
  Catalog catalog_;
  // LRU plan cache: most recently used at the front; entries shared with
  // in-flight statements via shared_ptr.
  using CacheList = std::list<std::pair<std::string, std::shared_ptr<const Compiled>>>;
  CacheList cache_lru_;
  std::unordered_map<std::string, CacheList::iterator> cache_entries_;
};

}  // namespace quotient
