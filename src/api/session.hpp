#pragma once

// The engine's front door (docs/api.md): a Session compiles every SQL
// statement through the full stack the paper argues for — parse, lower to a
// logical plan with first-class division operators (sql/lower.hpp), rewrite
// by the law-based engine (core/engine.hpp, cost guarded by
// opt/optimizer.hpp), and execute on the batched/morsel-parallel pipeline
// executor (exec/pipeline.hpp). Statements the lowering cannot express fall
// back to the tuple-at-a-time oracle interpreter (sql::ExecuteQueryOracle)
// with the reason recorded in the profile, so semantics never regress while
// the fast path grows.
//
// Threading contract: a Session is a cheap, single-threaded handle onto a
// thread-safe Database (api/database.hpp). To serve N concurrent query
// streams, give each thread its own Session over one shared Database —
// they share the catalog snapshots, the plan cache, and the process-wide
// worker pool. A Session constructed without a Database owns a private one.
//
// Each statement pins the current catalog snapshot: it sees the data and
// metadata as of its start, and DDL from other sessions never tears a
// running query. Cursors and prepared statements keep working across DDL —
// cursors pin their snapshot for their whole lifetime, and prepared
// statements transparently recompile against the newest snapshot.
//
// The API never throws on bad input: every entry point returns Status or
// Result<>.

#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "api/database.hpp"
#include "exec/batch.hpp"
#include "exec/iterator.hpp"
#include "exec/query_context.hpp"
#include "opt/optimizer.hpp"
#include "plan/catalog.hpp"
#include "sql/ast.hpp"
#include "util/status.hpp"

namespace quotient {

class Transaction;

struct SessionOptions {
  /// Rule set, cost guard, and physical-algorithm choices. Part of the plan
  /// cache key: sessions with different optimizer options never share
  /// cached plans.
  OptimizerOptions optimizer;
  /// Plan-cache capacity for a session-private Database (ignored when
  /// connecting to an existing Database, whose own capacity rules).
  /// 0 additionally opts this session out of the shared cache entirely.
  size_t plan_cache_capacity = 64;
  /// When the lowering cannot express a statement, run it on the oracle
  /// interpreter instead of failing. Disable to surface lowering errors
  /// (the differential tests do, to prove coverage).
  bool allow_oracle_fallback = true;

  // ---- query lifecycle governor (exec/query_context.hpp) ----
  // These configure the per-statement QueryContext and are deliberately NOT
  // part of the plan-cache fingerprint: they govern execution, not plans.
  /// Per-statement wall-clock deadline, measured on the monotonic clock
  /// from each statement's start. Zero = none. A statement exceeding it
  /// unwinds with StatusCode::kDeadlineExceeded.
  std::chrono::milliseconds deadline{0};
  /// Per-statement budget for build-state allocations (approximate; see
  /// docs/robustness.md). Zero = unlimited. Exceeding it unwinds with
  /// StatusCode::kResourceExhausted. When the Database configures
  /// admission_memory_bytes, this is also the statement's admission grant.
  size_t memory_budget_bytes = 0;
  /// Soft spill watermark (exec/spill.hpp): when the statement's
  /// outstanding build-state account crosses it, the id-column stores
  /// flush to a per-query temp file instead of growing, so the statement
  /// degrades to out-of-core instead of tripping the hard budget. Zero =
  /// never spill. Results are bit-identical to the in-memory path.
  size_t spill_watermark_bytes = 0;
  /// Directory for spill temp files (empty = $TMPDIR or /tmp). Files are
  /// unlinked at creation; nothing survives the statement.
  std::string spill_dir;
  /// Deterministic fault injection for tests (nullptr = the process-global
  /// injector, which arms itself from QUOTIENT_FAULT=<site>:<nth>).
  FaultInjector* fault_injector = nullptr;
};

/// A fully materialized statement result.
struct QueryResult {
  Relation rows;
  ExecProfile profile;  // includes rewrite_steps / plan_cache_hit / fallback
  CompileInfo compile;
};

class Session;

/// A pull-based result stream: rows (Next) or whole batches (NextBatch)
/// without materializing the full relation. A cursor pins the catalog
/// snapshot it was opened against, so it stays valid across later DDL (it
/// streams the data as of its open). Execution errors — including failures
/// surfacing mid-stream from the shared-pool executor, and governor trips
/// (Session::Cancel, deadlines, memory budgets) — never throw:
/// Next/NextBatch return false/nullptr, status() carries the typed Status,
/// and the cursor closes deterministically (done() is true, further pulls
/// return end-of-stream, and the pinned snapshot is released so a
/// cancelled cursor stops holding catalog state).
class ResultCursor {
 public:
  ResultCursor(ResultCursor&&) noexcept = default;
  ResultCursor& operator=(ResultCursor&&) noexcept = default;
  ~ResultCursor();

  const Schema& schema() const;
  /// Copies the next row into `out`; false at end of stream or on error.
  bool Next(Tuple* out);
  /// The next batch of rows (valid until the following NextBatch/Next
  /// call); nullptr at end of stream or on error. Mixing granularities is
  /// fine: after some Next() calls, NextBatch() serves the not-yet-returned
  /// remainder of the current batch via its selection vector.
  const Batch* NextBatch();
  /// Drains the remaining rows into a relation and closes the cursor. On a
  /// mid-stream error the rows produced before the failure are returned
  /// and status() carries the error.
  Relation Drain();
  /// Releases the underlying plan; idempotent.
  void Close();

  bool done() const { return exhausted_; }
  const Status& status() const { return status_; }
  const CompileInfo& compile() const { return compile_; }
  /// Row-count/dop profile of what ran so far (complete once done()).
  ExecProfile Profile() const;

 private:
  friend class Session;
  ResultCursor(IterPtr root, std::shared_ptr<const Relation> owned, CompileInfo compile,
               SnapshotPtr snapshot, std::shared_ptr<QueryContext> context,
               std::shared_ptr<const Catalog> overlay = nullptr, int64_t limit = -1);
  bool PullBatch();
  /// Records the first error, invalidates the current batch, and closes.
  void Fail(Status status);

  IterPtr root_;
  std::shared_ptr<const Relation> owned_;  // backing rows for oracle results
  CompileInfo compile_;
  SnapshotPtr snapshot_;  // pinned catalog state backing the plan
  std::shared_ptr<const Catalog> overlay_;  // txn overlay backing the plan, if any
  std::shared_ptr<QueryContext> ctx_;  // governor shared with Session::Cancel
  Schema schema_;         // cached: survives teardown of root_
  ExecProfile final_profile_;  // captured at close, served once root_ is gone
  Batch batch_;
  size_t next_active_ = 0;  // batch_ rows already served through Next()
  int64_t remaining_limit_ = -1;  // LIMIT rows still to serve (-1 = no limit)
  bool batch_valid_ = false;
  bool opened_ = false;
  bool exhausted_ = false;
  Status status_;
};

/// A parsed statement with '?' placeholders. The statement compiles (parse
/// → lower → rewrite) ONCE per catalog version — the cached plan carries
/// parameter slots and each Execute/Query binds the values into it, so a
/// stream of distinct bindings is a stream of plan-cache hits. Borrow of
/// the Session: must not outlive it.
class PreparedStatement {
 public:
  size_t parameter_count() const { return param_count_; }
  const std::string& normalized_sql() const { return normalized_; }

  /// Binds `params` (one Value per '?', left to right) and executes.
  Result<QueryResult> Execute(const std::vector<Value>& params = {});
  /// Binds and opens a cursor instead of materializing.
  Result<ResultCursor> Query(const std::vector<Value>& params = {});

 private:
  friend class Session;
  Session* session_ = nullptr;
  std::shared_ptr<const sql::SqlQuery> ast_;  // unbound template
  std::string normalized_;
  size_t param_count_ = 0;
  bool explain_ = false;
  bool analyze_ = false;
};

class Session {
 public:
  /// A standalone session over its own private Database.
  explicit Session(SessionOptions options = {});
  /// A session over a shared Database: the intended shape for concurrent
  /// serving — one Database, one Session per thread.
  explicit Session(std::shared_ptr<Database> database, SessionOptions options = {});
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  // Movable; outstanding PreparedStatements/cursors point at the old
  // address, so move only before handing any out. (Defined in session.cpp
  // where Transaction is complete.)
  Session(Session&&) noexcept;
  Session& operator=(Session&&) noexcept;
  ~Session();

  // ---- catalog management ----
  // DDL forwards to the Database: it publishes a new catalog snapshot
  // (copy-on-write) and invalidates cached plans referencing the touched
  // tables — other sessions' cached plans over other tables survive.
  /// Registers (or replaces) a table with the given rows.
  Status CreateTable(const std::string& name, Relation rows);
  /// Registers (or replaces) an empty table ("a:int, color:string").
  Status CreateTable(const std::string& name, const std::string& schema_spec);
  /// Appends rows to an existing table (set semantics: duplicates merge).
  Status InsertRows(const std::string& name, const std::vector<Tuple>& rows);
  /// Registers a table from CSV text / a CSV file (util/csv.hpp format).
  Status LoadCsv(const std::string& name, const std::string& csv_text);
  Status LoadCsvFile(const std::string& name, const std::string& path);
  /// Integrity metadata consulted by the rewrite laws (Laws 2/7/11/12/13).
  Status DeclareKey(const std::string& table, const std::vector<std::string>& attrs);
  Status DeclareForeignKey(const std::string& from_table,
                           const std::vector<std::string>& attrs,
                           const std::string& to_table);
  Status DeclareDisjoint(const std::string& table1, const std::string& table2,
                         const std::vector<std::string>& attrs);
  /// The catalog as of this session's last statement or DDL (a pinned
  /// snapshot; other sessions' later DDL shows up at the next statement).
  /// Inside a transaction: the transaction's read view, including its own
  /// buffered writes.
  const Catalog& catalog() const;
  /// The shared database this session serves.
  const std::shared_ptr<Database>& database() const { return database_; }

  // ---- statements ----
  /// Executes one statement: a SELECT (with DIVIDE BY, subqueries, GROUP
  /// BY/HAVING), or EXPLAIN [ANALYZE] <select> returning the compile+run
  /// story as a (line, detail) relation. Never throws.
  Result<QueryResult> Execute(const std::string& sql);
  /// Like Execute but returns a pull-based cursor over the result.
  Result<ResultCursor> Query(const std::string& sql);
  /// Parses and compiles once; execute many times with different '?'
  /// bindings without recompiling. SELECT / EXPLAIN only — transaction
  /// control and DML do not prepare.
  Result<PreparedStatement> Prepare(const std::string& sql);

  // ---- transactions (docs/transactions.md) ----
  // Also reachable through Execute("BEGIN"/"COMMIT"/"ROLLBACK"). A
  // transaction pins ONE snapshot for all its statements and buffers
  // INSERT/DELETE privately; COMMIT validates first-committer-wins and
  // fails with StatusCode::kConflict if any written table was committed
  // past the pinned version by another session. Statements outside a
  // transaction autocommit exactly as before.
  /// Starts a transaction; errors if one is already open.
  Status Begin();
  /// Validates and publishes the write set; the transaction ends whether
  /// this succeeds (one atomic snapshot publish) or fails (clean rollback,
  /// kConflict on a lost first-committer-wins race).
  Status Commit();
  /// Discards the write set; errors if no transaction is open.
  Status Rollback();
  bool in_transaction() const { return txn_ != nullptr; }

  /// Cancels every statement of this session currently in flight —
  /// materializing Execute()s on other threads and open cursors alike.
  /// Callable from ANY thread (the one concession to the Session's
  /// single-threaded contract). In-flight statements unwind to
  /// StatusCode::kCancelled within one morsel batch of poll latency; the
  /// worker pool stops admitting their morsels and stays reusable.
  /// Statements started after this call are unaffected.
  void Cancel();

  // ---- plan cache (shared; forwards to the Database) ----
  size_t plan_cache_size() const { return database_->plan_cache_size(); }
  PlanCacheStats plan_cache_stats() const { return database_->plan_cache_stats(); }
  void ClearPlanCache() { database_->ClearPlanCache(); }

 private:
  friend class PreparedStatement;

  struct Statement {
    bool explain = false;
    bool analyze = false;
    std::shared_ptr<const sql::SqlQuery> ast;
    std::string normalized;  // of the SELECT, without the EXPLAIN prefix
    // Non-SELECT statement (BEGIN/COMMIT/ROLLBACK/INSERT/DELETE); when set,
    // `ast` is null and the statement runs through RunCommand, not the
    // compile pipeline.
    std::shared_ptr<const sql::SqlStatement> command;
  };
  /// A cache lookup/compile outcome: the shared immutable entry plus
  /// whether it came from the cache (entries are shared, not copied, on
  /// the hit path).
  struct CompiledRef {
    std::shared_ptr<const CompiledStatement> entry;
    bool cache_hit = false;
  };
  /// Everything one statement execution needs: the pinned snapshot, the
  /// shared compiled entry, and the parameter-bound plan/AST to run.
  struct BoundStatement {
    SnapshotPtr snapshot;
    // Transaction read view when the statement runs inside a dirty
    // transaction: the txn's private catalog overlay (snapshot data plus
    // the txn's own buffered writes). Null outside transactions and for
    // clean (read-only-so-far) transactions.
    std::shared_ptr<const Catalog> overlay;
    Statement statement;
    CompiledRef compiled;
    PlanPtr plan;  // param-bound optimized plan (compiled path)
    std::shared_ptr<const sql::SqlQuery> ast;  // param-bound AST (oracle path)

    const Catalog& exec_catalog() const {
      return overlay != nullptr ? *overlay : snapshot->catalog();
    }
  };
  /// The catalog state a statement pins: the txn's snapshot (+overlay when
  /// dirty) inside a transaction, the database's newest snapshot outside.
  struct ReadView {
    SnapshotPtr snapshot;
    std::shared_ptr<const Catalog> overlay;  // non-null = dirty transaction
  };

  /// Pins the database's current snapshot as this session's view.
  const SnapshotPtr& Pin() { return snapshot_ = database_->snapshot(); }
  ReadView PinView();
  Result<Statement> ParseStatement(const std::string& sql) const;
  /// Shared-cache lookup, or a full lower → rewrite → cost compile against
  /// `catalog` published back to the cache under `version`. `allow_cache`
  /// is off for dirty-transaction statements: their overlay data is private,
  /// so neither cached plans nor data-dependent compiles may be shared.
  /// `stats` is the pinned snapshot's harvest cache feeding the cost model,
  /// or null for dirty-transaction compiles (the optimizer then owns a
  /// transient cache over the overlay catalog).
  Result<CompiledRef> Compile(const Catalog& catalog, uint64_t version, bool allow_cache,
                              std::shared_ptr<const sql::SqlQuery> ast,
                              const std::string& normalized, size_t param_count,
                              const StatsCache* stats);
  /// Shared unbound-'?' check → compile back half of Execute/Query (after
  /// ParseStatement routed commands to RunCommand).
  Result<BoundStatement> CompileStatement(Statement statement);
  /// Shared '?'-binding front half of PreparedStatement::Execute/Query:
  /// compile-or-hit, then bind the values into the cached plan (or the AST
  /// on the oracle path).
  Result<BoundStatement> BindPrepared(const PreparedStatement& prepared,
                                      const std::vector<Value>& params);
  Result<QueryResult> Run(const BoundStatement& bound);
  Result<ResultCursor> Open(const BoundStatement& bound);
  Relation RenderExplain(const CompileInfo& info, bool analyze, const ExecProfile& profile,
                         size_t result_rows) const;

  // ---- transaction control + DML (src/api/txn.hpp) ----
  /// Dispatches a non-SELECT statement (the `Statement::command` path).
  Result<QueryResult> RunCommand(const sql::SqlStatement& command);
  /// INSERT: buffered into the open transaction, or autocommitted through a
  /// bounded first-committer-wins retry loop. Returns rows actually added
  /// (set semantics).
  Result<size_t> RunInsert(const sql::SqlInsert& insert);
  /// DELETE FROM t [WHERE ...]: evaluates the survivor query against the
  /// statement's read view and replaces the table. Returns rows removed.
  Result<size_t> RunDelete(const sql::SqlDelete& del);

  /// Creates this statement's governor from the session options and
  /// registers it with the cancel registry (weak: a finished statement's
  /// context expires on its own).
  std::shared_ptr<QueryContext> MakeContext();

  /// Live statements' governors, targeted by Cancel() from other threads.
  /// Behind a unique_ptr so the mutex doesn't pin the Session (stays
  /// movable while no statements are outstanding).
  struct CancelRegistry {
    std::mutex mutex;
    std::vector<std::weak_ptr<QueryContext>> active;
  };

  std::shared_ptr<Database> database_;
  SessionOptions options_;
  std::string cache_key_prefix_;  // options fingerprint (see session.cpp)
  SnapshotPtr snapshot_;          // this session's pinned catalog view
  std::unique_ptr<CancelRegistry> cancels_;
  std::unique_ptr<Transaction> txn_;  // open transaction, if any
};

}  // namespace quotient
