#pragma once

// Multi-statement transactions over versioned snapshots
// (docs/transactions.md).
//
// A Transaction pins ONE catalog snapshot for its whole lifetime — every
// statement inside it reads the database as of BEGIN, regardless of what
// other sessions commit meanwhile — and buffers its own writes (INSERT,
// DELETE) in a private copy-on-write catalog overlay. Statements inside the
// transaction read through the overlay, so they see their own uncommitted
// writes; no other session ever sees them. COMMIT hands the write set to
// Database::CommitWriteSet, which validates first-committer-wins under the
// DDL writer mutex: if any written table's live data version moved past the
// pinned one, the commit fails with StatusCode::kConflict and the write set
// is discarded — a clean rollback, nothing published.
//
// The overlay is a Catalog copy (O(#tables), storage shared with the
// snapshot) created lazily at the first write; unwritten tables keep
// sharing the snapshot's relations and cached encodings. Like a Session, a
// Transaction is a single-threaded handle — concurrency comes from many
// sessions, each with at most one open transaction.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/database.hpp"
#include "plan/catalog.hpp"
#include "util/status.hpp"

namespace quotient {

class Transaction {
 public:
  /// Pins `snapshot` as this transaction's read view.
  explicit Transaction(SnapshotPtr snapshot);

  /// The pinned snapshot (never null; immutable for the txn's lifetime).
  const SnapshotPtr& snapshot() const { return snapshot_; }
  /// True once any write is buffered.
  bool dirty() const { return !base_versions_.empty(); }
  /// Tables written so far.
  size_t tables_written() const { return base_versions_.size(); }

  /// The catalog this transaction's statements read: the private overlay
  /// when dirty, otherwise the pinned snapshot's catalog. The returned
  /// pointer co-owns the backing state, so cursors opened inside the
  /// transaction stay valid after it ends.
  std::shared_ptr<const Catalog> read_catalog() const;
  /// Reference form of read_catalog() (the object is owned by this
  /// transaction / its snapshot, not by the returned handle).
  const Catalog& catalog() const;

  /// Buffers an INSERT of `rows` into `table`. Set semantics (duplicates
  /// merge, matching Database::InsertRows); returns the number of rows
  /// actually added. Errors on unknown tables and arity/type mismatches;
  /// a failed insert leaves the write set untouched.
  Result<size_t> Insert(const std::string& table, std::vector<Tuple> rows);

  /// Replaces `table`'s contents with `survivors` (the DELETE path: the
  /// caller evaluates the survivor query against read_catalog()). Returns
  /// the number of rows removed. `survivors` must have the table's
  /// attribute set (reordered here if needed).
  Result<size_t> Replace(const std::string& table, Relation survivors);

  /// The write set for Database::CommitWriteSet: every written table's full
  /// new contents plus the data version the pinned snapshot held for it.
  std::vector<WriteSetEntry> WriteSet() const;

 private:
  /// Creates the overlay on first write and records `table`'s pinned data
  /// version; errors if the table is unknown at the pinned snapshot.
  Status TouchTable(const std::string& table);

  SnapshotPtr snapshot_;
  std::shared_ptr<Catalog> overlay_;  // null until the first write
  // Pinned Catalog::DataVersion per written table, captured from the
  // snapshot at first touch — the commit-time validation baseline.
  std::map<std::string, uint64_t> base_versions_;
};

}  // namespace quotient
