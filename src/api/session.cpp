#include "api/session.hpp"

#include <cctype>
#include <cstdio>
#include <string_view>

#include "exec/exec_basic.hpp"
#include "exec/pipeline.hpp"
#include "sql/interp.hpp"
#include "sql/lexer.hpp"
#include "sql/lower.hpp"
#include "sql/parser.hpp"
#include "util/csv.hpp"

namespace quotient {

namespace {

/// Case-insensitively strips one leading word (plus surrounding whitespace)
/// from `*text`; the word must end at a non-identifier character.
bool StripWord(std::string_view* text, std::string_view word) {
  std::string_view rest = *text;
  while (!rest.empty() && std::isspace(static_cast<unsigned char>(rest.front()))) {
    rest.remove_prefix(1);
  }
  if (rest.size() < word.size()) return false;
  for (size_t i = 0; i < word.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(rest[i])) != word[i]) return false;
  }
  if (rest.size() > word.size()) {
    char next = rest[word.size()];
    if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') return false;
  }
  rest.remove_prefix(word.size());
  *text = rest;
  return true;
}

/// Whitespace- and keyword-case-insensitive plan-cache key: the token
/// stream re-rendered with single spaces (keywords are already upper-cased
/// by the lexer; identifiers keep their case — names are case-sensitive).
std::string NormalizeSql(const std::vector<sql::Token>& tokens) {
  std::string out;
  for (const sql::Token& token : tokens) {
    if (token.kind == sql::TokenKind::kEnd) break;
    if (!out.empty()) out += ' ';
    if (token.kind == sql::TokenKind::kString) {
      out += '\'' + token.text + '\'';
    } else {
      out += token.text;
    }
  }
  return out;
}

void AppendBlock(const std::string& text, const std::string& indent,
                 std::vector<std::string>* lines) {
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines->push_back(indent + text.substr(start, end - start));
    start = end + 1;
  }
}

/// The plan-cache key of one '?' binding: the normalized SQL plus each
/// value as "|<type>:<length>:<text>". The length prefix keeps the
/// encoding injective — a '|' inside a string parameter cannot collide
/// with the separator (and '|' never occurs in normalized SQL; the lexer
/// rejects it).
std::string BindingCacheKey(const std::string& normalized, const std::vector<Value>& params) {
  std::string key = normalized;
  for (const Value& v : params) {
    std::string text = v.ToString();
    key += '|';
    key += std::to_string(static_cast<int>(v.type()));
    key += ':';
    key += std::to_string(text.size());
    key += ':';
    key += text;
  }
  return key;
}

}  // namespace

// ------------------------------------------------------------ ResultCursor

ResultCursor::ResultCursor(IterPtr root, std::shared_ptr<const Relation> owned,
                           CompileInfo compile)
    : root_(std::move(root)), owned_(std::move(owned)), compile_(std::move(compile)) {}

ResultCursor::~ResultCursor() { Close(); }

const Schema& ResultCursor::schema() const { return root_->schema(); }

void ResultCursor::Close() {
  if (root_ != nullptr && opened_) {
    try {
      root_->Close();
    } catch (const std::exception& e) {
      if (status_.ok()) status_ = Status::Error(e.what());
    }
    opened_ = false;
  }
  exhausted_ = true;
  batch_valid_ = false;
}

bool ResultCursor::PullBatch() {
  if (exhausted_ || root_ == nullptr) return false;
  try {
    if (!opened_) {
      root_->Open();
      opened_ = true;
    }
    batch_valid_ = root_->NextBatch(&batch_);
    next_active_ = 0;
    if (!batch_valid_) Close();
    return batch_valid_;
  } catch (const std::exception& e) {
    status_ = Status::Error(e.what());
    batch_valid_ = false;
    Close();
    return false;
  }
}

bool ResultCursor::Next(Tuple* out) {
  while (true) {
    if (batch_valid_ && next_active_ < batch_.ActiveRows()) {
      batch_.ToTuple(batch_.RowAt(next_active_++), out);
      return true;
    }
    if (!PullBatch()) return false;
  }
}

const Batch* ResultCursor::NextBatch() {
  if (batch_valid_ && next_active_ < batch_.ActiveRows()) {
    if (next_active_ > 0) {
      // Some rows of this batch were already served through Next(): narrow
      // the selection to the remainder.
      std::vector<uint32_t> remaining;
      remaining.reserve(batch_.ActiveRows() - next_active_);
      for (size_t i = next_active_; i < batch_.ActiveRows(); ++i) {
        remaining.push_back(batch_.RowAt(i));
      }
      batch_.SetSelection(std::move(remaining));
    }
    next_active_ = batch_.ActiveRows();
    return &batch_;
  }
  if (!PullBatch()) return nullptr;
  next_active_ = batch_.ActiveRows();
  return &batch_;
}

Relation ResultCursor::Drain() {
  Schema schema = this->schema();
  std::vector<Tuple> rows;
  Tuple t;
  while (Next(&t)) rows.push_back(t);
  return Relation(std::move(schema), std::move(rows));
}

ExecProfile ResultCursor::Profile() const {
  ExecProfile profile;
  if (root_ != nullptr) {
    profile.total_rows = TotalRowsProduced(*root_);
    profile.max_rows = MaxRowsProduced(*root_);
    profile.max_dop = MaxPipelineDop(*root_);
    profile.explain = ExplainTree(*root_);
    profile.pipelines = DescribePipelines(*root_);
  }
  profile.rewrite_steps = compile_.rewrites.size();
  profile.plan_cache_hit = compile_.cache_hit;
  profile.fallback_reason = compile_.fallback_reason;
  return profile;
}

// ------------------------------------------------------- PreparedStatement

Result<QueryResult> PreparedStatement::Execute(const std::vector<Value>& params) {
  if (session_ == nullptr) return Result<QueryResult>::Error("empty prepared statement");
  try {
    Result<Session::BoundStatement> bound = session_->BindPrepared(*this, params);
    if (!bound.ok()) return Result<QueryResult>::Error(bound.error());
    return session_->Run(bound.value().statement, bound.value().compiled);
  } catch (const std::exception& e) {
    return Result<QueryResult>::Error(e.what());
  }
}

Result<ResultCursor> PreparedStatement::Query(const std::vector<Value>& params) {
  if (session_ == nullptr) return Result<ResultCursor>::Error("empty prepared statement");
  try {
    Result<Session::BoundStatement> bound = session_->BindPrepared(*this, params);
    if (!bound.ok()) return Result<ResultCursor>::Error(bound.error());
    return session_->Open(bound.value().statement, bound.value().compiled);
  } catch (const std::exception& e) {
    return Result<ResultCursor>::Error(e.what());
  }
}

// ---------------------------------------------------------------- Session

Session::Session(SessionOptions options) : options_(std::move(options)) {}

Status Session::CreateTable(const std::string& name, Relation rows) {
  try {
    catalog_.Put(name, std::move(rows));
    InvalidatePlans();
    return Status::Ok();
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
}

Status Session::CreateTable(const std::string& name, const std::string& schema_spec) {
  try {
    return CreateTable(name, Relation(Schema::Parse(schema_spec)));
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
}

Status Session::InsertRows(const std::string& name, const std::vector<Tuple>& rows) {
  try {
    if (!catalog_.Has(name)) {
      return Status::Error("unknown table '" + name + "' (CreateTable first)");
    }
    Relation updated = catalog_.Get(name);
    for (const Tuple& tuple : rows) updated.Insert(tuple);
    catalog_.Put(name, std::move(updated));
    InvalidatePlans();
    return Status::Ok();
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
}

Status Session::LoadCsv(const std::string& name, const std::string& csv_text) {
  Result<Relation> parsed = RelationFromCsv(csv_text);
  if (!parsed.ok()) return Status::Error(parsed.error());
  return CreateTable(name, std::move(parsed).value());
}

Status Session::LoadCsvFile(const std::string& name, const std::string& path) {
  Result<Relation> parsed = ReadCsvFile(path);
  if (!parsed.ok()) return Status::Error(parsed.error());
  return CreateTable(name, std::move(parsed).value());
}

Status Session::DeclareKey(const std::string& table, const std::vector<std::string>& attrs) {
  try {
    catalog_.DeclareKey(table, attrs);
    InvalidatePlans();
    return Status::Ok();
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
}

Status Session::DeclareForeignKey(const std::string& from_table,
                                  const std::vector<std::string>& attrs,
                                  const std::string& to_table) {
  try {
    catalog_.DeclareForeignKey(from_table, attrs, to_table);
    InvalidatePlans();
    return Status::Ok();
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
}

Status Session::DeclareDisjoint(const std::string& table1, const std::string& table2,
                                const std::vector<std::string>& attrs) {
  try {
    catalog_.DeclareDisjoint(table1, table2, attrs);
    InvalidatePlans();
    return Status::Ok();
  } catch (const std::exception& e) {
    return Status::Error(e.what());
  }
}

void Session::ClearPlanCache() {
  cache_lru_.clear();
  cache_entries_.clear();
}

Result<Session::Statement> Session::ParseStatement(const std::string& sql) const {
  Statement statement;
  std::string_view rest = sql;
  if (StripWord(&rest, "EXPLAIN")) {
    statement.explain = true;
    statement.analyze = StripWord(&rest, "ANALYZE");
  }
  // Lex once; the token stream feeds both the parse and the cache key.
  Result<std::vector<sql::Token>> tokens = sql::Tokenize(std::string(rest));
  if (!tokens.ok()) return Result<Statement>::Error(tokens.error());
  statement.normalized = NormalizeSql(tokens.value());
  Result<std::shared_ptr<sql::SqlQuery>> parsed = sql::ParseTokens(std::move(tokens).value());
  if (!parsed.ok()) return Result<Statement>::Error(parsed.error());
  statement.ast = parsed.value();
  return statement;
}

Result<Session::CompiledRef> Session::Compile(std::shared_ptr<const sql::SqlQuery> ast,
                                              const std::string& key) {
  if (options_.plan_cache_capacity > 0) {
    auto it = cache_entries_.find(key);
    if (it != cache_entries_.end()) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
      return CompiledRef{it->second->second, /*cache_hit=*/true};
    }
  }

  auto compiled = std::make_shared<Compiled>();
  compiled->ast = std::move(ast);
  compiled->info.normalized_sql = key;
  Result<PlanPtr> lowered = sql::LowerQuery(*compiled->ast, catalog_);
  if (lowered.ok()) {
    compiled->info.compiled = true;
    compiled->info.lowered = lowered.value();
    Optimizer optimizer(catalog_, options_.optimizer);
    OptimizationReport report = optimizer.Optimize(compiled->info.lowered);
    compiled->info.optimized = report.chosen;
    compiled->info.rewrites = std::move(report.steps);
    compiled->info.lowered_cost = report.original_cost;
    compiled->info.optimized_cost = report.chosen_cost;
  } else if (options_.allow_oracle_fallback) {
    compiled->info.fallback_reason = lowered.error();
  } else {
    return Result<CompiledRef>::Error(lowered.error());
  }

  if (options_.plan_cache_capacity > 0) {
    cache_lru_.emplace_front(key, compiled);
    cache_entries_[key] = cache_lru_.begin();
    while (cache_lru_.size() > options_.plan_cache_capacity) {
      cache_entries_.erase(cache_lru_.back().first);
      cache_lru_.pop_back();
    }
  }
  return CompiledRef{std::move(compiled), /*cache_hit=*/false};
}

Result<Session::BoundStatement> Session::BindPrepared(const PreparedStatement& prepared,
                                                      const std::vector<Value>& params) {
  Result<std::shared_ptr<sql::SqlQuery>> bound = sql::BindParameters(*prepared.ast_, params);
  if (!bound.ok()) return Result<BoundStatement>::Error(bound.error());
  std::string key = BindingCacheKey(prepared.normalized_, params);
  Result<CompiledRef> compiled = Compile(bound.value(), key);
  if (!compiled.ok()) return Result<BoundStatement>::Error(compiled.error());
  return BoundStatement{
      Statement{prepared.explain_, prepared.analyze_, bound.value(), key},
      std::move(compiled).value()};
}

Result<QueryResult> Session::Run(const Statement& statement, const CompiledRef& compiled) {
  const Compiled& entry = *compiled.entry;
  QueryResult out;
  out.compile = entry.info;
  out.compile.cache_hit = compiled.cache_hit;
  size_t result_rows = 0;
  bool execute = !statement.explain || statement.analyze;
  if (execute) {
    if (entry.info.compiled) {
      out.rows =
          ExecutePlan(entry.info.optimized, catalog_, options_.optimizer.planner, &out.profile);
    } else {
      out.rows = sql::ExecuteQueryOracle(*entry.ast, catalog_);
      out.profile.explain =
          "OracleInterpreter (tuple-at-a-time fallback: " + entry.info.fallback_reason + ")\n";
      out.profile.total_rows = out.rows.size();
      out.profile.max_rows = out.rows.size();
    }
    result_rows = out.rows.size();
  }
  out.profile.rewrite_steps = entry.info.rewrites.size();
  out.profile.plan_cache_hit = compiled.cache_hit;
  out.profile.fallback_reason = entry.info.fallback_reason;
  if (statement.explain) {
    out.rows = RenderExplain(out.compile, statement.analyze, out.profile, result_rows);
  }
  return out;
}

Result<ResultCursor> Session::Open(const Statement& statement, const CompiledRef& compiled) {
  if (statement.explain) {
    // EXPLAIN output is tiny; materialize through Run and stream the rows.
    Result<QueryResult> result = Run(statement, compiled);
    if (!result.ok()) return Result<ResultCursor>::Error(result.error());
    CompileInfo info = result.value().compile;
    auto owned = std::make_shared<const Relation>(std::move(result.value().rows));
    return ResultCursor(std::make_unique<RelationScan>(owned), owned, std::move(info));
  }
  const Compiled& entry = *compiled.entry;
  CompileInfo info = entry.info;
  info.cache_hit = compiled.cache_hit;
  if (entry.info.compiled) {
    IterPtr root = BuildPhysicalPlan(entry.info.optimized, catalog_, options_.optimizer.planner);
    return ResultCursor(std::move(root), nullptr, std::move(info));
  }
  auto owned = std::make_shared<const Relation>(sql::ExecuteQueryOracle(*entry.ast, catalog_));
  return ResultCursor(std::make_unique<RelationScan>(owned), owned, std::move(info));
}

Relation Session::RenderExplain(const CompileInfo& info, bool analyze,
                                const ExecProfile& profile, size_t result_rows) const {
  std::vector<std::string> lines;
  lines.push_back(analyze ? "EXPLAIN ANALYZE" : "EXPLAIN");
  lines.push_back(std::string("plan cache: ") + (info.cache_hit ? "hit" : "miss"));
  if (info.compiled) {
    lines.push_back("path: compiled (lower -> rewrite laws -> parallel pipeline executor)");
    lines.push_back("rewrites applied: " + std::to_string(info.rewrites.size()));
    AppendBlock(SummarizeRewrites(info.rewrites), "", &lines);
    char cost[96];
    std::snprintf(cost, sizeof(cost), "estimated cost: %.1f -> %.1f", info.lowered_cost,
                  info.optimized_cost);
    lines.push_back(cost);
    lines.push_back("logical plan (lowered):");
    AppendBlock(info.lowered->ToString(), "  ", &lines);
    if (!info.rewrites.empty()) {
      lines.push_back("logical plan (after rewriting):");
      AppendBlock(info.optimized->ToString(), "  ", &lines);
    }
  } else {
    lines.push_back("path: oracle interpreter (fallback: " + info.fallback_reason + ")");
  }
  if (analyze) {
    lines.push_back("dop=" + std::to_string(profile.max_dop));
    lines.push_back("result rows: " + std::to_string(result_rows));
    lines.push_back("operator profile:");
    AppendBlock(profile.explain, "  ", &lines);
    if (!profile.pipelines.empty()) {
      lines.push_back("pipelines:");
      AppendBlock(profile.pipelines, "  ", &lines);
    }
  }
  std::vector<Tuple> rows;
  rows.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i + 1)), Value::Str(lines[i])});
  }
  return Relation(Schema::Parse("line:int, detail:string"), std::move(rows));
}

Result<Session::BoundStatement> Session::ParseAndCompile(const std::string& sql) {
  Result<Statement> statement = ParseStatement(sql);
  if (!statement.ok()) return Result<BoundStatement>::Error(statement.error());
  if (sql::CountParameters(*statement.value().ast) > 0) {
    return Result<BoundStatement>::Error(
        "statement has unbound '?' parameters; use Session::Prepare");
  }
  Result<CompiledRef> compiled = Compile(statement.value().ast, statement.value().normalized);
  if (!compiled.ok()) return Result<BoundStatement>::Error(compiled.error());
  return BoundStatement{std::move(statement).value(), std::move(compiled).value()};
}

Result<QueryResult> Session::Execute(const std::string& sql) {
  try {
    Result<BoundStatement> bound = ParseAndCompile(sql);
    if (!bound.ok()) return Result<QueryResult>::Error(bound.error());
    return Run(bound.value().statement, bound.value().compiled);
  } catch (const std::exception& e) {
    return Result<QueryResult>::Error(e.what());
  }
}

Result<ResultCursor> Session::Query(const std::string& sql) {
  try {
    Result<BoundStatement> bound = ParseAndCompile(sql);
    if (!bound.ok()) return Result<ResultCursor>::Error(bound.error());
    return Open(bound.value().statement, bound.value().compiled);
  } catch (const std::exception& e) {
    return Result<ResultCursor>::Error(e.what());
  }
}

Result<PreparedStatement> Session::Prepare(const std::string& sql) {
  try {
    Result<Statement> statement = ParseStatement(sql);
    if (!statement.ok()) return Result<PreparedStatement>::Error(statement.error());
    PreparedStatement prepared;
    prepared.session_ = this;
    prepared.ast_ = statement.value().ast;
    prepared.normalized_ = statement.value().normalized;
    prepared.param_count_ = sql::CountParameters(*statement.value().ast);
    prepared.explain_ = statement.value().explain;
    prepared.analyze_ = statement.value().analyze;
    return prepared;
  } catch (const std::exception& e) {
    return Result<PreparedStatement>::Error(e.what());
  }
}

}  // namespace quotient
