#include "api/session.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string_view>

#include "api/txn.hpp"
#include "exec/exec_basic.hpp"
#include "exec/pipeline.hpp"
#include "sql/interp.hpp"
#include "sql/lexer.hpp"
#include "sql/lower.hpp"
#include "sql/parser.hpp"

namespace quotient {

namespace {

/// Case-insensitively strips one leading word (plus surrounding whitespace)
/// from `*text`; the word must end at a non-identifier character.
bool StripWord(std::string_view* text, std::string_view word) {
  std::string_view rest = *text;
  while (!rest.empty() && std::isspace(static_cast<unsigned char>(rest.front()))) {
    rest.remove_prefix(1);
  }
  if (rest.size() < word.size()) return false;
  for (size_t i = 0; i < word.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(rest[i])) != word[i]) return false;
  }
  if (rest.size() > word.size()) {
    char next = rest[word.size()];
    if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') return false;
  }
  rest.remove_prefix(word.size());
  *text = rest;
  return true;
}

/// Whitespace- and keyword-case-insensitive plan-cache key: the token
/// stream re-rendered with single spaces (keywords are already upper-cased
/// by the lexer; identifiers keep their case — names are case-sensitive).
std::string NormalizeSql(const std::vector<sql::Token>& tokens) {
  std::string out;
  for (const sql::Token& token : tokens) {
    if (token.kind == sql::TokenKind::kEnd) break;
    if (!out.empty()) out += ' ';
    if (token.kind == sql::TokenKind::kString) {
      out += '\'' + token.text + '\'';
    } else {
      out += token.text;
    }
  }
  return out;
}

/// The shared plan cache is keyed on (options fingerprint, normalized SQL):
/// sessions configured identically reuse each other's plans, sessions with
/// different rule sets / planner algorithms / fallback policy never collide.
/// The '\n' separator cannot occur in normalized SQL (tokens are joined
/// with single spaces).
std::string OptionsFingerprint(const SessionOptions& options) {
  const OptimizerOptions& opt = options.optimizer;
  std::string fp;
  fp += opt.use_rules ? 'R' : 'r';
  fp += opt.allow_runtime_checks ? 'C' : 'c';
  fp += options.allow_oracle_fallback ? 'F' : 'f';
  fp += opt.planner.expand_divide ? 'X' : 'x';
  fp += std::to_string(static_cast<int>(opt.planner.division));
  fp += ':';
  fp += std::to_string(static_cast<int>(opt.planner.great_divide));
  fp += ':';
  fp += std::to_string(opt.max_rewrite_steps);
  fp += opt.search ? 'S' : 's';
  fp += ':';
  fp += std::to_string(opt.max_search_candidates);
  fp += '\n';
  return fp;
}

/// CI override (.github/workflows/ci.yml, spill-forced-sanitizer job):
/// QUOTIENT_SPILL_WATERMARK=<bytes> arms a spill watermark on every session
/// that doesn't configure one, so the whole test suite can re-run with
/// every blocking build flushing through the spill file.
size_t EnvSpillWatermark() {
  static const size_t value = [] {
    const char* env = std::getenv("QUOTIENT_SPILL_WATERMARK");
    return env != nullptr ? static_cast<size_t>(std::strtoull(env, nullptr, 10))
                          : size_t{0};
  }();
  return value;
}

void AppendBlock(const std::string& text, const std::string& indent,
                 std::vector<std::string>* lines) {
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines->push_back(indent + text.substr(start, end - start));
    start = end + 1;
  }
}

}  // namespace

// ------------------------------------------------------------ ResultCursor

ResultCursor::ResultCursor(IterPtr root, std::shared_ptr<const Relation> owned,
                           CompileInfo compile, SnapshotPtr snapshot,
                           std::shared_ptr<QueryContext> context,
                           std::shared_ptr<const Catalog> overlay, int64_t limit)
    : root_(std::move(root)),
      owned_(std::move(owned)),
      compile_(std::move(compile)),
      snapshot_(std::move(snapshot)),
      overlay_(std::move(overlay)),
      ctx_(std::move(context)),
      schema_(root_->schema()),
      remaining_limit_(limit) {}

ResultCursor::~ResultCursor() { Close(); }

const Schema& ResultCursor::schema() const { return schema_; }

void ResultCursor::Close() {
  if (root_ != nullptr) {
    final_profile_ = Profile();  // captured while the iterator tree is alive
    if (opened_) {
      try {
        root_->Close();
      } catch (const std::exception& e) {
        if (status_.ok()) status_ = Status::Error(e.what());
      } catch (...) {
        if (status_.ok()) status_ = Status::Error("unknown error closing cursor");
      }
      opened_ = false;
    }
    // Terminal: release the plan, its backing rows, and the pinned catalog
    // snapshot — a finished (or cancelled) cursor stops holding catalog
    // state. root_ goes first; its scans borrow the snapshot's relations.
    root_.reset();
    owned_.reset();
    snapshot_.reset();
    overlay_.reset();
    // Drop the governor too: its destructor closes the spill file and
    // returns the statement's admission grant, so a closed cursor stops
    // counting against the database-wide memory budget.
    ctx_.reset();
  }
  exhausted_ = true;
  batch_valid_ = false;
}

void ResultCursor::Fail(Status status) {
  if (status_.ok()) status_ = std::move(status);
  batch_valid_ = false;
  Close();
}

bool ResultCursor::PullBatch() {
  if (exhausted_ || root_ == nullptr) return false;
  if (remaining_limit_ == 0) {
    // LIMIT satisfied: end the stream without pulling (LIMIT 0 never even
    // opens the plan).
    Close();
    return false;
  }
  ScopedQueryContext scope(ctx_.get());  // pulls may run on any user thread
  try {
    GovernorPoll();
    GovernorFaultPoint("cursor.pull");
    if (!opened_) {
      root_->Open();
      opened_ = true;
    }
    batch_valid_ = root_->NextBatch(&batch_);
    next_active_ = 0;
    if (batch_valid_ && remaining_limit_ > 0 &&
        static_cast<int64_t>(batch_.ActiveRows()) > remaining_limit_) {
      // Cursor-side LIMIT cut: narrow the selection to the rows still owed.
      std::vector<uint32_t> keep;
      keep.reserve(static_cast<size_t>(remaining_limit_));
      for (int64_t i = 0; i < remaining_limit_; ++i) {
        keep.push_back(batch_.RowAt(static_cast<size_t>(i)));
      }
      batch_.SetSelection(std::move(keep));
    }
    if (batch_valid_ && remaining_limit_ > 0) {
      remaining_limit_ -= static_cast<int64_t>(batch_.ActiveRows());
    }
    if (!batch_valid_) Close();
    return batch_valid_;
  } catch (const QueryAbort& e) {
    // A governor trip (cancel, deadline, budget) or an injected fault: the
    // cursor ends with the typed terminal status. Rows already served stay
    // served; Drain() returns the pre-failure rows.
    Fail(e.status());
    return false;
  } catch (const std::exception& e) {
    // Executor errors can surface on any pull — a predicate failing on a
    // late tuple, a worker-pool drain rethrown mid-stream. The cursor ends
    // the stream deterministically: status() carries the message, done()
    // flips, further pulls report end of stream.
    Fail(Status::Error(e.what()));
    return false;
  } catch (...) {
    Fail(Status::Error("unknown execution error"));
    return false;
  }
}

bool ResultCursor::Next(Tuple* out) {
  while (true) {
    if (batch_valid_ && next_active_ < batch_.ActiveRows()) {
      batch_.ToTuple(batch_.RowAt(next_active_++), out);
      return true;
    }
    if (!PullBatch()) return false;
  }
}

const Batch* ResultCursor::NextBatch() {
  if (batch_valid_ && next_active_ < batch_.ActiveRows()) {
    if (next_active_ > 0) {
      // Some rows of this batch were already served through Next(): narrow
      // the selection to the remainder.
      std::vector<uint32_t> remaining;
      remaining.reserve(batch_.ActiveRows() - next_active_);
      for (size_t i = next_active_; i < batch_.ActiveRows(); ++i) {
        remaining.push_back(batch_.RowAt(i));
      }
      batch_.SetSelection(std::move(remaining));
    }
    next_active_ = batch_.ActiveRows();
    return &batch_;
  }
  if (!PullBatch()) return nullptr;
  next_active_ = batch_.ActiveRows();
  return &batch_;
}

Relation ResultCursor::Drain() {
  Schema schema = this->schema();
  std::vector<Tuple> rows;
  Tuple t;
  while (Next(&t)) rows.push_back(t);
  return Relation(std::move(schema), std::move(rows));
}

ExecProfile ResultCursor::Profile() const {
  if (root_ == nullptr) return final_profile_;  // closed: serve the capture
  ExecProfile profile;
  profile.total_rows = TotalRowsProduced(*root_);
  profile.max_rows = MaxRowsProduced(*root_);
  profile.max_dop = MaxPipelineDop(*root_);
  profile.explain = ExplainTree(*root_);
  profile.pipelines = DescribePipelines(*root_);
  profile.rewrite_steps = compile_.rewrites.size();
  profile.plan_cache_hit = compile_.cache_hit;
  profile.fallback_reason = compile_.fallback_reason;
  if (!compile_.cache_hit) {
    profile.search_candidates = compile_.search_candidates;
    profile.memo_hits = compile_.memo_hits;
  }
  if (ctx_ != nullptr) {
    profile.rows_charged_bytes = ctx_->charged_bytes();
    profile.cancelled = ctx_->cancelled();
    profile.fault_site = ctx_->fault_site();
    profile.spill_partitions = ctx_->spill_partitions();
    profile.spill_bytes_written = ctx_->spill_bytes_written();
    profile.recycler_hits = ctx_->recycler_hits();
    profile.recycler_misses = ctx_->recycler_misses();
  }
  return profile;
}

// ------------------------------------------------------- PreparedStatement

Result<QueryResult> PreparedStatement::Execute(const std::vector<Value>& params) {
  if (session_ == nullptr) return Result<QueryResult>::Error("empty prepared statement");
  try {
    Result<Session::BoundStatement> bound = session_->BindPrepared(*this, params);
    if (!bound.ok()) return Result<QueryResult>::Error(bound.error());
    return session_->Run(bound.value());
  } catch (const QueryAbort& e) {
    return Result<QueryResult>::Error(e.status());
  } catch (const std::exception& e) {
    return Result<QueryResult>::Error(e.what());
  }
}

Result<ResultCursor> PreparedStatement::Query(const std::vector<Value>& params) {
  if (session_ == nullptr) return Result<ResultCursor>::Error("empty prepared statement");
  try {
    Result<Session::BoundStatement> bound = session_->BindPrepared(*this, params);
    if (!bound.ok()) return Result<ResultCursor>::Error(bound.error());
    return session_->Open(bound.value());
  } catch (const QueryAbort& e) {
    return Result<ResultCursor>::Error(e.status());
  } catch (const std::exception& e) {
    return Result<ResultCursor>::Error(e.what());
  }
}

// ---------------------------------------------------------------- Session

Session::Session(SessionOptions options)
    : Session(std::make_shared<Database>(DatabaseOptions{options.plan_cache_capacity}),
              options) {}

Session::Session(std::shared_ptr<Database> database, SessionOptions options)
    : database_(std::move(database)),
      options_(std::move(options)),
      cache_key_prefix_(OptionsFingerprint(options_)),
      snapshot_(database_->snapshot()),
      cancels_(std::make_unique<CancelRegistry>()) {
  // Thread the database's artifact recycler into the planner so blocking
  // sinks can adopt cached build state. Deliberately NOT part of the
  // options fingerprint: recycling governs execution, not plan shape.
  options_.optimizer.planner.recycler = database_->recycler();
}

// Out of line: Transaction is incomplete in the header.
Session::Session(Session&&) noexcept = default;
Session& Session::operator=(Session&&) noexcept = default;
Session::~Session() = default;

const Catalog& Session::catalog() const {
  return txn_ != nullptr ? txn_->catalog() : snapshot_->catalog();
}

std::shared_ptr<QueryContext> Session::MakeContext() {
  std::chrono::steady_clock::time_point deadline{};
  if (options_.deadline.count() > 0) {
    deadline = std::chrono::steady_clock::now() + options_.deadline;
  }
  auto context = std::make_shared<QueryContext>(deadline, options_.memory_budget_bytes,
                                                options_.fault_injector);
  size_t watermark = options_.spill_watermark_bytes;
  if (watermark == 0) watermark = EnvSpillWatermark();
  if (watermark > 0) context->EnableSpill(watermark, options_.spill_dir);
  {
    std::lock_guard<std::mutex> lock(cancels_->mutex);
    // Prune finished statements' expired slots so the registry stays O(live).
    auto dead = std::remove_if(cancels_->active.begin(), cancels_->active.end(),
                               [](const std::weak_ptr<QueryContext>& w) { return w.expired(); });
    cancels_->active.erase(dead, cancels_->active.end());
    cancels_->active.push_back(context);
  }
  // Admission AFTER registration (and outside the registry lock): Cancel()
  // must reach a statement still waiting in the admission queue, and the
  // wait must not hold the lock Cancel() needs.
  Status admitted = database_->AdmitQuery(options_.memory_budget_bytes, context.get());
  if (!admitted.ok()) throw QueryAbort(std::move(admitted));
  if (database_->options().admission_memory_bytes > 0 &&
      options_.memory_budget_bytes > 0) {
    // The grant returns when the statement's governor dies — cursors hold
    // theirs until Close(). The hook keeps the Database alive.
    context->SetAdmissionRelease(
        [database = database_, bytes = options_.memory_budget_bytes]() {
          database->ReleaseAdmission(bytes);
        });
  }
  return context;
}

void Session::Cancel() {
  std::lock_guard<std::mutex> lock(cancels_->mutex);
  for (const std::weak_ptr<QueryContext>& weak : cancels_->active) {
    if (std::shared_ptr<QueryContext> ctx = weak.lock()) ctx->Cancel();
  }
}

namespace {
/// DDL publishes immediately and database-wide; inside a transaction that
/// would leak around the isolation contract, so it is rejected outright
/// (docs/transactions.md).
Status NoDdlInTxn() {
  return Status::Error("DDL is not allowed inside a transaction (COMMIT or ROLLBACK first)");
}
}  // namespace

Status Session::CreateTable(const std::string& name, Relation rows) {
  if (txn_ != nullptr) return NoDdlInTxn();
  Status status = database_->CreateTable(name, std::move(rows));
  Pin();
  return status;
}

Status Session::CreateTable(const std::string& name, const std::string& schema_spec) {
  if (txn_ != nullptr) return NoDdlInTxn();
  Status status = database_->CreateTable(name, schema_spec);
  Pin();
  return status;
}

Status Session::InsertRows(const std::string& name, const std::vector<Tuple>& rows) {
  if (txn_ != nullptr) {
    // Buffer into the open transaction — identical to SQL INSERT.
    Result<size_t> added = txn_->Insert(name, rows);
    return added.ok() ? Status::Ok() : added.status();
  }
  Status status = database_->InsertRows(name, rows);
  Pin();
  return status;
}

Status Session::LoadCsv(const std::string& name, const std::string& csv_text) {
  if (txn_ != nullptr) return NoDdlInTxn();
  Status status = database_->LoadCsv(name, csv_text);
  Pin();
  return status;
}

Status Session::LoadCsvFile(const std::string& name, const std::string& path) {
  if (txn_ != nullptr) return NoDdlInTxn();
  Status status = database_->LoadCsvFile(name, path);
  Pin();
  return status;
}

Status Session::DeclareKey(const std::string& table, const std::vector<std::string>& attrs) {
  if (txn_ != nullptr) return NoDdlInTxn();
  Status status = database_->DeclareKey(table, attrs);
  Pin();
  return status;
}

Status Session::DeclareForeignKey(const std::string& from_table,
                                  const std::vector<std::string>& attrs,
                                  const std::string& to_table) {
  if (txn_ != nullptr) return NoDdlInTxn();
  Status status = database_->DeclareForeignKey(from_table, attrs, to_table);
  Pin();
  return status;
}

Status Session::DeclareDisjoint(const std::string& table1, const std::string& table2,
                                const std::vector<std::string>& attrs) {
  if (txn_ != nullptr) return NoDdlInTxn();
  Status status = database_->DeclareDisjoint(table1, table2, attrs);
  Pin();
  return status;
}

Result<Session::Statement> Session::ParseStatement(const std::string& sql) const {
  Statement statement;
  std::string_view rest = sql;
  if (StripWord(&rest, "EXPLAIN")) {
    statement.explain = true;
    statement.analyze = StripWord(&rest, "ANALYZE");
  }
  // Lex once; the token stream feeds both the parse and the cache key.
  Result<std::vector<sql::Token>> tokens = sql::Tokenize(std::string(rest));
  if (!tokens.ok()) return Result<Statement>::Error(tokens.error());
  statement.normalized = NormalizeSql(tokens.value());
  // Transaction control and DML route around the SELECT compile pipeline.
  if (!tokens.value().empty()) {
    const sql::Token& first = tokens.value().front();
    if (first.IsKeyword("BEGIN") || first.IsKeyword("COMMIT") || first.IsKeyword("ROLLBACK") ||
        first.IsKeyword("INSERT") || first.IsKeyword("DELETE")) {
      if (statement.explain) {
        return Result<Statement>::Error("EXPLAIN supports SELECT statements only");
      }
      Result<std::shared_ptr<sql::SqlStatement>> command =
          sql::ParseStatementTokens(std::move(tokens).value());
      if (!command.ok()) return Result<Statement>::Error(command.error());
      statement.command = command.value();
      return statement;
    }
  }
  Result<std::shared_ptr<sql::SqlQuery>> parsed = sql::ParseTokens(std::move(tokens).value());
  if (!parsed.ok()) return Result<Statement>::Error(parsed.error());
  statement.ast = parsed.value();
  return statement;
}

Session::ReadView Session::PinView() {
  if (txn_ != nullptr) {
    // A transaction's statements all read its pinned snapshot; once it has
    // buffered writes they read the private overlay instead (their own
    // uncommitted rows, invisible to every other session).
    return ReadView{txn_->snapshot(), txn_->dirty() ? txn_->read_catalog() : nullptr};
  }
  return ReadView{Pin(), nullptr};
}

Result<Session::CompiledRef> Session::Compile(const Catalog& catalog, uint64_t version,
                                              bool allow_cache,
                                              std::shared_ptr<const sql::SqlQuery> ast,
                                              const std::string& normalized,
                                              size_t param_count, const StatsCache* stats) {
  const bool use_cache = allow_cache && options_.plan_cache_capacity > 0;
  std::string key = cache_key_prefix_ + normalized;
  if (use_cache) {
    if (std::shared_ptr<const CompiledStatement> entry = database_->CacheLookup(key, version)) {
      return CompiledRef{std::move(entry), /*cache_hit=*/true};
    }
  }

  auto compiled = std::make_shared<CompiledStatement>();
  compiled->ast = std::move(ast);
  compiled->param_count = param_count;
  compiled->info.normalized_sql = normalized;
  std::set<std::string> tables;
  Result<PlanPtr> lowered = sql::LowerQuery(*compiled->ast, catalog);
  if (lowered.ok()) {
    compiled->info.compiled = true;
    compiled->info.lowered = lowered.value();
    OptimizerOptions optimizer_options = options_.optimizer;
    // Data-dependent runtime checks would have to evaluate subplans whose
    // predicates still carry '?' slots; compile parameterized statements
    // with the cheap declared-metadata preconditions only.
    if (param_count > 0) optimizer_options.allow_runtime_checks = false;
    Optimizer optimizer(catalog, optimizer_options, stats);
    OptimizationReport report = optimizer.Optimize(compiled->info.lowered);
    compiled->info.optimized = report.chosen;
    compiled->info.rewrites = std::move(report.steps);
    compiled->info.lowered_cost = report.original_cost;
    compiled->info.optimized_cost = report.chosen_cost;
    compiled->info.greedy_cost = report.greedy_cost;
    compiled->info.search_candidates = report.search_candidates;
    compiled->info.memo_hits = report.memo_hits;
    compiled->info.rewrite_budget_exhausted = report.budget_exhausted;
    database_->NoteCompile(compiled->info);
    CollectScanTables(compiled->info.optimized, &tables);
    CollectScanTables(compiled->info.lowered, &tables);
  } else if (options_.allow_oracle_fallback) {
    compiled->info.fallback_reason = lowered.error();
    // No plan to walk on the oracle path: the AST's table references are
    // the invalidation domain (including not-yet-created tables, so a
    // later CreateTable retires a cached "unknown table" outcome).
    sql::CollectTables(*compiled->ast, &tables);
  } else {
    return Result<CompiledRef>::Error(lowered.error());
  }

  if (use_cache) {
    database_->CacheInsert(key, compiled, version,
                           std::vector<std::string>(tables.begin(), tables.end()));
  }
  return CompiledRef{std::move(compiled), /*cache_hit=*/false};
}

Result<Session::BoundStatement> Session::CompileStatement(Statement statement) {
  if (sql::CountParameters(*statement.ast) > 0) {
    return Result<BoundStatement>::Error(
        "statement has unbound '?' parameters; use Session::Prepare");
  }
  BoundStatement bound;
  ReadView view = PinView();
  bound.snapshot = std::move(view.snapshot);
  bound.overlay = std::move(view.overlay);
  // Dirty-transaction statements compile against private data: both the
  // shared plan cache and the artifact recycler are off-limits for them
  // (a plan or divisor built over uncommitted rows must never be visible
  // at a committed catalog version).
  Result<CompiledRef> compiled =
      Compile(bound.exec_catalog(), bound.snapshot->version(),
              /*allow_cache=*/bound.overlay == nullptr, statement.ast, statement.normalized, 0,
              bound.overlay == nullptr ? &bound.snapshot->stats() : nullptr);
  if (!compiled.ok()) return Result<BoundStatement>::Error(compiled.error());
  bound.statement = std::move(statement);
  bound.compiled = std::move(compiled).value();
  bound.plan = bound.compiled.entry->info.optimized;
  bound.ast = bound.compiled.entry->ast;
  return bound;
}

Result<Session::BoundStatement> Session::BindPrepared(const PreparedStatement& prepared,
                                                      const std::vector<Value>& params) {
  if (params.size() != prepared.param_count_) {
    return Result<BoundStatement>::Error(
        "statement takes " + std::to_string(prepared.param_count_) + " parameter(s), got " +
        std::to_string(params.size()));
  }
  BoundStatement bound;
  ReadView view = PinView();
  bound.snapshot = std::move(view.snapshot);
  bound.overlay = std::move(view.overlay);
  // Compile-or-hit on the UNBOUND statement: one cache entry per prepared
  // statement, every binding a hit. (After DDL on a referenced table the
  // entry is stale and this recompiles against the new snapshot — prepared
  // statements survive DDL. Inside a dirty transaction the cache is
  // bypassed; see CompileStatement.)
  Result<CompiledRef> compiled =
      Compile(bound.exec_catalog(), bound.snapshot->version(),
              /*allow_cache=*/bound.overlay == nullptr, prepared.ast_, prepared.normalized_,
              prepared.param_count_,
              bound.overlay == nullptr ? &bound.snapshot->stats() : nullptr);
  if (!compiled.ok()) return Result<BoundStatement>::Error(compiled.error());
  bound.statement =
      Statement{prepared.explain_, prepared.analyze_, prepared.ast_, prepared.normalized_};
  bound.compiled = std::move(compiled).value();
  const CompiledStatement& entry = *bound.compiled.entry;
  if (entry.info.compiled) {
    // Bind the values into the cached optimized plan: a path copy touching
    // only the nodes whose predicates carry '?' slots.
    bound.plan = params.empty() ? entry.info.optimized
                                : BindPlanParameters(entry.info.optimized, params);
  } else {
    if (params.empty()) {
      bound.ast = entry.ast;
    } else {
      Result<std::shared_ptr<sql::SqlQuery>> ast = sql::BindParameters(*entry.ast, params);
      if (!ast.ok()) return Result<BoundStatement>::Error(ast.error());
      bound.ast = std::move(ast).value();
    }
  }
  return bound;
}

Result<QueryResult> Session::Run(const BoundStatement& bound) {
  const CompiledStatement& entry = *bound.compiled.entry;
  const Catalog& catalog = bound.exec_catalog();
  // Recycled artifacts are keyed on committed data versions; an overlay's
  // private versions can collide with them while holding different rows, so
  // dirty-transaction statements run with recycling off.
  PlannerOptions planner = options_.optimizer.planner;
  if (bound.overlay != nullptr) planner.recycler = nullptr;
  QueryResult out;
  out.compile = entry.info;
  out.compile.cache_hit = bound.compiled.cache_hit;
  size_t result_rows = 0;
  bool execute = !bound.statement.explain || bound.statement.analyze;
  if (execute) {
    // One governor per statement execution; registered so Cancel() from
    // another thread reaches it. A trip unwinds here as QueryAbort and
    // leaves through the typed-Status door — never as partial results.
    std::shared_ptr<QueryContext> context = MakeContext();
    try {
      if (entry.info.compiled) {
        out.rows = ExecutePlan(bound.plan, catalog, planner, &out.profile, context.get(),
                               bound.overlay == nullptr ? &bound.snapshot->stats() : nullptr);
      } else {
        database_->NoteFallbackExecution(entry.info.fallback_reason);
        ScopedQueryContext scope(context.get());
        out.rows = sql::ExecuteQueryOracle(*bound.ast, catalog);
        out.profile.explain =
            "OracleInterpreter (tuple-at-a-time fallback: " + entry.info.fallback_reason + ")\n";
        out.profile.total_rows = out.rows.size();
        out.profile.max_rows = out.rows.size();
        out.profile.rows_charged_bytes = context->charged_bytes();
        out.profile.cancelled = context->cancelled();
        out.profile.fault_site = context->fault_site();
        out.profile.spill_partitions = context->spill_partitions();
        out.profile.spill_bytes_written = context->spill_bytes_written();
      }
    } catch (const QueryAbort& e) {
      return Result<QueryResult>::Error(e.status());
    }
    // ORDER BY / LIMIT are statement-level result shaping: the plan computes
    // the full (canonical, duplicate-free) result, then this post-pass sorts
    // and truncates it deterministically.
    if (sql::HasOrderLimit(*entry.ast)) {
      Result<Relation> shaped = sql::ApplyOrderLimit(*entry.ast, std::move(out.rows));
      if (!shaped.ok()) return Result<QueryResult>::Error(shaped.error());
      out.rows = std::move(shaped).value();
    }
    result_rows = out.rows.size();
  }
  out.profile.rewrite_steps = entry.info.rewrites.size();
  out.profile.plan_cache_hit = bound.compiled.cache_hit;
  out.profile.fallback_reason = entry.info.fallback_reason;
  // Search accounting reports optimizer work THIS statement paid for; a
  // cache hit reused the searched plan without searching again.
  if (!bound.compiled.cache_hit) {
    out.profile.search_candidates = entry.info.search_candidates;
    out.profile.memo_hits = entry.info.memo_hits;
  }
  if (bound.statement.explain) {
    out.rows = RenderExplain(out.compile, bound.statement.analyze, out.profile, result_rows);
  }
  return out;
}

Result<ResultCursor> Session::Open(const BoundStatement& bound) {
  const CompiledStatement& entry = *bound.compiled.entry;
  // EXPLAIN output is tiny, and an ORDER BY needs the full result before
  // the first row can stream; both materialize through Run. (LIMIT alone
  // keeps the streaming path: the cursor cuts the stream after N rows.)
  if (bound.statement.explain || !entry.ast->order_by.empty() ||
      (!entry.info.compiled && sql::HasOrderLimit(*entry.ast))) {
    Result<QueryResult> result = Run(bound);
    if (!result.ok()) return Result<ResultCursor>::Error(result.status());
    CompileInfo info = result.value().compile;
    auto owned = std::make_shared<const Relation>(std::move(result.value().rows));
    return ResultCursor(std::make_unique<RelationScan>(owned), owned, std::move(info),
                        bound.snapshot, MakeContext(), bound.overlay);
  }
  CompileInfo info = entry.info;
  info.cache_hit = bound.compiled.cache_hit;
  // The cursor shares the governor: Cancel() reaches it for as long as the
  // cursor is alive, and every pull polls it.
  std::shared_ptr<QueryContext> context = MakeContext();
  PlannerOptions planner = options_.optimizer.planner;
  if (bound.overlay != nullptr) planner.recycler = nullptr;  // see Run
  if (entry.info.compiled) {
    IterPtr root = BuildPhysicalPlan(bound.plan, bound.exec_catalog(), planner,
                                     bound.overlay == nullptr ? &bound.snapshot->stats()
                                                              : nullptr);
    return ResultCursor(std::move(root), nullptr, std::move(info), bound.snapshot,
                        std::move(context), bound.overlay, entry.ast->limit);
  }
  // The oracle path materializes during Open; govern that burst too.
  ScopedQueryContext scope(context.get());
  auto owned = std::make_shared<const Relation>(
      sql::ExecuteQueryOracle(*bound.ast, bound.exec_catalog()));
  return ResultCursor(std::make_unique<RelationScan>(owned), owned, std::move(info),
                      bound.snapshot, std::move(context), bound.overlay);
}

Relation Session::RenderExplain(const CompileInfo& info, bool analyze,
                                const ExecProfile& profile, size_t result_rows) const {
  std::vector<std::string> lines;
  lines.push_back(analyze ? "EXPLAIN ANALYZE" : "EXPLAIN");
  lines.push_back(std::string("plan cache: ") + (info.cache_hit ? "hit" : "miss"));
  if (info.compiled) {
    lines.push_back("path: compiled (lower -> rewrite laws -> parallel pipeline executor)");
    lines.push_back("rewrites applied: " + std::to_string(info.rewrites.size()));
    AppendBlock(SummarizeRewrites(info.rewrites), "", &lines);
    char cost[160];
    std::snprintf(cost, sizeof(cost),
                  "estimated cost: %.1f -> %.1f (greedy fixpoint: %.1f)", info.lowered_cost,
                  info.optimized_cost, info.greedy_cost);
    lines.push_back(cost);
    if (info.search_candidates > 0) {
      std::string search = "search: " + std::to_string(info.search_candidates) +
                           " candidates, " + std::to_string(info.memo_hits) + " memo hits";
      if (info.rewrite_budget_exhausted) search += " (budget exhausted)";
      lines.push_back(std::move(search));
    } else {
      std::string search = "search: off (greedy fixpoint)";
      if (info.rewrite_budget_exhausted) search += " (budget exhausted)";
      lines.push_back(std::move(search));
    }
    lines.push_back("logical plan (lowered):");
    AppendBlock(info.lowered->ToString(), "  ", &lines);
    if (!info.rewrites.empty()) {
      lines.push_back("logical plan (after rewriting):");
      AppendBlock(info.optimized->ToString(), "  ", &lines);
    }
  } else {
    lines.push_back("path: oracle interpreter (fallback: " + info.fallback_reason + ")");
  }
  if (analyze) {
    lines.push_back("dop=" + std::to_string(profile.max_dop));
    std::string governor =
        "governor: charged=" + std::to_string(profile.rows_charged_bytes) + " bytes";
    if (profile.spill_partitions > 0) {
      governor += ", spill=" + std::to_string(profile.spill_partitions) + " partitions/" +
                  std::to_string(profile.spill_bytes_written) + " bytes";
    }
    if (profile.recycler_hits + profile.recycler_misses > 0) {
      governor += ", recycler=" + std::to_string(profile.recycler_hits) + " hits/" +
                  std::to_string(profile.recycler_misses) + " misses";
    }
    if (profile.cancelled) governor += ", cancelled";
    if (!profile.fault_site.empty()) governor += ", fault=" + profile.fault_site;
    lines.push_back(governor);
    lines.push_back("result rows: " + std::to_string(result_rows));
    lines.push_back("operator profile:");
    AppendBlock(profile.explain, "  ", &lines);
    if (!profile.pipelines.empty()) {
      lines.push_back("pipelines:");
      AppendBlock(profile.pipelines, "  ", &lines);
    }
  }
  std::vector<Tuple> rows;
  rows.reserve(lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i + 1)), Value::Str(lines[i])});
  }
  return Relation(Schema::Parse("line:int, detail:string"), std::move(rows));
}

// ------------------------------------------------- transaction control + DML

namespace {

/// One-row acknowledgement relation for BEGIN/COMMIT/ROLLBACK.
QueryResult ControlResult(const char* name) {
  QueryResult out;
  out.rows = Relation(Schema::Parse("status:string"), {{Value::Str(name)}});
  out.profile.total_rows = 1;
  return out;
}

/// One-row rows_affected relation for INSERT/DELETE.
QueryResult DmlResult(size_t rows_affected) {
  QueryResult out;
  out.rows = Relation(Schema::Parse("rows_affected:int"),
                      {{Value::Int(static_cast<int64_t>(rows_affected))}});
  out.profile.total_rows = 1;
  return out;
}

/// Attempts after which an autocommit DML statement stops retrying lost
/// first-committer-wins races and surfaces kConflict to the caller.
constexpr int kAutocommitAttempts = 8;

}  // namespace

Status Session::Begin() {
  if (txn_ != nullptr) {
    return Status::Error("already in a transaction (COMMIT or ROLLBACK first)");
  }
  txn_ = std::make_unique<Transaction>(Pin());
  database_->NoteTransactionBegin();
  return Status::Ok();
}

Status Session::Commit() {
  if (txn_ == nullptr) return Status::Error("no transaction in progress (BEGIN first)");
  // The transaction ends NOW, succeed or fail: a lost validation race rolls
  // back cleanly and the session is immediately usable (typically a retry).
  std::unique_ptr<Transaction> txn = std::move(txn_);
  Status status;
  try {
    // Governed commit: the session's fault injector and deadline reach the
    // txn.validate / txn.publish sites inside CommitWriteSet.
    std::shared_ptr<QueryContext> context = MakeContext();
    ScopedQueryContext scope(context.get());
    status = database_->CommitWriteSet(txn->WriteSet());
  } catch (const QueryAbort& e) {
    status = e.status();
  } catch (const std::exception& e) {
    status = Status::Error(e.what());
  }
  if (!status.ok()) database_->NoteTransactionRollback();
  Pin();  // observe the commit (or whatever state the failed attempt left)
  return status;
}

Status Session::Rollback() {
  if (txn_ == nullptr) return Status::Error("no transaction in progress (BEGIN first)");
  txn_.reset();
  database_->NoteTransactionRollback();
  Pin();
  return Status::Ok();
}

Result<size_t> Session::RunInsert(const sql::SqlInsert& insert) {
  if (txn_ != nullptr) {
    Result<std::vector<Tuple>> rows = sql::LowerInsert(insert, txn_->catalog());
    if (!rows.ok()) return Result<size_t>::Error(rows.status());
    return txn_->Insert(insert.table, std::move(rows).value());
  }
  // Autocommit: a single-statement transaction with a bounded
  // first-committer-wins retry loop — each attempt re-reads the newest
  // snapshot, so only a sustained stream of competing committers exhausts it.
  Status last;
  for (int attempt = 0; attempt < kAutocommitAttempts; ++attempt) {
    Transaction txn(database_->snapshot());
    Result<std::vector<Tuple>> rows = sql::LowerInsert(insert, txn.catalog());
    if (!rows.ok()) return Result<size_t>::Error(rows.status());
    Result<size_t> added = txn.Insert(insert.table, std::move(rows).value());
    if (!added.ok()) return added;
    Status committed = database_->CommitWriteSet(txn.WriteSet());
    if (committed.ok()) {
      Pin();
      return added;
    }
    if (committed.code() != StatusCode::kConflict) {
      return Result<size_t>::Error(std::move(committed));
    }
    last = std::move(committed);
  }
  return Result<size_t>::Error(std::move(last));
}

Result<size_t> Session::RunDelete(const sql::SqlDelete& del) {
  // Deletion is "replace the table with the survivors": evaluate
  // SELECT * FROM t WHERE NOT(pred) against the statement's read view.
  auto survivors_of = [&](const Catalog& catalog) -> Result<Relation> {
    if (!catalog.Has(del.table)) {
      return Result<Relation>::Error("unknown table '" + del.table + "' (CreateTable first)");
    }
    if (del.where == nullptr) {  // unconditional DELETE empties the table
      return Relation(catalog.Get(del.table).schema());
    }
    try {
      return sql::ExecuteQueryOracle(*sql::DeleteSurvivorQuery(del), catalog);
    } catch (const std::exception& e) {
      return Result<Relation>::Error(e.what());
    }
  };
  if (txn_ != nullptr) {
    Result<Relation> survivors = survivors_of(txn_->catalog());
    if (!survivors.ok()) return Result<size_t>::Error(survivors.status());
    return txn_->Replace(del.table, std::move(survivors).value());
  }
  Status last;
  for (int attempt = 0; attempt < kAutocommitAttempts; ++attempt) {
    Transaction txn(database_->snapshot());
    Result<Relation> survivors = survivors_of(txn.catalog());
    if (!survivors.ok()) return Result<size_t>::Error(survivors.status());
    Result<size_t> removed = txn.Replace(del.table, std::move(survivors).value());
    if (!removed.ok()) return removed;
    Status committed = database_->CommitWriteSet(txn.WriteSet());
    if (committed.ok()) {
      Pin();
      return removed;
    }
    if (committed.code() != StatusCode::kConflict) {
      return Result<size_t>::Error(std::move(committed));
    }
    last = std::move(committed);
  }
  return Result<size_t>::Error(std::move(last));
}

Result<QueryResult> Session::RunCommand(const sql::SqlStatement& command) {
  using Kind = sql::SqlStatement::Kind;
  switch (command.kind) {
    case Kind::kBegin: {
      Status status = Begin();
      if (!status.ok()) return Result<QueryResult>::Error(std::move(status));
      return ControlResult("BEGIN");
    }
    case Kind::kCommit: {
      Status status = Commit();
      if (!status.ok()) return Result<QueryResult>::Error(std::move(status));
      return ControlResult("COMMIT");
    }
    case Kind::kRollback: {
      Status status = Rollback();
      if (!status.ok()) return Result<QueryResult>::Error(std::move(status));
      return ControlResult("ROLLBACK");
    }
    case Kind::kInsert: {
      Result<size_t> added = RunInsert(command.insert);
      if (!added.ok()) return Result<QueryResult>::Error(added.status());
      return DmlResult(added.value());
    }
    case Kind::kDelete: {
      Result<size_t> removed = RunDelete(command.del);
      if (!removed.ok()) return Result<QueryResult>::Error(removed.status());
      return DmlResult(removed.value());
    }
    case Kind::kSelect: break;  // never parsed into a command
  }
  return Result<QueryResult>::Error("unsupported statement");
}

// ------------------------------------------------------------- entry points

Result<QueryResult> Session::Execute(const std::string& sql) {
  try {
    Result<Statement> statement = ParseStatement(sql);
    if (!statement.ok()) return Result<QueryResult>::Error(statement.error());
    if (statement.value().command != nullptr) {
      return RunCommand(*statement.value().command);
    }
    Result<BoundStatement> bound = CompileStatement(std::move(statement).value());
    if (!bound.ok()) return Result<QueryResult>::Error(bound.error());
    return Run(bound.value());
  } catch (const QueryAbort& e) {
    return Result<QueryResult>::Error(e.status());
  } catch (const std::exception& e) {
    return Result<QueryResult>::Error(e.what());
  }
}

Result<ResultCursor> Session::Query(const std::string& sql) {
  try {
    Result<Statement> statement = ParseStatement(sql);
    if (!statement.ok()) return Result<ResultCursor>::Error(statement.error());
    if (statement.value().command != nullptr) {
      // Control/DML through the cursor API: run it, stream the one-row ack.
      Result<QueryResult> result = RunCommand(*statement.value().command);
      if (!result.ok()) return Result<ResultCursor>::Error(result.status());
      CompileInfo info = result.value().compile;
      auto owned = std::make_shared<const Relation>(std::move(result.value().rows));
      return ResultCursor(std::make_unique<RelationScan>(owned), owned, std::move(info),
                          snapshot_, nullptr);
    }
    Result<BoundStatement> bound = CompileStatement(std::move(statement).value());
    if (!bound.ok()) return Result<ResultCursor>::Error(bound.error());
    return Open(bound.value());
  } catch (const QueryAbort& e) {
    return Result<ResultCursor>::Error(e.status());
  } catch (const std::exception& e) {
    return Result<ResultCursor>::Error(e.what());
  }
}

Result<PreparedStatement> Session::Prepare(const std::string& sql) {
  try {
    Result<Statement> statement = ParseStatement(sql);
    if (!statement.ok()) return Result<PreparedStatement>::Error(statement.error());
    if (statement.value().command != nullptr) {
      return Result<PreparedStatement>::Error(
          "cannot prepare transaction control or DML statements");
    }
    PreparedStatement prepared;
    prepared.session_ = this;
    prepared.ast_ = statement.value().ast;
    prepared.normalized_ = statement.value().normalized;
    prepared.param_count_ = sql::CountParameters(*statement.value().ast);
    prepared.explain_ = statement.value().explain;
    prepared.analyze_ = statement.value().analyze;
    // Warm the shared cache now: the statement compiles (lower → rewrite)
    // exactly once here; every Execute/Query binding is then a cache hit.
    // Compile errors (possible only with the oracle fallback disabled) are
    // surfaced by Execute/Query, preserving the Prepare-never-compiles
    // error contract. With caching disabled the result could not be kept,
    // so don't compile a throwaway — and inside a transaction the warm-up
    // is skipped too (dirty overlays never publish to the shared cache;
    // BindPrepared compiles against the txn view on first use).
    if (options_.plan_cache_capacity > 0 && txn_ == nullptr) {
      const SnapshotPtr& pinned = Pin();
      (void)Compile(pinned->catalog(), pinned->version(), /*allow_cache=*/true, prepared.ast_,
                    prepared.normalized_, prepared.param_count_, &pinned->stats());
    }
    return prepared;
  } catch (const std::exception& e) {
    return Result<PreparedStatement>::Error(e.what());
  }
}

}  // namespace quotient
