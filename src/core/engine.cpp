#include "core/engine.hpp"

namespace quotient {

RewriteEngine RewriteEngine::Default() { return RewriteEngine(DefaultRuleSet()); }

PlanPtr RewriteEngine::TryNode(const PlanPtr& node, const RewriteContext& context,
                               RewriteStep* step) const {
  for (const RulePtr& rule : rules_) {
    PlanPtr replacement = rule->Apply(node, context);
    if (replacement != nullptr) {
      if (step != nullptr) {
        step->rule = rule->name();
        step->before = node->ToString();
        step->after = replacement->ToString();
      }
      return replacement;
    }
  }
  // No rule fired here; recurse into children (pre-order).
  const std::vector<PlanPtr>& children = node->children();
  for (size_t i = 0; i < children.size(); ++i) {
    PlanPtr rewritten = TryNode(children[i], context, step);
    if (rewritten != nullptr) {
      std::vector<PlanPtr> new_children = children;
      new_children[i] = std::move(rewritten);
      return node->WithChildren(std::move(new_children));
    }
  }
  return nullptr;
}

PlanPtr RewriteEngine::RewriteOnce(const PlanPtr& plan, const RewriteContext& context,
                                   RewriteStep* step) const {
  return TryNode(plan, context, step);
}

PlanPtr RewriteEngine::Rewrite(const PlanPtr& plan, const RewriteContext& context,
                               std::vector<RewriteStep>* trace, size_t max_steps) const {
  PlanPtr current = plan;
  for (size_t i = 0; i < max_steps; ++i) {
    RewriteStep step;
    PlanPtr next = RewriteOnce(current, context, trace != nullptr ? &step : nullptr);
    if (next == nullptr) break;
    if (trace != nullptr) trace->push_back(std::move(step));
    current = std::move(next);
  }
  return current;
}

std::string SummarizeRewrites(const std::vector<RewriteStep>& trace) {
  if (trace.empty()) return "  (none)\n";
  std::string out;
  for (size_t i = 0; i < trace.size(); ++i) {
    out += "  " + std::to_string(i + 1) + ". " + trace[i].rule + "\n";
  }
  return out;
}

}  // namespace quotient
