#include "core/engine.hpp"

#include <functional>

namespace quotient {

RewriteEngine RewriteEngine::Default() { return RewriteEngine(DefaultRuleSet()); }

PlanPtr RewriteEngine::TryNode(const PlanPtr& node, const RewriteContext& context,
                               RewriteStep* step) const {
  for (const RulePtr& rule : rules_) {
    PlanPtr replacement = rule->Apply(node, context);
    if (replacement != nullptr) {
      if (step != nullptr) {
        step->rule = rule->name();
        step->before = node->ToString();
        step->after = replacement->ToString();
      }
      return replacement;
    }
  }
  // No rule fired here; recurse into children (pre-order).
  const std::vector<PlanPtr>& children = node->children();
  for (size_t i = 0; i < children.size(); ++i) {
    PlanPtr rewritten = TryNode(children[i], context, step);
    if (rewritten != nullptr) {
      std::vector<PlanPtr> new_children = children;
      new_children[i] = std::move(rewritten);
      return node->WithChildren(std::move(new_children));
    }
  }
  return nullptr;
}

PlanPtr RewriteEngine::RewriteOnce(const PlanPtr& plan, const RewriteContext& context,
                                   RewriteStep* step) const {
  return TryNode(plan, context, step);
}

PlanPtr RewriteEngine::Rewrite(const PlanPtr& plan, const RewriteContext& context,
                               std::vector<RewriteStep>* trace, size_t max_steps,
                               bool* budget_exhausted) const {
  if (budget_exhausted != nullptr) *budget_exhausted = false;
  PlanPtr current = plan;
  for (size_t i = 0;; ++i) {
    RewriteStep step;
    PlanPtr next = RewriteOnce(current, context, trace != nullptr ? &step : nullptr);
    if (next == nullptr) break;  // converged
    if (i >= max_steps) {
      // A rewrite is still available but the budget is spent: surface it —
      // a silently truncated fixpoint looks exactly like convergence.
      if (budget_exhausted != nullptr) *budget_exhausted = true;
      if (trace != nullptr) trace->push_back({kRewriteBudgetExhausted, "", "", 0});
      break;
    }
    if (trace != nullptr) trace->push_back(std::move(step));
    current = std::move(next);
  }
  return current;
}

std::vector<RewriteAlternative> RewriteEngine::Enumerate(const PlanPtr& plan,
                                                         const RewriteContext& context) const {
  std::vector<RewriteAlternative> out;
  // Recursive walk: at every node try every rule; a match is spliced back
  // into a full root plan through the accumulated rebuild closure.
  std::function<void(const PlanPtr&, const std::function<PlanPtr(PlanPtr)>&)> walk =
      [&](const PlanPtr& node, const std::function<PlanPtr(PlanPtr)>& rebuild) {
        for (const RulePtr& rule : rules_) {
          PlanPtr replacement = rule->Apply(node, context);
          if (replacement == nullptr) continue;
          RewriteAlternative alt;
          alt.step.rule = rule->name();
          alt.step.before = node->ToString();
          alt.step.after = replacement->ToString();
          alt.plan = rebuild(std::move(replacement));
          out.push_back(std::move(alt));
        }
        const std::vector<PlanPtr>& children = node->children();
        for (size_t i = 0; i < children.size(); ++i) {
          auto child_rebuild = [&rebuild, &node, &children, i](PlanPtr p) {
            std::vector<PlanPtr> new_children = children;
            new_children[i] = std::move(p);
            return rebuild(node->WithChildren(std::move(new_children)));
          };
          walk(children[i], child_rebuild);
        }
      };
  walk(plan, [](PlanPtr p) { return p; });
  return out;
}

std::string SummarizeRewrites(const std::vector<RewriteStep>& trace) {
  if (trace.empty()) return "  (none)\n";
  std::string out;
  for (size_t i = 0; i < trace.size(); ++i) {
    out += "  " + std::to_string(i + 1) + ". " + trace[i].rule + "\n";
  }
  return out;
}

}  // namespace quotient
