#include "core/rules.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "algebra/divide.hpp"
#include "plan/evaluate.hpp"
#include "util/status.hpp"

namespace quotient {

namespace {

using Kind = LogicalOp::Kind;

bool SameNameSet(std::vector<std::string> a, std::vector<std::string> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

bool PredicateOver(const ExprPtr& p, const std::vector<std::string>& names) {
  return p->RefersOnlyTo(names);
}

/// Evaluates a subplan when that is affordable: inline Values literals are
/// free; everything else — including base-table scans, whose contents an
/// optimizer would not scan at rewrite time — requires
/// allow_runtime_checks (the paper's point that "testing condition c1 can
/// be expensive", §5.1.1). Declared catalog constraints are the cheap path.
std::optional<Relation> EvaluateIfAllowed(const PlanPtr& plan, const RewriteContext& context) {
  if (plan->kind() == Kind::kValues) return plan->values();
  if (context.allow_runtime_checks && context.catalog != nullptr) {
    return Evaluate(plan, *context.catalog);
  }
  return std::nullopt;
}

/// Tries to establish π_attrs(x) ∩ π_attrs(y) = ∅, first from catalog
/// declarations (scan inputs), then from data if allowed.
bool ProvablyDisjoint(const PlanPtr& x, const PlanPtr& y,
                      const std::vector<std::string>& attrs, const RewriteContext& context) {
  if (context.catalog != nullptr && x->kind() == Kind::kScan && y->kind() == Kind::kScan &&
      context.catalog->AreDisjoint(x->table(), y->table(), attrs)) {
    return true;
  }
  std::optional<Relation> rx = EvaluateIfAllowed(x, context);
  std::optional<Relation> ry = EvaluateIfAllowed(y, context);
  if (rx && ry) return Catalog::CheckDisjoint(*rx, *ry, attrs);
  return false;
}

/// Tries to establish π_attrs(from) ⊆ π_attrs(to).
bool ProvablySubset(const PlanPtr& from, const PlanPtr& to,
                    const std::vector<std::string>& attrs, const RewriteContext& context) {
  if (context.catalog != nullptr && from->kind() == Kind::kScan && to->kind() == Kind::kScan &&
      context.catalog->HasForeignKey(from->table(), attrs, to->table())) {
    return true;
  }
  std::optional<Relation> rfrom = EvaluateIfAllowed(from, context);
  std::optional<Relation> rto = EvaluateIfAllowed(to, context);
  if (rfrom && rto) return Catalog::CheckForeignKey(*rfrom, *rto, attrs);
  return false;
}

bool ProvablyNonEmpty(const PlanPtr& plan, const RewriteContext& context) {
  std::optional<Relation> r = EvaluateIfAllowed(plan, context);
  return r && !r->empty();
}

/// A rule defined by a declarative descriptor and a match/build function.
class LambdaRule : public RewriteRule {
 public:
  using Fn = PlanPtr (*)(const PlanPtr&, const RewriteContext&);
  LambdaRule(const RuleInfo& info, Fn fn) : info_(info), fn_(fn) {}
  const RuleInfo& info() const override { return info_; }
  PlanPtr Apply(const PlanPtr& node, const RewriteContext& context) const override {
    return fn_(node, context);
  }

 private:
  RuleInfo info_;
  Fn fn_;
};

RulePtr Rule(const RuleInfo& info, LambdaRule::Fn fn) {
  return std::make_unique<LambdaRule>(info, fn);
}

// ---------------------------------------------------------------- Law 1 ----
PlanPtr ApplyLaw1(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& divisor = node->right();
  if (divisor->kind() != Kind::kUnion) return nullptr;
  const PlanPtr& dividend = node->left();
  // r1 ÷ (r2' ∪ r2'') = (r1 ⋉ (r1 ÷ r2')) ÷ r2''
  PlanPtr inner = LogicalOp::Divide(dividend, divisor->left());
  return LogicalOp::Divide(LogicalOp::SemiJoin(dividend, inner), divisor->right());
}

// ---------------------------------------------------------------- Law 2 ----
PlanPtr ApplyLaw2(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kUnion) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  // The cheap sufficient condition c2: disjoint quotient-candidate sets.
  if (!ProvablyDisjoint(dividend->left(), dividend->right(), attrs.a, context)) return nullptr;
  return LogicalOp::Union(LogicalOp::Divide(dividend->left(), node->right()),
                          LogicalOp::Divide(dividend->right(), node->right()));
}

// ---------------------------------------------------------------- Law 3 ----
PlanPtr ApplyLaw3(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kSelect) return nullptr;
  const PlanPtr& divide = node->child(0);
  if (divide->kind() != Kind::kDivide) return nullptr;
  // The quotient schema is exactly A, so any valid predicate is p(A).
  return LogicalOp::Divide(LogicalOp::Select(divide->left(), node->predicate()),
                           divide->right());
}

// ---------------------------------------------------------------- Law 4 ----
PlanPtr ApplyLaw4(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& divisor = node->right();
  if (divisor->kind() != Kind::kSelect) return nullptr;
  const ExprPtr& p = divisor->predicate();
  // Terminate: skip if the dividend is already filtered by this predicate.
  const PlanPtr& dividend = node->left();
  if (dividend->kind() == Kind::kSelect && dividend->predicate()->Equals(*p)) return nullptr;
  // Erratum guard (see laws.hpp): Law 4 needs σp(r2) ≠ ∅, otherwise the
  // rewrite changes πA(r1) into πA(σp(r1)).
  if (!ProvablyNonEmpty(divisor, context)) return nullptr;
  return LogicalOp::Divide(LogicalOp::Select(dividend, p), divisor);
}

// ------------------------------------------------------------ Example 1 ----
PlanPtr ApplyExample1(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kSelect) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  const ExprPtr& p = dividend->predicate();
  if (!PredicateOver(p, attrs.b)) return nullptr;
  const PlanPtr& divisor = node->right();
  // Terminate: if the divisor is already σp(...) this is Law 4's output.
  if (divisor->kind() == Kind::kSelect && divisor->predicate()->Equals(*p)) return nullptr;
  const PlanPtr& base = dividend->child(0);
  PlanPtr matching =
      LogicalOp::Divide(dividend, LogicalOp::Select(divisor, p));
  PlanPtr blocker = LogicalOp::Project(
      LogicalOp::Product(LogicalOp::Project(base, attrs.a),
                         LogicalOp::Select(divisor, Expr::Not(p))),
      attrs.a);
  return LogicalOp::Difference(matching, blocker);
}

// ---------------------------------------------------------------- Law 5 ----
PlanPtr ApplyLaw5(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kIntersect) return nullptr;
  // Erratum guard (see laws.hpp): Law 5 needs r2 ≠ ∅.
  if (!ProvablyNonEmpty(node->right(), context)) return nullptr;
  return LogicalOp::Intersect(LogicalOp::Divide(dividend->left(), node->right()),
                              LogicalOp::Divide(dividend->right(), node->right()));
}

// ---------------------------------------------------------------- Law 6 ----
PlanPtr ApplyLaw6(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kDifference) return nullptr;
  const PlanPtr& minuend = dividend->left();
  const PlanPtr& subtrahend = dividend->right();
  DivisionAttributes attrs = node->division_attributes();
  // The paper's shape: both sides are A-restrictions of the same base
  // relation with σp'' ⊆ σp'.
  if (minuend->kind() != Kind::kSelect || subtrahend->kind() != Kind::kSelect) return nullptr;
  if (!minuend->child(0)->Equals(*subtrahend->child(0))) return nullptr;
  if (!PredicateOver(minuend->predicate(), attrs.a) ||
      !PredicateOver(subtrahend->predicate(), attrs.a)) {
    return nullptr;
  }
  std::optional<Relation> base = EvaluateIfAllowed(minuend->child(0), context);
  if (!base) return nullptr;
  if (!Select(*base, subtrahend->predicate()).SubsetOf(Select(*base, minuend->predicate()))) {
    return nullptr;
  }
  return LogicalOp::Difference(LogicalOp::Divide(minuend, node->right()),
                               LogicalOp::Divide(subtrahend, node->right()));
}

// ---------------------------------------------------------------- Law 7 ----
PlanPtr ApplyLaw7(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDifference) return nullptr;
  const PlanPtr& left = node->left();
  const PlanPtr& right = node->right();
  if (left->kind() != Kind::kDivide || right->kind() != Kind::kDivide) return nullptr;
  if (!left->right()->Equals(*right->right())) return nullptr;  // same divisor
  DivisionAttributes attrs = left->division_attributes();
  if (!ProvablyDisjoint(left->left(), right->left(), attrs.a, context)) return nullptr;
  return left;  // (r1' ÷ r2) − (r1'' ÷ r2) = r1' ÷ r2
}

// ---------------------------------------------------------------- Law 8 ----
PlanPtr ApplyLaw8(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kProduct) return nullptr;
  const PlanPtr& star = dividend->left();
  const PlanPtr& star_star = dividend->right();
  // All divisor attributes must come from the right factor.
  if (!star_star->schema().ContainsAll(node->right()->schema())) return nullptr;
  // The right factor must keep at least one quotient attribute (A2 may be
  // empty in the paper's statement only if A1 covers A; our Divide requires
  // nonempty A on the inner divide, so guard it).
  if (star_star->schema().NamesMinus(node->right()->schema()).empty()) return nullptr;
  return LogicalOp::Product(star, LogicalOp::Divide(star_star, node->right()));
}

// ---------------------------------------------------------------- Law 9 ----
PlanPtr ApplyLaw9(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kProduct) return nullptr;
  const PlanPtr& star = dividend->left();
  const PlanPtr& star_star = dividend->right();
  const PlanPtr& divisor = node->right();
  // r1** must consist solely of divisor attributes (the B2 block) ...
  std::vector<std::string> b2 = star_star->schema().Names();
  if (!divisor->schema().ContainsAll(star_star->schema())) return nullptr;
  std::vector<std::string> b1 = divisor->schema().NamesMinus(star_star->schema());
  if (b1.empty()) return nullptr;   // B1 must be nonempty
  // ... and r1* must hold those B1 attributes (it is the A ∪ B1 block).
  for (const std::string& name : b1) {
    if (!star->schema().Contains(name)) return nullptr;
  }
  // Preconditions: πB2(r2) ⊆ r1** and r1** ≠ ∅.
  if (!ProvablySubset(divisor, star_star, b2, context)) return nullptr;
  if (!ProvablyNonEmpty(star_star, context)) return nullptr;
  return LogicalOp::Divide(star, LogicalOp::Project(divisor, b1));
}

// --------------------------------------------------------------- Law 10 ----
PlanPtr ApplyLaw10(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kSemiJoin) return nullptr;
  const PlanPtr& divide = node->left();
  if (divide->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& r3 = node->right();
  DivisionAttributes attrs = divide->division_attributes();
  // r3's schema must be within A for the semi-join to commute with ÷.
  if (!divide->left()->schema().Project(attrs.a).ContainsAll(r3->schema())) return nullptr;
  return LogicalOp::Divide(LogicalOp::SemiJoin(divide->left(), r3), divide->right());
}

// --------------------------------------------------------------- Law 11 ----
PlanPtr ApplyLaw11(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& grouped = node->left();
  if (grouped->kind() != Kind::kGroupBy) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  // r1 = Aγ...(r0): the grouping attributes are exactly the quotient
  // attributes, so A is a key of the dividend.
  if (!SameNameSet(grouped->group_names(), attrs.a)) return nullptr;
  const PlanPtr& divisor = node->right();

  // Compile the three-way case analysis into pure algebra using degenerate
  // semi-joins as guards (⋉ with no common attribute keeps the left side
  // iff the right side is nonempty):
  //   result =   (πA(r1) ⋉ σc=0(γcount(r2)))       -- r2 empty
  //            ∪ (πA(r1 ⋉ r2) ⋉ σc=1(γcount(r2)))  -- |r2| = 1
  //   (both guards empty when |r2| > 1 ⇒ result = ∅).
  const std::string count_attr = divisor->schema().attribute(0).name;
  PlanPtr counted =
      LogicalOp::GroupBy(divisor, {}, {{AggFunc::kCount, count_attr, "c$law11"}});
  PlanPtr guard_empty =
      LogicalOp::Select(counted, Expr::ColCmp("c$law11", CmpOp::kEq, Value::Int(0)));
  PlanPtr guard_one =
      LogicalOp::Select(counted, Expr::ColCmp("c$law11", CmpOp::kEq, Value::Int(1)));
  PlanPtr case_empty = LogicalOp::SemiJoin(LogicalOp::Project(grouped, attrs.a), guard_empty);
  PlanPtr case_one = LogicalOp::SemiJoin(
      LogicalOp::Project(LogicalOp::SemiJoin(grouped, divisor), attrs.a), guard_one);
  return LogicalOp::Union(case_empty, case_one);
}

// --------------------------------------------------------------- Law 12 ----
PlanPtr ApplyLaw12(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& grouped = node->left();
  if (grouped->kind() != Kind::kGroupBy) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  // r1 = Bγ...(r0): grouping attributes are exactly the divisor attributes,
  // so B is a key of the dividend.
  if (!SameNameSet(grouped->group_names(), attrs.b)) return nullptr;
  const PlanPtr& divisor = node->right();
  // Preconditions: r2 ≠ ∅ and r2.B ⊆ πB(r1) = πB(r0).
  if (!ProvablyNonEmpty(divisor, context)) return nullptr;
  if (!ProvablySubset(divisor, grouped->child(0), attrs.b, context)) return nullptr;

  //   e = πA(r1 ⋉ r2);   result = e ⋉ σc=1(γcount(e))
  PlanPtr e = LogicalOp::Project(LogicalOp::SemiJoin(grouped, divisor), attrs.a);
  PlanPtr counted = LogicalOp::GroupBy(e, {}, {{AggFunc::kCount, attrs.a[0], "c$law12"}});
  PlanPtr guard =
      LogicalOp::Select(counted, Expr::ColCmp("c$law12", CmpOp::kEq, Value::Int(1)));
  return LogicalOp::SemiJoin(e, guard);
}

// --------------------------------------------------------------- Law 13 ----
PlanPtr ApplyLaw13(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kGreatDivide) return nullptr;
  const PlanPtr& divisor = node->right();
  if (divisor->kind() != Kind::kUnion) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  if (attrs.c.empty()) return nullptr;
  if (!ProvablyDisjoint(divisor->left(), divisor->right(), attrs.c, context)) return nullptr;
  return LogicalOp::Union(LogicalOp::GreatDivide(node->left(), divisor->left()),
                          LogicalOp::GreatDivide(node->left(), divisor->right()));
}

// --------------------------------------------------------------- Law 14 ----
PlanPtr ApplyLaw14(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kSelect) return nullptr;
  const PlanPtr& gd = node->child(0);
  if (gd->kind() != Kind::kGreatDivide) return nullptr;
  DivisionAttributes attrs = gd->division_attributes();
  if (!PredicateOver(node->predicate(), attrs.a)) return nullptr;
  return LogicalOp::GreatDivide(LogicalOp::Select(gd->left(), node->predicate()),
                                gd->right());
}

// --------------------------------------------------------------- Law 15 ----
PlanPtr ApplyLaw15(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kSelect) return nullptr;
  const PlanPtr& gd = node->child(0);
  if (gd->kind() != Kind::kGreatDivide) return nullptr;
  DivisionAttributes attrs = gd->division_attributes();
  if (attrs.c.empty()) return nullptr;
  if (!PredicateOver(node->predicate(), attrs.c)) return nullptr;
  return LogicalOp::GreatDivide(gd->left(),
                                LogicalOp::Select(gd->right(), node->predicate()));
}

// --------------------------------------------------------------- Law 16 ----
PlanPtr ApplyLaw16(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kGreatDivide) return nullptr;
  const PlanPtr& divisor = node->right();
  if (divisor->kind() != Kind::kSelect) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  const ExprPtr& p = divisor->predicate();
  if (!PredicateOver(p, attrs.b)) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() == Kind::kSelect && dividend->predicate()->Equals(*p)) return nullptr;
  return LogicalOp::GreatDivide(LogicalOp::Select(dividend, p), divisor);
}

// --------------------------------------------------------------- Law 17 ----
PlanPtr ApplyLaw17(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kGreatDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kProduct) return nullptr;
  const PlanPtr& star = dividend->left();
  const PlanPtr& star_star = dividend->right();
  DivisionAttributes attrs = node->division_attributes();
  // The divisor's B attributes must all come from the right factor.
  for (const std::string& name : attrs.b) {
    if (!star_star->schema().Contains(name)) return nullptr;
  }
  // The right factor must keep a quotient attribute for the inner ÷*.
  bool star_star_has_a = false;
  for (const std::string& name : attrs.a) {
    if (star_star->schema().Contains(name)) star_star_has_a = true;
  }
  if (!star_star_has_a) return nullptr;
  (void)star;
  return LogicalOp::Product(star, LogicalOp::GreatDivide(star_star, node->right()));
}

// ------------------------------------------------------------ Example 4 ----
PlanPtr ApplyExample4(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kThetaJoin) return nullptr;
  const PlanPtr& left = node->left();
  const PlanPtr& gd = node->right();
  if (gd->kind() != Kind::kGreatDivide) return nullptr;
  DivisionAttributes attrs = gd->division_attributes();
  // The join condition may touch only the outer relation and the quotient's
  // A attributes (which come from the dividend) — then the join commutes
  // with ÷* (Laws 17 + 14 composed, Example 4).
  std::vector<std::string> allowed = left->schema().Names();
  allowed.insert(allowed.end(), attrs.a.begin(), attrs.a.end());
  if (!PredicateOver(node->predicate(), allowed)) return nullptr;
  return LogicalOp::GreatDivide(
      LogicalOp::ThetaJoin(left, gd->left(), node->predicate()), gd->right());
}

// ------------------------------------------------- Healy expansion rule ----
PlanPtr ApplyHealyExpansion(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kDivide) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  PlanPtr pa = LogicalOp::Project(node->left(), attrs.a);
  return LogicalOp::Difference(
      pa, LogicalOp::Project(
              LogicalOp::Difference(LogicalOp::Product(pa, node->right()), node->left()),
              attrs.a));
}

}  // namespace

RulePtr MakeLaw1DivisorUnionRule() {
  static constexpr RuleInfo kInfo{
      "law1-divisor-union", 1, "r1 \u00f7 (s \u222a t)",
      "pipeline the quotient of one divide into the next instead of dividing by the union"};
  return Rule(kInfo, ApplyLaw1);
}
RulePtr MakeLaw2DividendUnionRule() {
  static constexpr RuleInfo kInfo{
      "law2-dividend-union", 2, "(s \u222a t) \u00f7 r2 with c1/c2",
      "divide the branches independently and union the quotients"};
  return Rule(kInfo, ApplyLaw2);
}
RulePtr MakeLaw3SelectionPushdownRule() {
  static constexpr RuleInfo kInfo{
      "law3-selection-pushdown", 3, "\u03c3p(A)(r1 \u00f7 r2)",
      "filter the dividend before dividing: the divide sees only surviving groups"};
  return Rule(kInfo, ApplyLaw3);
}
RulePtr MakeLaw4ReplicateSelectionRule() {
  static constexpr RuleInfo kInfo{
      "law4-replicate-selection", 4, "r1 \u00f7 \u03c3p(B)(r2)",
      "replicate the divisor's B-selection onto the dividend to shrink both inputs"};
  return Rule(kInfo, ApplyLaw4);
}
RulePtr MakeExample1DividendSelectionRule() {
  static constexpr RuleInfo kInfo{
      "example1-dividend-selection", 0, "\u03c3p(B)(r1) \u00f7 r2",
      "reshape a dividend B-selection into a divisor-side form (Example 1's extreme case)"};
  return Rule(kInfo, ApplyExample1);
}
RulePtr MakeLaw5IntersectRule() {
  static constexpr RuleInfo kInfo{
      "law5-intersect", 5, "(s \u2229 t) \u00f7 r2",
      "divide the smaller operand and semi-join the other instead of materializing the intersection"};
  return Rule(kInfo, ApplyLaw5);
}
RulePtr MakeLaw6DifferenceRule() {
  static constexpr RuleInfo kInfo{
      "law6-difference", 6, "(s \u2212 t) \u00f7 r2 with \u03c3' \u2287 \u03c3''",
      "divide s and prune with t's quotient instead of materializing the difference"};
  return Rule(kInfo, ApplyLaw6);
}
RulePtr MakeLaw7DifferencePruneRule() {
  static constexpr RuleInfo kInfo{
      "law7-difference-prune", 7, "(s \u2212 t) \u00f7 r2 with disjoint projections",
      "drop the subtrahend divide entirely: disjointness makes it empty"};
  return Rule(kInfo, ApplyLaw7);
}
RulePtr MakeLaw8ProductRule() {
  static constexpr RuleInfo kInfo{
      "law8-product", 8, "(s \u00d7 t) \u00f7 r2, divisor-free factor",
      "divide only the factor that shares attributes with the divisor"};
  return Rule(kInfo, ApplyLaw8);
}
RulePtr MakeLaw9ProductRule() {
  static constexpr RuleInfo kInfo{
      "law9-product", 9, "(s \u00d7 t) \u00f7 r2, divisor-covered factor",
      "the covered factor divides to its A-projection when the divisor is contained"};
  return Rule(kInfo, ApplyLaw9);
}
RulePtr MakeLaw10SemiJoinRule() {
  static constexpr RuleInfo kInfo{
      "law10-semijoin", 10, "(r1 \u00f7 r2) \u22c9 s",
      "semi-join the dividend first so the divide only groups surviving candidates"};
  return Rule(kInfo, ApplyLaw10);
}
RulePtr MakeLaw11GroupedDividendRule() {
  static constexpr RuleInfo kInfo{
      "law11-grouped-dividend", 11, "r1 \u00f7 r2 with A a key of r1",
      "one-tuple groups make the divide a guarded semi-join"};
  return Rule(kInfo, ApplyLaw11);
}
RulePtr MakeLaw12GroupedDividendRule() {
  static constexpr RuleInfo kInfo{
      "law12-grouped-dividend", 12, "r1 \u00f7 r2 with B a key + FK",
      "the foreign key guarantees containment: the divide becomes a guarded semi-join"};
  return Rule(kInfo, ApplyLaw12);
}
RulePtr MakeLaw13GreatDivisorUnionRule() {
  static constexpr RuleInfo kInfo{
      "law13-great-divisor-union", 13, "r1 \u00f7* (s \u222a t), C-disjoint",
      "partition the great divide by divisor branch and union the results"};
  return Rule(kInfo, ApplyLaw13);
}
RulePtr MakeLaw14SelectionPushdownRule() {
  static constexpr RuleInfo kInfo{
      "law14-selection-pushdown", 14, "\u03c3p(A)(r1 \u00f7* r2)",
      "filter the dividend before the great divide sees it"};
  return Rule(kInfo, ApplyLaw14);
}
RulePtr MakeLaw15DivisorSelectionRule() {
  static constexpr RuleInfo kInfo{
      "law15-divisor-selection", 15, "\u03c3p(C)(r1 \u00f7* r2)",
      "filter the divisor's C-groups before the great divide builds them"};
  return Rule(kInfo, ApplyLaw15);
}
RulePtr MakeLaw16ReplicateSelectionRule() {
  static constexpr RuleInfo kInfo{
      "law16-replicate-selection", 16, "r1 \u00f7* \u03c3p(B)(r2)",
      "replicate the divisor's B-selection onto the dividend to shrink both inputs"};
  return Rule(kInfo, ApplyLaw16);
}
RulePtr MakeLaw17ProductRule() {
  static constexpr RuleInfo kInfo{
      "law17-product", 17, "(s \u00d7 t) \u00f7* r2",
      "divide only the factor sharing attributes with the divisor"};
  return Rule(kInfo, ApplyLaw17);
}
RulePtr MakeExample4JoinPushRule() {
  static constexpr RuleInfo kInfo{
      "example4-join-push", 0, "(r1 \u00f7* r2) \u22c8 s on A",
      "push an equi-join below the great divide to shrink the dividend (Example 4)"};
  return Rule(kInfo, ApplyExample4);
}
RulePtr MakeDivideToHealyExpansionRule() {
  static constexpr RuleInfo kInfo{
      "divide-to-healy-expansion", 0, "r1 \u00f7 r2",
      "baseline: expand into Healy's basic-algebra form (demonstrates why first-class division wins)"};
  return Rule(kInfo, ApplyHealyExpansion);
}

std::vector<RulePtr> DefaultRuleSet() {
  std::vector<RulePtr> rules;
  // Selection pushdowns first: they shrink inputs for everything else.
  rules.push_back(MakeLaw3SelectionPushdownRule());
  rules.push_back(MakeLaw14SelectionPushdownRule());
  rules.push_back(MakeLaw15DivisorSelectionRule());
  rules.push_back(MakeLaw4ReplicateSelectionRule());
  rules.push_back(MakeLaw16ReplicateSelectionRule());
  // Structural rules over products, joins and set operations.
  rules.push_back(MakeLaw9ProductRule());  // before Law 8: strictly stronger when it fires
  rules.push_back(MakeLaw8ProductRule());
  rules.push_back(MakeLaw17ProductRule());
  rules.push_back(MakeLaw10SemiJoinRule());
  rules.push_back(MakeExample4JoinPushRule());
  rules.push_back(MakeLaw7DifferencePruneRule());
  rules.push_back(MakeLaw6DifferenceRule());
  rules.push_back(MakeLaw5IntersectRule());
  rules.push_back(MakeLaw2DividendUnionRule());
  rules.push_back(MakeLaw13GreatDivisorUnionRule());
  // Grouped-dividend special cases (Laws 11/12) replace ÷ by semi-joins.
  rules.push_back(MakeLaw11GroupedDividendRule());
  rules.push_back(MakeLaw12GroupedDividendRule());
  return rules;
}

std::vector<RulePtr> SearchRuleSet() {
  std::vector<RulePtr> rules = DefaultRuleSet();
  // Reshaping laws: excluded from the greedy fixpoint (they trade one shape
  // for another), admitted under cost-guided search where an unprofitable
  // reshape simply never becomes the cheapest candidate.
  rules.push_back(MakeLaw1DivisorUnionRule());
  rules.push_back(MakeExample1DividendSelectionRule());
  return rules;
}

}  // namespace quotient
