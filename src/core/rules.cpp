#include "core/rules.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "algebra/divide.hpp"
#include "plan/evaluate.hpp"
#include "util/status.hpp"

namespace quotient {

namespace {

using Kind = LogicalOp::Kind;

bool SameNameSet(std::vector<std::string> a, std::vector<std::string> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

bool PredicateOver(const ExprPtr& p, const std::vector<std::string>& names) {
  return p->RefersOnlyTo(names);
}

/// Evaluates a subplan when that is affordable: inline Values literals are
/// free; everything else — including base-table scans, whose contents an
/// optimizer would not scan at rewrite time — requires
/// allow_runtime_checks (the paper's point that "testing condition c1 can
/// be expensive", §5.1.1). Declared catalog constraints are the cheap path.
std::optional<Relation> EvaluateIfAllowed(const PlanPtr& plan, const RewriteContext& context) {
  if (plan->kind() == Kind::kValues) return plan->values();
  if (context.allow_runtime_checks && context.catalog != nullptr) {
    return Evaluate(plan, *context.catalog);
  }
  return std::nullopt;
}

/// Tries to establish π_attrs(x) ∩ π_attrs(y) = ∅, first from catalog
/// declarations (scan inputs), then from data if allowed.
bool ProvablyDisjoint(const PlanPtr& x, const PlanPtr& y,
                      const std::vector<std::string>& attrs, const RewriteContext& context) {
  if (context.catalog != nullptr && x->kind() == Kind::kScan && y->kind() == Kind::kScan &&
      context.catalog->AreDisjoint(x->table(), y->table(), attrs)) {
    return true;
  }
  std::optional<Relation> rx = EvaluateIfAllowed(x, context);
  std::optional<Relation> ry = EvaluateIfAllowed(y, context);
  if (rx && ry) return Catalog::CheckDisjoint(*rx, *ry, attrs);
  return false;
}

/// Tries to establish π_attrs(from) ⊆ π_attrs(to).
bool ProvablySubset(const PlanPtr& from, const PlanPtr& to,
                    const std::vector<std::string>& attrs, const RewriteContext& context) {
  if (context.catalog != nullptr && from->kind() == Kind::kScan && to->kind() == Kind::kScan &&
      context.catalog->HasForeignKey(from->table(), attrs, to->table())) {
    return true;
  }
  std::optional<Relation> rfrom = EvaluateIfAllowed(from, context);
  std::optional<Relation> rto = EvaluateIfAllowed(to, context);
  if (rfrom && rto) return Catalog::CheckForeignKey(*rfrom, *rto, attrs);
  return false;
}

bool ProvablyNonEmpty(const PlanPtr& plan, const RewriteContext& context) {
  std::optional<Relation> r = EvaluateIfAllowed(plan, context);
  return r && !r->empty();
}

/// A rule defined by a name and a match/build function.
class LambdaRule : public RewriteRule {
 public:
  using Fn = PlanPtr (*)(const PlanPtr&, const RewriteContext&);
  LambdaRule(const char* name, Fn fn) : name_(name), fn_(fn) {}
  const char* name() const override { return name_; }
  PlanPtr Apply(const PlanPtr& node, const RewriteContext& context) const override {
    return fn_(node, context);
  }

 private:
  const char* name_;
  Fn fn_;
};

RulePtr Rule(const char* name, LambdaRule::Fn fn) {
  return std::make_unique<LambdaRule>(name, fn);
}

// ---------------------------------------------------------------- Law 1 ----
PlanPtr ApplyLaw1(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& divisor = node->right();
  if (divisor->kind() != Kind::kUnion) return nullptr;
  const PlanPtr& dividend = node->left();
  // r1 ÷ (r2' ∪ r2'') = (r1 ⋉ (r1 ÷ r2')) ÷ r2''
  PlanPtr inner = LogicalOp::Divide(dividend, divisor->left());
  return LogicalOp::Divide(LogicalOp::SemiJoin(dividend, inner), divisor->right());
}

// ---------------------------------------------------------------- Law 2 ----
PlanPtr ApplyLaw2(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kUnion) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  // The cheap sufficient condition c2: disjoint quotient-candidate sets.
  if (!ProvablyDisjoint(dividend->left(), dividend->right(), attrs.a, context)) return nullptr;
  return LogicalOp::Union(LogicalOp::Divide(dividend->left(), node->right()),
                          LogicalOp::Divide(dividend->right(), node->right()));
}

// ---------------------------------------------------------------- Law 3 ----
PlanPtr ApplyLaw3(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kSelect) return nullptr;
  const PlanPtr& divide = node->child(0);
  if (divide->kind() != Kind::kDivide) return nullptr;
  // The quotient schema is exactly A, so any valid predicate is p(A).
  return LogicalOp::Divide(LogicalOp::Select(divide->left(), node->predicate()),
                           divide->right());
}

// ---------------------------------------------------------------- Law 4 ----
PlanPtr ApplyLaw4(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& divisor = node->right();
  if (divisor->kind() != Kind::kSelect) return nullptr;
  const ExprPtr& p = divisor->predicate();
  // Terminate: skip if the dividend is already filtered by this predicate.
  const PlanPtr& dividend = node->left();
  if (dividend->kind() == Kind::kSelect && dividend->predicate()->Equals(*p)) return nullptr;
  // Erratum guard (see laws.hpp): Law 4 needs σp(r2) ≠ ∅, otherwise the
  // rewrite changes πA(r1) into πA(σp(r1)).
  if (!ProvablyNonEmpty(divisor, context)) return nullptr;
  return LogicalOp::Divide(LogicalOp::Select(dividend, p), divisor);
}

// ------------------------------------------------------------ Example 1 ----
PlanPtr ApplyExample1(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kSelect) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  const ExprPtr& p = dividend->predicate();
  if (!PredicateOver(p, attrs.b)) return nullptr;
  const PlanPtr& divisor = node->right();
  // Terminate: if the divisor is already σp(...) this is Law 4's output.
  if (divisor->kind() == Kind::kSelect && divisor->predicate()->Equals(*p)) return nullptr;
  const PlanPtr& base = dividend->child(0);
  PlanPtr matching =
      LogicalOp::Divide(dividend, LogicalOp::Select(divisor, p));
  PlanPtr blocker = LogicalOp::Project(
      LogicalOp::Product(LogicalOp::Project(base, attrs.a),
                         LogicalOp::Select(divisor, Expr::Not(p))),
      attrs.a);
  return LogicalOp::Difference(matching, blocker);
}

// ---------------------------------------------------------------- Law 5 ----
PlanPtr ApplyLaw5(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kIntersect) return nullptr;
  // Erratum guard (see laws.hpp): Law 5 needs r2 ≠ ∅.
  if (!ProvablyNonEmpty(node->right(), context)) return nullptr;
  return LogicalOp::Intersect(LogicalOp::Divide(dividend->left(), node->right()),
                              LogicalOp::Divide(dividend->right(), node->right()));
}

// ---------------------------------------------------------------- Law 6 ----
PlanPtr ApplyLaw6(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kDifference) return nullptr;
  const PlanPtr& minuend = dividend->left();
  const PlanPtr& subtrahend = dividend->right();
  DivisionAttributes attrs = node->division_attributes();
  // The paper's shape: both sides are A-restrictions of the same base
  // relation with σp'' ⊆ σp'.
  if (minuend->kind() != Kind::kSelect || subtrahend->kind() != Kind::kSelect) return nullptr;
  if (!minuend->child(0)->Equals(*subtrahend->child(0))) return nullptr;
  if (!PredicateOver(minuend->predicate(), attrs.a) ||
      !PredicateOver(subtrahend->predicate(), attrs.a)) {
    return nullptr;
  }
  std::optional<Relation> base = EvaluateIfAllowed(minuend->child(0), context);
  if (!base) return nullptr;
  if (!Select(*base, subtrahend->predicate()).SubsetOf(Select(*base, minuend->predicate()))) {
    return nullptr;
  }
  return LogicalOp::Difference(LogicalOp::Divide(minuend, node->right()),
                               LogicalOp::Divide(subtrahend, node->right()));
}

// ---------------------------------------------------------------- Law 7 ----
PlanPtr ApplyLaw7(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDifference) return nullptr;
  const PlanPtr& left = node->left();
  const PlanPtr& right = node->right();
  if (left->kind() != Kind::kDivide || right->kind() != Kind::kDivide) return nullptr;
  if (!left->right()->Equals(*right->right())) return nullptr;  // same divisor
  DivisionAttributes attrs = left->division_attributes();
  if (!ProvablyDisjoint(left->left(), right->left(), attrs.a, context)) return nullptr;
  return left;  // (r1' ÷ r2) − (r1'' ÷ r2) = r1' ÷ r2
}

// ---------------------------------------------------------------- Law 8 ----
PlanPtr ApplyLaw8(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kProduct) return nullptr;
  const PlanPtr& star = dividend->left();
  const PlanPtr& star_star = dividend->right();
  // All divisor attributes must come from the right factor.
  if (!star_star->schema().ContainsAll(node->right()->schema())) return nullptr;
  // The right factor must keep at least one quotient attribute (A2 may be
  // empty in the paper's statement only if A1 covers A; our Divide requires
  // nonempty A on the inner divide, so guard it).
  if (star_star->schema().NamesMinus(node->right()->schema()).empty()) return nullptr;
  return LogicalOp::Product(star, LogicalOp::Divide(star_star, node->right()));
}

// ---------------------------------------------------------------- Law 9 ----
PlanPtr ApplyLaw9(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kProduct) return nullptr;
  const PlanPtr& star = dividend->left();
  const PlanPtr& star_star = dividend->right();
  const PlanPtr& divisor = node->right();
  // r1** must consist solely of divisor attributes (the B2 block) ...
  std::vector<std::string> b2 = star_star->schema().Names();
  if (!divisor->schema().ContainsAll(star_star->schema())) return nullptr;
  std::vector<std::string> b1 = divisor->schema().NamesMinus(star_star->schema());
  if (b1.empty()) return nullptr;   // B1 must be nonempty
  // ... and r1* must hold those B1 attributes (it is the A ∪ B1 block).
  for (const std::string& name : b1) {
    if (!star->schema().Contains(name)) return nullptr;
  }
  // Preconditions: πB2(r2) ⊆ r1** and r1** ≠ ∅.
  if (!ProvablySubset(divisor, star_star, b2, context)) return nullptr;
  if (!ProvablyNonEmpty(star_star, context)) return nullptr;
  return LogicalOp::Divide(star, LogicalOp::Project(divisor, b1));
}

// --------------------------------------------------------------- Law 10 ----
PlanPtr ApplyLaw10(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kSemiJoin) return nullptr;
  const PlanPtr& divide = node->left();
  if (divide->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& r3 = node->right();
  DivisionAttributes attrs = divide->division_attributes();
  // r3's schema must be within A for the semi-join to commute with ÷.
  if (!divide->left()->schema().Project(attrs.a).ContainsAll(r3->schema())) return nullptr;
  return LogicalOp::Divide(LogicalOp::SemiJoin(divide->left(), r3), divide->right());
}

// --------------------------------------------------------------- Law 11 ----
PlanPtr ApplyLaw11(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& grouped = node->left();
  if (grouped->kind() != Kind::kGroupBy) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  // r1 = Aγ...(r0): the grouping attributes are exactly the quotient
  // attributes, so A is a key of the dividend.
  if (!SameNameSet(grouped->group_names(), attrs.a)) return nullptr;
  const PlanPtr& divisor = node->right();

  // Compile the three-way case analysis into pure algebra using degenerate
  // semi-joins as guards (⋉ with no common attribute keeps the left side
  // iff the right side is nonempty):
  //   result =   (πA(r1) ⋉ σc=0(γcount(r2)))       -- r2 empty
  //            ∪ (πA(r1 ⋉ r2) ⋉ σc=1(γcount(r2)))  -- |r2| = 1
  //   (both guards empty when |r2| > 1 ⇒ result = ∅).
  const std::string count_attr = divisor->schema().attribute(0).name;
  PlanPtr counted =
      LogicalOp::GroupBy(divisor, {}, {{AggFunc::kCount, count_attr, "c$law11"}});
  PlanPtr guard_empty =
      LogicalOp::Select(counted, Expr::ColCmp("c$law11", CmpOp::kEq, Value::Int(0)));
  PlanPtr guard_one =
      LogicalOp::Select(counted, Expr::ColCmp("c$law11", CmpOp::kEq, Value::Int(1)));
  PlanPtr case_empty = LogicalOp::SemiJoin(LogicalOp::Project(grouped, attrs.a), guard_empty);
  PlanPtr case_one = LogicalOp::SemiJoin(
      LogicalOp::Project(LogicalOp::SemiJoin(grouped, divisor), attrs.a), guard_one);
  return LogicalOp::Union(case_empty, case_one);
}

// --------------------------------------------------------------- Law 12 ----
PlanPtr ApplyLaw12(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kDivide) return nullptr;
  const PlanPtr& grouped = node->left();
  if (grouped->kind() != Kind::kGroupBy) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  // r1 = Bγ...(r0): grouping attributes are exactly the divisor attributes,
  // so B is a key of the dividend.
  if (!SameNameSet(grouped->group_names(), attrs.b)) return nullptr;
  const PlanPtr& divisor = node->right();
  // Preconditions: r2 ≠ ∅ and r2.B ⊆ πB(r1) = πB(r0).
  if (!ProvablyNonEmpty(divisor, context)) return nullptr;
  if (!ProvablySubset(divisor, grouped->child(0), attrs.b, context)) return nullptr;

  //   e = πA(r1 ⋉ r2);   result = e ⋉ σc=1(γcount(e))
  PlanPtr e = LogicalOp::Project(LogicalOp::SemiJoin(grouped, divisor), attrs.a);
  PlanPtr counted = LogicalOp::GroupBy(e, {}, {{AggFunc::kCount, attrs.a[0], "c$law12"}});
  PlanPtr guard =
      LogicalOp::Select(counted, Expr::ColCmp("c$law12", CmpOp::kEq, Value::Int(1)));
  return LogicalOp::SemiJoin(e, guard);
}

// --------------------------------------------------------------- Law 13 ----
PlanPtr ApplyLaw13(const PlanPtr& node, const RewriteContext& context) {
  if (node->kind() != Kind::kGreatDivide) return nullptr;
  const PlanPtr& divisor = node->right();
  if (divisor->kind() != Kind::kUnion) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  if (attrs.c.empty()) return nullptr;
  if (!ProvablyDisjoint(divisor->left(), divisor->right(), attrs.c, context)) return nullptr;
  return LogicalOp::Union(LogicalOp::GreatDivide(node->left(), divisor->left()),
                          LogicalOp::GreatDivide(node->left(), divisor->right()));
}

// --------------------------------------------------------------- Law 14 ----
PlanPtr ApplyLaw14(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kSelect) return nullptr;
  const PlanPtr& gd = node->child(0);
  if (gd->kind() != Kind::kGreatDivide) return nullptr;
  DivisionAttributes attrs = gd->division_attributes();
  if (!PredicateOver(node->predicate(), attrs.a)) return nullptr;
  return LogicalOp::GreatDivide(LogicalOp::Select(gd->left(), node->predicate()),
                                gd->right());
}

// --------------------------------------------------------------- Law 15 ----
PlanPtr ApplyLaw15(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kSelect) return nullptr;
  const PlanPtr& gd = node->child(0);
  if (gd->kind() != Kind::kGreatDivide) return nullptr;
  DivisionAttributes attrs = gd->division_attributes();
  if (attrs.c.empty()) return nullptr;
  if (!PredicateOver(node->predicate(), attrs.c)) return nullptr;
  return LogicalOp::GreatDivide(gd->left(),
                                LogicalOp::Select(gd->right(), node->predicate()));
}

// --------------------------------------------------------------- Law 16 ----
PlanPtr ApplyLaw16(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kGreatDivide) return nullptr;
  const PlanPtr& divisor = node->right();
  if (divisor->kind() != Kind::kSelect) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  const ExprPtr& p = divisor->predicate();
  if (!PredicateOver(p, attrs.b)) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() == Kind::kSelect && dividend->predicate()->Equals(*p)) return nullptr;
  return LogicalOp::GreatDivide(LogicalOp::Select(dividend, p), divisor);
}

// --------------------------------------------------------------- Law 17 ----
PlanPtr ApplyLaw17(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kGreatDivide) return nullptr;
  const PlanPtr& dividend = node->left();
  if (dividend->kind() != Kind::kProduct) return nullptr;
  const PlanPtr& star = dividend->left();
  const PlanPtr& star_star = dividend->right();
  DivisionAttributes attrs = node->division_attributes();
  // The divisor's B attributes must all come from the right factor.
  for (const std::string& name : attrs.b) {
    if (!star_star->schema().Contains(name)) return nullptr;
  }
  // The right factor must keep a quotient attribute for the inner ÷*.
  bool star_star_has_a = false;
  for (const std::string& name : attrs.a) {
    if (star_star->schema().Contains(name)) star_star_has_a = true;
  }
  if (!star_star_has_a) return nullptr;
  (void)star;
  return LogicalOp::Product(star, LogicalOp::GreatDivide(star_star, node->right()));
}

// ------------------------------------------------------------ Example 4 ----
PlanPtr ApplyExample4(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kThetaJoin) return nullptr;
  const PlanPtr& left = node->left();
  const PlanPtr& gd = node->right();
  if (gd->kind() != Kind::kGreatDivide) return nullptr;
  DivisionAttributes attrs = gd->division_attributes();
  // The join condition may touch only the outer relation and the quotient's
  // A attributes (which come from the dividend) — then the join commutes
  // with ÷* (Laws 17 + 14 composed, Example 4).
  std::vector<std::string> allowed = left->schema().Names();
  allowed.insert(allowed.end(), attrs.a.begin(), attrs.a.end());
  if (!PredicateOver(node->predicate(), allowed)) return nullptr;
  return LogicalOp::GreatDivide(
      LogicalOp::ThetaJoin(left, gd->left(), node->predicate()), gd->right());
}

// ------------------------------------------------- Healy expansion rule ----
PlanPtr ApplyHealyExpansion(const PlanPtr& node, const RewriteContext&) {
  if (node->kind() != Kind::kDivide) return nullptr;
  DivisionAttributes attrs = node->division_attributes();
  PlanPtr pa = LogicalOp::Project(node->left(), attrs.a);
  return LogicalOp::Difference(
      pa, LogicalOp::Project(
              LogicalOp::Difference(LogicalOp::Product(pa, node->right()), node->left()),
              attrs.a));
}

}  // namespace

RulePtr MakeLaw1DivisorUnionRule() { return Rule("law1-divisor-union", ApplyLaw1); }
RulePtr MakeLaw2DividendUnionRule() { return Rule("law2-dividend-union", ApplyLaw2); }
RulePtr MakeLaw3SelectionPushdownRule() { return Rule("law3-selection-pushdown", ApplyLaw3); }
RulePtr MakeLaw4ReplicateSelectionRule() { return Rule("law4-replicate-selection", ApplyLaw4); }
RulePtr MakeExample1DividendSelectionRule() {
  return Rule("example1-dividend-selection", ApplyExample1);
}
RulePtr MakeLaw5IntersectRule() { return Rule("law5-intersect", ApplyLaw5); }
RulePtr MakeLaw6DifferenceRule() { return Rule("law6-difference", ApplyLaw6); }
RulePtr MakeLaw7DifferencePruneRule() { return Rule("law7-difference-prune", ApplyLaw7); }
RulePtr MakeLaw8ProductRule() { return Rule("law8-product", ApplyLaw8); }
RulePtr MakeLaw9ProductRule() { return Rule("law9-product", ApplyLaw9); }
RulePtr MakeLaw10SemiJoinRule() { return Rule("law10-semijoin", ApplyLaw10); }
RulePtr MakeLaw11GroupedDividendRule() { return Rule("law11-grouped-dividend", ApplyLaw11); }
RulePtr MakeLaw12GroupedDividendRule() { return Rule("law12-grouped-dividend", ApplyLaw12); }
RulePtr MakeLaw13GreatDivisorUnionRule() {
  return Rule("law13-great-divisor-union", ApplyLaw13);
}
RulePtr MakeLaw14SelectionPushdownRule() {
  return Rule("law14-selection-pushdown", ApplyLaw14);
}
RulePtr MakeLaw15DivisorSelectionRule() { return Rule("law15-divisor-selection", ApplyLaw15); }
RulePtr MakeLaw16ReplicateSelectionRule() {
  return Rule("law16-replicate-selection", ApplyLaw16);
}
RulePtr MakeLaw17ProductRule() { return Rule("law17-product", ApplyLaw17); }
RulePtr MakeExample4JoinPushRule() { return Rule("example4-join-push", ApplyExample4); }
RulePtr MakeDivideToHealyExpansionRule() {
  return Rule("divide-to-healy-expansion", ApplyHealyExpansion);
}

std::vector<RulePtr> DefaultRuleSet() {
  std::vector<RulePtr> rules;
  // Selection pushdowns first: they shrink inputs for everything else.
  rules.push_back(MakeLaw3SelectionPushdownRule());
  rules.push_back(MakeLaw14SelectionPushdownRule());
  rules.push_back(MakeLaw15DivisorSelectionRule());
  rules.push_back(MakeLaw4ReplicateSelectionRule());
  rules.push_back(MakeLaw16ReplicateSelectionRule());
  // Structural rules over products, joins and set operations.
  rules.push_back(MakeLaw9ProductRule());  // before Law 8: strictly stronger when it fires
  rules.push_back(MakeLaw8ProductRule());
  rules.push_back(MakeLaw17ProductRule());
  rules.push_back(MakeLaw10SemiJoinRule());
  rules.push_back(MakeExample4JoinPushRule());
  rules.push_back(MakeLaw7DifferencePruneRule());
  rules.push_back(MakeLaw6DifferenceRule());
  rules.push_back(MakeLaw5IntersectRule());
  rules.push_back(MakeLaw2DividendUnionRule());
  rules.push_back(MakeLaw13GreatDivisorUnionRule());
  // Grouped-dividend special cases (Laws 11/12) replace ÷ by semi-joins.
  rules.push_back(MakeLaw11GroupedDividendRule());
  rules.push_back(MakeLaw12GroupedDividendRule());
  return rules;
}

}  // namespace quotient
