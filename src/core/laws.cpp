#include "core/laws.hpp"

#include <unordered_map>
#include <unordered_set>

#include "util/status.hpp"

namespace quotient {
namespace laws {

namespace {

std::vector<size_t> IndicesOf(const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) indices.push_back(schema.IndexOfOrThrow(name));
  return indices;
}

/// Empty relation over the A attributes of a division r1 ÷ r2.
Relation EmptyQuotient(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  return Relation(r1.schema().Project(attrs.a));
}

}  // namespace

// ---------------------------------------------------------------- Law 1 ----
Relation Law1Lhs(const Relation& r1, const Relation& r2p, const Relation& r2pp) {
  return Divide(r1, Union(r2p, r2pp));
}

Relation Law1Rhs(const Relation& r1, const Relation& r2p, const Relation& r2pp) {
  return Divide(SemiJoin(r1, Divide(r1, r2p)), r2pp);
}

// ---------------------------------------------------------------- Law 2 ----
bool ConditionC1(const Relation& r1p, const Relation& r1pp, const Relation& r2) {
  DivisionAttributes attrs =
      DivisionAttributeSets(r1p.schema(), r2.schema(), /*allow_c=*/false);
  std::vector<size_t> a_p = IndicesOf(r1p.schema(), attrs.a);
  std::vector<size_t> b_p = IndicesOf(r1p.schema(), attrs.b);
  std::vector<size_t> a_pp = IndicesOf(r1pp.schema(), attrs.a);
  std::vector<size_t> b_pp = IndicesOf(r1pp.schema(), attrs.b);
  std::vector<size_t> d_idx = IndicesOf(r2.schema(), attrs.b);

  using ImageMap =
      std::unordered_map<Tuple, std::unordered_set<Tuple, TupleHash, TupleEq>, TupleHash, TupleEq>;
  ImageMap images_p, images_pp;
  for (const Tuple& t : r1p.tuples()) images_p[ProjectTuple(t, a_p)].insert(ProjectTuple(t, b_p));
  for (const Tuple& t : r1pp.tuples())
    images_pp[ProjectTuple(t, a_pp)].insert(ProjectTuple(t, b_pp));

  std::vector<Tuple> divisor;
  for (const Tuple& t : r2.tuples()) divisor.push_back(ProjectTuple(t, d_idx));

  auto covers = [&](const std::unordered_set<Tuple, TupleHash, TupleEq>& image) {
    for (const Tuple& d : divisor)
      if (!image.count(d)) return false;
    return true;
  };

  for (const auto& [a, image_p] : images_p) {
    auto it = images_pp.find(a);
    if (it == images_pp.end()) continue;  // a not in both partitions
    const auto& image_pp = it->second;
    if (covers(image_p) || covers(image_pp)) continue;
    // Neither partition alone covers r2; c1 demands the union not cover it.
    std::unordered_set<Tuple, TupleHash, TupleEq> merged = image_p;
    merged.insert(image_pp.begin(), image_pp.end());
    if (covers(merged)) return false;
  }
  return true;
}

bool ConditionC2(const Relation& r1p, const Relation& r1pp, const Relation& r2) {
  if (!r1p.schema().SameAttributeSet(r1pp.schema())) {
    throw SchemaError("c2 requires both dividend partitions to share a schema");
  }
  DivisionAttributes attrs =
      DivisionAttributeSets(r1p.schema(), r2.schema(), /*allow_c=*/false);
  return Intersect(Project(r1p, attrs.a), Project(r1pp, attrs.a)).empty();
}

Relation Law2Lhs(const Relation& r1p, const Relation& r1pp, const Relation& r2) {
  return Divide(Union(r1p, r1pp), r2);
}

Relation Law2Rhs(const Relation& r1p, const Relation& r1pp, const Relation& r2) {
  return Union(Divide(r1p, r2), Divide(r1pp, r2));
}

// ---------------------------------------------------------------- Law 3 ----
Relation Law3Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  return Select(Divide(r1, r2), p);
}

Relation Law3Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  return Divide(Select(r1, p), r2);
}

// ---------------------------------------------------------------- Law 4 ----
Relation Law4Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  return Divide(r1, Select(r2, p));
}

Relation Law4Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  return Divide(Select(r1, p), Select(r2, p));
}

bool Law4Precondition(const Relation& r2, const ExprPtr& p) {
  return !Select(r2, p).empty();
}

// ------------------------------------------------------------ Example 1 ----
Relation Example1Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  return Divide(Select(r1, p), r2);
}

Relation Example1Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  Relation matching = Divide(Select(r1, p), Select(r2, p));
  Relation blocker = Project(Product(Project(r1, attrs.a), Select(r2, Expr::Not(p))), attrs.a);
  return Difference(matching, blocker);
}

// ---------------------------------------------------------------- Law 5 ----
Relation Law5Lhs(const Relation& r1p, const Relation& r1pp, const Relation& r2) {
  return Divide(Intersect(r1p, r1pp), r2);
}

Relation Law5Rhs(const Relation& r1p, const Relation& r1pp, const Relation& r2) {
  return Intersect(Divide(r1p, r2), Divide(r1pp, r2));
}

// ---------------------------------------------------------------- Law 6 ----
Relation Law6Lhs(const Relation& r1, const ExprPtr& p_prime, const ExprPtr& p_double_prime,
                 const Relation& r2) {
  return Divide(Difference(Select(r1, p_prime), Select(r1, p_double_prime)), r2);
}

Relation Law6Rhs(const Relation& r1, const ExprPtr& p_prime, const ExprPtr& p_double_prime,
                 const Relation& r2) {
  return Difference(Divide(Select(r1, p_prime), r2), Divide(Select(r1, p_double_prime), r2));
}

bool Law6Precondition(const Relation& r1, const ExprPtr& p_prime,
                      const ExprPtr& p_double_prime) {
  return Select(r1, p_double_prime).SubsetOf(Select(r1, p_prime));
}

// ---------------------------------------------------------------- Law 7 ----
Relation Law7Lhs(const Relation& r1p, const Relation& r1pp, const Relation& r2) {
  return Difference(Divide(r1p, r2), Divide(r1pp, r2));
}

Relation Law7Rhs(const Relation& r1p, const Relation& r1pp, const Relation& r2) {
  return Divide(r1p, r2);
}

// ---------------------------------------------------------------- Law 8 ----
Relation Law8Lhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2) {
  return Divide(Product(r1_star, r1_star_star), r2);
}

Relation Law8Rhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2) {
  return Product(r1_star, Divide(r1_star_star, r2));
}

// ---------------------------------------------------------------- Law 9 ----
Relation Law9Lhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2) {
  return Divide(Product(r1_star, r1_star_star), r2);
}

Relation Law9Rhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2) {
  std::vector<std::string> b1 = r2.schema().NamesMinus(r1_star_star.schema());
  return Divide(r1_star, Project(r2, b1));
}

bool Law9Precondition(const Relation& r1_star_star, const Relation& r2) {
  std::vector<std::string> b2 = r1_star_star.schema().Names();
  return !r1_star_star.empty() && Project(r2, b2).SubsetOf(r1_star_star);
}

// ------------------------------------------------------------ Example 2 ----
Relation Example2Lhs(const Relation& r1, const Relation& r2, const Relation& s) {
  return Divide(Product(r1, s), Product(r2, s));
}

Relation Example2Rhs(const Relation& r1, const Relation& r2, const Relation& s) {
  (void)s;
  return Divide(r1, r2);
}

// --------------------------------------------------------------- Law 10 ----
Relation Law10Lhs(const Relation& r1, const Relation& r2, const Relation& r3) {
  return SemiJoin(Divide(r1, r2), r3);
}

Relation Law10Rhs(const Relation& r1, const Relation& r2, const Relation& r3) {
  return Divide(SemiJoin(r1, r3), r2);
}

// --------------------------------------------------------------- Law 11 ----
Relation Law11Lhs(const Relation& r1, const Relation& r2) { return Divide(r1, r2); }

Relation Law11Rhs(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  if (r2.empty()) return Project(r1, attrs.a);
  if (r2.size() == 1) return Project(SemiJoin(r1, r2), attrs.a);
  return EmptyQuotient(r1, r2);
}

bool Law11Precondition(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  return Project(r1, attrs.a).size() == r1.size();  // A is a key of r1
}

// --------------------------------------------------------------- Law 12 ----
Relation Law12Lhs(const Relation& r1, const Relation& r2) { return Divide(r1, r2); }

Relation Law12Rhs(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  Relation e = Project(SemiJoin(r1, r2), attrs.a);
  if (e.size() == 1) return e;
  return EmptyQuotient(r1, r2);
}

bool Law12Precondition(const Relation& r1, const Relation& r2) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  if (r2.empty()) return false;  // implicit in the paper's case analysis
  if (Project(r1, attrs.b).size() != r1.size()) return false;  // B is a key of r1
  return Project(r2, attrs.b).SubsetOf(Project(r1, attrs.b));  // r2.B is an FK into r1
}

// --------------------------------------------------------------- Law 13 ----
Relation Law13Lhs(const Relation& r1, const Relation& r2p, const Relation& r2pp) {
  return GreatDivide(r1, Union(r2p, r2pp));
}

Relation Law13Rhs(const Relation& r1, const Relation& r2p, const Relation& r2pp) {
  return Union(GreatDivide(r1, r2p), GreatDivide(r1, r2pp));
}

bool Law13Precondition(const Relation& r1, const Relation& r2p, const Relation& r2pp) {
  DivisionAttributes attrs = DivisionAttributeSets(r1.schema(), r2p.schema(), /*allow_c=*/true);
  if (attrs.c.empty()) return false;
  return Intersect(Project(r2p, attrs.c), Project(r2pp, attrs.c)).empty();
}

// --------------------------------------------------------------- Law 14 ----
Relation Law14Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  return Select(GreatDivide(r1, r2), p);
}

Relation Law14Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  return GreatDivide(Select(r1, p), r2);
}

// --------------------------------------------------------------- Law 15 ----
Relation Law15Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  return Select(GreatDivide(r1, r2), p);
}

Relation Law15Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  return GreatDivide(r1, Select(r2, p));
}

// --------------------------------------------------------------- Law 16 ----
Relation Law16Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  return GreatDivide(r1, Select(r2, p));
}

Relation Law16Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p) {
  return GreatDivide(Select(r1, p), Select(r2, p));
}

// --------------------------------------------------------------- Law 17 ----
Relation Law17Lhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2) {
  return GreatDivide(Product(r1_star, r1_star_star), r2);
}

Relation Law17Rhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2) {
  return Product(r1_star, GreatDivide(r1_star_star, r2));
}

// ------------------------------------------------------------ Example 3 ----
Relation Example3Lhs(const Relation& r1_star, const Relation& r1_star_star,
                     const Relation& r2) {
  ExprPtr theta = Expr::Compare(CmpOp::kLt, Expr::Column("b1"), Expr::Column("b2"));
  return Divide(ThetaJoin(r1_star, r1_star_star, theta), r2);
}

Relation Example3Rhs(const Relation& r1_star, const Relation& r1_star_star,
                     const Relation& r2) {
  (void)r1_star_star;  // eliminated by the rewrite — that is the point
  ExprPtr lt = Expr::Compare(CmpOp::kLt, Expr::Column("b1"), Expr::Column("b2"));
  ExprPtr ge = Expr::Compare(CmpOp::kGe, Expr::Column("b1"), Expr::Column("b2"));
  Relation left = Divide(r1_star, Project(Select(r2, lt), {"b1"}));
  Relation right = Project(Product(Project(r1_star, {"a"}), Select(r2, ge)), {"a"});
  return Difference(left, right);
}

// ------------------------------------------------------------ Example 4 ----
Relation Example4Lhs(const Relation& r1_star, const Relation& r1_star_star,
                     const Relation& r2) {
  ExprPtr theta = Expr::ColEqCol("a1", "a2");
  return ThetaJoin(r1_star, GreatDivide(r1_star_star, r2), theta);
}

Relation Example4Rhs(const Relation& r1_star, const Relation& r1_star_star,
                     const Relation& r2) {
  ExprPtr theta = Expr::ColEqCol("a1", "a2");
  return GreatDivide(ThetaJoin(r1_star, r1_star_star, theta), r2);
}

}  // namespace laws
}  // namespace quotient
