#pragma once

#include "algebra/divide.hpp"
#include "algebra/ops.hpp"
#include "algebra/relation.hpp"

namespace quotient {
namespace laws {

/// Relation-level forms of the paper's algebraic laws (Section 5). Each law
/// is exposed as an Lhs/Rhs pair computed with the reference algebra, so a
/// law holds on concrete inputs iff LawNLhs(...) == LawNRhs(...). The
/// property-test suite sweeps these over randomized relations; the plan
/// rewrite rules in core/rules.hpp implement the same equivalences on plan
/// trees.
///
/// Schema conventions follow Section 2: r1(A ∪ B) is the dividend, r2(B)
/// (small divide) or r2(B ∪ C) (great divide) the divisor; primed relations
/// are horizontal partitions (same schema), starred relations vertical
/// partitions (Section 5's notation).

// ---------------------------------------------------------------- Law 1 ----
/// Law 1: r1 ÷ (r2' ∪ r2'') = (r1 ⋉ (r1 ÷ r2')) ÷ r2''.
/// Holds for arbitrary (even overlapping) divisor partitions.
Relation Law1Lhs(const Relation& r1, const Relation& r2p, const Relation& r2pp);
Relation Law1Rhs(const Relation& r1, const Relation& r2p, const Relation& r2pp);

// ---------------------------------------------------------------- Law 2 ----
/// Condition c1 (Section 5.1.1): for every quotient candidate a appearing in
/// both dividend partitions, either one partition alone covers r2 or their
/// union fails to cover r2. Figure 5 is a counterexample where c1 is false.
bool ConditionC1(const Relation& r1p, const Relation& r1pp, const Relation& r2);
/// Condition c2: πA(r1') ∩ πA(r1'') = ∅ (stronger than c1, cheap to test).
/// The divisor is needed to identify A = attrs(r1) − attrs(r2).
bool ConditionC2(const Relation& r1p, const Relation& r1pp, const Relation& r2);

/// Law 2 (requires c1): (r1' ∪ r1'') ÷ r2 = (r1' ÷ r2) ∪ (r1'' ÷ r2).
Relation Law2Lhs(const Relation& r1p, const Relation& r1pp, const Relation& r2);
Relation Law2Rhs(const Relation& r1p, const Relation& r1pp, const Relation& r2);

// ---------------------------------------------------------------- Law 3 ----
/// Law 3 ("selection push-down", p over A): σp(r1 ÷ r2) = σp(r1) ÷ r2.
Relation Law3Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p);
Relation Law3Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p);

// ---------------------------------------------------------------- Law 4 ----
/// Law 4 ("replicate-selection", p over B): r1 ÷ σp(r2) = σp(r1) ÷ σp(r2).
///
/// ERRATUM (found by this reproduction): the law additionally requires
/// σp(r2) ≠ ∅. The paper's proof asserts σ¬p(B)(r1) ÷ σp(B)(r2) = ∅, which
/// is false for the empty divisor (÷ ∅ = πA by vacuous universal
/// quantification). With σp(r2) = ∅ the two sides genuinely differ:
/// LHS = πA(r1) but RHS = πA(σp(r1)). Law4Precondition checks the guard.
Relation Law4Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p);
Relation Law4Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p);
bool Law4Precondition(const Relation& r2, const ExprPtr& p);

// ------------------------------------------------------------ Example 1 ----
/// Example 1 (selection on dividend B attributes only):
///   σp(B)(r1) ÷ r2 = (σp(B)(r1) ÷ σp(B)(r2)) − πA(πA(r1) × σ¬p(B)(r2)).
Relation Example1Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p);
Relation Example1Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p);

// ---------------------------------------------------------------- Law 5 ----
/// Law 5: (r1' ∩ r1'') ÷ r2 = (r1' ÷ r2) ∩ (r1'' ÷ r2).
///
/// ERRATUM (found by this reproduction): the law additionally requires
/// r2 ≠ ∅. With r2 = ∅, LHS = πA(r1' ∩ r1'') while RHS =
/// πA(r1') ∩ πA(r1''), which differ whenever the partitions share a
/// quotient candidate without sharing any of its tuples (e.g. r1' = {(1,1)},
/// r1'' = {(1,2)}). The proof's step that merges "t1 ∈ r1'" and "t1 ∈ r1''"
/// into a single witness tuple needs a common (a, b) tuple, which a
/// nonempty divisor provides.
Relation Law5Lhs(const Relation& r1p, const Relation& r1pp, const Relation& r2);
Relation Law5Rhs(const Relation& r1p, const Relation& r1pp, const Relation& r2);

// ---------------------------------------------------------------- Law 6 ----
/// Law 6 (requires r1' = σp'(A)(r1) ⊇ σp''(A)(r1) = r1''):
///   (r1' − r1'') ÷ r2 = (r1' ÷ r2) − (r1'' ÷ r2).
/// The helper takes the base relation and both A-predicates.
Relation Law6Lhs(const Relation& r1, const ExprPtr& p_prime, const ExprPtr& p_double_prime,
                 const Relation& r2);
Relation Law6Rhs(const Relation& r1, const ExprPtr& p_prime, const ExprPtr& p_double_prime,
                 const Relation& r2);
/// Law 6's precondition σp''(A)(r1) ⊆ σp'(A)(r1), verified on the data.
bool Law6Precondition(const Relation& r1, const ExprPtr& p_prime,
                      const ExprPtr& p_double_prime);

// ---------------------------------------------------------------- Law 7 ----
/// Law 7 (requires πA(r1') ∩ πA(r1'') = ∅):
///   (r1' ÷ r2) − (r1'' ÷ r2) = r1' ÷ r2.
Relation Law7Lhs(const Relation& r1p, const Relation& r1pp, const Relation& r2);
Relation Law7Rhs(const Relation& r1p, const Relation& r1pp, const Relation& r2);

// ---------------------------------------------------------------- Law 8 ----
/// Law 8: (r1* × r1**) ÷ r2 = r1* × (r1** ÷ r2), with r1*(A1), r1**(A2 ∪ B).
Relation Law8Lhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2);
Relation Law8Rhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2);

// ---------------------------------------------------------------- Law 9 ----
/// Law 9 (requires πB2(r2) ⊆ r1**, r1** ≠ ∅): with r1*(A ∪ B1), r1**(B2),
/// r2(B1 ∪ B2):  (r1* × r1**) ÷ r2 = r1* ÷ πB1(r2).
/// (The nonemptiness of r1** is implicit in the paper, which assumes
/// nonempty relations; see DESIGN.md.)
Relation Law9Lhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2);
Relation Law9Rhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2);
/// Law 9's precondition πB2(r2) ⊆ r1**.
bool Law9Precondition(const Relation& r1_star_star, const Relation& r2);

// ------------------------------------------------------------ Example 2 ----
/// Example 2 (corollary of Law 9): (r1 × s) ÷ (r2 × s) = r1 ÷ r2, for
/// r1(A ∪ B1), r2(B1), s(B2) with s ≠ ∅.
Relation Example2Lhs(const Relation& r1, const Relation& r2, const Relation& s);
Relation Example2Rhs(const Relation& r1, const Relation& r2, const Relation& s);

// --------------------------------------------------------------- Law 10 ----
/// Law 10: (r1 ÷ r2) ⋉ r3 = (r1 ⋉ r3) ÷ r2, with r3(A).
Relation Law10Lhs(const Relation& r1, const Relation& r2, const Relation& r3);
Relation Law10Rhs(const Relation& r1, const Relation& r2, const Relation& r3);

// --------------------------------------------------------------- Law 11 ----
/// Law 11 (dividend grouped on A, i.e. A is a key of r1 = Aγf(X)→B(r0)):
///   r1 ÷ r2 = πA(r1)            if r2 = ∅
///           = πA(r1 ⋉ r2)       if |r2| = 1
///           = ∅                 otherwise.
/// Note: for the r2 = ∅ case the paper writes "r1"; since the quotient
/// schema is A and A is a key, the intended reading is πA(r1) (same tuples,
/// quotient attributes only). See DESIGN.md.
Relation Law11Lhs(const Relation& r1, const Relation& r2);
Relation Law11Rhs(const Relation& r1, const Relation& r2);
/// Law 11's precondition: A = attrs(r1) − attrs(r2) is a key of r1.
bool Law11Precondition(const Relation& r1, const Relation& r2);

// --------------------------------------------------------------- Law 12 ----
/// Law 12 (dividend grouped on B, i.e. B is a key of r1 = Bγf(X)→A(r0), and
/// r2.B a foreign key into r1, r2 ≠ ∅):
///   r1 ÷ r2 = πA(r1 ⋉ r2)  if that relation has exactly one tuple,
///           = ∅            otherwise.
/// (r2 ≠ ∅ is implicit in the paper's case analysis; see DESIGN.md.)
Relation Law12Lhs(const Relation& r1, const Relation& r2);
Relation Law12Rhs(const Relation& r1, const Relation& r2);
/// Law 12's preconditions: B is a key of r1 and πB(r2) ⊆ πB(r1), r2 ≠ ∅.
bool Law12Precondition(const Relation& r1, const Relation& r2);

// --------------------------------------------------------------- Law 13 ----
/// Law 13 (requires πC(r2') ∩ πC(r2'') = ∅):
///   r1 ÷* (r2' ∪ r2'') = (r1 ÷* r2') ∪ (r1 ÷* r2'').
Relation Law13Lhs(const Relation& r1, const Relation& r2p, const Relation& r2pp);
Relation Law13Rhs(const Relation& r1, const Relation& r2p, const Relation& r2pp);
/// Law 13's precondition πC(r2') ∩ πC(r2'') = ∅.
bool Law13Precondition(const Relation& r1, const Relation& r2p, const Relation& r2pp);

// --------------------------------------------------------------- Law 14 ----
/// Law 14 (p over A): σp(r1 ÷* r2) = σp(r1) ÷* r2.
Relation Law14Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p);
Relation Law14Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p);

// --------------------------------------------------------------- Law 15 ----
/// Law 15 (p over C): σp(r1 ÷* r2) = r1 ÷* σp(r2).
Relation Law15Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p);
Relation Law15Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p);

// --------------------------------------------------------------- Law 16 ----
/// Law 16 (p over B): r1 ÷* σp(r2) = σp(r1) ÷* σp(r2).
Relation Law16Lhs(const Relation& r1, const Relation& r2, const ExprPtr& p);
Relation Law16Rhs(const Relation& r1, const Relation& r2, const ExprPtr& p);

// --------------------------------------------------------------- Law 17 ----
/// Law 17: (r1* × r1**) ÷* r2 = r1* × (r1** ÷* r2).
Relation Law17Lhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2);
Relation Law17Rhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2);

// ------------------------------------------------------------ Example 3 ----
/// Example 3: with r1*(a, b1), r1**(b2), r2(b1, b2), b2 unique in r1** and
/// πb2(r2) ⊆ r1**:
///   (r1* ⋈_{b1<b2} r1**) ÷ r2
///     = (r1* ÷ πb1(σb1<b2(r2))) − πa(πa(r1*) × σb1≥b2(r2)).
Relation Example3Lhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2);
Relation Example3Rhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2);

// ------------------------------------------------------------ Example 4 ----
/// Example 4: with r1*(a1), r1**(a2, b1), r2(b1, b2):
///   r1* ⋈_{a1=a2} (r1** ÷* r2) = (r1* ⋈_{a1=a2} r1**) ÷* r2.
Relation Example4Lhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2);
Relation Example4Rhs(const Relation& r1_star, const Relation& r1_star_star, const Relation& r2);

}  // namespace laws
}  // namespace quotient
