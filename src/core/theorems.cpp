#include "core/theorems.hpp"

#include <algorithm>

#include "algebra/divide.hpp"
#include "util/status.hpp"

namespace quotient {
namespace theorems {

namespace {

std::vector<std::string> SetMinus(const std::vector<std::string>& x,
                                  const std::vector<std::string>& y) {
  std::vector<std::string> out;
  for (const std::string& name : x) {
    if (std::find(y.begin(), y.end(), name) == y.end()) out.push_back(name);
  }
  return out;
}

}  // namespace

bool Theorem1Holds(const Relation& dividend, const Relation& divisor) {
  Relation scd = GreatDivideSCD(dividend, divisor);
  Relation demolombe = GreatDivideDemolombe(dividend, divisor);
  Relation todd = GreatDivideTodd(dividend, divisor);
  return scd == demolombe && demolombe == todd;
}

bool Theorem2CommutedIsInvalid(const Relation& r1, const Relation& r2) {
  try {
    DivisionAttributeSets(r1.schema(), r2.schema(), /*allow_c=*/false);
  } catch (const SchemaError&) {
    return false;  // the original division is itself invalid; theorem moot
  }
  try {
    DivisionAttributeSets(r2.schema(), r1.schema(), /*allow_c=*/false);
  } catch (const SchemaError&) {
    return true;  // r2 ÷ r1 rejected, exactly as Theorem 2 argues
  }
  return false;
}

std::vector<std::string> Theorem3LeftSchema(const std::vector<std::string>& a1,
                                            const std::vector<std::string>& a2,
                                            const std::vector<std::string>& a3) {
  return SetMinus(a1, SetMinus(a2, a3));  // A1 − (A2 − A3)
}

std::vector<std::string> Theorem3RightSchema(const std::vector<std::string>& a1,
                                             const std::vector<std::string>& a2,
                                             const std::vector<std::string>& a3) {
  return SetMinus(SetMinus(a1, a2), a3);  // (A1 − A2) − A3
}

bool Theorem3SchemasAgree(const std::vector<std::string>& a1,
                          const std::vector<std::string>& a2,
                          const std::vector<std::string>& a3) {
  std::vector<std::string> left = Theorem3LeftSchema(a1, a2, a3);
  std::vector<std::string> right = Theorem3RightSchema(a1, a2, a3);
  std::sort(left.begin(), left.end());
  std::sort(right.begin(), right.end());
  return left == right;
}

}  // namespace theorems
}  // namespace quotient
