#pragma once

#include <memory>
#include <vector>

#include "plan/logical.hpp"

namespace quotient {

/// Context handed to rewrite rules.
///
/// Data-dependent preconditions (c1/c2 of Law 2, the foreign key of Law 12,
/// the containment of Law 9, disjointness for Laws 7/13) are established in
/// one of two ways, mirroring the paper's discussion of c1 vs c2:
///   * from declared Catalog metadata when the operands are base tables
///     (cheap, what a production optimizer would do), or
///   * by evaluating the operand subplans when `allow_runtime_checks` is
///     set (exact but potentially expensive; the paper calls testing c1
///     "expensive" — this flag makes that trade-off explicit).
struct RewriteContext {
  const Catalog* catalog = nullptr;
  bool allow_runtime_checks = false;
};

/// Declarative descriptor of one rewrite rule: its identity plus what it
/// matches and what applying it promises. The descriptor is data, not
/// behavior — EXPLAIN, the search report, and Database::Stats() key on
/// `name`, and docs/optimizer.md renders the match/promise columns — so new
/// laws declare themselves instead of hand-fusing their story into the
/// driver ("An Extensible and Verifiable Language for Query Rewrite Rules").
struct RuleInfo {
  const char* name;     // stable identifier ("law3-selection-pushdown")
  int law;              // paper law number; 0 for examples and baselines
  const char* match;    // plan shape the rule fires on
  const char* promise;  // why applying it should pay off
};

/// A transformation rule implementing one of the paper's laws on plan trees.
/// Apply() returns the rewritten node, or nullptr when the rule does not
/// match (or its precondition cannot be established).
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;
  virtual const RuleInfo& info() const = 0;
  const char* name() const { return info().name; }
  virtual PlanPtr Apply(const PlanPtr& node, const RewriteContext& context) const = 0;
};

using RulePtr = std::unique_ptr<RewriteRule>;

// ---- Rule factories, one per law (see core/laws.hpp for the equations) ----
RulePtr MakeLaw1DivisorUnionRule();       // ÷ over ∪-divisor → pipelined double divide
RulePtr MakeLaw2DividendUnionRule();      // ÷ over ∪-dividend → ∪ of divides (needs c1/c2)
RulePtr MakeLaw3SelectionPushdownRule();  // σp(A) through ÷
RulePtr MakeLaw4ReplicateSelectionRule(); // σp(B) on divisor replicated to dividend
RulePtr MakeExample1DividendSelectionRule();  // σp(B) on dividend (Example 1)
RulePtr MakeLaw5IntersectRule();          // ÷ over ∩-dividend
RulePtr MakeLaw6DifferenceRule();         // ÷ over −-dividend (σ' ⊇ σ'')
RulePtr MakeLaw7DifferencePruneRule();    // drop the subtrahend divide entirely
RulePtr MakeLaw8ProductRule();            // ÷ through × (divisor-free factor)
RulePtr MakeLaw9ProductRule();            // ÷ through × (divisor-covered factor)
RulePtr MakeLaw10SemiJoinRule();          // ⋉ through ÷
RulePtr MakeLaw11GroupedDividendRule();   // ÷ after Aγ → guarded semi-join plan
RulePtr MakeLaw12GroupedDividendRule();   // ÷ after Bγ + FK → guarded semi-join plan
RulePtr MakeLaw13GreatDivisorUnionRule(); // ÷* over ∪-divisor (C-disjoint)
RulePtr MakeLaw14SelectionPushdownRule(); // σp(A) through ÷*
RulePtr MakeLaw15DivisorSelectionRule();  // σp(C) through ÷*
RulePtr MakeLaw16ReplicateSelectionRule();// σp(B) on ÷*-divisor replicated
RulePtr MakeLaw17ProductRule();           // ÷* through ×
RulePtr MakeExample4JoinPushRule();       // equi-join through ÷* (Example 4)

/// Baseline (not part of the default optimizing set): expands ÷ into
/// Healy's basic-algebra form. Used to *demonstrate* why first-class
/// division beats simulation.
RulePtr MakeDivideToHealyExpansionRule();

/// The default optimizing rule set, in a deliberate order: selection
/// pushdowns first, then structural rules, then the grouped special cases.
/// Law 1 (pipelining) and Example 1 (the paper's "extreme case") are
/// deliberately excluded — they reshape rather than shrink work — but are
/// available above for targeted use.
std::vector<RulePtr> DefaultRuleSet();

/// The rule set for cost-guided search (opt/memo.hpp): DefaultRuleSet()
/// plus the reshaping laws a greedy fixpoint must exclude — Law 1
/// (pipelining the divisor union) and Example 1 (the paper's "extreme
/// case" dividend selection), which trade one shape for another rather
/// than strictly shrinking work. Under search they are safe: a candidate
/// that reshapes unprofitably simply never becomes the cheapest plan. The
/// Healy expansion stays excluded — it is the demoted baseline, not an
/// optimization.
std::vector<RulePtr> SearchRuleSet();

}  // namespace quotient
