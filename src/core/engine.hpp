#pragma once

#include <string>
#include <vector>

#include "core/rules.hpp"

namespace quotient {

/// One applied rewrite, for EXPLAIN-style traces.
struct RewriteStep {
  std::string rule;
  std::string before;  // rendering of the rewritten subtree
  std::string after;
};

/// One line per applied rule ("  1. law3-selection-pushdown"), for EXPLAIN
/// output; "  (none)" when the trace is empty.
std::string SummarizeRewrites(const std::vector<RewriteStep>& trace);

/// A rule-based rewriting driver in the spirit of Starburst/Cascades rule
/// engines (§1.1): applies its rules to a plan top-down until no rule fires
/// or the step budget is exhausted.
class RewriteEngine {
 public:
  RewriteEngine() = default;
  explicit RewriteEngine(std::vector<RulePtr> rules) : rules_(std::move(rules)) {}

  /// Engine loaded with DefaultRuleSet().
  static RewriteEngine Default();

  void Add(RulePtr rule) { rules_.push_back(std::move(rule)); }
  size_t rule_count() const { return rules_.size(); }

  /// Applies the first matching rule at the topmost matching node (pre-order
  /// walk). Returns nullptr when nothing fires.
  PlanPtr RewriteOnce(const PlanPtr& plan, const RewriteContext& context,
                      RewriteStep* step = nullptr) const;

  /// Applies rules to a fixpoint (bounded by `max_steps`); records each
  /// applied rewrite in `trace` when provided.
  PlanPtr Rewrite(const PlanPtr& plan, const RewriteContext& context,
                  std::vector<RewriteStep>* trace = nullptr, size_t max_steps = 64) const;

 private:
  PlanPtr TryNode(const PlanPtr& node, const RewriteContext& context,
                  RewriteStep* step) const;

  std::vector<RulePtr> rules_;
};

}  // namespace quotient
