#pragma once

#include <string>
#include <vector>

#include "core/rules.hpp"

namespace quotient {

/// One applied rewrite, for EXPLAIN-style traces.
struct RewriteStep {
  std::string rule;
  std::string before;  // rendering of the rewritten subtree
  std::string after;
  /// Estimated cost of the whole plan after this step, when the driver
  /// costs candidates (opt/optimizer.cpp fills it; 0 = not costed). Plain
  /// data — the engine itself never computes costs.
  double cost_after = 0;
};

/// Marker step recorded in the trace when Rewrite() stops with a rewrite
/// still available: the caller asked for fewer steps than the fixpoint
/// needs. Parenthesized so consumers that tally law fires can skip it.
inline constexpr const char* kRewriteBudgetExhausted = "(rewrite budget exhausted)";

/// One line per applied rule ("  1. law3-selection-pushdown"), for EXPLAIN
/// output; "  (none)" when the trace is empty.
std::string SummarizeRewrites(const std::vector<RewriteStep>& trace);

/// One alternative rewrite of a whole plan: the rewritten root plus the
/// step describing the single rule application that produced it.
struct RewriteAlternative {
  PlanPtr plan;
  RewriteStep step;
};

/// A rule-based rewriting driver in the spirit of Starburst/Cascades rule
/// engines (§1.1): applies its rules to a plan top-down until no rule fires
/// or the step budget is exhausted.
class RewriteEngine {
 public:
  RewriteEngine() = default;
  explicit RewriteEngine(std::vector<RulePtr> rules) : rules_(std::move(rules)) {}

  /// Engine loaded with DefaultRuleSet().
  static RewriteEngine Default();

  void Add(RulePtr rule) { rules_.push_back(std::move(rule)); }
  size_t rule_count() const { return rules_.size(); }

  /// Applies the first matching rule at the topmost matching node (pre-order
  /// walk). Returns nullptr when nothing fires.
  PlanPtr RewriteOnce(const PlanPtr& plan, const RewriteContext& context,
                      RewriteStep* step = nullptr) const;

  /// Applies rules to a fixpoint (bounded by `max_steps`); records each
  /// applied rewrite in `trace` when provided. When the budget runs out
  /// with another rewrite still available, sets `*budget_exhausted` (when
  /// given) and appends a kRewriteBudgetExhausted marker to the trace —
  /// silent truncation used to be indistinguishable from convergence.
  PlanPtr Rewrite(const PlanPtr& plan, const RewriteContext& context,
                  std::vector<RewriteStep>* trace = nullptr, size_t max_steps = 64,
                  bool* budget_exhausted = nullptr) const;

  /// Enumerates EVERY applicable (rule, node) pair — not just the first
  /// match — returning one alternative per application: the full rewritten
  /// root plan plus the step that produced it. This is what turns the rule
  /// set from a fixed pipeline into a search space (opt/memo.hpp); the
  /// order is deterministic (pre-order by node, rule-set order per node).
  std::vector<RewriteAlternative> Enumerate(const PlanPtr& plan,
                                            const RewriteContext& context) const;

 private:
  PlanPtr TryNode(const PlanPtr& node, const RewriteContext& context,
                  RewriteStep* step) const;

  std::vector<RulePtr> rules_;
};

}  // namespace quotient
