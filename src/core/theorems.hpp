#pragma once

#include <string>
#include <vector>

#include "algebra/relation.hpp"

namespace quotient {
namespace theorems {

/// Theorem 1: set containment division (÷*1), generalized division (÷*2),
/// and great divide (÷*3) are equivalent. Returns true iff all three
/// definitions produce the same result on the given inputs. The property
/// tests sweep this over thousands of random relations.
bool Theorem1Holds(const Relation& dividend, const Relation& divisor);

/// Theorem 2: small divide is non-commutative. For any valid division
/// r1 ÷ r2 (A nonempty), the flipped expression r2 ÷ r1 is schema-invalid:
/// the would-be divisor r1 has attributes outside the would-be dividend r2.
/// Returns true iff r1 ÷ r2 is valid and r2 ÷ r1 is rejected.
bool Theorem2CommutedIsInvalid(const Relation& r1, const Relation& r2);

/// Theorem 3 works at the schema level: the attribute set of r1 ÷ (r2 ÷ r3)
/// is A1 − (A2 − A3) while that of (r1 ÷ r2) ÷ r3 is (A1 − A2) − A3, and
/// the proof shows these coincide for all tuples iff A1 ∩ A2 ∩ A3 = ∅.
/// These helpers compute both attribute sets so tests can exhibit both the
/// mismatch (Theorem 3) and the boundary case where the schemas agree.
std::vector<std::string> Theorem3LeftSchema(const std::vector<std::string>& a1,
                                            const std::vector<std::string>& a2,
                                            const std::vector<std::string>& a3);
std::vector<std::string> Theorem3RightSchema(const std::vector<std::string>& a1,
                                             const std::vector<std::string>& a2,
                                             const std::vector<std::string>& a3);
/// True iff the two association orders produce the same attribute set.
///
/// ERRATUM (found by this reproduction): the paper's Appendix-B derivation
/// simplifies the condition to "t ∉ A1 ∩ A2 ∩ A3", but the boolean algebra
/// has a slip; the exact condition is A1 ∩ A3 = ∅ (witness: A1 = A3 = {x},
/// A2 = ∅ gives A1−(A2−A3) = {x} but (A1−A2)−A3 = ∅ although the triple
/// intersection is empty). Theorem 3's conclusion — non-associativity — is
/// unaffected: a valid nesting needs A3 ⊆ A2 on one side and
/// A3 ⊆ A1 − A2 on the other, which is impossible for nonempty A3.
/// The exhaustive test in test_laws_property.cpp verifies A1 ∩ A3 = ∅ is
/// exactly right.
bool Theorem3SchemasAgree(const std::vector<std::string>& a1,
                          const std::vector<std::string>& a2,
                          const std::vector<std::string>& a3);

}  // namespace theorems
}  // namespace quotient
