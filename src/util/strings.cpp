#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace quotient {

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitTrim(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    std::string_view piece =
        pos == std::string_view::npos ? text.substr(start) : text.substr(start, pos - start);
    out.emplace_back(Trim(piece));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWithIgnoreCase(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), text.begin(), [](char a, char b) {
    return std::tolower(static_cast<unsigned char>(a)) ==
           std::tolower(static_cast<unsigned char>(b));
  });
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

}  // namespace quotient
