#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace quotient {

/// Error thrown on relational schema violations (arity/type/name mismatches).
/// Schema errors are programming errors, not data errors, so they fail fast.
class SchemaError : public std::runtime_error {
 public:
  explicit SchemaError(const std::string& message) : std::runtime_error(message) {}
};

/// A success-or-message status for fallible user-facing operations (parsing).
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return !message_.has_value(); }
  /// Message text; empty string when ok.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::optional<std::string> message_;
};

/// A value-or-error result used by the SQL front end. Either holds a T or an
/// error message; checked access throws std::logic_error on misuse.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  static Result Error(std::string message) { return Result(Tag{}, std::move(message)); }

  bool ok() const { return value_.has_value(); }
  const std::string& error() const { return error_; }

  const T& value() const& {
    Require();
    return *value_;
  }
  T& value() & {
    Require();
    return *value_;
  }
  T&& value() && {
    Require();
    return *std::move(value_);
  }

 private:
  struct Tag {};
  Result(Tag, std::string message) : error_(std::move(message)) {}
  void Require() const {
    if (!value_) throw std::logic_error("Result::value() on error: " + error_);
  }

  std::optional<T> value_;
  std::string error_;
};

}  // namespace quotient
