#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace quotient {

/// Error thrown on relational schema violations (arity/type/name mismatches).
/// Schema errors are programming errors, not data errors, so they fail fast.
class SchemaError : public std::runtime_error {
 public:
  explicit SchemaError(const std::string& message) : std::runtime_error(message) {}
};

/// Status-code taxonomy (docs/robustness.md). Generic failures stay kError;
/// the query lifecycle governor (exec/query_context.hpp) trips with the
/// three dedicated codes so callers can distinguish "the query was wrong"
/// from "the query was stopped".
enum class StatusCode {
  kOk = 0,
  kError,              // parse/plan/execution failure
  kCancelled,          // Session::Cancel() (or QueryContext::Cancel) fired
  kDeadlineExceeded,   // SessionOptions::deadline elapsed mid-execution
  kResourceExhausted,  // SessionOptions::memory_budget_bytes exceeded
  kConflict,           // first-committer-wins transaction validation lost
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kError: return "error";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline exceeded";
    case StatusCode::kResourceExhausted: return "resource exhausted";
    case StatusCode::kConflict: return "conflict";
  }
  return "?";
}

/// A success-or-message status for fallible user-facing operations. Carries
/// a StatusCode so governor trips (cancellation, deadlines, memory budgets)
/// are distinguishable from ordinary errors without parsing the message.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(std::string message) {
    return Status(StatusCode::kError, std::move(message));
  }
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status Conflict(std::string message) {
    return Status(StatusCode::kConflict, std::move(message));
  }
  static Status Make(StatusCode code, std::string message) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(message));
  }

  bool ok() const { return !message_.has_value(); }
  StatusCode code() const { return message_ ? code_ : StatusCode::kOk; }
  /// Message text; empty string when ok.
  const std::string& message() const {
    static const std::string kEmpty;
    return message_ ? *message_ : kEmpty;
  }

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}
  StatusCode code_ = StatusCode::kOk;
  std::optional<std::string> message_;
};

/// A value-or-error result used by the SQL front end. Either holds a T or an
/// error Status; checked access throws std::logic_error on misuse.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  static Result Error(std::string message) {
    return Result(Tag{}, Status::Error(std::move(message)));
  }
  static Result Error(Status status) { return Result(Tag{}, std::move(status)); }

  bool ok() const { return value_.has_value(); }
  const std::string& error() const { return status_.message(); }
  /// Full error status (code + message); ok() status when the value is set.
  const Status& status() const { return status_; }

  const T& value() const& {
    Require();
    return *value_;
  }
  T& value() & {
    Require();
    return *value_;
  }
  T&& value() && {
    Require();
    return *std::move(value_);
  }

 private:
  struct Tag {};
  Result(Tag, Status status) : status_(std::move(status)) {}
  void Require() const {
    if (!value_) throw std::logic_error("Result::value() on error: " + status_.message());
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace quotient
