#pragma once

#include <string>

#include "algebra/relation.hpp"
#include "util/status.hpp"

namespace quotient {

/// CSV import/export for relations, so the examples and downstream users
/// can move data in and out of the engine.
///
/// Format: first line is the header "name:type,name:type,..." (types as in
/// Schema::Parse; a bare name means int); every following line is one
/// tuple. Strings containing commas, quotes, or newlines are double-quoted
/// with "" escaping. Set-valued attributes are not supported (use
/// Nest/Unnest around the vertical layout instead).
std::string RelationToCsv(const Relation& relation);

/// Parses the format produced by RelationToCsv.
Result<Relation> RelationFromCsv(const std::string& text);

/// File-based convenience wrappers.
Status WriteCsvFile(const Relation& relation, const std::string& path);
Result<Relation> ReadCsvFile(const std::string& path);

}  // namespace quotient
