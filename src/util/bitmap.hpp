#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace quotient {

/// A fixed-width dynamic bitmap. Used by hash-division and the hash great
/// divide to record, per quotient candidate, which divisor tuples have been
/// seen (Graefe's hash-division bitmap scheme).
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  size_t size() const { return bits_; }

  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  bool Test(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// True iff every bit is set.
  bool All() const { return Count() == bits_; }

  /// True iff no bit is set.
  bool None() const {
    for (uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace quotient
