#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace quotient {

/// A fixed-width dynamic bitmap. Used by hash-division and the hash great
/// divide to record, per quotient candidate, which divisor tuples have been
/// seen (Graefe's hash-division bitmap scheme).
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  size_t size() const { return bits_; }

  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  bool Test(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  /// Number of set bits.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// True iff every bit is set.
  bool All() const { return Count() == bits_; }

  /// True iff no bit is set.
  bool None() const {
    for (uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

 private:
  size_t bits_ = 0;
  std::vector<uint64_t> words_;
};

/// A growable stack of equal-width bitmaps in one contiguous allocation.
/// Hash-division keeps one bitmap per quotient candidate; with candidates
/// numbered densely by the key codec, a matrix row per candidate replaces a
/// hash map of Bitmap objects (one allocation and no per-candidate hashing).
class BitmapMatrix {
 public:
  BitmapMatrix() = default;
  /// A matrix of `rows` zeroed rows, each `bits_per_row` bits wide.
  explicit BitmapMatrix(size_t bits_per_row, size_t rows = 0)
      : bits_(bits_per_row), words_per_row_((bits_per_row + 63) / 64) {
    words_.resize(rows * words_per_row_, 0);
  }

  size_t bits_per_row() const { return bits_; }
  size_t rows() const { return words_per_row_ == 0 ? 0 : words_.size() / words_per_row_; }

  /// Appends a zeroed row; returns its index.
  size_t AddRow() {
    words_.resize(words_.size() + words_per_row_, 0);
    return rows() - 1;
  }

  void Reserve(size_t expected_rows) { words_.reserve(expected_rows * words_per_row_); }

  void Set(size_t row, size_t bit) {
    words_[row * words_per_row_ + (bit >> 6)] |= uint64_t{1} << (bit & 63);
  }
  bool Test(size_t row, size_t bit) const {
    return (words_[row * words_per_row_ + (bit >> 6)] >> (bit & 63)) & 1;
  }

  /// Number of set bits in `row`.
  size_t RowCount(size_t row) const {
    size_t n = 0;
    const uint64_t* w = &words_[row * words_per_row_];
    for (size_t i = 0; i < words_per_row_; ++i) n += static_cast<size_t>(__builtin_popcountll(w[i]));
    return n;
  }

  /// True iff every bit of `row` is set.
  bool RowAll(size_t row) const { return RowCount(row) == bits_; }

 private:
  size_t bits_ = 0;
  size_t words_per_row_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace quotient
