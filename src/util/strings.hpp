#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace quotient {

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece.
/// Empty pieces are kept (so "a,,b" yields {"a", "", "b"}).
std::vector<std::string> SplitTrim(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `text` starts with `prefix` ignoring ASCII case.
bool StartsWithIgnoreCase(std::string_view text, std::string_view prefix);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);
/// ASCII upper-casing.
std::string ToUpper(std::string_view text);

}  // namespace quotient
