#include "util/csv.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace quotient {

namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteCell(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Splits one CSV record honoring quotes; returns false on malformed input.
bool SplitRecord(const std::string& line, std::vector<std::string>* cells) {
  cells->clear();
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      cells->push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (in_quotes) return false;
  cells->push_back(std::move(current));
  return true;
}

}  // namespace

std::string RelationToCsv(const Relation& relation) {
  std::ostringstream out;
  const Schema& schema = relation.schema();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) out << ',';
    out << schema.attribute(i).name << ':' << ValueTypeName(schema.attribute(i).type);
  }
  out << '\n';
  for (const Tuple& tuple : relation.tuples()) {
    for (size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) out << ',';
      out << QuoteCell(tuple[i].ToString());
    }
    out << '\n';
  }
  return out.str();
}

Result<Relation> RelationFromCsv(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return Result<Relation>::Error("empty CSV input");

  Schema schema;
  try {
    schema = Schema::Parse(line);
  } catch (const SchemaError& error) {
    return Result<Relation>::Error(std::string("bad CSV header: ") + error.what());
  }
  for (const Attribute& a : schema.attributes()) {
    if (a.type == ValueType::kSet || a.type == ValueType::kNull) {
      return Result<Relation>::Error("CSV does not support set/null attributes");
    }
  }

  std::vector<Tuple> tuples;
  std::vector<std::string> cells;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (!SplitRecord(line, &cells)) {
      return Result<Relation>::Error("unterminated quote on line " +
                                     std::to_string(line_number));
    }
    if (cells.size() != schema.size()) {
      return Result<Relation>::Error("line " + std::to_string(line_number) + " has " +
                                     std::to_string(cells.size()) + " cells, expected " +
                                     std::to_string(schema.size()));
    }
    Tuple tuple;
    tuple.reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      try {
        switch (schema.attribute(i).type) {
          case ValueType::kInt: tuple.push_back(Value::Int(std::stoll(cells[i]))); break;
          case ValueType::kReal: tuple.push_back(Value::Real(std::stod(cells[i]))); break;
          default: tuple.push_back(Value::Str(cells[i])); break;
        }
      } catch (const std::exception&) {
        return Result<Relation>::Error("line " + std::to_string(line_number) +
                                       ": cannot parse '" + cells[i] + "' as " +
                                       ValueTypeName(schema.attribute(i).type));
      }
    }
    tuples.push_back(std::move(tuple));
  }
  return Relation(std::move(schema), std::move(tuples));
}

Status WriteCsvFile(const Relation& relation, const std::string& path) {
  errno = 0;
  std::ofstream out(path);
  if (!out) {
    return Status::Error("cannot open '" + path + "' for writing: " + std::strerror(errno));
  }
  out << RelationToCsv(relation);
  return out.good() ? Status::Ok() : Status::Error("write to '" + path + "' failed");
}

Result<Relation> ReadCsvFile(const std::string& path) {
  errno = 0;
  std::ifstream in(path);
  if (!in) {
    // The failing path and the OS reason, so a bad data-load points at the
    // exact file instead of a bare "cannot open".
    return Result<Relation>::Error("cannot open '" + path + "': " + std::strerror(errno));
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return RelationFromCsv(buffer.str());
}

}  // namespace quotient
