#include "exec/exec_join.hpp"

namespace quotient {

namespace {

std::vector<size_t> IndicesOf(const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) indices.push_back(schema.IndexOfOrThrow(name));
  return indices;
}

}  // namespace

HashJoinIterator::HashJoinIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  std::vector<std::string> common = left_->schema().CommonNames(right_->schema());
  std::vector<std::string> right_only = right_->schema().NamesMinus(left_->schema());
  schema_ = left_->schema().Concat(right_->schema().Project(right_only));
  left_key_ = IndicesOf(left_->schema(), common);
  right_key_ = IndicesOf(right_->schema(), common);
  right_rest_ = IndicesOf(right_->schema(), right_only);
}

void HashJoinIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  codec_ = KeyCodec(right_key_.size());
  codec_.Reserve(right_->EstimatedRows());
  std::vector<Tuple> rest_rows;
  rest_rows.reserve(right_->EstimatedRows());
  while (const Tuple* t = right_->NextRef()) {
    codec_.Add(*t, right_key_);
    rest_rows.push_back(ProjectTuple(*t, right_rest_));
  }
  codec_.Seal();
  numbering_.Build(codec_);
  buckets_.assign(numbering_.count(), {});
  for (size_t i = 0; i < rest_rows.size(); ++i) {
    buckets_[numbering_.row_ids()[i]].push_back(std::move(rest_rows[i]));
  }
  matches_ = nullptr;
  match_pos_ = 0;
}

bool HashJoinIterator::Next(Tuple* out) {
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      *out = ConcatTuples(current_left_, (*matches_)[match_pos_++]);
      CountRow();
      return true;
    }
    matches_ = nullptr;
    if (!left_->Next(&current_left_)) return false;
    uint32_t id = numbering_.Probe(current_left_, left_key_);
    if (id != KeyNumbering::kNotFound) {
      matches_ = &buckets_[id];
      match_pos_ = 0;
    }
  }
}

void HashJoinIterator::Close() {
  left_->Close();
  right_->Close();
  buckets_.clear();
  codec_ = KeyCodec();
}

NestedLoopJoinIterator::NestedLoopJoinIterator(IterPtr left, IterPtr right, ExprPtr condition)
    : left_(std::move(left)),
      right_(std::move(right)),
      schema_(left_->schema().Concat(right_->schema())),
      condition_(std::move(condition)) {}

void NestedLoopJoinIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  bound_ = std::make_unique<BoundExpr>(condition_, schema_);
  right_rows_.clear();
  right_rows_.reserve(right_->EstimatedRows());
  while (const Tuple* t = right_->NextRef()) right_rows_.push_back(*t);
  have_left_ = false;
  right_pos_ = 0;
}

bool NestedLoopJoinIterator::Next(Tuple* out) {
  if (right_rows_.empty()) return false;
  while (true) {
    if (!have_left_) {
      if (!left_->Next(&current_left_)) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      Tuple candidate = ConcatTuples(current_left_, right_rows_[right_pos_++]);
      if (bound_->EvalBool(candidate)) {
        *out = std::move(candidate);
        CountRow();
        return true;
      }
    }
    have_left_ = false;
  }
}

void NestedLoopJoinIterator::Close() {
  left_->Close();
  right_->Close();
  right_rows_.clear();
}

EquiJoinIterator::EquiJoinIterator(IterPtr left, IterPtr right,
                                   std::vector<std::string> left_keys,
                                   std::vector<std::string> right_keys)
    : left_(std::move(left)),
      right_(std::move(right)),
      schema_(left_->schema().Concat(right_->schema())),
      left_key_(IndicesOf(left_->schema(), left_keys)),
      right_key_(IndicesOf(right_->schema(), right_keys)) {}

void EquiJoinIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  codec_ = KeyCodec(right_key_.size());
  codec_.Reserve(right_->EstimatedRows());
  std::vector<Tuple> right_rows;
  right_rows.reserve(right_->EstimatedRows());
  while (const Tuple* t = right_->NextRef()) {
    codec_.Add(*t, right_key_);
    right_rows.push_back(*t);
  }
  codec_.Seal();
  numbering_.Build(codec_);
  buckets_.assign(numbering_.count(), {});
  for (size_t i = 0; i < right_rows.size(); ++i) {
    buckets_[numbering_.row_ids()[i]].push_back(std::move(right_rows[i]));
  }
  matches_ = nullptr;
  match_pos_ = 0;
}

bool EquiJoinIterator::Next(Tuple* out) {
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      *out = ConcatTuples(current_left_, (*matches_)[match_pos_++]);
      CountRow();
      return true;
    }
    matches_ = nullptr;
    if (!left_->Next(&current_left_)) return false;
    uint32_t id = numbering_.Probe(current_left_, left_key_);
    if (id != KeyNumbering::kNotFound) {
      matches_ = &buckets_[id];
      match_pos_ = 0;
    }
  }
}

void EquiJoinIterator::Close() {
  left_->Close();
  right_->Close();
  buckets_.clear();
  codec_ = KeyCodec();
}

HashSemiJoinIterator::HashSemiJoinIterator(IterPtr left, IterPtr right, bool anti)
    : left_(std::move(left)), right_(std::move(right)), anti_(anti) {
  std::vector<std::string> common = left_->schema().CommonNames(right_->schema());
  left_key_ = IndicesOf(left_->schema(), common);
  right_key_ = IndicesOf(right_->schema(), common);
}

void HashSemiJoinIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  codec_ = KeyCodec(right_key_.size());
  codec_.Reserve(right_->EstimatedRows());
  right_empty_ = true;
  while (const Tuple* t = right_->NextRef()) {
    right_empty_ = false;
    codec_.Add(*t, right_key_);
  }
  codec_.Seal();
  numbering_.Build(codec_);
}

bool HashSemiJoinIterator::Next(Tuple* out) {
  while (left_->Next(out)) {
    bool matched = left_key_.empty()
                       ? !right_empty_
                       : numbering_.Probe(*out, left_key_) != KeyNumbering::kNotFound;
    if (matched != anti_) {
      CountRow();
      return true;
    }
  }
  return false;
}

void HashSemiJoinIterator::Close() {
  left_->Close();
  right_->Close();
  codec_ = KeyCodec();
}

}  // namespace quotient
