#include "exec/exec_join.hpp"

#include "exec/pipeline.hpp"

namespace quotient {

namespace {

std::vector<size_t> IndicesOf(const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) indices.push_back(schema.IndexOfOrThrow(name));
  return indices;
}

/// Core batched probe loop shared by the hash joins: pulls left batches,
/// resolves their keys in one pass (BatchKeyProbe), and emits matching
/// (left row × bucket tuple) pairs into a columnar output batch of at most
/// GetBatchRows() rows. Left columns stay dictionary-encoded when the input
/// batch is; bucket tuples are appended as Value columns. Oversized buckets
/// resume via the state's match cursor. Returns rows emitted (0 = end).
size_t JoinEmitBatch(Iterator& left, BatchKeyProbe& probe, JoinProbeState& st,
                     const std::vector<std::vector<Tuple>>& buckets, size_t num_left,
                     size_t num_right, Batch* out) {
  const size_t target = GetBatchRows();
  while (true) {
    if (!st.valid) {
      if (!left.NextBatch(&st.in)) return 0;
      st.keys.clear();
      probe.Resolve(st.in, &st.keys);
      st.pos = 0;
      st.match_pos = 0;
      st.valid = true;
    }
    // Bind the output layout to this input batch (per-batch, so mixed
    // row-view and columnar left streams stay consistent), hoisting each
    // encoded column's id array out of the emit loop.
    out->Reset(num_left + num_right);
    std::vector<const uint32_t*> src_ids(num_left, nullptr);
    for (size_t c = 0; c < num_left; ++c) {
      if (const BatchColumn* enc = st.in.EncodedColumn(c)) {
        out->column(c).dict = enc->dict;
        src_ids[c] = enc->ids.data();
      }
    }
    size_t emitted = 0;
    size_t active = st.in.ActiveRows();
    while (st.pos < active && emitted < target) {
      uint32_t key = st.keys[st.pos];
      if (key == KeyNumbering::kNotFound) {
        ++st.pos;
        st.match_pos = 0;
        continue;
      }
      const std::vector<Tuple>& bucket = buckets[key];
      uint32_t row = st.in.RowAt(st.pos);
      while (st.match_pos < bucket.size() && emitted < target) {
        const Tuple& right = bucket[st.match_pos++];
        for (size_t c = 0; c < num_left; ++c) {
          BatchColumn& ocol = out->column(c);
          if (src_ids[c] != nullptr) {
            ocol.ids.push_back(src_ids[c][row]);
          } else {
            ocol.values.push_back(st.in.At(row, c));
          }
        }
        for (size_t c = 0; c < num_right; ++c) {
          out->column(num_left + c).values.push_back(right[c]);
        }
        ++emitted;
      }
      if (st.match_pos >= bucket.size()) {
        ++st.pos;
        st.match_pos = 0;
      }
    }
    out->set_rows(emitted);
    if (st.pos >= active) st.Reset();
    if (emitted > 0) return emitted;
  }
}

}  // namespace

HashJoinIterator::HashJoinIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  std::vector<std::string> common = left_->schema().CommonNames(right_->schema());
  std::vector<std::string> right_only = right_->schema().NamesMinus(left_->schema());
  schema_ = left_->schema().Concat(right_->schema().Project(right_only));
  left_key_ = IndicesOf(left_->schema(), common);
  right_key_ = IndicesOf(right_->schema(), common);
  right_rest_ = IndicesOf(right_->schema(), right_only);
}

std::shared_ptr<JoinBuildArtifact> HashJoinIterator::BuildArtifact() {
  auto art = std::make_shared<JoinBuildArtifact>();
  right_->Open();
  art->codec = KeyCodec(right_key_.size());
  art->codec.Reserve(right_->EstimatedRows());
  std::vector<Tuple> rest_rows;
  rest_rows.reserve(right_->EstimatedRows());
  // Build pipeline: key columns into the codec plus the projected rest of
  // each build row, drained per exec/pipeline.hpp's discipline choice.
  if (UseTupleDrain(*right_)) {
    while (const Tuple* t = right_->NextRef()) {
      art->codec.Add(*t, right_key_);
      rest_rows.push_back(ProjectTuple(*t, right_rest_));
    }
  } else {
    JoinBuildSink sink(&art->codec, &right_key_, &right_rest_, &rest_rows);
    PipelineStats stats = RunPipeline(*right_, sink);
    RecordPipelineDop(stats.dop);
    // Mirror the sink's materialized-tuple charge so publication can hand
    // it from the building query to the recycler's budget.
    art->extra_charge = stats.rows * (right_rest_.size() + 2) * 8;
  }
  art->codec.Seal();
  art->numbering.Build(art->codec);
  art->buckets.assign(art->numbering.count(), {});
  for (size_t i = 0; i < rest_rows.size(); ++i) {
    art->buckets[art->numbering.row_ids()[i]].push_back(std::move(rest_rows[i]));
  }
  return art;
}

void HashJoinIterator::Open() {
  ResetCount();
  left_->Open();
  build_.reset();
  // Adopt-or-build the right side; a hit skips the right child entirely
  // (it is never opened — Close() on an unopened child is a no-op).
  if (recycle_.recycler && !recycle_.build_key.empty()) {
    ArtifactPtr cached = recycle_.recycler->GetOrBuild(
        recycle_.build_key, recycle_.tables,
        [&]() -> std::shared_ptr<RecycledArtifact> { return BuildArtifact(); });
    if (cached) build_ = std::static_pointer_cast<const JoinBuildArtifact>(cached);
  }
  if (!build_) build_ = BuildArtifact();
  matches_ = nullptr;
  match_pos_ = 0;
  probe_.Bind(&build_->numbering, &build_->codec, &left_key_);
  state_.Reset();
}

bool HashJoinIterator::Next(Tuple* out) {
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      *out = ConcatTuples(current_left_, (*matches_)[match_pos_++]);
      CountRow();
      return true;
    }
    matches_ = nullptr;
    if (!left_->Next(&current_left_)) return false;
    uint32_t id = build_->numbering.Probe(current_left_, left_key_);
    if (id != KeyNumbering::kNotFound) {
      matches_ = &build_->buckets[id];
      match_pos_ = 0;
    }
  }
}

bool HashJoinIterator::NextBatch(Batch* out) {
  size_t emitted = JoinEmitBatch(*left_, probe_, state_, build_->buckets,
                                 left_->schema().size(), right_rest_.size(), out);
  if (emitted == 0) return false;
  CountRows(emitted);
  return true;
}

void HashJoinIterator::Close() {
  left_->Close();
  right_->Close();
  build_.reset();
}

NestedLoopJoinIterator::NestedLoopJoinIterator(IterPtr left, IterPtr right, ExprPtr condition)
    : left_(std::move(left)),
      right_(std::move(right)),
      schema_(left_->schema().Concat(right_->schema())),
      condition_(std::move(condition)) {}

void NestedLoopJoinIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  bound_ = std::make_unique<BoundExpr>(condition_, schema_);
  right_rows_.clear();
  right_rows_.reserve(right_->EstimatedRows());
  while (const Tuple* t = right_->NextRef()) right_rows_.push_back(*t);
  have_left_ = false;
  right_pos_ = 0;
}

bool NestedLoopJoinIterator::Next(Tuple* out) {
  if (right_rows_.empty()) return false;
  while (true) {
    if (!have_left_) {
      if (!left_->Next(&current_left_)) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      Tuple candidate = ConcatTuples(current_left_, right_rows_[right_pos_++]);
      if (bound_->EvalBool(candidate)) {
        *out = std::move(candidate);
        CountRow();
        return true;
      }
    }
    have_left_ = false;
  }
}

void NestedLoopJoinIterator::Close() {
  left_->Close();
  right_->Close();
  right_rows_.clear();
}

EquiJoinIterator::EquiJoinIterator(IterPtr left, IterPtr right,
                                   std::vector<std::string> left_keys,
                                   std::vector<std::string> right_keys)
    : left_(std::move(left)),
      right_(std::move(right)),
      schema_(left_->schema().Concat(right_->schema())),
      left_key_(IndicesOf(left_->schema(), left_keys)),
      right_key_(IndicesOf(right_->schema(), right_keys)) {}

std::shared_ptr<JoinBuildArtifact> EquiJoinIterator::BuildArtifact() {
  auto art = std::make_shared<JoinBuildArtifact>();
  right_->Open();
  art->codec = KeyCodec(right_key_.size());
  art->codec.Reserve(right_->EstimatedRows());
  std::vector<Tuple> right_rows;
  right_rows.reserve(right_->EstimatedRows());
  // Build pipeline: key columns into the codec plus whole build rows.
  if (UseTupleDrain(*right_)) {
    while (const Tuple* t = right_->NextRef()) {
      art->codec.Add(*t, right_key_);
      right_rows.push_back(*t);
    }
  } else {
    JoinBuildSink sink(&art->codec, &right_key_, /*proj=*/nullptr, &right_rows);
    PipelineStats stats = RunPipeline(*right_, sink);
    RecordPipelineDop(stats.dop);
    art->extra_charge = stats.rows * (right_->schema().size() + 2) * 8;
  }
  art->codec.Seal();
  art->numbering.Build(art->codec);
  art->buckets.assign(art->numbering.count(), {});
  for (size_t i = 0; i < right_rows.size(); ++i) {
    art->buckets[art->numbering.row_ids()[i]].push_back(std::move(right_rows[i]));
  }
  return art;
}

void EquiJoinIterator::Open() {
  ResetCount();
  left_->Open();
  build_.reset();
  if (recycle_.recycler && !recycle_.build_key.empty()) {
    ArtifactPtr cached = recycle_.recycler->GetOrBuild(
        recycle_.build_key, recycle_.tables,
        [&]() -> std::shared_ptr<RecycledArtifact> { return BuildArtifact(); });
    if (cached) build_ = std::static_pointer_cast<const JoinBuildArtifact>(cached);
  }
  if (!build_) build_ = BuildArtifact();
  matches_ = nullptr;
  match_pos_ = 0;
  probe_.Bind(&build_->numbering, &build_->codec, &left_key_);
  state_.Reset();
}

bool EquiJoinIterator::Next(Tuple* out) {
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      *out = ConcatTuples(current_left_, (*matches_)[match_pos_++]);
      CountRow();
      return true;
    }
    matches_ = nullptr;
    if (!left_->Next(&current_left_)) return false;
    uint32_t id = build_->numbering.Probe(current_left_, left_key_);
    if (id != KeyNumbering::kNotFound) {
      matches_ = &build_->buckets[id];
      match_pos_ = 0;
    }
  }
}

bool EquiJoinIterator::NextBatch(Batch* out) {
  size_t emitted = JoinEmitBatch(*left_, probe_, state_, build_->buckets,
                                 left_->schema().size(), right_->schema().size(), out);
  if (emitted == 0) return false;
  CountRows(emitted);
  return true;
}

void EquiJoinIterator::Close() {
  left_->Close();
  right_->Close();
  build_.reset();
}

HashSemiJoinIterator::HashSemiJoinIterator(IterPtr left, IterPtr right, bool anti)
    : left_(std::move(left)), right_(std::move(right)), anti_(anti) {
  std::vector<std::string> common = left_->schema().CommonNames(right_->schema());
  left_key_ = IndicesOf(left_->schema(), common);
  right_key_ = IndicesOf(right_->schema(), common);
}

std::shared_ptr<JoinBuildArtifact> HashSemiJoinIterator::BuildArtifact() {
  auto art = std::make_shared<JoinBuildArtifact>();
  right_->Open();
  art->codec = KeyCodec(right_key_.size());
  art->codec.Reserve(right_->EstimatedRows());
  art->right_empty = true;
  // Build pipeline: the key codec doubles as the membership set.
  if (UseTupleDrain(*right_)) {
    while (const Tuple* t = right_->NextRef()) {
      art->right_empty = false;
      art->codec.Add(*t, right_key_);
    }
  } else {
    CodecAppendSink sink(&art->codec, &right_key_);
    PipelineStats stats = RunPipeline(*right_, sink);
    RecordPipelineDop(stats.dop);
    art->right_empty = stats.rows == 0;
  }
  art->codec.Seal();
  art->numbering.Build(art->codec);
  return art;
}

void HashSemiJoinIterator::Open() {
  ResetCount();
  left_->Open();
  build_.reset();
  if (recycle_.recycler && !recycle_.build_key.empty()) {
    ArtifactPtr cached = recycle_.recycler->GetOrBuild(
        recycle_.build_key, recycle_.tables,
        [&]() -> std::shared_ptr<RecycledArtifact> { return BuildArtifact(); });
    if (cached) build_ = std::static_pointer_cast<const JoinBuildArtifact>(cached);
  }
  if (!build_) build_ = BuildArtifact();
  probe_.Bind(&build_->numbering, &build_->codec, &left_key_);
}

bool HashSemiJoinIterator::Next(Tuple* out) {
  while (left_->Next(out)) {
    bool matched = left_key_.empty()
                       ? !build_->right_empty
                       : build_->numbering.Probe(*out, left_key_) != KeyNumbering::kNotFound;
    if (matched != anti_) {
      CountRow();
      return true;
    }
  }
  return false;
}

bool HashSemiJoinIterator::NextBatch(Batch* out) {
  while (left_->NextBatch(out)) {
    size_t n = out->ActiveRows();
    std::vector<uint32_t> sel;
    if (left_key_.empty()) {
      // Appendix A degenerate form: keep everything iff the right side is
      // nonempty (flipped for the anti join).
      bool keep = !build_->right_empty != anti_;
      if (keep) {
        sel.reserve(n);
        for (size_t i = 0; i < n; ++i) sel.push_back(out->RowAt(i));
      }
    } else {
      batch_keys_.clear();
      probe_.Resolve(*out, &batch_keys_);
      for (size_t i = 0; i < n; ++i) {
        bool matched = batch_keys_[i] != KeyNumbering::kNotFound;
        if (matched != anti_) sel.push_back(out->RowAt(i));
      }
    }
    out->SetSelection(std::move(sel));
    if (out->ActiveRows() > 0) {
      CountRows(out->ActiveRows());
      return true;
    }
  }
  return false;
}

void HashSemiJoinIterator::Close() {
  left_->Close();
  right_->Close();
  build_.reset();
}

}  // namespace quotient
