#pragma once

// Query lifecycle governor (docs/robustness.md).
//
// A QueryContext is created per statement execution by the Session front
// door (api/session.hpp) and installed as the CURRENT context for the
// executing thread; ParallelFor (exec/scheduler.hpp) re-installs it on every
// pool worker draining that region's tasks, so the whole morsel-parallel
// execution of one statement shares one governor. Execution code never
// threads a pointer through operator constructors — it calls the free
// GovernorPoll / GovernorCharge / GovernorFaultPoint helpers, which are
// no-ops when no context is installed (benches and direct executor use pay
// one thread-local load).
//
// The governor owns four concerns:
//
//   * CANCELLATION  — Cancel() is callable from any thread; every pipeline
//                     drain polls at batch granularity and unwinds with
//                     StatusCode::kCancelled.
//   * DEADLINE      — a monotonic (steady_clock) deadline checked by the
//                     same polls; trips as kDeadlineExceeded.
//   * MEMORY BUDGET — blocking builds charge their allocations against an
//                     atomic OUTSTANDING byte account (Charge/Release);
//                     exceeding the budget trips as kResourceExhausted.
//                     Charges are approximate (key bytes, bitmap words,
//                     buffered batch payloads); transient state releases
//                     when retired (ScopedCharge), retained build state
//                     stays charged for the statement's lifetime. The
//                     high-water mark is reported as rows_charged_bytes.
//                     Below the hard budget, a soft SPILL WATERMARK
//                     (EnableSpill) makes the id-column stores flush to a
//                     per-query temp file instead of growing —
//                     exec/spill.hpp.
//   * FAULTS        — a deterministic FaultInjector consulted at named
//                     sites; the nth hit of an armed site throws, so tests
//                     can prove every trip point unwinds cleanly.
//
// Trips surface as QueryAbort, an exception carrying a typed Status. The
// executor's existing unwinding (ParallelFor error propagation, cursor
// catch blocks, Session catch blocks) carries it to the API boundary, where
// it becomes a Status/Result — the public API never throws and never
// returns partial results.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.hpp"

namespace quotient {

class SpillManager;

/// Thrown inside the executor when the governor trips; converted to the
/// carried Status at the API boundary. Derives runtime_error so pre-governor
/// catch sites (which catch std::exception) degrade to a plain error message
/// instead of losing the failure.
class QueryAbort : public std::runtime_error {
 public:
  explicit QueryAbort(Status status)
      : std::runtime_error(status.message()), status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Deterministic fault injection: Arm(site, nth) makes the nth hit of that
/// site (1-based, counted per injector) fail. Sites are consulted through
/// GovernorFaultPoint at the registry below; unarmed injectors cost one
/// relaxed atomic load per hit. The process-global injector additionally
/// arms itself from QUOTIENT_FAULT=<site>:<nth> on first use.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Arms `site` to fail on its `nth` hit (nth >= 1). Replaces any previous
  /// arming of the same site and resets its hit counter.
  void Arm(const std::string& site, uint64_t nth);
  /// Clears all armed sites and hit counters.
  void Disarm();

  /// Counts a hit of `site`; true when this hit must fail. Thread-safe;
  /// exactly one concurrent hit observes the trip.
  bool Hit(const char* site);

  /// The process-global injector (armed from the QUOTIENT_FAULT env var on
  /// first access). Contexts without an explicit injector use this one.
  static FaultInjector* Global();

  /// Parses a "<site>[:<nth>]" spec (the QUOTIENT_FAULT format) and arms
  /// `injector`. A malformed spec — empty site, a site not in KnownSites(),
  /// or a non-positive / non-numeric nth — is reported on stderr and NOT
  /// armed (a silently dropped spec would make a fault test pass vacuously).
  /// Returns whether the injector was armed.
  static bool ArmFromSpec(FaultInjector* injector, const std::string& spec);

  /// Every registered fault site, for sweep tests and docs. A site string
  /// passed to GovernorFaultPoint that is not in this list is a bug caught
  /// by the fault-injection sweep.
  static const std::vector<std::string>& KnownSites();

 private:
  struct Armed {
    uint64_t nth = 0;
    uint64_t hits = 0;
  };
  std::atomic<bool> armed_{false};
  std::mutex mutex_;
  std::unordered_map<std::string, Armed> sites_;
};

/// Per-statement lifecycle governor. Created by the Session, shared with the
/// statement's cursor, installed per executing thread via
/// ScopedQueryContext. All methods are thread-safe.
class QueryContext {
 public:
  QueryContext();
  QueryContext(std::chrono::steady_clock::time_point deadline, size_t memory_budget_bytes,
               FaultInjector* faults);
  /// Out of line: destroys the SpillManager (closing the temp file) and
  /// runs the admission-release hook, returning this statement's memory
  /// grant to the Database's admission controller.
  ~QueryContext();
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Requests cancellation; the first trip (of any kind) wins. Callable
  /// from any thread — this is what Session::Cancel() forwards to.
  void Cancel() { Trip(StatusCode::kCancelled, "query cancelled"); }

  /// Records a trip with an explicit code/message (first trip wins).
  void Trip(StatusCode code, const std::string& message);

  /// True once any trip (cancel, deadline, budget) was recorded. Cheap:
  /// one relaxed atomic load — safe inside per-row loops.
  bool Aborted() const { return tripped_.load(std::memory_order_relaxed) != 0; }

  /// The terminal status of the first trip; Ok when never tripped.
  Status TripStatus() const;

  /// Poll point: checks the deadline, then throws QueryAbort if any trip
  /// was recorded. Called at batch/morsel granularity.
  void Poll();

  /// Charges `bytes` against the memory budget; trips kResourceExhausted
  /// (and throws) when the OUTSTANDING total (charges minus releases)
  /// exceeds the budget. Zero budget = unlimited (still accounted, for
  /// rows_charged_bytes reporting and the spill watermark).
  void Charge(size_t bytes);

  /// Returns `bytes` of a previous Charge, so transient per-batch state
  /// (buffered batches, chunk-local codecs, spilled rows) stops counting
  /// against the budget once retired. Never throws.
  void Release(size_t bytes);

  /// High-water mark of the outstanding account — the
  /// ExecProfile::rows_charged_bytes value.
  size_t charged_bytes() const { return peak_.load(std::memory_order_relaxed); }

  /// Bytes currently charged and not released.
  size_t outstanding_bytes() const {
    return outstanding_.load(std::memory_order_relaxed);
  }

  // --- spill (exec/spill.hpp) ---

  /// Arms spill-to-disk: build state flushes to a temp file in `dir` (empty
  /// = $TMPDIR or /tmp) whenever the outstanding account crosses
  /// `watermark_bytes`. Call once, before execution starts.
  void EnableSpill(size_t watermark_bytes, std::string dir);

  /// The statement's spill file, nullptr when spilling is not enabled.
  SpillManager* spill() const { return spill_.get(); }

  /// True when spilling is enabled and the outstanding account is past the
  /// watermark — SpilledU32Store checks this after every append.
  bool ShouldSpill() const {
    return spill_watermark_ != 0 &&
           outstanding_.load(std::memory_order_relaxed) > spill_watermark_;
  }

  size_t spill_watermark_bytes() const { return spill_watermark_; }
  size_t spill_partitions() const;
  size_t spill_bytes_written() const;

  // --- admission (api/database.hpp) ---

  /// Installs the hook that returns this statement's admission grant; run
  /// exactly once, by the destructor.
  void SetAdmissionRelease(std::function<void()> release) {
    admission_release_ = std::move(release);
  }

  bool cancelled() const {
    return static_cast<StatusCode>(tripped_.load(std::memory_order_acquire)) ==
           StatusCode::kCancelled;
  }

  // --- artifact recycler (exec/recycler.hpp) ---

  /// Counts one recycler lookup outcome for this statement, for
  /// ExecProfile::recycler_hits / recycler_misses.
  void RecordRecycler(bool hit) {
    (hit ? recycler_hits_ : recycler_misses_).fetch_add(1, std::memory_order_relaxed);
  }
  size_t recycler_hits() const { return recycler_hits_.load(std::memory_order_relaxed); }
  size_t recycler_misses() const {
    return recycler_misses_.load(std::memory_order_relaxed);
  }

  /// The fault site that fired on this query ("" when none); recorded by
  /// GovernorFaultPoint for ExecProfile::fault_site.
  std::string fault_site() const;
  void RecordFaultSite(const char* site);

  FaultInjector* faults() const { return faults_; }
  bool has_deadline() const {
    return deadline_ != std::chrono::steady_clock::time_point{};
  }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }
  size_t memory_budget_bytes() const { return budget_bytes_; }

 private:
  std::chrono::steady_clock::time_point deadline_{};  // zero = none
  size_t budget_bytes_ = 0;                           // 0 = unlimited
  FaultInjector* faults_ = nullptr;                   // nullptr = Global()

  std::atomic<int> tripped_{0};  // StatusCode of the first trip, 0 = none
  std::atomic<size_t> recycler_hits_{0};
  std::atomic<size_t> recycler_misses_{0};
  std::atomic<size_t> outstanding_{0};  // charges minus releases
  std::atomic<size_t> peak_{0};         // high-water mark of outstanding_
  size_t spill_watermark_ = 0;          // 0 = spilling disabled
  std::unique_ptr<SpillManager> spill_;
  std::function<void()> admission_release_;
  mutable std::mutex mutex_;  // guards trip_message_ / fault_site_
  std::string trip_message_;
  std::string fault_site_;
};

/// The executing thread's current governor (nullptr outside a governed
/// statement). ParallelFor propagates it to pool workers for the duration
/// of a region's tasks.
QueryContext* CurrentQueryContext();

/// Installs `context` as current for this thread's scope (restores the
/// previous one on unwind, so nested governed executions compose).
class ScopedQueryContext {
 public:
  explicit ScopedQueryContext(QueryContext* context);
  ~ScopedQueryContext();
  ScopedQueryContext(const ScopedQueryContext&) = delete;
  ScopedQueryContext& operator=(const ScopedQueryContext&) = delete;

 private:
  QueryContext* saved_;
};

/// Poll point for execution loops: checks cancellation/deadline of the
/// current context (no-op without one). Throws QueryAbort on a trip.
inline void GovernorPoll() {
  if (QueryContext* ctx = CurrentQueryContext()) ctx->Poll();
}

/// Charges bytes against the current context's budget (no-op without one).
/// Throws QueryAbort (kResourceExhausted) when the budget trips.
inline void GovernorCharge(size_t bytes) {
  if (QueryContext* ctx = CurrentQueryContext()) ctx->Charge(bytes);
}

/// Returns bytes of a previous GovernorCharge (no-op without a context).
inline void GovernorRelease(size_t bytes) {
  if (QueryContext* ctx = CurrentQueryContext()) ctx->Release(bytes);
}

/// RAII transient charge: Add() charges the CURRENT context (captured at
/// the first Add), the destructor releases everything charged. Bytes are
/// recorded before Charge() runs, so a budget trip mid-Add still releases
/// the full amount when the owner unwinds. Movable (for chunk state held
/// in vectors); release may run on a different thread than the charges —
/// the governor's accounting is atomic.
class ScopedCharge {
 public:
  ScopedCharge() = default;
  ~ScopedCharge() { ReleaseNow(); }
  ScopedCharge(ScopedCharge&& other) noexcept
      : ctx_(other.ctx_), bytes_(other.bytes_) {
    other.ctx_ = nullptr;
    other.bytes_ = 0;
  }
  ScopedCharge& operator=(ScopedCharge&& other) noexcept {
    if (this != &other) {
      ReleaseNow();
      ctx_ = other.ctx_;
      bytes_ = other.bytes_;
      other.ctx_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  void Add(size_t bytes) {
    if (ctx_ == nullptr) ctx_ = CurrentQueryContext();
    if (ctx_ == nullptr) return;
    bytes_ += bytes;
    ctx_->Charge(bytes);
  }

  void ReleaseNow() {
    if (ctx_ != nullptr && bytes_ > 0) ctx_->Release(bytes_);
    bytes_ = 0;
  }

 private:
  QueryContext* ctx_ = nullptr;
  size_t bytes_ = 0;
};

/// Named fault site (see FaultInjector::KnownSites). Consults the current
/// context's injector — or the global one outside a governed statement, so
/// sites like snapshot publication stay testable — and throws QueryAbort
/// with a deterministic message when the armed hit fires.
void GovernorFaultPoint(const char* site);

/// Batch-granularity poll helper for row-at-a-time loops: ticks a local
/// counter and polls the governor every `stride` rows, so per-row costs
/// stay at one increment + compare.
class GovernorTicker {
 public:
  explicit GovernorTicker(size_t stride = 1024) : stride_(stride) {}
  void Tick() {
    if (++count_ >= stride_) {
      count_ = 0;
      GovernorPoll();
    }
  }

 private:
  size_t stride_;
  size_t count_ = 0;
};

}  // namespace quotient
