#include "exec/exec_agg.hpp"

#include "exec/batch.hpp"
#include "exec/pipeline.hpp"
#include "exec/query_context.hpp"

namespace quotient {

namespace {

/// The grouping state of one aggregation: incrementally encoded group keys
/// interned to dense group numbers, plus the flat per-(group, spec) AggState
/// array. The global state and each parallel chunk's partial hold one.
struct GroupState {
  explicit GroupState(size_t group_cols) : encoder(group_cols) {}

  size_t num_groups() const {
    return encoder.fits64() ? groups64.size() : groups_spill.size();
  }

  IncrementalKeyEncoder encoder;
  KeyInterner<uint64_t> groups64;
  KeyInterner<SmallByteKey> groups_spill;
  std::vector<AggState> states;
};

/// Folds one batch's rows into `gs` using its pre-resolved group keys.
void FoldBatch(const Batch& batch, const std::vector<uint64_t>& keys64,
               const std::vector<SmallByteKey>& keys_spill, const std::vector<AggSpec>& aggs,
               const std::vector<size_t>& arg_indices, GroupState* gs) {
  const size_t na = aggs.size();
  const bool fits64 = gs->encoder.fits64();
  size_t n = batch.ActiveRows();
  for (size_t i = 0; i < n; ++i) {
    uint32_t gid = fits64 ? gs->groups64.Intern(keys64[i]) : gs->groups_spill.Intern(keys_spill[i]);
    if (size_t{gid} * na >= gs->states.size()) gs->states.resize(gs->states.size() + na);
    uint32_t row = batch.RowAt(i);
    for (size_t j = 0; j < na; ++j) {
      AggAccumulate(aggs[j], batch.At(row, arg_indices[j]), &gs->states[size_t{gid} * na + j]);
    }
  }
}

/// Grouping sink for RunPipeline: chunks aggregate into local GroupStates,
/// and the merge re-interns each chunk's groups (in local first-seen order,
/// chunks in index order — i.e. global row order) into the target state,
/// AggMerge-ing the partial accumulators. Refuses to parallelize when a
/// sum/avg argument is floating point, where re-associated addition could
/// diverge from the serial fold.
class AggregateSink : public PipelineSink {
 public:
  AggregateSink(GroupState* target, const std::vector<AggSpec>* aggs,
                const std::vector<size_t>* group_indices,
                const std::vector<size_t>* arg_indices, bool exact)
      : target_(target),
        aggs_(aggs),
        group_indices_(group_indices),
        arg_indices_(arg_indices),
        exact_(exact),
        serial_keyer_(&target->encoder, group_indices->size()) {}

  bool AllowParallel() const override { return exact_; }

  void ConsumeSerial(const Batch& batch) override {
    GovernorFaultPoint("sink.aggregate");
    const size_t width = (group_indices_->size() + aggs_->size()) * 8;
    // The per-batch key scratch is transient; only group-state growth is
    // retained, so only that delta stays charged after the fold.
    ScopedCharge transient;
    transient.Add(batch.ActiveRows() * width);
    serial_keyer_.Keys(batch, group_indices_, &keys64_, &keys_spill_);
    size_t before = target_->num_groups();
    FoldBatch(batch, keys64_, keys_spill_, *aggs_, *arg_indices_, target_);
    GovernorCharge((target_->num_groups() - before) * width);
  }

  std::unique_ptr<SinkChunk> MakeChunk() override {
    return std::make_unique<Chunk>(group_indices_->size());
  }

  void Consume(SinkChunk& chunk, const Batch& batch) override {
    GovernorFaultPoint("sink.aggregate");
    Chunk& c = static_cast<Chunk&>(chunk);
    const size_t width = (group_indices_->size() + aggs_->size()) * 8;
    ScopedCharge transient;
    transient.Add(batch.ActiveRows() * width);
    c.keyer.Keys(batch, group_indices_, &c.keys64, &c.keys_spill);
    size_t before = c.part.num_groups();
    FoldBatch(batch, c.keys64, c.keys_spill, *aggs_, *arg_indices_, &c.part);
    // Chunk-local partials live until Merge folds them into the target;
    // their charge is scoped to the chunk and released there.
    c.part_charge.Add((c.part.num_groups() - before) * width);
  }

  void Merge(SinkChunk& chunk) override {
    Chunk& c = static_cast<Chunk&>(chunk);
    const size_t na = aggs_->size();
    const size_t nc = group_indices_->size();
    // Both encoders are built over the same group columns, so they always
    // agree on the key representation.
    const bool fits64 = target_->encoder.fits64();
    size_t local_groups = c.part.num_groups();
    // Lazy per-column translation of chunk-local dictionary ids into the
    // target encoder's id space — one Value intern per distinct chunk
    // value, an array load per group key id afterwards, the same merge
    // pattern as KeyCodec::AppendTranslated.
    std::vector<std::vector<uint32_t>> xlat(nc);
    for (size_t col = 0; col < nc; ++col) {
      xlat[col].assign(c.part.encoder.dict(col).size(), ValueDict::kNotFound);
    }
    std::vector<uint32_t> ids(nc);
    SmallByteKey spill;
    size_t target_before = target_->num_groups();
    for (uint32_t gid = 0; gid < local_groups; ++gid) {
      for (size_t col = 0; col < nc; ++col) {
        uint32_t local_id =
            fits64 ? static_cast<uint32_t>(c.part.groups64.At(gid) >> (32 * col))
                   : c.part.groups_spill.At(gid).IdAt(col);
        uint32_t& slot = xlat[col][local_id];
        if (slot == ValueDict::kNotFound) {
          slot = target_->encoder.InternValue(col, c.part.encoder.dict(col).At(local_id));
        }
        ids[col] = slot;
      }
      uint32_t global;
      if (fits64) {
        global = target_->groups64.Intern(target_->encoder.PackIds(ids.data()));
      } else {
        target_->encoder.SpillFromIds(ids.data(), &spill);
        global = target_->groups_spill.Intern(spill);
      }
      if (size_t{global} * na >= target_->states.size()) {
        target_->states.resize(target_->states.size() + na);
      }
      for (size_t j = 0; j < na; ++j) {
        AggMerge(c.part.states[size_t{gid} * na + j],
                 &target_->states[size_t{global} * na + j]);
      }
    }
    GovernorCharge((target_->num_groups() - target_before) * (nc + na) * 8);
    c.part_charge.ReleaseNow();
  }

 private:
  struct Chunk : SinkChunk {
    explicit Chunk(size_t group_cols) : part(group_cols), keyer(&part.encoder, group_cols) {}
    GroupState part;
    BatchIncrementalKeyer keyer;
    std::vector<uint64_t> keys64;
    std::vector<SmallByteKey> keys_spill;
    ScopedCharge part_charge;
  };

  GroupState* target_;
  const std::vector<AggSpec>* aggs_;
  const std::vector<size_t>* group_indices_;
  const std::vector<size_t>* arg_indices_;
  bool exact_;
  BatchIncrementalKeyer serial_keyer_;
  std::vector<uint64_t> keys64_;
  std::vector<SmallByteKey> keys_spill_;
};

}  // namespace

HashAggregateIterator::HashAggregateIterator(IterPtr child, std::vector<std::string> group_names,
                                             std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_names_(std::move(group_names)),
      aggs_(std::move(aggs)),
      schema_(GroupByOutputSchema(child_->schema(), group_names_, aggs_)) {
  for (const std::string& name : group_names_) {
    group_indices_.push_back(child_->schema().IndexOfOrThrow(name));
  }
  arg_indices_ = AggArgIndices(child_->schema(), aggs_);
}

std::shared_ptr<GroupingArtifact> HashAggregateIterator::BuildArtifact() {
  auto art = std::make_shared<GroupingArtifact>();
  child_->Open();

  // Online hash aggregation: group keys are incrementally dictionary-encoded
  // and interned to dense group numbers; per-group aggregate states live in
  // one flat array. Nothing is materialized but the output. The batch and
  // parallel paths resolve group keys through translation arrays into the
  // same encoder id space, so grouping is identical across modes.
  GroupState groups(group_indices_.size());
  const size_t na = aggs_.size();
  bool pipelined = false;

  if (UseTupleDrain(*child_)) {
    SmallByteKey spill;
    while (const Tuple* t = child_->NextRef()) {
      uint32_t gid;
      if (groups.encoder.fits64()) {
        gid = groups.groups64.Intern(groups.encoder.Encode64(*t, &group_indices_));
      } else {
        groups.encoder.EncodeSpill(*t, &group_indices_, &spill);
        gid = groups.groups_spill.Intern(spill);
      }
      if (size_t{gid} * na >= groups.states.size()) groups.states.resize(groups.states.size() + na);
      for (size_t j = 0; j < na; ++j) {
        AggAccumulate(aggs_[j], (*t)[arg_indices_[j]], &groups.states[size_t{gid} * na + j]);
      }
    }
  } else {
    // Parallel merges re-associate additions; only exact (integer) sums may
    // take the chunked path.
    bool exact = true;
    for (size_t j = 0; j < na; ++j) {
      if (aggs_[j].fn != AggFunc::kSum && aggs_[j].fn != AggFunc::kAvg) continue;
      if (child_->schema().attribute(arg_indices_[j]).type != ValueType::kInt) exact = false;
    }
    AggregateSink sink(&groups, &aggs_, &group_indices_, &arg_indices_, exact);
    RecordPipelineDop(RunPipeline(*child_, sink).dop);
    pipelined = true;
  }

  size_t num_groups = groups.num_groups();
  if (pipelined) {
    // Mirror the sink's retained group-state charge so publication can hand
    // it from the building query to the recycler's budget.
    art->extra_charge = num_groups * (group_indices_.size() + na) * 8;
  }
  if (group_names_.empty() && num_groups == 0) {
    // GγF with no group attributes produces one global row even for empty
    // input (count = 0, sum/min/max/avg NULL).
    Tuple global;
    for (size_t j = 0; j < na; ++j) global.push_back(AggFinish(aggs_[j], AggState{}));
    art->rows.push_back(std::move(global));
    return art;
  }
  art->rows.reserve(num_groups);
  for (uint32_t gid = 0; gid < num_groups; ++gid) {
    Tuple t;
    t.reserve(group_indices_.size() + na);
    if (groups.encoder.fits64()) {
      groups.encoder.Decode(groups.groups64.At(gid), &t);
    } else {
      groups.encoder.Decode(groups.groups_spill.At(gid), &t);
    }
    for (size_t j = 0; j < na; ++j) {
      t.push_back(AggFinish(aggs_[j], groups.states[size_t{gid} * na + j]));
    }
    art->rows.push_back(std::move(t));
  }
  return art;
}

void HashAggregateIterator::Open() {
  ResetCount();
  position_ = 0;
  grouping_.reset();
  // Adopt-or-build; a hit skips the child entirely (it is never opened —
  // Close() on an unopened child is a no-op in every iterator).
  if (recycle_.recycler && !recycle_.build_key.empty()) {
    ArtifactPtr cached = recycle_.recycler->GetOrBuild(
        recycle_.build_key, recycle_.tables,
        [&]() -> std::shared_ptr<RecycledArtifact> { return BuildArtifact(); });
    if (cached) grouping_ = std::static_pointer_cast<const GroupingArtifact>(cached);
  }
  if (!grouping_) grouping_ = BuildArtifact();
}

bool HashAggregateIterator::Next(Tuple* out) {
  if (position_ >= grouping_->rows.size()) return false;
  *out = grouping_->rows[position_++];
  CountRow();
  return true;
}

bool HashAggregateIterator::NextBatch(Batch* out) {
  if (!EmitResultBatch(grouping_->rows, &position_, out)) return false;
  CountRows(out->ActiveRows());
  return true;
}

void HashAggregateIterator::Close() {
  child_->Close();
  grouping_.reset();
}

}  // namespace quotient
