#include "exec/exec_agg.hpp"

namespace quotient {

HashAggregateIterator::HashAggregateIterator(IterPtr child, std::vector<std::string> group_names,
                                             std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_names_(std::move(group_names)),
      aggs_(std::move(aggs)),
      schema_(GroupByOutputSchema(child_->schema(), group_names_, aggs_)) {
  for (const std::string& name : group_names_) {
    group_indices_.push_back(child_->schema().IndexOfOrThrow(name));
  }
  arg_indices_ = AggArgIndices(child_->schema(), aggs_);
}

void HashAggregateIterator::Open() {
  ResetCount();
  child_->Open();
  results_.clear();
  position_ = 0;

  // Online hash aggregation: group keys are incrementally dictionary-encoded
  // and interned to dense group numbers; per-group aggregate states live in
  // one flat array. Nothing is materialized but the output.
  IncrementalKeyEncoder encoder(group_indices_.size());
  KeyInterner<uint64_t> groups64;
  KeyInterner<SmallByteKey> groups_spill;
  const size_t na = aggs_.size();
  std::vector<AggState> states;
  SmallByteKey spill;
  while (const Tuple* t = child_->NextRef()) {
    uint32_t gid;
    if (encoder.fits64()) {
      gid = groups64.Intern(encoder.Encode64(*t, &group_indices_));
    } else {
      encoder.EncodeSpill(*t, &group_indices_, &spill);
      gid = groups_spill.Intern(spill);
    }
    if (size_t{gid} * na >= states.size()) states.resize(states.size() + na);
    for (size_t i = 0; i < na; ++i) {
      AggAccumulate(aggs_[i], (*t)[arg_indices_[i]], &states[size_t{gid} * na + i]);
    }
  }

  size_t num_groups = encoder.fits64() ? groups64.size() : groups_spill.size();
  if (group_names_.empty() && num_groups == 0) {
    // GγF with no group attributes produces one global row even for empty
    // input (count = 0, sum/min/max/avg NULL).
    Tuple global;
    for (size_t i = 0; i < na; ++i) global.push_back(AggFinish(aggs_[i], AggState{}));
    results_.push_back(std::move(global));
    return;
  }
  results_.reserve(num_groups);
  for (uint32_t gid = 0; gid < num_groups; ++gid) {
    Tuple t;
    t.reserve(group_indices_.size() + na);
    if (encoder.fits64()) {
      encoder.Decode(groups64.At(gid), &t);
    } else {
      encoder.Decode(groups_spill.At(gid), &t);
    }
    for (size_t i = 0; i < na; ++i) t.push_back(AggFinish(aggs_[i], states[size_t{gid} * na + i]));
    results_.push_back(std::move(t));
  }
}

bool HashAggregateIterator::Next(Tuple* out) {
  if (position_ >= results_.size()) return false;
  *out = results_[position_++];
  CountRow();
  return true;
}

void HashAggregateIterator::Close() {
  child_->Close();
  results_.clear();
}

}  // namespace quotient
