#include "exec/exec_agg.hpp"

#include "exec/batch.hpp"

namespace quotient {

HashAggregateIterator::HashAggregateIterator(IterPtr child, std::vector<std::string> group_names,
                                             std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_names_(std::move(group_names)),
      aggs_(std::move(aggs)),
      schema_(GroupByOutputSchema(child_->schema(), group_names_, aggs_)) {
  for (const std::string& name : group_names_) {
    group_indices_.push_back(child_->schema().IndexOfOrThrow(name));
  }
  arg_indices_ = AggArgIndices(child_->schema(), aggs_);
}

void HashAggregateIterator::Open() {
  ResetCount();
  child_->Open();
  results_.clear();
  position_ = 0;

  // Online hash aggregation: group keys are incrementally dictionary-encoded
  // and interned to dense group numbers; per-group aggregate states live in
  // one flat array. Nothing is materialized but the output. The batch path
  // resolves group keys through translation arrays into the same encoder id
  // space, so grouping is identical across modes.
  IncrementalKeyEncoder encoder(group_indices_.size());
  KeyInterner<uint64_t> groups64;
  KeyInterner<SmallByteKey> groups_spill;
  const size_t na = aggs_.size();
  std::vector<AggState> states;
  auto accumulate = [&](uint32_t gid, auto&& value_at) {
    if (size_t{gid} * na >= states.size()) states.resize(states.size() + na);
    for (size_t i = 0; i < na; ++i) {
      AggAccumulate(aggs_[i], value_at(arg_indices_[i]), &states[size_t{gid} * na + i]);
    }
  };

  if (GetExecMode() == ExecMode::kBatch) {
    BatchIncrementalKeyer keyer(&encoder, group_indices_.size());
    Batch batch;
    std::vector<uint64_t> keys64;
    std::vector<SmallByteKey> keys_spill;
    while (child_->NextBatch(&batch)) {
      keyer.Keys(batch, &group_indices_, &keys64, &keys_spill);
      size_t n = batch.ActiveRows();
      for (size_t i = 0; i < n; ++i) {
        uint32_t gid = encoder.fits64() ? groups64.Intern(keys64[i])
                                        : groups_spill.Intern(keys_spill[i]);
        uint32_t row = batch.RowAt(i);
        accumulate(gid, [&](size_t col) -> const Value& { return batch.At(row, col); });
      }
    }
  } else {
    SmallByteKey spill;
    while (const Tuple* t = child_->NextRef()) {
      uint32_t gid;
      if (encoder.fits64()) {
        gid = groups64.Intern(encoder.Encode64(*t, &group_indices_));
      } else {
        encoder.EncodeSpill(*t, &group_indices_, &spill);
        gid = groups_spill.Intern(spill);
      }
      accumulate(gid, [&](size_t col) -> const Value& { return (*t)[col]; });
    }
  }

  size_t num_groups = encoder.fits64() ? groups64.size() : groups_spill.size();
  if (group_names_.empty() && num_groups == 0) {
    // GγF with no group attributes produces one global row even for empty
    // input (count = 0, sum/min/max/avg NULL).
    Tuple global;
    for (size_t i = 0; i < na; ++i) global.push_back(AggFinish(aggs_[i], AggState{}));
    results_.push_back(std::move(global));
    return;
  }
  results_.reserve(num_groups);
  for (uint32_t gid = 0; gid < num_groups; ++gid) {
    Tuple t;
    t.reserve(group_indices_.size() + na);
    if (encoder.fits64()) {
      encoder.Decode(groups64.At(gid), &t);
    } else {
      encoder.Decode(groups_spill.At(gid), &t);
    }
    for (size_t i = 0; i < na; ++i) t.push_back(AggFinish(aggs_[i], states[size_t{gid} * na + i]));
    results_.push_back(std::move(t));
  }
}

bool HashAggregateIterator::Next(Tuple* out) {
  if (position_ >= results_.size()) return false;
  *out = results_[position_++];
  CountRow();
  return true;
}

bool HashAggregateIterator::NextBatch(Batch* out) {
  if (!EmitResultBatch(results_, &position_, out)) return false;
  CountRows(out->ActiveRows());
  return true;
}

void HashAggregateIterator::Close() {
  child_->Close();
  results_.clear();
}

}  // namespace quotient
