#include "exec/exec_agg.hpp"

namespace quotient {

HashAggregateIterator::HashAggregateIterator(IterPtr child, std::vector<std::string> group_names,
                                             std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_names_(std::move(group_names)),
      aggs_(std::move(aggs)),
      schema_(GroupByOutputSchema(child_->schema(), group_names_, aggs_)) {}

void HashAggregateIterator::Open() {
  ResetCount();
  child_->Open();
  // Delegate the aggregation to the reference implementation over the
  // drained child; correctness first, and the materialization cost is the
  // same order as any hash aggregate.
  std::vector<Tuple> rows;
  Tuple t;
  while (child_->Next(&t)) rows.push_back(std::move(t));
  Relation input(child_->schema(), std::move(rows));
  Relation result = GroupBy(input, group_names_, aggs_);
  results_ = result.tuples();
  position_ = 0;
}

bool HashAggregateIterator::Next(Tuple* out) {
  if (position_ >= results_.size()) return false;
  *out = results_[position_++];
  CountRow();
  return true;
}

void HashAggregateIterator::Close() {
  child_->Close();
  results_.clear();
}

}  // namespace quotient
