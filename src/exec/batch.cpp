#include "exec/batch.hpp"

#include <atomic>

namespace quotient {

namespace {

constexpr size_t kDefaultBatchRows = 1024;

std::atomic<ExecMode>& ExecModeFlag() {
  static std::atomic<ExecMode> mode{ExecMode::kParallel};
  return mode;
}

std::atomic<size_t>& BatchRowsFlag() {
  static std::atomic<size_t> rows{kDefaultBatchRows};
  return rows;
}

}  // namespace

ExecMode GetExecMode() { return ExecModeFlag().load(std::memory_order_relaxed); }
void SetExecMode(ExecMode mode) { ExecModeFlag().store(mode, std::memory_order_relaxed); }

size_t GetBatchRows() { return BatchRowsFlag().load(std::memory_order_relaxed); }
void SetBatchRows(size_t rows) {
  BatchRowsFlag().store(rows == 0 ? 1 : rows, std::memory_order_relaxed);
}

std::shared_ptr<const TableEncoding> TableEncoding::Build(const Relation& relation) {
  auto encoding = std::make_shared<TableEncoding>();
  encoding->rows = relation.size();
  size_t num_cols = relation.schema().size();
  encoding->columns.resize(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    ColumnEncoding& col = encoding->columns[c];
    col.dict.Reserve(relation.size() / 4 + 8);
    col.ids.reserve(relation.size());
    for (const Tuple& t : relation.tuples()) col.ids.push_back(col.dict.GetOrAdd(t[c]));
  }
  return encoding;
}

void Batch::AppendOwnedRow(Tuple t) {
  owned_.push_back(std::make_unique<Tuple>(std::move(t)));
  row_refs_.push_back(owned_.back().get());
  ++rows_;
}

void Batch::ToTuple(size_t row, Tuple* out) const {
  if (row_mode_) {
    *out = *row_refs_[row];
    return;
  }
  out->clear();
  out->reserve(columns_.size());
  for (const BatchColumn& col : columns_) out->push_back(col.At(row));
}

void BatchCodecAppender::Append(const Batch& batch) {
  size_t n = batch.ActiveRows();
  if (n == 0) return;
  size_t nc = indices_->size();
  scratch_.resize(n * nc);
  for (size_t c = 0; c < nc; ++c) {
    size_t col = (*indices_)[c];
    uint32_t* dst = scratch_.data() + c;
    if (const BatchColumn* enc = batch.EncodedColumn(col)) {
      const uint32_t* src = enc->ids.data();
      const ValueDict& dict = *enc->dict;
      IdTranslator& xlat = xlat_[c];
      for (size_t i = 0; i < n; ++i, dst += nc) {
        *dst = xlat.Map(dict, src[batch.RowAt(i)],
                        [&](const Value& v) { return codec_->InternValue(c, v); });
      }
    } else {
      for (size_t i = 0; i < n; ++i, dst += nc) {
        *dst = codec_->InternValue(c, batch.At(batch.RowAt(i), col));
      }
    }
  }
  codec_->AppendRows(scratch_.data(), n);
}

void BatchKeyProbe::Resolve(const Batch& batch, std::vector<uint32_t>* out) {
  size_t n = batch.ActiveRows();
  if (n == 0) return;
  size_t nc = indices_->size();

  // Single-column keys (the dominant case) go straight from source ids to
  // dense numbers through one translation array.
  if (nc == 1) {
    size_t col = (*indices_)[0];
    if (const BatchColumn* enc = batch.EncodedColumn(col)) {
      const uint32_t* src = enc->ids.data();
      const ValueDict& dict = *enc->dict;
      IdTranslator& xlat = xlat_[0];
      for (size_t i = 0; i < n; ++i) {
        uint32_t id = xlat.Map(dict, src[batch.RowAt(i)], [&](const Value& v) {
          uint32_t cid = codec_->FindValue(0, v);
          if (cid == ValueDict::kNotFound) return KeyNumbering::kNotFound;
          return numbering_->ProbeIds(&cid);
        });
        out->push_back(id);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        uint32_t cid = codec_->FindValue(0, batch.At(batch.RowAt(i), col));
        out->push_back(cid == ValueDict::kNotFound ? KeyNumbering::kNotFound
                                                   : numbering_->ProbeIds(&cid));
      }
    }
    return;
  }

  // Multi-column keys: resolve per column into a row-major scratch (a miss
  // in any column disqualifies the row), then probe the packed key.
  scratch_.resize(n * nc);
  miss_.assign(n, 0);
  for (size_t c = 0; c < nc; ++c) {
    size_t col = (*indices_)[c];
    uint32_t* dst = scratch_.data() + c;
    if (const BatchColumn* enc = batch.EncodedColumn(col)) {
      const uint32_t* src = enc->ids.data();
      const ValueDict& dict = *enc->dict;
      IdTranslator& xlat = xlat_[c];
      for (size_t i = 0; i < n; ++i, dst += nc) {
        uint32_t id = xlat.Map(dict, src[batch.RowAt(i)],
                               [&](const Value& v) { return codec_->FindValue(c, v); });
        *dst = id;
        miss_[i] |= (id == ValueDict::kNotFound);
      }
    } else {
      for (size_t i = 0; i < n; ++i, dst += nc) {
        uint32_t id = codec_->FindValue(c, batch.At(batch.RowAt(i), col));
        *dst = id;
        miss_[i] |= (id == ValueDict::kNotFound);
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    out->push_back(miss_[i] ? KeyNumbering::kNotFound
                            : numbering_->ProbeIds(scratch_.data() + i * nc));
  }
}

void BatchIncrementalKeyer::Keys(const Batch& batch, const std::vector<size_t>* col_map,
                                 std::vector<uint64_t>* out64,
                                 std::vector<SmallByteKey>* out_spill) {
  size_t n = batch.ActiveRows();
  bool fits64 = encoder_->fits64();
  if (fits64) {
    out64->clear();
    out64->resize(n, 0);
  } else {
    out_spill->clear();
    out_spill->resize(n);
  }
  if (n == 0) return;
  size_t nc = encoder_->num_cols();
  scratch_.resize(n * nc);
  for (size_t c = 0; c < nc; ++c) {
    size_t col = col_map ? (*col_map)[c] : c;
    uint32_t* dst = scratch_.data() + c;
    if (const BatchColumn* enc = batch.EncodedColumn(col)) {
      const uint32_t* src = enc->ids.data();
      const ValueDict& dict = *enc->dict;
      IdTranslator& xlat = xlat_[c];
      for (size_t i = 0; i < n; ++i, dst += nc) {
        *dst = xlat.Map(dict, src[batch.RowAt(i)],
                        [&](const Value& v) { return encoder_->InternValue(c, v); });
      }
    } else {
      for (size_t i = 0; i < n; ++i, dst += nc) {
        *dst = encoder_->InternValue(c, batch.At(batch.RowAt(i), col));
      }
    }
  }
  if (fits64) {
    for (size_t i = 0; i < n; ++i) (*out64)[i] = encoder_->PackIds(scratch_.data() + i * nc);
  } else {
    for (size_t i = 0; i < n; ++i) {
      encoder_->SpillFromIds(scratch_.data() + i * nc, &(*out_spill)[i]);
    }
  }
}

bool EmitResultBatch(const std::vector<Tuple>& results, size_t* position, Batch* out) {
  if (*position >= results.size()) return false;
  size_t take = std::min(GetBatchRows(), results.size() - *position);
  out->ResetRows();
  for (size_t i = 0; i < take; ++i) out->AppendRowRef(&results[*position + i]);
  *position += take;
  return true;
}

}  // namespace quotient
