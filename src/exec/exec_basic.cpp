#include "exec/exec_basic.hpp"

#include "util/status.hpp"

namespace quotient {

namespace {

/// Index mapping that reorders `from` tuples into `to` attribute order;
/// empty when the schemas already align positionally.
std::vector<size_t> ReorderIndices(const Schema& to, const Schema& from) {
  if (!to.SameAttributeSet(from)) {
    throw SchemaError("set operation requires union-compatible schemas, got " + to.ToString() +
                      " and " + from.ToString());
  }
  if (to == from) return {};
  std::vector<size_t> indices;
  indices.reserve(to.size());
  for (const Attribute& a : to.attributes()) indices.push_back(from.IndexOfOrThrow(a.name));
  return indices;
}

Tuple MaybeReorder(const Tuple& t, const std::vector<size_t>& indices) {
  if (indices.empty()) return t;
  return ProjectTuple(t, indices);
}

/// Shared build side of ∩ and −: drains `right` into an encoded key set
/// (reordered into the left schema's attribute order via `reorder`).
void BuildKeySet(Iterator& right, const std::vector<size_t>& right_reorder,
                 IncrementalKeyEncoder& encoder,
                 std::unordered_set<uint64_t, FlatKeyHash>& set64,
                 std::unordered_set<SmallByteKey, FlatKeyHash>& set_spill) {
  size_t expected = right.EstimatedRows();
  if (encoder.fits64()) set64.reserve(expected);
  SmallByteKey spill;
  const std::vector<size_t>* reorder = right_reorder.empty() ? nullptr : &right_reorder;
  while (const Tuple* t = right.NextRef()) {
    if (encoder.fits64()) {
      set64.insert(encoder.Encode64(*t, reorder));
    } else {
      encoder.EncodeSpill(*t, reorder, &spill);
      set_spill.insert(spill);
    }
  }
}

}  // namespace

bool RelationScan::Next(Tuple* out) {
  if (position_ >= relation_->size()) return false;
  *out = relation_->tuples()[position_++];
  CountRow();
  return true;
}

FilterIterator::FilterIterator(IterPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

void FilterIterator::Open() {
  ResetCount();
  child_->Open();
  bound_ = std::make_unique<BoundExpr>(predicate_, child_->schema());
}

bool FilterIterator::Next(Tuple* out) {
  while (child_->Next(out)) {
    if (bound_->EvalBool(*out)) {
      CountRow();
      return true;
    }
  }
  return false;
}

const Tuple* FilterIterator::NextRef() {
  while (const Tuple* t = child_->NextRef()) {
    if (bound_->EvalBool(*t)) {
      CountRow();
      return t;
    }
  }
  return nullptr;
}

ProjectIterator::ProjectIterator(IterPtr child, std::vector<std::string> columns)
    : child_(std::move(child)), schema_(child_->schema().Project(columns)) {
  for (const std::string& column : columns) {
    indices_.push_back(child_->schema().IndexOfOrThrow(column));
  }
}

void ProjectIterator::Open() {
  ResetCount();
  child_->Open();
  encoder_ = IncrementalKeyEncoder(indices_.size());
  seen64_.clear();
  seen_spill_.clear();
}

bool ProjectIterator::Next(Tuple* out) {
  SmallByteKey spill;
  while (const Tuple* t = child_->NextRef()) {
    // Dedup on the encoded key; only materialize the projection for fresh
    // keys.
    bool fresh = encoder_.fits64()
                     ? seen64_.insert(encoder_.Encode64(*t, &indices_)).second
                     : (encoder_.EncodeSpill(*t, &indices_, &spill),
                        seen_spill_.insert(spill).second);
    if (fresh) {
      *out = ProjectTuple(*t, indices_);
      CountRow();
      return true;
    }
  }
  return false;
}

void ProjectIterator::Close() {
  child_->Close();
  seen64_.clear();
  seen_spill_.clear();
}

RenameIterator::RenameIterator(IterPtr child,
                               std::vector<std::pair<std::string, std::string>> renames)
    : child_(std::move(child)) {
  std::vector<Attribute> attributes = child_->schema().attributes();
  for (const auto& [from, to] : renames) {
    attributes[child_->schema().IndexOfOrThrow(from)].name = to;
  }
  schema_ = Schema(std::move(attributes));
}

bool RenameIterator::Next(Tuple* out) {
  if (!child_->Next(out)) return false;
  CountRow();
  return true;
}

UnionIterator::UnionIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      right_reorder_(ReorderIndices(left_->schema(), right_->schema())) {}

void UnionIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  on_right_ = false;
  encoder_ = IncrementalKeyEncoder(left_->schema().size());
  seen64_.clear();
  seen_spill_.clear();
}

bool UnionIterator::NextAligned(Tuple* out) {
  if (!on_right_) {
    if (left_->Next(out)) return true;
    on_right_ = true;
  }
  Tuple t;
  if (right_->Next(&t)) {
    *out = MaybeReorder(t, right_reorder_);
    return true;
  }
  return false;
}

bool UnionIterator::Next(Tuple* out) {
  SmallByteKey spill;
  while (NextAligned(out)) {
    bool fresh = encoder_.fits64()
                     ? seen64_.insert(encoder_.Encode64(*out, nullptr)).second
                     : (encoder_.EncodeSpill(*out, nullptr, &spill),
                        seen_spill_.insert(spill).second);
    if (fresh) {
      CountRow();
      return true;
    }
  }
  return false;
}

void UnionIterator::Close() {
  left_->Close();
  right_->Close();
  seen64_.clear();
  seen_spill_.clear();
}

IntersectIterator::IntersectIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      right_reorder_(ReorderIndices(left_->schema(), right_->schema())) {}

void IntersectIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  encoder_ = IncrementalKeyEncoder(left_->schema().size());
  build64_.clear();
  emitted64_.clear();
  build_spill_.clear();
  emitted_spill_.clear();
  BuildKeySet(*right_, right_reorder_, encoder_, build64_, build_spill_);
}

bool IntersectIterator::Next(Tuple* out) {
  SmallByteKey spill;
  while (left_->Next(out)) {
    bool hit;
    if (encoder_.fits64()) {
      uint64_t key = encoder_.Encode64(*out, nullptr);
      hit = build64_.count(key) && emitted64_.insert(key).second;
    } else {
      encoder_.EncodeSpill(*out, nullptr, &spill);
      hit = build_spill_.count(spill) && emitted_spill_.insert(spill).second;
    }
    if (hit) {
      CountRow();
      return true;
    }
  }
  return false;
}

void IntersectIterator::Close() {
  left_->Close();
  right_->Close();
  build64_.clear();
  emitted64_.clear();
  build_spill_.clear();
  emitted_spill_.clear();
}

DifferenceIterator::DifferenceIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      right_reorder_(ReorderIndices(left_->schema(), right_->schema())) {}

void DifferenceIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  encoder_ = IncrementalKeyEncoder(left_->schema().size());
  build64_.clear();
  emitted64_.clear();
  build_spill_.clear();
  emitted_spill_.clear();
  BuildKeySet(*right_, right_reorder_, encoder_, build64_, build_spill_);
}

bool DifferenceIterator::Next(Tuple* out) {
  SmallByteKey spill;
  while (left_->Next(out)) {
    bool keep;
    if (encoder_.fits64()) {
      uint64_t key = encoder_.Encode64(*out, nullptr);
      keep = !build64_.count(key) && emitted64_.insert(key).second;
    } else {
      encoder_.EncodeSpill(*out, nullptr, &spill);
      keep = !build_spill_.count(spill) && emitted_spill_.insert(spill).second;
    }
    if (keep) {
      CountRow();
      return true;
    }
  }
  return false;
}

void DifferenceIterator::Close() {
  left_->Close();
  right_->Close();
  build64_.clear();
  emitted64_.clear();
  build_spill_.clear();
  emitted_spill_.clear();
}

CrossProductIterator::CrossProductIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      schema_(left_->schema().Concat(right_->schema())) {}

void CrossProductIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  right_rows_.clear();
  right_rows_.reserve(right_->EstimatedRows());
  while (const Tuple* t = right_->NextRef()) right_rows_.push_back(*t);
  have_left_ = false;
  right_pos_ = 0;
}

bool CrossProductIterator::Next(Tuple* out) {
  if (right_rows_.empty()) return false;
  while (true) {
    if (!have_left_) {
      if (!left_->Next(&current_left_)) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    if (right_pos_ < right_rows_.size()) {
      *out = ConcatTuples(current_left_, right_rows_[right_pos_++]);
      CountRow();
      return true;
    }
    have_left_ = false;
  }
}

void CrossProductIterator::Close() {
  left_->Close();
  right_->Close();
  right_rows_.clear();
}

}  // namespace quotient
