#include "exec/exec_basic.hpp"

#include "util/status.hpp"

namespace quotient {

namespace {

/// Index mapping that reorders `from` tuples into `to` attribute order;
/// empty when the schemas already align positionally.
std::vector<size_t> ReorderIndices(const Schema& to, const Schema& from) {
  if (!to.SameAttributeSet(from)) {
    throw SchemaError("set operation requires union-compatible schemas, got " + to.ToString() +
                      " and " + from.ToString());
  }
  if (to == from) return {};
  std::vector<size_t> indices;
  indices.reserve(to.size());
  for (const Attribute& a : to.attributes()) indices.push_back(from.IndexOfOrThrow(a.name));
  return indices;
}

Tuple MaybeReorder(const Tuple& t, const std::vector<size_t>& indices) {
  if (indices.empty()) return t;
  return ProjectTuple(t, indices);
}

}  // namespace

bool RelationScan::Next(Tuple* out) {
  if (position_ >= relation_->size()) return false;
  *out = relation_->tuples()[position_++];
  CountRow();
  return true;
}

FilterIterator::FilterIterator(IterPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

void FilterIterator::Open() {
  ResetCount();
  child_->Open();
  bound_ = std::make_unique<BoundExpr>(predicate_, child_->schema());
}

bool FilterIterator::Next(Tuple* out) {
  while (child_->Next(out)) {
    if (bound_->EvalBool(*out)) {
      CountRow();
      return true;
    }
  }
  return false;
}

ProjectIterator::ProjectIterator(IterPtr child, std::vector<std::string> columns)
    : child_(std::move(child)), schema_(child_->schema().Project(columns)) {
  for (const std::string& column : columns) {
    indices_.push_back(child_->schema().IndexOfOrThrow(column));
  }
}

void ProjectIterator::Open() {
  ResetCount();
  child_->Open();
  seen_.clear();
}

bool ProjectIterator::Next(Tuple* out) {
  Tuple t;
  while (child_->Next(&t)) {
    Tuple projected = ProjectTuple(t, indices_);
    if (seen_.insert(projected).second) {
      *out = std::move(projected);
      CountRow();
      return true;
    }
  }
  return false;
}

void ProjectIterator::Close() {
  child_->Close();
  seen_.clear();
}

RenameIterator::RenameIterator(IterPtr child,
                               std::vector<std::pair<std::string, std::string>> renames)
    : child_(std::move(child)) {
  std::vector<Attribute> attributes = child_->schema().attributes();
  for (const auto& [from, to] : renames) {
    attributes[child_->schema().IndexOfOrThrow(from)].name = to;
  }
  schema_ = Schema(std::move(attributes));
}

bool RenameIterator::Next(Tuple* out) {
  if (!child_->Next(out)) return false;
  CountRow();
  return true;
}

UnionIterator::UnionIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      right_reorder_(ReorderIndices(left_->schema(), right_->schema())) {}

void UnionIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  on_right_ = false;
  seen_.clear();
}

bool UnionIterator::NextAligned(Tuple* out) {
  if (!on_right_) {
    if (left_->Next(out)) return true;
    on_right_ = true;
  }
  Tuple t;
  if (right_->Next(&t)) {
    *out = MaybeReorder(t, right_reorder_);
    return true;
  }
  return false;
}

bool UnionIterator::Next(Tuple* out) {
  while (NextAligned(out)) {
    if (seen_.insert(*out).second) {
      CountRow();
      return true;
    }
  }
  return false;
}

void UnionIterator::Close() {
  left_->Close();
  right_->Close();
  seen_.clear();
}

IntersectIterator::IntersectIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      right_reorder_(ReorderIndices(left_->schema(), right_->schema())) {}

void IntersectIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  build_.clear();
  emitted_.clear();
  Tuple t;
  while (right_->Next(&t)) build_.insert(MaybeReorder(t, right_reorder_));
}

bool IntersectIterator::Next(Tuple* out) {
  while (left_->Next(out)) {
    if (build_.count(*out) && emitted_.insert(*out).second) {
      CountRow();
      return true;
    }
  }
  return false;
}

void IntersectIterator::Close() {
  left_->Close();
  right_->Close();
  build_.clear();
  emitted_.clear();
}

DifferenceIterator::DifferenceIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      right_reorder_(ReorderIndices(left_->schema(), right_->schema())) {}

void DifferenceIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  build_.clear();
  emitted_.clear();
  Tuple t;
  while (right_->Next(&t)) build_.insert(MaybeReorder(t, right_reorder_));
}

bool DifferenceIterator::Next(Tuple* out) {
  while (left_->Next(out)) {
    if (!build_.count(*out) && emitted_.insert(*out).second) {
      CountRow();
      return true;
    }
  }
  return false;
}

void DifferenceIterator::Close() {
  left_->Close();
  right_->Close();
  build_.clear();
  emitted_.clear();
}

CrossProductIterator::CrossProductIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      schema_(left_->schema().Concat(right_->schema())) {}

void CrossProductIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  right_rows_.clear();
  Tuple t;
  while (right_->Next(&t)) right_rows_.push_back(t);
  have_left_ = false;
  right_pos_ = 0;
}

bool CrossProductIterator::Next(Tuple* out) {
  if (right_rows_.empty()) return false;
  while (true) {
    if (!have_left_) {
      if (!left_->Next(&current_left_)) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    if (right_pos_ < right_rows_.size()) {
      *out = ConcatTuples(current_left_, right_rows_[right_pos_++]);
      CountRow();
      return true;
    }
    have_left_ = false;
  }
}

void CrossProductIterator::Close() {
  left_->Close();
  right_->Close();
  right_rows_.clear();
}

}  // namespace quotient
