#include "exec/exec_basic.hpp"

#include "util/status.hpp"

namespace quotient {

namespace {

/// Index mapping that reorders `from` tuples into `to` attribute order;
/// empty when the schemas already align positionally.
std::vector<size_t> ReorderIndices(const Schema& to, const Schema& from) {
  if (!to.SameAttributeSet(from)) {
    throw SchemaError("set operation requires union-compatible schemas, got " + to.ToString() +
                      " and " + from.ToString());
  }
  if (to == from) return {};
  std::vector<size_t> indices;
  indices.reserve(to.size());
  for (const Attribute& a : to.attributes()) indices.push_back(from.IndexOfOrThrow(a.name));
  return indices;
}

Tuple MaybeReorder(const Tuple& t, const std::vector<size_t>& indices) {
  if (indices.empty()) return t;
  return ProjectTuple(t, indices);
}

/// Copies the active-position rows `picks` of `in` into a compact columnar
/// `out` with `num_cols` columns; out column c reads in column
/// (col_map ? (*col_map)[c] : c). Encoded columns stay encoded (the ids are
/// copied, the dictionary is shared), so downstream operators keep their
/// translation-array fast paths across π / ∪.
void CopyPickedRows(const Batch& in, const std::vector<uint32_t>& picks,
                    const std::vector<size_t>* col_map, size_t num_cols, Batch* out) {
  out->Reset(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    size_t col = col_map ? (*col_map)[c] : c;
    BatchColumn& ocol = out->column(c);
    if (const BatchColumn* enc = in.EncodedColumn(col)) {
      ocol.dict = enc->dict;
      ocol.ids.reserve(picks.size());
      for (uint32_t i : picks) ocol.ids.push_back(enc->ids[in.RowAt(i)]);
    } else {
      ocol.values.reserve(picks.size());
      for (uint32_t i : picks) ocol.values.push_back(in.At(in.RowAt(i), col));
    }
  }
  out->set_rows(picks.size());
}

/// Active indices of `n` keyed rows whose key is fresh (inserted now) in the
/// seen sets — the shared dedup step of π and ∪.
std::vector<uint32_t> FreshPicks(bool fits64, const std::vector<uint64_t>& keys64,
                                 const std::vector<SmallByteKey>& keys_spill, size_t n,
                                 std::unordered_set<uint64_t, FlatKeyHash>* seen64,
                                 std::unordered_set<SmallByteKey, FlatKeyHash>* seen_spill) {
  std::vector<uint32_t> picks;
  if (fits64) {
    for (size_t i = 0; i < n; ++i) {
      if (seen64->insert(keys64[i]).second) picks.push_back(static_cast<uint32_t>(i));
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      if (seen_spill->insert(keys_spill[i]).second) picks.push_back(static_cast<uint32_t>(i));
    }
  }
  return picks;
}

/// Physical rows of `batch` passing the ∩/− probe: a row is kept iff
/// (key ∈ build) == want_member, at most once per distinct key.
std::vector<uint32_t> MembershipSelection(
    const Batch& batch, bool fits64, const std::vector<uint64_t>& keys64,
    const std::vector<SmallByteKey>& keys_spill, bool want_member,
    const std::unordered_set<uint64_t, FlatKeyHash>& build64,
    const std::unordered_set<SmallByteKey, FlatKeyHash>& build_spill,
    std::unordered_set<uint64_t, FlatKeyHash>* emitted64,
    std::unordered_set<SmallByteKey, FlatKeyHash>* emitted_spill) {
  std::vector<uint32_t> sel;
  size_t n = batch.ActiveRows();
  for (size_t i = 0; i < n; ++i) {
    bool keep = fits64 ? (build64.count(keys64[i]) > 0) == want_member &&
                             emitted64->insert(keys64[i]).second
                       : (build_spill.count(keys_spill[i]) > 0) == want_member &&
                             emitted_spill->insert(keys_spill[i]).second;
    if (keep) sel.push_back(batch.RowAt(i));
  }
  return sel;
}

}  // namespace

void BuildKeySet(Iterator& right, const std::vector<size_t>& right_reorder,
                 IncrementalKeyEncoder& encoder,
                 std::unordered_set<uint64_t, FlatKeyHash>& set64,
                 std::unordered_set<SmallByteKey, FlatKeyHash>& set_spill) {
  size_t expected = right.EstimatedRows();
  if (encoder.fits64()) set64.reserve(expected);
  const std::vector<size_t>* reorder = right_reorder.empty() ? nullptr : &right_reorder;
  if (GetExecMode() != ExecMode::kTuple) {
    BatchIncrementalKeyer keyer(&encoder, encoder.num_cols());
    Batch batch;
    std::vector<uint64_t> keys64;
    std::vector<SmallByteKey> keys_spill;
    while (right.NextBatch(&batch)) {
      keyer.Keys(batch, reorder, &keys64, &keys_spill);
      if (encoder.fits64()) {
        set64.insert(keys64.begin(), keys64.end());
      } else {
        set_spill.insert(keys_spill.begin(), keys_spill.end());
      }
    }
    return;
  }
  SmallByteKey spill;
  while (const Tuple* t = right.NextRef()) {
    if (encoder.fits64()) {
      set64.insert(encoder.Encode64(*t, reorder));
    } else {
      encoder.EncodeSpill(*t, reorder, &spill);
      set_spill.insert(spill);
    }
  }
}

bool RelationScan::Next(Tuple* out) {
  if (position_ >= relation_->size()) return false;
  *out = relation_->tuples()[position_++];
  CountRow();
  return true;
}

bool RelationScan::NextBatch(Batch* out) {
  size_t n = relation_->size();
  if (position_ >= n) return false;
  size_t take = std::min(GetBatchRows(), n - position_);
  FillSpan(position_, take, out);
  position_ += take;
  CountRows(take);
  return true;
}

void RelationScan::FillSpan(size_t begin, size_t count, Batch* out) const {
  // Use the encoding only when its shape matches this relation exactly — a
  // stale or mis-wired encoding (e.g. swapped dividend/divisor arguments)
  // must degrade to the row view, not emit another table's dictionary ids.
  if (encoding_ != nullptr && encoding_->rows == relation_->size() &&
      encoding_->columns.size() == relation_->schema().size()) {
    out->Reset(relation_->schema().size());
    for (size_t c = 0; c < encoding_->columns.size(); ++c) {
      const ColumnEncoding& src = encoding_->columns[c];
      BatchColumn& col = out->column(c);
      col.dict = &src.dict;
      col.ids.assign(src.ids.begin() + begin, src.ids.begin() + begin + count);
    }
    out->set_rows(count);
  } else {
    // No (or stale) encoding: a zero-copy row view into canonical storage.
    out->ResetRows();
    for (size_t i = 0; i < count; ++i) out->AppendRowRef(&relation_->tuples()[begin + i]);
  }
}

FilterIterator::FilterIterator(IterPtr child, ExprPtr predicate)
    : child_(std::move(child)), predicate_(std::move(predicate)) {}

void FilterIterator::Open() {
  ResetCount();
  child_->Open();
  bound_ = std::make_unique<BoundExpr>(predicate_, child_->schema());

  // Split the predicate for the batch path: single-column conjuncts get
  // per-dictionary verdict caches, everything else lands in the residual.
  column_conjuncts_.clear();
  std::vector<ExprPtr> conjuncts;
  Expr::SplitConjuncts(predicate_, &conjuncts);
  std::vector<ExprPtr> residual;
  for (ExprPtr& conjunct : conjuncts) {
    std::set<std::string> cols = conjunct->Columns();
    if (cols.size() == 1) {
      size_t idx = child_->schema().IndexOfOrThrow(*cols.begin());
      ColumnConjunct cc;
      cc.expr = std::move(conjunct);
      cc.col = idx;
      cc.col_schema = Schema({child_->schema().attribute(idx)});
      column_conjuncts_.push_back(std::move(cc));
    } else {
      residual.push_back(std::move(conjunct));
    }
  }
  residual_ = residual.empty() ? nullptr : Expr::AndAll(std::move(residual));
  residual_bound_ =
      residual_ ? std::make_unique<BoundExpr>(residual_, child_->schema()) : nullptr;
}

bool FilterIterator::Next(Tuple* out) {
  while (child_->Next(out)) {
    if (bound_->EvalBool(*out)) {
      CountRow();
      return true;
    }
  }
  return false;
}

const Tuple* FilterIterator::NextRef() {
  while (const Tuple* t = child_->NextRef()) {
    if (bound_->EvalBool(*t)) {
      CountRow();
      return t;
    }
  }
  return nullptr;
}

bool FilterIterator::RowPasses(const Batch& batch, uint32_t row) {
  for (ColumnConjunct& cc : column_conjuncts_) {
    const BatchColumn* enc = batch.EncodedColumn(cc.col);
    if (enc != nullptr) {
      if (!cc.pass[enc->ids[row]]) return false;
    } else {
      scratch_cell_.clear();
      scratch_cell_.push_back(batch.At(row, cc.col));
      if (!cc.expr->EvalBool(cc.col_schema, scratch_cell_)) return false;
    }
  }
  if (residual_bound_ != nullptr) {
    batch.ToTuple(row, &scratch_row_);
    if (!residual_bound_->EvalBool(scratch_row_)) return false;
  }
  return true;
}

bool FilterIterator::NextBatch(Batch* out) {
  while (child_->NextBatch(out)) {
    size_t n = out->ActiveRows();
    std::vector<uint32_t> sel;
    sel.reserve(n);
    if (out->row_mode()) {
      // Row views carry whole tuples: evaluate the bound predicate in place,
      // exactly the tuple-at-a-time cost, no copies.
      for (size_t i = 0; i < n; ++i) {
        uint32_t r = out->RowAt(i);
        if (bound_->EvalBool(*out->RowRef(r))) sel.push_back(r);
      }
    } else {
      // Columnar: (re)fill verdict caches for this batch's dictionaries —
      // one predicate evaluation per distinct value, then a byte load per
      // row. Dictionaries are stable per stream, so this fills once.
      for (ColumnConjunct& cc : column_conjuncts_) {
        const BatchColumn* enc = out->EncodedColumn(cc.col);
        if (enc != nullptr && (enc->dict != cc.dict || cc.pass.size() < enc->dict->size())) {
          cc.dict = enc->dict;
          cc.pass.assign(cc.dict->size(), 0);
          Tuple cell(1);
          for (uint32_t id = 0; id < cc.pass.size(); ++id) {
            cell[0] = cc.dict->At(id);
            cc.pass[id] = cc.expr->EvalBool(cc.col_schema, cell);
          }
        }
      }
      for (size_t i = 0; i < n; ++i) {
        uint32_t r = out->RowAt(i);
        if (RowPasses(*out, r)) sel.push_back(r);
      }
    }
    out->SetSelection(std::move(sel));
    if (out->ActiveRows() > 0) {
      CountRows(out->ActiveRows());
      return true;
    }
  }
  return false;
}

ProjectIterator::ProjectIterator(IterPtr child, std::vector<std::string> columns)
    : child_(std::move(child)), schema_(child_->schema().Project(columns)) {
  for (const std::string& column : columns) {
    indices_.push_back(child_->schema().IndexOfOrThrow(column));
  }
}

void ProjectIterator::Open() {
  ResetCount();
  child_->Open();
  encoder_ = IncrementalKeyEncoder(indices_.size());
  seen64_.clear();
  seen_spill_.clear();
  keyer_ = std::make_unique<BatchIncrementalKeyer>(&encoder_, indices_.size());
}

bool ProjectIterator::Next(Tuple* out) {
  SmallByteKey spill;
  while (const Tuple* t = child_->NextRef()) {
    // Dedup on the encoded key; only materialize the projection for fresh
    // keys.
    bool fresh = encoder_.fits64()
                     ? seen64_.insert(encoder_.Encode64(*t, &indices_)).second
                     : (encoder_.EncodeSpill(*t, &indices_, &spill),
                        seen_spill_.insert(spill).second);
    if (fresh) {
      *out = ProjectTuple(*t, indices_);
      CountRow();
      return true;
    }
  }
  return false;
}

bool ProjectIterator::NextBatch(Batch* out) {
  while (child_->NextBatch(&in_batch_)) {
    keyer_->Keys(in_batch_, &indices_, &keys64_, &keys_spill_);
    std::vector<uint32_t> picks = FreshPicks(encoder_.fits64(), keys64_, keys_spill_,
                                             in_batch_.ActiveRows(), &seen64_, &seen_spill_);
    if (picks.empty()) continue;
    CopyPickedRows(in_batch_, picks, &indices_, indices_.size(), out);
    CountRows(picks.size());
    return true;
  }
  return false;
}

void ProjectIterator::Close() {
  child_->Close();
  seen64_.clear();
  seen_spill_.clear();
}

RenameIterator::RenameIterator(IterPtr child,
                               std::vector<std::pair<std::string, std::string>> renames)
    : child_(std::move(child)) {
  std::vector<Attribute> attributes = child_->schema().attributes();
  for (const auto& [from, to] : renames) {
    attributes[child_->schema().IndexOfOrThrow(from)].name = to;
  }
  schema_ = Schema(std::move(attributes));
}

bool RenameIterator::Next(Tuple* out) {
  if (!child_->Next(out)) return false;
  CountRow();
  return true;
}

UnionIterator::UnionIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      right_reorder_(ReorderIndices(left_->schema(), right_->schema())) {}

void UnionIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  on_right_ = false;
  encoder_ = IncrementalKeyEncoder(left_->schema().size());
  seen64_.clear();
  seen_spill_.clear();
  keyer_ = std::make_unique<BatchIncrementalKeyer>(&encoder_, encoder_.num_cols());
}

bool UnionIterator::NextAligned(Tuple* out) {
  if (!on_right_) {
    if (left_->Next(out)) return true;
    on_right_ = true;
  }
  Tuple t;
  if (right_->Next(&t)) {
    *out = MaybeReorder(t, right_reorder_);
    return true;
  }
  return false;
}

bool UnionIterator::Next(Tuple* out) {
  SmallByteKey spill;
  while (NextAligned(out)) {
    bool fresh = encoder_.fits64()
                     ? seen64_.insert(encoder_.Encode64(*out, nullptr)).second
                     : (encoder_.EncodeSpill(*out, nullptr, &spill),
                        seen_spill_.insert(spill).second);
    if (fresh) {
      CountRow();
      return true;
    }
  }
  return false;
}

bool UnionIterator::EmitFresh(const Batch& in, const std::vector<size_t>* col_map, Batch* out) {
  keyer_->Keys(in, col_map, &keys64_, &keys_spill_);
  std::vector<uint32_t> picks = FreshPicks(encoder_.fits64(), keys64_, keys_spill_,
                                           in.ActiveRows(), &seen64_, &seen_spill_);
  if (picks.empty()) return false;
  CopyPickedRows(in, picks, col_map, encoder_.num_cols(), out);
  CountRows(picks.size());
  return true;
}

bool UnionIterator::NextBatch(Batch* out) {
  while (!on_right_) {
    if (!left_->NextBatch(&in_batch_)) {
      on_right_ = true;
      break;
    }
    if (EmitFresh(in_batch_, nullptr, out)) return true;
  }
  const std::vector<size_t>* col_map = right_reorder_.empty() ? nullptr : &right_reorder_;
  while (right_->NextBatch(&in_batch_)) {
    if (EmitFresh(in_batch_, col_map, out)) return true;
  }
  return false;
}

void UnionIterator::Close() {
  left_->Close();
  right_->Close();
  seen64_.clear();
  seen_spill_.clear();
}

IntersectIterator::IntersectIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      right_reorder_(ReorderIndices(left_->schema(), right_->schema())) {}

void IntersectIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  encoder_ = IncrementalKeyEncoder(left_->schema().size());
  build64_.clear();
  emitted64_.clear();
  build_spill_.clear();
  emitted_spill_.clear();
  keyer_ = std::make_unique<BatchIncrementalKeyer>(&encoder_, encoder_.num_cols());
  BuildKeySet(*right_, right_reorder_, encoder_, build64_, build_spill_);
}

bool IntersectIterator::Next(Tuple* out) {
  SmallByteKey spill;
  while (left_->Next(out)) {
    bool hit;
    if (encoder_.fits64()) {
      uint64_t key = encoder_.Encode64(*out, nullptr);
      hit = build64_.count(key) && emitted64_.insert(key).second;
    } else {
      encoder_.EncodeSpill(*out, nullptr, &spill);
      hit = build_spill_.count(spill) && emitted_spill_.insert(spill).second;
    }
    if (hit) {
      CountRow();
      return true;
    }
  }
  return false;
}

bool IntersectIterator::NextBatch(Batch* out) {
  while (left_->NextBatch(out)) {
    keyer_->Keys(*out, nullptr, &keys64_, &keys_spill_);
    out->SetSelection(MembershipSelection(*out, encoder_.fits64(), keys64_, keys_spill_,
                                          /*want_member=*/true, build64_, build_spill_,
                                          &emitted64_, &emitted_spill_));
    if (out->ActiveRows() > 0) {
      CountRows(out->ActiveRows());
      return true;
    }
  }
  return false;
}

void IntersectIterator::Close() {
  left_->Close();
  right_->Close();
  build64_.clear();
  emitted64_.clear();
  build_spill_.clear();
  emitted_spill_.clear();
}

DifferenceIterator::DifferenceIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      right_reorder_(ReorderIndices(left_->schema(), right_->schema())) {}

void DifferenceIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  encoder_ = IncrementalKeyEncoder(left_->schema().size());
  build64_.clear();
  emitted64_.clear();
  build_spill_.clear();
  emitted_spill_.clear();
  keyer_ = std::make_unique<BatchIncrementalKeyer>(&encoder_, encoder_.num_cols());
  BuildKeySet(*right_, right_reorder_, encoder_, build64_, build_spill_);
}

bool DifferenceIterator::Next(Tuple* out) {
  SmallByteKey spill;
  while (left_->Next(out)) {
    bool keep;
    if (encoder_.fits64()) {
      uint64_t key = encoder_.Encode64(*out, nullptr);
      keep = !build64_.count(key) && emitted64_.insert(key).second;
    } else {
      encoder_.EncodeSpill(*out, nullptr, &spill);
      keep = !build_spill_.count(spill) && emitted_spill_.insert(spill).second;
    }
    if (keep) {
      CountRow();
      return true;
    }
  }
  return false;
}

bool DifferenceIterator::NextBatch(Batch* out) {
  while (left_->NextBatch(out)) {
    keyer_->Keys(*out, nullptr, &keys64_, &keys_spill_);
    out->SetSelection(MembershipSelection(*out, encoder_.fits64(), keys64_, keys_spill_,
                                          /*want_member=*/false, build64_, build_spill_,
                                          &emitted64_, &emitted_spill_));
    if (out->ActiveRows() > 0) {
      CountRows(out->ActiveRows());
      return true;
    }
  }
  return false;
}

void DifferenceIterator::Close() {
  left_->Close();
  right_->Close();
  build64_.clear();
  emitted64_.clear();
  build_spill_.clear();
  emitted_spill_.clear();
}

CrossProductIterator::CrossProductIterator(IterPtr left, IterPtr right)
    : left_(std::move(left)),
      right_(std::move(right)),
      schema_(left_->schema().Concat(right_->schema())) {}

void CrossProductIterator::Open() {
  ResetCount();
  left_->Open();
  right_->Open();
  right_rows_.clear();
  right_rows_.reserve(right_->EstimatedRows());
  while (const Tuple* t = right_->NextRef()) right_rows_.push_back(*t);
  have_left_ = false;
  right_pos_ = 0;
}

bool CrossProductIterator::Next(Tuple* out) {
  if (right_rows_.empty()) return false;
  while (true) {
    if (!have_left_) {
      if (!left_->Next(&current_left_)) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    if (right_pos_ < right_rows_.size()) {
      *out = ConcatTuples(current_left_, right_rows_[right_pos_++]);
      CountRow();
      return true;
    }
    have_left_ = false;
  }
}

void CrossProductIterator::Close() {
  left_->Close();
  right_->Close();
  right_rows_.clear();
}

}  // namespace quotient
