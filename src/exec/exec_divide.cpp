#include "exec/exec_divide.hpp"

#include <algorithm>
#include <type_traits>

#include "exec/exec_basic.hpp"
#include "exec/pipeline.hpp"
#include "exec/query_context.hpp"
#include "util/bitmap.hpp"
#include "util/status.hpp"

namespace quotient {

namespace {

/// Sentinel for a dividend row whose B columns match no divisor tuple.
constexpr uint32_t kMissB = UINT32_MAX;

std::vector<size_t> IndicesOf(const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) indices.push_back(schema.IndexOfOrThrow(name));
  return indices;
}

/// r1 ÷ ∅ = πA(r1): emit every distinct candidate.
template <typename AView, typename Numbering>
void EmitDistinctCandidates(const AView& aview, Numbering& candidates, size_t rows,
                            std::vector<Tuple>* results) {
  for (size_t i = 0; i < rows; ++i) candidates.Intern(aview.RowKey(i));
  for (uint32_t id = 0; id < candidates.size(); ++id) {
    results->push_back(aview.codec->DecodeTuple(candidates.At(id)));
  }
}

// Hash-division: divisor tuples are numbered 0..n-1; each quotient candidate
// keeps a bitmap of the divisor numbers seen in its group. Candidates are
// numbered densely (identity when A is a single dictionary column, interned
// otherwise), so the bitmaps live in one contiguous matrix.
template <typename AView, typename Numbering>
void RunHash(const AView& aview, Numbering& candidates, const SpilledU32Store& row_b,
             size_t rows, size_t n, std::vector<Tuple>* results) {
  GovernorFaultPoint("divide.bitmap_fill");
  GovernorCharge(candidates.size() * ((n + 7) / 8));  // the seen-bitmap matrix
  BitmapMatrix seen(n);
  seen.Reserve(candidates.size());
  GovernorTicker ticker;
  for (size_t i = 0; i < rows; ++i) {
    ticker.Tick();
    if (row_b.At(i) == kMissB) continue;  // b not in divisor: cannot help
    uint32_t cand = candidates.Intern(aview.RowKey(i));
    while (cand >= seen.rows()) seen.AddRow();
    seen.Set(cand, row_b.At(i));
  }
  for (uint32_t id = 0; id < seen.rows(); ++id) {
    if (seen.RowAll(id)) results->push_back(aview.codec->DecodeTuple(candidates.At(id)));
  }
}

// Transposed hash-division: number the quotient candidates in a first pass,
// then give each divisor number a bitmap over candidates and set bits in a
// second pass. A candidate qualifies iff its bit is set in every divisor
// bitmap.
template <typename AView, typename Numbering>
void RunHashTransposed(const AView& aview, Numbering& candidates,
                       const SpilledU32Store& row_b, size_t rows, size_t n,
                       std::vector<Tuple>* results) {
  GovernorCharge(rows * sizeof(uint32_t));
  std::vector<uint32_t> row_cand(rows);
  GovernorTicker ticker;
  for (size_t i = 0; i < rows; ++i) {
    ticker.Tick();
    row_cand[i] = candidates.Intern(aview.RowKey(i));
  }

  GovernorFaultPoint("divide.bitmap_fill");
  GovernorCharge(n * ((candidates.size() + 7) / 8));  // per-divisor bitmaps
  BitmapMatrix divisor_bitmaps(candidates.size(), n);
  for (size_t i = 0; i < rows; ++i) {
    ticker.Tick();
    if (row_b.At(i) == kMissB) continue;
    divisor_bitmaps.Set(row_b.At(i), row_cand[i]);
  }

  for (uint32_t id = 0; id < candidates.size(); ++id) {
    bool in_all = true;
    for (size_t d = 0; d < n; ++d) {
      if (!divisor_bitmaps.Test(d, id)) {
        in_all = false;
        break;
      }
    }
    if (in_all) results->push_back(aview.codec->DecodeTuple(candidates.At(id)));
  }
}

// "Naive division": sort the dividend by (A key, divisor number) — misses
// sort last — then merge each A-group's numbers against the ascending
// divisor numbers 0..n-1.
template <typename AView>
void RunMergeSort(const AView& aview, const SpilledU32Store& row_b, size_t rows, size_t n,
                  std::vector<Tuple>* results) {
  using K = typename AView::Key;
  std::vector<std::pair<K, uint32_t>> sorted;
  sorted.reserve(rows);
  for (size_t i = 0; i < rows; ++i) sorted.emplace_back(aview.RowKey(i), row_b.At(i));
  std::sort(sorted.begin(), sorted.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first < y.first;
    return x.second < y.second;
  });

  size_t i = 0;
  while (i < sorted.size()) {
    const K& a = sorted[i].first;
    size_t divisor_pos = 0;
    size_t j = i;
    for (; j < sorted.size() && sorted[j].first == a; ++j) {
      if (divisor_pos < n) {
        uint32_t b = sorted[j].second;
        if (b == divisor_pos) {
          ++divisor_pos;
        } else if (b > divisor_pos) {
          // Sorted group has passed the needed divisor number: missing.
          divisor_pos = n + 1;  // mark failure
        }
      }
    }
    if (divisor_pos == n) results->push_back(aview.codec->DecodeTuple(a));
    i = j;
  }
}

// Hash-based aggregate division: count matching divisor numbers per
// candidate (inputs are sets, so counts are distinct counts) and compare
// with n.
template <typename AView, typename Numbering>
void RunHashCount(const AView& aview, Numbering& candidates, const SpilledU32Store& row_b,
                  size_t rows, size_t n, std::vector<Tuple>* results) {
  GovernorCharge(candidates.size() * sizeof(uint32_t));
  std::vector<uint32_t> counts;
  counts.reserve(candidates.size());
  GovernorTicker ticker;
  for (size_t i = 0; i < rows; ++i) {
    ticker.Tick();
    if (row_b.At(i) == kMissB) continue;
    uint32_t cand = candidates.Intern(aview.RowKey(i));
    if (cand >= counts.size()) counts.resize(cand + 1, 0);
    counts[cand] += 1;
  }
  for (uint32_t id = 0; id < counts.size(); ++id) {
    if (counts[id] == n) results->push_back(aview.codec->DecodeTuple(candidates.At(id)));
  }
}

// Sort-based aggregate division: keep matching rows' A keys, sort, count run
// lengths.
template <typename AView>
void RunSortCount(const AView& aview, const SpilledU32Store& row_b, size_t rows, size_t n,
                  std::vector<Tuple>* results) {
  using K = typename AView::Key;
  std::vector<K> matched;
  matched.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    if (row_b.At(i) != kMissB) matched.push_back(aview.RowKey(i));
  }
  std::sort(matched.begin(), matched.end());
  size_t i = 0;
  while (i < matched.size()) {
    size_t j = i;
    while (j < matched.size() && matched[j] == matched[i]) ++j;
    if (j - i == n) results->push_back(aview.codec->DecodeTuple(matched[i]));
    i = j;
  }
}

// Group the dividend, then probe each group linearly for every divisor
// number: O(|r1| · |r2|) comparisons — the baseline the fast algorithms are
// measured against.
template <typename AView, typename Numbering>
void RunNestedLoop(const AView& aview, Numbering& candidates, const SpilledU32Store& row_b,
                   size_t rows, size_t n, std::vector<Tuple>* results) {
  std::vector<std::vector<uint32_t>> groups;
  groups.reserve(candidates.size());
  for (size_t i = 0; i < rows; ++i) {
    uint32_t cand = candidates.Intern(aview.RowKey(i));
    if (cand >= groups.size()) groups.resize(cand + 1);
    if (row_b.At(i) != kMissB) groups[cand].push_back(row_b.At(i));
  }
  for (uint32_t id = 0; id < groups.size(); ++id) {
    bool all = true;
    for (uint32_t d = 0; d < n; ++d) {
      bool found = false;
      for (uint32_t b : groups[id]) {
        if (b == d) {
          found = true;
          break;
        }
      }
      if (!found) {
        all = false;
        break;
      }
    }
    if (all) results->push_back(aview.codec->DecodeTuple(candidates.At(id)));
  }
}

}  // namespace

const char* DivisionAlgorithmName(DivisionAlgorithm algorithm) {
  switch (algorithm) {
    case DivisionAlgorithm::kHash: return "HashDivision";
    case DivisionAlgorithm::kHashTransposed: return "TransposedHashDivision";
    case DivisionAlgorithm::kMergeSort: return "MergeSortDivision";
    case DivisionAlgorithm::kHashCount: return "HashCountDivision";
    case DivisionAlgorithm::kSortCount: return "SortCountDivision";
    case DivisionAlgorithm::kNestedLoop: return "NestedLoopDivision";
  }
  return "?";
}

DivisionIterator::DivisionIterator(IterPtr dividend, IterPtr divisor,
                                   DivisionAlgorithm algorithm)
    : dividend_(std::move(dividend)), divisor_(std::move(divisor)), algorithm_(algorithm) {
  DivisionAttributes attrs =
      DivisionAttributeSets(dividend_->schema(), divisor_->schema(), /*allow_c=*/false);
  schema_ = dividend_->schema().Project(attrs.a);
  a_idx_ = IndicesOf(dividend_->schema(), attrs.a);
  b_idx_ = IndicesOf(dividend_->schema(), attrs.b);
  divisor_idx_ = IndicesOf(divisor_->schema(), attrs.b);
}

const char* DivisionIterator::name() const { return DivisionAlgorithmName(algorithm_); }

std::shared_ptr<DivisionBuildArtifact> DivisionIterator::BuildDivisorArtifact() {
  // Build pipeline: dictionary-encode the divisor's B tuples. Each drain
  // picks its discipline per pipeline (exec/pipeline.hpp): tuple-at-a-time
  // for tiny inputs and ExecMode::kTuple, serial batches in kBatch, and
  // morsel-parallel chunk states merged in chunk order in kParallel.
  auto art = std::make_shared<DivisionBuildArtifact>();
  divisor_->Open();
  art->codec = KeyCodec(divisor_idx_.size());
  art->codec.Reserve(divisor_->EstimatedRows());
  if (UseTupleDrain(*divisor_)) {
    GovernorTicker ticker;
    while (const Tuple* t = divisor_->NextRef()) {
      ticker.Tick();
      art->codec.Add(*t, divisor_idx_);
    }
  } else {
    CodecAppendSink sink(&art->codec, &divisor_idx_);
    RecordPipelineDop(RunPipeline(*divisor_, sink).dop);
  }
  art->codec.Seal();
  art->numbers.Build(art->codec);
  return art;
}

std::shared_ptr<const DivisionBuildArtifact> DivisionIterator::GetDivisorArtifact() {
  if (recycle_.recycler && !recycle_.build_key.empty()) {
    ArtifactPtr cached = recycle_.recycler->GetOrBuild(
        recycle_.build_key, recycle_.tables,
        [&]() -> std::shared_ptr<RecycledArtifact> { return BuildDivisorArtifact(); });
    if (cached) return std::static_pointer_cast<const DivisionBuildArtifact>(cached);
  }
  return BuildDivisorArtifact();
}

std::shared_ptr<DivisionProbeArtifact> DivisionIterator::BuildProbeArtifact(
    const DivisionBuildArtifact& build) {
  // Probe pipeline: drain the dividend once, interning A keys and
  // resolving each row's B columns to a divisor number (kMissB when any
  // value never occurs in the divisor).
  auto art = std::make_shared<DivisionProbeArtifact>();
  dividend_->Open();
  art->a_codec = KeyCodec(a_idx_.size());
  size_t expected = dividend_->EstimatedRows();
  art->a_codec.Reserve(expected);
  art->row_b.Reserve(expected);
  if (UseTupleDrain(*dividend_)) {
    GovernorTicker ticker;
    while (const Tuple* row = dividend_->NextRef()) {
      ticker.Tick();
      art->a_codec.Add(*row, a_idx_);
      art->row_b.PushBack(build.numbers.Probe(*row, b_idx_));  // kNotFound == kMissB
    }
  } else {
    ProbeAppendSink sink(&art->a_codec, &a_idx_, &build.numbers, &build.codec, &b_idx_,
                         &art->row_b);
    RecordPipelineDop(RunPipeline(*dividend_, sink).dop);
  }
  art->a_codec.Seal();
  art->divisor_count = build.numbers.count();
  return art;
}

void DivisionIterator::Open() {
  ResetCount();
  results_.clear();
  position_ = 0;

  // Adopt-or-build both encoded phases. A probe-artifact hit skips BOTH
  // child drains (the children are never opened; Close() on an unopened
  // child is a no-op in every iterator). A build hit still drains the
  // dividend, probing against the shared divisor table.
  if (recycle_.recycler && !recycle_.probe_key.empty()) {
    ArtifactPtr cached = recycle_.recycler->GetOrBuild(
        recycle_.probe_key, recycle_.tables,
        [&]() -> std::shared_ptr<RecycledArtifact> {
          return BuildProbeArtifact(*GetDivisorArtifact());
        });
    probe_ = cached ? std::static_pointer_cast<const DivisionProbeArtifact>(cached)
                    : BuildProbeArtifact(*GetDivisorArtifact());
  } else {
    probe_ = BuildProbeArtifact(*GetDivisorArtifact());
  }

  const KeyCodec& a_codec = probe_->a_codec;
  const SpilledU32Store& row_b = probe_->row_b;
  size_t rows = a_codec.rows();
  size_t n = probe_->divisor_count;
  WithKeyView(a_codec, [&](auto aview) {
    using K = typename decltype(aview)::Key;
    auto run = [&](auto& candidates) {
      if (n == 0) {
        // r1 ÷ ∅ = πA(r1) under Codd's semantics.
        EmitDistinctCandidates(aview, candidates, rows, &results_);
        return;
      }
      switch (algorithm_) {
        case DivisionAlgorithm::kHash:
          RunHash(aview, candidates, row_b, rows, n, &results_);
          break;
        case DivisionAlgorithm::kHashTransposed:
          RunHashTransposed(aview, candidates, row_b, rows, n, &results_);
          break;
        case DivisionAlgorithm::kMergeSort: RunMergeSort(aview, row_b, rows, n, &results_); break;
        case DivisionAlgorithm::kHashCount:
          RunHashCount(aview, candidates, row_b, rows, n, &results_);
          break;
        case DivisionAlgorithm::kSortCount: RunSortCount(aview, row_b, rows, n, &results_); break;
        case DivisionAlgorithm::kNestedLoop:
          RunNestedLoop(aview, candidates, row_b, rows, n, &results_);
          break;
      }
    };
    if constexpr (std::is_same_v<K, uint64_t>) {
      if (a_codec.keys_are_dense_ids()) {
        DenseNumbering candidates{a_codec.dict(0).size()};
        run(candidates);
        return;
      }
    }
    KeyInterner<K> candidates;
    run(candidates);
  });
}

bool DivisionIterator::Next(Tuple* out) {
  if (position_ >= results_.size()) return false;
  *out = results_[position_++];
  CountRow();
  return true;
}

bool DivisionIterator::NextBatch(Batch* out) {
  if (!EmitResultBatch(results_, &position_, out)) return false;
  CountRows(out->ActiveRows());
  return true;
}

void DivisionIterator::Close() {
  dividend_->Close();
  divisor_->Close();
  results_.clear();
  probe_.reset();
}

Relation ExecDivide(const Relation& dividend, const Relation& divisor,
                    DivisionAlgorithm algorithm, TableEncodingPtr dividend_enc,
                    TableEncodingPtr divisor_enc) {
  DivisionIterator it(
      std::make_unique<RelationScan>(BorrowRelation(dividend), std::move(dividend_enc)),
      std::make_unique<RelationScan>(BorrowRelation(divisor), std::move(divisor_enc)),
      algorithm);
  return ExecuteToRelation(it);
}

}  // namespace quotient
