#include "exec/exec_divide.hpp"

#include <algorithm>
#include <unordered_set>

#include "exec/exec_basic.hpp"
#include "util/status.hpp"

namespace quotient {

namespace {

std::vector<size_t> IndicesOf(const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) indices.push_back(schema.IndexOfOrThrow(name));
  return indices;
}

struct PairLess {
  bool operator()(const std::pair<Tuple, Tuple>& x, const std::pair<Tuple, Tuple>& y) const {
    int c = CompareTuples(x.first, y.first);
    if (c != 0) return c < 0;
    return CompareTuples(x.second, y.second) < 0;
  }
};

}  // namespace

const char* DivisionAlgorithmName(DivisionAlgorithm algorithm) {
  switch (algorithm) {
    case DivisionAlgorithm::kHash: return "HashDivision";
    case DivisionAlgorithm::kHashTransposed: return "TransposedHashDivision";
    case DivisionAlgorithm::kMergeSort: return "MergeSortDivision";
    case DivisionAlgorithm::kHashCount: return "HashCountDivision";
    case DivisionAlgorithm::kSortCount: return "SortCountDivision";
    case DivisionAlgorithm::kNestedLoop: return "NestedLoopDivision";
  }
  return "?";
}

DivisionIterator::DivisionIterator(IterPtr dividend, IterPtr divisor,
                                   DivisionAlgorithm algorithm)
    : dividend_(std::move(dividend)), divisor_(std::move(divisor)), algorithm_(algorithm) {
  DivisionAttributes attrs =
      DivisionAttributeSets(dividend_->schema(), divisor_->schema(), /*allow_c=*/false);
  schema_ = dividend_->schema().Project(attrs.a);
  a_idx_ = IndicesOf(dividend_->schema(), attrs.a);
  b_idx_ = IndicesOf(dividend_->schema(), attrs.b);
  divisor_idx_ = IndicesOf(divisor_->schema(), attrs.b);
}

const char* DivisionIterator::name() const { return DivisionAlgorithmName(algorithm_); }

void DivisionIterator::Open() {
  ResetCount();
  results_.clear();
  position_ = 0;
  pairs_.clear();

  dividend_->Open();
  divisor_->Open();
  Tuple t;
  std::vector<Tuple> divisor_keys;
  while (divisor_->Next(&t)) divisor_keys.push_back(ProjectTuple(t, divisor_idx_));
  while (dividend_->Next(&t)) {
    pairs_.emplace_back(ProjectTuple(t, a_idx_), ProjectTuple(t, b_idx_));
  }

  if (divisor_keys.empty()) {
    // r1 ÷ ∅ = πA(r1) under Codd's semantics.
    std::unordered_set<Tuple, TupleHash, TupleEq> seen;
    for (const auto& [a, b] : pairs_) {
      if (seen.insert(a).second) results_.push_back(a);
    }
    return;
  }

  switch (algorithm_) {
    case DivisionAlgorithm::kHash: RunHash(divisor_keys); break;
    case DivisionAlgorithm::kHashTransposed: RunHashTransposed(divisor_keys); break;
    case DivisionAlgorithm::kMergeSort: RunMergeSort(std::move(divisor_keys)); break;
    case DivisionAlgorithm::kHashCount: RunHashCount(divisor_keys); break;
    case DivisionAlgorithm::kSortCount: RunSortCount(divisor_keys); break;
    case DivisionAlgorithm::kNestedLoop: RunNestedLoop(divisor_keys); break;
  }
}

void DivisionIterator::RunHash(const std::vector<Tuple>& divisor_keys) {
  // Hash-division: number the divisor tuples; each quotient candidate keeps
  // a bitmap of the divisor tuples seen in its group.
  std::unordered_map<Tuple, size_t, TupleHash, TupleEq> divisor_index;
  for (const Tuple& d : divisor_keys) divisor_index.emplace(d, divisor_index.size());
  size_t n = divisor_index.size();

  std::unordered_map<Tuple, Bitmap, TupleHash, TupleEq> candidates;
  for (const auto& [a, b] : pairs_) {
    auto it = divisor_index.find(b);
    if (it == divisor_index.end()) continue;  // b not in divisor: cannot help
    auto [entry, inserted] = candidates.try_emplace(a, n);
    entry->second.Set(it->second);
  }
  for (const auto& [a, bitmap] : candidates) {
    if (bitmap.All()) results_.push_back(a);
  }
}

void DivisionIterator::RunHashTransposed(const std::vector<Tuple>& divisor_keys) {
  // Transposed hash-division: number the quotient candidates in a first
  // pass, then give each divisor tuple a bitmap over candidates and set
  // bits in a second pass. A candidate qualifies iff its bit is set in
  // every divisor bitmap.
  std::unordered_map<Tuple, size_t, TupleHash, TupleEq> candidate_ids;
  std::vector<const Tuple*> candidates;
  for (const auto& [a, b] : pairs_) {
    auto [it, inserted] = candidate_ids.try_emplace(a, candidate_ids.size());
    if (inserted) candidates.push_back(&it->first);
  }

  std::unordered_map<Tuple, Bitmap, TupleHash, TupleEq> divisor_bitmaps;
  for (const Tuple& d : divisor_keys) divisor_bitmaps.try_emplace(d, candidates.size());

  for (const auto& [a, b] : pairs_) {
    auto it = divisor_bitmaps.find(b);
    if (it == divisor_bitmaps.end()) continue;
    it->second.Set(candidate_ids.find(a)->second);
  }

  for (size_t id = 0; id < candidates.size(); ++id) {
    bool in_all = true;
    for (const auto& [d, bitmap] : divisor_bitmaps) {
      if (!bitmap.Test(id)) {
        in_all = false;
        break;
      }
    }
    if (in_all) results_.push_back(*candidates[id]);
  }
}

void DivisionIterator::RunMergeSort(std::vector<Tuple> divisor_keys) {
  // "Naive division": sort both inputs, then merge each dividend A-group's
  // sorted B values against the sorted divisor.
  std::sort(divisor_keys.begin(), divisor_keys.end(), TupleLess{});
  divisor_keys.erase(std::unique(divisor_keys.begin(), divisor_keys.end(),
                                 [](const Tuple& a, const Tuple& b) {
                                   return CompareTuples(a, b) == 0;
                                 }),
                     divisor_keys.end());
  std::sort(pairs_.begin(), pairs_.end(), PairLess{});

  size_t i = 0;
  while (i < pairs_.size()) {
    const Tuple& a = pairs_[i].first;
    size_t divisor_pos = 0;
    size_t j = i;
    for (; j < pairs_.size() && CompareTuples(pairs_[j].first, a) == 0; ++j) {
      if (divisor_pos < divisor_keys.size()) {
        int c = CompareTuples(pairs_[j].second, divisor_keys[divisor_pos]);
        if (c == 0) {
          ++divisor_pos;
        } else if (c > 0) {
          // Sorted group has passed the needed divisor value: missing.
          // (Also covers duplicates-free invariant; c < 0 just advances.)
          divisor_pos = divisor_keys.size() + 1;  // mark failure
        }
      }
    }
    if (divisor_pos == divisor_keys.size()) results_.push_back(a);
    i = j;
  }
}

void DivisionIterator::RunHashCount(const std::vector<Tuple>& divisor_keys) {
  std::unordered_set<Tuple, TupleHash, TupleEq> divisor_set(divisor_keys.begin(),
                                                            divisor_keys.end());
  size_t n = divisor_set.size();
  std::unordered_map<Tuple, size_t, TupleHash, TupleEq> counts;
  for (const auto& [a, b] : pairs_) {
    if (divisor_set.count(b)) counts[a] += 1;  // inputs are sets: no double count
  }
  for (const auto& [a, count] : counts) {
    if (count == n) results_.push_back(a);
  }
}

void DivisionIterator::RunSortCount(const std::vector<Tuple>& divisor_keys) {
  std::unordered_set<Tuple, TupleHash, TupleEq> divisor_set(divisor_keys.begin(),
                                                            divisor_keys.end());
  size_t n = divisor_set.size();
  // Keep only matching pairs, sort by A, count run lengths.
  std::vector<Tuple> matched_a;
  for (const auto& [a, b] : pairs_) {
    if (divisor_set.count(b)) matched_a.push_back(a);
  }
  std::sort(matched_a.begin(), matched_a.end(), TupleLess{});
  size_t i = 0;
  while (i < matched_a.size()) {
    size_t j = i;
    while (j < matched_a.size() && CompareTuples(matched_a[j], matched_a[i]) == 0) ++j;
    if (j - i == n) results_.push_back(matched_a[i]);
    i = j;
  }
}

void DivisionIterator::RunNestedLoop(const std::vector<Tuple>& divisor_keys) {
  // Group the dividend, then probe each group linearly for every divisor
  // tuple: O(|r1| · |r2|) comparisons — the baseline the fast algorithms are
  // measured against.
  std::unordered_map<Tuple, std::vector<Tuple>, TupleHash, TupleEq> groups;
  for (const auto& [a, b] : pairs_) groups[a].push_back(b);
  for (const auto& [a, group] : groups) {
    bool all = true;
    for (const Tuple& d : divisor_keys) {
      bool found = false;
      for (const Tuple& b : group) {
        if (CompareTuples(b, d) == 0) {
          found = true;
          break;
        }
      }
      if (!found) {
        all = false;
        break;
      }
    }
    if (all) results_.push_back(a);
  }
}

bool DivisionIterator::Next(Tuple* out) {
  if (position_ >= results_.size()) return false;
  *out = results_[position_++];
  CountRow();
  return true;
}

void DivisionIterator::Close() {
  dividend_->Close();
  divisor_->Close();
  results_.clear();
  pairs_.clear();
}

Relation ExecDivide(const Relation& dividend, const Relation& divisor,
                    DivisionAlgorithm algorithm) {
  DivisionIterator it(
      std::make_unique<RelationScan>(std::make_shared<const Relation>(dividend)),
      std::make_unique<RelationScan>(std::make_shared<const Relation>(divisor)), algorithm);
  return ExecuteToRelation(it);
}

}  // namespace quotient
