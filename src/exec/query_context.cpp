#include "exec/query_context.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "exec/spill.hpp"

namespace quotient {

namespace {

thread_local QueryContext* tls_query_context = nullptr;

/// The fault-site registry. Keep docs/robustness.md and the sweep test in
/// tests/test_governor.cpp in step with this list.
const std::vector<std::string> kKnownSites = {
    "scheduler.task",       // worker-pool task admission (exec/scheduler.cpp)
    "pipeline.drain",       // serial pipeline drain, per batch (exec/pipeline.cpp)
    "pipeline.morsel",      // parallel morsel read, per batch (exec/pipeline.cpp)
    "pipeline.merge",       // chunk-ordered sink merge (exec/pipeline.cpp)
    "sink.codec_append",    // divisor/build codec appends (exec/pipeline.cpp)
    "sink.probe_append",    // dividend probe drains (exec/pipeline.cpp)
    "sink.join_build",      // hash-join build drains (exec/pipeline.cpp)
    "sink.aggregate",       // grouping drains (exec/exec_agg.cpp)
    "divide.bitmap_fill",   // hash-division bitmap fills (exec/exec_divide.cpp)
    "catalog.encoding",     // dictionary-encoding builds (plan/catalog.cpp)
    "snapshot.publish",     // DDL snapshot publication (api/database.cpp)
    "cursor.pull",          // ResultCursor batch pulls (api/session.cpp)
    "spill.open",           // first spill-file open of a statement (exec/spill.cpp)
    "spill.write",          // each spill-partition write (exec/spill.cpp)
    "spill.disk_full",      // simulated out-of-disk, per partition write (exec/spill.cpp)
    "spill.read",           // each spilled-run read (exec/spill.cpp)
    "recycler.lookup",      // artifact-recycler lookups (exec/recycler.cpp)
    "recycler.publish",     // artifact publication after a build (exec/recycler.cpp)
    "txn.validate",         // commit-time first-committer-wins check (api/database.cpp)
    "txn.publish",          // commit snapshot publication (api/database.cpp)
};

}  // namespace

void FaultInjector::Arm(const std::string& site, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[site] = Armed{nth == 0 ? 1 : nth, 0};
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_.store(false, std::memory_order_release);
}

bool FaultInjector::Hit(const char* site) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  return ++it->second.hits == it->second.nth;
}

FaultInjector* FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();  // leaked: process lifetime
    if (const char* env = std::getenv("QUOTIENT_FAULT")) {
      ArmFromSpec(inj, env);
    }
    return inj;
  }();
  return injector;
}

bool FaultInjector::ArmFromSpec(FaultInjector* injector, const std::string& spec) {
  size_t colon = spec.rfind(':');
  std::string site = spec;
  uint64_t nth = 1;
  if (colon != std::string::npos) {
    site = spec.substr(0, colon);
    std::string nth_text = spec.substr(colon + 1);
    char* end = nullptr;
    errno = 0;
    long parsed = std::strtol(nth_text.c_str(), &end, 10);
    if (nth_text.empty() || end != nth_text.c_str() + nth_text.size() || parsed <= 0 ||
        errno == ERANGE) {
      std::fprintf(stderr,
                   "QUOTIENT_FAULT: bad nth '%s' in spec '%s' "
                   "(want <site>:<positive integer>); not arming\n",
                   nth_text.c_str(), spec.c_str());
      return false;
    }
    nth = static_cast<uint64_t>(parsed);
  }
  if (site.empty()) {
    std::fprintf(stderr, "QUOTIENT_FAULT: empty site in spec '%s'; not arming\n",
                 spec.c_str());
    return false;
  }
  const std::vector<std::string>& known = KnownSites();
  if (std::find(known.begin(), known.end(), site) == known.end()) {
    std::fprintf(stderr,
                 "QUOTIENT_FAULT: unknown site '%s' in spec '%s' "
                 "(see FaultInjector::KnownSites()); not arming\n",
                 site.c_str(), spec.c_str());
    return false;
  }
  injector->Arm(site, nth);
  return true;
}

const std::vector<std::string>& FaultInjector::KnownSites() { return kKnownSites; }

QueryContext::QueryContext() = default;

QueryContext::QueryContext(std::chrono::steady_clock::time_point deadline,
                           size_t memory_budget_bytes, FaultInjector* faults)
    : deadline_(deadline), budget_bytes_(memory_budget_bytes), faults_(faults) {}

QueryContext::~QueryContext() {
  spill_.reset();  // close the temp file before the grant returns
  if (admission_release_) admission_release_();
}

void QueryContext::EnableSpill(size_t watermark_bytes, std::string dir) {
  spill_watermark_ = watermark_bytes;
  if (watermark_bytes != 0) spill_ = std::make_unique<SpillManager>(std::move(dir));
}

size_t QueryContext::spill_partitions() const {
  return spill_ != nullptr ? spill_->partitions() : 0;
}

size_t QueryContext::spill_bytes_written() const {
  return spill_ != nullptr ? spill_->bytes_written() : 0;
}

void QueryContext::Trip(StatusCode code, const std::string& message) {
  int expected = 0;
  if (tripped_.compare_exchange_strong(expected, static_cast<int>(code),
                                       std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(mutex_);
    trip_message_ = message;
  }
}

Status QueryContext::TripStatus() const {
  StatusCode code = static_cast<StatusCode>(tripped_.load(std::memory_order_acquire));
  if (code == StatusCode::kOk) return Status::Ok();
  std::lock_guard<std::mutex> lock(mutex_);
  return Status::Make(code, trip_message_);
}

void QueryContext::Poll() {
  if (!Aborted() && has_deadline() && std::chrono::steady_clock::now() >= deadline_) {
    Trip(StatusCode::kDeadlineExceeded, "query deadline exceeded");
  }
  if (Aborted()) throw QueryAbort(TripStatus());
}

void QueryContext::Charge(size_t bytes) {
  size_t total = outstanding_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  size_t peak = peak_.load(std::memory_order_relaxed);
  while (peak < total &&
         !peak_.compare_exchange_weak(peak, total, std::memory_order_relaxed)) {
  }
  if (budget_bytes_ != 0 && total > budget_bytes_) {
    Trip(StatusCode::kResourceExhausted,
         "query memory budget exceeded (" + std::to_string(total) + " > " +
             std::to_string(budget_bytes_) + " bytes)");
    throw QueryAbort(TripStatus());
  }
  if (Aborted()) throw QueryAbort(TripStatus());
}

void QueryContext::Release(size_t bytes) {
  outstanding_.fetch_sub(bytes, std::memory_order_relaxed);
}

std::string QueryContext::fault_site() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_site_;
}

void QueryContext::RecordFaultSite(const char* site) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fault_site_.empty()) fault_site_ = site;
}

QueryContext* CurrentQueryContext() { return tls_query_context; }

ScopedQueryContext::ScopedQueryContext(QueryContext* context) : saved_(tls_query_context) {
  tls_query_context = context;
}

ScopedQueryContext::~ScopedQueryContext() { tls_query_context = saved_; }

void GovernorFaultPoint(const char* site) {
  QueryContext* ctx = tls_query_context;
  FaultInjector* injector =
      (ctx != nullptr && ctx->faults() != nullptr) ? ctx->faults() : FaultInjector::Global();
  if (!injector->Hit(site)) return;
  if (ctx != nullptr) ctx->RecordFaultSite(site);
  // Deterministic message: identical at every thread count, so differential
  // sweeps can assert terminal-status equality.
  throw QueryAbort(Status::Error(std::string("injected fault at ") + site));
}

}  // namespace quotient
