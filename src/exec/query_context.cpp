#include "exec/query_context.hpp"

#include <cstdlib>

namespace quotient {

namespace {

thread_local QueryContext* tls_query_context = nullptr;

/// The fault-site registry. Keep docs/robustness.md and the sweep test in
/// tests/test_governor.cpp in step with this list.
const std::vector<std::string> kKnownSites = {
    "scheduler.task",       // worker-pool task admission (exec/scheduler.cpp)
    "pipeline.drain",       // serial pipeline drain, per batch (exec/pipeline.cpp)
    "pipeline.morsel",      // parallel morsel read, per batch (exec/pipeline.cpp)
    "pipeline.merge",       // chunk-ordered sink merge (exec/pipeline.cpp)
    "sink.codec_append",    // divisor/build codec appends (exec/pipeline.cpp)
    "sink.probe_append",    // dividend probe drains (exec/pipeline.cpp)
    "sink.join_build",      // hash-join build drains (exec/pipeline.cpp)
    "sink.aggregate",       // grouping drains (exec/exec_agg.cpp)
    "divide.bitmap_fill",   // hash-division bitmap fills (exec/exec_divide.cpp)
    "catalog.encoding",     // dictionary-encoding builds (plan/catalog.cpp)
    "snapshot.publish",     // DDL snapshot publication (api/database.cpp)
    "cursor.pull",          // ResultCursor batch pulls (api/session.cpp)
};

}  // namespace

void FaultInjector::Arm(const std::string& site, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_[site] = Armed{nth == 0 ? 1 : nth, 0};
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_.store(false, std::memory_order_release);
}

bool FaultInjector::Hit(const char* site) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  return ++it->second.hits == it->second.nth;
}

FaultInjector* FaultInjector::Global() {
  static FaultInjector* injector = [] {
    auto* inj = new FaultInjector();  // leaked: process lifetime
    if (const char* env = std::getenv("QUOTIENT_FAULT")) {
      std::string spec(env);
      size_t colon = spec.rfind(':');
      uint64_t nth = 1;
      std::string site = spec;
      if (colon != std::string::npos) {
        site = spec.substr(0, colon);
        char* end = nullptr;
        long parsed = std::strtol(spec.c_str() + colon + 1, &end, 10);
        if (end != spec.c_str() + colon + 1 && parsed > 0) {
          nth = static_cast<uint64_t>(parsed);
        }
      }
      if (!site.empty()) inj->Arm(site, nth);
    }
    return inj;
  }();
  return injector;
}

const std::vector<std::string>& FaultInjector::KnownSites() { return kKnownSites; }

void QueryContext::Trip(StatusCode code, const std::string& message) {
  int expected = 0;
  if (tripped_.compare_exchange_strong(expected, static_cast<int>(code),
                                       std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(mutex_);
    trip_message_ = message;
  }
}

Status QueryContext::TripStatus() const {
  StatusCode code = static_cast<StatusCode>(tripped_.load(std::memory_order_acquire));
  if (code == StatusCode::kOk) return Status::Ok();
  std::lock_guard<std::mutex> lock(mutex_);
  return Status::Make(code, trip_message_);
}

void QueryContext::Poll() {
  if (!Aborted() && has_deadline() && std::chrono::steady_clock::now() >= deadline_) {
    Trip(StatusCode::kDeadlineExceeded, "query deadline exceeded");
  }
  if (Aborted()) throw QueryAbort(TripStatus());
}

void QueryContext::Charge(size_t bytes) {
  size_t total = charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (budget_bytes_ != 0 && total > budget_bytes_) {
    Trip(StatusCode::kResourceExhausted,
         "query memory budget exceeded (" + std::to_string(total) + " > " +
             std::to_string(budget_bytes_) + " bytes)");
    throw QueryAbort(TripStatus());
  }
  if (Aborted()) throw QueryAbort(TripStatus());
}

std::string QueryContext::fault_site() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_site_;
}

void QueryContext::RecordFaultSite(const char* site) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fault_site_.empty()) fault_site_ = site;
}

QueryContext* CurrentQueryContext() { return tls_query_context; }

ScopedQueryContext::ScopedQueryContext(QueryContext* context) : saved_(tls_query_context) {
  tls_query_context = context;
}

ScopedQueryContext::~ScopedQueryContext() { tls_query_context = saved_; }

void GovernorFaultPoint(const char* site) {
  QueryContext* ctx = tls_query_context;
  FaultInjector* injector =
      (ctx != nullptr && ctx->faults() != nullptr) ? ctx->faults() : FaultInjector::Global();
  if (!injector->Hit(site)) return;
  if (ctx != nullptr) ctx->RecordFaultSite(site);
  // Deterministic message: identical at every thread count, so differential
  // sweeps can assert terminal-status equality.
  throw QueryAbort(Status::Error(std::string("injected fault at ") + site));
}

}  // namespace quotient
